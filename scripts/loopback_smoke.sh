#!/usr/bin/env bash
# Loopback cluster smoke test: boot a 3-node gcs_server cluster over real
# TCP on 127.0.0.1, drive concurrent client operations against every
# replica, scrape the live Stats endpoint from each replica mid-load
# (gcs_top --once --assert-live), and assert all three report the same
# total-order digest.  Then the crash-recovery gate: kill -9 one replica,
# write more through the survivors, boot it back on the same --data-dir
# and assert it recovers via log replay plus a sponsor delta transfer
# (not a full state ship) and reconverges.  Each server also appends a
# telemetry JSONL time-series into $logdir, checked for well-formedness
# at the end.
#
#   scripts/loopback_smoke.sh [logdir]
#
# Exits non-zero (and leaves server logs in $logdir) on any failure.
# CI runs this under `timeout`; locally it takes a few seconds.
set -u

LOGDIR="${1:-smoke-logs}"
SERVER=_build/default/bin/gcs_server.exe
CLIENT=_build/default/bin/gcs_client.exe
TOP=_build/default/bin/gcs_top.exe
PEERS=7101,7102,7103
CPORTS=(8101 8102 8103)
PIDS=()

mkdir -p "$LOGDIR"

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

fail() {
  echo "SMOKE FAILURE: $*" >&2
  for i in 0 1 2; do
    echo "--- last log lines, node $i ---" >&2
    tail -5 "$LOGDIR/server-$i.log" >&2 || true
  done
  exit 1
}

dune build bin/gcs_server.exe bin/gcs_client.exe bin/gcs_top.exe || fail "build"

for i in 0 1 2; do
  "$SERVER" --id "$i" --peers "$PEERS" --client-port "${CPORTS[$i]}" \
    --data-dir "$LOGDIR/data-$i" \
    --telemetry-interval 250 --telemetry-file "$LOGDIR/telemetry-$i.jsonl" \
    >"$LOGDIR/server-$i.log" 2>&1 &
  PIDS+=($!)
done

# Wait for the cluster to accept clients: retry the first write.
ok=""
for _ in $(seq 1 20); do
  sleep 0.5
  if "$CLIENT" put --server "${CPORTS[0]}" boot up --timeout 5000 >/dev/null 2>&1; then
    ok=1
    break
  fi
done
[ -n "$ok" ] || fail "cluster did not come up"

# Concurrent mixed load against every replica.
LOAD_PIDS=()
for i in 0 1 2; do
  "$CLIENT" load --server "${CPORTS[$i]}" --ops 400 --conflicting 30 \
    --timeout 15000 >"$LOGDIR/load-$i.out" 2>&1 &
  LOAD_PIDS+=($!)
done

# Mid-load: scrape the admin Stats endpoint from every replica and gate
# on liveness — parseable snapshots, delivered abcast traffic, populated
# submit->deliver latency histograms (finite p99), event-loop profiling,
# and matching order digests.  Digests may legitimately differ while
# ordered traffic is in flight (replicas at different prefixes of the
# same order), so the gate retries briefly before declaring failure.
sleep 1
top_ok=""
for _ in 1 2 3 4 5; do
  if "$TOP" --servers "${CPORTS[0]},${CPORTS[1]},${CPORTS[2]}" --once --assert-live \
      >"$LOGDIR/gcs_top.out" 2>&1; then
    top_ok=1
    break
  fi
  sleep 1
done
cat "$LOGDIR/gcs_top.out"
[ -n "$top_ok" ] || fail "gcs_top --assert-live"

for pid in "${LOAD_PIDS[@]}"; do
  wait "$pid" || true
done
for i in 0 1 2; do
  grep -q "op/s" "$LOGDIR/load-$i.out" || fail "load generator $i failed: $(cat "$LOGDIR/load-$i.out")"
done

# A few targeted ops through different replicas.
"$CLIENT" put  --server "${CPORTS[1]}" color blue --timeout 10000 >/dev/null || fail "put via node 1"
"$CLIENT" incr --server "${CPORTS[2]}" hits 5     --timeout 10000 >/dev/null || fail "incr via node 2"
v=$("$CLIENT" get --server "${CPORTS[0]}" color --timeout 10000) || fail "get via node 0"
[ "$v" = "blue" ] || fail "read your writes: got '$v', want 'blue'"

# Let in-flight commuting traffic quiesce, then compare replica digests.
sleep 2
digests=()
for i in 0 1 2; do
  d=$("$CLIENT" dump --server "${CPORTS[$i]}" --timeout 10000) || fail "dump via node $i"
  echo "replica $i: $d"
  digests+=("$(echo "$d" | sed 's/ .*//')")
done
[ "${digests[0]}" = "${digests[1]}" ] || fail "order digests diverge (0 vs 1)"
[ "${digests[0]}" = "${digests[2]}" ] || fail "order digests diverge (0 vs 2)"

# Crash recovery: kill -9 a replica, keep writing through the survivors,
# then boot it back on the same --data-dir.  It must replay its own
# durable log, fetch only the operations it missed from the sponsor (a
# delta transfer, not the full state), and reconverge on the same digest.
echo "--- crash recovery phase: kill -9 node 2 ---"
kill -9 "${PIDS[2]}" 2>/dev/null || fail "could not kill node 2"
wait "${PIDS[2]}" 2>/dev/null || true

"$CLIENT" load --server "${CPORTS[0]}" --ops 300 --conflicting 30 \
  --timeout 20000 >"$LOGDIR/load-postkill.out" 2>&1 \
  || fail "load via survivors after kill -9: $(cat "$LOGDIR/load-postkill.out")"
"$CLIENT" put --server "${CPORTS[1]}" phase recovery --timeout 10000 >/dev/null \
  || fail "put via survivor after kill -9"

"$SERVER" --id 2 --peers "$PEERS" --client-port "${CPORTS[2]}" \
  --data-dir "$LOGDIR/data-2" --join-via 0 \
  --telemetry-interval 250 --telemetry-file "$LOGDIR/telemetry-2-restarted.jsonl" \
  >"$LOGDIR/server-2-restarted.log" 2>&1 &
PIDS[2]=$!

ok=""
for _ in $(seq 1 30); do
  sleep 0.5
  if v=$("$CLIENT" get --server "${CPORTS[2]}" phase --timeout 5000 2>/dev/null) \
      && [ "$v" = "recovery" ]; then
    ok=1
    break
  fi
done
[ -n "$ok" ] || fail "restarted node 2 did not recover the missed writes"

# The sponsor must have served the rejoin from its log suffix, not by
# shipping the full state.
deltas=$("$CLIENT" stats --server "${CPORTS[0]}" --prom --timeout 10000 \
  | awk '$1 ~ /^gcs_server_delta_transfers(\{|$)/ { s += int($2) } END { print s + 0 }')
[ -n "$deltas" ] && [ "$deltas" -ge 1 ] \
  || fail "sponsor served no delta transfer (delta_transfers=${deltas:-0})"

# A post-recovery write through the reborn replica, then digests again.
"$CLIENT" incr --server "${CPORTS[2]}" hits 7 --timeout 10000 >/dev/null \
  || fail "incr via restarted node 2"
sleep 2
digests=()
for i in 0 1 2; do
  d=$("$CLIENT" dump --server "${CPORTS[$i]}" --timeout 10000) || fail "post-recovery dump via node $i"
  echo "replica $i (post-recovery): $d"
  digests+=("$(echo "$d" | sed 's/ .*//')")
done
[ "${digests[0]}" = "${digests[1]}" ] || fail "post-recovery digests diverge (0 vs 1)"
[ "${digests[0]}" = "${digests[2]}" ] || fail "post-recovery digests diverge (0 vs 2)"
echo "crash recovery OK: node 2 rebooted from its log and reconverged (delta transfers: $deltas)"

# Every server's telemetry time-series must exist, have accumulated
# several snapshots, and parse line-by-line as JSON with the expected
# members (checked with python3 when available).
for i in 0 1 2; do
  tf="$LOGDIR/telemetry-$i.jsonl"
  [ -s "$tf" ] || fail "telemetry file for node $i missing or empty"
  lines=$(wc -l <"$tf")
  [ "$lines" -ge 3 ] || fail "telemetry file for node $i has only $lines lines"
done
if command -v python3 >/dev/null 2>&1; then
  python3 - "$LOGDIR" <<'PY' || fail "telemetry JSONL malformed"
import json, sys
logdir = sys.argv[1]
for i in range(3):
    with open(f"{logdir}/telemetry-{i}.jsonl") as f:
        for ln, line in enumerate(f, 1):
            rec = json.loads(line)
            assert rec["node"] == i, (i, ln, rec.get("node"))
            assert "ts" in rec and "stats" in rec, (i, ln)
            assert "metrics" in rec["stats"], (i, ln)
print("telemetry JSONL well-formed on all 3 replicas")
PY
fi

echo "SMOKE OK: identical total order on all 3 replicas"
