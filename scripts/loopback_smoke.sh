#!/usr/bin/env bash
# Loopback cluster smoke test: boot a 3-node gcs_server cluster over real
# TCP on 127.0.0.1, drive concurrent client operations against every
# replica, and assert all three report the same total-order digest.
#
#   scripts/loopback_smoke.sh [logdir]
#
# Exits non-zero (and leaves server logs in $logdir) on any failure.
# CI runs this under `timeout`; locally it takes a few seconds.
set -u

LOGDIR="${1:-smoke-logs}"
SERVER=_build/default/bin/gcs_server.exe
CLIENT=_build/default/bin/gcs_client.exe
PEERS=7101,7102,7103
CPORTS=(8101 8102 8103)
PIDS=()

mkdir -p "$LOGDIR"

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

fail() {
  echo "SMOKE FAILURE: $*" >&2
  for i in 0 1 2; do
    echo "--- last log lines, node $i ---" >&2
    tail -5 "$LOGDIR/server-$i.log" >&2 || true
  done
  exit 1
}

dune build bin/gcs_server.exe bin/gcs_client.exe || fail "build"

for i in 0 1 2; do
  "$SERVER" --id "$i" --peers "$PEERS" --client-port "${CPORTS[$i]}" \
    >"$LOGDIR/server-$i.log" 2>&1 &
  PIDS+=($!)
done

# Wait for the cluster to accept clients: retry the first write.
ok=""
for _ in $(seq 1 20); do
  sleep 0.5
  if "$CLIENT" put --server "${CPORTS[0]}" boot up --timeout 5000 >/dev/null 2>&1; then
    ok=1
    break
  fi
done
[ -n "$ok" ] || fail "cluster did not come up"

# Concurrent mixed load against every replica.
LOAD_PIDS=()
for i in 0 1 2; do
  "$CLIENT" load --server "${CPORTS[$i]}" --ops 80 --conflicting 30 \
    --timeout 15000 >"$LOGDIR/load-$i.out" 2>&1 &
  LOAD_PIDS+=($!)
done
for pid in "${LOAD_PIDS[@]}"; do
  wait "$pid" || true
done
for i in 0 1 2; do
  grep -q "op/s" "$LOGDIR/load-$i.out" || fail "load generator $i failed: $(cat "$LOGDIR/load-$i.out")"
done

# A few targeted ops through different replicas.
"$CLIENT" put  --server "${CPORTS[1]}" color blue --timeout 10000 >/dev/null || fail "put via node 1"
"$CLIENT" incr --server "${CPORTS[2]}" hits 5     --timeout 10000 >/dev/null || fail "incr via node 2"
v=$("$CLIENT" get --server "${CPORTS[0]}" color --timeout 10000) || fail "get via node 0"
[ "$v" = "blue" ] || fail "read your writes: got '$v', want 'blue'"

# Let in-flight commuting traffic quiesce, then compare replica digests.
sleep 2
digests=()
for i in 0 1 2; do
  d=$("$CLIENT" dump --server "${CPORTS[$i]}" --timeout 10000) || fail "dump via node $i"
  echo "replica $i: $d"
  digests+=("$(echo "$d" | sed 's/ .*//')")
done
[ "${digests[0]}" = "${digests[1]}" ] || fail "order digests diverge (0 vs 1)"
[ "${digests[0]}" = "${digests[2]}" ] || fail "order digests diverge (0 vs 2)"

echo "SMOKE OK: identical total order on all 3 replicas"
