module Process = Gc_kernel.Process
module Fd = Gc_fd.Failure_detector
module Rc = Gc_rchannel.Reliable_channel
module Gm = Gc_membership.Group_membership
module Sorted = Gc_sim.Sorted

type policy =
  | Immediate
  | Threshold of int
  | Output_triggered
  | Threshold_or_output of int

type Gc_net.Payload.t += Mo_suspect of { q : int } | Mo_retract of { q : int }

let () =
  Gc_net.Payload.register_printer (function
    | Mo_suspect { q } -> Some (Printf.sprintf "mon.suspect(%d)" q)
    | Mo_retract { q } -> Some (Printf.sprintf "mon.retract(%d)" q)
    | _ -> None)

let () =
  let module W = Gc_net.Wire in
  Gc_net.Payload.register_codec ~tag:"mon"
    ~encode:(fun _enc w p ->
      match p with
      | Mo_suspect { q } ->
          W.u8 w 0;
          W.varint w q;
          true
      | Mo_retract { q } ->
          W.u8 w 1;
          W.varint w q;
          true
      | _ -> false)
    ~decode:(fun _dec r ->
      match W.read_u8 r with
      | 0 -> Mo_suspect { q = W.read_varint r }
      | 1 -> Mo_retract { q = W.read_varint r }
      | k -> Gc_net.Payload.malformed (Printf.sprintf "mon constructor %d" k))

type t = {
  proc : Process.t;
  rc : Rc.t;
  membership : Gm.t;
  policy : policy;
  monitor : Fd.monitor;
  (* q -> set of members currently suspecting q (gossip view) *)
  suspectors : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable proposed : int;
  mutable wrongful : int;
  mutable stopped : bool;
}

let suspector_set t q =
  match Hashtbl.find_opt t.suspectors q with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.suspectors q s;
      s

let propose_exclusion t q reason =
  if (not t.stopped) && Gc_membership.View.mem (Gm.view t.membership) q then begin
    t.proposed <- t.proposed + 1;
    Process.incr t.proc "monitoring.exclusions_proposed";
    if Process.oracle_alive t.proc q then begin
      t.wrongful <- t.wrongful + 1;
      Process.incr t.proc "monitoring.wrongful_exclusions"
    end;
    Process.event t.proc ~component:"monitoring" ~kind:Gc_obs.Event.Exclude
      ~attrs:[ ("peer", string_of_int q); ("reason", reason) ]
      ();
    Gm.remove t.membership q
  end

(* Only current members' opinions count towards the threshold. *)
let threshold_met t k q =
  let v = Gm.view t.membership in
  let votes =
    Sorted.fold
      (fun m () acc -> if Gc_membership.View.mem v m then acc + 1 else acc)
      (suspector_set t q) 0
  in
  votes >= k

let gossip t payload =
  let me = Process.id t.proc in
  List.iter
    (fun m -> if m <> me then Rc.send t.rc ~size:24 ~dst:m payload)
    (Gm.view t.membership).members

let on_own_suspicion t q =
  if not t.stopped then
    match t.policy with
    | Immediate -> propose_exclusion t q "immediate"
    | Output_triggered -> () (* only channel evidence counts *)
    | Threshold k | Threshold_or_output k ->
        Hashtbl.replace (suspector_set t q) (Process.id t.proc) ();
        gossip t (Mo_suspect { q });
        if threshold_met t k q then propose_exclusion t q "threshold"

let on_own_trust t q =
  if not t.stopped then
    match t.policy with
    | Immediate | Output_triggered -> ()
    | Threshold _ | Threshold_or_output _ ->
        Hashtbl.remove (suspector_set t q) (Process.id t.proc);
        gossip t (Mo_retract { q })

let on_stuck t ~dst ~age:_ =
  if not t.stopped then
    match t.policy with
    | Output_triggered | Threshold_or_output _ ->
        propose_exclusion t dst "output-triggered"
    | Immediate | Threshold _ -> ()

let create proc ~fd ~rc ~membership ?(exclusion_timeout = 5000.0) ~policy () =
  let t_ref = ref None in
  let monitor =
    Fd.monitor fd ~label:"monitoring" ~timeout:exclusion_timeout
      ~on_suspect:(fun q ->
        match !t_ref with Some t -> on_own_suspicion t q | None -> ())
      ~on_trust:(fun q ->
        match !t_ref with Some t -> on_own_trust t q | None -> ())
      ()
  in
  let t =
    {
      proc;
      rc;
      membership;
      policy;
      monitor;
      suspectors = Hashtbl.create 8;
      proposed = 0;
      wrongful = 0;
      stopped = false;
    }
  in
  t_ref := Some t;
  Rc.on_deliver rc (fun ~src payload ->
      (* Gossip from processes outside the current view is void: an excluded
         process's stale suspicions (e.g. accumulated during a partition)
         must not remove members after the network heals. *)
      if (not t.stopped) && Gc_membership.View.mem (Gm.view t.membership) src
      then
        match (payload, t.policy) with
        | Mo_suspect { q }, (Threshold k | Threshold_or_output k) ->
            Hashtbl.replace (suspector_set t q) src ();
            if threshold_met t k q then propose_exclusion t q "threshold"
        | Mo_retract { q }, (Threshold _ | Threshold_or_output _) ->
            Hashtbl.remove (suspector_set t q) src
        | (Mo_suspect _ | Mo_retract _), _ -> ()
        | _ -> ());
  Rc.set_on_stuck rc (fun ~dst ~age -> on_stuck t ~dst ~age);
  (* Excluded members' gossip no longer counts; forget their channel
     buffers. *)
  Gm.on_view membership (fun v ->
      Sorted.iter
        (fun _q set ->
          List.iter
            (fun m ->
              if not (Gc_membership.View.mem v m) then Hashtbl.remove set m)
            (Sorted.keys set))
        t.suspectors;
      List.iter
        (fun q -> Hashtbl.remove t.suspectors q)
        (List.filter
           (fun q -> not (Gc_membership.View.mem v q))
           (Sorted.keys t.suspectors)));
  t

let stop t =
  t.stopped <- true;
  Fd.stop t.monitor

let exclusions_proposed t = t.proposed
let wrongful_exclusions_proposed t = t.wrongful
