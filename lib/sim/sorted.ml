(* Deterministic, key-sorted Hashtbl traversal.

   [Hashtbl.iter] and [Hashtbl.fold] visit buckets in an order that depends
   on the table's insertion and resize history, so any protocol state that
   flows through them can diverge between a run and its replay even under
   identical seeds.  Every traversal here first sorts the keys, which makes
   the visit order a pure function of the table's *contents* — the property
   the replay/audit machinery needs.  The lint pass (rule D3) rejects bare
   [Hashtbl.iter]/[Hashtbl.fold] in protocol layers unless the result is
   piped straight into a sort; these helpers are the sanctioned alternative.

   The default comparator is the polymorphic [compare]: keys in this
   codebase are ints, strings and int pairs, for which it is total and
   deterministic.  Pass [~cmp] for anything richer. *)

(* Only the visible binding of each key is traversed: bindings shadowed by
   [Hashtbl.add] are skipped (protocol tables only ever use [replace]). *)
let sorted_keys ?(cmp = compare) h =
  List.sort_uniq cmp (Hashtbl.fold (fun k _ acc -> k :: acc) h [])

let keys = sorted_keys

(* All bindings as [(key, value)] pairs in ascending key order. *)
let bindings ?cmp h =
  List.map (fun k -> (k, Hashtbl.find h k)) (sorted_keys ?cmp h)

(* Values in ascending *key* order. *)
let values ?cmp h = List.map (fun k -> Hashtbl.find h k) (sorted_keys ?cmp h)

let iter ?cmp f h = List.iter (fun k -> f k (Hashtbl.find h k)) (sorted_keys ?cmp h)

let fold ?cmp f h init =
  List.fold_left (fun acc k -> f k (Hashtbl.find h k) acc) init (sorted_keys ?cmp h)
