(** Causal flight recorder for simulation runs.

    Components emit typed lifecycle events ({!Gc_obs.Event.t}); every
    record carries the emitting node's Lamport clock, so a recorded run
    is an execution history the offline auditor ({!Gc_obs.Audit}) can
    replay and check.  The recorder also owns the per-node Lamport
    clocks: {!emit} ticks the emitter's clock, and the network layer
    calls {!merge_clock} when a datagram arrives so causality crosses
    node boundaries.

    Tracing is off by default and costs one branch per emit when
    disabled (clocks do not advance while disabled). *)

type record = Gc_obs.Event.t = {
  time : float;  (** virtual time of the event *)
  node : int;  (** emitting process, [-1] for the environment *)
  lamport : int;  (** Lamport clock of the emitter at the event *)
  component : string;  (** e.g. "consensus", "fd" *)
  kind : Gc_obs.Event.kind;
  msg : string option;  (** stable message id, e.g. ["ab:0.3"] *)
  attrs : (string * string) list;
      (** structured attributes, e.g. [("inst", "4"); ("round", "2")] *)
}

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** A trace buffer keeping at most [capacity] (default 100_000) most recent
    records. *)

val enable : t -> bool -> unit
val enabled : t -> bool

(** {1 Lamport clocks} *)

val clock : t -> node:int -> int
(** Current Lamport clock of [node] (0 if it never emitted). *)

val merge_clock : t -> node:int -> clock:int -> unit
(** Receiver-side merge: advance [node]'s clock to
    [max local clock + 1] so every event it emits after a message
    arrival is causally after the sender's events.  No-op while
    disabled. *)

(** {1 Emission} *)

val emit_event :
  t ->
  time:float ->
  node:int ->
  component:string ->
  kind:Gc_obs.Event.kind ->
  ?msg:string ->
  ?attrs:(string * string) list ->
  unit ->
  unit
(** Record a typed event, ticking [node]'s Lamport clock. *)

val emit :
  t -> time:float -> node:int -> component:string -> event:string ->
  ?attrs:(string * string) list -> unit -> unit
(** String-tagged convenience wrapper: [event] is mapped through
    {!Gc_obs.Event.kind_of_string} (unknown tags become [Custom]). *)

(** {1 Inspection} *)

val detail : record -> string
(** Attributes rendered as ["k=v k=v ..."]. *)

val attr : record -> string -> string option
(** [attr r k] is the value of attribute [k], if present. *)

val records : t -> record list
(** Records in emission order. *)

val find :
  t -> ?node:int -> ?component:string -> ?event:string ->
  ?kind:Gc_obs.Event.kind -> ?msg:string -> ?attr:string * string ->
  unit -> record list
(** Records matching all the given filters; [?event] matches the
    canonical string tag of the kind, [?attr:(k, v)] keeps records
    carrying exactly that attribute binding. *)

val dropped : t -> int
(** Records evicted by the ring buffer since creation (or the last
    {!clear}).  When non-zero, the surviving records are a suffix of the
    run: order-based audits stay sound, but checks that need each node's
    full history from time zero (same-view delivery) may be misled. *)

val clear : t -> unit
(** Drop all records and reset the Lamport clocks. *)

val save_jsonl : t -> string -> unit
(** Dump the buffered records as JSON-lines, one event per line —
    the format [gcs_trace] consumes. *)

val pp_record : Format.formatter -> record -> unit
