(** Structured trace of simulation events.

    Components emit trace records (who, when, what, plus structured
    key/value attributes); tests assert on them and the examples print
    them.  Tracing is off by default and costs one branch per emit when
    disabled. *)

type record = {
  time : float;      (** virtual time of the event *)
  node : int;        (** emitting process, [-1] for the environment *)
  component : string;(** e.g. "consensus", "fd" *)
  event : string;    (** short event tag, e.g. "decide" *)
  attrs : (string * string) list;
      (** structured attributes, e.g. [("inst", "4"); ("round", "2")] *)
}

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** A trace buffer keeping at most [capacity] (default 100_000) most recent
    records. *)

val enable : t -> bool -> unit
val enabled : t -> bool

val emit :
  t -> time:float -> node:int -> component:string -> event:string ->
  ?attrs:(string * string) list -> unit -> unit

val emit_legacy :
  t -> time:float -> node:int -> component:string -> event:string ->
  string -> unit
[@@alert deprecated
    "Use emit with ?attrs; the free-form detail becomes a single \
     [(\"detail\", _)] attribute."]
(** Old five-string signature; the detail string is stored as a single
    [("detail", _)] attribute (omitted when empty). *)

val detail : record -> string
(** Attributes rendered as ["k=v k=v ..."] — the closest equivalent of the
    old free-form detail field. *)

val attr : record -> string -> string option
(** [attr r k] is the value of attribute [k], if present. *)

val records : t -> record list
(** Records in emission order. *)

val find :
  t -> ?node:int -> ?component:string -> ?event:string ->
  ?attr:string * string -> unit -> record list
(** Records matching all the given filters; [?attr:(k, v)] keeps records
    carrying exactly that attribute binding. *)

val clear : t -> unit

val pp_record : Format.formatter -> record -> unit
