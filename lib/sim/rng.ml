type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = seed }

let copy t = { state = t.state }

let derive seed label =
  (* Fold the label into the seed character by character through the same
     mixer the generator uses, so distinct labels give unrelated streams. *)
  let z = ref (mix64 seed) in
  String.iter
    (fun c ->
      z := mix64 (Int64.add (Int64.of_int (Char.code c)) (Int64.add !z golden_gamma)))
    label;
  !z

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (int64 t) 1 in
    let v = Int64.rem r b in
    if Int64.(sub (sub r v) (sub b 1L)) < 0L then loop () else Int64.to_int v
  in
  loop ()

let float t bound =
  (* 53 high-quality bits, as in the standard doubles-from-ints recipe. *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p
let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 and u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))
