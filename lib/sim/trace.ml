module Event = Gc_obs.Event

type record = Event.t = {
  time : float;
  node : int;
  lamport : int;
  component : string;
  kind : Event.kind;
  msg : string option;
  attrs : (string * string) list;
}

type t = {
  mutable on : bool;
  capacity : int;
  buf : record Queue.t;
  clocks : (int, int) Hashtbl.t;
  mutable dropped : int;
}

let create ?(enabled = false) ?(capacity = 100_000) () =
  {
    on = enabled;
    capacity;
    buf = Queue.create ();
    clocks = Hashtbl.create 16;
    dropped = 0;
  }

let enable t b = t.on <- b
let enabled t = t.on

let clock t ~node =
  match Hashtbl.find_opt t.clocks node with Some c -> c | None -> 0

let merge_clock t ~node ~clock:remote =
  if t.on then
    let local = clock t ~node in
    if remote >= local then Hashtbl.replace t.clocks node (remote + 1)

let tick t ~node =
  let c = clock t ~node + 1 in
  Hashtbl.replace t.clocks node c;
  c

let emit_event t ~time ~node ~component ~kind ?msg ?(attrs = []) () =
  if t.on then begin
    let lamport = tick t ~node in
    if Queue.length t.buf >= t.capacity then begin
      ignore (Queue.pop t.buf);
      t.dropped <- t.dropped + 1
    end;
    Queue.push { time; node; lamport; component; kind; msg; attrs } t.buf
  end

let emit t ~time ~node ~component ~event ?attrs () =
  emit_event t ~time ~node ~component ~kind:(Event.kind_of_string event) ?attrs
    ()

let detail = Event.detail
let attr = Event.attr

let records t = List.of_seq (Queue.to_seq t.buf)

let find t ?node ?component ?event ?kind ?msg ?attr:a () =
  let keep r =
    (match node with None -> true | Some n -> r.node = n)
    && (match component with None -> true | Some c -> r.component = c)
    && (match event with
       | None -> true
       | Some e -> Event.kind_to_string r.kind = e)
    && (match kind with None -> true | Some k -> r.kind = k)
    && (match msg with None -> true | Some m -> r.msg = Some m)
    && match a with None -> true | Some (k, v) -> attr r k = Some v
  in
  List.filter keep (records t)

let dropped t = t.dropped

let clear t =
  Queue.clear t.buf;
  Hashtbl.reset t.clocks;
  t.dropped <- 0

let save_jsonl t path = Event.save_jsonl path (records t)

let pp_record = Event.pp
