type record = {
  time : float;
  node : int;
  component : string;
  event : string;
  attrs : (string * string) list;
}

type t = {
  mutable on : bool;
  capacity : int;
  buf : record Queue.t;
}

let create ?(enabled = false) ?(capacity = 100_000) () =
  { on = enabled; capacity; buf = Queue.create () }

let enable t b = t.on <- b
let enabled t = t.on

let emit t ~time ~node ~component ~event ?(attrs = []) () =
  if t.on then begin
    if Queue.length t.buf >= t.capacity then ignore (Queue.pop t.buf);
    Queue.push { time; node; component; event; attrs } t.buf
  end

let emit_legacy t ~time ~node ~component ~event detail =
  let attrs = if detail = "" then [] else [ ("detail", detail) ] in
  emit t ~time ~node ~component ~event ~attrs ()

let detail r =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) r.attrs)

let attr r key = List.assoc_opt key r.attrs

let records t = List.of_seq (Queue.to_seq t.buf)

let find t ?node ?component ?event ?attr:a () =
  let keep r =
    (match node with None -> true | Some n -> r.node = n)
    && (match component with None -> true | Some c -> r.component = c)
    && (match event with None -> true | Some e -> r.event = e)
    && match a with None -> true | Some (k, v) -> attr r k = Some v
  in
  List.filter keep (records t)

let clear t = Queue.clear t.buf

let pp_record ppf r =
  Format.fprintf ppf "[%8.2f] n%d %s/%s" r.time r.node r.component r.event;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) r.attrs
