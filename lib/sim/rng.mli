(** Deterministic, splittable pseudo-random number generator.

    The simulator must be reproducible: every run with the same seed makes
    exactly the same random choices.  This module implements the splitmix64
    generator, which is fast, has a 64-bit state, and supports {e splitting}:
    deriving an independent stream from a parent stream.  Splitting lets each
    simulated component own its own stream, so adding random choices to one
    component does not perturb the choices seen by another. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    subsequent outputs of [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state; both generators then produce the
    same stream. *)

val derive : int64 -> string -> int64
(** [derive seed label] is a sub-seed deterministically derived from
    [seed] and [label]; distinct labels give unrelated streams.  Lets one
    recorded seed (e.g. a fault script's) drive several independent
    concerns — the simulation engine, the fault generator, the workload —
    without their draws perturbing each other. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal distribution via Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal: [exp] of a Gaussian with parameters [mu], [sigma]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniformly chosen element.  Raises [Invalid_argument] on the empty
    list. *)
