module Process = Gc_kernel.Process
module Rc = Gc_rchannel.Reliable_channel
module Rb = Gc_rbcast.Reliable_broadcast
module Consensus = Gc_consensus.Consensus
module Sorted = Gc_sim.Sorted

type msg = {
  origin : int;
  mseq : int;
  body : Gc_net.Payload.t;
  size : int;
  sent_at : float; (* virtual submit time at the origin, for latency metrics *)
}

let msg_id m = (m.origin, m.mseq)

(* The not-yet-delivered set, kept sorted by id so a proposal batch is read
   off in one O(p) pass instead of the fold-plus-sort the flat table
   needed on every proposal. *)
module Pending = Map.Make (struct
  type t = int * int

  let compare (a : int * int) (b : int * int) = Stdlib.compare a b
end)

module Delivered = Delivered_set

type Gc_net.Payload.t +=
  | Ab_data of msg
  | Ab_batch of msg list
  | Ab_submit of msg list
        (* several submissions from one origin riding one reliable
           broadcast; distinct from [Ab_batch], which is a consensus
           proposal value *)

let () =
  Gc_net.Payload.register_printer (function
    | Ab_data m ->
        Some
          (Printf.sprintf "ab.data#%d.%d(%s)" m.origin m.mseq
             (Gc_net.Payload.to_string m.body))
    | Ab_submit l ->
        Some
          (Printf.sprintf "ab.submit[%s]"
             (String.concat ";"
                (List.map
                   (fun m -> Printf.sprintf "%d.%d" m.origin m.mseq)
                   l)))
    | Ab_batch l ->
        (* Listing the message ids makes the rendering content-distinguishing,
           so equality of the printed form means equality of the batch — the
           trace auditor compares decision values by this string. *)
        Some
          (Printf.sprintf "ab.batch[%s]"
             (String.concat ";"
                (List.map
                   (fun m -> Printf.sprintf "%d.%d" m.origin m.mseq)
                   l)))
    | _ -> None)

let () =
  let module W = Gc_net.Wire in
  let write_msg enc w m =
    W.varint w m.origin;
    W.varint w m.mseq;
    W.varint w m.size;
    W.f64 w m.sent_at;
    enc w m.body
  in
  let read_msg dec r =
    let origin = W.read_varint r in
    let mseq = W.read_varint r in
    let size = W.read_varint r in
    let sent_at = W.read_f64 r in
    let body = dec r in
    { origin; mseq; size; sent_at; body }
  in
  Gc_net.Payload.register_codec ~tag:"ab"
    ~encode:(fun enc w p ->
      match p with
      | Ab_data m ->
          W.u8 w 0;
          write_msg enc w m;
          true
      | Ab_batch l ->
          W.u8 w 1;
          W.list w (write_msg enc) l;
          true
      | Ab_submit l ->
          W.u8 w 2;
          W.list w (write_msg enc) l;
          true
      | _ -> false)
    ~decode:(fun dec r ->
      match W.read_u8 r with
      | 0 -> Ab_data (read_msg dec r)
      | 1 -> Ab_batch (W.read_list r (read_msg dec))
      | 2 -> Ab_submit (W.read_list r (read_msg dec))
      | k -> Gc_net.Payload.malformed (Printf.sprintf "ab constructor %d" k))

type t = {
  proc : Process.t;
  rb : Rb.t;
  storage : Gc_kernel.Storage.t option;
  mutable consensus : Consensus.t option;
  mutable member_list : int list;
  mutable next_mseq : int;
  mutable next_to_apply : int; (* next consensus instance to apply *)
  mutable pending : msg Pending.t; (* rdelivered, not yet adelivered *)
  mutable pending_n : int; (* cardinal of [pending], kept incrementally *)
  delivered : Delivered.t;
  proposed : (int, unit) Hashtbl.t; (* pruned below next_to_apply *)
  decided_batches : (int, msg list) Hashtbl.t; (* out-of-order decisions *)
  mutable max_solicited : int;
  mutable submit_batch : msg Batcher.t option;
  mutable subscribers : (origin:int -> Gc_net.Payload.t -> unit) list;
  mutable n_delivered : int;
}

let consensus_of t =
  match t.consensus with
  | Some c -> c
  | None -> invalid_arg "Atomic_broadcast: consensus not wired"

let member t = List.mem (Process.id t.proc) t.member_list

(* Current proposal: the pending set, already sorted and disjoint from the
   delivered set (delivery and bootstrap both purge it), read off in one
   pass. *)
let current_batch t =
  List.rev (Pending.fold (fun _ m acc -> m :: acc) t.pending [])

let note_pending t =
  Process.set_gauge t.proc "abcast.pending_size" (float_of_int t.pending_n)

let pending_add t id m =
  t.pending <- Pending.add id m t.pending;
  t.pending_n <- t.pending_n + 1

let pending_remove t id =
  if Pending.mem id t.pending then begin
    t.pending <- Pending.remove id t.pending;
    t.pending_n <- t.pending_n - 1
  end

(* Write-ahead: one Storage.Record per delivery, appended after the
   delivered-set dedup accepts the id and before the application sees the
   message, so a crash between the two replays it on recovery rather than
   losing it.  A payload without a registered codec cannot be made durable;
   it is counted and delivered anyway (sim-only payloads hit this). *)
let log_delivery t ~origin ~seq ~ordered body =
  match t.storage with
  | None -> ()
  | Some store -> (
      match Gc_net.Payload.encode body with
      | Ok payload ->
          ignore
            (Gc_kernel.Storage.append store
               (Gc_kernel.Storage.Record.encode
                  { Gc_kernel.Storage.Record.origin; seq; ordered; payload }))
      | Error _ -> Process.incr t.proc "storage.append_skipped")

let try_start t =
  if member t && not (Hashtbl.mem t.proposed t.next_to_apply) then begin
    let batch = current_batch t in
    if batch <> [] || t.max_solicited >= t.next_to_apply then begin
      Hashtbl.replace t.proposed t.next_to_apply ();
      Process.incr t.proc "abcast.proposals";
      Process.observe t.proc "abcast.batch_size"
        (float_of_int (List.length batch));
      Consensus.propose (consensus_of t) ~inst:t.next_to_apply
        ~members:t.member_list (Ab_batch batch)
    end
  end

let apply_decisions t =
  let rec loop () =
    match Hashtbl.find_opt t.decided_batches t.next_to_apply with
    | None -> ()
    | Some batch ->
        Hashtbl.remove t.decided_batches t.next_to_apply;
        (* The instance is being applied: nothing consults its proposal
           marker again, so the table stays O(in-flight instances). *)
        Hashtbl.remove t.proposed t.next_to_apply;
        t.next_to_apply <- t.next_to_apply + 1;
        List.iter
          (fun m ->
            let id = msg_id m in
            if Delivered.add t.delivered id then begin
              pending_remove t id;
              log_delivery t ~origin:m.origin ~seq:t.n_delivered ~ordered:true
                m.body;
              t.n_delivered <- t.n_delivered + 1;
              Process.incr t.proc "abcast.delivered";
              Process.observe t.proc "abcast.latency_ms"
                (Process.now t.proc -. m.sent_at);
              if Process.traced t.proc then
                Process.event t.proc ~component:"abcast"
                  ~kind:Gc_obs.Event.Deliver
                  ~msg:(Printf.sprintf "ab:%d.%d" m.origin m.mseq)
                  ~attrs:
                    [
                      ("origin", string_of_int m.origin);
                      ("mseq", string_of_int m.mseq);
                      ("inst", string_of_int (t.next_to_apply - 1));
                    ]
                  ();
              List.iter (fun f -> f ~origin:m.origin m.body) (List.rev t.subscribers)
            end)
          batch;
        loop ()
  in
  loop ();
  note_pending t;
  try_start t

let on_decide t ~inst v =
  match v with
  | Ab_batch batch ->
      if inst >= t.next_to_apply then begin
        Hashtbl.replace t.decided_batches inst batch;
        apply_decisions t
      end
  | _ -> ()

let on_solicit t ~inst =
  if inst > t.max_solicited then t.max_solicited <- inst;
  if inst >= t.next_to_apply then try_start t

(* Message ids are (origin, mseq) and receivers dedup on them for the life
   of the run, so a process restarting from its log must never reuse an
   mseq from a previous incarnation: scope the counter by boot epoch,
   leaving 2^40 submissions per boot.  Epoch 0 keeps historical numbering. *)
let epoch_bits = 40

let create proc ~rc ~rb ~fd ?(suspect_timeout = 200.0) ?(adaptive = false)
    ?(batch_max = 1) ?(batch_delay = 1.0) ?storage ?(epoch = 0) ~members () =
  if batch_max < 1 then invalid_arg "Atomic_broadcast.create: batch_max < 1";
  let t =
    {
      proc;
      rb;
      storage;
      consensus = None;
      member_list = members;
      next_mseq = epoch lsl epoch_bits;
      next_to_apply = 0;
      pending = Pending.empty;
      pending_n = 0;
      delivered = Delivered.create ();
      proposed = Hashtbl.create 64;
      decided_batches = Hashtbl.create 16;
      max_solicited = -1;
      submit_batch = None;
      subscribers = [];
      n_delivered = 0;
    }
  in
  t.submit_batch <-
    Some
      (Batcher.create proc ~metric:"abcast.submit_batch_size"
         ~max_batch:batch_max ~max_delay:batch_delay
         ~emit:(fun ms ->
           match ms with
           | [ m ] ->
               Rb.broadcast t.rb ~size:m.size ~dests:t.member_list (Ab_data m)
           | ms ->
               let size = List.fold_left (fun a m -> a + m.size) 16 ms in
               Rb.broadcast t.rb ~size ~dests:t.member_list (Ab_submit ms))
         ());
  Process.incr ~by:0 proc "abcast.delivered";
  let consensus =
    Consensus.create proc ~rc ~rb ~fd ~suspect_timeout ~adaptive
      ~score:(function Ab_batch l -> List.length l | _ -> 0)
      ~on_decide:(fun ~inst v -> on_decide t ~inst v)
      ~on_solicit:(fun ~inst -> on_solicit t ~inst)
      ()
  in
  t.consensus <- Some consensus;
  Rb.on_deliver rb (fun ~origin:_ payload ->
      match payload with
      | Ab_data m ->
          let id = msg_id m in
          if not (Delivered.mem t.delivered id || Pending.mem id t.pending)
          then begin
            pending_add t id m;
            note_pending t;
            try_start t
          end
      | Ab_submit ms ->
          (* One pending-set update and one proposal attempt for the whole
             batch: the point of submit batching. *)
          let added = ref false in
          List.iter
            (fun m ->
              let id = msg_id m in
              if not (Delivered.mem t.delivered id || Pending.mem id t.pending)
              then begin
                pending_add t id m;
                added := true
              end)
            ms;
          if !added then begin
            note_pending t;
            try_start t
          end
      | _ -> ());
  t

let abcast t ?(size = 64) body =
  if member t then begin
    let m =
      {
        origin = Process.id t.proc;
        mseq = t.next_mseq;
        body;
        size;
        sent_at = Process.now t.proc;
      }
    in
    t.next_mseq <- t.next_mseq + 1;
    Process.incr t.proc "abcast.submitted";
    if Process.traced t.proc then
      Process.event t.proc ~component:"abcast" ~kind:Gc_obs.Event.Send
        ~msg:(Printf.sprintf "ab:%d.%d" m.origin m.mseq)
        ();
    match t.submit_batch with
    | Some b -> Batcher.add b m
    | None -> Rb.broadcast t.rb ~size ~dests:t.member_list (Ab_data m)
  end

let flush t = match t.submit_batch with Some b -> Batcher.flush b | None -> ()
let on_deliver t f = t.subscribers <- f :: t.subscribers
let set_members t members = t.member_list <- members
let members t = t.member_list

let bootstrap t ~next_instance ~members ~delivered =
  t.member_list <- members;
  t.next_to_apply <- next_instance;
  (* Proposal markers for instances below the transferred starting point can
     never be consulted again. *)
  List.iter
    (fun inst -> if inst < next_instance then Hashtbl.remove t.proposed inst)
    (Sorted.keys t.proposed);
  List.iter
    (fun id ->
      ignore (Delivered.add t.delivered id);
      (* Stragglers rdelivered before the transfer completed are already
         delivered at the snapshot source: purge them, or every future
         proposal would re-propose them forever. *)
      pending_remove t id)
    delivered;
  note_pending t;
  (* Decisions that raced ahead of the state transfer may already be waiting;
     apply them from the new starting point. *)
  apply_decisions t

let delivered_count t = t.n_delivered
let next_instance t = t.next_to_apply
let delivered_ids t = Delivered.ids t.delivered
let pending_count t = t.pending_n
let rounds_used t ~inst = Consensus.rounds_used (consensus_of t) ~inst
