module Process = Gc_kernel.Process

type 'a t = {
  proc : Process.t;
  metric : string option;
  max_batch : int;
  max_delay : float;
  emit : 'a list -> unit;
  mutable buf : 'a list; (* newest first; reversed on flush *)
  mutable buf_n : int;
  (* Generation counter: a pending delay timer only flushes the batch it
     was armed for.  A watermark flush bumps the generation, so the stale
     timer (which cannot be cancelled portably across runtimes) becomes a
     no-op instead of cutting the *next* batch short. *)
  mutable gen : int;
  mutable armed : bool;
}

let create proc ?metric ~max_batch ~max_delay ~emit () =
  if max_batch < 1 then invalid_arg "Batcher.create: max_batch < 1";
  {
    proc;
    metric;
    max_batch;
    max_delay;
    emit;
    buf = [];
    buf_n = 0;
    gen = 0;
    armed = false;
  }

let observe t n =
  match t.metric with
  (* gcs-lint: allow E2 — the name is fixed at Batcher.create sites
     (abcast.submit_batch_size, gbcast.batch_size, gbcast.ack_batch_size),
     each a catalogued histogram *)
  | Some m -> Process.observe t.proc m (float_of_int n)
  | None -> ()

let flush t =
  if t.buf_n > 0 then begin
    let items = List.rev t.buf in
    let n = t.buf_n in
    t.buf <- [];
    t.buf_n <- 0;
    t.gen <- t.gen + 1;
    t.armed <- false;
    observe t n;
    t.emit items
  end

let add t x =
  if t.max_batch = 1 then begin
    observe t 1;
    t.emit [ x ]
  end
  else begin
    t.buf <- x :: t.buf;
    t.buf_n <- t.buf_n + 1;
    if t.buf_n >= t.max_batch then flush t
    else if not t.armed then begin
      t.armed <- true;
      let gen = t.gen in
      ignore
        (Process.timer t.proc ~delay:t.max_delay (fun () ->
             if t.gen = gen then flush t))
    end
  end

let length t = t.buf_n
