(** Atomic broadcast by reduction to consensus ("Atomic Broadcast" in
    Figure 9), following Chandra–Toueg [10].

    Payloads are disseminated with reliable broadcast; delivery order is
    fixed by a sequence of consensus instances, each deciding a {e batch} of
    not-yet-delivered messages.  Decisions are applied in instance order, and
    messages inside a batch in the proposer's (deterministic) order, so every
    process delivers the same messages in the same total order:

    - {b validity}: a correct broadcaster eventually delivers its message;
    - {b uniform agreement}: if any process delivers m, all correct members
      deliver m;
    - {b uniform total order}: any two processes deliver common messages in
      the same order;
    - {b integrity}: at most once, only if broadcast.

    Because the underlying consensus tolerates wrong suspicions, this
    component does {e not} depend on group membership — the architectural
    inversion the paper advocates (Section 3.1.1).  The membership layer
    above changes the member set by injecting view-change messages into this
    very total order, then calling {!set_members} while the decision is being
    applied; the member set used by consensus instance [k] is therefore a
    deterministic function of decisions [0..k-1] at every process. *)

type t

val create :
  Gc_kernel.Process.t ->
  rc:Gc_rchannel.Reliable_channel.t ->
  rb:Gc_rbcast.Reliable_broadcast.t ->
  fd:Gc_fd.Failure_detector.t ->
  ?suspect_timeout:float ->
  ?adaptive:bool ->
  ?batch_max:int ->
  ?batch_delay:float ->
  ?storage:Gc_kernel.Storage.t ->
  ?epoch:int ->
  members:int list ->
  unit ->
  t
(** Build the component with an initial static member list.  The component
    owns its consensus instance stack (wired to the given failure detector
    with the aggressive [suspect_timeout], default 200 ms; [adaptive]
    switches it to the self-tuning monitor).

    [storage], when given, receives one {!Gc_kernel.Storage.Record} per
    adelivered message, appended between the duplicate-suppression check and
    the subscriber callbacks (write-ahead with respect to the application),
    so a crash-recovered process can replay exactly what it had delivered.

    [epoch] (default 0) is the boot incarnation: message ids are
    [(origin, mseq)] and receivers dedup on them for the life of the run,
    so a restarted process must number its submissions above every
    previous incarnation's.

    [batch_max] (default 1 = unbatched) and [batch_delay] (default 1 ms)
    batch submissions through a size/tick watermark ({!Batcher}): up to
    [batch_max] messages from this origin ride one reliable broadcast
    ([Ab_submit]) and enter the pending set with a single proposal attempt,
    amortising the O(n^2) relay cost.  Consensus proposals were already
    batched (the whole pending set per instance); this batches the {e
    submission} side too. *)

val abcast : t -> ?size:int -> Gc_net.Payload.t -> unit
(** Broadcast [payload] to the current members with total-order delivery.
    No-op if this process is not currently a member. *)

val on_deliver : t -> (origin:int -> Gc_net.Payload.t -> unit) -> unit
(** Subscribe to adeliver events.  Subscribers run synchronously while a
    decision is applied; they may call {!set_members} (membership layer) or
    {!abcast}. *)

val flush : t -> unit
(** Emit any submissions parked in the batcher immediately instead of
    waiting for the tick watermark — part of orderly shutdown: without it a
    submit during the last [batch_delay] before teardown is silently
    dropped. *)

val set_members : t -> int list -> unit
(** Replace the member set.  Must only be called from an {!on_deliver}
    callback (or before any broadcast), so that all processes switch at the
    same point of the total order. *)

val members : t -> int list

val bootstrap :
  t -> next_instance:int -> members:int list -> delivered:(int * int) list ->
  unit
(** Joiner initialisation from a state transfer: start applying decisions at
    [next_instance] among [members], treating the ids in [delivered] as
    already delivered (so re-proposed stragglers are not delivered twice). *)

(** {1 Introspection (tests and benches)} *)

val delivered_count : t -> int
val next_instance : t -> int
val delivered_ids : t -> (int * int) list

(** Messages rdelivered but not yet adelivered (the proposal backlog). *)
val pending_count : t -> int
val rounds_used : t -> inst:int -> int
(** Rounds the local consensus reached in instance [inst]. *)
