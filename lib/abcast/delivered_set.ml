module Sorted = Gc_sim.Sorted

(* Per-origin compaction of delivered ids: [watermark] holds the length of
   the contiguous delivered prefix, [overflow] the sparse ids above it.
   The overflow tables are only ever probed by exact key (add/mem/drain),
   never traversed on a protocol path, so determinism does not depend on
   their bucket order; the one full traversal ([ids]) goes through the
   key-sorted helpers. *)

type t = {
  watermark : (int, int) Hashtbl.t; (* origin -> w: all mseq < w present *)
  overflow : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* origin -> mseq set *)
  mutable count : int;
}

let create () =
  { watermark = Hashtbl.create 16; overflow = Hashtbl.create 16; count = 0 }

let wm t origin = Option.value ~default:0 (Hashtbl.find_opt t.watermark origin)

let mem t (origin, mseq) =
  mseq < wm t origin
  ||
  match Hashtbl.find_opt t.overflow origin with
  | Some ov -> Hashtbl.mem ov mseq
  | None -> false

let add t (origin, mseq) =
  if mem t (origin, mseq) then false
  else begin
    t.count <- t.count + 1;
    let w = wm t origin in
    if mseq = w then begin
      (* Advance the watermark, absorbing any overflowed successors that
         are now contiguous with the prefix. *)
      let ov = Hashtbl.find_opt t.overflow origin in
      let rec absorb w =
        match ov with
        | Some ov when Hashtbl.mem ov w ->
            Hashtbl.remove ov w;
            absorb (w + 1)
        | _ -> w
      in
      Hashtbl.replace t.watermark origin (absorb (w + 1))
    end
    else begin
      let ov =
        match Hashtbl.find_opt t.overflow origin with
        | Some ov -> ov
        | None ->
            let ov = Hashtbl.create 8 in
            Hashtbl.replace t.overflow origin ov;
            ov
      in
      Hashtbl.replace ov mseq ()
    end;
    true
  end

let cardinal t = t.count
let watermark t ~origin = wm t origin

let overflow_size t =
  Sorted.fold (fun _ ov acc -> acc + Hashtbl.length ov) t.overflow 0

let ids t =
  let origins =
    List.sort_uniq Int.compare
      (Sorted.keys t.watermark @ Sorted.keys t.overflow)
  in
  List.concat_map
    (fun origin ->
      let prefix = List.init (wm t origin) (fun mseq -> (origin, mseq)) in
      let above =
        match Hashtbl.find_opt t.overflow origin with
        | Some ov -> List.map (fun mseq -> (origin, mseq)) (Sorted.keys ov)
        | None -> []
      in
      prefix @ above)
    origins
