(** Watermark-compacted set of delivered message ids [(origin, mseq)].

    Message ids from one origin are consecutive, so after a long run the
    delivered set of each origin is a huge contiguous prefix plus (at most)
    a few stragglers decided out of order.  This structure stores exactly
    that: a per-origin watermark [w] ("every mseq < w is in the set") and a
    sparse overflow for ids above it.  Membership and insertion are O(1)
    amortised, and total memory stays proportional to the number of
    origins plus the *live* out-of-order ids — not to the delivered
    history, which the flat hash table it replaces grew with forever. *)

type t

val create : unit -> t

val add : t -> int * int -> bool
(** Insert an id.  Returns [false] when it was already present.  Inserting
    the id at an origin's watermark advances the watermark past any
    previously-overflowed contiguous successors. *)

val mem : t -> int * int -> bool

val cardinal : t -> int
(** Number of ids in the set. *)

val watermark : t -> origin:int -> int
(** Every [mseq] below this is delivered for [origin] (0 when the origin is
    unknown). *)

val overflow_size : t -> int
(** Ids held sparsely above their origin's watermark — the live
    out-of-order residue (introspection and gauges). *)

val ids : t -> (int * int) list
(** Every id, sorted — O(cardinal); for state snapshots and tests. *)
