(** Size/tick watermark batching for broadcast submission paths.

    Ordering layers pay per-{e network message} costs that dwarf per-{e
    application message} costs: a reliable broadcast costs O(n^2) relays
    and a fast-path acknowledgement costs n-1 unicasts, regardless of how
    much application payload rides inside.  A batcher amortises those
    fixed costs across a burst: callers [add] items one at a time; the
    batcher emits them in submission order (preserving per-sender FIFO) as
    one list, either when [max_batch] items have accumulated (the size
    watermark) or [max_delay] milliseconds after the first buffered item
    (the tick watermark), whichever comes first.

    With [max_batch = 1] the batcher degenerates to the unbatched path:
    every [add] emits immediately and no timer is ever armed, so existing
    single-message wire traffic (and its traces) is byte-identical.

    Timers come from {!Gc_kernel.Process}, so flushes are deterministic
    under the simulator and alive-guarded (a crashed process never emits a
    trailing batch). *)

type 'a t

val create :
  Gc_kernel.Process.t ->
  ?metric:string ->
  max_batch:int ->
  max_delay:float ->
  emit:('a list -> unit) ->
  unit ->
  'a t
(** [emit] receives a non-empty list in submission order.  [metric], when
    given, names a histogram observed with each emitted batch's length.
    Raises [Invalid_argument] if [max_batch < 1]. *)

val add : 'a t -> 'a -> unit

val flush : 'a t -> unit
(** Emit whatever is buffered now (no-op when empty).  Call at natural
    boundaries — e.g. after draining an incoming batch whose processing
    generated items — so batching never adds latency where a flush point
    is already known. *)

val length : 'a t -> int
(** Items currently buffered. *)
