module Process = Gc_kernel.Process
module Rc = Gc_rchannel.Reliable_channel

type transport = {
  broadcast : Gc_net.Payload.t -> unit;
  subscribe : (origin:int -> Gc_net.Payload.t -> unit) -> unit;
}

type Gc_net.Payload.t +=
  | Mb_join_req of { p : int; have : int }
        (* [have]: the joiner's durable-log high-water mark (next index), or
           -1 when it has no log — lets the sponsor serve a delta instead of
           a full state transfer after a crash-restart *)
  | Mb_change of { adds : int list; removes : int list; sponsor : int }
  | Mb_state of { view : View.t; snapshot : Gc_net.Payload.t option }

let () =
  Gc_net.Payload.register_printer (function
    | Mb_join_req { p; _ } -> Some (Printf.sprintf "mb.join_req(%d)" p)
    | Mb_change { adds; removes; _ } ->
        Some
          (Printf.sprintf "mb.change(+%d,-%d)" (List.length adds)
             (List.length removes))
    | Mb_state { view; _ } ->
        Some (Format.asprintf "mb.state(%a)" View.pp view)
    | _ -> None)

let () =
  let module W = Gc_net.Wire in
  Gc_net.Payload.register_codec ~tag:"mb"
    ~encode:(fun enc w p ->
      match p with
      | Mb_join_req { p; have } ->
          W.u8 w 0;
          W.varint w p;
          W.varint w have;
          true
      | Mb_change { adds; removes; sponsor } ->
          W.u8 w 1;
          W.list w W.varint adds;
          W.list w W.varint removes;
          W.varint w sponsor;
          true
      | Mb_state { view; snapshot } ->
          W.u8 w 2;
          W.varint w view.View.vid;
          W.list w W.varint view.View.members;
          W.option w enc snapshot;
          true
      | _ -> false)
    ~decode:(fun dec r ->
      match W.read_u8 r with
      | 0 ->
          let p = W.read_varint r in
          let have = W.read_varint r in
          Mb_join_req { p; have }
      | 1 ->
          let adds = W.read_list r W.read_varint in
          let removes = W.read_list r W.read_varint in
          let sponsor = W.read_varint r in
          Mb_change { adds; removes; sponsor }
      | 2 ->
          let vid = W.read_varint r in
          let members = W.read_list r W.read_varint in
          let snapshot = W.read_option r dec in
          Mb_state { view = { View.vid; members }; snapshot }
      | k -> Gc_net.Payload.malformed (Printf.sprintf "mb constructor %d" k))

type t = {
  proc : Process.t;
  rc : Rc.t;
  transport : transport;
  state_transfer_delay : float;
  state_provider : (have:int -> Gc_net.Payload.t) option;
  state_installer : (Gc_net.Payload.t -> unit) option;
  (* joiner id -> the [have] it announced, consumed when the sponsor ships
     the snapshot (the view change rides the total order in between) *)
  joiner_have : (int, int) Hashtbl.t;
  mutable current : View.t;
  mutable joined : bool;
  mutable left : bool;
  mutable pending_removes : int list; (* proposed in the current view *)
  mutable view_subscribers : (View.t -> unit) list;
  mutable left_subscribers : (unit -> unit) list;
  mutable n_views : int;
  mutable join_requested_at : float option; (* pending join, for join_ms *)
  mutable change_proposed_at : float option; (* pending local change, for change_ms *)
}

let view t = t.current
let joined t = t.joined
let left t = t.left
let on_view t f = t.view_subscribers <- f :: t.view_subscribers
let on_left t f = t.left_subscribers <- f :: t.left_subscribers
let view_changes t = t.n_views

let me t = Process.id t.proc

let install t v =
  t.current <- v;
  t.pending_removes <- [];
  t.n_views <- t.n_views + 1;
  Process.incr t.proc "membership.view_changes";
  (match t.change_proposed_at with
  | Some since ->
      t.change_proposed_at <- None;
      Process.observe t.proc "membership.change_ms" (Process.now t.proc -. since)
  | None -> ());
  Process.event t.proc ~component:"membership" ~kind:Gc_obs.Event.ViewInstall
    ~msg:(Printf.sprintf "view:%d" v.View.vid)
    ~attrs:
      [
        ("vid", string_of_int v.View.vid);
        ("view", Format.asprintf "%a" View.pp v);
      ]
    ();
  List.iter (fun f -> f v) (List.rev t.view_subscribers);
  if t.joined && not (View.mem v (me t)) then begin
    t.left <- true;
    Process.emit t.proc ~component:"membership" ~event:"left" ();
    List.iter (fun f -> f ()) (List.rev t.left_subscribers)
  end

let handle_change t ~adds ~removes ~sponsor =
  let adds = List.filter (fun p -> not (View.mem t.current p)) adds
  and removes = List.filter (fun q -> View.mem t.current q) removes in
  if adds <> [] || removes <> [] then begin
    let v' = View.apply t.current ~adds ~removes in
    install t v';
    (* The sponsor ships the snapshot to each joiner once the change has a
       place in the total order, so the snapshot corresponds to a view
       boundary. *)
    if sponsor = me t && t.joined && not t.left then
      List.iter
        (fun p ->
          let have =
            match Hashtbl.find_opt t.joiner_have p with
            | Some h ->
                Hashtbl.remove t.joiner_have p;
                h
            | None -> -1
          in
          ignore
            (Process.timer t.proc ~delay:t.state_transfer_delay (fun () ->
                 (* Snapshot and view are captured together, at send time, so
                    the joiner resumes from a consistent point of the total
                    order. *)
                 let snapshot =
                   Option.map (fun f -> f ~have) t.state_provider
                 in
                 Rc.send t.rc ~size:4096 ~dst:p
                   (Mb_state { view = t.current; snapshot }))))
        adds
  end

let create proc ~rc ~transport ?(state_transfer_delay = 0.0) ?state_provider
    ?state_installer ~initial () =
  let t =
    {
      proc;
      rc;
      transport;
      state_transfer_delay;
      state_provider;
      state_installer;
      joiner_have = Hashtbl.create 4;
      current = initial;
      joined = View.mem initial (Process.id proc);
      left = false;
      pending_removes = [];
      view_subscribers = [];
      left_subscribers = [];
      n_views = 0;
      join_requested_at = None;
      change_proposed_at = None;
    }
  in
  (* The paper's membership never blocks senders during a view change; the
     gauge exists so merged reports show the 0 explicitly, against the
     traditional stack's [traditional.blocked_ms_total]. *)
  Gc_obs.Metrics.set_gauge (Process.metrics proc)
    "membership.sender_blocked_ms_total" 0.0;
  transport.subscribe (fun ~origin payload ->
      match payload with
      | Mb_change { adds; removes; sponsor } ->
          (* Changes proposed by processes that are no longer members are
             void — e.g. stale exclusions accumulated by a partitioned
             minority must not fire after the network heals. *)
          if View.mem t.current origin then
            handle_change t ~adds ~removes ~sponsor
      | _ -> ());
  Rc.on_deliver rc (fun ~src:_ payload ->
      match payload with
      | Mb_join_req { p; have } ->
          (* Sponsor side: only members broadcast the change. *)
          if t.joined && not t.left then
            if not (View.mem t.current p) then begin
              Hashtbl.replace t.joiner_have p have;
              t.transport.broadcast
                (Mb_change { adds = [ p ]; removes = []; sponsor = me t })
            end
            else if p <> me t then begin
              (* [p] is still in the view: it crashed and restarted before
                 monitoring excluded it.  No view change is needed — resync
                 it directly with a fresh snapshot, or its join request
                 would be dropped on the floor and the process would hang
                 unjoined until its own exclusion and re-add. *)
              Process.incr t.proc "membership.resyncs";
              ignore
                (Process.timer t.proc ~delay:t.state_transfer_delay (fun () ->
                     let snapshot =
                       Option.map (fun f -> f ~have) t.state_provider
                     in
                     Rc.send t.rc ~size:4096 ~dst:p
                       (Mb_state { view = t.current; snapshot })))
            end
      | Mb_state { view; snapshot } ->
          if not t.joined then begin
            (match (snapshot, t.state_installer) with
            | Some s, Some f -> f s
            | _ -> ());
            t.joined <- true;
            (match t.join_requested_at with
            | Some since ->
                t.join_requested_at <- None;
                Process.observe t.proc "membership.join_ms"
                  (Process.now t.proc -. since)
            | None -> ());
            install t view
          end
      | _ -> ());
  t

let join ?(force = false) ?(have = -1) t ~via =
  (* A process excluded earlier may rejoin: it re-enters the joiner path and
     waits for a fresh state transfer.  [force] covers the process that
     cannot know it was excluded (e.g. it sat in a minority partition and the
     members' channels to it lapsed): it demotes itself and rejoins. *)
  if t.left || force then begin
    t.left <- false;
    t.joined <- false
  end;
  if not t.joined then begin
    if t.join_requested_at = None then
      t.join_requested_at <- Some (Process.now t.proc);
    Rc.send t.rc ~size:32 ~dst:via (Mb_join_req { p = me t; have })
  end

let add t p =
  if t.joined && (not t.left) && not (View.mem t.current p) then begin
    if t.change_proposed_at = None then
      t.change_proposed_at <- Some (Process.now t.proc);
    t.transport.broadcast (Mb_change { adds = [ p ]; removes = []; sponsor = me t })
  end

let remove t q =
  if
    t.joined && (not t.left)
    && View.mem t.current q
    && not (List.mem q t.pending_removes)
  then begin
    t.pending_removes <- q :: t.pending_removes;
    if t.change_proposed_at = None then
      t.change_proposed_at <- Some (Process.now t.proc);
    t.transport.broadcast
      (Mb_change { adds = []; removes = [ q ]; sponsor = me t })
  end

let join_remove_list t ~adds ~removes =
  if t.joined && not t.left then
    t.transport.broadcast (Mb_change { adds; removes; sponsor = me t })
