(** Primary-partition group membership on top of atomic broadcast ("Group
    Membership" in Figure 9).

    The inversion at the heart of the paper (Section 3.1.1): view changes are
    ordinary messages pushed through the totally-ordered broadcast below, so
    every process installs the same sequence of views with no dedicated view
    agreement protocol — the ordering problem is solved once, in the
    broadcast component.  Because view changes share the delivery order with
    application messages, each application message is delivered in the same
    view everywhere ({e same view delivery}, Section 4.4), and nothing ever
    blocks senders during a change.

    The component is transport-agnostic: it broadcasts through a caller-
    supplied handle, which the full stack points at generic broadcast (view
    changes are [Ordered]-class, hence totally ordered with respect to
    everything, per Section 3.3).

    Operations ([join], [remove], [join_remove_list]) match the paper's
    interface.  Exclusion {e decisions} do not live here — they belong to the
    monitoring component. *)

type transport = {
  broadcast : Gc_net.Payload.t -> unit;
      (** totally-ordered broadcast (abcast, or generic broadcast with an
          [Ordered] classification) *)
  subscribe : (origin:int -> Gc_net.Payload.t -> unit) -> unit;
      (** deliveries of the same broadcast *)
}

type t

val create :
  Gc_kernel.Process.t ->
  rc:Gc_rchannel.Reliable_channel.t ->
  transport:transport ->
  ?state_transfer_delay:float ->
  ?state_provider:(have:int -> Gc_net.Payload.t) ->
  ?state_installer:(Gc_net.Payload.t -> unit) ->
  initial:View.t ->
  unit ->
  t
(** A founding member starts with [initial] containing itself; a joiner
    starts with [initial] {e not} containing itself and calls {!join}.

    [state_provider]/[state_installer] serialise and install the snapshot
    shipped to joiners (the stack packs broadcast bookkeeping and application
    state in it).  [have] is the joiner's announced durable-log high-water
    mark (-1 when it has none): a provider backed by a delivery log can ship
    only the suffix the joiner is missing instead of the full state.
    [state_transfer_delay] (default 0) models snapshot serialisation time —
    the knob the responsiveness experiments turn, since this is the cost
    wrongly excluded processes pay in traditional stacks. *)

val join : ?force:bool -> ?have:int -> t -> via:int -> unit
(** Ask member [via] to sponsor us into the group.  On completion the view
    (including us) is installed and {!joined} becomes true.  Retry with a
    different sponsor if nothing happens (sponsor crash).  [force] (default
    false) demotes this process to joiner first — for a process that may
    have been excluded without learning it (e.g. after a partition, when the
    members' reliable channels to it lapsed).  [have] (default -1 = none) is
    forwarded to the sponsor's [state_provider].

    A join request from a process still present in [via]'s current view does
    not broadcast a view change: the sponsor resyncs the (evidently
    restarted) process directly with a fresh snapshot against the current
    view, counting [membership.resyncs] — without this, a process that
    crashes and rejoins faster than its exclusion is silently ignored and
    hangs unjoined. *)

val add : t -> int -> unit
(** Member-side: sponsor process [p] into the group (broadcasts the view
    change; the state snapshot is sent when the change is delivered). *)

val remove : t -> int -> unit
(** Propose excluding [q] (or leaving, when [q] is the caller).  Idempotent
    per view. *)

val join_remove_list : t -> adds:int list -> removes:int list -> unit
(** Batch view change: one new view applying all operations at once. *)

val view : t -> View.t
val joined : t -> bool
(** A founding member is joined from the start; a joiner after state
    transfer. *)

val left : t -> bool
(** True once a delivered view excludes this process. *)

val on_view : t -> (View.t -> unit) -> unit
(** Called at every view installation ([new_view] in Figure 9), including the
    joiner's first. *)

val on_left : t -> (unit -> unit) -> unit
(** Called when this process is excluded from the group. *)

val view_changes : t -> int
(** Number of views installed locally (for tests and benches). *)
