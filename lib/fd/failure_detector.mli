(** Heartbeat failure detector ("Failure Detection" in Figure 9).

    One detector instance per process broadcasts heartbeats to its peers and
    timestamps the heartbeats it receives.  On top of that single heartbeat
    stream, any number of {e monitors} can be opened, each with its own
    timeout and callbacks ([start_stop_monitor] / [suspect] in the paper's
    interface diagram).  This is the decoupling the paper builds on: the
    consensus component opens an aggressive monitor (seconds), while the
    monitoring component opens a conservative one (minutes), over the same
    heartbeats (Section 3.3.2).

    The detector is unreliable in the ◇S sense: it may suspect correct
    processes (e.g. during delay spikes), and revises its output — a late
    heartbeat turns a suspicion back into trust. *)

type t

val create :
  Gc_kernel.Process.t -> ?hb_period:float -> peers:int list -> unit -> t
(** Start heartbeating to [peers] every [hb_period] ms (default 20) and
    listening for their heartbeats.  [peers] may include the owner; it is
    ignored. *)

val set_peers : t -> int list -> unit
(** Replace the peer set (membership changes).  Peers no longer present stop
    being heartbeated and monitored. *)

val peers : t -> int list

type monitor

val monitor :
  t ->
  ?label:string ->
  timeout:float ->
  on_suspect:(int -> unit) ->
  ?on_trust:(int -> unit) ->
  unit ->
  monitor
(** Open a monitor: peer [q] becomes suspected when no heartbeat from [q] has
    arrived for [timeout] ms, and trusted again if one later arrives.
    Callbacks fire on each transition. *)

val stop : monitor -> unit

val suspected : monitor -> int -> bool
val suspects : monitor -> int list

(** {1 Fault injection} *)

val suppress : t -> peer:int -> until:float -> unit
(** Force a suspicion flap: heartbeats arriving from [peer] are discarded
    until virtual time [until], so every monitor suspects [peer] once its
    timeout elapses and trusts it again shortly after [until].  The
    heartbeats really are lost (their arrival statistics are not recorded),
    mirroring a receiver-side scheduling stall.  Used by the fault-schedule
    explorer ({!Gc_faultgen.Injector}); no-op when [until] is already
    past. *)

(** {1 Quality accounting (environment-side, for experiments)} *)

val suspicion_count : monitor -> int
(** Total suspect transitions so far. *)

val wrong_suspicion_count : monitor -> int
(** Suspect transitions where the target was in fact alive (checked against
    the simulator's ground truth; used only by benches/tests). *)

(** {1 Adaptive monitoring (extension)}

    A Chen-style adaptive monitor: the per-peer timeout follows the observed
    heartbeat inter-arrival distribution ([mean + factor * stddev + margin]
    over a sliding window), so it tightens on quiet links and loosens under
    jitter without manual tuning — a natural refinement of the paper's
    small-timeout argument (Section 4.3). *)

val adaptive_monitor :
  t ->
  ?label:string ->
  ?margin:float ->
  ?factor:float ->
  on_suspect:(int -> unit) ->
  ?on_trust:(int -> unit) ->
  unit ->
  monitor
(** [margin] (default 20 ms) and [factor] (default 4.0) shape the adaptive
    timeout; until five samples are seen the timeout is
    [4 * heartbeat period + margin]. *)

val current_timeout : t -> monitor -> int -> float
(** The timeout the monitor currently applies to the given peer (fixed, or
    the adaptive estimate). *)
