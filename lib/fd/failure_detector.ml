module Process = Gc_kernel.Process
module Sorted = Gc_sim.Sorted

type Gc_net.Payload.t += Heartbeat

let () =
  Gc_net.Payload.register_codec ~tag:"fd"
    ~encode:(fun _enc _w p -> match p with Heartbeat -> true | _ -> false)
    ~decode:(fun _dec _r -> Heartbeat)

let () =
  Gc_net.Payload.register_printer (function
    | Heartbeat -> Some "fd.heartbeat"
    | _ -> None)

type timeout_rule =
  | Fixed of float
  | Adaptive of { margin : float; factor : float }

type monitor = {
  label : string;
  rule : timeout_rule;
  on_suspect : int -> unit;
  on_trust : (int -> unit) option;
  (* suspected peer -> virtual time the suspicion was raised *)
  suspected_set : (int, float) Hashtbl.t;
  mutable stopped : bool;
  mutable suspicions : int;
  mutable wrong : int;
  mutable checker : Process.periodic option;
}

(* Sliding window of heartbeat inter-arrival times per peer, for adaptive
   timeouts. *)
type arrival_stats = {
  mutable samples : float list; (* newest first, bounded *)
  mutable count : int;
}

let window = 20

type t = {
  proc : Process.t;
  hb_period : float;
  mutable peer_list : int list;
  last_hb : (int, float) Hashtbl.t;
  arrivals : (int, arrival_stats) Hashtbl.t;
  (* peer -> virtual time until which its heartbeats are discarded
     (fault injection: forces a suspicion flap) *)
  muted : (int, float) Hashtbl.t;
  mutable monitors : monitor list;
}

let peers t = t.peer_list

let set_peers t peers =
  let peers = List.filter (fun q -> q <> Process.id t.proc) peers in
  t.peer_list <- peers;
  (* Grant newly added peers a fresh grace period. *)
  let now = Process.now t.proc in
  List.iter
    (fun q -> if not (Hashtbl.mem t.last_hb q) then Hashtbl.replace t.last_hb q now)
    peers;
  (* Forget peers that left, and clear their suspicions. *)
  let gone =
    List.filter (fun q -> not (List.mem q peers)) (Sorted.keys t.last_hb)
  in
  List.iter
    (fun q ->
      Hashtbl.remove t.last_hb q;
      List.iter (fun m -> Hashtbl.remove m.suspected_set q) t.monitors)
    gone

let suppress t ~peer ~until =
  let now = Process.now t.proc in
  if until > now then begin
    Hashtbl.replace t.muted peer until;
    Process.event t.proc ~component:"fd" ~kind:(Gc_obs.Event.Custom "suppress")
      ~attrs:
        [ ("peer", string_of_int peer); ("until", Printf.sprintf "%g" until) ]
      ()
  end

let muted t src now =
  match Hashtbl.find_opt t.muted src with
  | Some until when now < until -> true
  | Some _ ->
      Hashtbl.remove t.muted src;
      false
  | None -> false

let note_arrival t src now =
  let gap =
    match Hashtbl.find_opt t.last_hb src with
    | Some last -> Some (now -. last)
    | None -> None
  in
  Hashtbl.replace t.last_hb src now;
  match gap with
  | None -> ()
  | Some gap ->
      let st =
        match Hashtbl.find_opt t.arrivals src with
        | Some st -> st
        | None ->
            let st = { samples = []; count = 0 } in
            Hashtbl.replace t.arrivals src st;
            st
      in
      st.samples <- gap :: (if st.count >= window then
                              List.filteri (fun i _ -> i < window - 1) st.samples
                            else st.samples);
      st.count <- min window (st.count + 1)

let create proc ?(hb_period = 20.0) ~peers () =
  let t =
    {
      proc;
      hb_period;
      peer_list = [];
      last_hb = Hashtbl.create 16;
      arrivals = Hashtbl.create 16;
      muted = Hashtbl.create 4;
      monitors = [];
    }
  in
  set_peers t peers;
  Process.on_receive proc (fun ~src payload ->
      match payload with
      | Heartbeat ->
          let now = Process.now proc in
          if not (muted t src now) then note_arrival t src now
      | _ -> ());
  ignore
    (Process.every proc ~period:hb_period (fun () ->
         List.iter
           (fun q -> Process.send proc ~size:16 ~dst:q Heartbeat)
           t.peer_list));
  t

(* Effective timeout for [q] under this monitor's rule.  Adaptive: mean of
   the observed inter-arrival gaps plus [factor] standard deviations plus
   [margin] (Chen-style), floored at two heartbeat periods while the window
   warms up. *)
let timeout_for t m q =
  match m.rule with
  | Fixed timeout -> timeout
  | Adaptive { margin; factor } -> (
      match Hashtbl.find_opt t.arrivals q with
      | Some st when st.count >= 5 ->
          let n = float_of_int st.count in
          let mean = List.fold_left ( +. ) 0.0 st.samples /. n in
          let var =
            List.fold_left (fun a x -> a +. ((x -. mean) *. (x -. mean))) 0.0
              st.samples
            /. n
          in
          Float.max (2.0 *. t.hb_period)
            (mean +. (factor *. sqrt var) +. margin)
      | _ -> (4.0 *. t.hb_period) +. margin)

let check t m () =
  if not m.stopped then begin
    let now = Process.now t.proc in
    let consider q =
      match Hashtbl.find_opt t.last_hb q with
      | None -> ()
      | Some last ->
          let late = now -. last > timeout_for t m q in
          let currently = Hashtbl.mem m.suspected_set q in
          if late && not currently then begin
            Hashtbl.replace m.suspected_set q now;
            m.suspicions <- m.suspicions + 1;
            Process.incr t.proc "fd.suspicions";
            if Process.oracle_alive t.proc q then begin
              m.wrong <- m.wrong + 1;
              Process.incr t.proc "fd.wrong_suspicions"
            end;
            Process.event t.proc ~component:"fd" ~kind:Gc_obs.Event.Suspect
              ~attrs:[ ("monitor", m.label); ("peer", string_of_int q) ]
              ();
            m.on_suspect q
          end
          else if (not late) && currently then begin
            (match Hashtbl.find_opt m.suspected_set q with
            | Some since ->
                (* A retraction means the suspicion was a mistake; its
                   duration is the paper's "mistake duration" metric. *)
                Process.observe t.proc "fd.mistake_ms" (now -. since)
            | None -> ());
            Hashtbl.remove m.suspected_set q;
            Process.incr t.proc "fd.retractions";
            Process.event t.proc ~component:"fd" ~kind:Gc_obs.Event.Trust
              ~attrs:[ ("monitor", m.label); ("peer", string_of_int q) ]
              ();
            match m.on_trust with Some f -> f q | None -> ()
          end
    in
    List.iter consider t.peer_list
  end

let make_monitor t ~label ~rule ~on_suspect ~on_trust ~granularity =
  let m =
    {
      label;
      rule;
      on_suspect;
      on_trust;
      suspected_set = Hashtbl.create 8;
      stopped = false;
      suspicions = 0;
      wrong = 0;
      checker = None;
    }
  in
  m.checker <-
    Some (Process.every t.proc ~period:granularity (fun () -> check t m ()));
  t.monitors <- m :: t.monitors;
  m

let monitor t ?(label = "fd") ~timeout ~on_suspect ?on_trust () =
  (* Check often enough that a suspicion is raised within ~5% of the nominal
     timeout, but never slower than the heartbeat period. *)
  let granularity = Float.max (timeout /. 20.0) (t.hb_period /. 2.0) in
  make_monitor t ~label ~rule:(Fixed timeout) ~on_suspect ~on_trust ~granularity

let adaptive_monitor t ?(label = "fd-adaptive") ?(margin = 20.0)
    ?(factor = 4.0) ~on_suspect ?on_trust () =
  make_monitor t ~label ~rule:(Adaptive { margin; factor }) ~on_suspect
    ~on_trust ~granularity:(t.hb_period /. 2.0)

let current_timeout t m q = timeout_for t m q

let stop m =
  m.stopped <- true;
  match m.checker with Some c -> Process.cancel_periodic c | None -> ()

let suspected m q = Hashtbl.mem m.suspected_set q
let suspects m = Sorted.keys ~cmp:Int.compare m.suspected_set
let suspicion_count m = m.suspicions
let wrong_suspicion_count m = m.wrong
