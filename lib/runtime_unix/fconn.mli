(** A non-blocking TCP connection carrying {!Gc_net.Frame}-framed
    payloads, driven by an {!Evloop}.

    Used for both halves of the real runtime: the peer mesh between
    [gcs_server] daemons and the client connections a server accepts.
    Reads are decoded incrementally; writes are buffered and flushed on
    writability.  Rejected frames are counted ([net.frame_reject]) and
    skipped; a framing-level corruption or peer hangup closes the
    connection and fires [on_close] exactly once. *)

type t

val attach :
  loop:Evloop.t ->
  ?metrics:Gc_obs.Metrics.t ->
  ?frame_limit:int ->
  ?connecting:bool ->
  Unix.file_descr ->
  on_payload:(t -> Gc_net.Payload.t -> unit) ->
  on_close:(t -> unit) ->
  t
(** Take ownership of a socket (sets it non-blocking).  [connecting] marks
    an in-progress [Unix.connect]: sends are buffered until the socket
    reports writable and [SO_ERROR] is clean. *)

val send : t -> Gc_net.Payload.t -> unit
(** Frame and enqueue one payload.  Unencodable payloads and writes past
    the buffer cap (256 KiB) are dropped — datagram semantics; the
    reliable-channel layer above retransmits. *)

val close : t -> unit
(** Idempotent; fires [on_close]. *)

val closed : t -> bool

val fd : t -> Unix.file_descr

type stats = {
  bytes_in : int;  (** bytes read off the socket *)
  bytes_out : int;  (** bytes actually written (not merely buffered) *)
  frames_in : int;  (** complete frames decoded *)
  frames_out : int;  (** frames enqueued for sending *)
}

val stats : t -> stats
(** This connection's lifetime I/O counters — the per-connection load
    the server's [Stats] endpoint reports.  When [attach] was given
    [?metrics], the same quantities also accumulate into the shared
    registry as [net.bytes_in]/[net.bytes_out]/[net.frames_in]/
    [net.frames_out]. *)

val listen :
  loop:Evloop.t ->
  ?backlog:int ->
  Unix.sockaddr ->
  on_accept:(Unix.file_descr -> Unix.sockaddr -> unit) ->
  Unix.file_descr
(** Bind + listen + watch: every inbound connection is handed to
    [on_accept] (the socket is already non-blocking). *)

val bound_port : Unix.file_descr -> int
(** The actual port of a bound socket (for [port 0] binds in tests). *)
