(** Single-threaded [Unix.select] event loop: the real-time counterpart of
    the discrete-event {!Gc_sim.Engine}.

    Owns a wall-clock timer heap and a registry of watched file
    descriptors.  One loop drives everything in a process — every
    {!Runtime_unix} node, every framed client connection — so protocol
    code keeps the single-threaded execution model it has under the
    simulator.  Times are milliseconds since {!create}. *)

type t

val create : ?metrics:Gc_obs.Metrics.t -> unit -> t
(** With [metrics], the loop profiles itself into the registry: per-tick
    histograms [evloop.tick_ms] (whole iteration),
    [evloop.select_wait_ms] (blocked in [select]) and
    [evloop.callback_ms] (dispatching descriptor callbacks and timers);
    per-timer [evloop.timer_lag_ms] (firing time minus deadline) with
    counter [evloop.timer_overdue] for lags over 5 ms; counter
    [evloop.ticks] and gauge [evloop.open_fds] (watched descriptors).
    Without it the loop records nothing. *)

val now : t -> float
(** Milliseconds of wall-clock time since the loop was created. *)

val schedule : t -> delay:float -> (unit -> unit) -> Gc_kernel.Runtime.timer
(** Run the callback [delay] ms from now (never before). *)

val set_read : t -> Unix.file_descr -> (unit -> unit) option -> unit
(** Install ([Some]) or remove ([None]) the readable-callback for a
    descriptor. *)

val set_write : t -> Unix.file_descr -> (unit -> unit) option -> unit
(** Install or remove the writable-callback. *)

val forget : t -> Unix.file_descr -> unit
(** Drop both callbacks (before closing the descriptor). *)

val watched_fds : t -> Unix.file_descr list
(** The currently watched descriptors in ascending fd order — the order
    {!run_once} polls and dispatches them in, independent of registration
    history. *)

val run_once : t -> max_wait:float -> unit
(** One iteration: wait up to [max_wait] ms (bounded by the next timer
    deadline) for descriptor activity, dispatch ready callbacks, fire due
    timers. *)

val run_for : t -> float -> unit
(** Iterate for the given number of milliseconds (tests, demos). *)

val stop : t -> unit
(** Make {!run} return after the current iteration. *)

val run : t -> unit
(** Iterate until {!stop}. *)
