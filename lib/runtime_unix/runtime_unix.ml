module Runtime = Gc_kernel.Runtime
module Payload = Gc_net.Payload
module Wire = Gc_net.Wire

type Payload.t += Datagram of { src : int; inner : Payload.t }

let () =
  Payload.register_printer (function
    | Datagram { src; inner } ->
        Some (Printf.sprintf "dg<%d>(%s)" src (Payload.to_string inner))
    | _ -> None);
  Payload.register_codec ~tag:"dg"
    ~encode:(fun enc w p ->
      match p with
      | Datagram { src; inner } ->
          Wire.varint w src;
          enc w inner;
          true
      | _ -> false)
    ~decode:(fun dec r ->
      let src = Wire.read_varint r in
      let inner = dec r in
      Datagram { src; inner })

(* Wait at least this long between dial attempts to an unreachable peer. *)
let redial_ms = 200.0

type peer_link = {
  addr : Unix.sockaddr;
  mutable conn : Fconn.t option;
  mutable last_dial : float; (* loop time of the last connect attempt *)
}

type t = {
  loop : Evloop.t;
  me : int;
  metrics : Gc_obs.Metrics.t option;
  trace : Gc_sim.Trace.t;
  frame_limit : int option;
  handlers : (int, src:int -> Payload.t -> unit) Hashtbl.t;
  peers : (int, peer_link) Hashtbl.t;
  mutable inbound : Fconn.t list;
  mutable listener : Unix.file_descr option;
  mutable detached : bool;
  rng_seed : Gc_sim.Rng.t; (* entropy-seeded root for per-process splits *)
}

let bump t name =
  match t.metrics with
  | Some m -> Gc_obs.Metrics.incr m name
  | None -> ()

let deliver t ~src inner =
  if not t.detached then
    match Hashtbl.find_opt t.handlers t.me with
    | Some handler -> handler ~src inner
    | None -> ()

let on_peer_payload t _conn payload =
  match payload with
  | Datagram { src; inner } -> deliver t ~src inner
  | _ -> bump t "net.frame_reject" (* peers only speak Datagram *)

let accept_inbound t client _addr =
  let conn =
    Fconn.attach ~loop:t.loop ?metrics:t.metrics ?frame_limit:t.frame_limit
      client
      ~on_payload:(fun conn p -> on_peer_payload t conn p)
      ~on_close:(fun conn ->
        t.inbound <- List.filter (fun c -> c != conn) t.inbound)
  in
  t.inbound <- conn :: t.inbound

let create ~loop ~me ?metrics ?trace ?frame_limit ?listen () =
  let trace =
    match trace with Some tr -> tr | None -> Gc_sim.Trace.create ~enabled:false ()
  in
  let t =
    {
      loop;
      me;
      metrics;
      trace;
      frame_limit;
      handlers = Hashtbl.create 4;
      peers = Hashtbl.create 16;
      inbound = [];
      listener = None;
      detached = false;
      rng_seed =
        (* Entropy, not determinism: the real runtime's jitter should not
           repeat across daemon restarts. *)
        Gc_sim.Rng.create
          (Int64.logxor
             (Int64.of_float (Unix.gettimeofday () *. 1e6))
             (Int64.of_int ((Unix.getpid () * 1_000_003) + me)));
    }
  in
  (match listen with
  | Some addr ->
      t.listener <-
        Some (Fconn.listen ~loop addr ~on_accept:(fun fd a -> accept_inbound t fd a))
  | None -> ());
  t

let port t =
  match t.listener with Some sock -> Fconn.bound_port sock | None -> 0

let set_peers t peers =
  List.iter
    (fun (id, addr) ->
      if id <> t.me && not (Hashtbl.mem t.peers id) then
        Hashtbl.replace t.peers id
          { addr; conn = None; last_dial = Float.neg_infinity })
    peers

let dial t link =
  link.last_dial <- Evloop.now t.loop;
  bump t "net.reconnects";
  match Unix.socket (Unix.domain_of_sockaddr link.addr) Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | sock -> (
      Unix.set_nonblock sock;
      let connecting =
        match Unix.connect sock link.addr with
        | () -> false
        | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> true
        | exception Unix.Unix_error _ ->
            (try Unix.close sock with Unix.Unix_error _ -> ());
            (* gcs-lint: allow B2 — Exit is control flow, not a fault: the
               [dial] wrapper below catches it to abandon this attempt *)
            raise Exit
      in
      let conn =
        Fconn.attach ~loop:t.loop ?metrics:t.metrics
          ?frame_limit:t.frame_limit ~connecting sock
          ~on_payload:(fun conn p -> on_peer_payload t conn p)
          ~on_close:(fun _ -> link.conn <- None)
      in
      link.conn <- Some conn)

let dial t link = try dial t link with Exit -> ()

let send t ?size:_ ~src ~dst payload =
  if not t.detached then
    if dst = t.me then
      (* Local loopback: defer to a zero-delay timer so delivery never
         reenters the caller's stack frame (matches the simulator). *)
      ignore
        (Evloop.schedule t.loop ~delay:0.0 (fun () ->
             deliver t ~src payload))
    else
      match Hashtbl.find_opt t.peers dst with
      | None -> bump t "net.tx_drop"
      | Some link -> (
          (match link.conn with
          | None when Evloop.now t.loop -. link.last_dial >= redial_ms ->
              dial t link
          | _ -> ());
          match link.conn with
          | None -> bump t "net.tx_drop"
          | Some conn -> Fconn.send conn (Datagram { src; inner = payload }))

let shutdown t =
  t.detached <- true;
  (match t.listener with
  | Some sock ->
      Evloop.forget t.loop sock;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      t.listener <- None
  | None -> ());
  List.iter Fconn.close t.inbound;
  t.inbound <- [];
  (* Close peer links in node-id order so shutdown traffic (FIN ordering,
     trace records) does not depend on Hashtbl layout. *)
  Gc_sim.Sorted.iter ~cmp:Int.compare
    (fun _ link -> match link.conn with Some c -> Fconn.close c | None -> ())
    t.peers

let runtime t =
  {
    Runtime.backend = "unix";
    now = (fun () -> Evloop.now t.loop);
    schedule = (fun ~delay f -> Evloop.schedule t.loop ~delay f);
    send = (fun ?size ~src ~dst p -> send t ?size ~src ~dst p);
    register = (fun ~node f -> Hashtbl.replace t.handlers node f);
    detach = (fun node -> if node = t.me then shutdown t);
    oracle_alive = (fun _ -> false);
    split_rng =
      (fun () ->
        let rng = Gc_sim.Rng.split t.rng_seed in
        {
          Runtime.rand_float = (fun bound -> Gc_sim.Rng.float rng bound);
          rand_int = (fun bound -> Gc_sim.Rng.int rng bound);
        });
    trace = t.trace;
  }
