(** File-backed {!Gc_kernel.Storage} backend: the durable delivery log and
    snapshot slot behind [gcs_server --data-dir].

    Records are CRC-framed ([varint index | str entry | CRC-32]); opening a
    directory scans the log, truncates any torn or corrupt tail back to the
    last intact frame (counting [storage.torn_tail_dropped]) and replays
    the surviving prefix into an in-memory mirror.  [append] buffers;
    [sync] writes the batch and fsyncs once (group commit), and a batch
    larger than 1 MiB syncs itself.  [iter_from] reads the mirror, so
    unsynced appends are replayable within the process.  Snapshots are
    written to a temp file, fsynced and renamed — always either the old or
    the new snapshot, never a torn one. *)

type t

val create : ?metrics:Gc_obs.Metrics.t -> dir:string -> unit -> t
(** Open (creating as needed) the data directory and recover the log. *)

val storage : t -> Gc_kernel.Storage.t
(** The capability record over this store. *)

val open_dir : ?metrics:Gc_obs.Metrics.t -> dir:string -> unit -> Gc_kernel.Storage.t
(** [storage (create ...)]. *)
