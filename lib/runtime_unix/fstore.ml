(* File-backed Gc_kernel.Storage: the durable log under gcs_server
   --data-dir.

   Layout: DIR/log holds the delivery log, DIR/snapshot the latest
   application snapshot.  Both use the same CRC framing — a record is

     varint index | str entry | 4-byte LE CRC-32 of the preceding bytes

   so a crash mid-write leaves a tail that fails either the varint/str
   decode (Wire.Short) or the checksum; open truncates the file back to
   the last good frame and counts storage.torn_tail_dropped.

   Appends are buffered; sync writes the batch and fsyncs once (group
   commit).  iter_from is served from an in-memory mirror, so unsynced
   appends are still replayable within the process — durability, not
   visibility, is what sync buys. *)

module Metrics = Gc_obs.Metrics
module Wire = Gc_net.Wire

type t = {
  dir : string;
  metrics : Metrics.t;
  entries : (int, string) Hashtbl.t;  (* index -> entry, the mirror *)
  mutable lo : int;
  mutable next : int;
  mutable fd : Unix.file_descr;  (* log, append mode *)
  pending : Buffer.t;  (* framed records not yet written *)
  mutable dirty : bool;  (* appends since the last fsync *)
  mutable closed : bool;
}

let log_path dir = Filename.concat dir "log"
let snapshot_path dir = Filename.concat dir "snapshot"

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let read_file path =
  if Sys.file_exists path then
    In_channel.with_open_bin path In_channel.input_all
  else ""

(* One framed record into [w]; the CRC covers index + entry bytes. *)
let frame w ~index entry =
  let body = Buffer.create (String.length entry + 8) in
  Wire.varint body index;
  Wire.str body entry;
  let body = Buffer.contents body in
  Buffer.add_string w body;
  let crc = Wire.crc32 body in
  for i = 0 to 3 do
    Buffer.add_char w (Char.chr ((crc lsr (8 * i)) land 0xff))
  done

(* Parse frames from [s]; returns records in order plus the byte offset of
   the first bad/torn frame (= String.length s when the file is clean). *)
let scan s =
  let r = Wire.reader s in
  let records = ref [] in
  let good = ref 0 in
  (try
     while Wire.remaining r > 0 do
       let start = !good in
       let index = Wire.read_varint r in
       let entry = Wire.read_str r in
       let body_len =
         String.length s - Wire.remaining r - start
       in
       let stored =
         let b = ref 0 in
         for i = 0 to 3 do
           b := !b lor (Wire.read_u8 r lsl (8 * i))
         done;
         !b
       in
       if stored <> Wire.crc32 ~pos:start ~len:body_len s then raise Exit;
       records := (index, entry) :: !records;
       good := String.length s - Wire.remaining r
     done
   with Wire.Short | Exit -> ());
  (List.rev !records, !good)

let update_gauge t =
  Metrics.set_gauge t.metrics "storage.log_entries"
    (float_of_int (t.next - t.lo))

let write_pending t =
  if Buffer.length t.pending > 0 then begin
    let s = Buffer.contents t.pending in
    Buffer.clear t.pending;
    let n = String.length s in
    let written = ref 0 in
    while !written < n do
      written :=
        !written
        + Unix.write_substring t.fd s !written (n - !written)
    done
  end

(* Flush threshold: append syncs itself once this much is buffered, so a
   long gap between explicit syncs cannot grow the batch without bound. *)
let auto_sync_bytes = 1 lsl 20

(* Clean-store syncs are free: callers that sync eagerly (per-reply
   acked-means-durable mode, the group-commit timer on an idle server)
   pay for an fsync only when something was actually appended since the
   last one. *)
let do_sync t =
  if (not t.closed) && t.dirty then begin
    write_pending t;
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    t.dirty <- false;
    Metrics.incr t.metrics "storage.syncs"
  end

let do_append t entry =
  let idx = t.next in
  Hashtbl.replace t.entries idx entry;
  t.next <- idx + 1;
  frame t.pending ~index:idx entry;
  t.dirty <- true;
  Metrics.incr t.metrics "storage.appends";
  update_gauge t;
  if Buffer.length t.pending >= auto_sync_bytes then do_sync t;
  idx

let do_iter_from t from f =
  for idx = max from t.lo to t.next - 1 do
    match Hashtbl.find_opt t.entries idx with
    | Some entry -> f ~index:idx entry
    | None -> ()
  done

(* Rewrite the log with entries >= upto: frame into a temp file, fsync,
   rename over the log, reopen the append fd. *)
let do_truncate_before t upto =
  let upto = min upto t.next in
  if upto > t.lo then begin
    write_pending t;
    let w = Buffer.create 4096 in
    for idx = upto to t.next - 1 do
      match Hashtbl.find_opt t.entries idx with
      | Some entry -> frame w ~index:idx entry
      | None -> ()
    done;
    let tmp = log_path t.dir ^ ".tmp" in
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (Buffer.contents w);
        Out_channel.flush oc;
        try Unix.fsync (Unix.descr_of_out_channel oc)
        with Unix.Unix_error _ -> ());
    Unix.rename tmp (log_path t.dir);
    fsync_dir t.dir;
    Unix.close t.fd;
    t.fd <-
      Unix.openfile (log_path t.dir)
        [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
        0o644;
    for idx = t.lo to upto - 1 do
      Hashtbl.remove t.entries idx
    done;
    t.lo <- upto;
    (* The rewrite durably captured every live entry (temp + fsync +
       rename): nothing is left to sync. *)
    t.dirty <- false;
    Metrics.incr t.metrics "storage.truncations";
    update_gauge t
  end

let do_save_snapshot t ~index blob =
  let w = Buffer.create (String.length blob + 16) in
  frame w ~index blob;
  let tmp = snapshot_path t.dir ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Buffer.contents w);
      Out_channel.flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
  Unix.rename tmp (snapshot_path t.dir);
  fsync_dir t.dir;
  Metrics.incr t.metrics "storage.snapshots"

let do_load_snapshot t =
  let s = read_file (snapshot_path t.dir) in
  if s = "" then None
  else
    match scan s with (index, blob) :: _, _ -> Some (index, blob) | [], _ -> None

let do_close t =
  if not t.closed then begin
    do_sync t;
    t.closed <- true;
    Unix.close t.fd
  end

let create ?metrics ~dir () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  mkdir_p dir;
  let raw = read_file (log_path dir) in
  let records, good = scan raw in
  if good < String.length raw then begin
    (* Torn or corrupt tail: drop it on disk so the next open is clean. *)
    (try Unix.truncate (log_path dir) good with Unix.Unix_error _ -> ());
    Metrics.incr m "storage.torn_tail_dropped"
  end;
  let entries = Hashtbl.create 64 in
  List.iter (fun (idx, entry) -> Hashtbl.replace entries idx entry) records;
  let lo, next =
    match records with
    | (first, _) :: _ ->
        (first, fst (List.nth records (List.length records - 1)) + 1)
    | [] -> (
        (* Empty log: a snapshot pins the index space, else start at 0. *)
        let s = read_file (snapshot_path dir) in
        match scan s with (index, _) :: _, _ -> (index, index) | [], _ -> (0, 0))
  in
  let fd =
    Unix.openfile (log_path dir)
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
      0o644
  in
  let t =
    {
      dir;
      metrics = m;
      entries;
      lo;
      next;
      fd;
      pending = Buffer.create 4096;
      dirty = false;
      closed = false;
    }
  in
  update_gauge t;
  t

let storage t =
  {
    Gc_kernel.Storage.backend = "file";
    append = (fun entry -> do_append t entry);
    sync = (fun () -> do_sync t);
    iter_from = (fun from f -> do_iter_from t from f);
    truncate_before = (fun upto -> do_truncate_before t upto);
    extent = (fun () -> (t.lo, t.next));
    save_snapshot = (fun ~index blob -> do_save_snapshot t ~index blob);
    load_snapshot = (fun () -> do_load_snapshot t);
    close = (fun () -> do_close t);
  }

let open_dir ?metrics ~dir () = storage (create ?metrics ~dir ())
