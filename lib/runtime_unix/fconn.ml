module Frame = Gc_net.Frame

let out_cap = 256 * 1024

type stats = {
  bytes_in : int;
  bytes_out : int;
  frames_in : int;
  frames_out : int;
}

type t = {
  loop : Evloop.t;
  sock : Unix.file_descr;
  metrics : Gc_obs.Metrics.t option;
  decoder : Frame.Decoder.t;
  out : Buffer.t;
  mutable out_pos : int; (* flushed prefix of [out] *)
  mutable connecting : bool;
  mutable is_closed : bool;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable frames_in : int;
  mutable frames_out : int;
  on_payload : t -> Gc_net.Payload.t -> unit;
  on_close : t -> unit;
  scratch : Bytes.t;
}

let fd t = t.sock
let closed t = t.is_closed

let stats t =
  {
    bytes_in = t.bytes_in;
    bytes_out = t.bytes_out;
    frames_in = t.frames_in;
    frames_out = t.frames_out;
  }

let count t name by =
  match t.metrics with
  | Some m -> Gc_obs.Metrics.incr ~by m name
  | None -> ()

(* Teardown happens exactly once, no matter which path finds the peer gone
   first (EOF on read, EPIPE/ECONNRESET mid-flush, an explicit close): the
   [is_closed] latch flips before anything else runs, the watcher — read
   AND write callback — is dropped before the descriptor is closed (so a
   reused fd number can never inherit a stale callback), and the out
   buffer is released here rather than waiting for the GC to collect the
   connection (it caps at [out_cap] — 256 KiB of dead bytes otherwise). *)
let close t =
  if not t.is_closed then begin
    t.is_closed <- true;
    Evloop.forget t.loop t.sock;
    Buffer.clear t.out;
    t.out_pos <- 0;
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    t.on_close t
  end

let pending_out t = Buffer.length t.out - t.out_pos

let rec flush t =
  if (not t.is_closed) && not t.connecting then begin
    let n = pending_out t in
    if n = 0 then begin
      (* Drained: compact and stop watching for writability. *)
      Buffer.clear t.out;
      t.out_pos <- 0;
      Evloop.set_write t.loop t.sock None
    end
    else begin
      let chunk = Bytes.unsafe_of_string (Buffer.contents t.out) in
      match Unix.write t.sock chunk t.out_pos n with
      | written ->
          t.out_pos <- t.out_pos + written;
          t.bytes_out <- t.bytes_out + written;
          count t "net.bytes_out" written;
          if written = n then flush t
          else Evloop.set_write t.loop t.sock (Some (fun () -> flush t))
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
          Evloop.set_write t.loop t.sock (Some (fun () -> flush t))
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          (* A signal interrupting the write is not a dead peer: the bytes
             are still queued, try again. *)
          flush t
      | exception Unix.Unix_error _ ->
          (* EPIPE / ECONNRESET / anything fatal mid-flush: full teardown.
             [close] drops the write callback with the watcher, so the
             half-flushed buffer can never be retried against a closed
             (or recycled) descriptor. *)
          close t
    end
  end

let send t payload =
  if not t.is_closed then
    match Frame.encode payload with
    | Error _ -> () (* unencodable: dropped, datagram semantics *)
    | Ok frame ->
        if pending_out t + String.length frame <= out_cap then begin
          Buffer.add_string t.out frame;
          t.frames_out <- t.frames_out + 1;
          count t "net.frames_out" 1;
          if not t.connecting then flush t
        end

let rec drain_frames t =
  if not t.is_closed then
    match Frame.Decoder.next t.decoder with
    | `Payload p ->
        t.frames_in <- t.frames_in + 1;
        count t "net.frames_in" 1;
        t.on_payload t p;
        drain_frames t
    | `Await -> ()
    | `Corrupt _ ->
        (* Body-level rejects are already counted by the decoder; only a
           framing-level corruption is unrecoverable. *)
        if Frame.Decoder.dead t.decoder then close t else drain_frames t

let on_readable t () =
  if not t.is_closed then
    match Unix.read t.sock t.scratch 0 (Bytes.length t.scratch) with
    | 0 -> close t
    | n ->
        t.bytes_in <- t.bytes_in + n;
        count t "net.bytes_in" n;
        Frame.Decoder.feed t.decoder t.scratch ~off:0 ~len:n;
        drain_frames t
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        () (* interrupted, not dead: select will report readable again *)
    | exception Unix.Unix_error _ -> close t

let finish_connect t () =
  if t.connecting && not t.is_closed then begin
    match Unix.getsockopt_error t.sock with
    | Some _ -> close t
    | None ->
        t.connecting <- false;
        Evloop.set_write t.loop t.sock None;
        flush t
  end

let attach ~loop ?metrics ?frame_limit ?(connecting = false) sock ~on_payload
    ~on_close =
  Unix.set_nonblock sock;
  (try Unix.setsockopt sock Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  let t =
    {
      loop;
      sock;
      metrics;
      decoder = Frame.Decoder.create ?limit:frame_limit ?metrics ();
      out = Buffer.create 4096;
      out_pos = 0;
      connecting;
      is_closed = false;
      bytes_in = 0;
      bytes_out = 0;
      frames_in = 0;
      frames_out = 0;
      on_payload;
      on_close;
      scratch = Bytes.create 65_536;
    }
  in
  Evloop.set_read loop sock (Some (on_readable t));
  if connecting then Evloop.set_write loop sock (Some (finish_connect t));
  t

let listen ~loop ?(backlog = 64) addr ~on_accept =
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock addr;
  Unix.listen sock backlog;
  Unix.set_nonblock sock;
  let rec accept_ready () =
    match Unix.accept sock with
    | client, peer_addr ->
        Unix.set_nonblock client;
        on_accept client peer_addr;
        accept_ready ()
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  Evloop.set_read loop sock (Some accept_ready);
  sock

let bound_port sock =
  match Unix.getsockname sock with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> 0
