(** The real-network backend of the {!Gc_kernel.Runtime} seam.

    One value owns one node's endpoint: a TCP listener its peers dial, a
    lazily-dialled outbound connection per peer, and the OS clock/timers of
    a shared {!Evloop}.  Datagrams are {!Gc_net.Frame}-framed payloads
    wrapped in a [Datagram] envelope carrying the sender id, so the
    receiving end demultiplexes without per-connection handshakes and
    reconnects are stateless.

    Unreliability contract: sends while a peer is unreachable (no
    connection, dial in progress past the buffer cap, connection reset)
    are silently dropped — exactly the [u-send] the protocol stack is
    built to tolerate; the reliable channel layer retransmits.

    Several nodes may share one {!Evloop} (and hence one OS process):
    that is how the backend-conformance tests run a whole cluster
    in-process over the loopback interface. *)

type t

type Gc_net.Payload.t += Datagram of { src : int; inner : Gc_net.Payload.t }
(** The peer-mesh envelope; registered with the payload codec under tag
    ["dg"]. *)

val create :
  loop:Evloop.t ->
  me:int ->
  ?metrics:Gc_obs.Metrics.t ->
  ?trace:Gc_sim.Trace.t ->
  ?frame_limit:int ->
  ?listen:Unix.sockaddr ->
  unit ->
  t
(** Create node [me]'s endpoint.  [listen] (e.g. loopback port 0 in
    tests) accepts peer dial-ins; omit it for a send-only endpoint.
    [metrics] receives [net.*] counters ([net.frame_reject],
    [net.tx_drop], [net.reconnects]). *)

val port : t -> int
(** Actual bound listen port (after a port-0 bind); 0 without listener. *)

val set_peers : t -> (int * Unix.sockaddr) list -> unit
(** Declare the dialable address of each peer id.  Sends to undeclared
    ids are dropped. *)

val runtime : t -> Gc_kernel.Runtime.t
(** The capability record to hand to {!Gc_kernel.Process.create} /
    [Gcs_stack.create]. *)

val shutdown : t -> unit
(** Close the listener and every connection. *)
