module Heap = Gc_sim.Heap

type timer_cell = {
  deadline : float;
  seq : int; (* FIFO tie-break for equal deadlines *)
  cell_f : unit -> unit;
  mutable cancelled : bool;
}

type watcher = {
  mutable on_read : (unit -> unit) option;
  mutable on_write : (unit -> unit) option;
}

type t = {
  start : float;
  timers : timer_cell Heap.t;
  mutable timer_seq : int;
  watchers : (Unix.file_descr, watcher) Hashtbl.t;
  mutable running : bool;
  metrics : Gc_obs.Metrics.t option;
}

(* A timer firing this late counts as overdue: the loop is falling behind
   its own schedule (a long callback, or select starvation). *)
let overdue_ms = 5.0

let wall_ms () = Unix.gettimeofday () *. 1000.0

(* A peer resetting its connection must surface as EPIPE from write, not a
   process-killing signal; done once, on first loop creation. *)
let ignore_sigpipe =
  lazy
    (if not Sys.win32 then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ())

let create ?metrics () =
  Lazy.force ignore_sigpipe;
  {
    start = wall_ms ();
    timers =
      Heap.create
        ~cmp:(fun a b ->
          match Float.compare a.deadline b.deadline with
          | 0 -> Int.compare a.seq b.seq
          | c -> c)
        ();
    timer_seq = 0;
    watchers = Hashtbl.create 32;
    running = false;
    metrics;
  }

let now t = wall_ms () -. t.start

let schedule t ~delay f =
  let cell =
    {
      deadline = now t +. Float.max delay 0.0;
      seq = t.timer_seq;
      cell_f = f;
      cancelled = false;
    }
  in
  t.timer_seq <- t.timer_seq + 1;
  Heap.push t.timers cell;
  { Gc_kernel.Runtime.cancel = (fun () -> cell.cancelled <- true) }

let watcher t fd =
  match Hashtbl.find_opt t.watchers fd with
  | Some w -> w
  | None ->
      let w = { on_read = None; on_write = None } in
      Hashtbl.replace t.watchers fd w;
      w

let prune t fd w =
  if w.on_read = None && w.on_write = None then Hashtbl.remove t.watchers fd

let set_read t fd cb =
  let w = watcher t fd in
  w.on_read <- cb;
  prune t fd w

let set_write t fd cb =
  let w = watcher t fd in
  w.on_write <- cb;
  prune t fd w

let forget t fd = Hashtbl.remove t.watchers fd

(* Watched descriptors in ascending fd order.  [Unix.file_descr] is
   abstract, but on every Unix port it is the numeric descriptor, so
   polymorphic compare yields the OS ordering; sorting here makes the
   dispatch order of a wakeup a function of the fd set alone, not of
   Hashtbl bucket layout (which varies with insertion history and the
   hash seed). *)
let watched_fds t =
  List.sort compare (Hashtbl.fold (fun fd _ acc -> fd :: acc) t.watchers [])

let fire_due t =
  let rec go () =
    match Heap.peek t.timers with
    | Some cell when cell.cancelled ->
        ignore (Heap.pop t.timers);
        go ()
    | Some cell when cell.deadline <= now t ->
        ignore (Heap.pop t.timers);
        (match t.metrics with
        | Some m ->
            let lag = now t -. cell.deadline in
            Gc_obs.Metrics.observe m "evloop.timer_lag_ms" lag;
            if lag > overdue_ms then
              Gc_obs.Metrics.incr m "evloop.timer_overdue"
        | None -> ());
        cell.cell_f ();
        go ()
    | _ -> ()
  in
  go ()

let next_deadline t =
  let rec go () =
    match Heap.peek t.timers with
    | Some cell when cell.cancelled ->
        ignore (Heap.pop t.timers);
        go ()
    | Some cell -> Some cell.deadline
    | None -> None
  in
  go ()

let run_once t ~max_wait =
  let t0 = now t in
  let wait =
    match next_deadline t with
    | Some d -> Float.min max_wait (Float.max 0.0 (d -. t0))
    | None -> max_wait
  in
  (* Sorted, so [select]'s ready lists — and therefore callback dispatch —
     come back in fd order on every platform, every run. *)
  let watched =
    List.filter_map
      (fun fd ->
        Option.map (fun w -> (fd, w)) (Hashtbl.find_opt t.watchers fd))
      (watched_fds t)
  in
  let reads =
    List.filter_map
      (fun (fd, w) -> if w.on_read <> None then Some fd else None)
      watched
  and writes =
    List.filter_map
      (fun (fd, w) -> if w.on_write <> None then Some fd else None)
      watched
  in
  let ready_r, ready_w, _ =
    if reads = [] && writes = [] then begin
      if wait > 0.0 then Unix.sleepf (wait /. 1000.0);
      ([], [], [])
    end
    else
      try Unix.select reads writes [] (wait /. 1000.0)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  let t_woke = now t in
  (* [select] makes no ordering promise on its ready lists (the OCaml
     runtime returns them reversed); sort so dispatch is in fd order. *)
  let ready_r = List.sort compare ready_r
  and ready_w = List.sort compare ready_w in
  (* Look each callback up at dispatch time: an earlier callback in the
     batch may close a sibling's descriptor and unregister it. *)
  List.iter
    (fun fd ->
      match Hashtbl.find_opt t.watchers fd with
      | Some { on_read = Some cb; _ } -> cb ()
      | _ -> ())
    ready_r;
  List.iter
    (fun fd ->
      match Hashtbl.find_opt t.watchers fd with
      | Some { on_write = Some cb; _ } -> cb ()
      | _ -> ())
    ready_w;
  fire_due t;
  match t.metrics with
  | None -> ()
  | Some m ->
      let t_done = now t in
      Gc_obs.Metrics.incr m "evloop.ticks";
      Gc_obs.Metrics.observe m "evloop.select_wait_ms" (t_woke -. t0);
      Gc_obs.Metrics.observe m "evloop.callback_ms" (t_done -. t_woke);
      Gc_obs.Metrics.observe m "evloop.tick_ms" (t_done -. t0);
      Gc_obs.Metrics.set_gauge m "evloop.open_fds"
        (float_of_int (Hashtbl.length t.watchers))

let run_for t ms =
  let until = now t +. ms in
  while now t < until do
    run_once t ~max_wait:(Float.min 50.0 (until -. now t))
  done

let stop t = t.running <- false

let run t =
  t.running <- true;
  while t.running do
    run_once t ~max_wait:250.0
  done
