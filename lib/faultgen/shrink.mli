(** Counterexample shrinking.

    [test] is the reproduction predicate: it returns [true] when the
    candidate {e still fails} (re-runs the simulation and sees the same
    class of audit violation).  Shrinking proceeds in two passes:

    + {b delta debugging} (Zeller's ddmin) over the event list, removing
      chunks of events while the failure reproduces;
    + {b parameter simplification}: for each surviving event, try the
      strictly simpler variants from {!Fault_script.simplify_event}
      (halved windows, rounded times, saturated probabilities) until a
      fixpoint or the run budget is exhausted.

    Every accepted candidate reproduced the failure, so the final script
    is a true minimal-ish counterexample, not a guess. *)

type 'a stats = { result : 'a; runs : int  (** test invocations spent *) }

val ddmin : test:('a list -> bool) -> 'a list -> 'a list stats
(** Generic list minimisation.  If the full list does not fail the test,
    it is returned unchanged (one run spent). *)

val params :
  test:('a list -> bool) ->
  simplify:('a -> 'a list) ->
  ?max_runs:int ->
  'a list ->
  'a list stats
(** Element-wise simplification to a fixpoint (default budget 200 runs). *)

val script :
  test:(Fault_script.t -> bool) ->
  ?max_param_runs:int ->
  Fault_script.t ->
  Fault_script.t stats
(** Both passes over a script's events; seed, nodes and horizon are kept. *)
