(** Typed, serializable fault schedules.

    A fault script is a list of timed environment events — crashes (with
    optional recovery), partitions, per-link drop-rate bursts and
    duplication bursts, delay spikes, forced failure-detector suspicion
    flaps — plus the seed and dimensions of the run they apply to.  A
    script is {e pure data}: generating one ({!Generator}), applying one
    to a simulated world ({!Injector}) and minimising one
    ({!Shrink}) are separate concerns, which is what makes failures
    replayable bit-for-bit and shrinkable offline. *)

type event =
  | Crash of { node : int; at : float; recover_at : float option }
      (** Network-level freeze of [node] at virtual time [at]; with
          [recover_at] the node resumes (state intact), without it the
          crash is permanent. *)
  | Partition of { at : float; heal_at : float; groups : int list list }
      (** Split the network into [groups] (unlisted nodes form an implicit
          extra group) between [at] and [heal_at]. *)
  | Drop_burst of {
      at : float;
      until : float;
      src : int;
      dst : int;
      rate : float;
    }  (** Raise the directed link's drop probability to [rate] for the
          window, then restore the base rate. *)
  | Delay_spike of { at : float; until : float; nodes : int list; extra : float }
      (** Add [extra] ms to everything sent by [nodes] during the window
          (provokes wrong suspicions, paper Section 4.3). *)
  | Duplicate of { at : float; until : float; src : int; dst : int; prob : float }
      (** Duplicate messages on the directed link with probability [prob]
          for the window. *)
  | Fd_flap of { at : float; until : float; node : int; peer : int }
      (** Force [node]'s failure detector to ignore [peer]'s heartbeats for
          the window: a suspicion followed by a retraction. *)
  | Restart of { node : int; at : float; back_at : float }
      (** Kill -9 semantics: [node] crashes at [at] losing all volatile
          state, and boots again at [back_at] with only its durable log —
          the harness rebuilds the process from storage and rejoins it
          (unlike {!Crash} recovery, which resumes with state intact). *)

type t = {
  seed : int64;  (** drives the engine and workload on replay *)
  nodes : int;  (** group size the script was generated for *)
  horizon : float;  (** virtual run length, ms *)
  events : event list;
}

val time_of : event -> float
val event_label : event -> string
val sorted : t -> t
(** Events in non-decreasing [at] order (stable). *)

val validate : t -> (unit, string) result
(** Structural sanity: node indices in range, windows non-negative,
    probabilities in [0,1], at least two nodes. *)

val simplify_event : event -> event list
(** Strictly simpler variants of one event (rounded times, halved windows
    and magnitudes, saturated probabilities) — the candidate moves of the
    parameter-shrinking pass ({!Shrink.script}). *)

(** {1 Serialisation} *)

val to_json : t -> Gc_obs.Json.t
val of_json : Gc_obs.Json.t -> t
(** @raise Failure on a value not produced by {!to_json}. *)

val save : string -> t -> unit
val load : string -> t
(** @raise Failure / [Sys_error] on malformed or unreadable files. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
