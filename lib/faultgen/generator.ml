module Rng = Gc_sim.Rng

type profile = {
  max_events : int;
  crash_recover_p : float;
  window_mean : float;
  window_max : float;
  spike_extra_max : float;
  drop_rate_min : float;
  dup_prob_max : float;
  with_restart : bool;
}

let default =
  {
    max_events = 6;
    crash_recover_p = 0.75;
    (* Freeze windows stay well below the default exclusion timeout
       (5 s): a frozen-then-recovered node is suspected and trusted
       again, not excluded, so recoveries probe the false-suspicion
       machinery rather than the (separately generated) permanent-crash
       exclusion path. *)
    window_mean = 600.0;
    window_max = 2_000.0;
    spike_extra_max = 800.0;
    drop_rate_min = 0.3;
    dup_prob_max = 1.0;
    with_restart = false;
  }

let aggressive =
  {
    max_events = 10;
    crash_recover_p = 0.6;
    window_mean = 2_000.0;
    window_max = 8_000.0;
    spike_extra_max = 3_000.0;
    drop_rate_min = 0.5;
    dup_prob_max = 1.0;
    with_restart = false;
  }

(* Aggressive plus kill -9 restarts.  A separate profile — not a default —
   because adding the seventh event kind widens the RNG draw and would
   shift every existing profile's random stream (and with it the committed
   determinism pins). *)
let restart = { aggressive with with_restart = true }

(* Crash intervals must always leave a strict majority of nodes running,
   otherwise the run measures nothing (no consensus, no deliveries) and
   every audit passes vacuously. *)
let overlapping intervals ~at ~until =
  List.filter (fun (_, s, e) -> s < until && at < e) intervals

let generate ?(profile = default) ~seed ~nodes ~horizon () =
  let rng = Rng.create (Rng.derive seed "faultgen") in
  let cap = (nodes - 1) / 2 in
  let n_events = 1 + Rng.int rng profile.max_events in
  let window () =
    Float.min profile.window_max
      (Float.max 50.0 (Rng.exponential rng ~mean:profile.window_mean))
  in
  let start () = Rng.uniform rng ~lo:(0.05 *. horizon) ~hi:(0.6 *. horizon) in
  let node () = Rng.int rng nodes in
  let other_node n =
    let m = Rng.int rng (nodes - 1) in
    if m >= n then m + 1 else m
  in
  (* (node, start, stop) freeze intervals committed so far *)
  let crashed = ref [] in
  let sample_crash () =
    let at = start () in
    let recover_at =
      if Rng.bernoulli rng profile.crash_recover_p then Some (at +. window ())
      else None
    in
    let stop = Option.value ~default:horizon recover_at in
    let c = node () in
    let clashing = overlapping !crashed ~at ~until:stop in
    if List.length clashing >= cap || List.exists (fun (n, _, _) -> n = c) clashing
    then None
    else begin
      crashed := (c, at, stop) :: !crashed;
      Some (Fault_script.Crash { node = c; at; recover_at })
    end
  in
  let sample_restart () =
    (* A restarting node is down for the window, so it counts against the
       same strict-majority budget as the freezes. *)
    let at = start () in
    let back_at = at +. window () in
    let c = node () in
    let clashing = overlapping !crashed ~at ~until:back_at in
    if List.length clashing >= cap || List.exists (fun (n, _, _) -> n = c) clashing
    then None
    else begin
      crashed := (c, at, back_at) :: !crashed;
      Some (Fault_script.Restart { node = c; at; back_at })
    end
  in
  let arms = if profile.with_restart then 7 else 6 in
  let sample () =
    match Rng.int rng arms with
    | 0 -> sample_crash ()
    | 1 ->
        let at = start () in
        let size = 1 + Rng.int rng (nodes - 1) in
        let all = Array.init nodes (fun i -> i) in
        Rng.shuffle rng all;
        let group = Array.to_list (Array.sub all 0 size) in
        Some
          (Fault_script.Partition
             { at; heal_at = at +. window (); groups = [ List.sort compare group ] })
    | 2 ->
        let at = start () in
        let src = node () in
        Some
          (Fault_script.Drop_burst
             {
               at;
               until = at +. window ();
               src;
               dst = other_node src;
               rate = Rng.uniform rng ~lo:profile.drop_rate_min ~hi:1.0;
             })
    | 3 ->
        let at = start () in
        let size = 1 + Rng.int rng (max 1 (nodes / 2)) in
        let all = Array.init nodes (fun i -> i) in
        Rng.shuffle rng all;
        Some
          (Fault_script.Delay_spike
             {
               at;
               until = at +. window ();
               nodes = List.sort compare (Array.to_list (Array.sub all 0 size));
               extra = Rng.uniform rng ~lo:100.0 ~hi:profile.spike_extra_max;
             })
    | 4 ->
        let at = start () in
        let src = node () in
        Some
          (Fault_script.Duplicate
             {
               at;
               until = at +. window ();
               src;
               dst = other_node src;
               prob = Rng.uniform rng ~lo:0.2 ~hi:profile.dup_prob_max;
             })
    | 5 ->
        let at = start () in
        let n = node () in
        Some
          (Fault_script.Fd_flap
             { at; until = at +. window (); node = n; peer = other_node n })
    | _ -> sample_restart ()
  in
  let rec collect acc k budget =
    if k = 0 || budget = 0 then acc
    else
      match sample () with
      | Some e -> collect (e :: acc) (k - 1) (budget - 1)
      | None -> collect acc k (budget - 1)
  in
  let events = collect [] n_events (n_events * 4) in
  Fault_script.sorted { Fault_script.seed; nodes; horizon; events }
