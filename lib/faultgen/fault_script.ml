module Json = Gc_obs.Json

type event =
  | Crash of { node : int; at : float; recover_at : float option }
  | Partition of { at : float; heal_at : float; groups : int list list }
  | Drop_burst of {
      at : float;
      until : float;
      src : int;
      dst : int;
      rate : float;
    }
  | Delay_spike of { at : float; until : float; nodes : int list; extra : float }
  | Duplicate of { at : float; until : float; src : int; dst : int; prob : float }
  | Fd_flap of { at : float; until : float; node : int; peer : int }
  | Restart of { node : int; at : float; back_at : float }

type t = { seed : int64; nodes : int; horizon : float; events : event list }

let time_of = function
  | Crash { at; _ }
  | Partition { at; _ }
  | Drop_burst { at; _ }
  | Delay_spike { at; _ }
  | Duplicate { at; _ }
  | Fd_flap { at; _ }
  | Restart { at; _ } -> at

let sorted t =
  { t with events = List.stable_sort (fun a b -> compare (time_of a) (time_of b)) t.events }

let event_label = function
  | Crash _ -> "crash"
  | Partition _ -> "partition"
  | Drop_burst _ -> "drop_burst"
  | Delay_spike _ -> "delay_spike"
  | Duplicate _ -> "duplicate"
  | Fd_flap _ -> "fd_flap"
  | Restart _ -> "restart"

(* ---------- validation ---------- *)

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_node who node =
    if node < 0 || node >= t.nodes then
      err "%s: node %d out of range 0..%d" who node (t.nodes - 1)
    else Ok ()
  in
  let check_window who at until =
    if at < 0.0 then err "%s: negative time %g" who at
    else if until < at then err "%s: window ends (%g) before it starts (%g)" who until at
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let check_event e =
    match e with
    | Crash { node; at; recover_at } ->
        let* () = check_node "crash" node in
        check_window "crash" at (Option.value ~default:at recover_at)
    | Partition { at; heal_at; groups } ->
        let* () = check_window "partition" at heal_at in
        List.fold_left
          (fun acc g ->
            let* () = acc in
            List.fold_left
              (fun acc n ->
                let* () = acc in
                check_node "partition" n)
              (Ok ()) g)
          (Ok ()) groups
    | Drop_burst { at; until; src; dst; rate } ->
        let* () = check_node "drop_burst" src in
        let* () = check_node "drop_burst" dst in
        let* () = check_window "drop_burst" at until in
        if rate < 0.0 || rate > 1.0 then
          err "drop_burst: rate %g outside [0,1]" rate
        else Ok ()
    | Delay_spike { at; until; nodes; extra } ->
        let* () = check_window "delay_spike" at until in
        let* () =
          List.fold_left
            (fun acc n ->
              let* () = acc in
              check_node "delay_spike" n)
            (Ok ()) nodes
        in
        if extra < 0.0 then err "delay_spike: negative extra %g" extra
        else Ok ()
    | Duplicate { at; until; src; dst; prob } ->
        let* () = check_node "duplicate" src in
        let* () = check_node "duplicate" dst in
        let* () = check_window "duplicate" at until in
        if prob < 0.0 || prob > 1.0 then
          err "duplicate: prob %g outside [0,1]" prob
        else Ok ()
    | Fd_flap { at; until; node; peer } ->
        let* () = check_node "fd_flap" node in
        let* () = check_node "fd_flap" peer in
        let* () = check_window "fd_flap" at until in
        if node = peer then err "fd_flap: node %d flapping itself" node
        else Ok ()
    | Restart { node; at; back_at } ->
        let* () = check_node "restart" node in
        check_window "restart" at back_at
  in
  if t.nodes < 2 then err "script needs at least 2 nodes, got %d" t.nodes
  else if t.horizon <= 0.0 then err "non-positive horizon %g" t.horizon
  else
    List.fold_left
      (fun acc e ->
        let* () = acc in
        check_event e)
      (Ok ()) t.events

(* ---------- shrinking candidates ---------- *)

(* Strictly "simpler" variants of one event, for the parameter-shrinking
   pass after delta debugging: shorter windows, halved magnitudes, rounded
   times.  Every candidate must stay valid for the same script. *)
let round10 x =
  let r = Float.round (x /. 10.0) *. 10.0 in
  if r < 0.0 then 0.0 else r

let simplify_event e =
  let shorter at until = at +. ((until -. at) /. 2.0) in
  let rounded =
    match e with
    | Crash { node; at; recover_at } ->
        Crash { node; at = round10 at; recover_at = Option.map round10 recover_at }
    | Partition { at; heal_at; groups } ->
        Partition { at = round10 at; heal_at = round10 (Float.max at heal_at); groups }
    | Drop_burst b ->
        Drop_burst { b with at = round10 b.at; until = round10 (Float.max b.at b.until) }
    | Delay_spike s ->
        Delay_spike { s with at = round10 s.at; until = round10 (Float.max s.at s.until) }
    | Duplicate d ->
        Duplicate { d with at = round10 d.at; until = round10 (Float.max d.at d.until) }
    | Fd_flap f ->
        Fd_flap { f with at = round10 f.at; until = round10 (Float.max f.at f.until) }
    | Restart { node; at; back_at } ->
        Restart { node; at = round10 at; back_at = round10 (Float.max at back_at) }
  in
  let halved =
    match e with
    | Crash { node; at; recover_at = Some r } when r -. at > 20.0 ->
        [ Crash { node; at; recover_at = Some (shorter at r) } ]
    | Crash _ -> []
    | Partition ({ at; heal_at; _ } as p) when heal_at -. at > 20.0 ->
        [ Partition { p with heal_at = shorter at heal_at } ]
    | Partition _ -> []
    | Drop_burst ({ at; until; rate; _ } as b) ->
        (if until -. at > 20.0 then
           [ Drop_burst { b with until = shorter at until } ]
         else [])
        @ (if rate < 1.0 then [ Drop_burst { b with rate = 1.0 } ] else [])
    | Delay_spike ({ at; until; extra; _ } as s) ->
        (if until -. at > 20.0 then
           [ Delay_spike { s with until = shorter at until } ]
         else [])
        @ (if extra > 50.0 then [ Delay_spike { s with extra = extra /. 2.0 } ]
           else [])
    | Duplicate ({ at; until; prob; _ } as d) ->
        (if until -. at > 20.0 then
           [ Duplicate { d with until = shorter at until } ]
         else [])
        @ (if prob < 1.0 then [ Duplicate { d with prob = 1.0 } ] else [])
    | Fd_flap ({ at; until; _ } as f) when until -. at > 20.0 ->
        [ Fd_flap { f with until = shorter at until } ]
    | Fd_flap _ -> []
    | Restart ({ at; back_at; _ } as r) when back_at -. at > 20.0 ->
        [ Restart { r with back_at = shorter at back_at } ]
    | Restart _ -> []
  in
  (if rounded <> e then [ rounded ] else []) @ halved

(* ---------- JSON ---------- *)

let num x = Json.Num x
let inum i = Json.Num (float_of_int i)
let ilist l = Json.Arr (List.map inum l)

let event_to_json e =
  let tag = Json.Str (event_label e) in
  match e with
  | Crash { node; at; recover_at } ->
      Json.Obj
        ([ ("type", tag); ("node", inum node); ("at", num at) ]
        @ match recover_at with
          | Some r -> [ ("recover_at", num r) ]
          | None -> [])
  | Partition { at; heal_at; groups } ->
      Json.Obj
        [
          ("type", tag);
          ("at", num at);
          ("heal_at", num heal_at);
          ("groups", Json.Arr (List.map ilist groups));
        ]
  | Drop_burst { at; until; src; dst; rate } ->
      Json.Obj
        [
          ("type", tag);
          ("at", num at);
          ("until", num until);
          ("src", inum src);
          ("dst", inum dst);
          ("rate", num rate);
        ]
  | Delay_spike { at; until; nodes; extra } ->
      Json.Obj
        [
          ("type", tag);
          ("at", num at);
          ("until", num until);
          ("nodes", ilist nodes);
          ("extra", num extra);
        ]
  | Duplicate { at; until; src; dst; prob } ->
      Json.Obj
        [
          ("type", tag);
          ("at", num at);
          ("until", num until);
          ("src", inum src);
          ("dst", inum dst);
          ("prob", num prob);
        ]
  | Fd_flap { at; until; node; peer } ->
      Json.Obj
        [
          ("type", tag);
          ("at", num at);
          ("until", num until);
          ("node", inum node);
          ("peer", inum peer);
        ]
  | Restart { node; at; back_at } ->
      Json.Obj
        [ ("type", tag); ("node", inum node); ("at", num at); ("back_at", num back_at) ]

let to_json t =
  Json.Obj
    [
      ("seed", Json.Str (Int64.to_string t.seed));
      ("nodes", inum t.nodes);
      ("horizon", num t.horizon);
      ("events", Json.Arr (List.map event_to_json t.events));
    ]

let fail fmt = Printf.ksprintf failwith fmt

let jfloat j k =
  match Option.bind (Json.member k j) Json.to_float with
  | Some f -> f
  | None -> fail "fault script: missing number %S" k

let jint j k = int_of_float (jfloat j k)

let jints j k =
  match Option.bind (Json.member k j) Json.to_list with
  | Some l ->
      List.map
        (fun x ->
          match Json.to_float x with
          | Some f -> int_of_float f
          | None -> fail "fault script: non-number in %S" k)
        l
  | None -> fail "fault script: missing list %S" k

let event_of_json j =
  match Option.bind (Json.member "type" j) Json.to_str with
  | Some "crash" ->
      Crash
        {
          node = jint j "node";
          at = jfloat j "at";
          recover_at =
            Option.bind (Json.member "recover_at" j) Json.to_float;
        }
  | Some "partition" ->
      let groups =
        match Option.bind (Json.member "groups" j) Json.to_list with
        | Some gs ->
            List.map
              (fun g ->
                match Json.to_list g with
                | Some l ->
                    List.map
                      (fun x ->
                        match Json.to_float x with
                        | Some f -> int_of_float f
                        | None -> fail "fault script: bad group member")
                      l
                | None -> fail "fault script: bad group")
              gs
        | None -> fail "fault script: missing groups"
      in
      Partition { at = jfloat j "at"; heal_at = jfloat j "heal_at"; groups }
  | Some "drop_burst" ->
      Drop_burst
        {
          at = jfloat j "at";
          until = jfloat j "until";
          src = jint j "src";
          dst = jint j "dst";
          rate = jfloat j "rate";
        }
  | Some "delay_spike" ->
      Delay_spike
        {
          at = jfloat j "at";
          until = jfloat j "until";
          nodes = jints j "nodes";
          extra = jfloat j "extra";
        }
  | Some "duplicate" ->
      Duplicate
        {
          at = jfloat j "at";
          until = jfloat j "until";
          src = jint j "src";
          dst = jint j "dst";
          prob = jfloat j "prob";
        }
  | Some "fd_flap" ->
      Fd_flap
        {
          at = jfloat j "at";
          until = jfloat j "until";
          node = jint j "node";
          peer = jint j "peer";
        }
  | Some "restart" ->
      Restart
        { node = jint j "node"; at = jfloat j "at"; back_at = jfloat j "back_at" }
  | Some other -> fail "fault script: unknown event type %S" other
  | None -> fail "fault script: event without type"

let of_json j =
  let seed =
    match Option.bind (Json.member "seed" j) Json.to_str with
    | Some s -> (
        match Int64.of_string_opt s with
        | Some i -> i
        | None -> fail "fault script: bad seed %S" s)
    | None -> fail "fault script: missing seed"
  in
  let events =
    match Option.bind (Json.member "events" j) Json.to_list with
    | Some l -> List.map event_of_json l
    | None -> fail "fault script: missing events"
  in
  { seed; nodes = jint j "nodes"; horizon = jfloat j "horizon"; events }

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_json t));
      output_char oc '\n')

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_json (Json.of_string s))

(* ---------- printing ---------- *)

let pp_event ppf e =
  match e with
  | Crash { node; at; recover_at } ->
      Format.fprintf ppf "@%.0f crash node %d%s" at node
        (match recover_at with
        | Some r -> Printf.sprintf ", recover @%.0f" r
        | None -> " (permanent)")
  | Partition { at; heal_at; groups } ->
      Format.fprintf ppf "@%.0f partition {%s}, heal @%.0f" at
        (String.concat " | "
           (List.map
              (fun g -> String.concat ";" (List.map string_of_int g))
              groups))
        heal_at
  | Drop_burst { at; until; src; dst; rate } ->
      Format.fprintf ppf "@%.0f..%.0f drop %d->%d at %.0f%%" at until src dst
        (rate *. 100.0)
  | Delay_spike { at; until; nodes; extra } ->
      Format.fprintf ppf "@%.0f..%.0f delay spike +%.0fms on {%s}" at until
        extra
        (String.concat ";" (List.map string_of_int nodes))
  | Duplicate { at; until; src; dst; prob } ->
      Format.fprintf ppf "@%.0f..%.0f duplicate %d->%d at %.0f%%" at until src
        dst (prob *. 100.0)
  | Fd_flap { at; until; node; peer } ->
      Format.fprintf ppf "@%.0f..%.0f fd flap: %d deaf to %d" at until node
        peer
  | Restart { node; at; back_at } ->
      Format.fprintf ppf "@%.0f kill -9 node %d, boot from log @%.0f" at node
        back_at

let pp ppf t =
  Format.fprintf ppf "fault script: seed %Ld, %d nodes, horizon %.0fms, %d event%s@."
    t.seed t.nodes t.horizon (List.length t.events)
    (if List.length t.events = 1 then "" else "s");
  List.iter (fun e -> Format.fprintf ppf "  %a@." pp_event e) t.events
