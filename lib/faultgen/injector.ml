module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module Fd = Gc_fd.Failure_detector

let emit trace engine label attrs =
  match trace with
  | None -> ()
  | Some tr ->
      Trace.emit_event tr ~time:(Engine.now engine) ~node:(-1)
        ~component:"fault" ~kind:(Gc_obs.Event.Custom label) ~attrs ()

let f = Printf.sprintf "%g"
let i = string_of_int

let install ?(fd_of = fun _ -> None) ?on_restart ?on_restore ?trace net script =
  let engine = Netsim.engine net in
  let at time thunk = ignore (Engine.schedule_at engine ~time thunk) in
  let apply = function
    | Fault_script.Crash { node; at = t0; recover_at } -> (
        at t0 (fun () ->
            emit trace engine "crash" [ ("node", i node) ];
            Netsim.crash net node);
        match recover_at with
        | Some t1 ->
            at t1 (fun () ->
                emit trace engine "recover" [ ("node", i node) ];
                Netsim.recover net node)
        | None -> ())
    | Fault_script.Partition { at = t0; heal_at; groups } ->
        at t0 (fun () -> Netsim.partition net groups);
        at heal_at (fun () -> Netsim.heal net)
    | Fault_script.Drop_burst { at = t0; until; src; dst; rate } ->
        at t0 (fun () ->
            let base = Netsim.link_drop net ~src ~dst in
            emit trace engine "drop_burst"
              [ ("src", i src); ("dst", i dst); ("rate", f rate) ];
            Netsim.set_link net ~src ~dst ~drop:rate ();
            at until (fun () ->
                emit trace engine "drop_burst_end"
                  [ ("src", i src); ("dst", i dst) ];
                Netsim.set_link net ~src ~dst ~drop:base ()))
    | Fault_script.Delay_spike { at = t0; until; nodes; extra } ->
        at t0 (fun () ->
            emit trace engine "delay_spike"
              [
                ("nodes", String.concat ";" (List.map i nodes));
                ("until", f until);
                ("extra", f extra);
              ];
            Netsim.delay_spike net ~nodes ~until ~extra)
    | Fault_script.Duplicate { at = t0; until; src; dst; prob } ->
        at t0 (fun () ->
            let base = Netsim.link_dup net ~src ~dst in
            emit trace engine "duplicate"
              [ ("src", i src); ("dst", i dst); ("prob", f prob) ];
            Netsim.set_link net ~src ~dst ~dup:prob ();
            at until (fun () ->
                emit trace engine "duplicate_end"
                  [ ("src", i src); ("dst", i dst) ];
                Netsim.set_link net ~src ~dst ~dup:base ()))
    | Fault_script.Fd_flap { at = t0; until; node; peer } ->
        at t0 (fun () ->
            emit trace engine "fd_flap"
              [ ("node", i node); ("peer", i peer); ("until", f until) ];
            match fd_of node with
            | Some fd -> Fd.suppress fd ~peer ~until
            | None ->
                (* Stacks that keep their detector private get the network
                   equivalent: everything [peer] sends inside the window is
                   delayed past it, so [node] (and everyone else) suspects
                   [peer] and trusts it again once the backlog lands. *)
                Netsim.delay_spike net ~nodes:[ peer ] ~until
                  ~extra:(until -. t0 +. 500.0))
    | Fault_script.Restart { node; at = t0; back_at } ->
        (* Kill -9: volatile state is gone.  [on_restart] must hard-crash
           the node's process; [on_restore] must rebuild it from whatever
           it persisted and rejoin.  Without the callbacks (a stack with no
           durable state to rebuild from) the event degrades to a
           freeze/recover — state intact, which for such a stack is the
           closest legal meaning. *)
        at t0 (fun () ->
            emit trace engine "restart" [ ("node", i node) ];
            Netsim.crash net node;
            match on_restart with Some f -> f ~node | None -> ());
        at back_at (fun () ->
            emit trace engine "restore" [ ("node", i node) ];
            Netsim.recover net node;
            match on_restore with Some f -> f ~node | None -> ())
  in
  List.iter apply script.Fault_script.events
