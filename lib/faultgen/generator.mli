(** Seeded sampling of fault scripts.

    The generator draws from its own random stream, derived from the
    script seed with {!Gc_sim.Rng.derive} — never from the simulation
    engine's — so the same seed always yields the same script no matter
    what the simulated world does with it.

    Invariants maintained by construction:

    - concurrent freezes never reach half the group (a strict majority
      keeps running, so the run makes progress and the audits check
      something real);
    - a node is never crashed twice in overlapping windows;
    - partitions always heal, and every windowed fault ends before or at
      the horizon scale set by the profile. *)

type profile = {
  max_events : int;  (** scripts carry 1..max_events events *)
  crash_recover_p : float;  (** probability a crash gets a recovery *)
  window_mean : float;  (** mean fault window, ms (exponential) *)
  window_max : float;  (** clamp on fault windows, ms *)
  spike_extra_max : float;  (** delay spikes add 100..this many ms *)
  drop_rate_min : float;  (** drop bursts lose at least this fraction *)
  dup_prob_max : float;  (** duplication bursts cap *)
  with_restart : bool;
      (** also draw kill -9 {!Fault_script.Restart} events (widens the
          random stream: scripts differ from the same seed without it) *)
}

val default : profile
(** Freeze windows stay below the default exclusion timeout: recoveries
    exercise false suspicions, permanent crashes exercise exclusions. *)

val aggressive : profile
(** Longer windows (frozen nodes do get excluded and come back stale),
    more events — for nightly runs hunting waiver-worthy behaviour. *)

val restart : profile
(** {!aggressive} plus kill -9 restarts: nodes lose volatile state and
    boot again from their durable delivery log mid-run — probes the
    crash-recovery path (log replay, delta state transfer, channel
    stream reopening). *)

val generate :
  ?profile:profile -> seed:int64 -> nodes:int -> horizon:float -> unit ->
  Fault_script.t
