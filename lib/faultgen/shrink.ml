(* Counterexample minimisation: classic ddmin over the event list, then a
   parameter pass trying each event's simpler variants to a fixpoint. *)

type 'a stats = { result : 'a; runs : int }

let chunks n xs =
  (* Split xs into n chunks of near-equal length (first chunks longer). *)
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec take k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
          let taken, left = take (k - 1) rest in
          (x :: taken, left)
  in
  let rec go i xs =
    if i >= n || xs = [] then []
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size xs in
      if chunk = [] then go (i + 1) rest else chunk :: go (i + 1) rest
  in
  go 0 xs

let ddmin ~test xs =
  let runs = ref 0 in
  let check ys =
    incr runs;
    test ys
  in
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 then xs
    else
      let cs = chunks (min n len) xs in
      (* Try each complement (the list minus one chunk). *)
      let rec try_complements before = function
        | [] -> None
        | c :: after ->
            let complement = List.concat (List.rev_append before after) in
            if complement <> [] && check complement then Some complement
            else try_complements (c :: before) after
      in
      match try_complements [] cs with
      | Some smaller -> go smaller (max (min n (List.length smaller)) 2)
      | None -> if n < len then go xs (min len (2 * n)) else xs
  in
  let result =
    if not (check xs) then xs
    (* Classic ddmin never probes the empty list, but a failure that does
       not depend on the faults at all should shrink to no events. *)
    else if xs <> [] && check [] then []
    else go xs 2
  in
  { result; runs = !runs }

let params ~test ~simplify ?(max_runs = 200) xs =
  let runs = ref 0 in
  let replace i y = List.mapi (fun j x -> if j = i then y else x) in
  let rec pass xs improved i =
    if i >= List.length xs || !runs >= max_runs then (xs, improved)
    else
      let e = List.nth xs i in
      let rec try_candidates = function
        | [] -> None
        | c :: rest ->
            if !runs >= max_runs then None
            else begin
              incr runs;
              let candidate = replace i c xs in
              if test candidate then Some candidate else try_candidates rest
            end
      in
      match try_candidates (simplify e) with
      | Some better -> pass better true i (* retry same slot: maybe simpler yet *)
      | None -> pass xs improved (i + 1)
  in
  let rec fixpoint xs =
    let xs', improved = pass xs false 0 in
    if improved && !runs < max_runs then fixpoint xs' else xs'
  in
  let result = fixpoint xs in
  { result; runs = !runs }

let script ~test ?(max_param_runs = 200) (s : Fault_script.t) =
  let wrap events = test { s with Fault_script.events } in
  let d = ddmin ~test:wrap s.Fault_script.events in
  let p =
    params ~test:wrap ~simplify:Fault_script.simplify_event
      ~max_runs:max_param_runs d.result
  in
  {
    result = { s with Fault_script.events = p.result };
    runs = d.runs + p.runs;
  }
