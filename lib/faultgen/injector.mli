(** Applies a fault script to a simulated world.

    [install net script] schedules every event of [script] on the
    network's engine; nothing happens until the engine runs.  Install
    {e before} the first [Engine.run] so scheduling order — and hence the
    whole run — is deterministic in the script alone.

    [fd_of] maps a node id to its failure detector when the stack under
    test exposes one ({!Gcs.Gcs_stack.failure_detector}); [Fd_flap] events
    then use the precise {!Gc_fd.Failure_detector.suppress} hook.  For
    stacks that keep the detector private the flap degrades to a delay
    spike on the flapped peer, which provokes the same suspicion through
    the network.

    [on_restart] / [on_restore] give {!Fault_script.Restart} events their
    kill -9 semantics: the injector freezes/unfreezes the node at the
    network level and invokes the callbacks, which must hard-crash the
    node's process and later rebuild it from its durable log and rejoin.
    Without them a restart degrades to a freeze/recover (state intact).

    [trace] (the run's flight recorder) makes the injector emit one
    environment event (node [-1], component ["fault"]) per applied fault,
    so recorded artifacts are self-describing. *)

val install :
  ?fd_of:(int -> Gc_fd.Failure_detector.t option) ->
  ?on_restart:(node:int -> unit) ->
  ?on_restore:(node:int -> unit) ->
  ?trace:Gc_sim.Trace.t ->
  Gc_net.Netsim.t ->
  Fault_script.t ->
  unit
