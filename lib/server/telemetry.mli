(** Periodic telemetry time-series: every [interval_ms] (on the server's
    event loop) append one JSON line
    [{"ts": <epoch seconds>, "node": <id>, "stats": <Server.stats_json>}]
    to [path] and flush, so an external tail sees snapshots as they
    happen.  The file is opened in append mode — restarts extend the
    series rather than truncating it.

    The timestamp is wall-clock ([Unix.gettimeofday]) because the series
    exists to correlate with the outside world; everything inside
    ["stats"] uses the runtime clock like the live [Cl_stats] endpoint. *)

type t

val start :
  loop:Gc_runtime_unix.Evloop.t ->
  server:Server.t ->
  interval_ms:float ->
  path:string ->
  t
(** Open (append/create) [path] and arm the first timer.  Raises
    [Sys_error] if the file cannot be opened. *)

val stop : t -> unit
(** Cancel the timer and close the file.  Idempotent. *)
