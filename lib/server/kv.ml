module W = Gc_net.Wire

type t = {
  table : (string, string) Hashtbl.t;
  order_log : Buffer.t;
  (* Exactly-once evidence: every applied (origin, opid).  Makes replay
     idempotent — recovery replays the local log and then installs a
     possibly-overlapping delta from a live peer, and both paths funnel
     through [seen]/[apply].  Grows with the operation count, like
     [order_log] (the digests need the full history anyway). *)
  applied : (int * int, unit) Hashtbl.t;
  (* XOR of MD5("origin.opid") over the applied-set: an incremental,
     order-independent fingerprint of exactly which operations have been
     applied.  Two replicas with equal counters and equal [applied_xor]
     hold the same applied-set (w.h.p.), however their commuting
     deliveries interleaved — the check that makes delta state transfer
     safe to fall back from. *)
  applied_xor : Bytes.t;
  mutable ordered : int;
  mutable commuting : int;
}

let xor_id_into acc ~origin ~opid =
  let d = Digest.string (Printf.sprintf "%d.%d" origin opid) in
  for i = 0 to 15 do
    Bytes.unsafe_set acc i
      (Char.chr
         (Char.code (Bytes.unsafe_get acc i) lxor Char.code (String.unsafe_get d i)))
  done

let create () =
  {
    table = Hashtbl.create 64;
    order_log = Buffer.create 256;
    applied = Hashtbl.create 64;
    applied_xor = Bytes.make 16 '\000';
    ordered = 0;
    commuting = 0;
  }

let get t key = Hashtbl.find_opt t.table key
let seen t ~origin ~opid = Hashtbl.mem t.applied (origin, opid)

let apply t ~origin ~opid ~ordered op =
  Hashtbl.replace t.applied (origin, opid) ();
  xor_id_into t.applied_xor ~origin ~opid;
  if ordered then begin
    t.ordered <- t.ordered + 1;
    Buffer.add_string t.order_log
      (Printf.sprintf "%d.%d:%s;" origin opid (Proto.op_to_string op))
  end
  else t.commuting <- t.commuting + 1;
  match op with
  | Proto.Put { key; value } ->
      Hashtbl.replace t.table key value;
      value
  | Proto.Incr { key; delta } ->
      let current =
        match Hashtbl.find_opt t.table key with
        | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0)
        | None -> 0
      in
      let value = string_of_int (current + delta) in
      Hashtbl.replace t.table key value;
      value

let ordered_count t = t.ordered
let commuting_count t = t.commuting
let applied_count t = Hashtbl.length t.applied
let applied_digest t = Bytes.to_string t.applied_xor
let order_digest t = Digest.to_hex (Digest.string (Buffer.contents t.order_log))

let state_digest t =
  let entries =
    Hashtbl.fold (fun k v acc -> (k ^ "=" ^ v) :: acc) t.table []
  in
  Digest.to_hex (Digest.string (String.concat ";" (List.sort compare entries)))

let dump t =
  Printf.sprintf "order=%s state=%s ordered=%d commuting=%d" (order_digest t)
    (state_digest t) t.ordered t.commuting

(* Snapshot serialisation: everything above, wire-encoded.  Both sides are
   deterministic (sorted table / applied list) so equal states produce
   equal blobs. *)

let to_blob t =
  let w = Buffer.create 1024 in
  W.varint w t.ordered;
  W.varint w t.commuting;
  W.str w (Buffer.contents t.order_log);
  let entries =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])
  in
  W.list w (fun w kv -> W.pair w W.str W.str kv) entries;
  let ids =
    List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) t.applied [])
  in
  W.list w (fun w id -> W.pair w W.varint W.varint id) ids;
  Buffer.contents w

let restore t blob =
  let r = W.reader blob in
  let ordered = W.read_varint r in
  let commuting = W.read_varint r in
  let order_log = W.read_str r in
  let entries = W.read_list r (fun r -> W.read_pair r W.read_str W.read_str) in
  let ids = W.read_list r (fun r -> W.read_pair r W.read_varint W.read_varint) in
  Hashtbl.reset t.table;
  Hashtbl.reset t.applied;
  Bytes.fill t.applied_xor 0 16 '\000';
  Buffer.clear t.order_log;
  t.ordered <- ordered;
  t.commuting <- commuting;
  Buffer.add_string t.order_log order_log;
  List.iter (fun (k, v) -> Hashtbl.replace t.table k v) entries;
  List.iter
    (fun (origin, opid) ->
      Hashtbl.replace t.applied (origin, opid) ();
      xor_id_into t.applied_xor ~origin ~opid)
    ids
