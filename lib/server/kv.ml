type t = {
  table : (string, string) Hashtbl.t;
  order_log : Buffer.t;
  mutable ordered : int;
  mutable commuting : int;
}

let create () =
  {
    table = Hashtbl.create 64;
    order_log = Buffer.create 256;
    ordered = 0;
    commuting = 0;
  }

let get t key = Hashtbl.find_opt t.table key

let apply t ~origin ~opid ~ordered op =
  if ordered then begin
    t.ordered <- t.ordered + 1;
    Buffer.add_string t.order_log
      (Printf.sprintf "%d.%d:%s;" origin opid (Proto.op_to_string op))
  end
  else t.commuting <- t.commuting + 1;
  match op with
  | Proto.Put { key; value } ->
      Hashtbl.replace t.table key value;
      value
  | Proto.Incr { key; delta } ->
      let current =
        match Hashtbl.find_opt t.table key with
        | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0)
        | None -> 0
      in
      let value = string_of_int (current + delta) in
      Hashtbl.replace t.table key value;
      value

let ordered_count t = t.ordered
let commuting_count t = t.commuting
let order_digest t = Digest.to_hex (Digest.string (Buffer.contents t.order_log))

let state_digest t =
  let entries =
    Hashtbl.fold (fun k v acc -> (k ^ "=" ^ v) :: acc) t.table []
  in
  Digest.to_hex (Digest.string (String.concat ";" (List.sort compare entries)))

let dump t =
  Printf.sprintf "order=%s state=%s ordered=%d commuting=%d" (order_digest t)
    (state_digest t) t.ordered t.commuting
