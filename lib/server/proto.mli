(** The [gcs_server] wire protocol: client requests, server replies, and
    the replicated operation envelope, all as {!Gc_net.Payload.t}
    extensions registered with the binary codec (tag ["cl"]) so they
    cross both the client TCP connection and the server peer mesh.

    Clients pick the ordering primitive by op: [Cl_put] conflicts (it
    overwrites) and rides atomic broadcast; [Cl_incr] commutes with other
    increments and rides the generic-broadcast fast path; [Cl_get] and
    [Cl_dump] are answered locally by the serving replica. *)

type op =
  | Put of { key : string; value : string }  (** conflicting: abcast *)
  | Incr of { key : string; delta : int }  (** commuting: rbcast *)

val op_commutes : op -> bool
val op_to_string : op -> string

type Gc_net.Payload.t +=
  | Cl_put of { rid : int; key : string; value : string }
  | Cl_incr of { rid : int; key : string; delta : int }
  | Cl_get of { rid : int; key : string }
  | Cl_dump of { rid : int }
  | Cl_reply of { rid : int; ok : bool; body : string }
      (** Every request is answered by exactly one [Cl_reply] echoing its
          [rid]. *)
  | Sv_op of { origin : int; opid : int; op : op }
      (** The replicated envelope servers broadcast through the stack;
          [origin]'s server answers the submitting client when its own
          stack delivers the envelope. *)
