(** The [gcs_server] wire protocol: client requests, server replies, and
    the replicated operation envelope, all as {!Gc_net.Payload.t}
    extensions registered with the binary codec (tag ["cl"]) so they
    cross both the client TCP connection and the server peer mesh.

    Clients pick the ordering primitive by op: [Cl_put] conflicts (it
    overwrites) and rides atomic broadcast; [Cl_incr] commutes with other
    increments and rides the generic-broadcast fast path; [Cl_get] and
    [Cl_dump] are answered locally by the serving replica. *)

type op =
  | Put of { key : string; value : string }  (** conflicting: abcast *)
  | Incr of { key : string; delta : int }  (** commuting: rbcast *)

val op_commutes : op -> bool
val op_to_string : op -> string

type stats_format = Stats_json | Stats_prometheus
(** Exposition format of a [Cl_stats] reply body: the registry's compact
    JSON (parse with {!Gc_obs.Snapshot.of_json} via the ["metrics"]
    member) or Prometheus text exposition. *)

type Gc_net.Payload.t +=
  | Cl_put of { rid : int; key : string; value : string }
  | Cl_incr of { rid : int; key : string; delta : int }
  | Cl_get of { rid : int; key : string }
  | Cl_dump of { rid : int }
  | Cl_reply of { rid : int; ok : bool; body : string }
      (** Every request is answered by exactly one [Cl_reply] echoing its
          [rid]. *)
  | Sv_op of { origin : int; opid : int; op : op }
      (** The replicated envelope servers broadcast through the stack;
          [origin]'s server answers the submitting client when its own
          stack delivers the envelope. *)
  | Cl_stats of { rid : int; format : stats_format }
      (** Admin: full telemetry snapshot of the serving replica — its
          metrics registry (every protocol layer, the event loop, the
          network edge) plus KV order/state digests and view.  Answered
          locally, never replicated. *)
  | Cl_health of { rid : int }
      (** Admin: one-line liveness summary (view, joined/alive flags,
          client count, uptime) — cheap enough for tight poll loops. *)
  | Sv_state of { blob : string }
      (** Full application state for a joiner: a {!Kv.to_blob} image,
          carried inside the membership snapshot. *)
  | Sv_delta of {
      from : int;
      entries : string list;
      applied : int;
      digest : string;
    }
      (** Log-suffix state transfer for a crash-recovered joiner:
          {!Gc_kernel.Storage.Record}-encoded entries from the sponsor's
          delivery-log index [from].  The joiner replays them through its
          applied-set (overlap with its own log replay is skipped), so the
          transfer is proportional to the outage, not the state.

          Because delivery-log indices are {e not} comparable across
          replicas (commuting deliveries interleave differently on each
          node), the delta is stamped with the sponsor's applied-set
          cardinality [applied] and order-independent
          {!Kv.applied_digest} [digest] at capture time.  After install
          the joiner verifies both; a mismatch means the suffix missed
          operations and the joiner must fall back to requesting a full
          {!Sv_state} — installing a short delta silently would lose those
          operations forever (the membership snapshot's delivered-id sets
          suppress their retransmission). *)
