(** Application state transfer for (re)joining replicas: the serve side
    ({!provide}) and the install side ({!install}) of the payload that
    rides inside the membership snapshot, factored out of {!Server} so
    the delta/full decision and its verification are unit-testable
    without a socket in sight.

    Two currencies are involved and must not be confused:

    - {e delivery-log indices} ([have], [from]) are per-replica — the
      position in that node's durable log.  Commuting (fast-path)
      deliveries interleave differently on every replica, so indices are
      only approximately comparable across nodes, with unbounded skew in
      the worst case.
    - the {e applied-set} — the set of [(origin, opid)] ids a replica has
      applied — is exactly comparable: equal sets mean equal KV states
      regardless of interleaving.

    A delta is therefore selected by log index (cheap, approximate) but
    {e verified} by applied-set cardinality + XOR digest (exact, whp).
    Verification failure is not an error to log-and-forget: an op missing
    from the delta is suppressed forever by the delivered-id dedup sets
    the stack snapshot installs alongside, so the caller must throw the
    delta away and fall back to a full {!Proto.Sv_state} transfer. *)

val delta_margin : int
(** How many entries below the joiner's announced high-water mark a delta
    starts: slack for cross-replica interleaving skew of commuting
    deliveries.  A heuristic that keeps spurious {!install} fallbacks
    rare — correctness never depends on it. *)

val log_retain : int
(** How many log entries the periodic snapshot leaves behind when
    truncating the prefix — the window {!provide} can serve deltas from.
    Comfortably exceeds {!delta_margin}. *)

val op_of_entry : string -> (int * int * Proto.op * bool) option
(** Decode one durable-log entry back to [(origin, opid, op, ordered)],
    or [None] for entries that did not carry a replicated KV operation
    (membership traffic also rides the logged broadcast layer). *)

val apply_entry :
  kv:Kv.t ->
  metrics:Gc_obs.Metrics.t ->
  on_fresh:
    (entry:string -> origin:int -> opid:int -> result:string -> unit) ->
  string ->
  unit
(** Replay one log entry through the applied-set: already-seen ops count
    [server.dup_ops_skipped]; fresh ops are applied and reported to
    [on_fresh] with the raw entry (so the caller can append it to its own
    log) and the rendered result (so the caller can answer a client still
    waiting on that opid). *)

val provide :
  kv:Kv.t ->
  metrics:Gc_obs.Metrics.t ->
  ?storage:Gc_kernel.Storage.t ->
  have:int ->
  unit ->
  Gc_net.Payload.t
(** Build the app payload for a joiner announcing log high-water mark
    [have]: a {!Proto.Sv_delta} log suffix (stamped with this replica's
    applied-set cardinality and {!Kv.applied_digest} at capture time)
    when [have - delta_margin] is inside the retained window, else a full
    {!Proto.Sv_state} image.  [have < 0] means the joiner has no log. *)

val install :
  kv:Kv.t ->
  metrics:Gc_obs.Metrics.t ->
  on_fresh:
    (entry:string -> origin:int -> opid:int -> result:string -> unit) ->
  Gc_net.Payload.t ->
  [ `Installed | `Verify_failed | `Unrecognised ]
(** Install a {!provide} payload.  [`Installed]: state is complete (full
    image restored, or delta applied and its applied-set expectation
    met).  [`Verify_failed]: the delta was applied but the applied-set
    does not match the sponsor's stamp — operations are missing and their
    redelivery is already suppressed; the caller must request a full
    transfer (counted as [server.delta_rejected]).  [`Unrecognised]: not
    a state-transfer payload, or a corrupt blob (counted as
    [server.bad_delivery]). *)
