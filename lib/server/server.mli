(** One [gcs_server] daemon: a {!Gcs_stack} over the real-network runtime,
    plus a client-facing TCP listener speaking {!Proto} frames.

    Requests enter on a client connection, are wrapped in
    {!Proto.Sv_op} and broadcast through the stack ([Cl_put] via abcast,
    [Cl_incr] via rbcast); when the daemon's own stack delivers an
    envelope it originated, the submitting client gets its
    {!Proto.Cl_reply}.  Reads ([Cl_get], [Cl_dump]) are answered from
    the local {!Kv} replica immediately. *)

type t

val create :
  loop:Gc_runtime_unix.Evloop.t ->
  id:int ->
  initial:int list ->
  ?config:Gcs.Gcs_stack.config ->
  ?metrics:Gc_obs.Metrics.t ->
  ?log:(string -> unit) ->
  ?join_via:int ->
  ?storage:Gc_kernel.Storage.t ->
  ?snapshot_interval:float ->
  ?sync_interval:float ->
  ?sync_replies:bool ->
  peer_listen:Unix.sockaddr ->
  client_listen:Unix.sockaddr ->
  unit ->
  t
(** Boot the daemon: bind the peer listener, assemble the stack.  A
    founding member lists itself in [initial] and accepts clients
    immediately; a later joiner passes the current membership and
    [join_via] (its sponsor) and defers its client listener until its
    state-transfer install lands — an op submitted into the pre-join
    window could be consumed by the incoming snapshot without its reply
    ever firing.  Port 0 binds are supported; read the real ports back
    with {!peer_port} / {!client_port} (0 while a joiner's listener is
    still deferred), then declare the mesh with {!set_peers}.

    [storage] (typically {!Gc_runtime_unix.Fstore} over [--data-dir])
    makes the replica crash-recoverable: before the stack boots, the KV is
    rebuilt from the durable snapshot plus the delivery-log suffix, the
    opid incarnation is bumped and durably persisted, and the rejoin
    announces the log high-water mark so a sponsor can ship a log-delta
    instead of the full state.  Deltas are verified on install against
    the sponsor's applied-set digest (see {!Resync}); on mismatch the
    joiner automatically falls back to a full-image re-join.
    [snapshot_interval] (ms, default 10s) is the periodic snapshot +
    log-truncation cadence; [sync_interval] (ms, default 1s) bounds how
    much acknowledged-but-unsynced log a power cut can lose.
    [sync_replies] (default false) syncs the delivery log before each
    client reply instead — acked-means-durable at the cost of one fsync
    per originated op. *)

val set_peers : t -> (int * Unix.sockaddr) list -> unit

val stats_json : t -> Gc_obs.Json.t
(** The full telemetry snapshot a [Cl_stats] (JSON format) reply
    carries: node id, uptime, KV digests/counters, current view,
    per-client-connection I/O, and the whole metrics registry under
    ["metrics"] (parse with {!Gc_obs.Snapshot.of_json}).  Also what the
    [--telemetry-interval] JSONL writer appends each tick. *)

val stats_body : t -> Proto.stats_format -> string
(** [stats_json] rendered per the requested exposition format —
    compact JSON or Prometheus text (with a [gcs_kv_info] digest line). *)

val health_body : t -> string
(** Small JSON liveness summary ([Cl_health] reply body). *)


val peer_port : t -> int
val client_port : t -> int
val id : t -> int
val stack : t -> Gcs.Gcs_stack.t
val kv : t -> Kv.t
val metrics : t -> Gc_obs.Metrics.t
val shutdown : t -> unit
