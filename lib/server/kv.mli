(** The replicated application every [gcs_server] runs: a string key/value
    table whose [Put]s are totally ordered and whose [Incr]s commute.

    Besides the table it keeps the evidence the CI smoke test compares
    across replicas: an append-only log of ordered deliveries (identical
    on every replica iff the stack delivered the same total order) and
    counters of applied operations. *)

type t

val create : unit -> t

val apply : t -> origin:int -> opid:int -> ordered:bool -> Proto.op -> string
(** Apply one delivered operation; returns a rendering of the new value
    (the body of the originating client's reply).  Records [(origin, opid)]
    in the applied-set — callers replaying a log or installing a delta must
    consult {!seen} first to keep replay idempotent. *)

val seen : t -> origin:int -> opid:int -> bool
(** Has [(origin, opid)] already been applied?  (Crash recovery replays the
    local log and then a peer delta; overlap is expected and skipped.) *)

val get : t -> string -> string option

val ordered_count : t -> int
val commuting_count : t -> int

val applied_count : t -> int
(** Size of the applied-set — the number of distinct operations ever
    applied, ordered and commuting alike. *)

val applied_digest : t -> string
(** 16 raw bytes: the XOR of MD5 over every applied [(origin, opid)] id.
    Order-independent — two replicas that applied the same {e set} of
    operations report the same digest regardless of how their commuting
    deliveries interleaved, and (with [applied_count]) unequal sets
    collide only with negligible probability.  This is the cross-replica
    comparable cursor that delta state transfer verifies against. *)

val order_digest : t -> string
(** MD5 (hex) over the sequence of ordered deliveries
    [(origin, opid, op)...], in delivery order. *)

val state_digest : t -> string
(** MD5 (hex) over the sorted key/value table — equal across replicas
    once traffic has quiesced, even though commuting deliveries may have
    interleaved differently. *)

val dump : t -> string
(** One-line summary: both digests and both counters. *)

val to_blob : t -> string
(** Deterministic wire serialisation of the whole state — table, order log,
    applied-set, counters — for the durable snapshot slot and for full
    state transfer to joiners. *)

val restore : t -> string -> unit
(** Replace this state with a {!to_blob} image.
    @raise Gc_net.Wire.Short on a truncated blob. *)
