module Evloop = Gc_runtime_unix.Evloop
module Json = Gc_obs.Json

type t = {
  oc : out_channel;
  mutable timer : Gc_kernel.Runtime.timer option;
  mutable stopped : bool;
}

let tick server t =
  if not t.stopped then begin
    let line =
      Json.to_string
        (Obj
           [
             ("ts", Num (Unix.gettimeofday ()));
             ("node", Num (float_of_int (Server.id server)));
             ("stats", Server.stats_json server);
           ])
    in
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc
  end

let start ~loop ~server ~interval_ms ~path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let t = { oc; timer = None; stopped = false } in
  let rec arm () =
    t.timer <-
      Some
        (Evloop.schedule loop ~delay:interval_ms (fun () ->
             tick server t;
             if not t.stopped then arm ()))
  in
  arm ();
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (match t.timer with
    | Some timer ->
        Gc_kernel.Runtime.cancel timer;
        t.timer <- None
    | None -> ());
    close_out_noerr t.oc
  end
