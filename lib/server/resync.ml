module Stack = Gcs.Gcs_stack
module Storage = Gc_kernel.Storage

(* Delta state transfer backs off this many entries below the joiner's
   announced log high-water mark: commuting deliveries may interleave
   differently across replicas, so log indices near the crash point are
   only approximately comparable between nodes.  Re-sending the margin is
   harmless — every operation funnels through the (origin, opid)
   applied-set, so overlap is skipped, not re-applied.

   The margin is a bandwidth heuristic, not a correctness argument: the
   interleaving skew between two replicas' logs is unbounded in theory
   (one origin's commuting traffic can be arbitrarily delayed to the
   joiner while everything else flows).  Correctness comes from
   [install]'s verification — the sponsor stamps the delta with its
   applied-set cardinality and XOR digest at capture time, and a joiner
   whose post-install applied-set does not match both falls back to a
   full state transfer. *)
let delta_margin = 256

(* How many log entries the periodic snapshot leaves behind when it
   truncates the prefix: the window delta transfer can serve from.  Must
   comfortably exceed [delta_margin]. *)
let log_retain = 1024

(* Decode one durable-log entry back into the replicated operation it
   carried, if any — the log also records membership traffic and anything
   else that rode generic broadcast, which replay skips. *)
let op_of_entry entry =
  match Storage.Record.decode entry with
  | exception Gc_net.Wire.Short -> None
  | record -> (
      match Gc_net.Payload.decode record.Storage.Record.payload with
      | Ok (Stack.Gcs_app { klass; body = Proto.Sv_op { origin; opid; op } })
        ->
          Some (origin, opid, op, klass = Stack.Conflict.Ordered)
      | _ -> None)

let apply_entry ~kv ~metrics ~on_fresh entry =
  match op_of_entry entry with
  | None -> ()
  | Some (origin, opid, op, ordered) ->
      if Kv.seen kv ~origin ~opid then
        Gc_obs.Metrics.incr metrics "server.dup_ops_skipped"
      else
        let result = Kv.apply kv ~origin ~opid ~ordered op in
        on_fresh ~entry ~origin ~opid ~result

(* Joiner state transfer, durable-log flavoured: a joiner that announces
   a log high-water mark within our retained window gets the log suffix
   (cost proportional to the outage), stamped with our applied-set
   cardinality and digest so it can verify coverage; anyone else gets
   the full image. *)
let provide ~kv ~metrics ?storage ~have () =
  let serve_full () =
    Gc_obs.Metrics.incr metrics "server.full_transfers";
    Proto.Sv_state { blob = Kv.to_blob kv }
  in
  match storage with
  | Some store when have >= 0 ->
      let lo, _next = Storage.extent store in
      if have - delta_margin >= lo then begin
        let from = have - delta_margin in
        let entries = ref [] in
        Storage.iter_from store from (fun ~index:_ entry ->
            entries := entry :: !entries);
        Gc_obs.Metrics.incr metrics "server.delta_transfers";
        Proto.Sv_delta
          {
            from;
            entries = List.rev !entries;
            applied = Kv.applied_count kv;
            digest = Kv.applied_digest kv;
          }
      end
      else serve_full ()
  | _ -> serve_full ()

let install ~kv ~metrics ~on_fresh payload =
  match payload with
  | Proto.Sv_state { blob } -> (
      match Kv.restore kv blob with
      | () -> `Installed
      | exception Gc_net.Wire.Short ->
          Gc_obs.Metrics.incr metrics "server.bad_delivery";
          `Unrecognised)
  | Proto.Sv_delta { from = _; entries; applied; digest } ->
      List.iter (fun entry -> apply_entry ~kv ~metrics ~on_fresh entry) entries;
      (* The moment of truth for log-suffix transfer: our applied-set must
         now equal the sponsor's at capture time.  Equal cardinality plus
         equal XOR digest means equal sets (w.h.p.); anything else means
         the suffix missed operations we can never recover later — the
         membership snapshot's delivered-id sets (already installed by the
         stack layer) suppress their retransmission — so the caller must
         fall back to a full transfer. *)
      if Kv.applied_count kv = applied && Kv.applied_digest kv = digest then
        `Installed
      else begin
        Gc_obs.Metrics.incr metrics "server.delta_rejected";
        `Verify_failed
      end
  | _ ->
      Gc_obs.Metrics.incr metrics "server.bad_delivery";
      `Unrecognised
