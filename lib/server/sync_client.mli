(** A thin synchronous client for [gcs_server]: one blocking TCP
    connection, one in-flight request at a time.  Used by [gcs_client],
    the loopback load generator, and the CI smoke test. *)

type t

type error =
  | Timeout
  | Closed  (** the server hung up *)
  | Refused of string  (** a [Cl_reply] with [ok = false] *)
  | Protocol of string  (** malformed frame or mismatched reply *)

val error_to_string : error -> string

val connect : Unix.sockaddr -> (t, string) result
val close : t -> unit

val put :
  t -> ?timeout:float -> key:string -> value:string -> unit ->
  (string, error) result
(** Conflicting write (total order); returns the applied value. *)

val incr :
  t -> ?timeout:float -> key:string -> delta:int -> unit ->
  (string, error) result
(** Commuting write (fast path); returns the applied value. *)

val get : t -> ?timeout:float -> key:string -> unit -> (string, error) result
val dump : t -> ?timeout:float -> unit -> (string, error) result
(** The replica's {!Kv.dump} line (order/state digests + counters). *)

val stats :
  t -> ?timeout:float -> ?format:Proto.stats_format -> unit ->
  (string, error) result
(** The replica's full telemetry snapshot ({!Server.stats_body});
    [format] defaults to [Stats_json]. *)

val health : t -> ?timeout:float -> unit -> (string, error) result
(** The replica's liveness summary ({!Server.health_body}). *)
