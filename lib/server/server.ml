module Runtime_unix = Gc_runtime_unix.Runtime_unix
module Evloop = Gc_runtime_unix.Evloop
module Fconn = Gc_runtime_unix.Fconn
module Stack = Gcs.Gcs_stack
module View = Gc_membership.View
module Process = Gc_kernel.Process
module Json = Gc_obs.Json
module Snapshot = Gc_obs.Snapshot

type t = {
  id : int;
  endpoint : Runtime_unix.t;
  stack : Stack.t;
  kv : Kv.t;
  metrics : Gc_obs.Metrics.t;
  log : string -> unit;
  mutable next_opid : int;
  pending : (int, Fconn.t * int * float) Hashtbl.t;
      (* opid -> submitting conn, rid, submit time (runtime clock) *)
  mutable clients : Fconn.t list;
  mutable client_listener : Unix.file_descr option;
  loop : Evloop.t;
  started_at : float; (* runtime clock at creation, for uptime *)
}

let id t = t.id
let stack t = t.stack
let kv t = t.kv
let metrics t = t.metrics
let peer_port t = Runtime_unix.port t.endpoint

(* The runtime clock capability: wall-clock under the unix backend,
   virtual time under the simulator — so latency stamps perturb
   neither. *)
let now_ms t = Process.now (Stack.process t.stack)

let client_port t =
  match t.client_listener with Some s -> Fconn.bound_port s | None -> 0

let set_peers t peers = Runtime_unix.set_peers t.endpoint peers

let reply conn ~rid ~ok body =
  if not (Fconn.closed conn) then
    Fconn.send conn (Proto.Cl_reply { rid; ok; body })

let submit t conn ~rid op =
  let opid = t.next_opid in
  t.next_opid <- opid + 1;
  Hashtbl.replace t.pending opid (conn, rid, now_ms t);
  let envelope = Proto.Sv_op { origin = t.id; opid; op } in
  if Proto.op_commutes op then Stack.rbcast t.stack envelope
  else Stack.abcast t.stack envelope

(* ---------- telemetry bodies ---------- *)

let uptime_ms t = now_ms t -. t.started_at

let kv_json t : Json.t =
  Obj
    [
      ("order_digest", Str (Kv.order_digest t.kv));
      ("state_digest", Str (Kv.state_digest t.kv));
      ("ordered", Num (float_of_int (Kv.ordered_count t.kv)));
      ("commuting", Num (float_of_int (Kv.commuting_count t.kv)));
    ]

let view_json t : Json.t =
  let v = Stack.view t.stack in
  Obj
    [
      ("vid", Num (float_of_int v.View.vid));
      ( "members",
        Arr (List.map (fun m -> Json.Num (float_of_int m)) v.View.members) );
    ]

let conns_json t : Json.t =
  Arr
    (List.rev_map
       (fun conn ->
         let s = Fconn.stats conn in
         Json.Obj
           [
             ("bytes_in", Num (float_of_int s.Fconn.bytes_in));
             ("bytes_out", Num (float_of_int s.Fconn.bytes_out));
             ("frames_in", Num (float_of_int s.Fconn.frames_in));
             ("frames_out", Num (float_of_int s.Fconn.frames_out));
           ])
       t.clients)

let snapshot t = Snapshot.of_metrics t.metrics

let stats_json t : Json.t =
  Obj
    [
      ("node", Num (float_of_int t.id));
      ("now_ms", Num (now_ms t));
      ("uptime_ms", Num (uptime_ms t));
      ("kv", kv_json t);
      ("view", view_json t);
      ("clients", conns_json t);
      ("metrics", Snapshot.to_json (snapshot t));
    ]

let health_json t : Json.t =
  let v = Stack.view t.stack in
  Obj
    [
      ("node", Num (float_of_int t.id));
      ("alive", Bool (Stack.alive t.stack));
      ("joined", Bool (Stack.joined t.stack));
      ("vid", Num (float_of_int v.View.vid));
      ("members", Num (float_of_int (List.length v.View.members)));
      ("clients", Num (float_of_int (List.length t.clients)));
      ("uptime_ms", Num (uptime_ms t));
    ]

let stats_body t format =
  match format with
  | Proto.Stats_json -> Json.to_string (stats_json t)
  | Proto.Stats_prometheus ->
      let labels = [ ("node", string_of_int t.id) ] in
      Snapshot.to_prometheus ~labels (snapshot t)
      (* Digests ride as an info-style gauge: constant value, identifying
         labels — hex-only values, nothing to escape. *)
      ^ Printf.sprintf
          "# TYPE gcs_kv_info gauge\n\
           gcs_kv_info{node=\"%d\",order_digest=\"%s\",state_digest=\"%s\"} 1\n"
          t.id (Kv.order_digest t.kv) (Kv.state_digest t.kv)

let health_body t = Json.to_string (health_json t)

let on_client_payload t conn payload =
  match payload with
  | Proto.Cl_put { rid; key; value } ->
      submit t conn ~rid (Proto.Put { key; value })
  | Proto.Cl_incr { rid; key; delta } ->
      submit t conn ~rid (Proto.Incr { key; delta })
  | Proto.Cl_get { rid; key } -> (
      match Kv.get t.kv key with
      | Some value -> reply conn ~rid ~ok:true value
      | None -> reply conn ~rid ~ok:false "not found")
  | Proto.Cl_dump { rid } -> reply conn ~rid ~ok:true (Kv.dump t.kv)
  | Proto.Cl_stats { rid; format } ->
      Gc_obs.Metrics.incr t.metrics "server.stats_requests";
      reply conn ~rid ~ok:true (stats_body t format)
  | Proto.Cl_health { rid } ->
      Gc_obs.Metrics.incr t.metrics "server.health_requests";
      reply conn ~rid ~ok:true (health_body t)
  | _ -> Gc_obs.Metrics.incr t.metrics "server.bad_request"

let on_delivery t ~origin:_ ~ordered payload =
  match payload with
  | Proto.Sv_op { origin; opid; op } -> (
      let result = Kv.apply t.kv ~origin ~opid ~ordered op in
      Gc_obs.Metrics.incr t.metrics "server.applied";
      if origin = t.id then
        match Hashtbl.find_opt t.pending opid with
        | Some (conn, rid, submitted) ->
            Hashtbl.remove t.pending opid;
            (* Client-visible submit->deliver latency at the serving
               replica, split by ordering primitive. *)
            let lat = now_ms t -. submitted in
            Gc_obs.Metrics.observe t.metrics "server.latency_ms" lat;
            Gc_obs.Metrics.observe t.metrics
              (if ordered then "server.latency_abcast_ms"
               else "server.latency_rbcast_ms")
              lat;
            reply conn ~rid ~ok:true result
        | None -> ())
  | _ -> Gc_obs.Metrics.incr t.metrics "server.bad_delivery"

let accept_client t sock _addr =
  Gc_obs.Metrics.incr t.metrics "server.client_accepts";
  t.log "client connected";
  let conn =
    Fconn.attach ~loop:t.loop ~metrics:t.metrics sock
      ~on_payload:(fun conn p -> on_client_payload t conn p)
      ~on_close:(fun conn ->
        t.clients <- List.filter (fun c -> c != conn) t.clients;
        t.log "client disconnected")
  in
  t.clients <- conn :: t.clients

let create ~loop ~id ~initial ?config ?metrics ?(log = ignore) ?join_via
    ~peer_listen ~client_listen () =
  let metrics =
    match metrics with Some m -> m | None -> Gc_obs.Metrics.create ()
  in
  let endpoint = Runtime_unix.create ~loop ~me:id ~metrics ~listen:peer_listen () in
  let config =
    match config with
    | Some c -> c
    | None -> Stack.Config.make ~runtime:Stack.Config.Unix ()
  in
  let stack =
    Stack.create (Runtime_unix.runtime endpoint) ~metrics ~id ~initial ~config ()
  in
  let t =
    {
      id;
      endpoint;
      stack;
      kv = Kv.create ();
      metrics;
      log;
      next_opid = 0;
      pending = Hashtbl.create 64;
      clients = [];
      client_listener = None;
      loop;
      started_at = Process.now (Stack.process stack);
    }
  in
  t.client_listener <-
    Some
      (Fconn.listen ~loop client_listen ~on_accept:(fun fd addr ->
           accept_client t fd addr));
  Stack.on_deliver stack (fun ~origin ~ordered payload ->
      on_delivery t ~origin ~ordered payload);
  Stack.on_view stack (fun view ->
      log
        (Printf.sprintf "view %d: {%s}" view.View.vid
           (String.concat "," (List.map string_of_int view.View.members))));
  (match join_via with
  | Some via -> Stack.join stack ~via
  | None -> ());
  t

let shutdown t =
  (match t.client_listener with
  | Some sock ->
      Evloop.forget t.loop sock;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      t.client_listener <- None
  | None -> ());
  List.iter Fconn.close t.clients;
  t.clients <- [];
  Stack.crash t.stack;
  Runtime_unix.shutdown t.endpoint
