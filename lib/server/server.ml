module Runtime_unix = Gc_runtime_unix.Runtime_unix
module Evloop = Gc_runtime_unix.Evloop
module Fconn = Gc_runtime_unix.Fconn
module Stack = Gcs.Gcs_stack
module View = Gc_membership.View
module Process = Gc_kernel.Process
module Storage = Gc_kernel.Storage
module Json = Gc_obs.Json
module Snapshot = Gc_obs.Snapshot

type t = {
  id : int;
  endpoint : Runtime_unix.t;
  stack : Stack.t;
  kv : Kv.t;
  storage : Storage.t option;
  incarnation : int;
      (* bumped (and durably persisted) once per boot before serving, so
         this boot's opids can never collide with an in-flight pre-crash
         submission that later gets delivered *)
  persist : unit -> unit; (* snapshot kv+incarnation into the storage slot *)
  metrics : Gc_obs.Metrics.t;
  log : string -> unit;
  sync_replies : bool;
      (* acked-means-durable: fsync the delivery log before answering a
         client, instead of relying on the group-commit timer *)
  awaiting_full : bool ref;
      (* a delta install failed verification and a full transfer is on its
         way; live deliveries in this window are buffered so the full
         image's restore cannot wipe them (shared by ref with the
         installer closure, which outlives [create]'s scope) *)
  resync_buffer : (int * int * Proto.op * bool) list ref;
      (* (origin, opid, op, ordered) applied live while awaiting_full, in
         reverse delivery order *)
  mutable next_opid : int;
  pending : (int, Fconn.t * int * float) Hashtbl.t;
      (* opid -> submitting conn, rid, submit time (runtime clock) *)
  mutable clients : Fconn.t list;
  mutable client_listener : Unix.file_descr option;
  loop : Evloop.t;
  started_at : float; (* runtime clock at creation, for uptime *)
}

let id t = t.id
let stack t = t.stack
let kv t = t.kv
let metrics t = t.metrics
let peer_port t = Runtime_unix.port t.endpoint

(* The runtime clock capability: wall-clock under the unix backend,
   virtual time under the simulator — so latency stamps perturb
   neither. *)
let now_ms t = Process.now (Stack.process t.stack)

let client_port t =
  match t.client_listener with Some s -> Fconn.bound_port s | None -> 0

let set_peers t peers = Runtime_unix.set_peers t.endpoint peers

let reply conn ~rid ~ok body =
  if not (Fconn.closed conn) then
    Fconn.send conn (Proto.Cl_reply { rid; ok; body })

let submit t conn ~rid op =
  let seq = t.next_opid in
  t.next_opid <- seq + 1;
  (* Incarnation-scoped opids: the sequence restarts at 0 every boot, the
     incarnation never repeats, so (origin, opid) is unique across
     crashes. *)
  let opid = (t.incarnation lsl 32) lor seq in
  Hashtbl.replace t.pending opid (conn, rid, now_ms t);
  let envelope = Proto.Sv_op { origin = t.id; opid; op } in
  if Proto.op_commutes op then Stack.rbcast t.stack envelope
  else Stack.abcast t.stack envelope

(* ---------- telemetry bodies ---------- *)

let uptime_ms t = now_ms t -. t.started_at

let kv_json t : Json.t =
  Obj
    [
      ("order_digest", Str (Kv.order_digest t.kv));
      ("state_digest", Str (Kv.state_digest t.kv));
      ("ordered", Num (float_of_int (Kv.ordered_count t.kv)));
      ("commuting", Num (float_of_int (Kv.commuting_count t.kv)));
    ]

let view_json t : Json.t =
  let v = Stack.view t.stack in
  Obj
    [
      ("vid", Num (float_of_int v.View.vid));
      ( "members",
        Arr (List.map (fun m -> Json.Num (float_of_int m)) v.View.members) );
    ]

let conns_json t : Json.t =
  Arr
    (List.rev_map
       (fun conn ->
         let s = Fconn.stats conn in
         Json.Obj
           [
             ("bytes_in", Num (float_of_int s.Fconn.bytes_in));
             ("bytes_out", Num (float_of_int s.Fconn.bytes_out));
             ("frames_in", Num (float_of_int s.Fconn.frames_in));
             ("frames_out", Num (float_of_int s.Fconn.frames_out));
           ])
       t.clients)

let snapshot t = Snapshot.of_metrics t.metrics

let stats_json t : Json.t =
  Obj
    [
      ("node", Num (float_of_int t.id));
      ("now_ms", Num (now_ms t));
      ("uptime_ms", Num (uptime_ms t));
      ("kv", kv_json t);
      ("view", view_json t);
      ("clients", conns_json t);
      ("metrics", Snapshot.to_json (snapshot t));
    ]

let health_json t : Json.t =
  let v = Stack.view t.stack in
  Obj
    [
      ("node", Num (float_of_int t.id));
      ("alive", Bool (Stack.alive t.stack));
      ("joined", Bool (Stack.joined t.stack));
      ("vid", Num (float_of_int v.View.vid));
      ("members", Num (float_of_int (List.length v.View.members)));
      ("clients", Num (float_of_int (List.length t.clients)));
      ("uptime_ms", Num (uptime_ms t));
    ]

let stats_body t format =
  match format with
  | Proto.Stats_json -> Json.to_string (stats_json t)
  | Proto.Stats_prometheus ->
      let labels = [ ("node", string_of_int t.id) ] in
      Snapshot.to_prometheus ~labels (snapshot t)
      (* Digests ride as an info-style gauge: constant value, identifying
         labels — hex-only values, nothing to escape. *)
      ^ Printf.sprintf
          "# TYPE gcs_kv_info gauge\n\
           gcs_kv_info{node=\"%d\",order_digest=\"%s\",state_digest=\"%s\"} 1\n"
          t.id (Kv.order_digest t.kv) (Kv.state_digest t.kv)

let health_body t = Json.to_string (health_json t)

let on_client_payload t conn payload =
  match payload with
  | Proto.Cl_put { rid; key; value } ->
      submit t conn ~rid (Proto.Put { key; value })
  | Proto.Cl_incr { rid; key; delta } ->
      submit t conn ~rid (Proto.Incr { key; delta })
  | Proto.Cl_get { rid; key } -> (
      match Kv.get t.kv key with
      | Some value -> reply conn ~rid ~ok:true value
      | None -> reply conn ~rid ~ok:false "not found")
  | Proto.Cl_dump { rid } -> reply conn ~rid ~ok:true (Kv.dump t.kv)
  | Proto.Cl_stats { rid; format } ->
      Gc_obs.Metrics.incr t.metrics "server.stats_requests";
      reply conn ~rid ~ok:true (stats_body t format)
  | Proto.Cl_health { rid } ->
      Gc_obs.Metrics.incr t.metrics "server.health_requests";
      reply conn ~rid ~ok:true (health_body t)
  | _ -> Gc_obs.Metrics.incr t.metrics "server.bad_request"

let on_delivery t ~origin:_ ~ordered payload =
  match payload with
  | Proto.Sv_op { origin; opid; op = _ } when Kv.seen t.kv ~origin ~opid ->
      (* Already applied during log replay or delta install — the live
         delivery raced the state transfer.  Skip, don't double-apply. *)
      Gc_obs.Metrics.incr t.metrics "server.dup_ops_skipped"
  | Proto.Sv_op { origin; opid; op } -> (
      let result = Kv.apply t.kv ~origin ~opid ~ordered op in
      Gc_obs.Metrics.incr t.metrics "server.applied";
      (* Mid-fallback window: a full Sv_state image is on its way and its
         restore will overwrite the KV wholesale.  This delivery is
         already marked consumed by the stack's dedup sets, so park it for
         a post-restore merge — dropping it here would lose it forever. *)
      if !(t.awaiting_full) then
        t.resync_buffer := (origin, opid, op, ordered) :: !(t.resync_buffer);
      if origin = t.id then
        match Hashtbl.find_opt t.pending opid with
        | Some (conn, rid, submitted) ->
            Hashtbl.remove t.pending opid;
            (* Client-visible submit->deliver latency at the serving
               replica, split by ordering primitive. *)
            let lat = now_ms t -. submitted in
            Gc_obs.Metrics.observe t.metrics "server.latency_ms" lat;
            Gc_obs.Metrics.observe t.metrics
              (if ordered then "server.latency_abcast_ms"
               else "server.latency_rbcast_ms")
              lat;
            (* Acked-means-durable mode: the delivery was appended to the
               log just before this callback ran, so one sync here makes
               the acknowledged op crash-proof before the client hears
               about it. *)
            (if t.sync_replies then
               match t.storage with
               | Some store ->
                   Storage.sync store;
                   Gc_obs.Metrics.incr t.metrics "server.reply_syncs"
               | None -> ());
            reply conn ~rid ~ok:true result
        | None -> ())
  | _ -> Gc_obs.Metrics.incr t.metrics "server.bad_delivery"

let accept_client t sock _addr =
  Gc_obs.Metrics.incr t.metrics "server.client_accepts";
  t.log "client connected";
  let conn =
    Fconn.attach ~loop:t.loop ~metrics:t.metrics sock
      ~on_payload:(fun conn p -> on_client_payload t conn p)
      ~on_close:(fun conn ->
        t.clients <- List.filter (fun c -> c != conn) t.clients;
        t.log "client disconnected")
  in
  t.clients <- conn :: t.clients

(* ---------- crash recovery ---------- *)

(* The durable snapshot slot holds the incarnation alongside the KV image:
   both must move together (a KV state without the incarnation that
   produced its applied-set would let a rebooted node mint colliding
   opids). *)
let persist_blob kv incarnation =
  let w = Buffer.create 1024 in
  Gc_net.Wire.varint w incarnation;
  Gc_net.Wire.str w (Kv.to_blob kv);
  Buffer.contents w

let create ~loop ~id ~initial ?config ?metrics ?(log = ignore) ?join_via
    ?storage ?(snapshot_interval = 10_000.0) ?(sync_interval = 1_000.0)
    ?(sync_replies = false) ~peer_listen ~client_listen () =
  let metrics =
    match metrics with Some m -> m | None -> Gc_obs.Metrics.create ()
  in
  (* Recovery runs before the stack exists: rebuild the KV from the durable
     snapshot plus the log suffix, bump the incarnation, and persist the
     bump before a single client request can be accepted. *)
  let kv = Kv.create () in
  let incarnation = ref 0 in
  let had_state = ref false in
  let persist () =
    match storage with
    | None -> ()
    | Some store ->
        let _, next = Storage.extent store in
        Storage.save_snapshot store ~index:next (persist_blob kv !incarnation);
        Storage.sync store
  in
  (match storage with
  | None -> ()
  | Some store ->
      let t0 = Unix.gettimeofday () in
      let replay_from =
        match Storage.load_snapshot store with
        | Some (index, blob) ->
            had_state := true;
            (try
               let r = Gc_net.Wire.reader blob in
               incarnation := Gc_net.Wire.read_varint r;
               Kv.restore kv (Gc_net.Wire.read_str r)
             with Gc_net.Wire.Short ->
               Gc_obs.Metrics.incr metrics "server.bad_delivery");
            index
        | None -> 0
      in
      Storage.iter_from store replay_from (fun ~index:_ entry ->
          had_state := true;
          Resync.apply_entry ~kv ~metrics
            ~on_fresh:(fun ~entry:_ ~origin:_ ~opid:_ ~result:_ ->
              Gc_obs.Metrics.incr metrics "server.recovered_ops")
            entry);
      incarnation := !incarnation + 1;
      persist ();
      Gc_obs.Metrics.observe metrics "server.recovery_ms"
        ((Unix.gettimeofday () -. t0) *. 1000.);
      log
        (Printf.sprintf "recovered incarnation %d: %s" !incarnation
           (Kv.dump kv)));
  let app_state_provider ~have = Resync.provide ~kv ~metrics ?storage ~have () in
  (* Shared by ref with [t] and with closures wired up only after the
     stack exists: the installer runs long after [create] returns. *)
  let pending = Hashtbl.create 64 in
  let awaiting_full = ref false in
  let resync_buffer = ref [] in
  let open_listener = ref (fun () -> ()) in
  let request_full = ref (fun () -> ()) in
  let on_fresh ~entry ~origin ~opid ~result =
    (* Keep our own log complete: the next restart replays these the same
       as locally-delivered entries. *)
    (match storage with
    | Some store -> ignore (Storage.append store entry)
    | None -> ());
    (* A client that submitted just before the crash-or-resync window may
       be waiting on this very op (it reached the group and came back via
       the sponsor's delta): answer it rather than leaking the pending
       entry until the client times out. *)
    if origin = id then
      match Hashtbl.find_opt pending opid with
      | Some (conn, rid, _) ->
          Hashtbl.remove pending opid;
          reply conn ~rid ~ok:true result
      | None -> ()
  in
  let app_state_installer payload =
    match Resync.install ~kv ~metrics ~on_fresh payload with
    | `Installed ->
        (* Merge back anything delivered live while the full image was in
           flight: the restore just wiped those ops from the KV, yet the
           stack's dedup sets already count them as delivered, so this
           merge is their only chance.  Ops the sponsor captured before
           shipping are in the blob's applied-set and skip. *)
        let buffered = List.rev !resync_buffer in
        resync_buffer := [];
        awaiting_full := false;
        List.iter
          (fun (origin, opid, op, ordered) ->
            if not (Kv.seen kv ~origin ~opid) then begin
              ignore (Kv.apply kv ~origin ~opid ~ordered op);
              Gc_obs.Metrics.incr metrics "server.applied"
            end)
          buffered;
        (* An installed state must be durable before we serve on top of
           it — otherwise a crash right after the join replays an empty
           log over a stale snapshot. *)
        persist ();
        !open_listener ()
    | `Verify_failed ->
        (* The delta missed operations (log indices are not comparable
           across replicas); their redelivery is suppressed, so only a
           full image can repair us.  Do NOT persist or serve this state. *)
        awaiting_full := true;
        !request_full ()
    | `Unrecognised -> ()
  in
  let endpoint = Runtime_unix.create ~loop ~me:id ~metrics ~listen:peer_listen () in
  let config =
    match config with
    | Some c -> c
    | None -> Stack.Config.make ~runtime:Stack.Config.Unix ()
  in
  (* A replica recovering with a sponsor available comes back as a passive
     joiner: listing itself in the founding view would have the rebuilt
     stack participate from protocol position zero — re-running decided
     consensus instances and re-delivering the prefix — before the resync
     snapshot lands.  Dropping itself keeps every layer quiescent until the
     sponsor's snapshot bootstraps it at the group's current position.
     With no sponsor (first boot, or a full-cluster restart where everyone
     resumes from its own log) it must keep its seat or nobody serves. *)
  let stack_initial =
    if !had_state && join_via <> None then List.filter (fun p -> p <> id) initial
    else initial
  in
  let stack =
    Stack.create (Runtime_unix.runtime endpoint) ~metrics ~id ~initial:stack_initial
      ~config ~app_state_provider ~app_state_installer ?storage
      ~boot_epoch:!incarnation ()
  in
  let t =
    {
      id;
      endpoint;
      stack;
      kv;
      storage;
      incarnation = !incarnation;
      persist;
      metrics;
      log;
      sync_replies;
      awaiting_full;
      resync_buffer;
      next_opid = 0;
      pending;
      clients = [];
      client_listener = None;
      loop;
      started_at = Process.now (Stack.process stack);
    }
  in
  (open_listener :=
     fun () ->
       if t.client_listener = None then begin
         t.client_listener <-
           Some
             (Fconn.listen ~loop client_listen ~on_accept:(fun fd addr ->
                  accept_client t fd addr));
         log (Printf.sprintf "serving clients on port %d" (client_port t))
       end);
  (* A founding member (or a lone log-recovered restart) serves clients
     immediately; a joiner defers its listener until the resync install
     lands, so no op can be submitted into the pre-join window where its
     reply would never come. *)
  if join_via = None then !open_listener ();
  Stack.on_deliver stack (fun ~origin ~ordered payload ->
      on_delivery t ~origin ~ordered payload);
  Stack.on_view stack (fun view ->
      log
        (Printf.sprintf "view %d: {%s}" view.View.vid
           (String.concat "," (List.map string_of_int view.View.members))));
  (match storage with
  | None -> ()
  | Some store ->
      let proc = Stack.process stack in
      (* Periodic snapshot + prefix truncation keeps replay bounded; the
         retained suffix is the window delta transfer serves from. *)
      ignore
        (Process.every proc ~period:snapshot_interval (fun () ->
             persist ();
             let _, next = Storage.extent store in
             Storage.truncate_before store (next - Resync.log_retain)));
      (* Group-commit heartbeat: bounds the window of acknowledged-but-
         unsynced log entries lost to a power cut to [sync_interval]. *)
      ignore
        (Process.every proc ~period:sync_interval (fun () ->
             Storage.sync store)));
  (match join_via with
  | Some via ->
      (* The delta-rejection escape hatch: re-join with no announced log
         position, which the sponsor can only answer with a full image.
         Deferred by a zero-delay timer because the installer runs inside
         the membership Mb_state handler, which flips the joined flag
         right after it returns — a synchronous re-join here would be
         clobbered. *)
      (request_full :=
         fun () ->
           log "delta transfer failed verification; requesting full image";
           ignore
             (Process.timer (Stack.process stack) ~delay:0.0 (fun () ->
                  Stack.join stack ~force:true ~via)));
      (match storage with
      | Some store ->
          let _, next = Storage.extent store in
          (* Announce our log high-water mark so the sponsor can serve a
             delta; force the join in case peers still list us from before
             the crash. *)
          Stack.join stack ~force:!had_state ~have:next ~via
      | None -> Stack.join stack ~via)
  | None -> ());
  t

let shutdown t =
  (match t.client_listener with
  | Some sock ->
      Evloop.forget t.loop sock;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      t.client_listener <- None
  | None -> ());
  List.iter Fconn.close t.clients;
  t.clients <- [];
  (* Orderly stack teardown flushes the submission/ack batchers and syncs
     the log — a request accepted just before shutdown still replicates. *)
  Stack.shutdown t.stack;
  (match t.storage with
  | Some store ->
      t.persist ();
      Storage.close store
  | None -> ());
  Runtime_unix.shutdown t.endpoint
