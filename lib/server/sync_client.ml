module Frame = Gc_net.Frame

type t = {
  sock : Unix.file_descr;
  decoder : Frame.Decoder.t;
  scratch : Bytes.t;
  mutable next_rid : int;
  mutable is_closed : bool;
}

type error = Timeout | Closed | Refused of string | Protocol of string

let error_to_string = function
  | Timeout -> "timeout"
  | Closed -> "connection closed"
  | Refused msg -> "refused: " ^ msg
  | Protocol msg -> "protocol error: " ^ msg

let connect addr =
  match Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | sock -> (
      match Unix.connect sock addr with
      | () ->
          (try Unix.setsockopt sock Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          Ok
            {
              sock;
              decoder = Frame.Decoder.create ();
              scratch = Bytes.create 65_536;
              next_rid = 0;
              is_closed = false;
            }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          Error (Unix.error_message e))

let close t =
  if not t.is_closed then begin
    t.is_closed <- true;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

let send_payload t payload =
  match Frame.encode payload with
  | Error e -> Error (Protocol (Frame.error_to_string e))
  | Ok frame -> (
      let len = String.length frame in
      match
        let rec write_all off =
          if off < len then
            let n =
              Unix.write_substring t.sock frame off (len - off)
            in
            write_all (off + n)
        in
        write_all 0
      with
      | () -> Ok ()
      | exception Unix.Unix_error _ ->
          close t;
          Error Closed)

(* Wait for the reply matching [rid]; unrelated frames are dropped. *)
let await_reply t ~rid ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec next_frame () =
    match Frame.Decoder.next t.decoder with
    | `Payload (Proto.Cl_reply { rid = r; ok; body }) when r = rid ->
        if ok then Ok body else Error (Refused body)
    | `Payload _ -> next_frame ()
    | `Corrupt e ->
        if Frame.Decoder.dead t.decoder then begin
          close t;
          Error (Protocol (Frame.error_to_string e))
        end
        else next_frame ()
    | `Await ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Error Timeout
        else begin
          Unix.setsockopt_float t.sock Unix.SO_RCVTIMEO remaining;
          match Unix.read t.sock t.scratch 0 (Bytes.length t.scratch) with
          | 0 ->
              close t;
              Error Closed
          | n ->
              Frame.Decoder.feed t.decoder t.scratch ~off:0 ~len:n;
              next_frame ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              Error Timeout
          | exception Unix.Unix_error _ ->
              close t;
              Error Closed
        end
  in
  next_frame ()

let request t ?(timeout = 10_000.0) make =
  if t.is_closed then Error Closed
  else begin
    let rid = t.next_rid in
    t.next_rid <- rid + 1;
    match send_payload t (make rid) with
    | Error e -> Error e
    | Ok () -> await_reply t ~rid ~timeout:(timeout /. 1000.0)
  end

let put t ?timeout ~key ~value () =
  request t ?timeout (fun rid -> Proto.Cl_put { rid; key; value })

let incr t ?timeout ~key ~delta () =
  request t ?timeout (fun rid -> Proto.Cl_incr { rid; key; delta })

let get t ?timeout ~key () =
  request t ?timeout (fun rid -> Proto.Cl_get { rid; key })

let dump t ?timeout () = request t ?timeout (fun rid -> Proto.Cl_dump { rid })

let stats t ?timeout ?(format = Proto.Stats_json) () =
  request t ?timeout (fun rid -> Proto.Cl_stats { rid; format })

let health t ?timeout () =
  request t ?timeout (fun rid -> Proto.Cl_health { rid })
