module Payload = Gc_net.Payload
module W = Gc_net.Wire

type op =
  | Put of { key : string; value : string }
  | Incr of { key : string; delta : int }

let op_commutes = function Put _ -> false | Incr _ -> true

let op_to_string = function
  | Put { key; value } -> Printf.sprintf "put %s=%s" key value
  | Incr { key; delta } -> Printf.sprintf "incr %s%+d" key delta

type stats_format = Stats_json | Stats_prometheus

type Payload.t +=
  | Cl_put of { rid : int; key : string; value : string }
  | Cl_incr of { rid : int; key : string; delta : int }
  | Cl_get of { rid : int; key : string }
  | Cl_dump of { rid : int }
  | Cl_reply of { rid : int; ok : bool; body : string }
  | Sv_op of { origin : int; opid : int; op : op }
  | Cl_stats of { rid : int; format : stats_format }
  | Cl_health of { rid : int }
  | Sv_state of { blob : string }
        (* full application state for a joiner: a [Kv.to_blob] image *)
  | Sv_delta of {
      from : int;
      entries : string list;
      applied : int;
      digest : string;
    }
        (* log-suffix state transfer: [Storage.Record]-encoded entries from
           the sponsor's delivery-log index [from]; the joiner applies them
           through its applied-set, so overlap with its replayed prefix is
           skipped.  [applied]/[digest] are the sponsor's applied-set
           cardinality and XOR digest at capture time: after installing the
           delta the joiner must match both, else the delta missed
           operations (log indices are not comparable across replicas for
           commuting traffic) and it falls back to a full transfer. *)

let () =
  Payload.register_printer (function
    | Cl_put { rid; key; value } ->
        Some (Printf.sprintf "cl_put#%d(%s=%s)" rid key value)
    | Cl_incr { rid; key; delta } ->
        Some (Printf.sprintf "cl_incr#%d(%s%+d)" rid key delta)
    | Cl_get { rid; key } -> Some (Printf.sprintf "cl_get#%d(%s)" rid key)
    | Cl_dump { rid } -> Some (Printf.sprintf "cl_dump#%d" rid)
    | Cl_reply { rid; ok; body } ->
        Some (Printf.sprintf "cl_reply#%d(%s:%s)" rid (if ok then "ok" else "err") body)
    | Sv_op { origin; opid; op } ->
        Some (Printf.sprintf "sv_op<%d.%d>(%s)" origin opid (op_to_string op))
    | Cl_stats { rid; format } ->
        Some
          (Printf.sprintf "cl_stats#%d(%s)" rid
             (match format with
             | Stats_json -> "json"
             | Stats_prometheus -> "prom"))
    | Cl_health { rid } -> Some (Printf.sprintf "cl_health#%d" rid)
    | Sv_state { blob } -> Some (Printf.sprintf "sv_state(%dB)" (String.length blob))
    | Sv_delta { from; entries; applied; _ } ->
        Some
          (Printf.sprintf "sv_delta(@%d,%d entries,applied=%d)" from
             (List.length entries) applied)
    | _ -> None)

let write_op w = function
  | Put { key; value } ->
      W.u8 w 0;
      W.str w key;
      W.str w value
  | Incr { key; delta } ->
      W.u8 w 1;
      W.str w key;
      W.varint w delta

let read_op r =
  match W.read_u8 r with
  | 0 ->
      let key = W.read_str r in
      let value = W.read_str r in
      Put { key; value }
  | 1 ->
      let key = W.read_str r in
      let delta = W.read_varint r in
      Incr { key; delta }
  | k -> Payload.malformed (Printf.sprintf "proto: bad op discriminator %d" k)

let () =
  Payload.register_codec ~tag:"cl"
    ~encode:(fun _enc w p ->
      match p with
      | Cl_put { rid; key; value } ->
          W.u8 w 0;
          W.varint w rid;
          W.str w key;
          W.str w value;
          true
      | Cl_incr { rid; key; delta } ->
          W.u8 w 1;
          W.varint w rid;
          W.str w key;
          W.varint w delta;
          true
      | Cl_get { rid; key } ->
          W.u8 w 2;
          W.varint w rid;
          W.str w key;
          true
      | Cl_dump { rid } ->
          W.u8 w 3;
          W.varint w rid;
          true
      | Cl_reply { rid; ok; body } ->
          W.u8 w 4;
          W.varint w rid;
          W.u8 w (if ok then 1 else 0);
          W.str w body;
          true
      | Sv_op { origin; opid; op } ->
          W.u8 w 5;
          W.varint w origin;
          W.varint w opid;
          write_op w op;
          true
      | Cl_stats { rid; format } ->
          W.u8 w 6;
          W.varint w rid;
          W.u8 w (match format with Stats_json -> 0 | Stats_prometheus -> 1);
          true
      | Cl_health { rid } ->
          W.u8 w 7;
          W.varint w rid;
          true
      | Sv_state { blob } ->
          W.u8 w 8;
          W.str w blob;
          true
      | Sv_delta { from; entries; applied; digest } ->
          W.u8 w 9;
          W.varint w from;
          W.list w W.str entries;
          W.varint w applied;
          W.str w digest;
          true
      | _ -> false)
    ~decode:(fun _dec r ->
      match W.read_u8 r with
      | 0 ->
          let rid = W.read_varint r in
          let key = W.read_str r in
          let value = W.read_str r in
          Cl_put { rid; key; value }
      | 1 ->
          let rid = W.read_varint r in
          let key = W.read_str r in
          let delta = W.read_varint r in
          Cl_incr { rid; key; delta }
      | 2 ->
          let rid = W.read_varint r in
          let key = W.read_str r in
          Cl_get { rid; key }
      | 3 ->
          let rid = W.read_varint r in
          Cl_dump { rid }
      | 4 ->
          let rid = W.read_varint r in
          let ok = W.read_u8 r = 1 in
          let body = W.read_str r in
          Cl_reply { rid; ok; body }
      | 5 ->
          let origin = W.read_varint r in
          let opid = W.read_varint r in
          let op = read_op r in
          Sv_op { origin; opid; op }
      | 6 ->
          let rid = W.read_varint r in
          let format =
            match W.read_u8 r with
            | 0 -> Stats_json
            | 1 -> Stats_prometheus
            | k ->
                Payload.malformed
                  (Printf.sprintf "proto: bad stats format %d" k)
          in
          Cl_stats { rid; format }
      | 7 ->
          let rid = W.read_varint r in
          Cl_health { rid }
      | 8 -> Sv_state { blob = W.read_str r }
      | 9 ->
          let from = W.read_varint r in
          let entries = W.read_list r W.read_str in
          let applied = W.read_varint r in
          let digest = W.read_str r in
          Sv_delta { from; entries; applied; digest }
      | k ->
          Payload.malformed
            (Printf.sprintf "proto: bad constructor discriminator %d" k))
