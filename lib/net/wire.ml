type writer = Buffer.t

let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

(* Zigzag maps the signed range onto unsigned so small negatives stay
   short; LEB128 then emits 7 bits per byte, low bits first. *)
let varint w v =
  let z = (v lsl 1) lxor (v asr (Sys.int_size - 1)) in
  let rec go z =
    if z land lnot 0x7f = 0 then u8 w z
    else begin
      u8 w (0x80 lor (z land 0x7f));
      go (z lsr 7)
    end
  in
  go z

let f64 w v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    u8 w (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let str w s =
  varint w (String.length s);
  Buffer.add_string w s

let list w item xs =
  varint w (List.length xs);
  List.iter (item w) xs

let option w item = function
  | None -> u8 w 0
  | Some x ->
      u8 w 1;
      item w x

let pair w fst_w snd_w (a, b) =
  fst_w w a;
  snd_w w b

let triple w fst_w snd_w trd_w (a, b, c) =
  fst_w w a;
  snd_w w b;
  trd_w w c

type reader = { src : string; limit : int; mutable pos : int }

exception Short

let reader ?(pos = 0) ?len src =
  let len = match len with Some l -> l | None -> String.length src - pos in
  { src; limit = pos + len; pos }

let read_u8 r =
  if r.pos >= r.limit then raise Short;
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_varint r =
  let rec go shift acc =
    if shift > Sys.int_size then raise Short;
    let b = read_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let read_f64 r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits (Int64.shift_left (Int64.of_int (read_u8 r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_str r =
  let n = read_varint r in
  if n < 0 || r.pos + n > r.limit then raise Short;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_list r item =
  let n = read_varint r in
  if n < 0 then raise Short;
  (* Explicit accumulation: items must be read front-to-back. *)
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (item r :: acc) in
  go n []

let read_option r item = match read_u8 r with 0 -> None | _ -> Some (item r)

let read_pair r fst_r snd_r =
  let a = fst_r r in
  let b = snd_r r in
  (a, b)

let read_triple r fst_r snd_r trd_r =
  let a = fst_r r in
  let b = snd_r r in
  let c = trd_r r in
  (a, b, c)

let remaining r = r.limit - r.pos

(* IEEE CRC-32 (reflected, polynomial 0xEDB88320), table-driven.  Used by
   the durable-log record framing to detect torn or corrupted tails. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
