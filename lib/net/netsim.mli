(** Simulated unreliable transport ("Unreliable Transport" in Figure 9 of the
    paper).

    Provides unreliable, unordered, point-to-point datagram delivery between
    numbered nodes over the discrete-event {!Gc_sim.Engine}:

    - each message is delayed by a draw from the link's delay distribution,
      so messages can be reordered;
    - each message is dropped with the link's drop probability, and
      {e duplicated} with the link's duplication probability (a second,
      independently delayed copy — real UDP duplicates packets);
    - crashed nodes neither send nor receive; {!recover} models a machine
      freeze ending: the node rejoins delivery with its state intact (the
      crash-stop view of the {e process} is the kernel layer's business —
      a {!crash}/{!recover} pair here is a network-level freeze);
    - the node set can be partitioned; messages across partition boundaries
      are dropped at send time;
    - transient delay spikes can be injected per node, to provoke wrong
      failure suspicions (Section 4.3 of the paper).

    Nothing here retransmits or orders — those are the jobs of the reliable
    channel layer built on top. *)

type t

val create :
  Gc_sim.Engine.t ->
  ?trace:Gc_sim.Trace.t ->
  ?metrics:Gc_obs.Metrics.t ->
  ?delay:Delay.t ->
  ?drop:float ->
  ?dup:float ->
  n:int ->
  unit ->
  t
(** [create engine ~n ()] builds a network of nodes [0 .. n-1].  [delay]
    (default {!Delay.lan}), [drop] (default [0.]) and [dup] (default [0.])
    apply to every link unless overridden with {!set_link}.  When [metrics]
    is given, the traffic counters are mirrored into it as [net.*] counters
    ({!messages_dropped_policy} → ["net.dropped_policy"],
    {!messages_dropped_gone} → ["net.dropped_gone"],
    {!messages_duplicated} → ["net.duplicated"]). *)

val engine : t -> Gc_sim.Engine.t
val size : t -> int

val register : t -> node:int -> (src:int -> Payload.t -> unit) -> unit
(** Install the receive handler for [node].  At most one handler per node;
    registering again replaces it (used when a process restarts as a fresh
    incarnation). *)

val send : t -> ?size:int -> src:int -> dst:int -> Payload.t -> unit
(** Fire-and-forget datagram.  [size] (bytes, default 64) only feeds the
    traffic accounting.  Sends from crashed nodes, to crashed nodes, or
    across a partition boundary are silently dropped. *)

val crash : t -> int -> unit
(** Crash [node]: all future sends and deliveries involving it are
    suppressed (in-flight messages to it are dropped on arrival).  Emits a
    [Crash] flight-recorder event. *)

val recover : t -> int -> unit
(** Undo {!crash}: [node] resumes sending and receiving (messages sent to
    it while crashed stay lost).  Emits a [Custom "recover"] flight-recorder
    event.  No-op on a live node. *)

val alive : t -> int -> bool

val set_link :
  t ->
  src:int ->
  dst:int ->
  ?delay:Delay.t ->
  ?drop:float ->
  ?dup:float ->
  unit ->
  unit
(** Override delay, drop and/or duplication probability of the directed
    link [src -> dst]. *)

val link_drop : t -> src:int -> dst:int -> float
(** Current drop probability of the directed link (lets fault injectors
    save and restore the base rate around a burst). *)

val link_dup : t -> src:int -> dst:int -> float
(** Current duplication probability of the directed link. *)

val partition : t -> int list list -> unit
(** Split the nodes into the given groups; nodes absent from every group form
    an implicit extra group.  Replaces any previous partition. *)

val heal : t -> unit
(** Remove the partition. *)

val delay_spike : t -> nodes:int list -> until:float -> extra:float -> unit
(** Add [extra] ms to every message {e sent by} the given nodes until virtual
    time [until].  Models transient overload / GC pauses that cause wrong
    suspicions. *)

(** {1 Accounting} *)

val messages_sent : t -> int
val messages_delivered : t -> int

val messages_dropped : t -> int
(** All drops: {!messages_dropped_policy} + {!messages_dropped_gone}. *)

val messages_dropped_policy : t -> int
(** Drops the network chose to make: lossy-link coin tosses and partition
    boundaries. *)

val messages_dropped_gone : t -> int
(** Drops because an endpoint was gone: dead sender or receiver at send
    time, receiver dead (or handler never registered) when the message
    arrived. *)

val messages_duplicated : t -> int
(** Extra copies injected by link duplication. *)

val bytes_sent : t -> int

val reset_counters : t -> unit
