type error =
  | Codec of Payload.codec_error
  | Oversized of { len : int; limit : int }
  | Bad_length of int

let error_to_string = function
  | Codec e -> Payload.codec_error_to_string e
  | Oversized { len; limit } ->
      Printf.sprintf "frame of %d bytes exceeds limit %d" len limit
  | Bad_length n -> Printf.sprintf "negative frame length %d" n

let default_limit = 1 lsl 20

let encode ?(limit = default_limit) p =
  match Payload.encode p with
  | Error e -> Error (Codec e)
  | Ok body ->
      let n = String.length body in
      if n > limit then Error (Oversized { len = n; limit })
      else begin
        let b = Bytes.create (4 + n) in
        Bytes.set_int32_be b 0 (Int32.of_int n);
        Bytes.blit_string body 0 b 4 n;
        Ok (Bytes.unsafe_to_string b)
      end

module Decoder = struct
  type t = {
    limit : int;
    metrics : Gc_obs.Metrics.t option;
    mutable buf : Bytes.t;  (* fed, not yet consumed: [pos, fill) *)
    mutable pos : int;
    mutable fill : int;
    mutable dead : bool;
    mutable rejected : int;
  }

  let create ?(limit = default_limit) ?metrics () =
    {
      limit;
      metrics;
      buf = Bytes.create 4096;
      pos = 0;
      fill = 0;
      dead = false;
      rejected = 0;
    }

  let buffered t = t.fill - t.pos

  let reject t =
    t.rejected <- t.rejected + 1;
    match t.metrics with
    | Some m -> Gc_obs.Metrics.incr m "net.frame_reject"
    | None -> ()

  let ensure_room t extra =
    let used = buffered t in
    if t.pos > 0 && (used = 0 || t.pos > Bytes.length t.buf / 2) then begin
      Bytes.blit t.buf t.pos t.buf 0 used;
      t.pos <- 0;
      t.fill <- used
    end;
    if t.fill + extra > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while t.fill + extra > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.fill;
      t.buf <- bigger
    end

  let feed t src ~off ~len =
    if len > 0 && not t.dead then begin
      ensure_room t len;
      Bytes.blit src off t.buf t.fill len;
      t.fill <- t.fill + len
    end

  let feed_string t s =
    feed t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

  let next t =
    if t.dead then `Corrupt (Bad_length (-1))
    else if buffered t < 4 then `Await
    else begin
      let len = Int32.to_int (Bytes.get_int32_be t.buf t.pos) in
      if len < 0 then begin
        t.dead <- true;
        reject t;
        `Corrupt (Bad_length len)
      end
      else if len > t.limit then begin
        t.dead <- true;
        reject t;
        `Corrupt (Oversized { len; limit = t.limit })
      end
      else if buffered t < 4 + len then `Await
      else begin
        let body = Bytes.sub_string t.buf (t.pos + 4) len in
        t.pos <- t.pos + 4 + len;
        match Payload.decode body with
        | Ok p -> `Payload p
        | Error e ->
            reject t;
            `Corrupt (Codec e)
      end
    end

  let dead t = t.dead
  let rejected t = t.rejected
end

let decode_exact ?limit s =
  let d = Decoder.create ?limit () in
  Decoder.feed_string d s;
  match Decoder.next d with
  | `Payload p ->
      if Decoder.buffered d = 0 then Ok p
      else Error (Codec (Payload.Trailing (Decoder.buffered d)))
  | `Await -> Error (Codec Payload.Truncated)
  | `Corrupt e -> Error e
