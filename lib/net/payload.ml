type t = ..

let printers : (t -> string option) list ref = ref []
let register_printer f = printers := f :: !printers

let to_string p =
  let rec go = function
    | [] -> "<payload>"
    | f :: rest -> ( match f p with Some s -> s | None -> go rest)
  in
  go !printers

(* ---------- binary codec registry ---------- *)

type codec_error =
  | Unknown_tag of string
  | Unencodable of string
  | Truncated
  | Trailing of int
  | Malformed of string

let codec_error_to_string = function
  | Unknown_tag tag -> Printf.sprintf "unknown wire tag %S" tag
  | Unencodable p -> Printf.sprintf "no codec for payload %s" p
  | Truncated -> "truncated payload"
  | Trailing n -> Printf.sprintf "%d trailing bytes after payload" n
  | Malformed why -> Printf.sprintf "malformed payload: %s" why

exception Codec_reject of codec_error

let malformed why = raise (Codec_reject (Malformed why))

let encoders : (string * (Wire.writer -> t -> bool)) list ref = ref []
let decoders : (string, Wire.reader -> t) Hashtbl.t = Hashtbl.create 32

let encode_value w p =
  let rec go = function
    | [] -> raise (Codec_reject (Unencodable (to_string p)))
    | (tag, enc) :: rest ->
        (* Speculatively write the tag; roll back if the family declines. *)
        let mark = Buffer.length w in
        Wire.str w tag;
        if not (enc w p) then begin
          Buffer.truncate w mark;
          go rest
        end
  in
  go !encoders

let decode_value r =
  let tag = Wire.read_str r in
  match Hashtbl.find_opt decoders tag with
  | None -> raise (Codec_reject (Unknown_tag tag))
  | Some dec -> dec r

let register_codec ~tag ~encode ~decode =
  if Hashtbl.mem decoders tag then
    invalid_arg (Printf.sprintf "Payload.register_codec: duplicate tag %S" tag);
  encoders := (tag, encode encode_value) :: !encoders;
  Hashtbl.replace decoders tag (fun r -> decode decode_value r)

let encode p =
  let w = Buffer.create 128 in
  match encode_value w p with
  | () -> Ok (Buffer.contents w)
  | exception Codec_reject e -> Error e

let decode s =
  let r = Wire.reader s in
  match decode_value r with
  | v ->
      let left = Wire.remaining r in
      if left = 0 then Ok v else Error (Trailing left)
  | exception Codec_reject e -> Error e
  | exception Wire.Short -> Error Truncated

let encodable p =
  List.exists
    (fun (_, enc) ->
      let w = Buffer.create 64 in
      match enc w p with
      | claimed -> claimed
      | exception Codec_reject _ -> true)
    !encoders
