(** Length-prefixed framing of {!Payload.t} for stream transports.

    On the wire a frame is a 4-byte big-endian body length followed by the
    {!Payload.encode} bytes.  Encoding and decoding are total: truncated,
    oversized and undecodable frames come back as typed errors — the
    connection layer counts them ([net.frame_reject]) and drops them, it
    never raises mid-read.  An oversized or negative length prefix is
    unrecoverable (the stream cannot be resynchronised) and kills the
    decoder; a frame whose {e body} fails to decode is skipped and the
    stream continues at the next frame boundary. *)

type error =
  | Codec of Payload.codec_error  (** body rejected by the payload codec *)
  | Oversized of { len : int; limit : int }
      (** length prefix beyond the decoder's limit *)
  | Bad_length of int  (** negative length prefix *)

val error_to_string : error -> string

val default_limit : int
(** Default maximum body length (1 MiB). *)

val encode : ?limit:int -> Payload.t -> (string, error) result
(** Complete frame bytes (prefix + body) for one payload. *)

val decode_exact : ?limit:int -> string -> (Payload.t, error) result
(** Decode a string holding exactly one frame (tests, datagram-style use).
    Truncated and trailing bytes surface as [Codec] errors. *)

(** Incremental decoder for a TCP byte stream. *)
module Decoder : sig
  type t

  val create : ?limit:int -> ?metrics:Gc_obs.Metrics.t -> unit -> t
  (** With [metrics], every rejected frame bumps the [net.frame_reject]
      counter. *)

  val feed : t -> bytes -> off:int -> len:int -> unit
  (** Append bytes received from the stream. *)

  val feed_string : t -> string -> unit

  val next : t -> [ `Payload of Payload.t | `Await | `Corrupt of error ]
  (** Pop the next complete frame.  [`Await] means more bytes are needed;
      [`Corrupt] reports a rejected frame — skippable for body errors,
      terminal for length errors (see {!dead}). *)

  val dead : t -> bool
  (** The stream lost framing (oversized/negative length); the caller
      should close the connection. *)

  val rejected : t -> int
  (** Frames rejected by this decoder so far. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed. *)
end
