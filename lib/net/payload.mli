(** Extensible message payloads.

    Each protocol layer extends {!t} with its own constructors (heartbeats,
    consensus phases, broadcast data, ...).  Keeping one extensible type lets
    the simulated network, the tracer and the statistics treat all protocol
    traffic uniformly while every layer still pattern-matches only on its own
    messages. *)

type t = ..

val register_printer : (t -> string option) -> unit
(** Layers register a printer for their constructors; used by traces and
    debugging output. *)

val to_string : t -> string
(** Best-effort rendering through the registered printers. *)

(** {1 Binary codec registry}

    Extensible variants do not survive [Marshal] across processes (the
    extension-constructor slot is compared physically), so the real-network
    runtime serializes payloads through a registry mirroring
    {!register_printer}: each layer registers a tagged codec for its own
    constructors at module-initialisation time.  Nested payloads (a reliable
    channel packet carrying a broadcast carrying consensus traffic) recurse
    through the callback handed to each codec. *)

type codec_error =
  | Unknown_tag of string  (** no decoder registered for the wire tag *)
  | Unencodable of string  (** no encoder claims the value (printed form) *)
  | Truncated  (** input ended inside a field *)
  | Trailing of int  (** well-formed value followed by this many junk bytes *)
  | Malformed of string  (** a decoder rejected the bytes *)

val codec_error_to_string : codec_error -> string

val register_codec :
  tag:string ->
  encode:((Wire.writer -> t -> unit) -> Wire.writer -> t -> bool) ->
  decode:((Wire.reader -> t) -> Wire.reader -> t) ->
  unit
(** [register_codec ~tag ~encode ~decode] installs a codec family.
    [encode recurse w p] writes the body of [p] and returns [true] when [p]
    is one of the family's constructors ([false] leaves [w] untouched by the
    registry); [recurse] encodes a nested payload, raising internally if it
    is unencodable.  [decode recurse r] parses a body back; it may raise
    {!Wire.Short} or call {!malformed}.  Tags must be unique. *)

val malformed : string -> 'a
(** For decoders: reject the input with a {!Malformed} error. *)

val encode : t -> (string, codec_error) result
(** Self-describing binary encoding (tag + body), usable as a {!Frame}
    body.  Total: never raises. *)

val decode : string -> (t, codec_error) result
(** Inverse of {!encode}; rejects truncated input, trailing bytes, unknown
    tags and malformed bodies with a typed error instead of raising. *)

val encodable : t -> bool
(** Whether some registered codec claims the value. *)
