(** Binary wire primitives for the runtime seam.

    A tiny, dependency-free binary format used by the {!Payload} codec
    registry and the {!Frame} length-prefixed framing: LEB128 varints
    (zigzag for signed values), IEEE-754 doubles, length-prefixed strings
    and the usual combinators.  Writers append to a [Buffer.t]; readers
    walk a string slice and raise {!Short} past its end, which the codec
    layer converts into a typed [Truncated] error. *)

type writer = Buffer.t

val u8 : writer -> int -> unit
(** Low byte of the argument. *)

val varint : writer -> int -> unit
(** Zigzag LEB128; full native [int] range, negative values welcome. *)

val f64 : writer -> float -> unit
val str : writer -> string -> unit
val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val pair : writer -> (writer -> 'a -> unit) -> (writer -> 'b -> unit) -> 'a * 'b -> unit

val triple :
  writer ->
  (writer -> 'a -> unit) ->
  (writer -> 'b -> unit) ->
  (writer -> 'c -> unit) ->
  'a * 'b * 'c ->
  unit

type reader

exception Short
(** Raised by every [read_*] on a truncated input. *)

val reader : ?pos:int -> ?len:int -> string -> reader
(** Reader over a slice (default: the whole string). *)

val read_u8 : reader -> int
val read_varint : reader -> int
val read_f64 : reader -> float
val read_str : reader -> string
val read_list : reader -> (reader -> 'a) -> 'a list
val read_option : reader -> (reader -> 'a) -> 'a option
val read_pair : reader -> (reader -> 'a) -> (reader -> 'b) -> 'a * 'b
val read_triple : reader -> (reader -> 'a) -> (reader -> 'b) -> (reader -> 'c) -> 'a * 'b * 'c

val remaining : reader -> int
(** Unread bytes left in the slice. *)

val crc32 : ?pos:int -> ?len:int -> string -> int
(** IEEE CRC-32 (the zlib/ethernet polynomial) of a slice (default: the
    whole string), returned as a non-negative int in [\[0, 2^32)].  Used to
    frame durable-log records so a torn tail is detected on recovery. *)
