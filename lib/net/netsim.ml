module Engine = Gc_sim.Engine
module Rng = Gc_sim.Rng
module Trace = Gc_sim.Trace

type link = {
  mutable delay : Delay.t;
  mutable drop : float;
  mutable dup : float;
}

type t = {
  engine : Engine.t;
  trace : Trace.t;
  metrics : Gc_obs.Metrics.t option;
  rng : Rng.t;
  n : int;
  links : link array array; (* links.(src).(dst) *)
  handlers : (src:int -> Payload.t -> unit) option array;
  alive : bool array;
  mutable group_of : int array option; (* partition: node -> group id *)
  spike_until : float array;
  spike_extra : float array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_policy : int; (* lossy link, partition boundary *)
  mutable dropped_gone : int; (* dead endpoint, missing handler *)
  mutable duplicated : int;
  mutable bytes : int;
}

let create engine ?(trace = Trace.create ()) ?metrics ?(delay = Delay.lan)
    ?(drop = 0.0) ?(dup = 0.0) ~n () =
  {
    engine;
    trace;
    metrics;
    rng = Engine.split_rng engine;
    n;
    links =
      Array.init n (fun _ -> Array.init n (fun _ -> { delay; drop; dup }));
    handlers = Array.make n None;
    alive = Array.make n true;
    group_of = None;
    spike_until = Array.make n 0.0;
    spike_extra = Array.make n 0.0;
    sent = 0;
    delivered = 0;
    dropped_policy = 0;
    dropped_gone = 0;
    duplicated = 0;
    bytes = 0;
  }

let engine t = t.engine
let size t = t.n

let bump t name =
  match t.metrics with
  | Some m -> Gc_obs.Metrics.incr m name
  | None -> ()

let drop_policy t =
  t.dropped_policy <- t.dropped_policy + 1;
  bump t "net.dropped_policy"

let drop_gone t =
  t.dropped_gone <- t.dropped_gone + 1;
  bump t "net.dropped_gone"

let check_node t node name =
  if node < 0 || node >= t.n then
    invalid_arg (Printf.sprintf "Netsim.%s: node %d out of range" name node)

let register t ~node f =
  check_node t node "register";
  t.handlers.(node) <- Some f

let alive t node =
  check_node t node "alive";
  t.alive.(node)

let crash t node =
  check_node t node "crash";
  if t.alive.(node) then begin
    t.alive.(node) <- false;
    Trace.emit_event t.trace ~time:(Engine.now t.engine) ~node ~component:"net"
      ~kind:Gc_obs.Event.Crash ()
  end

let recover t node =
  check_node t node "recover";
  if not t.alive.(node) then begin
    t.alive.(node) <- true;
    Trace.emit_event t.trace ~time:(Engine.now t.engine) ~node ~component:"net"
      ~kind:(Gc_obs.Event.Custom "recover") ()
  end

let set_link t ~src ~dst ?delay ?drop ?dup () =
  check_node t src "set_link";
  check_node t dst "set_link";
  let l = t.links.(src).(dst) in
  (match delay with Some d -> l.delay <- d | None -> ());
  (match drop with Some d -> l.drop <- d | None -> ());
  match dup with Some d -> l.dup <- d | None -> ()

let link_drop t ~src ~dst =
  check_node t src "link_drop";
  check_node t dst "link_drop";
  t.links.(src).(dst).drop

let link_dup t ~src ~dst =
  check_node t src "link_dup";
  check_node t dst "link_dup";
  t.links.(src).(dst).dup

let partition t groups =
  let g = Array.make t.n (-1) in
  List.iteri
    (fun gid members ->
      List.iter
        (fun node ->
          check_node t node "partition";
          g.(node) <- gid)
        members)
    groups;
  (* Nodes not mentioned form one extra implicit group. *)
  let extra = List.length groups in
  Array.iteri (fun i gid -> if gid = -1 then g.(i) <- extra) g;
  t.group_of <- Some g;
  Trace.emit t.trace ~time:(Engine.now t.engine) ~node:(-1) ~component:"net"
    ~event:"partition" ()

let heal t =
  t.group_of <- None;
  Trace.emit t.trace ~time:(Engine.now t.engine) ~node:(-1) ~component:"net"
    ~event:"heal" ()

let delay_spike t ~nodes ~until ~extra =
  List.iter
    (fun node ->
      check_node t node "delay_spike";
      t.spike_until.(node) <- until;
      t.spike_extra.(node) <- extra)
    nodes

let same_side t src dst =
  match t.group_of with
  | None -> true
  | Some g -> g.(src) = g.(dst)

let send t ?(size = 64) ~src ~dst payload =
  check_node t src "send";
  check_node t dst "send";
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  let link = t.links.(src).(dst) in
  (* Keep the guard order (and hence the RNG consumption pattern) stable:
     the drop coin is only tossed for messages both endpoints could carry,
     exactly as before the drop split. *)
  if not (t.alive.(src) && t.alive.(dst)) then drop_gone t
  else if not (same_side t src dst) then drop_policy t
  else if Rng.bernoulli t.rng link.drop then drop_policy t
  else begin
    let now = Engine.now t.engine in
    let spike =
      if now < t.spike_until.(src) then t.spike_extra.(src) else 0.0
    in
    (* The datagram happens-after everything the sender did so far: carry
       the sender's Lamport clock and merge it at the destination before
       the handler runs, so causality crosses node boundaries. *)
    let sent_clock = Trace.clock t.trace ~node:src in
    let schedule_copy () =
      let delay = Delay.sample link.delay t.rng +. spike in
      ignore
        (Engine.schedule t.engine ~delay (fun () ->
             if t.alive.(dst) then
               match t.handlers.(dst) with
               | None -> drop_gone t
               | Some h ->
                   t.delivered <- t.delivered + 1;
                   Trace.merge_clock t.trace ~node:dst ~clock:sent_clock;
                   if Trace.enabled t.trace then
                     Trace.emit_event t.trace ~time:(Engine.now t.engine)
                       ~node:dst ~component:"net" ~kind:Gc_obs.Event.Recv
                       ~attrs:
                         [
                           ("from", string_of_int src);
                           ("payload", Payload.to_string payload);
                         ]
                       ();
                   h ~src payload
             else drop_gone t))
    in
    schedule_copy ();
    if link.dup > 0.0 && Rng.bernoulli t.rng link.dup then begin
      t.duplicated <- t.duplicated + 1;
      bump t "net.duplicated";
      schedule_copy ()
    end
  end

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped_policy + t.dropped_gone
let messages_dropped_policy t = t.dropped_policy
let messages_dropped_gone t = t.dropped_gone
let messages_duplicated t = t.duplicated
let bytes_sent t = t.bytes

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped_policy <- 0;
  t.dropped_gone <- 0;
  t.duplicated <- 0;
  t.bytes <- 0
