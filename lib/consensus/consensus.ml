module Process = Gc_kernel.Process
module Rc = Gc_rchannel.Reliable_channel
module Rb = Gc_rbcast.Reliable_broadcast
module Fd = Gc_fd.Failure_detector
module Sorted = Gc_sim.Sorted

type Gc_net.Payload.t +=
  | Cs_start of { inst : int }
  | Cs_estimate of { inst : int; round : int; est : Gc_net.Payload.t; ts : int }
  | Cs_propose of { inst : int; round : int; v : Gc_net.Payload.t }
  | Cs_ack of { inst : int; round : int }
  | Cs_decide of { inst : int; v : Gc_net.Payload.t }

let () =
  Gc_net.Payload.register_printer (function
    | Cs_start { inst } -> Some (Printf.sprintf "cs.start[%d]" inst)
    | Cs_estimate { inst; round; _ } -> Some (Printf.sprintf "cs.est[%d,r%d]" inst round)
    | Cs_propose { inst; round; _ } -> Some (Printf.sprintf "cs.prop[%d,r%d]" inst round)
    | Cs_ack { inst; round } -> Some (Printf.sprintf "cs.ack[%d,r%d]" inst round)
    | Cs_decide { inst; _ } -> Some (Printf.sprintf "cs.decide[%d]" inst)
    | _ -> None)

let () =
  let module W = Gc_net.Wire in
  Gc_net.Payload.register_codec ~tag:"cs"
    ~encode:(fun enc w p ->
      match p with
      | Cs_start { inst } ->
          W.u8 w 0;
          W.varint w inst;
          true
      | Cs_estimate { inst; round; est; ts } ->
          W.u8 w 1;
          W.varint w inst;
          W.varint w round;
          W.varint w ts;
          enc w est;
          true
      | Cs_propose { inst; round; v } ->
          W.u8 w 2;
          W.varint w inst;
          W.varint w round;
          enc w v;
          true
      | Cs_ack { inst; round } ->
          W.u8 w 3;
          W.varint w inst;
          W.varint w round;
          true
      | Cs_decide { inst; v } ->
          W.u8 w 4;
          W.varint w inst;
          enc w v;
          true
      | _ -> false)
    ~decode:(fun dec r ->
      match W.read_u8 r with
      | 0 -> Cs_start { inst = W.read_varint r }
      | 1 ->
          let inst = W.read_varint r in
          let round = W.read_varint r in
          let ts = W.read_varint r in
          let est = dec r in
          Cs_estimate { inst; round; est; ts }
      | 2 ->
          let inst = W.read_varint r in
          let round = W.read_varint r in
          let v = dec r in
          Cs_propose { inst; round; v }
      | 3 ->
          let inst = W.read_varint r in
          let round = W.read_varint r in
          Cs_ack { inst; round }
      | 4 ->
          let inst = W.read_varint r in
          let v = dec r in
          Cs_decide { inst; v }
      | k -> Gc_net.Payload.malformed (Printf.sprintf "cs constructor %d" k))

type inst_state = {
  members : int array;
  majority : int;
  mutable est : Gc_net.Payload.t;
  mutable ts : int;
  mutable round : int;
  mutable phase3_done : bool;
  mutable decided : bool;
  mutable max_round : int;
  (* round -> sender -> (est, ts) *)
  estimates : (int, (int, Gc_net.Payload.t * int) Hashtbl.t) Hashtbl.t;
  (* round -> coordinator proposal *)
  proposals : (int, Gc_net.Payload.t) Hashtbl.t;
  (* round -> ack senders *)
  acks : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  proposed_rounds : (int, unit) Hashtbl.t;
  mutable decide_sent : bool;
}

type t = {
  proc : Process.t;
  rc : Rc.t;
  rb : Rb.t;
  score : Gc_net.Payload.t -> int;
  round_backoff : float;
  on_decide : inst:int -> Gc_net.Payload.t -> unit;
  on_solicit : inst:int -> unit;
  monitor : Fd.monitor;
  states : (int, inst_state) Hashtbl.t;
  decisions : (int, Gc_net.Payload.t) Hashtbl.t;
  solicited : (int, unit) Hashtbl.t;
  (* Messages for instances not started locally, replayed on [propose]. *)
  backlog : (int, (int * Gc_net.Payload.t) list ref) Hashtbl.t;
  mutable n_decided : int;
}

let coord st r = st.members.((r - 1) mod Array.length st.members)

let tbl_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.replace tbl key h;
      h

(* Coordinator's adoption rule: highest stamp, then highest score, then
   lowest sender id — deterministic across replays. *)
let select_estimate t ests =
  let best = ref None in
  Sorted.iter
    (fun sender (est, ts) ->
      let better =
        match !best with
        | None -> true
        | Some (bs, best_est, bts) ->
            ts > bts
            || (ts = bts && t.score est > t.score best_est)
            || (ts = bts && t.score est = t.score best_est && sender < bs)
      in
      if better then best := Some (sender, est, ts))
    ests;
  match !best with
  | Some (_, est, _) -> est
  | None -> invalid_arg "select_estimate: empty"

let decide t inst v =
  match Hashtbl.find_opt t.decisions inst with
  | Some _ -> ()
  | None ->
      Hashtbl.replace t.decisions inst v;
      (match Hashtbl.find_opt t.states inst with
      | Some st -> st.decided <- true
      | None -> ());
      t.n_decided <- t.n_decided + 1;
      Process.incr t.proc "consensus.instances_decided";
      (match Hashtbl.find_opt t.states inst with
      | Some st when st.max_round > 0 ->
          Process.observe t.proc "consensus.rounds"
            (float_of_int st.max_round)
      | _ -> ());
      if Process.traced t.proc then
        Process.event t.proc ~component:"consensus" ~kind:Gc_obs.Event.Decide
          ~msg:(Printf.sprintf "cs:%d" inst)
          ~attrs:
            [
              ("inst", string_of_int inst);
              ("val", Gc_net.Payload.to_string v);
            ]
          ();
      t.on_decide ~inst v

let broadcast_decision t st inst v =
  if not st.decide_sent then begin
    st.decide_sent <- true;
    Rb.broadcast t.rb ~dests:(Array.to_list st.members) (Cs_decide { inst; v })
  end

(* Coordinator duties for round [r]: propose once a majority of estimates is
   in; decide once a majority of acks is in.  Evaluated on every relevant
   message, independently of the participant's current round.  After
   proposing, the coordinator immediately runs its own phase 3 (it never
   receives its own proposal over the network), so its own acknowledgement
   counts towards the majority. *)
let rec check_coordinator t inst st r =
  if (not st.decided) && coord st r = Process.id t.proc then begin
    (if not (Hashtbl.mem st.proposed_rounds r) then
       let ests = tbl_of st.estimates r in
       if Hashtbl.length ests >= st.majority then begin
         let v = select_estimate t ests in
         Hashtbl.replace st.proposed_rounds r ();
         Hashtbl.replace st.proposals r v;
         Array.iter
           (fun q ->
             if q <> Process.id t.proc then
               Rc.send t.rc ~dst:q (Cs_propose { inst; round = r; v }))
           st.members;
         if r = st.round then check_phase3 t inst st
       end);
    match Hashtbl.find_opt st.proposals r with
    | Some v when Hashtbl.mem st.proposed_rounds r ->
        let acks = tbl_of st.acks r in
        if Hashtbl.length acks >= st.majority then broadcast_decision t st inst v
    | _ -> ()
  end

and enter_round t inst st r =
  if not st.decided then begin
    st.round <- r;
    st.max_round <- max st.max_round r;
    st.phase3_done <- false;
    let c = coord st r in
    (* Phase 1: estimate to the coordinator (loopback short-circuited). *)
    if c = Process.id t.proc then begin
      let ests = tbl_of st.estimates r in
      Hashtbl.replace ests (Process.id t.proc) (st.est, st.ts);
      check_coordinator t inst st r
    end
    else
      Rc.send t.rc ~dst:c (Cs_estimate { inst; round = r; est = st.est; ts = st.ts });
    check_phase3 t inst st
  end

(* Phase 3: adopt-and-ack on proposal, or give up on suspicion. *)
and check_phase3 t inst st =
  if (not st.decided) && not st.phase3_done then begin
    let r = st.round in
    let c = coord st r in
    match Hashtbl.find_opt st.proposals r with
    | Some v ->
        st.phase3_done <- true;
        st.est <- v;
        st.ts <- r;
        if c = Process.id t.proc then begin
          let acks = tbl_of st.acks r in
          Hashtbl.replace acks (Process.id t.proc) ();
          check_coordinator t inst st r
        end
        else Rc.send t.rc ~dst:c (Cs_ack { inst; round = r });
        (* The algorithm loops rounds until the decision broadcast arrives.
           Pacing the next round entry by a few ms lets the (in-flight)
           decision stop the loop before another full round of estimate
           traffic goes out — same liveness, far fewer messages. *)
        ignore
          (Process.timer t.proc ~delay:t.round_backoff (fun () ->
               if (not st.decided) && st.round = r then
                 enter_round t inst st (r + 1)))
    | None ->
        if Fd.suspected t.monitor c then begin
          st.phase3_done <- true;
          Process.incr t.proc "consensus.coordinator_suspicions";
          Process.emit t.proc ~component:"consensus" ~event:"skip_round"
            ~attrs:
              [
                ("inst", string_of_int inst);
                ("round", string_of_int r);
                ("coord", string_of_int c);
              ]
            ();
          (* Pace suspicion-driven round changes: with every coordinator
             suspected (e.g. during a partition) an immediate re-entry would
             spin through rounds without consuming virtual time. *)
          ignore
            (Process.timer t.proc ~delay:t.round_backoff (fun () ->
                 if (not st.decided) && st.round = r then
                   enter_round t inst st (r + 1)))
        end
  end

let handle_message t inst src payload =
  match Hashtbl.find_opt t.states inst with
  | None ->
      (* Not started here: remember the message, ask the layer above to
         propose (once). *)
      if not (Hashtbl.mem t.decisions inst) then begin
        let q =
          match Hashtbl.find_opt t.backlog inst with
          | Some q -> q
          | None ->
              let q = ref [] in
              Hashtbl.replace t.backlog inst q;
              q
        in
        q := (src, payload) :: !q;
        if not (Hashtbl.mem t.solicited inst) then begin
          Hashtbl.replace t.solicited inst ();
          t.on_solicit ~inst
        end
      end
  | Some st -> (
      (* Traffic from processes outside this instance's membership is
         dropped: a stale ex-member computing coordinators from an outdated
         member list must not be able to impersonate one or pad quorums. *)
      if (not st.decided) && Array.exists (fun q -> q = src) st.members then
        match payload with
        | Cs_estimate { round; est; ts; _ } ->
            Hashtbl.replace (tbl_of st.estimates round) src (est, ts);
            check_coordinator t inst st round
        | Cs_propose { round; v; _ } ->
            if src = coord st round then begin
              if not (Hashtbl.mem st.proposals round) then
                Hashtbl.replace st.proposals round v;
              if round = st.round then check_phase3 t inst st
            end
        | Cs_ack { round; _ } ->
            Hashtbl.replace (tbl_of st.acks round) src ();
            check_coordinator t inst st round
        | _ -> ())

let on_suspicion t _q =
  (* A coordinator we were waiting on may now be suspected. *)
  let active =
    List.filter (fun (_, st) -> not st.decided) (Sorted.bindings t.states)
  in
  List.iter (fun (inst, st) -> check_phase3 t inst st) active

let create proc ~rc ~rb ~fd ?(suspect_timeout = 200.0) ?(adaptive = false)
    ?(round_backoff = 25.0) ?(score = fun _ -> 0) ~on_decide ~on_solicit () =
  let states = Hashtbl.create 32 in
  Process.incr ~by:0 proc "consensus.instances_started";
  Process.incr ~by:0 proc "consensus.instances_decided";
  let t_ref = ref None in
  let on_suspect q =
    match !t_ref with Some t -> on_suspicion t q | None -> ()
  in
  let monitor =
    if adaptive then
      Fd.adaptive_monitor fd ~label:"consensus" ~margin:20.0 ~factor:4.0
        ~on_suspect ()
    else Fd.monitor fd ~label:"consensus" ~timeout:suspect_timeout ~on_suspect ()
  in
  let t =
    {
      proc;
      rc;
      rb;
      score;
      round_backoff;
      on_decide;
      on_solicit;
      monitor;
      states;
      decisions = Hashtbl.create 32;
      solicited = Hashtbl.create 8;
      backlog = Hashtbl.create 8;
      n_decided = 0;
    }
  in
  t_ref := Some t;
  Rc.on_deliver rc (fun ~src payload ->
      match payload with
      | Cs_start { inst }
      | Cs_estimate { inst; _ }
      | Cs_propose { inst; _ }
      | Cs_ack { inst; _ } ->
          handle_message t inst src payload
      | _ -> ());
  Rb.on_deliver rb (fun ~origin:_ payload ->
      match payload with
      | Cs_decide { inst; v } -> decide t inst v
      | _ -> ());
  t

let propose t ~inst ~members v =
  match Hashtbl.find_opt t.decisions inst with
  | Some dv ->
      (* Late proposer: the instance is over; replay the decision locally.
         [decide] already fired when the decision arrived, so nothing to
         do — the decision callback is per-process, not per-propose. *)
      ignore dv
  | None ->
      if not (Hashtbl.mem t.states inst) then begin
        let members_arr = Array.of_list members in
        let n = Array.length members_arr in
        if n = 0 then invalid_arg "Consensus.propose: empty membership";
        let st =
          {
            members = members_arr;
            majority = (n / 2) + 1;
            est = v;
            ts = 0;
            round = 0;
            phase3_done = false;
            decided = false;
            max_round = 0;
            estimates = Hashtbl.create 8;
            proposals = Hashtbl.create 8;
            acks = Hashtbl.create 8;
            proposed_rounds = Hashtbl.create 8;
            decide_sent = false;
          }
        in
        Hashtbl.replace t.states inst st;
        Process.incr t.proc "consensus.instances_started";
        if Process.traced t.proc then
          Process.event t.proc ~component:"consensus" ~kind:Gc_obs.Event.Propose
            ~msg:(Printf.sprintf "cs:%d" inst)
            ~attrs:
              [
                ("inst", string_of_int inst);
                ("val", Gc_net.Payload.to_string v);
              ]
            ();
        (* Solicitation ping: lets members that have nothing to propose yet
           join the instance reactively (their layer above is asked to
           propose on first contact). *)
        Array.iter
          (fun q ->
            if q <> Process.id t.proc then
              Rc.send t.rc ~size:16 ~dst:q (Cs_start { inst }))
          members_arr;
        enter_round t inst st 1;
        (* Replay traffic that arrived before we started. *)
        match Hashtbl.find_opt t.backlog inst with
        | None -> ()
        | Some q ->
            let msgs = List.rev !q in
            Hashtbl.remove t.backlog inst;
            List.iter (fun (src, payload) -> handle_message t inst src payload) msgs
      end

let decided t ~inst = Hashtbl.find_opt t.decisions inst
let started t ~inst = Hashtbl.mem t.states inst

let rounds_used t ~inst =
  match Hashtbl.find_opt t.states inst with
  | Some st -> st.max_round
  | None -> 0

let instances_decided t = t.n_decided
