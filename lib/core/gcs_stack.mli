(** The full new-architecture group communication stack (Figure 9 of the
    paper): the library's main public entry point.

    One [Gcs_stack.t] per process assembles, bottom-up:

    {v
      Application
        Group Membership          (views = totally-ordered messages)
          Generic Broadcast       (rbcast / abcast, conflict-driven ordering)
            Atomic Broadcast      (consensus-based, membership-independent)
              Consensus           (Chandra–Toueg <>S)
        Monitoring                (exclusion policies, decoupled from FD)
          Failure Detection       (heartbeats; short + long monitors)
            Reliable Channel      (FIFO, retransmission, stuck detection)
              Unreliable Transport (simulated network)
    v}

    Applications broadcast with {!abcast} (total order) or {!rbcast}
    (unordered with respect to other {!rbcast} messages, ordered with respect
    to {!abcast} messages) — exactly the two generic-broadcast invocations of
    the paper's Section 3.3, with the conflict relation

    {v
               rbcast       abcast
    rbcast   no conflict   conflict
    abcast    conflict     conflict
    v}

    Membership operations ({!join}, {!add}, {!remove}, {!join_remove_list})
    and view notifications ({!on_view}) follow the paper's interface.
    Exclusions are decided by the monitoring component according to the
    configured policy — a failure suspicion never removes anyone by itself. *)

type config = {
  hb_period : float;  (** heartbeat period, ms (default 20) *)
  consensus_timeout : float;
      (** aggressive FD timeout used to suspect coordinators (default 200) *)
  consensus_adaptive : bool;
      (** use the self-tuning adaptive monitor instead of the fixed
          consensus timeout (default false) *)
  exclusion_timeout : float;
      (** conservative FD timeout used by monitoring (default 5000) *)
  rto : float;  (** reliable-channel retransmission period (default 50) *)
  stuck_after : float;
      (** reliable-channel output-stuck threshold (default 10000) *)
  policy : Gc_monitoring.Monitoring.policy;
      (** exclusion policy (default [Threshold 2]) *)
  state_transfer_delay : float;
      (** snapshot serialisation time for joiners, ms (default 0) *)
  gb_ack_mode : Gc_gbcast.Generic_broadcast.ack_mode;
      (** generic-broadcast fast-path quorum (default [All_members]: every
          layer tolerates f < n/2, but commuting traffic stalls between a
          member's crash and its exclusion; [Two_thirds] keeps the fast path
          live with f < n/3, per the published algorithm) *)
  same_view_delivery : bool;
      (** route view changes through generic broadcast so every message is
          delivered in the same view everywhere (default true, the paper's
          design); false is the ablation: view changes ride plain atomic
          broadcast and commuting messages may straddle views (Section 4.4) *)
  batch_max : int;
      (** submission batching watermark for the ordering layers (default
          64): up to this many application messages ride one reliable
          broadcast / one acknowledgement vector, amortising the O(n^2)
          relay and O(n) ack cost per message; 1 disables batching *)
  batch_delay : float;
      (** tick watermark, ms (default 1): a partial batch is flushed this
          long after its first message, bounding added latency *)
}

val default_config : config

(** Smart constructor for {!config}.  New code should build configurations
    with {!Config.make} — the record type stays exposed above for reads and
    pattern matches, but constructing it literally means every new knob is a
    breaking change, while [make] grows backwards-compatibly. *)
module Config : sig
  type t = config

  type runtime = Sim | Unix
      (** Which backend the configuration is tuned for.  [Sim] keeps the
          historical defaults (simulated milliseconds); [Unix] rebases the
          timing defaults for wall-clock TCP deployments ([hb_period] 100ms,
          [consensus_timeout] 1s, [exclusion_timeout] 8s, [rto] 150ms,
          [stuck_after] 30s).  Explicit arguments always win. *)

  val default : t
  (** Same value as {!default_config}. *)

  val unix_default : t
  (** The [Unix] timing baseline, i.e. [make ~runtime:Unix ()]. *)

  val make :
    ?runtime:runtime ->
    ?hb_period:float ->
    ?consensus_timeout:float ->
    ?consensus_adaptive:bool ->
    ?exclusion_timeout:float ->
    ?rto:float ->
    ?stuck_after:float ->
    ?policy:Gc_monitoring.Monitoring.policy ->
    ?state_transfer_delay:float ->
    ?gb_ack_mode:Gc_gbcast.Generic_broadcast.ack_mode ->
    ?same_view_delivery:bool ->
    ?batch_max:int ->
    ?batch_delay:float ->
    unit ->
    t
  (** Every omitted argument takes its value from the [runtime] baseline
      ({!default} for [Sim], {!unix_default} for [Unix]); the historical
      arity [make ()] is unchanged and means [make ~runtime:Sim ()]. *)
end

module Conflict = Gc_gbcast.Conflict
(** Re-exported so applications that decode [Gcs_app] envelopes (e.g. a
    server replaying its durable log) can name the conflict classes
    without depending on the gbcast layer directly. *)

(** The stack's own payloads, exposed for crash recovery: the durable
    delivery log stores generic-broadcast bodies verbatim, so a recovering
    application decodes [Gcs_app] envelopes back out of its log.
    [Gcs_snapshot] is the joiner state-transfer container (ordering-layer
    bookkeeping plus the application's opaque state). *)
type Gc_net.Payload.t +=
  | Gcs_app of { klass : Gc_gbcast.Conflict.klass; body : Gc_net.Payload.t }
  | Gcs_snapshot of {
      next_instance : int;
      ab_delivered : (int * int) list;
      gb_stage : int;
      gb_delivered : (int * int) list;
      app : Gc_net.Payload.t option;
    }

type t

val create :
  Gc_kernel.Runtime.t ->
  ?metrics:Gc_obs.Metrics.t ->
  id:int ->
  initial:int list ->
  ?config:config ->
  ?app_state_provider:(have:int -> Gc_net.Payload.t) ->
  ?app_state_installer:(Gc_net.Payload.t -> unit) ->
  ?storage:Gc_kernel.Storage.t ->
  ?boot_epoch:int ->
  unit ->
  t
(** Build the stack for node [id].  [initial] is the founding view: a
    founding member lists itself in [initial]; a process joining later passes
    the current membership (without itself) and calls {!join}.  The app state
    hooks serialise/install application state for joiner state transfer;
    the provider receives the joiner's announced durable-log high-water
    mark ([have], -1 when it has none) so it can ship a delta instead of the
    full state.  [storage], when given, is the durable delivery log: generic
    broadcast (the delivery surface for every application message) appends
    one record per delivery, write-ahead of the application callbacks.
    [boot_epoch] (default 0) is this boot's incarnation number: a process
    restarting after a crash must pass a strictly larger value than its
    previous boot.  It scopes every identifier the stack mints — reliable
    channel generations (so streams reopen both directions instead of
    losing traffic against peers' stale per-stream state, see
    {!Gc_rchannel.Reliable_channel.create}) and the per-origin broadcast
    ids of the rbcast/abcast/gbcast layers (so peers' dedup sets never
    mistake a new incarnation's messages for already-seen ones).
    [metrics] (default: a fresh registry) collects every layer's counters and
    latency histograms; read it back with {!metrics}. *)

(** {1 Broadcast (generic broadcast: Section 3.3)} *)

val abcast : t -> ?size:int -> Gc_net.Payload.t -> unit
(** Totally-ordered broadcast to the current view. *)

val rbcast : t -> ?size:int -> Gc_net.Payload.t -> unit
(** Reliable broadcast: unordered against other [rbcast] messages (fast path,
    no consensus), totally ordered against [abcast] messages and view
    changes. *)

val on_deliver :
  t -> (origin:int -> ordered:bool -> Gc_net.Payload.t -> unit) -> unit
(** Application deliveries, in generic-broadcast order.  [ordered] tells
    which primitive the origin used. *)

(** {1 Membership} *)

val join : ?force:bool -> ?have:int -> t -> via:int -> unit
(** Ask [via] to sponsor this process into the group; [force] rejoins even if
    this process still believes it is a member (post-partition recovery).
    [have] (default -1) announces this process's durable-log high-water mark
    to the sponsor's state provider, enabling delta state transfer. *)

val add : t -> int -> unit
val remove : t -> int -> unit
val join_remove_list : t -> adds:int list -> removes:int list -> unit
val view : t -> Gc_membership.View.t
val joined : t -> bool
val left : t -> bool
val on_view : t -> (Gc_membership.View.t -> unit) -> unit

(** {1 Process control} *)

val id : t -> int
val crash : t -> unit
(** Crash-stop the whole process (simulation control). *)

val shutdown : t -> unit
(** Orderly teardown: flush the ordering layers' submission/ack batchers (a
    message submitted within [batch_delay] of teardown would otherwise be
    silently dropped), sync the durable log if one is attached, then crash
    the process.  Use {!crash} to model fail-stop. *)

val alive : t -> bool

(** {1 Component access (tests, benches, advanced use)} *)

val process : t -> Gc_kernel.Process.t

val metrics : t -> Gc_obs.Metrics.t
(** The node's metrics registry (counters, gauges, latency histograms from
    every layer of this stack).  Merge across nodes with
    {!Gc_obs.Metrics.merged}. *)

val failure_detector : t -> Gc_fd.Failure_detector.t
val reliable_channel : t -> Gc_rchannel.Reliable_channel.t
val reliable_broadcast : t -> Gc_rbcast.Reliable_broadcast.t
val atomic_broadcast : t -> Gc_abcast.Atomic_broadcast.t
val generic_broadcast : t -> Gc_gbcast.Generic_broadcast.t
val membership : t -> Gc_membership.Group_membership.t
val monitoring : t -> Gc_monitoring.Monitoring.t
