module Process = Gc_kernel.Process
module Fd = Gc_fd.Failure_detector
module Rc = Gc_rchannel.Reliable_channel
module Rb = Gc_rbcast.Reliable_broadcast
module Ab = Gc_abcast.Atomic_broadcast
module Gb = Gc_gbcast.Generic_broadcast
module Conflict = Gc_gbcast.Conflict
module View = Gc_membership.View
module Gm = Gc_membership.Group_membership
module Mon = Gc_monitoring.Monitoring

type config = {
  hb_period : float;
  consensus_timeout : float;
  consensus_adaptive : bool;
  exclusion_timeout : float;
  rto : float;
  stuck_after : float;
  policy : Mon.policy;
  state_transfer_delay : float;
  gb_ack_mode : Gb.ack_mode;
  same_view_delivery : bool;
  batch_max : int;
  batch_delay : float;
}

let default_config =
  {
    hb_period = 20.0;
    consensus_timeout = 200.0;
    consensus_adaptive = false;
    exclusion_timeout = 5000.0;
    rto = 50.0;
    stuck_after = 10_000.0;
    policy = Mon.Threshold 2;
    state_transfer_delay = 0.0;
    gb_ack_mode = Gb.All_members;
    same_view_delivery = true;
    batch_max = 64;
    batch_delay = 1.0;
  }

module Config = struct
  type t = config
  type runtime = Sim | Unix

  let default = default_config

  (* Wall-clock timing for the real-network backend: heartbeats and
     timeouts that are comfortable in simulated milliseconds would flap
     under OS scheduling jitter and TCP round-trips. *)
  let unix_default =
    {
      default_config with
      hb_period = 100.0;
      consensus_timeout = 1_000.0;
      exclusion_timeout = 8_000.0;
      rto = 150.0;
      stuck_after = 30_000.0;
    }

  let make ?(runtime = Sim) ?hb_period ?consensus_timeout ?consensus_adaptive
      ?exclusion_timeout ?rto ?stuck_after ?policy ?state_transfer_delay
      ?gb_ack_mode ?same_view_delivery ?batch_max ?batch_delay () =
    let base = match runtime with Sim -> default_config | Unix -> unix_default in
    let dfl field = function Some v -> v | None -> field base in
    {
      hb_period = dfl (fun c -> c.hb_period) hb_period;
      consensus_timeout = dfl (fun c -> c.consensus_timeout) consensus_timeout;
      consensus_adaptive =
        dfl (fun c -> c.consensus_adaptive) consensus_adaptive;
      exclusion_timeout = dfl (fun c -> c.exclusion_timeout) exclusion_timeout;
      rto = dfl (fun c -> c.rto) rto;
      stuck_after = dfl (fun c -> c.stuck_after) stuck_after;
      policy = dfl (fun c -> c.policy) policy;
      state_transfer_delay =
        dfl (fun c -> c.state_transfer_delay) state_transfer_delay;
      gb_ack_mode = dfl (fun c -> c.gb_ack_mode) gb_ack_mode;
      same_view_delivery =
        dfl (fun c -> c.same_view_delivery) same_view_delivery;
      batch_max = dfl (fun c -> c.batch_max) batch_max;
      batch_delay = dfl (fun c -> c.batch_delay) batch_delay;
    }
end

type Gc_net.Payload.t +=
  | Gcs_app of { klass : Conflict.klass; body : Gc_net.Payload.t }
  | Gcs_snapshot of {
      next_instance : int;
      ab_delivered : (int * int) list;
      gb_stage : int;
      gb_delivered : (int * int) list;
      app : Gc_net.Payload.t option;
    }

let () =
  Gc_net.Payload.register_printer (function
    | Gcs_app { klass; body } ->
        let k =
          match klass with Conflict.Commuting -> "rbcast" | Conflict.Ordered -> "abcast"
        in
        Some (Printf.sprintf "gcs.%s(%s)" k (Gc_net.Payload.to_string body))
    | Gcs_snapshot { next_instance; gb_stage; _ } ->
        Some (Printf.sprintf "gcs.snapshot(inst=%d,stage=%d)" next_instance gb_stage)
    | _ -> None)

let () =
  let module W = Gc_net.Wire in
  let write_id w (a, b) = W.pair w W.varint W.varint (a, b) in
  let read_id r = W.read_pair r W.read_varint W.read_varint in
  Gc_net.Payload.register_codec ~tag:"gcs"
    ~encode:(fun enc w p ->
      match p with
      | Gcs_app { klass; body } ->
          W.u8 w 0;
          W.u8 w (match klass with Conflict.Commuting -> 0 | Conflict.Ordered -> 1);
          enc w body;
          true
      | Gcs_snapshot { next_instance; ab_delivered; gb_stage; gb_delivered; app }
        ->
          W.u8 w 1;
          W.varint w next_instance;
          W.list w write_id ab_delivered;
          W.varint w gb_stage;
          W.list w write_id gb_delivered;
          W.option w enc app;
          true
      | _ -> false)
    ~decode:(fun dec r ->
      match W.read_u8 r with
      | 0 ->
          let klass =
            match W.read_u8 r with
            | 0 -> Conflict.Commuting
            | 1 -> Conflict.Ordered
            | k ->
                Gc_net.Payload.malformed (Printf.sprintf "gcs klass %d" k)
          in
          let body = dec r in
          Gcs_app { klass; body }
      | 1 ->
          let next_instance = W.read_varint r in
          let ab_delivered = W.read_list r read_id in
          let gb_stage = W.read_varint r in
          let gb_delivered = W.read_list r read_id in
          let app = W.read_option r dec in
          Gcs_snapshot { next_instance; ab_delivered; gb_stage; gb_delivered; app }
      | k -> Gc_net.Payload.malformed (Printf.sprintf "gcs constructor %d" k))

(* The conflict relation of Section 3.3: rbcast-class application messages
   commute with each other; everything else (abcast-class application
   messages, membership changes) is ordered against everything.  Declared
   in indexed form — two conflict classes with a 2x2 matrix — so the
   generic-broadcast fast path answers "conflicts with anything pending?"
   from two occupancy counters instead of scanning the pending set. *)
let stack_conflict =
  Conflict.two_class
    ~classify:(function
      | Gcs_app { klass = Conflict.Commuting; _ } -> Conflict.Commuting
      | _ -> Conflict.Ordered)

type t = {
  proc : Process.t;
  fd : Fd.t;
  rc : Rc.t;
  rb : Rb.t;
  ab : Ab.t;
  gb : Gb.t;
  membership : Gm.t;
  monitoring : Mon.t;
  storage : Gc_kernel.Storage.t option;
  mutable subscribers :
    (origin:int -> ordered:bool -> Gc_net.Payload.t -> unit) list;
}

let create runtime ?metrics ~id ~initial ?(config = default_config)
    ?app_state_provider ?app_state_installer ?storage ?(boot_epoch = 0) () =
  let proc = Process.create ?metrics runtime ~id in
  let fd = Fd.create proc ~hb_period:config.hb_period ~peers:initial () in
  let rc =
    Rc.create proc ~epoch:boot_epoch ~rto:config.rto
      ~stuck_after:config.stuck_after ()
  in
  (* Every layer that numbers its own messages gets the boot epoch: a
     restarted process must never reuse a channel generation or a broadcast
     id from a previous incarnation, or peers' per-stream state and dedup
     sets silently swallow its new traffic. *)
  let rb = Rb.create proc ~epoch:boot_epoch rc in
  let ab =
    Ab.create proc ~rc ~rb ~fd ~suspect_timeout:config.consensus_timeout
      ~adaptive:config.consensus_adaptive ~batch_max:config.batch_max
      ~batch_delay:config.batch_delay ~epoch:boot_epoch ~members:initial ()
  in
  (* Default All_members mode: ordered traffic (including view changes)
     rides the consensus-backed cut path and stays live with f < n/2;
     commuting traffic uses the all-ack fast path until a dead member is
     excluded. *)
  (* The durable log hangs off generic broadcast only: gb is the delivery
     surface the application sees (every abcast rides through it), so one
     layer logging means one record per delivered message — giving both
     layers the log would replay everything twice. *)
  let gb =
    Gb.create proc ~rc ~rb ~ab ~conflict:stack_conflict
      ~ack_mode:config.gb_ack_mode ~batch_max:config.batch_max
      ~batch_delay:config.batch_delay ?storage ~epoch:boot_epoch
      ~members:initial ()
  in
  let ab_ref = ref ab and gb_ref = ref gb in
  let state_provider ~have =
    Gcs_snapshot
      {
        next_instance = Ab.next_instance !ab_ref;
        ab_delivered = Ab.delivered_ids !ab_ref;
        gb_stage = Gb.stage !gb_ref;
        gb_delivered = Gb.delivered_ids !gb_ref;
        app = Option.map (fun f -> f ~have) app_state_provider;
      }
  in
  let state_installer snapshot =
    match snapshot with
    | Gcs_snapshot { next_instance; ab_delivered; gb_stage; gb_delivered; app }
      ->
        (* Member lists follow from the view installation that the membership
           layer performs right after installing the snapshot. *)
        Ab.bootstrap !ab_ref ~next_instance ~members:(Ab.members !ab_ref)
          ~delivered:ab_delivered;
        Gb.bootstrap !gb_ref ~stage:gb_stage ~delivered:gb_delivered;
        (match (app, app_state_installer) with
        | Some s, Some f -> f s
        | _ -> ())
    | _ -> ()
  in
  (* Same view delivery (Section 4.4) comes from routing view changes
     through generic broadcast, where they conflict with everything.  The
     ablation routes them through plain atomic broadcast instead: still
     totally ordered, but no longer ordered against the commuting fast path,
     so a commuting message may be delivered in different views at different
     processes. *)
  let transport =
    if config.same_view_delivery then
      {
        Gm.broadcast = (fun payload -> Gb.gbcast gb payload);
        subscribe = (fun f -> Gb.on_deliver gb f);
      }
    else
      {
        Gm.broadcast = (fun payload -> Ab.abcast ab payload);
        subscribe = (fun f -> Ab.on_deliver ab f);
      }
  in
  let membership =
    Gm.create proc ~rc ~transport
      ~state_transfer_delay:config.state_transfer_delay ~state_provider
      ~state_installer ~initial:(View.initial initial) ()
  in
  let monitoring =
    Mon.create proc ~fd ~rc ~membership
      ~exclusion_timeout:config.exclusion_timeout ~policy:config.policy ()
  in
  let t =
    {
      proc;
      fd;
      rc;
      rb;
      ab;
      gb;
      membership;
      monitoring;
      storage;
      subscribers = [];
    }
  in
  (* Keep the lower layers' member sets in lockstep with the view: this runs
     while the view-change message is being delivered, i.e. at the same point
     of the total order at every process. *)
  Gm.on_view membership (fun v ->
      let old_members = Ab.members ab in
      Ab.set_members ab v.View.members;
      Gb.set_members gb v.View.members;
      Fd.set_peers fd v.View.members;
      (* Obligations towards excluded processes lapse (Section 3.3.2). *)
      List.iter
        (fun q -> if not (View.mem v q) then Rc.forget rc q)
        old_members);
  Gb.on_deliver gb (fun ~origin payload ->
      match payload with
      | Gcs_app { klass; body } ->
          let ordered = klass = Conflict.Ordered in
          List.iter (fun f -> f ~origin ~ordered body) (List.rev t.subscribers)
      | _ -> ());
  t

let abcast t ?size body =
  Gb.gbcast t.gb ?size (Gcs_app { klass = Conflict.Ordered; body })

let rbcast t ?size body =
  Gb.gbcast t.gb ?size (Gcs_app { klass = Conflict.Commuting; body })

let on_deliver t f = t.subscribers <- f :: t.subscribers

let join ?force ?have t ~via = Gm.join ?force ?have t.membership ~via
let add t p = Gm.add t.membership p
let remove t q = Gm.remove t.membership q
let join_remove_list t ~adds ~removes = Gm.join_remove_list t.membership ~adds ~removes
let view t = Gm.view t.membership
let joined t = Gm.joined t.membership
let left t = Gm.left t.membership
let on_view t f = Gm.on_view t.membership f

let id t = Process.id t.proc
let crash t = Process.crash t.proc

(* Orderly teardown, distinct from [crash] (which the fuzzer uses to model
   fail-stop): emit whatever the submission/ack batchers are still parking —
   otherwise a message submitted within [batch_delay] of teardown is
   silently dropped — then make the log durable, then stop. *)
let shutdown t =
  Gb.flush t.gb;
  Ab.flush t.ab;
  (* The flushed broadcasts route through our own reliable channel first
     (the uniform loopback hop); deliver that hop now so they are relayed
     to the peers before the process stops existing. *)
  Rc.drain_loopback t.rc;
  (match t.storage with Some s -> Gc_kernel.Storage.sync s | None -> ());
  Process.crash t.proc

let alive t = Process.alive t.proc

let process t = t.proc
let metrics t = Process.metrics t.proc
let failure_detector t = t.fd
let reliable_channel t = t.rc
let reliable_broadcast t = t.rb
let atomic_broadcast t = t.ab
let generic_broadcast t = t.gb
let membership t = t.membership
let monitoring t = t.monitoring
