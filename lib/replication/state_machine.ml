type t = {
  apply : Gc_net.Payload.t -> Gc_net.Payload.t;
  snapshot : unit -> Gc_net.Payload.t;
  restore : Gc_net.Payload.t -> unit;
}

module Bank = struct
  type Gc_net.Payload.t +=
    | Deposit of { account : int; amount : int }
    | Withdraw of { account : int; amount : int }
    | Balance of { account : int }
    | Bank_ok of { balance : int }
    | Bank_insufficient
    | Bank_state of (int * int) list

  let () =
    Gc_net.Payload.register_printer (function
      | Deposit { account; amount } -> Some (Printf.sprintf "deposit(%d,+%d)" account amount)
      | Withdraw { account; amount } -> Some (Printf.sprintf "withdraw(%d,-%d)" account amount)
      | Balance { account } -> Some (Printf.sprintf "balance(%d)" account)
      | Bank_ok { balance } -> Some (Printf.sprintf "ok(%d)" balance)
      | Bank_insufficient -> Some "insufficient"
      | Bank_state l -> Some (Printf.sprintf "bank_state(%d accts)" (List.length l))
      | _ -> None)

  let make () =
    let accounts : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let balance a = Option.value ~default:0 (Hashtbl.find_opt accounts a) in
    let apply = function
      | Deposit { account; amount } ->
          let b = balance account + amount in
          Hashtbl.replace accounts account b;
          Bank_ok { balance = b }
      | Withdraw { account; amount } ->
          let b = balance account in
          if b >= amount then begin
            Hashtbl.replace accounts account (b - amount);
            Bank_ok { balance = b - amount }
          end
          else Bank_insufficient
      | Balance { account } -> Bank_ok { balance = balance account }
      | _ -> invalid_arg "Bank.apply: unknown command"
    in
    let snapshot () =
      Bank_state (Gc_sim.Sorted.bindings ~cmp:Int.compare accounts)
    in
    let restore = function
      | Bank_state l ->
          Hashtbl.reset accounts;
          List.iter (fun (k, v) -> Hashtbl.replace accounts k v) l
      | _ -> invalid_arg "Bank.restore: bad snapshot"
    in
    { apply; snapshot; restore }

  let classify = function
    | Deposit _ -> Gc_gbcast.Conflict.Commuting
    | _ -> Gc_gbcast.Conflict.Ordered
end

module Kv = struct
  type Gc_net.Payload.t +=
    | Put of { key : string; data : string }
    | Get of { key : string }
    | Kv_value of string option
    | Kv_unit
    | Kv_state of (string * string) list

  let () =
    Gc_net.Payload.register_printer (function
      | Put { key; _ } -> Some (Printf.sprintf "put(%s)" key)
      | Get { key } -> Some (Printf.sprintf "get(%s)" key)
      | Kv_value _ -> Some "kv_value"
      | Kv_unit -> Some "kv_unit"
      | Kv_state l -> Some (Printf.sprintf "kv_state(%d keys)" (List.length l))
      | _ -> None)

  let make () =
    let store : (string, string) Hashtbl.t = Hashtbl.create 16 in
    let apply = function
      | Put { key; data } ->
          Hashtbl.replace store key data;
          Kv_unit
      | Get { key } -> Kv_value (Hashtbl.find_opt store key)
      | _ -> invalid_arg "Kv.apply: unknown command"
    in
    let snapshot () =
      Kv_state (Gc_sim.Sorted.bindings ~cmp:String.compare store)
    in
    let restore = function
      | Kv_state l ->
          Hashtbl.reset store;
          List.iter (fun (k, v) -> Hashtbl.replace store k v) l
      | _ -> invalid_arg "Kv.restore: bad snapshot"
    in
    { apply; snapshot; restore }

  let conflict a b =
    match (a, b) with
    | Put { key = k; _ }, Put { key = k'; _ } -> k = k'
    | Put { key = k; _ }, Get { key = k' } | Get { key = k }, Put { key = k'; _ }
      ->
        k = k'
    | Get _, Get _ -> false
    | _, _ -> true
end

module Counter = struct
  type Gc_net.Payload.t +=
    | Incr of int
    | Read
    | Counter_value of int

  let () =
    Gc_net.Payload.register_printer (function
      | Incr k -> Some (Printf.sprintf "incr(%d)" k)
      | Read -> Some "read"
      | Counter_value v -> Some (Printf.sprintf "value(%d)" v)
      | _ -> None)

  let make () =
    let value = ref 0 in
    let apply = function
      | Incr k ->
          value := !value + k;
          Counter_value !value
      | Read -> Counter_value !value
      | _ -> invalid_arg "Counter.apply: unknown command"
    in
    let snapshot () = Counter_value !value in
    let restore = function
      | Counter_value v -> value := v
      | _ -> invalid_arg "Counter.restore: bad snapshot"
    in
    { apply; snapshot; restore }

  let classify = function
    | Incr _ -> Gc_gbcast.Conflict.Commuting
    | _ -> Gc_gbcast.Conflict.Ordered
end
