(** Passive replication over the traditional GM-VS stack — the baseline the
    paper's Section 3.2.3 improves on.

    The standard solution [20]: the primary is the head of the current view
    and propagates updates with view-synchronous broadcast; replacing a
    suspected primary requires a {e view change that excludes it}.  The
    contrast with {!Passive}:

    - failover is gated by the traditional stack's single (large) detection
      timeout and by the blocking flush;
    - a wrongly suspected primary is excluded and must rejoin with a state
      transfer, instead of quietly becoming a backup. *)

type t

val create :
  Gc_kernel.Runtime.t ->
  id:int ->
  initial:int list ->
  ?config:Gc_traditional.Traditional_stack.config ->
  make_sm:(unit -> State_machine.t) ->
  unit ->
  t

val stack : t -> Gc_traditional.Traditional_stack.t
val primary : t -> int option
val updates_applied : t -> int
val crash : t -> unit

val snapshot : t -> Gc_net.Payload.t
(** Current state-machine snapshot (tests: replica convergence checks). *)
