(** Passive replication (primary-backup) over generic broadcast — the
    paper's Section 3.2.3 and Figure 8, verbatim:

    - the primary executes client requests and propagates {e update}
      messages with the [rbcast] (commuting) invocation — updates commute
      with each other, so the fast path carries them without consensus;
    - when a backup's (aggressive) failure detector suspects the primary, it
      broadcasts a {e primary-change} message with the [abcast] (ordered)
      invocation.  The conflict relation orders every update against every
      primary-change, so either an in-flight update is delivered before the
      change (it counts) or after (it is discarded, and the client retries
      with the new primary) — the two outcomes of Figure 8, consistent at
      every replica;
    - a primary change does {e not} exclude the old primary: the replica list
      is rotated (footnote 10) and the suspected process stays in the group.
      Actual exclusion is the monitoring component's independent, much
      slower decision.

    Updates carry an (epoch, sequence) stamp; backups apply them in sequence
    order within the epoch and discard stamps from older epochs — the "must
    be ignored" rule of the paper, made concrete. *)

type t

val create :
  Gc_kernel.Runtime.t ->
  id:int ->
  initial:int list ->
  ?config:Gcs.Gcs_stack.config ->
  ?primary_suspect_timeout:float ->
  make_sm:(unit -> State_machine.t) ->
  unit ->
  t
(** [primary_suspect_timeout] (default 250 ms) is the backup-side timeout for
    suspecting the primary — aggressive on purpose: a wrong suspicion only
    costs one rotation, never an exclusion. *)

val stack : t -> Gcs.Gcs_stack.t
val primary : t -> int option
val epoch : t -> int
val primary_changes : t -> int
val updates_applied : t -> int
val updates_discarded : t -> int
(** Updates dropped because they were ordered after a primary change
    (outcome 2 of Figure 8). *)

val crash : t -> unit

val snapshot : t -> Gc_net.Payload.t
(** Current state-machine snapshot (tests: replica convergence checks). *)
