module Stack = Gcs.Gcs_stack
module Rc = Gc_rchannel.Reliable_channel
module Conflict = Gc_gbcast.Conflict

type Gc_net.Payload.t +=
  | Ag_cmd of { contact : int; cid : int; rid : int; cmd : Gc_net.Payload.t }
  | Ag_state of {
      app : Gc_net.Payload.t;
      completed : ((int * int) * Gc_net.Payload.t) list;
    }

let () =
  Gc_net.Payload.register_printer (function
    | Ag_cmd { cid; rid; _ } -> Some (Printf.sprintf "activegb.cmd#%d.%d" cid rid)
    | Ag_state _ -> Some "activegb.state"
    | _ -> None)

type t = {
  stack : Stack.t;
  sm : State_machine.t;
  classify : Gc_net.Payload.t -> Conflict.klass;
  completed : (int * int, Gc_net.Payload.t) Hashtbl.t;
  mutable applied : int;
}

let stack t = t.stack
let commands_applied t = t.applied
let crash t = Stack.crash t.stack
let snapshot t = t.sm.State_machine.snapshot ()

let reply t ~cid ~rid result =
  Rc.send (Stack.reliable_channel t.stack) ~dst:cid (Rpc.Rep { rid; result })

let create runtime ~id ~initial ?config ~classify ~make_sm () =
  let sm = make_sm () in
  let completed = Hashtbl.create 64 in
  let provider () =
    Ag_state
      {
        app = sm.State_machine.snapshot ();
        completed = Gc_sim.Sorted.bindings completed;
      }
  in
  let installer = function
    | Ag_state { app; completed = l } ->
        sm.State_machine.restore app;
        List.iter (fun (k, v) -> Hashtbl.replace completed k v) l
    | _ -> ()
  in
  let stack =
    Stack.create runtime ~id ~initial ?config ~app_state_provider:(fun ~have:_ -> provider ())
      ~app_state_installer:installer ()
  in
  let t = { stack; sm; classify; completed; applied = 0 } in
  Rc.on_deliver (Stack.reliable_channel stack) (fun ~src:_ payload ->
      match payload with
      | Rpc.Req { cid; rid; cmd } -> (
          match Hashtbl.find_opt completed (cid, rid) with
          | Some result -> reply t ~cid ~rid result
          | None ->
              let wrapped = Ag_cmd { contact = id; cid; rid; cmd } in
              (* The command's class decides the broadcast primitive — the
                 paper's deposit/withdrawal distinction. *)
              (match t.classify cmd with
              | Conflict.Commuting -> Stack.rbcast stack wrapped
              | Conflict.Ordered -> Stack.abcast stack wrapped))
      | _ -> ());
  Stack.on_deliver stack (fun ~origin:_ ~ordered:_ payload ->
      match payload with
      | Ag_cmd { contact; cid; rid; cmd } ->
          let result =
            match Hashtbl.find_opt completed (cid, rid) with
            | Some r -> r
            | None ->
                let r = t.sm.State_machine.apply cmd in
                Hashtbl.replace completed (cid, rid) r;
                t.applied <- t.applied + 1;
                r
          in
          if contact = id then reply t ~cid ~rid result
      | _ -> ());
  t
