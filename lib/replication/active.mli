(** Active replication (state-machine approach [33]) over the new
    architecture's atomic broadcast — Section 3.2.2 of the paper.

    Every replica runs the deterministic state machine; client commands are
    atomically broadcast and applied by all replicas in the same total order.
    The contacted replica replies.  Retries are made safe by an at-most-once
    table keyed by (client, request id), which also serves cached replies
    when a client retries through a different replica after a crash. *)

type t

val create :
  Gc_kernel.Runtime.t ->
  id:int ->
  initial:int list ->
  ?config:Gcs.Gcs_stack.config ->
  make_sm:(unit -> State_machine.t) ->
  unit ->
  t
(** Build the replica: a full {!Gcs.Gcs_stack} plus the state machine.
    Joiner state transfer carries the machine snapshot and the at-most-once
    table. *)

val stack : t -> Gcs.Gcs_stack.t
val commands_applied : t -> int
val crash : t -> unit

val snapshot : t -> Gc_net.Payload.t
(** Current state-machine snapshot (tests: replica convergence checks). *)
