(** State-machine replication over {e generic} broadcast — the paper's
    Section 4.2 bank-account scenario as a replication scheme.

    Like {!Active}, every replica executes every command; unlike it, commands
    are broadcast through the generic-broadcast classes: commands classified
    [Commuting] (e.g. deposits) take the consensus-free fast path, commands
    classified [Ordered] (e.g. withdrawals) are totally ordered against
    everything.  Replicas may apply commuting commands in different orders —
    which is exactly why they must commute — and still converge. *)

type t

val create :
  Gc_kernel.Runtime.t ->
  id:int ->
  initial:int list ->
  ?config:Gcs.Gcs_stack.config ->
  classify:(Gc_net.Payload.t -> Gc_gbcast.Conflict.klass) ->
  make_sm:(unit -> State_machine.t) ->
  unit ->
  t
(** [classify] maps each {e command} to its broadcast class (e.g.
    {!State_machine.Bank.classify}). *)

val stack : t -> Gcs.Gcs_stack.t
val commands_applied : t -> int
val crash : t -> unit

val snapshot : t -> Gc_net.Payload.t
(** Current state-machine snapshot (tests: replica convergence checks). *)
