module Stack = Gcs.Gcs_stack
module Rc = Gc_rchannel.Reliable_channel
module Fd = Gc_fd.Failure_detector
module View = Gc_membership.View

type Gc_net.Payload.t +=
  | Pa_update of {
      epoch : int;
      useq : int;
      cid : int;
      rid : int;
      cmd : Gc_net.Payload.t;
    }
  | Pa_change of { epoch : int }
  | Pa_state of {
      app : Gc_net.Payload.t;
      completed : ((int * int) * Gc_net.Payload.t) list;
      rlist : int list;
      epoch : int;
      expected : int;
    }

let () =
  Gc_net.Payload.register_printer (function
    | Pa_update { epoch; useq; _ } ->
        Some (Printf.sprintf "passive.update@%d.%d" epoch useq)
    | Pa_change { epoch } -> Some (Printf.sprintf "passive.change@%d" epoch)
    | Pa_state _ -> Some "passive.state"
    | _ -> None)

type t = {
  stack : Stack.t;
  sm : State_machine.t;
  id : int;
  completed : (int * int, Gc_net.Payload.t) Hashtbl.t;
  mutable rlist : int list; (* rotation order; head = primary *)
  mutable epoch : int;
  mutable next_useq : int; (* primary side *)
  mutable expected : int; (* backup side: next update to apply *)
  buffer : (int, int * Gc_net.Payload.t) Hashtbl.t; (* useq -> origin, update *)
  in_flight : (int * int, unit) Hashtbl.t;
  mutable change_requested : bool; (* one change proposal per epoch *)
  mutable n_changes : int;
  mutable n_applied : int;
  mutable n_discarded : int;
}

let stack t = t.stack
let primary t = match t.rlist with [] -> None | p :: _ -> Some p
let epoch t = t.epoch
let primary_changes t = t.n_changes
let updates_applied t = t.n_applied
let updates_discarded t = t.n_discarded
let crash t = Stack.crash t.stack

let reply t ~cid ~rid result =
  Rc.send (Stack.reliable_channel t.stack) ~dst:cid (Rpc.Rep { rid; result })

let apply_update t ~origin ~cid ~rid ~cmd =
  Hashtbl.remove t.in_flight (cid, rid);
  let result =
    match Hashtbl.find_opt t.completed (cid, rid) with
    | Some r -> r
    | None ->
        let r = t.sm.State_machine.apply cmd in
        Hashtbl.replace t.completed (cid, rid) r;
        t.n_applied <- t.n_applied + 1;
        r
  in
  (* The issuing primary answers the client once its own update has been
     delivered — i.e. once its position relative to any concurrent
     primary-change is settled (Figure 8). *)
  if origin = t.id then reply t ~cid ~rid result

let rec drain t =
  match Hashtbl.find_opt t.buffer t.expected with
  | None -> ()
  | Some (origin, Pa_update { cid; rid; cmd; _ }) ->
      Hashtbl.remove t.buffer t.expected;
      t.expected <- t.expected + 1;
      apply_update t ~origin ~cid ~rid ~cmd;
      drain t
  | Some _ -> ()

let handle_update t ~origin u =
  match u with
  | Pa_update { epoch; useq; cid; rid; cmd } ->
      if epoch = t.epoch then begin
        if useq = t.expected then begin
          t.expected <- t.expected + 1;
          apply_update t ~origin ~cid ~rid ~cmd;
          drain t
        end
        else if useq > t.expected then Hashtbl.replace t.buffer useq (origin, u)
      end
      else begin
        (* Ordered after a primary change: the paper's outcome 2 — the old
           primary's processing is void; the client will retry. *)
        t.n_discarded <- t.n_discarded + 1;
        Gc_kernel.Process.incr (Stack.process t.stack) "passive.discards";
        if Gc_kernel.Process.traced (Stack.process t.stack) then
          Gc_kernel.Process.event (Stack.process t.stack) ~component:"passive"
            ~kind:(Gc_obs.Event.Custom "discard")
            ~attrs:
              [ ("epoch", string_of_int epoch); ("useq", string_of_int useq) ]
            ()
      end
  | _ -> ()

let handle_change t e =
  if e = t.epoch then begin
    t.epoch <- t.epoch + 1;
    t.rlist <- (match t.rlist with [] -> [] | p :: rest -> rest @ [ p ]);
    t.expected <- 1;
    t.next_useq <- 1;
    Hashtbl.reset t.buffer;
    Hashtbl.reset t.in_flight;
    t.change_requested <- false;
    t.n_changes <- t.n_changes + 1;
    Gc_kernel.Process.incr (Stack.process t.stack) "passive.primary_changes";
    if Gc_kernel.Process.traced (Stack.process t.stack) then
      Gc_kernel.Process.event (Stack.process t.stack) ~component:"passive"
        ~kind:(Gc_obs.Event.Custom "primary_change")
        ~attrs:
          [
            ("epoch", string_of_int t.epoch);
            ( "primary",
              match primary t with Some p -> string_of_int p | None -> "-" );
          ]
        ()
  end

let handle_request t ~cid ~rid ~cmd =
  match Hashtbl.find_opt t.completed (cid, rid) with
  | Some result -> reply t ~cid ~rid result
  | None -> (
      match primary t with
      | Some p when p = t.id ->
          if not (Hashtbl.mem t.in_flight (cid, rid)) then begin
            Hashtbl.replace t.in_flight (cid, rid) ();
            let useq = t.next_useq in
            t.next_useq <- useq + 1;
            Stack.rbcast t.stack (Pa_update { epoch = t.epoch; useq; cid; rid; cmd })
          end
      | Some p ->
          Rc.send (Stack.reliable_channel t.stack) ~dst:cid
            (Rpc.Redirect { rid; primary = p })
      | None -> ())

let create runtime ~id ~initial ?config ?(primary_suspect_timeout = 250.0)
    ~make_sm () =
  let sm = make_sm () in
  let completed = Hashtbl.create 64 in
  let t_ref = ref None in
  let provider () =
    match !t_ref with
    | Some t ->
        Pa_state
          {
            app = sm.State_machine.snapshot ();
            completed = Gc_sim.Sorted.bindings completed;
            rlist = t.rlist;
            epoch = t.epoch;
            expected = t.expected;
          }
    | None -> Pa_state { app = sm.State_machine.snapshot (); completed = [];
                         rlist = []; epoch = 0; expected = 1 }
  in
  let installer payload =
    match (payload, !t_ref) with
    | Pa_state { app; completed = l; rlist; epoch; expected }, Some t ->
        sm.State_machine.restore app;
        List.iter (fun (k, v) -> Hashtbl.replace completed k v) l;
        t.rlist <- (rlist @ [ id ]);
        t.epoch <- epoch;
        t.expected <- expected
    | _ -> ()
  in
  let stack =
    Stack.create runtime ~id ~initial ?config ~app_state_provider:(fun ~have:_ -> provider ())
      ~app_state_installer:installer ()
  in
  let t =
    {
      stack;
      sm;
      id;
      completed;
      rlist = initial;
      epoch = 0;
      next_useq = 1;
      expected = 1;
      buffer = Hashtbl.create 16;
      in_flight = Hashtbl.create 16;
      change_requested = false;
      n_changes = 0;
      n_applied = 0;
      n_discarded = 0;
    }
  in
  t_ref := Some t;
  Rc.on_deliver (Stack.reliable_channel stack) (fun ~src:_ payload ->
      match payload with
      | Rpc.Req { cid; rid; cmd } -> handle_request t ~cid ~rid ~cmd
      | _ -> ());
  Stack.on_deliver stack (fun ~origin ~ordered:_ payload ->
      match payload with
      | Pa_update _ -> handle_update t ~origin payload
      | Pa_change { epoch } -> handle_change t epoch
      | _ -> ());
  (* Membership evolution: excluded members leave the rotation; joiners are
     appended. *)
  Stack.on_view stack (fun v ->
      let kept = List.filter (fun q -> View.mem v q) t.rlist in
      let fresh =
        List.filter (fun q -> not (List.mem q kept)) v.View.members
      in
      t.rlist <- kept @ fresh);
  (* Aggressive primary suspicion: a backup asks for rotation, never for
     exclusion. *)
  ignore
    (Fd.monitor (Stack.failure_detector stack) ~label:"passive-primary"
       ~timeout:primary_suspect_timeout
       ~on_suspect:(fun q ->
         if
           Some q = primary t && q <> id
           && List.mem id t.rlist
           && not t.change_requested
         then begin
           t.change_requested <- true;
           Stack.abcast t.stack (Pa_change { epoch = t.epoch })
         end)
       ());
  t

let snapshot t = t.sm.State_machine.snapshot ()
