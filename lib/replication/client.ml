module Process = Gc_kernel.Process
module Rc = Gc_rchannel.Reliable_channel

type pending = {
  cmd : Gc_net.Payload.t;
  first_sent : float;
  on_reply : Gc_net.Payload.t -> latency:float -> unit;
  mutable attempt : int;
}

type t = {
  proc : Process.t;
  rc : Rc.t;
  replicas : int array;
  timeout : float;
  mutable target : int; (* index into replicas *)
  mutable next_rid : int;
  pending : (int, pending) Hashtbl.t;
  mutable n_retries : int;
}

let process t = t.proc
let retries t = t.n_retries
let outstanding t = Hashtbl.length t.pending

let target_replica t = t.replicas.(t.target mod Array.length t.replicas)

let rec send_attempt t rid =
  match Hashtbl.find_opt t.pending rid with
  | None -> ()
  | Some p ->
      let dst = target_replica t in
      p.attempt <- p.attempt + 1;
      Rc.send t.rc ~dst (Rpc.Req { cid = Process.id t.proc; rid; cmd = p.cmd });
      let attempt_no = p.attempt in
      ignore
        (Process.timer t.proc ~delay:t.timeout (fun () ->
             match Hashtbl.find_opt t.pending rid with
             | Some p' when p'.attempt = attempt_no ->
                 (* No progress since this attempt: rotate and retry. *)
                 t.n_retries <- t.n_retries + 1;
                 t.target <- t.target + 1;
                 send_attempt t rid
             | _ -> ()))

let retarget t primary =
  let n = Array.length t.replicas in
  let rec find i = if i >= n then t.target else if t.replicas.(i) = primary then i else find (i + 1) in
  t.target <- find 0

let create runtime ~id ~replicas ?(timeout = 500.0) () =
  let proc = Process.create runtime ~id in
  let rc = Rc.create proc () in
  let t =
    {
      proc;
      rc;
      replicas = Array.of_list replicas;
      timeout;
      target = 0;
      next_rid = 0;
      pending = Hashtbl.create 8;
      n_retries = 0;
    }
  in
  Rc.on_deliver rc (fun ~src:_ payload ->
      match payload with
      | Rpc.Rep { rid; result } -> (
          match Hashtbl.find_opt t.pending rid with
          | Some p ->
              Hashtbl.remove t.pending rid;
              p.on_reply result ~latency:(Process.now proc -. p.first_sent)
          | None -> ())
      | Rpc.Redirect { rid; primary } -> (
          match Hashtbl.find_opt t.pending rid with
          | Some _ ->
              retarget t primary;
              send_attempt t rid
          | None -> ())
      | _ -> ());
  t

let request t ~cmd ~on_reply =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  Hashtbl.replace t.pending rid
    { cmd; first_sent = Process.now t.proc; on_reply; attempt = 0 };
  send_attempt t rid
