(** Simulated client of a replicated service.

    Clients are plain processes outside the replica group.  A client sends
    each request to one replica and waits; on timeout it rotates to the next
    replica and resends {e with the same request id} (the replicas'
    at-most-once tables make retries safe); a [Redirect] reply retargets it
    at the current primary (passive replication).  Latency is measured from
    the {e first} send, so failovers show up in the client-perceived numbers
    — the responsiveness the paper's Section 4.3 is about. *)

type t

val create :
  Gc_kernel.Runtime.t ->
  id:int ->
  replicas:int list ->
  ?timeout:float ->
  unit ->
  t
(** [timeout] (default 500 ms) is the per-attempt wait before retrying on the
    next replica. *)

val request :
  t ->
  cmd:Gc_net.Payload.t ->
  on_reply:(Gc_net.Payload.t -> latency:float -> unit) ->
  unit
(** Issue [cmd]; [on_reply] fires exactly once, with the end-to-end latency
    in virtual ms. *)

val retries : t -> int
(** Total timeout-driven resends so far. *)

val outstanding : t -> int
(** Requests not yet answered. *)

val process : t -> Gc_kernel.Process.t
