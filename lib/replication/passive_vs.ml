module Tr = Gc_traditional.Traditional_stack
module Rc = Gc_rchannel.Reliable_channel
module View = Gc_membership.View

type Gc_net.Payload.t +=
  | Pv_update of { cid : int; rid : int; cmd : Gc_net.Payload.t }
  | Pv_state of {
      app : Gc_net.Payload.t;
      completed : ((int * int) * Gc_net.Payload.t) list;
    }

let () =
  Gc_net.Payload.register_printer (function
    | Pv_update { cid; rid; _ } -> Some (Printf.sprintf "pv.update#%d.%d" cid rid)
    | Pv_state _ -> Some "pv.state"
    | _ -> None)

type t = {
  stack : Tr.t;
  sm : State_machine.t;
  id : int;
  completed : (int * int, Gc_net.Payload.t) Hashtbl.t;
  in_flight : (int * int, unit) Hashtbl.t;
  mutable n_applied : int;
}

let stack t = t.stack
let primary t = View.primary (Tr.view t.stack)
let updates_applied t = t.n_applied
let crash t = Tr.crash t.stack

let client_rc t = Tr.reliable_channel t.stack

let reply t ~cid ~rid result =
  Rc.send (client_rc t) ~dst:cid (Rpc.Rep { rid; result })

let handle_request t ~cid ~rid ~cmd =
  match Hashtbl.find_opt t.completed (cid, rid) with
  | Some result -> reply t ~cid ~rid result
  | None -> (
      match primary t with
      | Some p when p = t.id && Tr.is_member t.stack ->
          if not (Hashtbl.mem t.in_flight (cid, rid)) then begin
            Hashtbl.replace t.in_flight (cid, rid) ();
            Tr.vscast t.stack (Pv_update { cid; rid; cmd })
          end
      | Some p -> Rc.send (client_rc t) ~dst:cid (Rpc.Redirect { rid; primary = p })
      | None -> ())

let handle_update t ~cid ~rid ~cmd ~mine =
  Hashtbl.remove t.in_flight (cid, rid);
  let result =
    match Hashtbl.find_opt t.completed (cid, rid) with
    | Some r -> r
    | None ->
        let r = t.sm.State_machine.apply cmd in
        Hashtbl.replace t.completed (cid, rid) r;
        t.n_applied <- t.n_applied + 1;
        r
  in
  if mine then reply t ~cid ~rid result

let create runtime ~id ~initial ?config ~make_sm () =
  let sm = make_sm () in
  let completed = Hashtbl.create 64 in
  let provider () =
    Pv_state
      {
        app = sm.State_machine.snapshot ();
        completed = Gc_sim.Sorted.bindings completed;
      }
  in
  let installer = function
    | Pv_state { app; completed = l } ->
        sm.State_machine.restore app;
        List.iter (fun (k, v) -> Hashtbl.replace completed k v) l
    | _ -> ()
  in
  let stack =
    Tr.create runtime ~id ~initial ?config ~app_state_provider:provider
      ~app_state_installer:installer ()
  in
  let t = { stack; sm; id; completed; in_flight = Hashtbl.create 16; n_applied = 0 } in
  Rc.on_deliver (Tr.reliable_channel stack) (fun ~src:_ payload ->
      match payload with
      | Rpc.Req { cid; rid; cmd } -> handle_request t ~cid ~rid ~cmd
      | _ -> ());
  Tr.on_deliver stack (fun ~origin ~ordered:_ payload ->
      match payload with
      | Pv_update { cid; rid; cmd } ->
          handle_update t ~cid ~rid ~cmd ~mine:(origin = id)
      | _ -> ());
  t

let snapshot t = t.sm.State_machine.snapshot ()
