(* Rule E2: every metric name the code records or reads must appear in
   [Catalog.metrics] with the right kind, and the catalog itself must
   match the DESIGN.md section 8 table.

   The Metrics store is stringly typed: [Metrics.incr m "net.frames_in"]
   creates the counter on first use, so a typo mints a fresh, never-read
   metric and the dashboard silently flatlines.  E2 closes that hole
   statically: names are collected from the typed tree at every recorder
   call site (descending into if/match arms, so both branches of
   [if ordered then "..ab.." else "..rb.."] are seen), looked up in the
   catalog, and kind-checked (observing a counter is the same bug as a
   typo).

   Local forwarders are discovered, not listed: a definition that passes
   one of its own parameters into a recorder's string slot (runtime_unix's
   [bump], fconn's [count]) becomes a recorder of the same kind, and its
   call sites are checked instead. *)

module D = Diagnostic

type site = {
  s_source : string;
  s_line : int;
  s_kind : Catalog.metric_kind;
  s_names : (string * int) list;  (* literal names with their lines *)
  s_checkable : bool;  (* false: no literal and not a forwarded param *)
}

let is_string_type (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.name p = "string"
  | _ -> false

(* One scan of a unit: recorder call sites, plus the set of definitions
   that forward a parameter into a recorder name slot. *)
let scan_unit ~known (u : Typed_loader.unit_info) =
  let r =
    Typed_loader.build_resolver ~canon:u.Typed_loader.canon
      u.Typed_loader.structure
  in
  let sites = ref [] in
  let forwarders = ref [] in
  (* stamps of value parameters of the current top-level definition *)
  let params : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let current = ref None in
  (* module path of the definition being scanned, for resolving bare
     calls to unit-local forwarders ([bump t "net.reconnects"]) *)
  let cur_prefix = ref u.Typed_loader.canon in
  let open Tast_iterator in
  let record_params (c : _ Typedtree.case) =
    let rec pat_vars : type k. k Typedtree.general_pattern -> unit =
     fun p ->
      match p.Typedtree.pat_desc with
      | Typedtree.Tpat_var (id, _) ->
          Hashtbl.replace params (Ident.unique_name id) ()
      | Typedtree.Tpat_alias (p', id, _) ->
          Hashtbl.replace params (Ident.unique_name id) ();
          pat_vars p'
      | _ -> ()
    in
    pat_vars c.Typedtree.c_lhs
  in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_function { cases; _ } -> List.iter record_params cases
    | Typedtree.Texp_apply (f, args) -> (
        let head =
          match Typed_loader.head_path f with
          | Some (Path.Pident id)
            when not (Hashtbl.mem params (Ident.unique_name id)) ->
              (* bare call: a definition of this unit (module-local
                 forwarders are called unqualified) *)
              Some (!cur_prefix ^ "." ^ Ident.name id)
          | Some p -> Some (Typed_loader.canon_of_path r p)
          | None -> None
        in
        match head with
        | Some h -> (
            match List.assoc_opt h known with
            | Some kind ->
                List.iter
                  (fun (_, a) ->
                    match a with
                    | Some (arg : Typedtree.expression)
                      when is_string_type arg.Typedtree.exp_type -> (
                        let lits =
                          List.map
                            (fun (s, loc) -> (s, Typed_loader.line_of loc))
                            (Typed_loader.string_literals arg)
                        in
                        match (lits, arg.Typedtree.exp_desc) with
                        | [], Typedtree.Texp_ident (Path.Pident id, _, _)
                          when Hashtbl.mem params (Ident.unique_name id) ->
                            (* a forwarded parameter: the enclosing def
                               becomes a recorder, its callers are
                               checked instead *)
                            Option.iter
                              (fun name -> forwarders := (name, kind) :: !forwarders)
                              !current
                        | [], _ ->
                            sites :=
                              {
                                s_source = u.Typed_loader.source;
                                s_line =
                                  Typed_loader.line_of e.Typedtree.exp_loc;
                                s_kind = kind;
                                s_names = [];
                                s_checkable = false;
                              }
                              :: !sites
                        | lits, _ ->
                            sites :=
                              {
                                s_source = u.Typed_loader.source;
                                s_line =
                                  Typed_loader.line_of e.Typedtree.exp_loc;
                                s_kind = kind;
                                s_names = lits;
                                s_checkable = true;
                              }
                              :: !sites)
                    | _ -> ())
                  args
            | None -> ())
        | None -> ())
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  let rec walk_items prefix (items : Typedtree.structure_item list) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                Hashtbl.reset params;
                (current :=
                   match vb.Typedtree.vb_pat.Typedtree.pat_desc with
                   | Typedtree.Tpat_var (id, _) ->
                       Some (prefix ^ "." ^ Ident.name id)
                   | _ -> None);
                cur_prefix := prefix;
                it.expr it vb.Typedtree.vb_expr)
              vbs
        | Typedtree.Tstr_eval (e, _) ->
            Hashtbl.reset params;
            current := None;
            cur_prefix := prefix;
            it.expr it e
        | Typedtree.Tstr_module
            {
              Typedtree.mb_id = Some id;
              mb_expr =
                { Typedtree.mod_desc = Typedtree.Tmod_structure str; _ };
              _;
            } ->
            walk_items (prefix ^ "." ^ Ident.name id) str.Typedtree.str_items
        | _ -> ())
      items
  in
  walk_items u.Typed_loader.canon u.Typed_loader.structure.Typedtree.str_items;
  (!sites, !forwarders)

let check (units : Typed_loader.unit_info list) =
  (* forwarder discovery to a fixpoint (bounded: forwarding chains in
     this repo are one hop, the bound is just a backstop) *)
  let known = ref Catalog.metric_recorders in
  let continue_ = ref true in
  let rounds = ref 0 in
  let all_sites = ref [] in
  while !continue_ && !rounds < 4 do
    incr rounds;
    continue_ := false;
    all_sites := [];
    List.iter
      (fun u ->
        let sites, forwarders = scan_unit ~known:!known u in
        let sites =
          if Catalog.e2_exempt u.Typed_loader.source then [] else sites
        in
        all_sites := sites @ !all_sites;
        List.iter
          (fun (name, kind) ->
            if not (List.mem_assoc name !known) then (
              known := (name, kind) :: !known;
              continue_ := true))
          forwarders)
      units
  done;
  let ds = ref [] in
  let add ~file ~line ~suggestion msg =
    ds := D.v ~file ~line ~rule:"E2" ~suggestion msg :: !ds
  in
  List.iter
    (fun s ->
      if not s.s_checkable then
        add ~file:s.s_source ~line:s.s_line
          ~suggestion:
            "pass the metric name as a string literal (or through a direct \
             forwarding parameter)"
          "metric name is not statically checkable"
      else
        List.iter
          (fun (name, line) ->
            match List.assoc_opt name Catalog.metrics with
            | None ->
                add ~file:s.s_source ~line
                  ~suggestion:"add it to Catalog.metrics and DESIGN.md §8"
                  (Printf.sprintf "metric %S is not in the catalog" name)
            | Some k when k <> s.s_kind ->
                add ~file:s.s_source ~line
                  ~suggestion:"fix the call or the catalog entry"
                  (Printf.sprintf
                     "metric %S is a %s in the catalog but used as a %s here"
                     name
                     (Catalog.metric_kind_name k)
                     (Catalog.metric_kind_name s.s_kind))
            | Some _ -> ())
          s.s_names)
    (List.sort compare !all_sites);
  List.rev !ds

(* ---------- DESIGN.md drift check (repo mode only) ---------- *)

(* Parse the section 8 table: rows of the form
   [| `name` | layer | kind | ...].  Returns (name, kind) pairs;
   unknown kind words are reported verbatim. *)
let parse_design_table source =
  let rows = ref [] in
  (* only the section 8 table: rows outside "## 8" .. next "## " are other
     tables (ordering guarantees, fault plans) that happen to use the same
     markdown shape *)
  let in_section = ref false in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line >= 4 && String.sub line 0 3 = "## " then
        in_section := String.length line >= 5 && String.sub line 3 2 = "8.";
      if !in_section && String.length line > 1 && line.[0] = '|' then
        match String.split_on_char '|' line with
        | _ :: name_cell :: _layer :: kind_cell :: _ ->
            let name = String.trim name_cell in
            let kind = String.trim kind_cell in
            if
              String.length name > 2
              && name.[0] = '`'
              && name.[String.length name - 1] = '`'
            then
              rows :=
                (String.sub name 1 (String.length name - 2), kind) :: !rows
        | _ -> ())
    (String.split_on_char '\n' source);
  List.rev !rows

let kind_of_word = function
  | "counter" -> Some Catalog.MCounter
  | "gauge" -> Some Catalog.MGauge
  | "histogram" -> Some Catalog.MHist
  | _ -> None

let check_design ~design_path source =
  let rows = parse_design_table source in
  let ds = ref [] in
  let add msg suggestion =
    ds := D.v ~file:design_path ~line:1 ~rule:"E2" ~suggestion msg :: !ds
  in
  (* catalog -> table *)
  List.iter
    (fun (name, kind) ->
      match List.assoc_opt name rows with
      | None ->
          add
            (Printf.sprintf
               "metric %S is in Catalog.metrics but missing from the \
                DESIGN.md §8 table"
               name)
            "add the table row"
      | Some word -> (
          match kind_of_word word with
          | Some k when k = kind -> ()
          | _ ->
              add
                (Printf.sprintf
                   "metric %S is a %s in Catalog.metrics but %S in the \
                    DESIGN.md §8 table"
                   name
                   (Catalog.metric_kind_name kind)
                   word)
                "make the kinds agree"))
    Catalog.metrics;
  (* table -> catalog *)
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name Catalog.metrics) then
        add
          (Printf.sprintf
             "metric %S is in the DESIGN.md §8 table but missing from \
              Catalog.metrics"
             name)
          "add the catalog entry")
    rows;
  List.rev !ds
