(* The typedtree access layer: find and read the .cmt files dune wrote
   for lib/, bin/ and bench/, and give the typed rules (callgraph, W2/W3,
   B1/B2, E2) a uniform view of each compilation unit.

   Where the parsetree rules see syntax, a .cmt holds the *typed* tree:
   every identifier carries its resolved [Path.t], so `W.u8`,
   `Wire.u8` and `Gc_net.Wire.u8` all name the same function no matter
   how the file aliased its modules.  That resolution is what makes the
   cross-module rules sound.

   Layout facts this module encodes:
   - libraries:    <dir>/.<libname>.objs/byte/<Lib>__<Module>.cmt
   - executables:  <dir>/.<exe>.eobjs/byte/Dune__exe__<Module>.cmt
   - wrapper/alias units compile from generated .ml-gen sources; they
     carry no user code and are skipped.
   - depending on where the driver runs, the build tree is either
     <root>/_build/default (repo checkout) or <root> itself (tests run
     inside _build/default already).

   .cmt files are a build artifact: the typed pass lints what was last
   built.  Run `dune build @all` first; the driver reports rule T0 when
   it finds no units at all rather than silently passing. *)

type unit_info = {
  unit_name : string;  (* compilation unit, e.g. "Gc_runtime_unix__Fconn" *)
  canon : string;      (* canonical module prefix, e.g. "Gc_runtime_unix.Fconn" *)
  source : string;     (* repo-relative source path, e.g. "lib/runtime_unix/fconn.ml" *)
  structure : Typedtree.structure;
}

let list_dir path =
  if Sys.file_exists path && Sys.is_directory path then
    List.sort String.compare (Array.to_list (Sys.readdir path))
  else []

(* "Gc_runtime_unix__Fconn" -> "Gc_runtime_unix.Fconn";
   "Dune__exe__Gcs_server" -> "Gcs_server".  Splitting happens on the
   literal "__" separator dune uses, never on single underscores. *)
let canon_of_unit_name name =
  let parts =
    let n = String.length name in
    let rec go start i acc =
      if i + 1 >= n then List.rev (String.sub name start (n - start) :: acc)
      else if name.[i] = '_' && name.[i + 1] = '_' then
        go (i + 2) (i + 2) (String.sub name start (i - start) :: acc)
      else go start (i + 1) acc
    in
    go 0 0 []
  in
  match parts with
  | "Dune" :: "exe" :: rest -> String.concat "." rest
  | parts -> String.concat "." parts

let read_cmt path =
  match Cmt_format.read_cmt path with
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation structure, Some source
        when Filename.check_suffix source ".ml" ->
          let unit_name = cmt.Cmt_format.cmt_modname in
          Some
            {
              unit_name;
              canon = canon_of_unit_name unit_name;
              source;
              structure;
            }
      | _ -> None (* interface, wrapper (.ml-gen), or partial cmt *))
  | exception _ -> None (* unreadable or stale-format cmt: skip *)

(* All <dir>/.<name>.objs/byte and .<name>.eobjs/byte dirs below [dir]. *)
let rec find_byte_dirs dir acc =
  List.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then
        let is_objs =
          String.length entry > 1
          && entry.[0] = '.'
          && (Filename.check_suffix entry ".objs"
             || Filename.check_suffix entry ".eobjs")
        in
        if is_objs then
          let byte = Filename.concat path "byte" in
          if Sys.file_exists byte && Sys.is_directory byte then byte :: acc
          else acc
        else find_byte_dirs path acc
      else acc)
    acc (list_dir dir)

let subtrees = [ "lib"; "bin"; "bench" ]

(* Load every unit under [root]'s build tree, newest definition of each
   unit name winning never being needed: unit names are globally unique,
   so the first sighting is kept. *)
let load ~root =
  let build_root =
    let candidate = Filename.concat root "_build/default" in
    if Sys.file_exists candidate && Sys.is_directory candidate then candidate
    else root
  in
  let seen = Hashtbl.create 64 in
  let units = ref [] in
  List.iter
    (fun sub ->
      let dir = Filename.concat build_root sub in
      if Sys.file_exists dir && Sys.is_directory dir then
        List.iter
          (fun byte_dir ->
            List.iter
              (fun entry ->
                if Filename.check_suffix entry ".cmt" then
                  match read_cmt (Filename.concat byte_dir entry) with
                  | Some u when not (Hashtbl.mem seen u.unit_name) ->
                      Hashtbl.replace seen u.unit_name ();
                      units := u :: !units
                  | _ -> ())
              (list_dir byte_dir))
          (List.sort String.compare (find_byte_dirs dir [])))
    subtrees;
  List.sort (fun a b -> String.compare a.source b.source) !units

(* Load specific .cmt files (the fixture tests point straight at the
   planted library's objs directory). *)
let load_files paths = List.filter_map read_cmt paths

(* ---------- typed-tree helpers shared by the rule modules ---------- *)

(* Per-unit name resolution: expand local module aliases so every path
   prints in its canonical dotted form. *)
type resolver = {
  unit_canon : string;
  aliases : (string, string) Hashtbl.t;  (* local module name -> canonical prefix *)
}

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* Canonical dotted name of a path, expanding the head through the
   unit's alias table ("W.u8" -> "Gc_net.Wire.u8").  Bare local value
   names come back unqualified; [resolve_local] below maps them onto
   the unit's own defs. *)
let canon_of_path r p =
  let s = Path.name p in
  match String.index_opt s '.' with
  | None -> ( match Hashtbl.find_opt r.aliases s with Some c -> c | None -> s)
  | Some i -> (
      let head = String.sub s 0 i in
      let rest = String.sub s i (String.length s - i) in
      match Hashtbl.find_opt r.aliases head with
      | Some c -> c ^ rest
      | None -> s)

(* Record `module X = <path>` aliases and `module X = struct .. end`
   definitions, including nested ones, into the resolver.  Runs as a
   cheap pre-pass over the structure. *)
let build_resolver ~canon (structure : Typedtree.structure) =
  let r = { unit_canon = canon; aliases = Hashtbl.create 16 } in
  let rec scan_module prefix (me : Typedtree.module_expr) name =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_ident (p, _) ->
        Hashtbl.replace r.aliases name (canon_of_path r p)
    | Typedtree.Tmod_constraint (me', _, _, _) -> scan_module prefix me' name
    | Typedtree.Tmod_structure str ->
        let full = prefix ^ "." ^ name in
        Hashtbl.replace r.aliases name full;
        scan_structure full str
    | _ -> ()
  and scan_structure prefix (str : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_module mb -> (
            match mb.Typedtree.mb_id with
            | Some id -> scan_module prefix mb.Typedtree.mb_expr (Ident.name id)
            | None -> ())
        | Typedtree.Tstr_recmodule mbs ->
            List.iter
              (fun (mb : Typedtree.module_binding) ->
                match mb.Typedtree.mb_id with
                | Some id ->
                    scan_module prefix mb.Typedtree.mb_expr (Ident.name id)
                | None -> ())
              mbs
        | _ -> ())
      str.Typedtree.str_items
  in
  scan_structure canon structure;
  (* [let module W = Gc_net.Wire in ...] — the codec-registration idiom —
     binds aliases inside expressions, where no Tstr_module appears. *)
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_letmodule (Some id, _, _, me, _) ->
        scan_module canon me (Ident.name id)
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.structure it structure;
  r

(* Head identifier of a (possibly partial, possibly pipelined)
   application: [f x y], [f], [Some (f x)] all answer [f]'s path. *)
let rec head_path (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | Typedtree.Texp_apply (f, _) -> head_path f
  | Typedtree.Texp_construct (_, _, [ arg ]) -> head_path arg
  | _ -> None

let head_canon r e = Option.map (canon_of_path r) (head_path e)

(* All string literals syntactically inside [e], descending through
   if/match/try arms and sequencing — enough to see both branches of
   [if ordered then "a" else "b"]. *)
let string_literals (e : Typedtree.expression) =
  let acc = ref [] in
  let rec go (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) ->
        acc := (s, e.Typedtree.exp_loc) :: !acc
    | Typedtree.Texp_ifthenelse (_, a, b) ->
        go a;
        Option.iter go b
    | Typedtree.Texp_match (_, cases, _) ->
        List.iter (fun (c : _ Typedtree.case) -> go c.Typedtree.c_rhs) cases
    | Typedtree.Texp_try (body, cases) ->
        go body;
        List.iter (fun (c : _ Typedtree.case) -> go c.Typedtree.c_rhs) cases
    | Typedtree.Texp_sequence (_, b) -> go b
    | Typedtree.Texp_let (_, _, b) -> go b
    | _ -> ()
  in
  go e;
  List.rev !acc

let is_bare_ident (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident _ -> true
  | _ -> false

(* First integer-literal argument of a call, if any. *)
let int_literal_arg args =
  List.find_map
    (fun (_, a) ->
      match a with
      | Some (e : Typedtree.expression) -> (
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_constant (Asttypes.Const_int n) ->
              Some (n, e.Typedtree.exp_loc)
          | _ -> None)
      | None -> None)
    args

let string_literal_arg args =
  List.find_map
    (fun (_, a) ->
      match a with
      | Some (e : Typedtree.expression) -> (
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) ->
              Some (s, e.Typedtree.exp_loc)
          | _ -> None)
      | None -> None)
    args
