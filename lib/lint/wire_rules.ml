(* Rules W2/W3: static safety of the Payload/Wire codec registry.

   The registry is stringly at runtime: [Payload.register_codec ~tag]
   keys families by a string tag, and inside a family the constructors
   are discriminated by the first [Wire.u8] each encode arm writes and
   the integer cases of the decode's [match Wire.read_u8 r with].  A
   duplicate tag or discriminator silently corrupts the wire vocabulary
   — decode routes bytes to the wrong constructor — so both are checked
   here, repo-wide, against the typed tree.

   W2 fires on: duplicate string tag across the repo; duplicate u8
   discriminator inside a family; an arm mix where some constructors
   carry a discriminator and some do not (single-constructor families
   like "dg" legitimately write none at all); an encode discriminator
   with no decode case or vice versa; and a non-literal ~tag, which the
   analysis cannot check.

   W3 fires on: a [Payload.t] constructor with no printer arm anywhere
   in the repo (unprintable payloads make traces lie by omission), and
   a constructor declared in a codec-bearing unit that the unit's
   encode never emits (it would hit the [| _ -> false] fallthrough and
   be dropped on the wire).  Units that never register a codec are
   sim-only by construction and only need the printer. *)

module D = Diagnostic

type codec_reg = {
  c_source : string;
  c_line : int;
  c_tag : string option;  (* None: not a string literal *)
  c_encode_arms : (string * int option * int) list;  (* ctor, disc, line *)
  c_decode_cases : (int * int) list;  (* case value, line *)
}

type unit_facts = {
  f_source : string;
  f_codecs : codec_reg list;
  f_printed : string list;  (* ctors covered by a printer arm, this unit *)
  f_declared : (string * int) list;  (* Payload.t ctors declared, with line *)
}

let offset (e : Typedtree.expression) =
  e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_cnum

(* Constructor names bound by a pattern, restricted to extension
   constructors (Payload.t is extensible; ordinary variants like
   Conflict.t must not leak in). *)
let rec pattern_ext_ctors : type k. k Typedtree.general_pattern -> string list =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_construct (_, cstr, _, _) -> (
      match cstr.Types.cstr_tag with
      | Types.Cstr_extension _ -> [ cstr.Types.cstr_name ]
      | _ -> [])
  | Typedtree.Tpat_alias (p', _, _) -> pattern_ext_ctors p'
  | Typedtree.Tpat_or (a, b, _) -> pattern_ext_ctors a @ pattern_ext_ctors b
  | Typedtree.Tpat_value v ->
      pattern_ext_ctors (v :> Typedtree.value Typedtree.general_pattern)
  | _ -> []

(* First [Wire.u8] application in [e] whose payload argument is a direct
   int literal — source order, so the discriminator write that opens an
   encode arm wins over later flag bytes. *)
let first_u8_literal r (e : Typedtree.expression) =
  let best = ref None in
  let consider off n =
    match !best with
    | Some (o, _) when o <= off -> ()
    | _ -> best := Some (off, n)
  in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_apply (f, args)
      when Typed_loader.head_canon r f = Some Catalog.wire_u8_write -> (
        match Typed_loader.int_literal_arg args with
        | Some (n, _) -> consider (offset e) n
        | None -> ())
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  Option.map snd !best

(* The outermost [match Wire.read_u8 r with] in the decode body: minimal
   source offset.  Nested discriminators (gcs reads a second u8 for the
   conflict class inside case 0) must not contribute cases. *)
let decode_cases r (e : Typedtree.expression) =
  let best = ref None in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_match (scrut, cases, _)
      when Typed_loader.head_canon r scrut = Some Catalog.wire_u8_read -> (
        match !best with
        | Some (o, _) when o <= offset e -> ()
        | _ -> best := Some (offset e, cases))
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  match !best with
  | None -> []
  | Some (_, cases) ->
      List.filter_map
        (fun (c : _ Typedtree.case) ->
          let rec ints : type k. k Typedtree.general_pattern -> (int * int) list
              =
           fun p ->
            match p.Typedtree.pat_desc with
            | Typedtree.Tpat_constant (Asttypes.Const_int n) ->
                [ (n, Typed_loader.line_of p.Typedtree.pat_loc) ]
            | Typedtree.Tpat_or (a, b, _) -> ints a @ ints b
            | Typedtree.Tpat_value v ->
                ints (v :> Typedtree.value Typedtree.general_pattern)
            | _ -> []
          in
          match ints c.Typedtree.c_lhs with [] -> None | l -> Some l)
        cases
      |> List.concat

(* Encode arms: every extension-constructor pattern arm anywhere in the
   encode body, paired with the first literal u8 its right-hand side
   writes. *)
let encode_arms r (e : Typedtree.expression) =
  let arms = ref [] in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_match (_, cases, _) ->
        List.iter
          (fun (c : _ Typedtree.case) ->
            List.iter
              (fun ctor ->
                arms :=
                  ( ctor,
                    first_u8_literal r c.Typedtree.c_rhs,
                    Typed_loader.line_of
                      c.Typedtree.c_lhs.Typedtree.pat_loc )
                  :: !arms)
              (pattern_ext_ctors c.Typedtree.c_lhs))
          cases
    | Typedtree.Texp_function _ -> ()
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  List.rev !arms

(* Printer arms: extension-constructor patterns in the printer function. *)
let printer_ctors (e : Typedtree.expression) =
  let acc = ref [] in
  let open Tast_iterator in
  let pat : type k. _ -> k Typedtree.general_pattern -> unit =
   fun sub p ->
    acc := pattern_ext_ctors p @ !acc;
    default_iterator.pat sub p
  in
  let it = { default_iterator with pat } in
  it.expr it e;
  List.sort_uniq String.compare !acc

let labelled name args =
  List.find_map
    (fun ((l : Asttypes.arg_label), a) ->
      match (l, a) with
      | (Asttypes.Labelled n | Asttypes.Optional n), Some e when n = name ->
          Some (e : Typedtree.expression)
      | _ -> None)
    args

(* ---------- per-unit fact collection ---------- *)

let collect_unit (u : Typed_loader.unit_info) =
  let r =
    Typed_loader.build_resolver ~canon:u.Typed_loader.canon
      u.Typed_loader.structure
  in
  let codecs = ref [] and printed = ref [] and declared = ref [] in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_apply (f, args) -> (
        match Typed_loader.head_canon r f with
        | Some h when h = Catalog.payload_codec_registrar ->
            let tag =
              match labelled "tag" args with
              | Some te -> (
                  match Typed_loader.string_literals te with
                  | [ (s, _) ] -> Some s
                  | _ -> None)
              | None -> None
            in
            let enc_arms =
              match labelled "encode" args with
              | Some ee -> encode_arms r ee
              | None -> []
            in
            let dec_cases =
              match labelled "decode" args with
              | Some de -> decode_cases r de
              | None -> []
            in
            codecs :=
              {
                c_source = u.Typed_loader.source;
                c_line = Typed_loader.line_of e.Typedtree.exp_loc;
                c_tag = tag;
                c_encode_arms = enc_arms;
                c_decode_cases = dec_cases;
              }
              :: !codecs
        | Some h when h = Catalog.payload_printer_registrar ->
            List.iter
              (fun (_, a) ->
                Option.iter (fun a -> printed := printer_ctors a @ !printed) a)
              args
        | _ -> ())
    | _ -> ());
    default_iterator.expr sub e
  in
  let structure_item sub (item : Typedtree.structure_item) =
    (match item.Typedtree.str_desc with
    | Typedtree.Tstr_typext te ->
        let path_name =
          Typed_loader.canon_of_unit_name (Path.name te.Typedtree.tyext_path)
        in
        if path_name = Catalog.payload_type then
          List.iter
            (fun (ec : Typedtree.extension_constructor) ->
              declared :=
                ( Ident.name ec.Typedtree.ext_id,
                  Typed_loader.line_of ec.Typedtree.ext_loc )
                :: !declared)
            te.Typedtree.tyext_constructors
    | _ -> ());
    default_iterator.structure_item sub item
  in
  let it = { default_iterator with expr; structure_item } in
  it.structure it u.Typed_loader.structure;
  {
    f_source = u.Typed_loader.source;
    f_codecs = List.rev !codecs;
    f_printed = List.sort_uniq String.compare !printed;
    f_declared = List.rev !declared;
  }

(* ---------- the rules ---------- *)

let check (units : Typed_loader.unit_info list) =
  let facts = List.map collect_unit units in
  let ds = ref [] in
  let add ~file ~line ~suggestion msg rule =
    ds := D.v ~file ~line ~rule ~suggestion msg :: !ds
  in
  (* W2: repo-wide duplicate string tags *)
  let tags : (string, string * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f ->
      List.iter
        (fun c ->
          match c.c_tag with
          | None ->
              add ~file:c.c_source ~line:c.c_line
                ~suggestion:"pass the tag as a single string literal"
                "register_codec tag is not a string literal; W2 cannot check \
                 it for conflicts"
                "W2"
          | Some tag -> (
              match Hashtbl.find_opt tags tag with
              | Some (other_file, other_line) ->
                  add ~file:c.c_source ~line:c.c_line
                    ~suggestion:"pick an unused tag string"
                    (Printf.sprintf
                       "duplicate codec tag %S (already registered at %s:%d)"
                       tag other_file other_line)
                    "W2"
              | None -> Hashtbl.replace tags tag (c.c_source, c.c_line)))
        f.f_codecs)
    facts;
  (* W2: per-family discriminator discipline *)
  List.iter
    (fun f ->
      List.iter
        (fun c ->
          let fam = match c.c_tag with Some t -> t | None -> "?" in
          let with_disc =
            List.filter_map
              (fun (ctor, d, line) ->
                Option.map (fun d -> (ctor, d, line)) d)
              c.c_encode_arms
          in
          let without_disc =
            List.filter (fun (_, d, _) -> d = None) c.c_encode_arms
          in
          (* mixed arms: ambiguous framing unless every arm writes one *)
          if with_disc <> [] && without_disc <> [] then
            List.iter
              (fun (ctor, _, line) ->
                add ~file:c.c_source ~line
                  ~suggestion:
                    "open every encode arm of the family with a literal \
                     Wire.u8 discriminator"
                  (Printf.sprintf
                     "constructor %s in family %S writes no u8 discriminator \
                      while sibling arms do"
                     ctor fam)
                  "W2")
              without_disc;
          (* duplicate discriminators inside the family *)
          let seen : (int, string * int) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun (ctor, d, line) ->
              match Hashtbl.find_opt seen d with
              | Some (other, other_line) ->
                  add ~file:c.c_source ~line
                    ~suggestion:"renumber the discriminator"
                    (Printf.sprintf
                       "duplicate u8 discriminator %d in family %S: %s and %s \
                        (line %d)"
                       d fam other ctor other_line)
                    "W2"
              | None -> Hashtbl.replace seen d (ctor, line))
            with_disc;
          (* encode/decode agreement *)
          let dec = List.sort_uniq compare (List.map fst c.c_decode_cases) in
          List.iter
            (fun (ctor, d, line) ->
              if not (List.mem d dec) then
                add ~file:c.c_source ~line
                  ~suggestion:"add the matching decode case"
                  (Printf.sprintf
                     "encode writes discriminator %d for %s but decode of \
                      family %S never matches it"
                     d ctor fam)
                  "W2")
            with_disc;
          let enc = List.sort_uniq compare (List.map (fun (_, d, _) -> d) with_disc) in
          List.iter
            (fun (n, line) ->
              if with_disc <> [] && not (List.mem n enc) then
                add ~file:c.c_source ~line
                  ~suggestion:"remove the dead case or add the encode arm"
                  (Printf.sprintf
                     "decode of family %S matches discriminator %d that no \
                      encode arm writes"
                     fam n)
                  "W2")
            c.c_decode_cases)
        f.f_codecs)
    facts;
  (* W3: every declared constructor needs a printer arm somewhere *)
  let all_printed =
    List.concat_map (fun f -> f.f_printed) facts |> List.sort_uniq String.compare
  in
  List.iter
    (fun f ->
      let unit_encoded =
        List.concat_map
          (fun c -> List.map (fun (ctor, _, _) -> ctor) c.c_encode_arms)
          f.f_codecs
      in
      List.iter
        (fun (ctor, line) ->
          if not (List.mem ctor all_printed) then
            add ~file:f.f_source ~line
              ~suggestion:"add a Payload.register_printer arm for it"
              (Printf.sprintf
                 "Payload constructor %s has no printer arm anywhere in the \
                  repo; traces will show it as <unknown>"
                 ctor)
              "W3";
          if f.f_codecs <> [] && not (List.mem ctor unit_encoded) then
            add ~file:f.f_source ~line
              ~suggestion:
                "add an encode arm (and decode case) to the unit's codec"
              (Printf.sprintf
                 "Payload constructor %s is declared in a codec-bearing unit \
                  but its codec never encodes it (falls through to the wire \
                  as unsendable)"
                 ctor)
              "W3")
        f.f_declared)
    facts;
  List.rev !ds
