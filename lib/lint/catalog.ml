(* The central conformance catalog: every machine-checked convention lives
   here, in one place, instead of being scattered across reviews.

   - which lib/ subdirectories hold *protocol* code (determinism rules
     D2-D4 and event discipline E1 apply there; D1 applies everywhere),
   - the registered trace components and their msg-id prefixes (rule E1),
   - the declared architecture DAG the dune files must match (rules L1-L2).

   The DAG encodes the paper's section 4.1 layering: ordering is solved
   once, in the AB-GB column rchannel -> rbcast -> consensus -> abcast ->
   gbcast, with membership and monitoring above it; the competing
   traditional and totem stacks are siblings that the AB-GB column must
   never reach; everything touches the network only through gc_kernel /
   gc_net; gc_obs is pure observability and depends on nothing. *)

let rule_ids =
  [
    "D1"; "D2"; "D3"; "D4"; "E1"; "E2"; "L1"; "L2"; "W1"; "W2"; "W3"; "B1";
    "B2"; "P0"; "T0";
  ]

let rule_summary = function
  | "D1" -> "ambient nondeterminism (Random/Unix/Sys.time) outside lib/sim/rng.ml"
  | "D2" -> "physical equality (==/!=) in protocol code"
  | "D3" -> "unordered Hashtbl.iter/fold feeding protocol state"
  | "D4" -> "bare polymorphic compare/(=) passed at a call site"
  | "E1" -> "Process.event outside the registered component/prefix catalog"
  | "E2" -> "metric name or kind outside the Catalog.metrics register"
  | "L1" -> "dune dependency outside the declared architecture DAG"
  | "L2" -> "module reference outside the declared architecture DAG"
  | "W1" -> "malformed gcs-lint waiver annotation"
  | "W2" -> "wire-codec tag conflict (duplicate string tag or u8 discriminator)"
  | "W3" -> "Payload constructor without a registered printer or codec arm"
  | "B1" -> "blocking call reachable from an event-loop callback"
  | "B2" -> "raise can escape a protocol message handler"
  | "P0" -> "source file does not parse"
  | "T0" -> "typed pass found no .cmt files (build the repo first)"
  | r -> "unknown rule " ^ r

(* lib/ subdirectories whose modules are protocol code. *)
let protocol_dirs =
  [
    "rchannel"; "rbcast"; "consensus"; "abcast"; "gbcast"; "membership";
    "monitoring"; "fd"; "totem"; "traditional"; "replication"; "core";
    "kernel";
  ]

let is_protocol_dir d = List.mem d protocol_dirs

(* "lib/totem/totem_stack.ml" -> Some "totem" (any path containing /lib/). *)
let dir_of_path path =
  let parts = String.split_on_char '/' path in
  let rec go = function
    | "lib" :: d :: _ :: _ -> Some d
    | _ :: rest -> go rest
    | [] -> None
  in
  go parts

(* lib/ subdirectories that implement the real-network side of the runtime
   seam: they own the OS clock, sockets and entropy *by design*, so the
   ambient-nondeterminism rule D1 does not apply inside them.  Protocol
   code still cannot reach nondeterminism through them — the layering
   rules keep every protocol lib below the seam. *)
let realtime_dirs = [ "runtime_unix"; "server" ]

(* bin/ and bench/ files that sit on the real-time side of the seam by
   design: entry points that own sockets and wall clocks.  Everything
   else under bin/ and bench/ (demo, trace, fuzz drivers, simulated
   bench cells) is deterministic and stays under D1. *)
let realtime_files =
  [
    "bin/gcs_server.ml"; "bin/gcs_client.ml"; "bin/gcs_top.ml";
    "bench/e10_loopback.ml"; "bench/perf.ml";
  ]

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* D1 exemptions: the one simulated randomness source, the declared
   real-time boundary, and the real-time entry points. *)
let rng_exempt path =
  (match List.rev (String.split_on_char '/' path) with
  | file :: dir :: _ ->
      (dir = "sim" && file = "rng.ml") || List.mem dir realtime_dirs
  | _ -> false)
  || List.exists (fun f -> has_suffix ~suffix:f path) realtime_files

(* Registered trace components -> allowed msg-id prefixes.  A component
   with an empty prefix list may emit events but never a ~msg id. *)
let components =
  [
    ("rchannel", [ "rc:" ]);
    ("rbcast", [ "rb:" ]);
    ("consensus", [ "cs:" ]);
    ("abcast", [ "ab:" ]);
    ("gbcast", [ "gb:" ]);
    ("membership", [ "view:" ]);
    ("monitoring", []);
    ("fd", []);
    ("net", []);
    ("fault", []);
    ("passive", []);
    ("totem", [ "tt:"; "view:" ]);
    ("traditional", [ "tr:"; "trvs:"; "view:" ]);
  ]

let component_prefixes c = List.assoc_opt c components

(* ---------- declared architecture DAG ---------- *)

type layer = {
  lib : string;       (* dune library name *)
  dir : string;       (* lib/ subdirectory *)
  rank : int;         (* altitude, for layering and dot layout *)
  deps : string list; (* allowed *internal* direct dependencies *)
  ext : string list;  (* allowed external dependencies *)
}

let base = [ "gc_obs"; "gc_sim"; "gc_net"; "gc_kernel" ]
let abgb_stack = base @ [ "gc_fd" ]

let layer ?(ext = [ "fmt" ]) lib dir rank deps = { lib; dir; rank; deps; ext }

let arch =
  [
    layer "gc_obs" "obs" 0 [];
    layer "gc_sim" "sim" 1 [ "gc_obs" ];
    layer "gc_net" "net" 2 [ "gc_sim"; "gc_obs" ];
    layer "gc_kernel" "kernel" 3 [ "gc_sim"; "gc_net"; "gc_obs" ];
    layer "gc_fd" "fd" 4 base;
    (* AB-GB column: each layer sees only the layers strictly below it. *)
    layer "gc_rchannel" "rchannel" 5 base;
    layer "gc_rbcast" "rbcast" 6 (base @ [ "gc_rchannel" ]);
    layer "gc_consensus" "consensus" 7
      (abgb_stack @ [ "gc_rchannel"; "gc_rbcast" ]);
    layer "gc_abcast" "abcast" 8
      (abgb_stack @ [ "gc_rchannel"; "gc_rbcast"; "gc_consensus" ]);
    layer "gc_gbcast" "gbcast" 9
      (abgb_stack @ [ "gc_rchannel"; "gc_rbcast"; "gc_consensus"; "gc_abcast" ]);
    layer "gc_membership" "membership" 10 (abgb_stack @ [ "gc_rchannel" ]);
    layer "gc_monitoring" "monitoring" 11
      (abgb_stack @ [ "gc_rchannel"; "gc_membership" ]);
    layer "gcs" "core" 12
      (abgb_stack
      @ [
          "gc_rchannel"; "gc_rbcast"; "gc_consensus"; "gc_abcast"; "gc_gbcast";
          "gc_membership"; "gc_monitoring";
        ]);
    (* Competing stacks: siblings of the AB-GB column, never below it. *)
    layer "gc_totem" "totem" 12 (abgb_stack @ [ "gc_rchannel"; "gc_membership" ]);
    layer "gc_traditional" "traditional" 12
      (abgb_stack
      @ [ "gc_rchannel"; "gc_rbcast"; "gc_consensus"; "gc_membership" ]);
    (* Applications and harnesses above every stack. *)
    layer "gc_replication" "replication" 13
      (abgb_stack
      @ [
          "gc_rchannel"; "gc_gbcast"; "gc_membership"; "gcs"; "gc_traditional";
        ]);
    layer "gc_faultgen" "faultgen" 13 [ "gc_sim"; "gc_net"; "gc_obs"; "gc_fd" ];
    layer "gc_fuzz" "fuzz" 14
      [
        "gc_sim"; "gc_net"; "gc_kernel"; "gc_obs"; "gc_fd"; "gc_faultgen";
        "gcs"; "gc_traditional"; "gc_totem";
      ];
    (* The real-network side of the runtime seam: the TCP backend plugs in
       under gc_kernel's Runtime capabilities, the server assembles the
       facade stack on top of it.  Both may touch Unix (see
       [realtime_dirs]); nothing in the protocol column may depend on
       them. *)
    layer ~ext:[ "fmt"; "unix" ] "gc_runtime_unix" "runtime_unix" 13
      [ "gc_sim"; "gc_net"; "gc_kernel"; "gc_obs" ];
    layer ~ext:[ "fmt"; "unix" ] "gc_server" "server" 14
      [
        "gc_sim"; "gc_net"; "gc_kernel"; "gc_obs"; "gc_membership"; "gcs";
        "gc_runtime_unix";
      ];
    layer ~ext:[ "fmt"; "compiler-libs.common" ] "gc_lint" "lint" 15 [];
  ]

let find_layer lib = List.find_opt (fun l -> l.lib = lib) arch
let layer_of_dir dir = List.find_opt (fun l -> l.dir = dir) arch
let internal_lib lib = find_layer lib <> None

(* Wrapped library name -> top-level module name: gc_sim -> Gc_sim. *)
let module_of_lib lib = String.capitalize_ascii lib

let lib_of_module m =
  List.find_map
    (fun l -> if module_of_lib l.lib = m then Some l.lib else None)
    arch

(* The AB-GB column plus its facade, which must never reach the competing
   stacks (paper section 4.1: ordering is solved once, below membership). *)
let abgb_libs =
  [
    "gc_rchannel"; "gc_rbcast"; "gc_consensus"; "gc_abcast"; "gc_gbcast";
    "gc_membership"; "gc_monitoring"; "gcs";
  ]

let legacy_libs = [ "gc_traditional"; "gc_totem" ]

(* ---------- typed-pass vocabulary (rules W2/W3, B1/B2, E2) ---------- *)

(* Callback registration points.  A function (or lambda) handed to one of
   these runs inside the event loop; [Handler] additionally marks it as a
   protocol *message* handler whose state mutations must not be torn by an
   escaping raise (rule B2).  Names are canonical typed paths, so the rule
   sees through every local [module W = ...] alias. *)
type cb_kind = Loop | Handler

let registrars =
  [
    ("Gc_runtime_unix.Evloop.set_read", Loop);
    ("Gc_runtime_unix.Evloop.set_write", Loop);
    ("Gc_runtime_unix.Evloop.schedule", Loop);
    ("Gc_runtime_unix.Fconn.listen", Loop);
    ("Gc_runtime_unix.Fconn.attach", Handler);
    ("Gc_kernel.Process.on_receive", Handler);
    ("Gc_kernel.Process.timer", Loop);
    ("Gc_kernel.Process.every", Loop);
  ]

(* Capability records: a lambda stored in a [Gc_kernel.Runtime.t] field is
   invoked by protocol code from inside a handler, so it is a Handler
   root; the [register]/[schedule] fields install callbacks when applied
   through the record. *)
let runtime_record_type = "Gc_kernel.Runtime.t"
let field_registrars = [ ("register", Handler); ("schedule", Loop) ]

(* Blocking primitives (rule B1).  Hard blockers are never legitimate on
   the event loop; soft blockers are sanctioned inside a compilation unit
   that calls [Unix.set_nonblock] (the unit has declared its fds
   non-blocking, so read/write return EWOULDBLOCK instead of stalling). *)
let hard_blocking =
  [
    "Unix.sleep"; "Unix.sleepf"; "Unix.select"; "Unix.gethostbyname";
    "Unix.gethostbyaddr"; "Unix.getaddrinfo"; "Unix.getnameinfo";
    "Unix.system"; "Unix.wait"; "Unix.waitpid";
  ]

let soft_blocking =
  [
    "Unix.read"; "Unix.write"; "Unix.single_write"; "Unix.connect";
    "Unix.accept"; "Unix.recv"; "Unix.recvfrom"; "Unix.send"; "Unix.sendto";
  ]

let nonblock_marker = "Unix.set_nonblock"

(* Raise heads (rule B2). *)
let raise_fns =
  [ "Stdlib.raise"; "Stdlib.raise_notrace"; "Stdlib.failwith";
    "Stdlib.invalid_arg" ]

(* Where B2 raise *sites* matter: protocol state machines and the
   real-time boundary that drives them.  lib/net and lib/obs are
   excluded on purpose — codec rejects (Payload.Codec_reject, Wire.Short)
   are caught at the frame boundary before any protocol state mutates,
   which test_wire's corrupt-bytes property exercises. *)
let has_prefix ~prefix s =
  let lp = String.length prefix and l = String.length s in
  l >= lp && String.sub s 0 lp = prefix

let b2_site_scope source =
  match dir_of_path source with
  | Some d -> is_protocol_dir d || List.mem d realtime_dirs
  (* the planted typed fixtures exercise the rule from test/ *)
  | None -> has_prefix ~prefix:"test/lint_fixtures/typed/" source

(* Wire-codec registry names (rules W2/W3). *)
let payload_codec_registrar = "Gc_net.Payload.register_codec"
let payload_printer_registrar = "Gc_net.Payload.register_printer"
let payload_type = "Gc_net.Payload.t"
let wire_u8_write = "Gc_net.Wire.u8"
let wire_u8_read = "Gc_net.Wire.read_u8"

(* ---------- metric catalog (rule E2) ---------- *)

type metric_kind = MCounter | MGauge | MHist

let metric_kind_name = function
  | MCounter -> "counter"
  | MGauge -> "gauge"
  | MHist -> "histogram"

(* Metric recording/reading entry points and the kind each one implies.
   Local forwarders (a def whose body passes its own string parameter to
   one of these) are discovered by the rule itself. *)
let metric_recorders =
  [
    ("Gc_obs.Metrics.incr", MCounter);
    ("Gc_obs.Metrics.counter", MCounter);
    ("Gc_obs.Metrics.set_gauge", MGauge);
    ("Gc_obs.Metrics.gauge", MGauge);
    ("Gc_obs.Metrics.observe", MHist);
    ("Gc_obs.Metrics.quantile", MHist);
    ("Gc_obs.Metrics.hist_count", MHist);
    ("Gc_obs.Metrics.hist_max", MHist);
    ("Gc_obs.Metrics.hist_mean", MHist);
    ("Gc_kernel.Process.incr", MCounter);
    ("Gc_kernel.Process.set_gauge", MGauge);
    ("Gc_kernel.Process.observe", MHist);
    ("Gc_obs.Snapshot.counter", MCounter);
    ("Gc_obs.Snapshot.gauge", MGauge);
    ("Gc_obs.Snapshot.quantile", MHist);
    ("Gc_obs.Snapshot.hist_count", MHist);
    ("Gc_obs.Snapshot.hist_max", MHist);
    ("Gc_obs.Snapshot.hist_mean", MHist);
  ]

(* The Metrics store implementation itself rehydrates registries from
   serialized views and JSON, where names are data, not literals — the
   original recording sites were already checked.  E2's
   static-checkability requirement stops at the store boundary. *)
let e2_exempt path = has_suffix ~suffix:"lib/obs/metrics.ml" path

(* Every metric name the repo may record or read, with its kind.  This
   list is the single source of truth: rule E2 checks call sites against
   it, and (in repo mode) checks it against the DESIGN.md section 8
   table, so doc and code cannot drift apart. *)
let metrics =
  let c n = (n, MCounter) and g n = (n, MGauge) and h n = (n, MHist) in
  [
    (* consensus *)
    c "consensus.instances_started"; c "consensus.instances_decided";
    h "consensus.rounds"; c "consensus.coordinator_suspicions";
    (* abcast *)
    c "abcast.submitted"; c "abcast.proposals"; h "abcast.batch_size";
    c "abcast.delivered"; h "abcast.latency_ms"; g "abcast.pending_size";
    h "abcast.submit_batch_size";
    (* gbcast *)
    c "gbcast.submitted"; c "gbcast.fast_deliveries";
    c "gbcast.cut_deliveries"; c "gbcast.delivered"; h "gbcast.latency_ms";
    c "gbcast.freezes"; c "gbcast.cuts_proposed"; h "gbcast.check_ms";
    h "gbcast.batch_size"; h "gbcast.ack_batch_size";
    g "gbcast.conflict_class_occupancy";
    (* rbcast / rchannel *)
    c "rbcast.broadcasts"; c "rbcast.delivered";
    c "rchannel.sends"; c "rchannel.retransmissions";
    h "rchannel.retransmit_burst"; c "rchannel.stale_gen_ignored";
    g "rchannel.window_occupancy"; g "rchannel.window_peak";
    c "rchannel.stuck_detections"; c "rchannel.stream_resets";
    (* failure detection / membership / monitoring *)
    c "fd.suspicions"; c "fd.wrong_suspicions"; c "fd.retractions";
    h "fd.mistake_ms";
    c "membership.view_changes"; h "membership.join_ms";
    h "membership.change_ms"; g "membership.sender_blocked_ms_total";
    c "membership.resyncs";
    c "monitoring.exclusions_proposed"; c "monitoring.wrongful_exclusions";
    (* competing stacks and replication *)
    c "traditional.flushes"; c "traditional.view_changes";
    c "traditional.exclusions"; h "traditional.blocked_ms";
    g "traditional.blocked_ms_total";
    c "totem.recoveries"; c "totem.view_changes"; c "totem.exclusions";
    c "passive.discards"; c "passive.primary_changes";
    (* event loop (runtime_unix) *)
    c "evloop.ticks"; h "evloop.select_wait_ms"; h "evloop.callback_ms";
    h "evloop.tick_ms"; h "evloop.timer_lag_ms"; c "evloop.timer_overdue";
    g "evloop.open_fds";
    (* wire transport (framing + TCP backend + simulated net) *)
    c "net.frames_in"; c "net.frames_out"; c "net.bytes_in";
    c "net.bytes_out"; c "net.frame_reject"; c "net.reconnects";
    c "net.tx_drop"; c "net.dropped_gone"; c "net.dropped_policy";
    c "net.duplicated";
    (* durable delivery log (Storage seam + file backend) *)
    c "storage.appends"; c "storage.syncs"; c "storage.snapshots";
    c "storage.truncations"; c "storage.torn_tail_dropped";
    c "storage.append_skipped"; g "storage.log_entries";
    (* gcs_server facade *)
    c "server.applied"; c "server.bad_delivery"; c "server.bad_request";
    c "server.client_accepts"; c "server.health_requests";
    c "server.stats_requests"; h "server.latency_ms";
    h "server.latency_abcast_ms"; h "server.latency_rbcast_ms";
    c "server.delta_transfers"; c "server.full_transfers";
    c "server.delta_rejected"; c "server.reply_syncs";
    c "server.recovered_ops"; c "server.dup_ops_skipped";
    h "server.recovery_ms";
    (* loopback bench client *)
    h "client.latency"; g "client.latency_max"; g "client.latency_p50";
    g "client.latency_p90"; g "client.latency_p99"; c "client.refused";
    c "client.unexpected";
  ]
