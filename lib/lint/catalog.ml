(* The central conformance catalog: every machine-checked convention lives
   here, in one place, instead of being scattered across reviews.

   - which lib/ subdirectories hold *protocol* code (determinism rules
     D2-D4 and event discipline E1 apply there; D1 applies everywhere),
   - the registered trace components and their msg-id prefixes (rule E1),
   - the declared architecture DAG the dune files must match (rules L1-L2).

   The DAG encodes the paper's section 4.1 layering: ordering is solved
   once, in the AB-GB column rchannel -> rbcast -> consensus -> abcast ->
   gbcast, with membership and monitoring above it; the competing
   traditional and totem stacks are siblings that the AB-GB column must
   never reach; everything touches the network only through gc_kernel /
   gc_net; gc_obs is pure observability and depends on nothing. *)

let rule_ids = [ "D1"; "D2"; "D3"; "D4"; "E1"; "L1"; "L2"; "W1"; "P0" ]

let rule_summary = function
  | "D1" -> "ambient nondeterminism (Random/Unix/Sys.time) outside lib/sim/rng.ml"
  | "D2" -> "physical equality (==/!=) in protocol code"
  | "D3" -> "unordered Hashtbl.iter/fold feeding protocol state"
  | "D4" -> "bare polymorphic compare/(=) passed at a call site"
  | "E1" -> "Process.event outside the registered component/prefix catalog"
  | "L1" -> "dune dependency outside the declared architecture DAG"
  | "L2" -> "module reference outside the declared architecture DAG"
  | "W1" -> "malformed gcs-lint waiver annotation"
  | "P0" -> "source file does not parse"
  | r -> "unknown rule " ^ r

(* lib/ subdirectories whose modules are protocol code. *)
let protocol_dirs =
  [
    "rchannel"; "rbcast"; "consensus"; "abcast"; "gbcast"; "membership";
    "monitoring"; "fd"; "totem"; "traditional"; "replication"; "core";
    "kernel";
  ]

let is_protocol_dir d = List.mem d protocol_dirs

(* "lib/totem/totem_stack.ml" -> Some "totem" (any path containing /lib/). *)
let dir_of_path path =
  let parts = String.split_on_char '/' path in
  let rec go = function
    | "lib" :: d :: _ :: _ -> Some d
    | _ :: rest -> go rest
    | [] -> None
  in
  go parts

(* lib/ subdirectories that implement the real-network side of the runtime
   seam: they own the OS clock, sockets and entropy *by design*, so the
   ambient-nondeterminism rule D1 does not apply inside them.  Protocol
   code still cannot reach nondeterminism through them — the layering
   rules keep every protocol lib below the seam. *)
let realtime_dirs = [ "runtime_unix"; "server" ]

(* D1 exemptions: the one simulated randomness source, and the declared
   real-time boundary. *)
let rng_exempt path =
  match List.rev (String.split_on_char '/' path) with
  | file :: dir :: _ ->
      (dir = "sim" && file = "rng.ml") || List.mem dir realtime_dirs
  | _ -> false

(* Registered trace components -> allowed msg-id prefixes.  A component
   with an empty prefix list may emit events but never a ~msg id. *)
let components =
  [
    ("rchannel", [ "rc:" ]);
    ("rbcast", [ "rb:" ]);
    ("consensus", [ "cs:" ]);
    ("abcast", [ "ab:" ]);
    ("gbcast", [ "gb:" ]);
    ("membership", [ "view:" ]);
    ("monitoring", []);
    ("fd", []);
    ("net", []);
    ("fault", []);
    ("passive", []);
    ("totem", [ "tt:"; "view:" ]);
    ("traditional", [ "tr:"; "trvs:"; "view:" ]);
  ]

let component_prefixes c = List.assoc_opt c components

(* ---------- declared architecture DAG ---------- *)

type layer = {
  lib : string;       (* dune library name *)
  dir : string;       (* lib/ subdirectory *)
  rank : int;         (* altitude, for layering and dot layout *)
  deps : string list; (* allowed *internal* direct dependencies *)
  ext : string list;  (* allowed external dependencies *)
}

let base = [ "gc_obs"; "gc_sim"; "gc_net"; "gc_kernel" ]
let abgb_stack = base @ [ "gc_fd" ]

let layer ?(ext = [ "fmt" ]) lib dir rank deps = { lib; dir; rank; deps; ext }

let arch =
  [
    layer "gc_obs" "obs" 0 [];
    layer "gc_sim" "sim" 1 [ "gc_obs" ];
    layer "gc_net" "net" 2 [ "gc_sim"; "gc_obs" ];
    layer "gc_kernel" "kernel" 3 [ "gc_sim"; "gc_net"; "gc_obs" ];
    layer "gc_fd" "fd" 4 base;
    (* AB-GB column: each layer sees only the layers strictly below it. *)
    layer "gc_rchannel" "rchannel" 5 base;
    layer "gc_rbcast" "rbcast" 6 (base @ [ "gc_rchannel" ]);
    layer "gc_consensus" "consensus" 7
      (abgb_stack @ [ "gc_rchannel"; "gc_rbcast" ]);
    layer "gc_abcast" "abcast" 8
      (abgb_stack @ [ "gc_rchannel"; "gc_rbcast"; "gc_consensus" ]);
    layer "gc_gbcast" "gbcast" 9
      (abgb_stack @ [ "gc_rchannel"; "gc_rbcast"; "gc_consensus"; "gc_abcast" ]);
    layer "gc_membership" "membership" 10 (abgb_stack @ [ "gc_rchannel" ]);
    layer "gc_monitoring" "monitoring" 11
      (abgb_stack @ [ "gc_rchannel"; "gc_membership" ]);
    layer "gcs" "core" 12
      (abgb_stack
      @ [
          "gc_rchannel"; "gc_rbcast"; "gc_consensus"; "gc_abcast"; "gc_gbcast";
          "gc_membership"; "gc_monitoring";
        ]);
    (* Competing stacks: siblings of the AB-GB column, never below it. *)
    layer "gc_totem" "totem" 12 (abgb_stack @ [ "gc_rchannel"; "gc_membership" ]);
    layer "gc_traditional" "traditional" 12
      (abgb_stack
      @ [ "gc_rchannel"; "gc_rbcast"; "gc_consensus"; "gc_membership" ]);
    (* Applications and harnesses above every stack. *)
    layer "gc_replication" "replication" 13
      (abgb_stack
      @ [
          "gc_rchannel"; "gc_gbcast"; "gc_membership"; "gcs"; "gc_traditional";
        ]);
    layer "gc_faultgen" "faultgen" 13 [ "gc_sim"; "gc_net"; "gc_obs"; "gc_fd" ];
    layer "gc_fuzz" "fuzz" 14
      [
        "gc_sim"; "gc_net"; "gc_kernel"; "gc_obs"; "gc_fd"; "gc_faultgen";
        "gcs"; "gc_traditional"; "gc_totem";
      ];
    (* The real-network side of the runtime seam: the TCP backend plugs in
       under gc_kernel's Runtime capabilities, the server assembles the
       facade stack on top of it.  Both may touch Unix (see
       [realtime_dirs]); nothing in the protocol column may depend on
       them. *)
    layer ~ext:[ "fmt"; "unix" ] "gc_runtime_unix" "runtime_unix" 13
      [ "gc_sim"; "gc_net"; "gc_kernel"; "gc_obs" ];
    layer ~ext:[ "fmt"; "unix" ] "gc_server" "server" 14
      [
        "gc_sim"; "gc_net"; "gc_kernel"; "gc_obs"; "gc_membership"; "gcs";
        "gc_runtime_unix";
      ];
    layer ~ext:[ "fmt"; "compiler-libs.common" ] "gc_lint" "lint" 15 [];
  ]

let find_layer lib = List.find_opt (fun l -> l.lib = lib) arch
let layer_of_dir dir = List.find_opt (fun l -> l.dir = dir) arch
let internal_lib lib = find_layer lib <> None

(* Wrapped library name -> top-level module name: gc_sim -> Gc_sim. *)
let module_of_lib lib = String.capitalize_ascii lib

let lib_of_module m =
  List.find_map
    (fun l -> if module_of_lib l.lib = m then Some l.lib else None)
    arch

(* The AB-GB column plus its facade, which must never reach the competing
   stacks (paper section 4.1: ordering is solved once, below membership). *)
let abgb_libs =
  [
    "gc_rchannel"; "gc_rbcast"; "gc_consensus"; "gc_abcast"; "gc_gbcast";
    "gc_membership"; "gc_monitoring"; "gcs";
  ]

let legacy_libs = [ "gc_traditional"; "gc_totem" ]
