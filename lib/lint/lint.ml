(* Driver: walk lib/**, bin/ and bench/, lint every .ml against the AST
   rules, every lib dune file against the architecture spec, run the
   typedtree rules (W2/W3, B1/B2, E2) over the .cmt files of the last
   build, apply waivers globally, and report.

   Waivers are collected from every swept source file and applied to the
   whole finding set at the end — a typed finding (whose diagnostics
   carry the same repo-relative paths the sweep uses) is waivable with
   the same comment syntax as a parsetree one. *)

module D = Diagnostic

type result = {
  findings : D.t list;  (* unwaived — these fail the build *)
  waived : (D.t * Waiver.t) list;
  waivers : Waiver.t list;
  libs : Arch.dune_lib list;
  files_seen : int;
  typed_units : int;  (* compilation units the typed pass saw *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let list_dir path =
  if Sys.file_exists path && Sys.is_directory path then
    List.sort String.compare (Array.to_list (Sys.readdir path))
  else []

(* Lint one source string under a (possibly virtual) path: returns
   (unwaived, waived, waivers).  This is the unit the fixture tests use. *)
let lint_file_source ~path source =
  let ast_findings, _roots = Rules.lint_source ~path source in
  let waivers, w1s = Waiver.scan ~file:path source in
  let unwaived, waived =
    List.partition_map
      (fun d ->
        match List.find_opt (fun w -> Waiver.covers w d) waivers with
        | Some w -> Right (d, w)
        | None -> Left d)
      (ast_findings @ w1s)
  in
  (List.sort D.order unwaived, waived, waivers)

(* Typed rules over an explicit unit list: the fixture tests load planted
   .cmt files and run exactly this. *)
let lint_typed_units units =
  let graph = Callgraph.build units in
  Wire_rules.check units @ Block_rules.check graph @ Metric_rules.check units

(* ---------- repo sweep ---------- *)

type sweep = {
  mutable s_findings : D.t list;
  mutable s_waivers : Waiver.t list;
  mutable s_libs : Arch.dune_lib list;
  mutable s_files : int;
}

let sweep_source st ~path ~dune_libs source =
  st.s_files <- st.s_files + 1;
  let ast_findings, roots = Rules.lint_source ~path source in
  let ws, w1s = Waiver.scan ~file:path source in
  st.s_waivers <- st.s_waivers @ ws;
  let l2s =
    List.concat_map
      (fun l -> Arch.check_usage ~lib:l ~file:path ~roots)
      dune_libs
  in
  st.s_findings <- st.s_findings @ ast_findings @ w1s @ l2s

(* lib/<dir>: sources plus the dune architecture checks. *)
let sweep_lib_dir st ~root dir =
  let dir_path = Filename.concat (Filename.concat root "lib") dir in
  let entries = list_dir dir_path in
  let dune_path = Filename.concat dir_path "dune" in
  let dune_libs =
    if Sys.file_exists dune_path then
      Arch.parse_dune
        ~dune_file:(Printf.sprintf "lib/%s/dune" dir)
        (read_file dune_path)
    else []
  in
  st.s_libs <- st.s_libs @ dune_libs;
  List.iter
    (fun l -> st.s_findings <- st.s_findings @ Arch.check_declared l)
    dune_libs;
  List.iter
    (fun entry ->
      if Filename.check_suffix entry ".ml" then
        sweep_source st
          ~path:(Printf.sprintf "lib/%s/%s" dir entry)
          ~dune_libs
          (read_file (Filename.concat dir_path entry)))
    entries

(* bin/ and bench/: executables, no architecture DAG membership — source
   rules only (D1 and the waiver scan; the protocol-only rules D2-D4/E1
   do not apply outside lib/<protocol dir>). *)
let sweep_exe_dir st ~root dir =
  let dir_path = Filename.concat root dir in
  List.iter
    (fun entry ->
      if Filename.check_suffix entry ".ml" then
        sweep_source st
          ~path:(Printf.sprintf "%s/%s" dir entry)
          ~dune_libs:[]
          (read_file (Filename.concat dir_path entry)))
    (list_dir dir_path)

(* Full repo run, rooted at [root] (the directory containing lib/).
   [typed] (default true) also runs the .cmt-backed rules; it needs a
   prior [dune build @all]. *)
let run ?(typed = true) ~root () =
  let st = { s_findings = []; s_waivers = []; s_libs = []; s_files = 0 } in
  List.iter
    (fun dir ->
      if Sys.is_directory (Filename.concat (Filename.concat root "lib") dir)
      then sweep_lib_dir st ~root dir)
    (list_dir (Filename.concat root "lib"));
  List.iter (fun dir -> sweep_exe_dir st ~root dir) [ "bin"; "bench" ];
  let typed_units =
    if not typed then 0
    else begin
      let units = Typed_loader.load ~root in
      (if units = [] then
         st.s_findings <-
           st.s_findings
           @ [
               D.v ~file:"." ~line:1 ~rule:"T0"
                 ~suggestion:"run `dune build @all` before linting"
                 "typed pass found no .cmt files; W2/W3/B1/B2/E2 did not run";
             ]
       else
         st.s_findings <- st.s_findings @ lint_typed_units units);
      let design_path = Filename.concat root "DESIGN.md" in
      if Sys.file_exists design_path then
        st.s_findings <-
          st.s_findings
          @ Metric_rules.check_design ~design_path:"DESIGN.md"
              (read_file design_path);
      List.length units
    end
  in
  let unwaived, waived =
    List.partition_map
      (fun d ->
        match
          List.find_opt (fun w -> Waiver.covers w d) st.s_waivers
        with
        | Some w -> Right (d, w)
        | None -> Left d)
      st.s_findings
  in
  {
    findings = List.sort D.order unwaived;
    waived = List.sort (fun (a, _) (b, _) -> D.order a b) waived;
    waivers = st.s_waivers;
    libs = st.s_libs;
    files_seen = st.s_files;
    typed_units;
  }

let pp_report ppf r =
  if r.findings <> [] then begin
    Format.fprintf ppf "%a" D.pp_list r.findings;
    Format.fprintf ppf "@.%d finding(s) in %d file(s).@."
      (List.length r.findings) r.files_seen
  end
  else
    Format.fprintf ppf
      "gcs_lint: clean — %d file(s), %d librar%s, %d typed unit(s) checked.@."
      r.files_seen (List.length r.libs)
      (if List.length r.libs = 1 then "y" else "ies")
      r.typed_units;
  if r.waived <> [] then begin
    Format.fprintf ppf "%d waived finding(s):@." (List.length r.waived);
    List.iter
      (fun (d, w) ->
        Format.fprintf ppf "  %s:%d [%s] — waived: %s@." d.D.file d.D.line
          d.D.rule w.Waiver.reason)
      r.waived
  end
