(* Driver: walk lib/**, lint every .ml against the AST rules, every dune
   file against the architecture spec, apply waivers, and report. *)

module D = Diagnostic

type result = {
  findings : D.t list;  (* unwaived — these fail the build *)
  waived : (D.t * Waiver.t) list;
  waivers : Waiver.t list;
  libs : Arch.dune_lib list;
  files_seen : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let list_dir path =
  if Sys.file_exists path && Sys.is_directory path then
    List.sort String.compare (Array.to_list (Sys.readdir path))
  else []

(* Lint one source string under a (possibly virtual) path: returns
   (unwaived, waived, waivers).  This is the unit the fixture tests use. *)
let lint_file_source ~path source =
  let ast_findings, _roots = Rules.lint_source ~path source in
  let waivers, w1s = Waiver.scan ~file:path source in
  let unwaived, waived =
    List.partition_map
      (fun d ->
        match List.find_opt (fun w -> Waiver.covers w d) waivers with
        | Some w -> Right (d, w)
        | None -> Left d)
      (ast_findings @ w1s)
  in
  (List.sort D.order unwaived, waived, waivers)

(* Full repo run, rooted at [root] (the directory containing lib/). *)
let run ~root =
  let lib_root = Filename.concat root "lib" in
  let findings = ref [] in
  let waived = ref [] in
  let waivers = ref [] in
  let libs = ref [] in
  let files_seen = ref 0 in
  (* per-library: roots referenced across all its files, with one source
     file to blame per root *)
  List.iter
    (fun dir ->
      let dir_path = Filename.concat lib_root dir in
      if Sys.is_directory dir_path then begin
        let entries = list_dir dir_path in
        let dune_path = Filename.concat dir_path "dune" in
        let dune_libs =
          if Sys.file_exists dune_path then
            Arch.parse_dune
              ~dune_file:(Printf.sprintf "lib/%s/dune" dir)
              (read_file dune_path)
          else []
        in
        libs := !libs @ dune_libs;
        List.iter
          (fun l -> findings := Arch.check_declared l @ !findings)
          dune_libs;
        List.iter
          (fun entry ->
            if Filename.check_suffix entry ".ml" then begin
              incr files_seen;
              let path = Printf.sprintf "lib/%s/%s" dir entry in
              let source = read_file (Filename.concat dir_path entry) in
              let ast_findings, roots = Rules.lint_source ~path source in
              let ws, w1s = Waiver.scan ~file:path source in
              waivers := !waivers @ ws;
              let l2s =
                List.concat_map
                  (fun l -> Arch.check_usage ~lib:l ~file:path ~roots)
                  dune_libs
              in
              let unwaived, here_waived =
                List.partition_map
                  (fun d ->
                    match List.find_opt (fun w -> Waiver.covers w d) ws with
                    | Some w -> Right (d, w)
                    | None -> Left d)
                  (ast_findings @ w1s @ l2s)
              in
              findings := unwaived @ !findings;
              waived := here_waived @ !waived
            end)
          entries
      end)
    (list_dir lib_root);
  {
    findings = List.sort D.order !findings;
    waived =
      List.sort (fun (a, _) (b, _) -> D.order a b) !waived;
    waivers = !waivers;
    libs = !libs;
    files_seen = !files_seen;
  }

let pp_report ppf r =
  if r.findings <> [] then begin
    Format.fprintf ppf "%a" D.pp_list r.findings;
    Format.fprintf ppf "@.%d finding(s) in %d file(s).@."
      (List.length r.findings) r.files_seen
  end
  else
    Format.fprintf ppf "gcs_lint: clean — %d file(s), %d librar%s checked.@."
      r.files_seen (List.length r.libs)
      (if List.length r.libs = 1 then "y" else "ies");
  if r.waived <> [] then begin
    Format.fprintf ppf "%d waived finding(s):@." (List.length r.waived);
    List.iter
      (fun (d, w) ->
        Format.fprintf ppf "  %s:%d [%s] — waived: %s@." d.D.file d.D.line
          d.D.rule w.Waiver.reason)
      r.waived
  end
