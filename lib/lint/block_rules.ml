(* Rules B1/B2: what must not happen inside the event loop.

   B1 — a blocking primitive reachable from any loop callback.  The
   select loop in [Evloop] is single-threaded: one [Unix.sleep] (or a
   blocking read on a file descriptor nobody marked non-blocking)
   inside a callback stalls every connection the server carries.  Hard
   blockers are flagged wherever they are reachable; soft blockers
   (read/write/connect/accept...) are sanctioned inside a compilation
   unit that calls [Unix.set_nonblock], because that unit has declared
   its descriptors non-blocking and handles EWOULDBLOCK instead of
   stalling.

   B2 — a raise that can escape a protocol *message handler*.  A
   handler that raises halfway through mutating protocol state leaves
   the replica torn: counters bumped, queues half-drained, views
   half-installed.  Only lexically unprotected raise sites inside
   [Catalog.b2_site_scope] are flagged (lib/net's codec rejects are
   caught at the frame boundary, see the catalog), and only when the
   site is reachable from a Handler root.  Intentional [Exit]-style
   control flow keeps working through the ordinary waiver syntax. *)

module D = Diagnostic

let check (g : Callgraph.t) =
  let ds = ref [] in
  let add ~file ~line ~suggestion msg rule =
    ds := D.v ~file ~line ~rule ~suggestion msg :: !ds
  in
  (* ---- B1: blocking calls reachable from any loop entry ---- *)
  let parent = Callgraph.reach g ~kinds:[ Callgraph.Loop; Callgraph.Handler ] in
  let visited =
    Hashtbl.fold (fun name _ acc -> name :: acc) parent []
    |> List.sort String.compare
  in
  List.iter
    (fun name ->
      match Callgraph.find g name with
      | None -> ()
      | Some node ->
          let sanctioned =
            Hashtbl.mem g.Callgraph.nonblock_sources node.Callgraph.source
          in
          List.iter
            (fun (callee, line) ->
              let hard = List.mem callee Catalog.hard_blocking in
              let soft = List.mem callee Catalog.soft_blocking in
              if hard || (soft && not sanctioned) then
                add ~file:node.Callgraph.source ~line
                  ~suggestion:
                    (if hard then
                       "move the blocking call off the loop (timer + state \
                        machine), or drop it"
                     else
                       "call Unix.set_nonblock on the unit's fds and handle \
                        EWOULDBLOCK")
                  (Printf.sprintf
                     "%s call %s reachable from the event loop via %s"
                     (if hard then "blocking" else "possibly-blocking")
                     callee
                     (Callgraph.chain parent name))
                  "B1")
            (List.sort_uniq compare node.Callgraph.calls))
    visited;
  (* ---- B2: escaping raises reachable from a message handler ---- *)
  let hparent = Callgraph.reach g ~kinds:[ Callgraph.Handler ] in
  let hvisited =
    Hashtbl.fold (fun name _ acc -> name :: acc) hparent []
    |> List.sort String.compare
  in
  List.iter
    (fun name ->
      match Callgraph.find g name with
      | None -> ()
      | Some node ->
          if Catalog.b2_site_scope node.Callgraph.source then
            List.iter
              (fun (site : Callgraph.raise_site) ->
                if not site.Callgraph.r_protected then
                  add ~file:node.Callgraph.source ~line:site.Callgraph.r_line
                    ~suggestion:
                      "catch it before protocol state mutates, or waive with \
                       a reason if the escape is intentional"
                    (Printf.sprintf
                       "raise %s can escape a message handler (reached via %s)"
                       site.Callgraph.r_exn
                       (Callgraph.chain hparent name))
                    "B2")
              (List.sort
                 (fun (a : Callgraph.raise_site) b ->
                   compare a.Callgraph.r_line b.Callgraph.r_line)
                 node.Callgraph.raises))
    hvisited;
  List.rev !ds
