(* Cross-module call graph over the typed units, with event-loop roots.

   Nodes are top-level definitions (canonical dotted names such as
   [Gc_runtime_unix.Fconn.on_readable]); a lambda handed directly to a
   callback registrar becomes a synthetic node of its own.  Edges are
   [Texp_ident] references appearing inside a definition's body — an
   over-approximation of "may call" that is exactly what the blocking
   and escape rules need: if a name is never even mentioned, it cannot
   run.

   Roots are the places control re-enters user code from the event
   loop: arguments to the registrars in [Catalog.registrars], lambdas
   stored in [Gc_kernel.Runtime.t] capability records, and callbacks
   installed through the record's [register]/[schedule] fields.
   [Handler] roots are the subset that process protocol messages; rule
   B2 cares only about those.

   Shadowed top-level definitions keep distinct nodes: the later
   definition owns the plain canonical name (it is the one the rest of
   the repo links against) and the earlier one is renamed to
   [name@line].  Local calls still resolve exactly, by Ident stamp. *)

type root_kind = Catalog.cb_kind = Loop | Handler

type raise_site = {
  r_exn : string;  (* best-effort exception name: "Exit", "Failure", "?" *)
  r_line : int;
  r_protected : bool;  (* lexically inside a try (or exception match) *)
}

type node = {
  mutable name : string;
  source : string;  (* repo-relative source of the defining unit *)
  def_line : int;
  mutable calls : (string * int) list;  (* callee canonical name, call line *)
  mutable root : root_kind option;
  mutable root_line : int;  (* registration site, for diagnostics *)
  mutable raises : raise_site list;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  (* source files whose unit calls Unix.set_nonblock: their soft-blocking
     syscalls are sanctioned (rule B1). *)
  nonblock_sources : (string, unit) Hashtbl.t;
  mutable unit_count : int;
}

let create () =
  {
    nodes = Hashtbl.create 256;
    nonblock_sources = Hashtbl.create 8;
    unit_count = 0;
  }

let find t name = Hashtbl.find_opt t.nodes name

let mark_root node kind line =
  (* Handler is the stronger claim (B2 applies); never downgrade. *)
  (match (node.root, kind) with
  | Some Handler, Loop -> ()
  | _ -> node.root <- Some kind);
  if node.root_line = 0 then node.root_line <- line

(* ---------- pass A: collect definitions ---------- *)

(* [def_at] keys definitions by the start offset of their binding
   pattern so pass B can find the node again while walking the same
   tree. *)
type unit_ctx = {
  u : Typed_loader.unit_info;
  resolver : Typed_loader.resolver;
  stamps : (string, node) Hashtbl.t;  (* Ident.unique_name -> node *)
  def_at : (int, node) Hashtbl.t;     (* pat/item start offset -> node *)
}

let add_def t ctx ~prefix ~line ~key ?stamp base_name =
  let full = prefix ^ "." ^ base_name in
  (match Hashtbl.find_opt t.nodes full with
  | Some old ->
      (* shadowed: earlier def moves aside, later one takes the name *)
      let aside = Printf.sprintf "%s@%d" full old.def_line in
      old.name <- aside;
      Hashtbl.remove t.nodes full;
      Hashtbl.replace t.nodes aside old
  | None -> ());
  let node =
    {
      name = full;
      source = ctx.u.Typed_loader.source;
      def_line = line;
      calls = [];
      root = None;
      root_line = 0;
      raises = [];
    }
  in
  Hashtbl.replace t.nodes full node;
  Hashtbl.replace ctx.def_at key node;
  Option.iter (fun s -> Hashtbl.replace ctx.stamps s node) stamp;
  node

let rec collect_defs t ctx prefix (items : Typedtree.structure_item list) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      let item_line = Typed_loader.line_of item.Typedtree.str_loc in
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              let pat = vb.Typedtree.vb_pat in
              let key = pat.Typedtree.pat_loc.Location.loc_start.Lexing.pos_cnum in
              let line = Typed_loader.line_of pat.Typedtree.pat_loc in
              match pat.Typedtree.pat_desc with
              | Typedtree.Tpat_var (id, _) ->
                  ignore
                    (add_def t ctx ~prefix ~line ~key
                       ~stamp:(Ident.unique_name id) (Ident.name id))
              | _ ->
                  (* [let () = ...], tuple bindings: body still needs a
                     home so its calls and raises are attributed. *)
                  ignore
                    (add_def t ctx ~prefix ~line ~key
                       (Printf.sprintf "<def@%d>" line)))
            vbs
      | Typedtree.Tstr_eval (e, _) ->
          let key = e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_cnum in
          ignore
            (add_def t ctx ~prefix ~line:item_line ~key
               (Printf.sprintf "<eval@%d>" item_line))
      | Typedtree.Tstr_module
          {
            Typedtree.mb_id = Some id;
            mb_expr = { Typedtree.mod_desc = Typedtree.Tmod_structure str; _ };
            _;
          } ->
          collect_defs t ctx
            (prefix ^ "." ^ Ident.name id)
            str.Typedtree.str_items
      | _ -> ())
    items

(* ---------- pass B: edges, roots, raises ---------- *)

let exn_name_of_arg (args : (Asttypes.arg_label * Typedtree.expression option) list)
    =
  match args with
  | (_, Some { Typedtree.exp_desc = Typedtree.Texp_construct (_, cd, _); _ })
    :: _ ->
      cd.Types.cstr_name
  | _ -> "?"

let visit_unit t ctx =
  let r = ctx.resolver in
  let current = ref None in
  let try_depth = ref 0 in
  (* lambdas scheduled to become synthetic root nodes, keyed by the
     lambda expression's start offset *)
  let pending : (int, string * root_kind) Hashtbl.t = Hashtbl.create 8 in
  let resolve (p : Path.t) =
    match p with
    | Path.Pident id -> (
        match Hashtbl.find_opt ctx.stamps (Ident.unique_name id) with
        | Some node -> Some node.name
        | None -> None (* parameter or let-local: not a graph name *))
    | _ -> Some (Typed_loader.canon_of_path r p)
  in
  let record_call name line =
    match !current with
    | Some node -> node.calls <- (name, line) :: node.calls
    | None -> ()
  in
  let record_raise exn line =
    match !current with
    | Some node ->
        node.raises <-
          { r_exn = exn; r_line = line; r_protected = !try_depth > 0 }
          :: node.raises
    | None -> ()
  in
  (* An expression handed to a registrar: a literal lambda becomes its
     own synthetic root, anything resolving to a known definition is
     marked a root directly (unwrapping [Some cb] and partial
     applications). *)
  let rec claim_callback kind (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_construct (_, _, [ inner ]) ->
        (* [Some (fun () -> ...)]: the lambda inside the option is the
           callback *)
        claim_callback kind inner
    | Typedtree.Texp_function _ ->
        let line = Typed_loader.line_of e.Typedtree.exp_loc in
        let owner =
          match !current with Some n -> n.name | None -> r.Typed_loader.unit_canon
        in
        let name = Printf.sprintf "%s.<cb@%d>" owner line in
        Hashtbl.replace pending
          e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_cnum (name, kind)
    | _ -> (
        match Typed_loader.head_path e with
        | Some p -> (
            match resolve p with
            | Some name -> (
                match find t name with
                | Some node ->
                    mark_root node kind (Typed_loader.line_of e.Typedtree.exp_loc)
                | None -> ())
            | None -> ())
        | None -> ())
  in
  (* Type paths sometimes surface in mangled unit form
     ([Gc_kernel__Runtime.t]); normalise so the comparison against
     [Catalog.runtime_record_type] sees the canonical dotted name. *)
  let record_type_name (ty : Types.type_expr) =
    match Types.get_desc ty with
    | Types.Tconstr (p, _, _) ->
        Some
          (Typed_loader.canon_of_unit_name
             (Typed_loader.canon_of_path r p))
    | _ -> None
  in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) ->
        (match resolve p with
        | Some name -> record_call name (Typed_loader.line_of e.Typedtree.exp_loc)
        | None -> ());
        default_iterator.expr sub e
    | Typedtree.Texp_function _ -> (
        let key = e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_cnum in
        match Hashtbl.find_opt pending key with
        | Some (name, kind) ->
            Hashtbl.remove pending key;
            let node =
              {
                name;
                source = ctx.u.Typed_loader.source;
                def_line = Typed_loader.line_of e.Typedtree.exp_loc;
                calls = [];
                root = Some kind;
                root_line = Typed_loader.line_of e.Typedtree.exp_loc;
                raises = [];
              }
            in
            Hashtbl.replace t.nodes name node;
            let saved = !current and saved_depth = !try_depth in
            current := Some node;
            try_depth := 0;
            default_iterator.expr sub e;
            current := saved;
            try_depth := saved_depth
        | None -> default_iterator.expr sub e)
    | Typedtree.Texp_apply (f, args) ->
        (match Typed_loader.head_path f with
        | Some p -> (
            let canon = Option.value (resolve p) ~default:"" in
            (match List.assoc_opt canon Catalog.registrars with
            | Some kind ->
                List.iter
                  (fun (_, a) -> Option.iter (claim_callback kind) a)
                  args
            | None -> ());
            if List.mem canon Catalog.raise_fns then
              let exn =
                match canon with
                | "Stdlib.failwith" -> "Failure"
                | "Stdlib.invalid_arg" -> "Invalid_argument"
                | _ -> exn_name_of_arg args
              in
              record_raise exn (Typed_loader.line_of e.Typedtree.exp_loc))
        | None -> (
            (* calls through a capability record field:
               [runtime.Runtime.register dispatch] *)
            match f.Typedtree.exp_desc with
            | Typedtree.Texp_field (recd, _, lbl) -> (
                match
                  ( record_type_name recd.Typedtree.exp_type,
                    List.assoc_opt lbl.Types.lbl_name Catalog.field_registrars )
                with
                | Some ty, Some kind when ty = Catalog.runtime_record_type ->
                    List.iter
                      (fun (_, a) -> Option.iter (claim_callback kind) a)
                      args
                | _ -> ())
            | _ -> ()));
        default_iterator.expr sub e
    | Typedtree.Texp_record { fields; _ } ->
        (* building a capability record: its lambdas are what protocol
           code will call from inside handlers *)
        (match record_type_name e.Typedtree.exp_type with
        | Some ty when ty = Catalog.runtime_record_type ->
            Array.iter
              (fun (_, (def : Typedtree.record_label_definition)) ->
                match def with
                | Typedtree.Overridden (_, v) -> claim_callback Handler v
                | Typedtree.Kept _ -> ())
              fields
        | _ -> ());
        default_iterator.expr sub e
    | Typedtree.Texp_try (body, _cases) ->
        incr try_depth;
        sub.expr sub body;
        decr try_depth;
        (* handler cases run outside the protection of this try *)
        List.iter (fun (c : _ Typedtree.case) -> sub.expr sub c.Typedtree.c_rhs)
          _cases
    | Typedtree.Texp_match (scrut, cases, _) ->
        let has_exn_case =
          List.exists
            (fun (c : _ Typedtree.case) ->
              match Typedtree.split_pattern c.Typedtree.c_lhs with
              | _, Some _ -> true
              | _ -> false)
            cases
        in
        if has_exn_case then (
          incr try_depth;
          sub.expr sub scrut;
          decr try_depth)
        else sub.expr sub scrut;
        List.iter
          (fun (c : _ Typedtree.case) ->
            Option.iter (sub.expr sub) c.Typedtree.c_guard;
            sub.expr sub c.Typedtree.c_rhs)
          cases
    | _ -> default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  (* walk item by item so [current] tracks the enclosing definition *)
  let rec walk_items (items : Typedtree.structure_item list) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                let key =
                  vb.Typedtree.vb_pat.Typedtree.pat_loc.Location.loc_start
                    .Lexing.pos_cnum
                in
                current := Hashtbl.find_opt ctx.def_at key;
                try_depth := 0;
                it.expr it vb.Typedtree.vb_expr;
                current := None)
              vbs
        | Typedtree.Tstr_eval (e, _) ->
            let key = e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_cnum in
            current := Hashtbl.find_opt ctx.def_at key;
            try_depth := 0;
            it.expr it e;
            current := None
        | Typedtree.Tstr_module
            {
              Typedtree.mb_expr =
                { Typedtree.mod_desc = Typedtree.Tmod_structure str; _ };
              _;
            } ->
            walk_items str.Typedtree.str_items
        | _ -> ())
      items
  in
  walk_items ctx.u.Typed_loader.structure.Typedtree.str_items;
  (* nonblock sanction: any reference to Unix.set_nonblock in this unit *)
  let uses_nonblock =
    Hashtbl.fold
      (fun _ (node : node) acc ->
        acc
        || node.source = ctx.u.Typed_loader.source
           && List.exists (fun (c, _) -> c = Catalog.nonblock_marker) node.calls)
      t.nodes false
  in
  if uses_nonblock then
    Hashtbl.replace t.nonblock_sources ctx.u.Typed_loader.source ()

let build (units : Typed_loader.unit_info list) =
  let t = create () in
  t.unit_count <- List.length units;
  let ctxs =
    List.map
      (fun (u : Typed_loader.unit_info) ->
        let resolver =
          Typed_loader.build_resolver ~canon:u.Typed_loader.canon
            u.Typed_loader.structure
        in
        let ctx =
          { u; resolver; stamps = Hashtbl.create 64; def_at = Hashtbl.create 64 }
        in
        collect_defs t ctx u.Typed_loader.canon
          u.Typed_loader.structure.Typedtree.str_items;
        ctx)
      units
  in
  List.iter (visit_unit t) ctxs;
  t

(* ---------- reachability ---------- *)

let roots t =
  Hashtbl.fold
    (fun _ node acc ->
      match node.root with Some k -> (node, k) :: acc | None -> acc)
    t.nodes []
  |> List.sort (fun (a, _) (b, _) -> String.compare a.name b.name)

(* BFS from the roots of the given kinds.  Returns visited-node ->
   parent-name (roots map to themselves), deterministically: roots and
   successors are explored in sorted order. *)
let reach t ~kinds =
  let parent : (string, string) Hashtbl.t = Hashtbl.create 128 in
  let queue = Queue.create () in
  List.iter
    (fun (node, k) ->
      if List.mem k kinds && not (Hashtbl.mem parent node.name) then (
        Hashtbl.replace parent node.name node.name;
        Queue.add node.name queue))
    (roots t);
  while not (Queue.is_empty queue) do
    let name = Queue.take queue in
    match find t name with
    | None -> ()
    | Some node ->
        List.iter
          (fun (callee, _) ->
            if (not (Hashtbl.mem parent callee)) && Hashtbl.mem t.nodes callee
            then (
              Hashtbl.replace parent callee name;
              Queue.add callee queue))
          (List.sort_uniq compare node.calls)
  done;
  parent

(* "root -> a -> b" chain for diagnostics. *)
let chain parent name =
  let rec go name acc =
    match Hashtbl.find_opt parent name with
    | Some p when p <> name -> go p (name :: acc)
    | Some _ -> name :: acc
    | None -> acc
  in
  String.concat " -> " (go name [])

(* ---------- dot output ---------- *)

let to_dot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph callgraph {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  let parent = reach t ~kinds:[ Loop; Handler ] in
  let visited =
    Hashtbl.fold (fun name _ acc -> name :: acc) parent []
    |> List.sort String.compare
  in
  List.iter
    (fun name ->
      match find t name with
      | None -> ()
      | Some node ->
          let attrs =
            match node.root with
            | Some Handler -> " [style=filled, fillcolor=lightsalmon]"
            | Some Loop -> " [style=filled, fillcolor=lightblue]"
            | None -> ""
          in
          Buffer.add_string buf (Printf.sprintf "  \"%s\"%s;\n" name attrs))
    visited;
  List.iter
    (fun name ->
      match find t name with
      | None -> ()
      | Some node ->
          List.iter
            (fun (callee, _) ->
              if Hashtbl.mem parent callee then
                Buffer.add_string buf
                  (Printf.sprintf "  \"%s\" -> \"%s\";\n" name callee))
            (List.sort_uniq compare node.calls))
    visited;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
