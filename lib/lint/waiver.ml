(* Waiver annotations, modeled on the fuzzer's audit-waiver policy: a
   finding can be silenced only by an in-source comment that names the rule
   and gives a written reason,

     (* gcs-lint: allow D3 — commutative fold, order cannot matter *)

   The dash may be an em dash or "--".  A waiver covers findings located on
   the comment's lines or on the first line after the comment ends.
   Malformed waivers (unknown rule id, missing reason) are themselves
   findings (rule W1) so they cannot silently rot. *)

type t = {
  file : string;
  start_line : int;  (* first line of the comment *)
  end_line : int;    (* last line of the comment *)
  rules : string list;
  reason : string;
}

let marker = "gcs-lint:"

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let split_words s =
  String.split_on_char ' '
    (String.map (fun c -> if is_space c then ' ' else c) s)
  |> List.filter (fun w -> w <> "")

(* Split "D3, D4 — reason" at the first em dash or "--". *)
let split_reason s =
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else if i + 1 < n && s.[i] = '-' && s.[i + 1] = '-' then
      Some (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))
    else if
      i + 2 < n && s.[i] = '\xe2' && s.[i + 1] = '\x80' && s.[i + 2] = '\x94'
    then Some (String.sub s 0 i, String.sub s (i + 3) (n - i - 3))
    else go (i + 1)
  in
  go 0

(* Parse one comment body; [None] when it is not a waiver at all. *)
let parse ~file ~start_line ~end_line text :
    (t option, Diagnostic.t) result =
  match find_sub text marker with
  | None -> Ok None
  | Some i -> (
      let bad msg =
        Error
          (Diagnostic.v ~file ~line:start_line ~rule:"W1"
             ~suggestion:
               "write: (* gcs-lint: allow <RULE>[, <RULE>] — <reason> *)"
             msg)
      in
      let rest =
        String.trim
          (String.sub text (i + String.length marker)
             (String.length text - i - String.length marker))
      in
      match split_words rest with
      | "allow" :: _ -> (
          let after_allow =
            String.trim (String.sub rest 5 (String.length rest - 5))
          in
          match split_reason after_allow with
          | None -> bad "waiver has no reason (expected an em dash or -- before it)"
          | Some (rules_part, reason) ->
              (* collapse the comment's line breaks / indentation *)
              let reason = String.concat " " (split_words reason) in
              let rules =
                split_words
                  (String.map (fun c -> if c = ',' then ' ' else c) rules_part)
              in
              if reason = "" then bad "waiver has an empty reason"
              else if rules = [] then bad "waiver names no rule id"
              else (
                match
                  List.find_opt
                    (fun r -> not (List.mem r Catalog.rule_ids))
                    rules
                with
                | Some r -> bad (Printf.sprintf "waiver names unknown rule %S" r)
                | None ->
                    Ok (Some { file; start_line; end_line; rules; reason })))
      | _ -> bad "gcs-lint comment is not of the form 'gcs-lint: allow ...'")

(* All comments of a source file, via the real OCaml lexer (so comment
   extents are exact, not line-guessed). *)
let comments ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Lexer.init ();
  (try
     let rec go () = match Lexer.token lexbuf with Parser.EOF -> () | _ -> go ()
     in
     go ()
   with _ -> ());
  Lexer.comments ()

(* Scan a file: its waivers plus W1 findings for malformed ones. *)
let scan ~file source : t list * Diagnostic.t list =
  List.fold_left
    (fun (ws, ds) (text, (loc : Location.t)) ->
      let start_line = loc.loc_start.pos_lnum
      and end_line = loc.loc_end.pos_lnum in
      match parse ~file ~start_line ~end_line text with
      | Ok None -> (ws, ds)
      | Ok (Some w) -> (w :: ws, ds)
      | Error d -> (ws, d :: ds))
    ([], [])
    (comments ~file source)

let covers w (d : Diagnostic.t) =
  d.Diagnostic.file = w.file
  && d.Diagnostic.line >= w.start_line
  && d.Diagnostic.line <= w.end_line + 1
  && List.mem d.Diagnostic.rule w.rules

let pp ppf w =
  Format.fprintf ppf "%s:%d: waives %s — %s" w.file w.start_line
    (String.concat "," w.rules) w.reason
