(* Architecture conformance: parse each lib/<dir>/dune stanza, build the
   actual dependency graph, and check it against the declared DAG in
   Catalog.arch.

   L1 fires on the *declared* edges (a dune (libraries ...) entry the spec
   does not allow, or a library the spec does not know).  L2 fires on the
   *used* edges: module roots the AST pass saw that are either not declared
   in dune (a dependency smuggled in transitively) or not allowed by the
   spec.  The AB-GB column reaching gc_traditional / gc_totem gets its own
   pointed message, because that edge is the one the paper's section 4.1
   architecture exists to forbid. *)

module D = Diagnostic

(* ---------- a tiny line-tracking s-expression reader ---------- *)

type sexp = Atom of string * int | List of sexp list * int

let parse_sexps ~file:_ source =
  let n = String.length source in
  let line = ref 1 in
  let pos = ref 0 in
  let peek () = if !pos < n then Some source.[!pos] else None in
  let advance () =
    (if !pos < n && source.[!pos] = '\n' then incr line);
    incr pos
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        let rec to_eol () =
          match peek () with
          | Some '\n' | None -> ()
          | Some _ ->
              advance ();
              to_eol ()
        in
        to_eol ();
        skip_ws ()
    | _ -> ()
  in
  let read_string () =
    let b = Buffer.create 16 in
    advance ();
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              Buffer.add_char b c;
              advance ()
          | None -> ());
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      | None -> ()
    in
    go ();
    Buffer.contents b
  in
  let read_atom () =
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';') | None -> ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec read_sexp () =
    skip_ws ();
    let ln = !line in
    match peek () with
    | None -> None
    | Some '(' ->
        advance ();
        let rec items acc =
          skip_ws ();
          match peek () with
          | Some ')' ->
              advance ();
              List.rev acc
          | None -> List.rev acc
          | _ -> (
              match read_sexp () with
              | Some s -> items (s :: acc)
              | None -> List.rev acc)
        in
        Some (List (items [], ln))
    | Some ')' ->
        advance ();
        read_sexp ()
    | Some '"' -> Some (Atom (read_string (), ln))
    | Some _ -> Some (Atom (read_atom (), ln))
  in
  let rec top acc =
    match read_sexp () with None -> List.rev acc | Some s -> top (s :: acc)
  in
  top []

(* ---------- dune stanza extraction ---------- *)

type dune_lib = {
  name : string;
  name_line : int;
  libraries : (string * int) list;  (* dep name, line in the dune file *)
  dune_file : string;
}

let field name = function
  | List (Atom (a, _) :: rest, _) when a = name -> Some rest
  | _ -> None

let extract_libs ~dune_file sexps =
  List.filter_map
    (function
      | List (Atom ("library", _) :: fields, ln) ->
          let name, name_line =
            List.find_map
              (fun f ->
                match field "name" f with
                | Some [ Atom (n, l) ] -> Some (n, l)
                | _ -> None)
              fields
            |> Option.value ~default:("?", ln)
          in
          let libraries =
            List.concat_map
              (fun f ->
                match field "libraries" f with
                | Some deps ->
                    List.filter_map
                      (function Atom (d, l) -> Some (d, l) | _ -> None)
                      deps
                | None -> [])
              fields
          in
          Some { name; name_line; libraries; dune_file }
      | _ -> None)
    sexps

let parse_dune ~dune_file source =
  extract_libs ~dune_file (parse_sexps ~file:dune_file source)

(* ---------- L1: declared edges vs the spec ---------- *)

let check_declared (lib : dune_lib) : D.t list =
  match Catalog.find_layer lib.name with
  | None ->
      [
        D.v ~file:lib.dune_file ~line:lib.name_line ~rule:"L1"
          ~suggestion:
            "add the library (with its layer rank and allowed deps) to \
             Gc_lint.Catalog.arch"
          (Printf.sprintf "library %S is not in the declared architecture"
             lib.name);
      ]
  | Some layer ->
      List.filter_map
        (fun (dep, line) ->
          let allowed =
            if Catalog.internal_lib dep then List.mem dep layer.Catalog.deps
            else List.mem dep layer.Catalog.ext
          in
          if allowed then None
          else
            let message, suggestion =
              if
                List.mem lib.name Catalog.abgb_libs
                && List.mem dep Catalog.legacy_libs
              then
                ( Printf.sprintf
                    "AB-GB layer %s depends on competing stack %s" lib.name dep,
                  "the AB-GB column must never reach gc_traditional/gc_totem \
                   (paper section 4.1); route through an interface below \
                   membership instead" )
              else
                ( Printf.sprintf "%s -> %s is not an allowed edge" lib.name dep,
                  "either remove the dependency or, if the architecture \
                   really changed, update Gc_lint.Catalog.arch and DESIGN.md \
                   section 11 together" )
            in
            Some (D.v ~file:lib.dune_file ~line ~rule:"L1" ~suggestion message))
        lib.libraries

(* ---------- L2: used module roots vs declared + spec ---------- *)

let check_usage ~(lib : dune_lib) ~file ~roots : D.t list =
  match Catalog.find_layer lib.name with
  | None -> []
  | Some layer ->
      let self = Catalog.module_of_lib lib.name in
      List.filter_map
        (fun root ->
          if root = self then None
          else
            match Catalog.lib_of_module root with
            | None -> None (* not one of ours: external or local module *)
            | Some dep ->
                let declared =
                  List.exists (fun (d, _) -> d = dep) lib.libraries
                in
                let allowed = List.mem dep layer.Catalog.deps in
                if declared && allowed then None
                else if
                  List.mem lib.name Catalog.abgb_libs
                  && List.mem dep Catalog.legacy_libs
                then
                  Some
                    (D.v ~file ~line:1 ~rule:"L2"
                       ~suggestion:
                         "the AB-GB column must never reach \
                          gc_traditional/gc_totem (paper section 4.1)"
                       (Printf.sprintf
                          "AB-GB module references competing stack %s (%s)"
                          root dep))
                else if not declared then
                  Some
                    (D.v ~file ~line:1 ~rule:"L2"
                       ~suggestion:
                         (Printf.sprintf
                            "add %s to (libraries ...) in %s — implicit \
                             transitive deps hide real coupling"
                            dep lib.dune_file)
                       (Printf.sprintf "module %s used but %s is not declared"
                          root dep))
                else
                  Some
                    (D.v ~file ~line:1 ~rule:"L2"
                       ~suggestion:
                         "either drop the reference or update \
                          Gc_lint.Catalog.arch and DESIGN.md section 11 \
                          together"
                       (Printf.sprintf
                          "module %s (%s) is outside %s's allowed layers" root
                          dep lib.name)))
        roots

(* ---------- dot dump ---------- *)

let to_dot ppf (libs : dune_lib list) =
  let bad (l : dune_lib) dep =
    match Catalog.find_layer l.name with
    | None -> true
    | Some layer ->
        if Catalog.internal_lib dep then not (List.mem dep layer.Catalog.deps)
        else not (List.mem dep layer.Catalog.ext)
  in
  Format.fprintf ppf "digraph gcs_architecture {@.";
  Format.fprintf ppf "  rankdir=BT;@.  node [shape=box, fontname=\"sans\"];@.";
  (* group by declared rank so the layering is visible in the layout *)
  let ranks =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun l ->
           Option.map (fun la -> la.Catalog.rank) (Catalog.find_layer l.name))
         libs)
  in
  List.iter
    (fun r ->
      let same =
        List.filter
          (fun l ->
            match Catalog.find_layer l.name with
            | Some la -> la.Catalog.rank = r
            | None -> false)
          libs
      in
      Format.fprintf ppf "  { rank=same; %s }@."
        (String.concat " "
           (List.map (fun l -> Printf.sprintf "%S;" l.name) same)))
    ranks;
  List.iter
    (fun (l : dune_lib) ->
      List.iter
        (fun (dep, _) ->
          if Catalog.internal_lib dep then
            if bad l dep then
              Format.fprintf ppf "  %S -> %S [color=red, penwidth=2];@." l.name
                dep
            else Format.fprintf ppf "  %S -> %S;@." l.name dep)
        l.libraries)
    libs;
  Format.fprintf ppf "}@."
