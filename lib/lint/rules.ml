(* AST rules, driven by compiler-libs' [Ast_iterator] over the parsetree.

   D1  no Random.* / Unix.* / Sys.time outside lib/sim/rng.ml (all libs):
       every random draw must flow through the seeded, splittable Rng so a
       replay of the same seed is bit-for-bit identical.
   D2  no physical equality ==/!= in protocol modules: message identity
       must be structural (ids), never address-based.
   D3  no unordered Hashtbl.iter/fold in protocol modules, unless the fold
       result is piped straight into a List sort, or the traversal goes
       through Gc_sim.Sorted.
   D4  no bare polymorphic [compare] (or (=)/(<>) as a function value) at
       sort/comparator positions in protocol modules: comparators on
       protocol state must be typed and explicit.
   E1  every Process.event call uses a component registered in
       Catalog.components, and its ~msg (when present) is a literal or
       Printf.sprintf whose format starts with a registered prefix for
       that component.

   The pass also records which Gc_* / Gcs top-level modules a file
   references, feeding the L2 module-level dependency check in Arch. *)

module D = Diagnostic

let lid_str lid = String.concat "." (Longident.flatten lid)

let strip_stdlib s =
  if String.length s > 7 && String.sub s 0 7 = "Stdlib." then
    String.sub s 7 (String.length s - 7)
  else s

let sort_family =
  [
    "List.sort"; "List.stable_sort"; "List.sort_uniq"; "List.fast_sort";
    "List.merge"; "Array.sort"; "Array.stable_sort"; "Array.fast_sort";
  ]

let unordered_traversals =
  [
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let banned_ambient = [ "Sys.time"; "Sys.cpu_time" ]
let banned_roots = [ "Random"; "Unix" ]

type acc = {
  file : string;
  protocol : bool;
  rng_exempt : bool;
  mutable findings : D.t list;
  (* loc offsets of Hashtbl.fold applications sanctioned by a sort *)
  sanctioned : (int, unit) Hashtbl.t;
  used_roots : (string, unit) Hashtbl.t;
}

let line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let add acc (loc : Location.t) ~rule ~suggestion message =
  let line, col = line_col loc in
  acc.findings <-
    D.v ~file:acc.file ~line ~col ~rule ~suggestion message :: acc.findings

let record_root acc lid =
  match Longident.flatten lid with
  | root :: _ when String.length root > 3 && String.sub root 0 3 = "Gc_" ->
      Hashtbl.replace acc.used_roots root ()
  | "Gcs" :: _ -> Hashtbl.replace acc.used_roots "Gcs" ()
  | _ -> ()

let head_ident (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (lid_str txt))
  | _ -> None

(* Head of an application or partial application: [List.sort cmp] and
   [List.sort] both answer "List.sort". *)
let rec app_head (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> app_head f
  | _ -> head_ident e

let is_fold_app (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> head_ident f = Some "Hashtbl.fold"
  | _ -> false

let sanction acc (e : Parsetree.expression) =
  if is_fold_app e then
    Hashtbl.replace acc.sanctioned e.pexp_loc.loc_start.pos_cnum ()

let const_string (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* The ~msg argument as a statically known string: either a literal or the
   format literal of Printf.sprintf / Format.sprintf. *)
let msg_literal (e : Parsetree.expression) =
  match const_string e with
  | Some s -> Some s
  | None -> (
      match e.pexp_desc with
      | Pexp_apply (f, (Asttypes.Nolabel, fmt) :: _)
        when head_ident f = Some "Printf.sprintf"
             || head_ident f = Some "Format.sprintf" ->
          const_string fmt
      | _ -> None)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_process_event h =
  h = "Process.event"
  || starts_with ~prefix:"Gc_kernel.Process." h
     && h = "Gc_kernel.Process.event"

(* ---------- per-node rule logic ---------- *)

let check_ident acc (loc : Location.t) lid =
  record_root acc lid;
  let s = strip_stdlib (lid_str lid) in
  let root = match Longident.flatten lid with r :: _ -> r | [] -> "" in
  if
    (not acc.rng_exempt)
    && (List.mem root banned_roots || List.mem s banned_ambient)
  then
    add acc loc ~rule:"D1"
      ~suggestion:
        "draw from the process Rng (Gc_sim.Rng, seeded and splittable) or \
         take the value as a parameter"
      (Printf.sprintf "ambient nondeterminism: %s" s);
  if acc.protocol && (s = "==" || s = "!=") then
    add acc loc ~rule:"D2"
      ~suggestion:
        "compare message ids structurally (=, or a typed comparator); \
         physical equality depends on allocation history"
      (Printf.sprintf "physical equality (%s) in protocol code" s)

let check_event_args acc (loc : Location.t) args =
  let labelled name =
    List.find_map
      (fun (l, e) ->
        match l with Asttypes.Labelled n when n = name -> Some e | _ -> None)
      args
  in
  match labelled "component" with
  | None -> ()
  | Some comp_e -> (
      match const_string comp_e with
      | None ->
          add acc comp_e.Parsetree.pexp_loc ~rule:"E1"
            ~suggestion:"pass the component as a string literal so the \
                         catalog check can see it"
            "Process.event ~component is not a string literal"
      | Some comp -> (
          match Catalog.component_prefixes comp with
          | None ->
              add acc comp_e.Parsetree.pexp_loc ~rule:"E1"
                ~suggestion:
                  "register the component and its msg-id prefixes in \
                   Gc_lint.Catalog.components"
                (Printf.sprintf "unregistered trace component %S" comp)
          | Some prefixes -> (
              match labelled "msg" with
              | None -> ()
              | Some msg_e -> (
                  match msg_literal msg_e with
                  | None ->
                      add acc msg_e.Parsetree.pexp_loc ~rule:"E1"
                        ~suggestion:
                          "build the id with Printf.sprintf and a literal \
                           format starting with a registered prefix"
                        "Process.event ~msg is not statically checkable"
                  | Some fmt ->
                      if
                        not
                          (List.exists
                             (fun p -> starts_with ~prefix:p fmt)
                             prefixes)
                      then
                        add acc msg_e.Parsetree.pexp_loc ~rule:"E1"
                          ~suggestion:
                            (if prefixes = [] then
                               Printf.sprintf
                                 "component %S has no registered msg-id \
                                  prefix; register one in \
                                  Gc_lint.Catalog.components"
                                 comp
                             else
                               Printf.sprintf
                                 "use one of the registered prefixes for \
                                  %S: %s"
                                 comp
                                 (String.concat ", " prefixes))
                          (Printf.sprintf
                             "msg id %S does not start with a registered \
                              prefix of component %S"
                             fmt comp)))))
  |> fun () -> ignore loc

let check_apply acc (e : Parsetree.expression) f args =
  match head_ident f with
  | None -> ()
  | Some h ->
      (* D3: unordered traversal, unless sanctioned by a surrounding sort. *)
      if acc.protocol && List.mem h unordered_traversals then begin
        if not (Hashtbl.mem acc.sanctioned e.Parsetree.pexp_loc.loc_start.pos_cnum)
        then
          add acc f.Parsetree.pexp_loc ~rule:"D3"
            ~suggestion:
              "traverse with Gc_sim.Sorted.{iter,fold,bindings,keys,values} \
               (key-sorted), or pipe the fold result straight into a List \
               sort"
            (Printf.sprintf "unordered %s over protocol state" h)
      end;
      (* Sorts sanction a directly nested Hashtbl.fold ... *)
      if List.mem h sort_family then begin
        List.iter (fun (_, a) -> sanction acc a) args;
        (* ... and D4: their comparator must not be bare polymorphic. *)
        if acc.protocol then
          match
            List.find_map
              (fun (l, a) ->
                match (l, head_ident a) with
                | Asttypes.Nolabel, Some ("compare" | "Poly.compare") ->
                    Some a
                | _ -> None)
              args
          with
          | Some a ->
              add acc a.Parsetree.pexp_loc ~rule:"D4"
                ~suggestion:
                  "pass a typed comparator (Int.compare, String.compare, or \
                   a named by_<field> function)"
                (Printf.sprintf "bare polymorphic compare passed to %s" h)
          | None -> ()
      end;
      (* Pipes: [Hashtbl.fold ... |> List.sort cmp] and
         [List.sort cmp @@ Hashtbl.fold ...]. *)
      (match (h, args) with
      | "|>", [ (_, lhs); (_, rhs) ] -> (
          match app_head rhs with
          | Some h' when List.mem h' sort_family -> sanction acc lhs
          | _ -> ())
      | "@@", [ (_, lhs); (_, rhs) ] -> (
          match app_head lhs with
          | Some h' when List.mem h' sort_family -> sanction acc rhs
          | _ -> ())
      | _ -> ());
      (* D4, general form: a bare polymorphic compare or (=)/(<>) passed as
         a function value to anything. *)
      if acc.protocol && not (List.mem h sort_family) then
        List.iter
          (fun (_, a) ->
            match head_ident a with
            | Some ("compare" | "Poly.compare") ->
                add acc a.Parsetree.pexp_loc ~rule:"D4"
                  ~suggestion:
                    "pass a typed comparator (Int.compare, String.compare, \
                     or a named by_<field> function)"
                  (Printf.sprintf
                     "bare polymorphic compare passed to %s" h)
            | Some ("=" | "<>") when h <> "|>" && h <> "@@" ->
                add acc a.Parsetree.pexp_loc ~rule:"D4"
                  ~suggestion:"pass a typed equality function"
                  (Printf.sprintf
                     "bare polymorphic equality passed to %s" h)
            | _ -> ())
          args;
      (* E1: event discipline. *)
      if acc.protocol && is_process_event h then
        check_event_args acc e.Parsetree.pexp_loc args

(* ---------- iterator ---------- *)

let make_iterator acc =
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident acc loc txt
    | Pexp_construct ({ txt; _ }, _) -> record_root acc txt
    | Pexp_field (_, { txt; _ }) | Pexp_setfield (_, { txt; _ }, _) ->
        record_root acc txt
    | Pexp_apply (f, args) -> check_apply acc e f args
    | _ -> ());
    default_iterator.expr it e
  in
  let module_expr it (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> (
        record_root acc txt;
        match Longident.flatten txt with
        | root :: _ when List.mem root banned_roots && not acc.rng_exempt ->
            add acc loc ~rule:"D1"
              ~suggestion:"alias deterministic modules only"
              (Printf.sprintf "ambient nondeterminism: module %s" root)
        | _ -> ())
    | _ -> ());
    default_iterator.module_expr it m
  in
  let typ it (t : Parsetree.core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> record_root acc txt
    | _ -> ());
    default_iterator.typ it t
  in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _) -> record_root acc txt
    | _ -> ());
    default_iterator.pat it p
  in
  let type_extension it (te : Parsetree.type_extension) =
    record_root acc te.ptyext_path.txt;
    default_iterator.type_extension it te
  in
  let open_description it (od : Parsetree.open_description) =
    record_root acc od.popen_expr.txt;
    default_iterator.open_description it od
  in
  {
    default_iterator with
    expr;
    module_expr;
    typ;
    pat;
    type_extension;
    open_description;
  }

(* Lint one parsed implementation.  Returns findings plus the set of Gc_*
   module roots the file references. *)
let lint_structure ~file ~protocol ~rng_exempt structure =
  let acc =
    {
      file;
      protocol;
      rng_exempt;
      findings = [];
      sanctioned = Hashtbl.create 16;
      used_roots = Hashtbl.create 16;
    }
  in
  let it = make_iterator acc in
  it.Ast_iterator.structure it structure;
  let roots =
    List.sort String.compare
      (Hashtbl.fold (fun k () l -> k :: l) acc.used_roots [])
  in
  (List.sort D.order acc.findings, roots)

let parse_impl ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.implementation lexbuf

(* Parse + lint a source string under its (possibly virtual) path. *)
let lint_source ~path source =
  let protocol =
    match Catalog.dir_of_path path with
    | Some d -> Catalog.is_protocol_dir d
    | None -> false
  in
  let rng_exempt = Catalog.rng_exempt path in
  match parse_impl ~file:path source with
  | structure -> lint_structure ~file:path ~protocol ~rng_exempt structure
  | exception exn ->
      let loc, msg =
        match exn with
        | Syntaxerr.Error err ->
            ( Syntaxerr.location_of_error err,
              "syntax error" )
        | _ -> (Location.in_file path, Printexc.to_string exn)
      in
      let line, col = line_col loc in
      ( [
          D.v ~file:path ~line ~col ~rule:"P0"
            ~suggestion:"fix the syntax error; the lint pass needs a parsable \
                         tree"
            msg;
        ],
        [] )
