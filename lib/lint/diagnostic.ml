(* A typed lint finding: where, which rule, what to do about it. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;  (* "D1".."D4", "E1", "L1", "L2", "W1", "P0" *)
  message : string;
  suggestion : string;
}

let v ~file ~line ?(col = 0) ~rule ~suggestion message =
  { file; line; col; rule; message; suggestion }

let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare a.rule b.rule

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message;
  if d.suggestion <> "" then Format.fprintf ppf "@,    fix: %s" d.suggestion

let pp_list ppf ds =
  Format.pp_open_vbox ppf 0;
  List.iter (fun d -> Format.fprintf ppf "%a@," pp d) ds;
  Format.pp_close_box ppf ()
