(** A Totem-style single-ring stack (Figure 4 of the paper) — the second
    monolithic baseline of the paper's survey (Section 2.1.4).

    Structure:

    - {b token-ring atomic broadcast}: the members form a logical ring and
      circulate a token; only the token holder assigns sequence numbers and
      broadcasts its queued messages, so ordering is free of any central
      sequencer but latency is bound by the token rotation;
    - {b membership below, fused with failure detection}: when a member is
      suspected (or the token is lost with a crashed holder), the lowest
      non-suspected member runs a {e recovery} phase — the paper's
      "Recovery" layer — collecting every survivor's undelivered messages
      and highest sequence number, re-injecting the union, installing the
      new ring and regenerating the token;
    - like the Isis-style baseline, a wrongly suspected member is excluded
      and must rejoin with a state transfer.

    As in the paper's discussion (Section 2.3.2), the atomic broadcast
    depends on the membership: a broken ring cannot order anything until the
    membership below delivers a new ring. *)

type config = {
  hb_period : float;  (** heartbeat period, ms (default 20) *)
  fd_timeout : float;  (** fused detection/exclusion timeout (default 1000) *)
  rto : float;  (** reliable-channel retransmission period (default 50) *)
  token_idle_delay : float;
      (** pause before forwarding an empty token (default 5), bounding idle
          rotation traffic *)
  max_per_token : int;
      (** flow control: messages a holder may sequence per visit (default 10) *)
  recovery_timeout : float;
      (** survivors restart recovery if no install arrives (default 1500) *)
  rejoin_delay : float;  (** wait before an excluded process rejoins (default 500) *)
  state_transfer_delay : float;  (** snapshot serialisation time (default 100) *)
}

val default_config : config

type t

val create :
  Gc_kernel.Runtime.t ->
  id:int ->
  initial:int list ->
  ?config:config ->
  ?app_state_provider:(unit -> Gc_net.Payload.t) ->
  ?app_state_installer:(Gc_net.Payload.t -> unit) ->
  unit ->
  t

val abcast : t -> ?size:int -> Gc_net.Payload.t -> unit
(** Queue a message; it is sequenced at the next token visit. *)

val on_deliver : t -> (origin:int -> Gc_net.Payload.t -> unit) -> unit
(** Agreed (total-order) delivery. *)

val join : t -> via:int -> unit
val view : t -> Gc_membership.View.t
val is_member : t -> bool
val on_view : t -> (Gc_membership.View.t -> unit) -> unit

val crash : t -> unit
val alive : t -> bool
val id : t -> int

(** {1 Instrumentation} *)

val token_passes : t -> int
val view_changes : t -> int
val exclusions_suffered : t -> int
val process : t -> Gc_kernel.Process.t
