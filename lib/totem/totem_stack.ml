module Process = Gc_kernel.Process
module Fd = Gc_fd.Failure_detector
module Rc = Gc_rchannel.Reliable_channel
module Sorted = Gc_sim.Sorted
module View = Gc_membership.View

type config = {
  hb_period : float;
  fd_timeout : float;
  rto : float;
  token_idle_delay : float;
  max_per_token : int;
  recovery_timeout : float;
  rejoin_delay : float;
  state_transfer_delay : float;
}

let default_config =
  {
    hb_period = 20.0;
    fd_timeout = 1000.0;
    rto = 50.0;
    token_idle_delay = 5.0;
    max_per_token = 10;
    recovery_timeout = 1500.0;
    rejoin_delay = 500.0;
    state_transfer_delay = 100.0;
  }

type rid = int * int

type omsg = { gseq : int; rid : rid; body : Gc_net.Payload.t }

type epoch = int * int (* counter, initiator *)

type Gc_net.Payload.t +=
  | Tt_token of { vid : int; next_gseq : int }
  | Tt_data of { vid : int; m : omsg }
  | Tt_recreq of { epoch : epoch; proposal : int list }
  | Tt_recresp of { epoch : epoch; last : int; undelivered : omsg list }
  | Tt_install of {
      epoch : epoch;
      view : View.t;
      fill : omsg list;
      last_gseq : int;
    }
  | Tt_joinreq of { p : int; rejoin : bool }
  | Tt_state of { view : View.t; last_gseq : int; app : Gc_net.Payload.t option }

let () =
  Gc_net.Payload.register_printer (function
    | Tt_token { vid; next_gseq } ->
        Some (Printf.sprintf "tt.token@v%d#%d" vid next_gseq)
    | Tt_data { m; _ } -> Some (Printf.sprintf "tt.data#%d" m.gseq)
    | Tt_recreq { epoch = e, i; _ } -> Some (Printf.sprintf "tt.recreq(%d,%d)" e i)
    | Tt_recresp { epoch = e, i; _ } ->
        Some (Printf.sprintf "tt.recresp(%d,%d)" e i)
    | Tt_install { view; _ } -> Some (Format.asprintf "tt.install(%a)" View.pp view)
    | Tt_joinreq { p; _ } -> Some (Printf.sprintf "tt.join(%d)" p)
    | Tt_state { view; _ } -> Some (Format.asprintf "tt.state(%a)" View.pp view)
    | _ -> None)

type recovery = {
  r_epoch : epoch;
  r_proposal : int list;
  r_old : int list;
  responses : (int, int * omsg list) Hashtbl.t;
  joiners : int list;
}

type t = {
  proc : Process.t;
  fd : Fd.t;
  monitor : Fd.monitor;
  rc : Rc.t;
  config : config;
  app_state_provider : (unit -> Gc_net.Payload.t) option;
  app_state_installer : (Gc_net.Payload.t -> unit) option;
  mutable view : View.t;
  mutable active : bool;
  mutable killed : bool;
  (* ordering *)
  mutable out_queue : (rid * Gc_net.Payload.t * int) list; (* newest first *)
  mutable rid_counter : int;
  mutable last_gseq : int;
  ord_buf : (int, omsg) Hashtbl.t;
  delivered_rids : (rid, unit) Hashtbl.t;
  (* Recent delivered messages (by gseq): recovery responses include them so
     that a message sequenced and locally delivered moments before a ring
     failure still reaches the survivors that missed it. *)
  delivered_log : (int, omsg) Hashtbl.t;
  mutable recovering : bool;
  mutable rec_started_at : float;
  (* A token that arrived "from the future" (we have not yet installed the
     view it belongs to, e.g. a joiner whose state transfer is still in
     flight): replayed once the view catches up, so the ring never loses its
     token to a slow member. *)
  mutable stashed_token : (int * int) option;
  (* recovery / membership *)
  mutable cur_epoch : epoch;
  mutable epoch_counter : int;
  mutable my_recovery : recovery option;
  mutable pending_joins : (int * bool) list;
  (* instrumentation *)
  mutable n_token_passes : int;
  mutable n_views : int;
  mutable n_exclusions : int;
  mutable excluded_since : float option;
  mutable subscribers : (origin:int -> Gc_net.Payload.t -> unit) list;
  mutable view_subscribers : (View.t -> unit) list;
}

let me t = Process.id t.proc
let view t = t.view
let is_member t = t.active
let alive t = Process.alive t.proc
let id t = me t
let crash t = Process.crash t.proc
let on_deliver t f = t.subscribers <- f :: t.subscribers
let on_view t f = t.view_subscribers <- f :: t.view_subscribers
let token_passes t = t.n_token_passes
let process t = t.proc
let view_changes t = t.n_views
let exclusions_suffered t = t.n_exclusions

let notify t ~origin body =
  List.iter (fun f -> f ~origin body) (List.rev t.subscribers)

let alive_members t =
  List.filter (fun q -> not (Fd.suspected t.monitor q)) t.view.View.members

let successor t =
  let ring = t.view.View.members in
  let rec find = function
    | [] -> None
    | [ last ] -> if last = me t then List.nth_opt ring 0 else None
    | x :: (y :: _ as rest) -> if x = me t then Some y else find rest
  in
  if List.length ring <= 1 then None else find ring

(* ---------- delivery ---------- *)

let log_bound = 512

let record_delivery t m =
  Hashtbl.replace t.delivered_log m.gseq m;
  Hashtbl.remove t.delivered_log (m.gseq - log_bound)

let rec try_deliver t =
  match Hashtbl.find_opt t.ord_buf (t.last_gseq + 1) with
  | None -> ()
  | Some m ->
      Hashtbl.remove t.ord_buf (t.last_gseq + 1);
      t.last_gseq <- t.last_gseq + 1;
      record_delivery t m;
      if not (Hashtbl.mem t.delivered_rids m.rid) then begin
        Hashtbl.replace t.delivered_rids m.rid ();
        if Process.traced t.proc then
          Process.event t.proc ~component:"totem" ~kind:Gc_obs.Event.Deliver
            ~msg:(Printf.sprintf "tt:%d.%d" (fst m.rid) (snd m.rid))
            ~attrs:[ ("gseq", string_of_int m.gseq) ]
            ();
        notify t ~origin:(fst m.rid) m.body
      end;
      try_deliver t

let accept_data t m =
  if m.gseq > t.last_gseq && not (Hashtbl.mem t.ord_buf m.gseq) then
    Hashtbl.replace t.ord_buf m.gseq m;
  try_deliver t

(* ---------- token handling ---------- *)

let send_members t ?size payload =
  List.iter
    (fun q -> if q <> me t then Rc.send t.rc ?size ~dst:q payload)
    t.view.View.members

let forward_token t next_gseq =
  match successor t with
  | Some next ->
      t.n_token_passes <- t.n_token_passes + 1;
      Rc.send t.rc ~size:24 ~dst:next (Tt_token { vid = t.view.View.vid; next_gseq })
  | None -> ()

let hold_token t next_gseq =
  if t.active && not t.recovering then begin
    (* Sequence up to [max_per_token] queued messages. *)
    let batch, rest =
      let q = List.rev t.out_queue in
      let rec split acc i = function
        | x :: rest when i < t.config.max_per_token -> split (x :: acc) (i + 1) rest
        | rest -> (List.rev acc, rest)
      in
      split [] 0 q
    in
    t.out_queue <- List.rev rest;
    let gseq = ref next_gseq in
    List.iter
      (fun (rid, body, size) ->
        let m = { gseq = !gseq; rid; body } in
        incr gseq;
        send_members t ~size (Tt_data { vid = t.view.View.vid; m });
        accept_data t m)
      batch;
    let next_gseq = !gseq in
    if batch = [] then
      (* Idle rotation at a bounded rate. *)
      ignore
        (Process.timer t.proc ~delay:t.config.token_idle_delay (fun () ->
             if t.active && not t.recovering then forward_token t next_gseq))
    else forward_token t next_gseq
  end

let replay_stashed_token t =
  match t.stashed_token with
  | Some (vid, next_gseq) when vid = t.view.View.vid && t.active ->
      t.stashed_token <- None;
      hold_token t (max next_gseq (t.last_gseq + 1))
  | _ -> ()

(* ---------- recovery (membership + ring regeneration) ---------- *)

let epoch_gt a b = compare a b > 0

let by_gseq a b = Int.compare a.gseq b.gseq

(* [ord_buf] and [delivered_log] are keyed by gseq, so key-sorted traversal
   is already delivery order. *)
let undelivered_list t = Sorted.values t.ord_buf

(* What a recovery response carries: everything still buffered plus the
   recent delivered log (the coordinator prunes to what is needed). *)
let recovery_payload t =
  let log = Sorted.values t.delivered_log in
  (undelivered_list t @ log) |> List.sort by_gseq

let rec maybe_coordinate t =
  if t.active && Process.alive t.proc then begin
    let alive = alive_members t in
    let joins =
      List.filter (fun (p, _) -> not (View.mem t.view p)) t.pending_joins
    in
    let want = alive @ List.map fst joins in
    let change_needed = want <> t.view.View.members in
    let i_coordinate = match alive with c :: _ -> c = me t | [] -> false in
    let majority = 2 * List.length alive > View.size t.view in
    if change_needed && i_coordinate && majority then begin
      let already =
        match t.my_recovery with
        | Some r -> r.r_proposal = want
        | None -> false
      in
      if not already then start_recovery t want (List.map fst joins)
    end
  end

and start_recovery t proposal joiners =
  t.epoch_counter <- t.epoch_counter + 1;
  let epoch = (t.epoch_counter, me t) in
  let old = t.view.View.members in
  let r =
    {
      r_epoch = epoch;
      r_proposal = proposal;
      r_old = old;
      responses = Hashtbl.create 8;
      joiners;
    }
  in
  t.my_recovery <- Some r;
  adopt_recovery t epoch;
  Hashtbl.replace r.responses (me t) (t.last_gseq, recovery_payload t);
  Process.incr t.proc "totem.recoveries";
  Process.emit t.proc ~component:"totem" ~event:"recovery_start"
    ~attrs:[ ("epoch", Printf.sprintf "%d,%d" (fst epoch) (snd epoch)) ]
    ();
  List.iter
    (fun q ->
      if q <> me t && List.mem q old then
        Rc.send t.rc ~dst:q (Tt_recreq { epoch; proposal }))
    proposal;
  check_recovery_complete t

and adopt_recovery t epoch =
  if epoch_gt epoch t.cur_epoch then t.cur_epoch <- epoch;
  if not t.recovering then begin
    t.recovering <- true;
    t.rec_started_at <- Process.now t.proc
  end;
  ignore
    (Process.timer t.proc ~delay:t.config.recovery_timeout (fun () ->
         if t.recovering && t.active then maybe_coordinate t))

and handle_recreq t ~src ~epoch =
  if t.active && epoch_gt epoch t.cur_epoch then begin
    adopt_recovery t epoch;
    Rc.send t.rc ~dst:src
      (Tt_recresp { epoch; last = t.last_gseq; undelivered = recovery_payload t })
  end

and handle_recresp t ~src ~epoch ~last ~undelivered =
  match t.my_recovery with
  | Some r when r.r_epoch = epoch ->
      if not (Hashtbl.mem r.responses src) then begin
        Hashtbl.replace r.responses src (last, undelivered);
        check_recovery_complete t
      end
  | _ -> ()

and check_recovery_complete t =
  match t.my_recovery with
  | None -> ()
  | Some r ->
      let responders = List.filter (fun q -> List.mem q r.r_old) r.r_proposal in
      if List.for_all (fun q -> Hashtbl.mem r.responses q) responders then begin
        (* Union of reported messages above the slowest survivor's point;
           highest delivered sequence. *)
        let fill = Hashtbl.create 32 in
        let max_last = ref 0 and min_last = ref max_int in
        Sorted.iter
          (fun _src (l, msgs) ->
            max_last := max !max_last l;
            min_last := min !min_last l;
            List.iter (fun m -> Hashtbl.replace fill m.gseq m) msgs)
          r.responses;
        let fill_list =
          Sorted.values fill |> List.filter (fun m -> m.gseq > !min_last)
        in
        let last_gseq =
          List.fold_left (fun acc m -> max acc m.gseq) !max_last fill_list
        in
        let new_view =
          { View.vid = t.view.View.vid + 1; members = r.r_proposal }
        in
        t.my_recovery <- None;
        let install =
          Tt_install { epoch = r.r_epoch; view = new_view; fill = fill_list;
                       last_gseq }
        in
        let audience = List.sort_uniq Int.compare (r.r_old @ r.r_proposal) in
        List.iter
          (fun q -> if q <> me t then Rc.send t.rc ~dst:q install)
          audience;
        apply_install t ~view:new_view ~fill:fill_list ~last_gseq;
        (* Token regeneration by the coordinator of the new ring. *)
        hold_token t (t.last_gseq + 1);
        List.iter
          (fun p ->
            ignore
              (Process.timer t.proc ~delay:t.config.state_transfer_delay
                 (fun () ->
                   let app = Option.map (fun g -> g ()) t.app_state_provider in
                   Rc.send t.rc ~size:4096 ~dst:p
                     (Tt_state { view = t.view; last_gseq = t.last_gseq; app }))))
          r.joiners
      end

and apply_install t ~view ~fill ~last_gseq =
  List.iter (fun m -> accept_data t m) fill;
  (* Remaining gaps belong to messages nobody received: skip them for good. *)
  let drain = Sorted.bindings t.ord_buf in
  Hashtbl.reset t.ord_buf;
  List.iter
    (fun (_, m) ->
      t.last_gseq <- max t.last_gseq m.gseq;
      record_delivery t m;
      if not (Hashtbl.mem t.delivered_rids m.rid) then begin
        Hashtbl.replace t.delivered_rids m.rid ();
        if Process.traced t.proc then
          Process.event t.proc ~component:"totem" ~kind:Gc_obs.Event.Deliver
            ~msg:(Printf.sprintf "tt:%d.%d" (fst m.rid) (snd m.rid))
            ~attrs:[ ("gseq", string_of_int m.gseq) ]
            ();
        notify t ~origin:(fst m.rid) m.body
      end)
    drain;
  t.last_gseq <- max t.last_gseq last_gseq;
  t.view <- view;
  t.recovering <- false;
  t.n_views <- t.n_views + 1;
  t.pending_joins <-
    List.filter (fun (p, _) -> not (View.mem view p)) t.pending_joins;
  Fd.set_peers t.fd view.View.members;
  Process.incr t.proc "totem.view_changes";
  Process.event t.proc ~component:"totem" ~kind:Gc_obs.Event.ViewInstall
    ~msg:(Printf.sprintf "view:%d" view.View.vid)
    ~attrs:
      [
        ("vid", string_of_int view.View.vid);
        ("view", Format.asprintf "%a" View.pp view);
      ]
    ();
  List.iter (fun f -> f view) (List.rev t.view_subscribers);
  replay_stashed_token t

and handle_install t ~epoch ~view ~fill ~last_gseq =
  if t.active then begin
    if epoch_gt epoch t.cur_epoch then t.cur_epoch <- epoch;
    if View.mem view (me t) then apply_install t ~view ~fill ~last_gseq
    else begin
      t.active <- false;
      t.killed <- true;
      t.view <- view;
      t.n_exclusions <- t.n_exclusions + 1;
      t.excluded_since <- Some (Process.now t.proc);
      Process.incr t.proc "totem.exclusions";
      Process.event t.proc ~component:"totem" ~kind:Gc_obs.Event.Exclude
        ~attrs:[ ("peer", string_of_int (me t)) ]
        ();
      schedule_rejoin t
    end
  end

and schedule_rejoin t =
  ignore
    (Process.timer t.proc ~delay:t.config.rejoin_delay (fun () ->
         if t.killed then begin
           (match List.filter (fun q -> q <> me t) t.view.View.members with
           | via :: _ ->
               Rc.send t.rc ~dst:via (Tt_joinreq { p = me t; rejoin = true })
           | [] -> ());
           schedule_rejoin t
         end))

let handle_joinreq t ~p ~rejoin =
  if t.active then begin
    if not (List.mem_assoc p t.pending_joins) && not (View.mem t.view p) then
      t.pending_joins <- (p, rejoin) :: t.pending_joins;
    match alive_members t with
    | c :: _ when c = me t -> maybe_coordinate t
    | c :: _ -> Rc.send t.rc ~dst:c (Tt_joinreq { p; rejoin })
    | [] -> ()
  end

let handle_state t ~view ~last_gseq ~app =
  if not t.active then begin
    (match (app, t.app_state_installer) with
    | Some s, Some f -> f s
    | _ -> ());
    t.view <- view;
    t.last_gseq <- last_gseq;
    Hashtbl.reset t.ord_buf;
    t.active <- true;
    t.killed <- false;
    t.recovering <- false;
    t.excluded_since <- None;
    Fd.set_peers t.fd view.View.members;
    t.n_views <- t.n_views + 1;
    Process.event t.proc ~component:"totem" ~kind:Gc_obs.Event.ViewInstall
      ~msg:(Printf.sprintf "view:%d" view.View.vid)
      ~attrs:
        [
          ("vid", string_of_int view.View.vid);
          ("view", Format.asprintf "%a" View.pp view);
          ("rejoin", "true");
        ]
      ();
    List.iter (fun f -> f view) (List.rev t.view_subscribers);
    replay_stashed_token t
  end

let create runtime ~id ~initial ?(config = default_config)
    ?app_state_provider ?app_state_installer () =
  let proc = Process.create runtime ~id in
  Process.incr ~by:0 proc "totem.recoveries";
  Process.incr ~by:0 proc "totem.view_changes";
  Process.incr ~by:0 proc "totem.exclusions";
  let fd = Fd.create proc ~hb_period:config.hb_period ~peers:initial () in
  let rc = Rc.create proc ~rto:config.rto () in
  let t_ref = ref None in
  let monitor =
    Fd.monitor fd ~label:"totem" ~timeout:config.fd_timeout
      ~on_suspect:(fun _q ->
        match !t_ref with Some t -> maybe_coordinate t | None -> ())
      ()
  in
  let t =
    {
      proc;
      fd;
      monitor;
      rc;
      config;
      app_state_provider;
      app_state_installer;
      view = View.initial initial;
      active = List.mem id initial;
      killed = false;
      out_queue = [];
      rid_counter = 0;
      last_gseq = 0;
      ord_buf = Hashtbl.create 32;
      delivered_rids = Hashtbl.create 256;
      delivered_log = Hashtbl.create 256;
      recovering = false;
      rec_started_at = 0.0;
      stashed_token = None;
      cur_epoch = (0, -1);
      epoch_counter = 0;
      my_recovery = None;
      pending_joins = [];
      n_token_passes = 0;
      n_views = 0;
      n_exclusions = 0;
      excluded_since = None;
      subscribers = [];
      view_subscribers = [];
    }
  in
  t_ref := Some t;
  Rc.on_deliver rc (fun ~src payload ->
      match payload with
      | Tt_token { vid; next_gseq } ->
          if t.active && vid = t.view.View.vid && not t.recovering then
            hold_token t next_gseq
          else if vid > t.view.View.vid || not t.active then
            t.stashed_token <- Some (vid, next_gseq)
      | Tt_data { vid; m } ->
          if t.active && vid = t.view.View.vid then accept_data t m
      | Tt_recreq { epoch; proposal = _ } -> handle_recreq t ~src ~epoch
      | Tt_recresp { epoch; last; undelivered } ->
          handle_recresp t ~src ~epoch ~last ~undelivered
      | Tt_install { epoch; view; fill; last_gseq } ->
          handle_install t ~epoch ~view ~fill ~last_gseq
      | Tt_joinreq { p; rejoin } -> handle_joinreq t ~p ~rejoin
      | Tt_state { view; last_gseq; app } -> handle_state t ~view ~last_gseq ~app
      | _ -> ());
  (* The founding head starts the token. *)
  if t.active && View.primary t.view = Some id then
    ignore (Process.timer proc ~delay:1.0 (fun () -> hold_token t 1));
  t

let abcast t ?(size = 64) body =
  if t.active || t.killed then begin
    let rid = (me t, t.rid_counter) in
    t.rid_counter <- t.rid_counter + 1;
    if Process.traced t.proc then
      Process.event t.proc ~component:"totem" ~kind:Gc_obs.Event.Send
        ~msg:(Printf.sprintf "tt:%d.%d" (fst rid) (snd rid))
        ();
    t.out_queue <- (rid, body, size) :: t.out_queue
  end

let join t ~via =
  if not t.active then
    Rc.send t.rc ~dst:via (Tt_joinreq { p = me t; rejoin = false })
