(** The traditional GM-VS architecture (Figures 1–2 of the paper), built over
    the same simulated substrate as the new stack — the baseline every
    comparison experiment runs against.

    Structure (Isis-style, Section 2.1.1):

    - {b membership + failure detection, fused}: one failure-detector timeout
      drives exclusion directly — a suspicion {e is} an exclusion proposal.
      The first non-suspected member coordinates a view change;
    - {b view synchrony with blocking flush} (sending view delivery): during
      a view change every member stops sending, reports its unstable
      messages, and the coordinator re-injects the union before installing
      the view — the Sync behaviour of Ensemble (Section 2.2), whose sender
      blocking Section 4.4 of the paper criticises;
    - {b fixed-sequencer atomic broadcast on top of view synchrony}: the head
      of the view assigns sequence numbers; when it crashes, ordering stalls
      until the membership below delivers a new view (the dependence of
      atomic broadcast on membership, Section 2.3.2);
    - {b kill-and-rejoin}: a wrongly excluded process learns of its exclusion,
      "commits suicide" and rejoins through a state transfer — the cost that
      forces traditional systems to use large detection timeouts
      (Section 4.3).

    The deliberate contrast with {!Gcs.Gcs_stack}: suspicion = exclusion, a
    third ordering protocol (views) besides the sequencer and the flush, and
    sender blocking during view changes. *)

type view_agreement =
  | Coordinator
      (** Isis-style: the first non-suspected member collects the flush and
          broadcasts the install (Figure 1). *)
  | Consensus_based
      (** Phoenix-style: every member merges the flushed state and the
          (view, cut) is decided by consensus among the old members
          (Figure 2) — no coordinator-crash retry dance. *)

type config = {
  hb_period : float;  (** heartbeat period, ms (default 20) *)
  fd_timeout : float;
      (** the single, fused detection timeout: drives both ordering recovery
          and exclusion (default 1000 — traditional systems must keep this
          large, see Section 4.3) *)
  rto : float;  (** reliable-channel retransmission period (default 50) *)
  flush_timeout : float;
      (** blocked members restart the view change if no install arrives
          (coordinator crash) (default 1500) *)
  rejoin_delay : float;
      (** time before an excluded process attempts to rejoin (default 500) *)
  state_transfer_delay : float;
      (** snapshot serialisation time for joiners/rejoiners (default 100) *)
  view_agreement : view_agreement;
      (** how view changes are agreed (default [Coordinator]) *)
}

val default_config : config

type t

val create :
  Gc_kernel.Runtime.t ->
  id:int ->
  initial:int list ->
  ?config:config ->
  ?app_state_provider:(unit -> Gc_net.Payload.t) ->
  ?app_state_installer:(Gc_net.Payload.t -> unit) ->
  unit ->
  t
(** As in {!Gcs.Gcs_stack.create}: founders list themselves in [initial];
    later processes pass the current membership and {!join}. *)

val abcast : t -> ?size:int -> Gc_net.Payload.t -> unit
(** Sequencer-ordered broadcast (total order).  Queued while the stack is
    blocked by a flush, and while excluded. *)

val vscast : t -> ?size:int -> Gc_net.Payload.t -> unit
(** View-synchronous broadcast (FIFO per sender, same set in each view). *)

val on_deliver :
  t -> (origin:int -> ordered:bool -> Gc_net.Payload.t -> unit) -> unit

val join : t -> via:int -> unit
val leave : t -> unit

val view : t -> Gc_membership.View.t
val is_member : t -> bool
(** Operational member of the current view (false while excluded or before
    joining). *)

val on_view : t -> (Gc_membership.View.t -> unit) -> unit

val crash : t -> unit
val alive : t -> bool
val id : t -> int

(** {1 Instrumentation (the quantities the paper's Section 4 argues about)} *)

val blocked : t -> bool
(** Currently blocked by a flush (sending view delivery). *)

val blocked_time_total : t -> float
(** Cumulative ms this process spent with sending blocked. *)

val exclusions_suffered : t -> int
(** Times this (live) process was excluded and had to rejoin. *)

val excluded_time_total : t -> float
(** Cumulative ms spent outside the membership due to exclusions. *)

val view_changes : t -> int
val process : t -> Gc_kernel.Process.t

val reliable_channel : t -> Gc_rchannel.Reliable_channel.t
(** The stack's reliable channel — also the door for client traffic
    (request/reply payloads of services built on the stack). *)
