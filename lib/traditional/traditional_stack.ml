module Process = Gc_kernel.Process
module Fd = Gc_fd.Failure_detector
module Rc = Gc_rchannel.Reliable_channel
module Rb = Gc_rbcast.Reliable_broadcast
module Consensus = Gc_consensus.Consensus
module Sorted = Gc_sim.Sorted
module View = Gc_membership.View

(* How a view change is agreed (Section 2.1 of the paper):
   - [Coordinator]: Isis-style — the first non-suspected member collects the
     flush responses and unilaterally broadcasts the install (Figure 1);
   - [Consensus_based]: Phoenix-style — every member broadcasts its flush
     state, merges, and the (view, cut) pair is decided by the consensus
     component among the old members (Figure 2), tolerating a crashed
     would-be coordinator without the retry dance. *)
type view_agreement = Coordinator | Consensus_based

type config = {
  hb_period : float;
  fd_timeout : float;
  rto : float;
  flush_timeout : float;
  rejoin_delay : float;
  state_transfer_delay : float;
  view_agreement : view_agreement;
}

let default_config =
  {
    hb_period = 20.0;
    fd_timeout = 1000.0;
    rto = 50.0;
    flush_timeout = 1500.0;
    rejoin_delay = 500.0;
    state_transfer_delay = 100.0;
    view_agreement = Coordinator;
  }

type vsid = int * int (* sender, sender-global counter *)
type rid = int * int (* origin, origin counter: dedup for ordered payloads *)

type inner =
  | Plain of { origin : int; body : Gc_net.Payload.t }
  | Ordered of { gseq : int; rid : rid; body : Gc_net.Payload.t }

type vsmsg = { vsid : vsid; vid : int; inner : inner }

type epoch = int * int (* counter, initiator: lexicographic *)

type Gc_net.Payload.t +=
  | Tr_vs of vsmsg
  | Tr_ack of { vsid : vsid }
  | Tr_flreq of { epoch : epoch; proposal : int list }
  | Tr_flresp of { epoch : epoch; unstable : vsmsg list }
  | Tr_install of { epoch : epoch; view : View.t; deliver : vsmsg list }
  | Tr_seqreq of { rid : rid; body : Gc_net.Payload.t; size : int }
  | Tr_joinreq of { p : int; rejoin : bool }
  | Tr_leavereq of { p : int }
  | Tr_state of { view : View.t; last_gseq : int; app : Gc_net.Payload.t option }
  | Tr_vc_proposal of {
      view : View.t;
      deliver : vsmsg list;
      joiners : int list;
    }

let () =
  Gc_net.Payload.register_printer (function
    | Tr_vs { vsid = s, c; vid; _ } -> Some (Printf.sprintf "tr.vs#%d.%d@v%d" s c vid)
    | Tr_ack { vsid = s, c } -> Some (Printf.sprintf "tr.ack#%d.%d" s c)
    | Tr_flreq { epoch = e, i; _ } -> Some (Printf.sprintf "tr.flreq(%d,%d)" e i)
    | Tr_flresp { epoch = e, i; _ } -> Some (Printf.sprintf "tr.flresp(%d,%d)" e i)
    | Tr_install { view; _ } -> Some (Format.asprintf "tr.install(%a)" View.pp view)
    | Tr_seqreq { rid = o, k; _ } -> Some (Printf.sprintf "tr.seqreq#%d.%d" o k)
    | Tr_joinreq { p; _ } -> Some (Printf.sprintf "tr.join(%d)" p)
    | Tr_leavereq { p } -> Some (Printf.sprintf "tr.leave(%d)" p)
    | Tr_state { view; _ } -> Some (Format.asprintf "tr.state(%a)" View.pp view)
    | Tr_vc_proposal { view; _ } ->
        Some (Format.asprintf "tr.vc_proposal(%a)" View.pp view)
    | _ -> None)

type flush = {
  f_epoch : epoch;
  f_proposal : int list;
  f_old_members : int list;
  responses : (int, vsmsg list) Hashtbl.t;
  joiners : int list;
}

type t = {
  proc : Process.t;
  fd : Fd.t;
  monitor : Fd.monitor;
  rc : Rc.t;
  config : config;
  app_state_provider : (unit -> Gc_net.Payload.t) option;
  app_state_installer : (Gc_net.Payload.t -> unit) option;
  mutable view : View.t;
  mutable active : bool;
  mutable killed : bool;
  mutable leaving : bool;
  (* view synchrony *)
  mutable vs_counter : int;
  unstable : (vsid, vsmsg * (int, unit) Hashtbl.t) Hashtbl.t;
  vs_seen : (vsid, unit) Hashtbl.t; (* vs messages already processed *)
  mutable future : vsmsg list; (* messages tagged with a future view *)
  (* sequencer atomic broadcast *)
  mutable next_gseq : int; (* sequencer side *)
  mutable last_gseq : int; (* delivery side *)
  ord_buf : (int, rid * Gc_net.Payload.t) Hashtbl.t;
  delivered_rids : (rid, unit) Hashtbl.t;
  mutable rid_counter : int;
  pending_req : (rid, Gc_net.Payload.t * int) Hashtbl.t;
  assigned_rids : (rid, unit) Hashtbl.t; (* sequencer dedup *)
  (* flush / membership *)
  mutable cur_epoch : epoch;
  mutable epoch_counter : int;
  mutable my_flush : flush option;
  mutable consensus : Consensus.t option; (* Phoenix mode only *)
  mutable pending_joins : (int * bool) list; (* (p, rejoin) *)
  mutable pending_leaves : int list;
  mutable blocked_since : float option;
  mutable out_queue : (unit -> unit) list; (* app ops deferred by a flush *)
  (* instrumentation *)
  mutable blocked_total : float;
  mutable excluded_since : float option;
  mutable excluded_total : float;
  mutable n_exclusions : int;
  mutable n_views : int;
  mutable subscribers :
    (origin:int -> ordered:bool -> Gc_net.Payload.t -> unit) list;
  mutable view_subscribers : (View.t -> unit) list;
}

let me t = Process.id t.proc
let view t = t.view
let is_member t = t.active
let alive t = Process.alive t.proc
let id t = me t
let crash t = Process.crash t.proc
let on_deliver t f = t.subscribers <- f :: t.subscribers
let on_view t f = t.view_subscribers <- f :: t.view_subscribers
let blocked t = t.blocked_since <> None

let blocked_time_total t =
  t.blocked_total
  +. match t.blocked_since with Some s -> Process.now t.proc -. s | None -> 0.0

let exclusions_suffered t = t.n_exclusions

let excluded_time_total t =
  t.excluded_total
  +. match t.excluded_since with Some s -> Process.now t.proc -. s | None -> 0.0

let view_changes t = t.n_views
let process t = t.proc
let reliable_channel t = t.rc

let sequencer t = View.primary t.view

let notify t ~origin ~ordered body =
  List.iter (fun f -> f ~origin ~ordered body) (List.rev t.subscribers)

let send_members t ?size payload =
  List.iter
    (fun q -> if q <> me t then Rc.send t.rc ?size ~dst:q payload)
    t.view.View.members

(* Suspicion-filtered membership: the fused FD/membership coupling.  The
   first non-suspected member acts as view-change coordinator. *)
let alive_members t =
  List.filter (fun q -> not (Fd.suspected t.monitor q)) t.view.View.members

(* ---------- ordered (sequencer) delivery ---------- *)

let rec try_deliver_ordered t =
  match Hashtbl.find_opt t.ord_buf (t.last_gseq + 1) with
  | None -> ()
  | Some (rid, body) ->
      Hashtbl.remove t.ord_buf (t.last_gseq + 1);
      t.last_gseq <- t.last_gseq + 1;
      Hashtbl.remove t.pending_req rid;
      if not (Hashtbl.mem t.delivered_rids rid) then begin
        Hashtbl.replace t.delivered_rids rid ();
        if Process.traced t.proc then
          Process.event t.proc ~component:"traditional"
            ~kind:Gc_obs.Event.Deliver
            ~msg:(Printf.sprintf "tr:%d.%d" (fst rid) (snd rid))
            ~attrs:
              [ ("ordered", "true"); ("gseq", string_of_int t.last_gseq) ]
            ();
        notify t ~origin:(fst rid) ~ordered:true body
      end;
      try_deliver_ordered t

(* Drain the buffer across a view change: gaps belong to the dead sequencer
   and are re-requested by their origins.  Entries at or below [last_gseq]
   are stale — their slot was already delivered, jumped over by an earlier
   drain, or absorbed into a state-transfer snapshot — and delivering them
   now would reorder this node against everyone who delivered them in
   place, so they are dropped. *)
let drain_ordered_after_flush t =
  let entries =
    Sorted.bindings t.ord_buf
    |> List.filter (fun (gseq, _) -> gseq > t.last_gseq)
  in
  Hashtbl.reset t.ord_buf;
  List.iter
    (fun (gseq, (rid, body)) ->
      t.last_gseq <- max t.last_gseq gseq;
      Hashtbl.remove t.pending_req rid;
      if not (Hashtbl.mem t.delivered_rids rid) then begin
        Hashtbl.replace t.delivered_rids rid ();
        if Process.traced t.proc then
          Process.event t.proc ~component:"traditional"
            ~kind:Gc_obs.Event.Deliver
            ~msg:(Printf.sprintf "tr:%d.%d" (fst rid) (snd rid))
            ~attrs:[ ("ordered", "true"); ("gseq", string_of_int gseq) ]
            ();
        notify t ~origin:(fst rid) ~ordered:true body
      end)
    entries

(* ---------- view-synchronous delivery and stability ---------- *)

let track_unstable t m =
  if not (Hashtbl.mem t.unstable m.vsid) then begin
    let ackers = Hashtbl.create 8 in
    Hashtbl.replace ackers (me t) ();
    Hashtbl.replace t.unstable m.vsid (m, ackers)
  end

let check_stable t vsid =
  match Hashtbl.find_opt t.unstable vsid with
  | None -> ()
  | Some (_, ackers) ->
      if List.for_all (fun q -> Hashtbl.mem ackers q) t.view.View.members then
        Hashtbl.remove t.unstable vsid

let vs_process t m =
  if not (Hashtbl.mem t.vs_seen m.vsid) then begin
    Hashtbl.replace t.vs_seen m.vsid ();
    track_unstable t m;
    send_members t ~size:24 (Tr_ack { vsid = m.vsid });
    check_stable t m.vsid;
    match m.inner with
    | Plain { origin; body } ->
        if Process.traced t.proc then
          Process.event t.proc ~component:"traditional"
            ~kind:Gc_obs.Event.Deliver
            ~msg:(Printf.sprintf "trvs:%d.%d" (fst m.vsid) (snd m.vsid))
            ~attrs:[ ("ordered", "false") ]
            ();
        notify t ~origin ~ordered:false body
    | Ordered { gseq; rid; body } ->
        (* Slots at or below [last_gseq] are already settled (see
           [drain_ordered_after_flush]); buffering them again would only
           resurface them out of order at the next flush. *)
        if gseq > t.last_gseq && not (Hashtbl.mem t.ord_buf gseq) then
          Hashtbl.replace t.ord_buf gseq (rid, body);
        try_deliver_ordered t
  end

let vs_receive t m =
  if t.active then begin
    if m.vid = t.view.View.vid then vs_process t m
    else if m.vid > t.view.View.vid then t.future <- m :: t.future
    (* m.vid < vid: late message from a closed view — the flush already
       settled its fate (view synchrony discard rule). *)
  end

(* ---------- sending ---------- *)

let vs_send t m =
  track_unstable t m;
  send_members t (Tr_vs m);
  (* Local copy processed directly (self-ack recorded in track_unstable). *)
  vs_process t m

let fresh_vsid t =
  let v = (me t, t.vs_counter) in
  t.vs_counter <- t.vs_counter + 1;
  v

let enqueue_or t f =
  if (not t.active) || blocked t then t.out_queue <- f :: t.out_queue else f ()

let rec vscast t ?(size = 64) body =
  ignore size;
  enqueue_or t (fun () -> vscast_now t body)

and vscast_now t body =
  let m =
    { vsid = fresh_vsid t; vid = t.view.View.vid; inner = Plain { origin = me t; body } }
  in
  vs_send t m

let sequence_now t rid body =
  let gseq = t.next_gseq in
  t.next_gseq <- gseq + 1;
  Hashtbl.replace t.assigned_rids rid ();
  let m =
    { vsid = fresh_vsid t; vid = t.view.View.vid; inner = Ordered { gseq; rid; body } }
  in
  vs_send t m

let rec abcast t ?(size = 64) body =
  let rid = (me t, t.rid_counter) in
  t.rid_counter <- t.rid_counter + 1;
  if Process.traced t.proc then
    Process.event t.proc ~component:"traditional" ~kind:Gc_obs.Event.Send
      ~msg:(Printf.sprintf "tr:%d.%d" (fst rid) (snd rid))
      ();
  Hashtbl.replace t.pending_req rid (body, size);
  enqueue_or t (fun () -> abcast_route t rid body size)

and abcast_route t rid body size =
  if Hashtbl.mem t.pending_req rid then
    match sequencer t with
    | Some s when s = me t -> sequence_now t rid body
    | Some s -> Rc.send t.rc ~size ~dst:s (Tr_seqreq { rid; body; size })
    | None -> ()

let rec handle_seqreq t ~rid ~body ~size =
  if t.active then begin
    if Some (me t) = sequencer t then begin
      if
        (not (Hashtbl.mem t.assigned_rids rid))
        && not (Hashtbl.mem t.delivered_rids rid)
      then
        if blocked t then
          t.out_queue <-
            (fun () -> handle_seqreq t ~rid ~body ~size) :: t.out_queue
        else sequence_now t rid body
    end
    else
      (* Not the sequencer (stale addressing): forward. *)
      match sequencer t with
      | Some s when s <> me t ->
          Rc.send t.rc ~size ~dst:s (Tr_seqreq { rid; body; size })
      | _ -> ()
  end

(* ---------- flush protocol (membership + view synchrony) ---------- *)

(* [unstable] is keyed by vsid, so key order is vsid order. *)
let unstable_list t = List.map fst (Sorted.values t.unstable)

let start_block t =
  if t.blocked_since = None then t.blocked_since <- Some (Process.now t.proc)

let end_block t =
  match t.blocked_since with
  | Some s ->
      let span = Process.now t.proc -. s in
      t.blocked_total <- t.blocked_total +. span;
      Process.observe t.proc "traditional.blocked_ms" span;
      Gc_obs.Metrics.set_gauge
        (Process.metrics t.proc)
        "traditional.blocked_ms_total" t.blocked_total;
      t.blocked_since <- None
  | None -> ()

let epoch_gt a b = compare a b > 0

let rec maybe_coordinate t =
  if t.active && Process.alive t.proc then begin
    let alive = alive_members t in
    let joins =
      List.filter (fun (p, _) -> not (View.mem t.view p)) t.pending_joins
    in
    let want =
      List.filter (fun q -> not (List.mem q t.pending_leaves)) alive
      @ List.map fst joins
    in
    let change_needed = want <> t.view.View.members in
    let i_coordinate =
      match alive with c :: _ -> c = me t | [] -> false
    in
    (* Primary-partition rule: never install a minority view. *)
    let majority = 2 * List.length alive > View.size t.view in
    if change_needed && i_coordinate && majority then begin
      let already =
        match t.my_flush with
        | Some f -> f.f_proposal = want
        | None -> false
      in
      if not already then start_flush t want (List.map fst joins)
    end
  end

and start_flush t proposal joiners =
  t.epoch_counter <- t.epoch_counter + 1;
  let epoch = (t.epoch_counter, me t) in
  let old_members = t.view.View.members in
  let f =
    {
      f_epoch = epoch;
      f_proposal = proposal;
      f_old_members = old_members;
      responses = Hashtbl.create 8;
      joiners;
    }
  in
  t.my_flush <- Some f;
  Process.incr t.proc "traditional.flushes";
  Process.emit t.proc ~component:"traditional" ~event:"flush_start"
    ~attrs:
      [
        ("epoch", Printf.sprintf "%d,%d" (fst epoch) (snd epoch));
        ("proposal", String.concat ";" (List.map string_of_int proposal));
      ]
    ();
  (* Ask every surviving old member (they hold old-view state); pure joiners
     have nothing to flush. *)
  let responders = List.filter (fun q -> List.mem q old_members) proposal in
  adopt_flush t epoch;
  Hashtbl.replace f.responses (me t) (unstable_list t);
  List.iter
    (fun q ->
      if q <> me t then Rc.send t.rc ~dst:q (Tr_flreq { epoch; proposal }))
    responders;
  (* Phoenix: the initiator's own state also goes to everyone, since every
     member builds the merge. *)
  (if t.config.view_agreement = Consensus_based then
     List.iter
       (fun q ->
         if q <> me t then
           Rc.send t.rc ~dst:q (Tr_flresp { epoch; unstable = unstable_list t }))
       responders);
  check_flush_complete t

and adopt_flush t epoch =
  if epoch_gt epoch t.cur_epoch then t.cur_epoch <- epoch;
  start_block t;
  (* If no install arrives (coordinator crashed mid-flush), retry from the
     current suspicion picture. *)
  ignore
    (Process.timer t.proc ~delay:t.config.flush_timeout (fun () ->
         if blocked t && t.active then maybe_coordinate t))

and handle_flreq t ~src ~epoch ~proposal =
  if t.active && epoch_gt epoch t.cur_epoch then begin
    adopt_flush t epoch;
    match t.config.view_agreement with
    | Coordinator ->
        Rc.send t.rc ~dst:src (Tr_flresp { epoch; unstable = unstable_list t })
    | Consensus_based ->
        (* Phoenix: every member collects everyone's state and proposes the
           merged (view, cut) to consensus, so any member's proposal is a
           complete cut. *)
        let old_members = t.view.View.members in
        let joiners =
          List.filter (fun p -> not (List.mem p old_members)) proposal
        in
        let f =
          {
            f_epoch = epoch;
            f_proposal = proposal;
            f_old_members = old_members;
            responses = Hashtbl.create 8;
            joiners;
          }
        in
        t.my_flush <- Some f;
        Hashtbl.replace f.responses (me t) (unstable_list t);
        List.iter
          (fun q ->
            if q <> me t && List.mem q old_members then
              Rc.send t.rc ~dst:q (Tr_flresp { epoch; unstable = unstable_list t }))
          proposal;
        check_flush_complete t
  end

and handle_flresp t ~src ~epoch ~unstable =
  match t.my_flush with
  | Some f when f.f_epoch = epoch ->
      if not (Hashtbl.mem f.responses src) then begin
        Hashtbl.replace f.responses src unstable;
        check_flush_complete t
      end
  | _ -> ()

and check_flush_complete t =
  match t.my_flush with
  | None -> ()
  | Some f ->
      let responders =
        List.filter (fun q -> List.mem q f.f_old_members) f.f_proposal
      in
      if List.for_all (fun q -> Hashtbl.mem f.responses q) responders then begin
        (* Merge unstable messages across responders: the view-synchrony
           cut. *)
        let merged = Hashtbl.create 32 in
        Sorted.iter
          (fun _src l ->
            List.iter (fun m -> Hashtbl.replace merged m.vsid m) l)
          f.responses;
        let deliver = Sorted.values merged in
        let new_view =
          { View.vid = t.view.View.vid + 1; members = f.f_proposal }
        in
        match (t.config.view_agreement, t.consensus) with
        | Consensus_based, Some cons ->
            (* Phoenix: agree on the (view, cut, joiners) via consensus among
               the old members; the install happens on decide. *)
            Consensus.propose cons ~inst:new_view.View.vid
              ~members:f.f_old_members
              (Tr_vc_proposal
                 { view = new_view; deliver; joiners = f.joiners })
        | _ when epoch_gt t.cur_epoch f.f_epoch ->
            (* A concurrent coordinator started a higher-epoch flush while we
               collected responses: abandon ours instead of installing a
               rival view with the same vid (and a rival sequencer reusing
               the same sequence numbers). *)
            t.my_flush <- None
        | _ ->
        t.my_flush <- None;
        let install = Tr_install { epoch = f.f_epoch; view = new_view; deliver } in
        (* Everyone learns: survivors install, the excluded learn their fate,
           joiners wait for the state snapshot sent below. *)
        let audience =
          List.sort_uniq Int.compare (f.f_old_members @ f.f_proposal)
        in
        List.iter
          (fun q -> if q <> me t then Rc.send t.rc ~dst:q install)
          audience;
        apply_install t ~view:new_view ~deliver;
        List.iter
          (fun p ->
            ignore
              (Process.timer t.proc ~delay:t.config.state_transfer_delay
                 (fun () ->
                   let app =
                     Option.map (fun g -> g ()) t.app_state_provider
                   in
                   Rc.send t.rc ~size:4096 ~dst:p
                     (Tr_state { view = t.view; last_gseq = t.last_gseq; app }))))
          f.joiners
      end

and apply_install t ~view ~deliver =
  (* Deliver the cut (messages someone saw but we might not have). *)
  List.iter (fun m -> vs_process t m) deliver;
  drain_ordered_after_flush t;
  (* The sequencing baton may change hands: the new sequencer continues right
     after the last sequence number the view synchrony cut agreed on. *)
  t.next_gseq <- t.last_gseq + 1;
  Hashtbl.reset t.unstable;
  t.view <- view;
  t.n_views <- t.n_views + 1;
  t.pending_joins <-
    List.filter (fun (p, _) -> not (View.mem view p)) t.pending_joins;
  t.pending_leaves <- List.filter (fun p -> View.mem view p) t.pending_leaves;
  Fd.set_peers t.fd view.View.members;
  end_block t;
  Process.incr t.proc "traditional.view_changes";
  Process.event t.proc ~component:"traditional" ~kind:Gc_obs.Event.ViewInstall
    ~msg:(Printf.sprintf "view:%d" view.View.vid)
    ~attrs:
      [
        ("vid", string_of_int view.View.vid);
        ("view", Format.asprintf "%a" View.pp view);
      ]
    ();
  List.iter (fun f -> f view) (List.rev t.view_subscribers);
  (* Replay messages that arrived tagged with this view before we got here. *)
  let future = List.rev t.future in
  t.future <- [];
  List.iter (fun m -> vs_receive t m) future;
  (* Re-route unordered requests to the (possibly new) sequencer. *)
  List.iter
    (fun (rid, (body, size)) ->
      if not (Hashtbl.mem t.delivered_rids rid) then
        abcast_route t rid body size)
    (Sorted.bindings t.pending_req);
  (* Unblock queued application operations. *)
  let q = List.rev t.out_queue in
  t.out_queue <- [];
  List.iter (fun f -> f ()) q;
  maybe_coordinate t

and handle_install t ~epoch ~view ~deliver =
  (* Installs from an epoch older than one we already adopted lost the race
     to a concurrent coordinator: applying them would fork the view. *)
  if t.active && not (epoch_gt t.cur_epoch epoch) then begin
    if epoch_gt epoch t.cur_epoch then t.cur_epoch <- epoch;
    if View.mem view (me t) then apply_install t ~view ~deliver
    else begin
      (* Excluded: the traditional stack kills the process, which must later
         rejoin with a state transfer (Section 4.3). *)
      t.active <- false;
      t.killed <- true;
      end_block t;
      t.view <- view;
      if not t.leaving then begin
        t.n_exclusions <- t.n_exclusions + 1;
        t.excluded_since <- Some (Process.now t.proc);
        Process.incr t.proc "traditional.exclusions";
        Process.event t.proc ~component:"traditional" ~kind:Gc_obs.Event.Exclude
          ~attrs:[ ("peer", string_of_int (me t)) ]
          ();
        schedule_rejoin t
      end
    end
  end

and schedule_rejoin t =
  ignore
    (Process.timer t.proc ~delay:t.config.rejoin_delay (fun () ->
         if t.killed && not t.leaving then begin
           (match
              List.filter (fun q -> q <> me t) t.view.View.members
            with
           | via :: _ ->
               Rc.send t.rc ~dst:via (Tr_joinreq { p = me t; rejoin = true })
           | [] -> ());
           (* Keep retrying until a state transfer reinstates us. *)
           schedule_rejoin t
         end))

let handle_joinreq t ~p ~rejoin =
  if t.active then begin
    if not (List.mem_assoc p t.pending_joins) && not (View.mem t.view p) then
      t.pending_joins <- (p, rejoin) :: t.pending_joins;
    match alive_members t with
    | c :: _ when c = me t -> maybe_coordinate t
    | c :: _ -> Rc.send t.rc ~dst:c (Tr_joinreq { p; rejoin })
    | [] -> ()
  end

let handle_leavereq t ~p =
  if t.active then begin
    if not (List.mem p t.pending_leaves) && View.mem t.view p then
      t.pending_leaves <- p :: t.pending_leaves;
    match alive_members t with
    | c :: _ when c = me t -> maybe_coordinate t
    | c :: _ -> Rc.send t.rc ~dst:c (Tr_leavereq { p })
    | [] -> ()
  end

let handle_state t ~view ~last_gseq ~app =
  if not t.active then begin
    (match (app, t.app_state_installer) with
    | Some s, Some f -> f s
    | _ -> ());
    t.view <- view;
    t.last_gseq <- last_gseq;
    t.next_gseq <- last_gseq + 1;
    t.active <- true;
    t.killed <- false;
    Hashtbl.reset t.unstable;
    Hashtbl.reset t.ord_buf;
    (match t.excluded_since with
    | Some s ->
        t.excluded_total <- t.excluded_total +. (Process.now t.proc -. s);
        t.excluded_since <- None
    | None -> ());
    Fd.set_peers t.fd view.View.members;
    t.n_views <- t.n_views + 1;
    Process.event t.proc ~component:"traditional" ~kind:Gc_obs.Event.ViewInstall
      ~msg:(Printf.sprintf "view:%d" view.View.vid)
      ~attrs:
        [
          ("vid", string_of_int view.View.vid);
          ("view", Format.asprintf "%a" View.pp view);
          ("rejoin", "true");
        ]
      ();
    List.iter (fun f -> f view) (List.rev t.view_subscribers);
    (* Flush operations queued while we were out. *)
    let q = List.rev t.out_queue in
    t.out_queue <- [];
    List.iter (fun f -> f ()) q
  end

let create runtime ~id ~initial ?(config = default_config)
    ?app_state_provider ?app_state_installer () =
  let proc = Process.create runtime ~id in
  Process.incr ~by:0 proc "traditional.flushes";
  Process.incr ~by:0 proc "traditional.view_changes";
  Process.incr ~by:0 proc "traditional.exclusions";
  Gc_obs.Metrics.set_gauge (Process.metrics proc)
    "traditional.blocked_ms_total" 0.0;
  let fd = Fd.create proc ~hb_period:config.hb_period ~peers:initial () in
  let rc = Rc.create proc ~rto:config.rto () in
  let t_ref = ref None in
  let monitor =
    Fd.monitor fd ~label:"traditional" ~timeout:config.fd_timeout
      ~on_suspect:(fun _q ->
        match !t_ref with Some t -> maybe_coordinate t | None -> ())
      ()
  in
  let t =
    {
      proc;
      fd;
      monitor;
      rc;
      config;
      app_state_provider;
      app_state_installer;
      view = View.initial initial;
      active = List.mem id initial;
      killed = false;
      leaving = false;
      vs_counter = 0;
      unstable = Hashtbl.create 64;
      vs_seen = Hashtbl.create 256;
      future = [];
      next_gseq = 1;
      last_gseq = 0;
      ord_buf = Hashtbl.create 32;
      delivered_rids = Hashtbl.create 256;
      rid_counter = 0;
      pending_req = Hashtbl.create 32;
      assigned_rids = Hashtbl.create 256;
      cur_epoch = (0, -1);
      epoch_counter = 0;
      my_flush = None;
      consensus = None;
      pending_joins = [];
      pending_leaves = [];
      blocked_since = None;
      out_queue = [];
      blocked_total = 0.0;
      excluded_since = None;
      excluded_total = 0.0;
      n_exclusions = 0;
      n_views = 0;
      subscribers = [];
      view_subscribers = [];
    }
  in
  t_ref := Some t;
  (if config.view_agreement = Consensus_based then begin
     let rb = Rb.create proc rc in
     let on_decide ~inst v =
       match (!t_ref, v) with
       | Some t, Tr_vc_proposal { view; deliver; joiners } ->
           if t.active && inst = t.view.View.vid + 1 then begin
             t.my_flush <- None;
             if View.mem view (me t) then begin
               apply_install t ~view ~deliver;
               (* The head of the new view sponsors the joiners' state. *)
               if View.primary t.view = Some (me t) then
                 List.iter
                   (fun p ->
                     ignore
                       (Process.timer t.proc
                          ~delay:t.config.state_transfer_delay (fun () ->
                            let app =
                              Option.map (fun g -> g ()) t.app_state_provider
                            in
                            Rc.send t.rc ~size:4096 ~dst:p
                              (Tr_state
                                 { view = t.view; last_gseq = t.last_gseq; app }))))
                   joiners
             end
             else
               handle_install t ~epoch:t.cur_epoch ~view ~deliver:[]
           end
       | _ -> ()
     in
     let on_solicit ~inst:_ =
       (* A consensus instance we have not proposed for: our merge is not
          complete yet; completing it (or a new suspicion shrinking the
          responder set) triggers our proposal. *)
       match !t_ref with Some t -> check_flush_complete t | None -> ()
     in
     let cons =
       Consensus.create proc ~rc ~rb ~fd ~suspect_timeout:config.fd_timeout
         ~on_decide ~on_solicit ()
     in
     t.consensus <- Some cons
   end);
  Rc.on_deliver rc (fun ~src payload ->
      match payload with
      | Tr_vs m -> vs_receive t m
      | Tr_ack { vsid } -> (
          match Hashtbl.find_opt t.unstable vsid with
          | Some (_, ackers) ->
              Hashtbl.replace ackers src ();
              check_stable t vsid
          | None -> ())
      | Tr_flreq { epoch; proposal } -> handle_flreq t ~src ~epoch ~proposal
      | Tr_flresp { epoch; unstable } -> handle_flresp t ~src ~epoch ~unstable
      | Tr_install { epoch; view; deliver } -> handle_install t ~epoch ~view ~deliver
      | Tr_seqreq { rid; body; size } -> handle_seqreq t ~rid ~body ~size
      | Tr_joinreq { p; rejoin } -> handle_joinreq t ~p ~rejoin
      | Tr_leavereq { p } -> handle_leavereq t ~p
      | Tr_state { view; last_gseq; app } -> handle_state t ~view ~last_gseq ~app
      | _ -> ());
  t

let join t ~via =
  if not t.active then
    Rc.send t.rc ~dst:via (Tr_joinreq { p = me t; rejoin = false })

let leave t =
  if t.active then begin
    t.leaving <- true;
    match alive_members t with
    | c :: _ when c = me t -> handle_leavereq t ~p:(me t)
    | c :: _ -> Rc.send t.rc ~dst:c (Tr_leavereq { p = me t })
    | [] -> ()
  end
