module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim

type t = {
  id : int;
  net : Netsim.t;
  trace : Trace.t;
  metrics : Gc_obs.Metrics.t;
  rng : Gc_sim.Rng.t;
  mutable alive : bool;
  mutable subscribers : (src:int -> Gc_net.Payload.t -> unit) list;
  mutable crash_hooks : (unit -> unit) list;
}

let create ?metrics net ~trace ~id =
  let metrics =
    match metrics with Some m -> m | None -> Gc_obs.Metrics.create ()
  in
  let t =
    {
      id;
      net;
      trace;
      metrics;
      rng = Engine.split_rng (Netsim.engine net);
      alive = true;
      subscribers = [];
      crash_hooks = [];
    }
  in
  Netsim.register net ~node:id (fun ~src payload ->
      if t.alive then
        (* Subscribers are kept newest-first; dispatch oldest-first so layers
           receive messages in the order they were stacked. *)
        List.iter (fun f -> f ~src payload) (List.rev t.subscribers));
  t

let id t = t.id
let metrics t = t.metrics
let engine t = Netsim.engine t.net
let net t = t.net
let rng t = t.rng
let now t = Engine.now (engine t)
let alive t = t.alive

let send t ?size ~dst payload =
  if t.alive then Netsim.send t.net ?size ~src:t.id ~dst payload

let on_receive t f = t.subscribers <- f :: t.subscribers

let timer t ~delay f =
  Engine.schedule (engine t) ~delay (fun () -> if t.alive then f ())

type periodic = { mutable stopped : bool }

let every t ?(jitter = 0.0) ~period f =
  let handle = { stopped = false } in
  let rec arm () =
    let extra = if jitter > 0.0 then Gc_sim.Rng.float t.rng jitter else 0.0 in
    ignore
      (Engine.schedule (engine t) ~delay:(period +. extra) (fun () ->
           if t.alive && not handle.stopped then begin
             f ();
             arm ()
           end))
  in
  arm ();
  handle

let cancel_periodic handle = handle.stopped <- true

let traced t = Trace.enabled t.trace

let event t ~component ~kind ?msg ?attrs () =
  Trace.emit_event t.trace ~time:(now t) ~node:t.id ~component ~kind ?msg
    ?attrs ()

let emit t ~component ~event ?attrs () =
  Trace.emit t.trace ~time:(now t) ~node:t.id ~component ~event ?attrs ()

let incr ?by t name = Gc_obs.Metrics.incr ?by t.metrics name
let observe t name value = Gc_obs.Metrics.observe t.metrics name value
let set_gauge t name value = Gc_obs.Metrics.set_gauge t.metrics name value

let crash t =
  if t.alive then begin
    t.alive <- false;
    Netsim.crash t.net t.id;
    List.iter (fun f -> f ()) (List.rev t.crash_hooks)
  end

let on_crash t f = t.crash_hooks <- f :: t.crash_hooks
