module Trace = Gc_sim.Trace

type t = {
  id : int;
  runtime : Runtime.t;
  metrics : Gc_obs.Metrics.t;
  rng : Runtime.rng;
  mutable alive : bool;
  mutable subscribers : (src:int -> Gc_net.Payload.t -> unit) list;
  mutable crash_hooks : (unit -> unit) list;
}

let create ?metrics runtime ~id =
  let metrics =
    match metrics with Some m -> m | None -> Gc_obs.Metrics.create ()
  in
  let t =
    {
      id;
      runtime;
      metrics;
      rng = runtime.Runtime.split_rng ();
      alive = true;
      subscribers = [];
      crash_hooks = [];
    }
  in
  runtime.Runtime.register ~node:id (fun ~src payload ->
      if t.alive then
        (* Subscribers are kept newest-first; dispatch oldest-first so layers
           receive messages in the order they were stacked. *)
        List.iter (fun f -> f ~src payload) (List.rev t.subscribers));
  t

let id t = t.id
let metrics t = t.metrics
let now t = t.runtime.Runtime.now ()
let alive t = t.alive
let backend t = t.runtime.Runtime.backend
let oracle_alive t q = t.runtime.Runtime.oracle_alive q
let rand_float t bound = t.rng.Runtime.rand_float bound
let rand_int t bound = t.rng.Runtime.rand_int bound

let send t ?size ~dst payload =
  if t.alive then t.runtime.Runtime.send ?size ~src:t.id ~dst payload

let on_receive t f = t.subscribers <- f :: t.subscribers

let timer t ~delay f =
  t.runtime.Runtime.schedule ~delay (fun () -> if t.alive then f ())

type periodic = { mutable stopped : bool }

let every t ?(jitter = 0.0) ~period f =
  let handle = { stopped = false } in
  let rec arm () =
    let extra = if jitter > 0.0 then rand_float t jitter else 0.0 in
    ignore
      (t.runtime.Runtime.schedule ~delay:(period +. extra) (fun () ->
           if t.alive && not handle.stopped then begin
             f ();
             arm ()
           end))
  in
  arm ();
  handle

let cancel_periodic handle = handle.stopped <- true

let trace t = t.runtime.Runtime.trace
let traced t = Trace.enabled (trace t)

let event t ~component ~kind ?msg ?attrs () =
  Trace.emit_event (trace t) ~time:(now t) ~node:t.id ~component ~kind ?msg
    ?attrs ()

let emit t ~component ~event ?attrs () =
  Trace.emit (trace t) ~time:(now t) ~node:t.id ~component ~event ?attrs ()

let incr ?by t name = Gc_obs.Metrics.incr ?by t.metrics name
let observe t name value = Gc_obs.Metrics.observe t.metrics name value
let set_gauge t name value = Gc_obs.Metrics.set_gauge t.metrics name value

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.runtime.Runtime.detach t.id;
    List.iter (fun f -> f ()) (List.rev t.crash_hooks)
  end

let on_crash t f = t.crash_hooks <- f :: t.crash_hooks
