(** The scheduler/transport seam: every capability a {!Process} (and hence
    every protocol layer) may use, as a record of closures.

    Two backends implement it:

    - {!of_netsim}: the deterministic discrete-event simulator
      ({!Gc_sim.Engine} + {!Gc_net.Netsim}) — virtual clock, seeded
      randomness, simulated datagrams.  The substrate for tests, fuzzing
      and benches; runs with the same seed replay bit-for-bit.
    - [Gc_runtime_unix.runtime]: the OS clock, a [Unix.select] event loop
      and TCP-mesh datagrams with {!Gc_net.Frame} framing.  The substrate
      for [gcs_server] production deployments.

    Protocol modules never see the concrete backend: they receive
    capabilities through {!Process} ([now], [send], [timer], [rand], ...),
    so the same stack code drives both worlds. *)

type timer = { cancel : unit -> unit }
(** Handle to a scheduled callback; {!cancel} is idempotent. *)

val cancel : timer -> unit

type rng = {
  rand_float : float -> float;  (** uniform in [\[0, bound)] *)
  rand_int : int -> int;  (** uniform in [\[0, bound)], positive bound *)
}
(** A private random stream.  Sim: split off the engine's seeded root —
    deterministic.  Unix: OS entropy. *)

type t = {
  backend : string;  (** ["sim"] or ["unix"], for logs and assertions *)
  now : unit -> float;
  (** milliseconds — virtual on the sim backend, monotonic wall-clock
      since runtime start on the unix backend *)
  schedule : delay:float -> (unit -> unit) -> timer;
  (** run the callback [delay] ms from now *)
  send : ?size:int -> src:int -> dst:int -> Gc_net.Payload.t -> unit;
  (** unreliable datagram; fire-and-forget, may drop silently *)
  register : node:int -> (src:int -> Gc_net.Payload.t -> unit) -> unit;
  (** install the receive handler for a local node (replaces any prior) *)
  detach : int -> unit;
  (** crash-stop a node's endpoint: stop delivering to and from it *)
  oracle_alive : int -> bool;
  (** omniscient liveness oracle, used {e only} for wrong-suspicion
      observability counters.  The sim knows; the unix backend returns
      [false] (a real network cannot know, so nothing is counted wrong) *)
  split_rng : unit -> rng;
  trace : Gc_sim.Trace.t;  (** flight recorder shared by local nodes *)
}

val of_netsim : Gc_net.Netsim.t -> trace:Gc_sim.Trace.t -> t
(** The deterministic simulator backend.  Draws nothing from the engine's
    random streams by itself: RNG splits happen exactly when a process
    asks, so existing seeded runs replay unchanged. *)
