(* The durability seam, mirroring Runtime: every persistence capability a
   stack may use, as a record of closures.  The in-memory backend keeps the
   simulator deterministic (no clocks, no RNG, no timers — appending draws
   nothing from the engine); the file-backed backend lives in
   gc_runtime_unix (Fstore) so the kernel stays free of Unix. *)

module Metrics = Gc_obs.Metrics
module Wire = Gc_net.Wire

module Record = struct
  type t = { origin : int; seq : int; ordered : bool; payload : string }

  let encode r =
    let w = Buffer.create (String.length r.payload + 8) in
    Wire.varint w r.origin;
    Wire.varint w r.seq;
    Wire.u8 w (if r.ordered then 1 else 0);
    Wire.str w r.payload;
    Buffer.contents w

  let decode s =
    let r = Wire.reader s in
    let origin = Wire.read_varint r in
    let seq = Wire.read_varint r in
    let ordered = Wire.read_u8 r <> 0 in
    let payload = Wire.read_str r in
    { origin; seq; ordered; payload }
end

type t = {
  backend : string;
  append : string -> int;
  sync : unit -> unit;
  iter_from : int -> (index:int -> string -> unit) -> unit;
  truncate_before : int -> unit;
  extent : unit -> int * int;
  save_snapshot : index:int -> string -> unit;
  load_snapshot : unit -> (int * string) option;
  close : unit -> unit;
}

let append t = t.append
let sync t = t.sync ()
let iter_from t = t.iter_from
let truncate_before t = t.truncate_before
let extent t = t.extent ()
let save_snapshot t ~index blob = t.save_snapshot ~index blob
let load_snapshot t = t.load_snapshot ()
let close t = t.close ()

let in_memory ?metrics () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let entries : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let lo = ref 0 and next = ref 0 in
  let snapshot = ref None in
  let update_gauge () =
    Metrics.set_gauge m "storage.log_entries" (float_of_int (!next - !lo))
  in
  let append entry =
    let idx = !next in
    Hashtbl.replace entries idx entry;
    next := idx + 1;
    Metrics.incr m "storage.appends";
    update_gauge ();
    idx
  in
  let sync () = Metrics.incr m "storage.syncs" in
  let iter_from from f =
    for idx = max from !lo to !next - 1 do
      match Hashtbl.find_opt entries idx with
      | Some entry -> f ~index:idx entry
      | None -> ()
    done
  in
  let truncate_before upto =
    let upto = min upto !next in
    if upto > !lo then begin
      for idx = !lo to upto - 1 do
        Hashtbl.remove entries idx
      done;
      lo := upto;
      Metrics.incr m "storage.truncations";
      update_gauge ()
    end
  in
  let save_snapshot ~index blob =
    snapshot := Some (index, blob);
    Metrics.incr m "storage.snapshots"
  in
  let load_snapshot () = !snapshot in
  {
    backend = "memory";
    append;
    sync;
    iter_from;
    truncate_before;
    extent = (fun () -> (!lo, !next));
    save_snapshot;
    load_snapshot;
    close = (fun () -> ());
  }
