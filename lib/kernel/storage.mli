(** The durability seam: an append-only ordered-delivery log plus a
    snapshot slot, as a record of closures — the persistence counterpart of
    {!Runtime}.

    Two backends implement it:

    - {!in_memory}: a deterministic store for the simulator.  Appending
      draws nothing from the engine (no clocks, no RNG, no timers), so
      seeded runs replay bit-for-bit whether or not a stack logs; the log
      survives a simulated process restart because the harness keeps the
      record across stack rebuilds.
    - [Gc_runtime_unix.Fstore]: CRC-framed records in a [--data-dir] file,
      with fsync batching and torn-tail tolerance on open.  The substrate
      for [gcs_server] crash recovery.

    Entries are opaque strings to the store; the ordering layers write
    {!Record}-encoded delivered messages.  Indices are dense and monotonic:
    the live window is [\[lo, next)] (see {!extent}), [append] returns the
    index it assigned, and [truncate_before] advances [lo] after a
    snapshot has made the prefix redundant. *)

(** The entry format the ordering layers log: one delivered message, enough
    to replay it through the application after a crash. *)
module Record : sig
  type t = {
    origin : int;  (** submitting node *)
    seq : int;  (** delivery index at the logging node *)
    ordered : bool;  (** abcast/conflicting (true) vs commuting rbcast *)
    payload : string;  (** [Gc_net.Payload] codec bytes of the message *)
  }

  val encode : t -> string

  val decode : string -> t
  (** @raise Gc_net.Wire.Short on a truncated entry. *)
end

type t = {
  backend : string;  (** ["memory"] or ["file"], for logs and assertions *)
  append : string -> int;
      (** append one entry, returning the index it occupies.  Buffered:
          not durable until the next [sync] *)
  sync : unit -> unit;  (** make every prior append durable (fsync batch) *)
  iter_from : int -> (index:int -> string -> unit) -> unit;
      (** replay entries with index >= the argument, in index order *)
  truncate_before : int -> unit;
      (** drop entries below the index (after a covering snapshot) *)
  extent : unit -> int * int;
      (** [(lo, next)]: live entries occupy [\[lo, next)] *)
  save_snapshot : index:int -> string -> unit;
      (** durably store an application snapshot covering indices < [index];
          replaces any previous snapshot *)
  load_snapshot : unit -> (int * string) option;
      (** the latest stored snapshot as [(index, blob)], if any *)
  close : unit -> unit;
}

(** Convenience wrappers over the record fields. *)

val append : t -> string -> int
val sync : t -> unit
val iter_from : t -> int -> (index:int -> string -> unit) -> unit
val truncate_before : t -> int -> unit
val extent : t -> int * int
val save_snapshot : t -> index:int -> string -> unit
val load_snapshot : t -> (int * string) option
val close : t -> unit

val in_memory : ?metrics:Gc_obs.Metrics.t -> unit -> t
(** The deterministic backend.  [sync] only counts ([storage.syncs]);
    appends are always visible to [iter_from].  Metrics recorded:
    [storage.appends], [storage.syncs], [storage.snapshots],
    [storage.truncations] (counters) and [storage.log_entries] (gauge). *)
