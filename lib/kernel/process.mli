(** Per-node process context: the glue every protocol component is built on.

    A [Process.t] owns one node of the simulated network and gives its
    components:

    - message fan-out: components subscribe with {!on_receive}; each incoming
      payload is offered to every subscriber, which pattern-matches on its
      own extensible-variant constructors and ignores the rest (this mirrors
      the event routing of the Appia/Cactus frameworks the paper used);
    - {e alive-guarded} timers: when the process crashes, pending and
      periodic timers silently stop firing, so no protocol code runs at a
      dead process (crash-stop);
    - a private random stream, tracing tagged with the node id, and a
      per-node {!Gc_obs.Metrics} registry every layer records into. *)

type t

val create :
  ?metrics:Gc_obs.Metrics.t ->
  Gc_net.Netsim.t -> trace:Gc_sim.Trace.t -> id:int -> t
(** Create the process for node [id] and hook it into the network.
    [metrics] defaults to a fresh registry. *)

val id : t -> int

val metrics : t -> Gc_obs.Metrics.t
(** The node's metrics registry (shared by every layer on this node). *)

val engine : t -> Gc_sim.Engine.t
val net : t -> Gc_net.Netsim.t
val rng : t -> Gc_sim.Rng.t
val now : t -> float
val alive : t -> bool

val send : t -> ?size:int -> dst:int -> Gc_net.Payload.t -> unit
(** Unreliable datagram send ([u-send] in Figure 9 of the paper).  No-op if
    the process is dead. *)

val on_receive : t -> (src:int -> Gc_net.Payload.t -> unit) -> unit
(** Subscribe a component to incoming payloads ([u-receive]). *)

val timer : t -> delay:float -> (unit -> unit) -> Gc_sim.Engine.timer
(** One-shot timer; the callback is skipped if the process has died. *)

type periodic

val every : t -> ?jitter:float -> period:float -> (unit -> unit) -> periodic
(** Periodic timer firing each [period] ms (plus uniform jitter in
    [\[0, jitter\]], default 0).  Stops when cancelled or when the process
    dies. *)

val cancel_periodic : periodic -> unit

val crash : t -> unit
(** Crash-stop: mark dead, stop the network endpoint, run the registered
    {!on_crash} hooks (environment-side bookkeeping, not protocol code). *)

val on_crash : t -> (unit -> unit) -> unit

val traced : t -> bool
(** Whether tracing is enabled — guard for emissions whose attribute
    construction is itself costly (e.g. payload rendering). *)

val event :
  t -> component:string -> kind:Gc_obs.Event.kind -> ?msg:string ->
  ?attrs:(string * string) list -> unit -> unit
(** Typed lifecycle event stamped with this node, the current time and
    the node's Lamport clock; [msg] is the stable message id the event
    concerns (e.g. ["ab:0.3"]). *)

val emit :
  t -> component:string -> event:string ->
  ?attrs:(string * string) list -> unit -> unit
(** String-tagged trace helper; [event] is mapped through
    {!Gc_obs.Event.kind_of_string}.  Prefer {!event} on protocol
    lifecycle paths. *)

val incr : ?by:int -> t -> string -> unit
(** Bump a counter in the node's metrics registry. *)

val observe : t -> string -> float -> unit
(** Record a histogram sample in the node's metrics registry. *)

val set_gauge : t -> string -> float -> unit
(** Set a gauge in the node's metrics registry to its latest reading. *)
