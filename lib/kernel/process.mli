(** Per-node process context: the glue every protocol component is built on.

    A [Process.t] owns one node of the group and gives its components:

    - message fan-out: components subscribe with {!on_receive}; each incoming
      payload is offered to every subscriber, which pattern-matches on its
      own extensible-variant constructors and ignores the rest (this mirrors
      the event routing of the Appia/Cactus frameworks the paper used);
    - {e alive-guarded} timers: when the process crashes, pending and
      periodic timers silently stop firing, so no protocol code runs at a
      dead process (crash-stop);
    - a private random stream, tracing tagged with the node id, and a
      per-node {!Gc_obs.Metrics} registry every layer records into.

    Every capability is routed through the {!Runtime} seam, so the same
    protocol code runs unchanged on the deterministic simulator and on the
    real-network unix backend; no protocol module can name a backend type. *)

type t

val create : ?metrics:Gc_obs.Metrics.t -> Runtime.t -> id:int -> t
(** Create the process for node [id] on the given runtime and hook it into
    the transport.  [metrics] defaults to a fresh registry. *)

val id : t -> int

val metrics : t -> Gc_obs.Metrics.t
(** The node's metrics registry (shared by every layer on this node). *)

val now : t -> float
val alive : t -> bool

val backend : t -> string
(** The runtime backend's name (["sim"], ["unix"]) — for logs only. *)

val oracle_alive : t -> int -> bool
(** Whether the {e environment} knows peer [q] to be alive — the sim's
    omniscient oracle behind the [fd.wrong_suspicions] and
    [monitoring.wrongful_exclusions] counters.  Always [false] on real
    networks, where ground truth is unknowable. *)

val rand_float : t -> float -> float
(** Uniform draw in [\[0, bound)] from the process's private stream. *)

val rand_int : t -> int -> int
(** Uniform draw in [\[0, bound)] (positive [bound]). *)

val send : t -> ?size:int -> dst:int -> Gc_net.Payload.t -> unit
(** Unreliable datagram send ([u-send] in Figure 9 of the paper).  No-op if
    the process is dead. *)

val on_receive : t -> (src:int -> Gc_net.Payload.t -> unit) -> unit
(** Subscribe a component to incoming payloads ([u-receive]). *)

val timer : t -> delay:float -> (unit -> unit) -> Runtime.timer
(** One-shot timer; the callback is skipped if the process has died. *)

type periodic

val every : t -> ?jitter:float -> period:float -> (unit -> unit) -> periodic
(** Periodic timer firing each [period] ms (plus uniform jitter in
    [\[0, jitter\]], default 0).  Stops when cancelled or when the process
    dies. *)

val cancel_periodic : periodic -> unit

val crash : t -> unit
(** Crash-stop: mark dead, stop the transport endpoint, run the registered
    {!on_crash} hooks (environment-side bookkeeping, not protocol code). *)

val on_crash : t -> (unit -> unit) -> unit

val traced : t -> bool
(** Whether tracing is enabled — guard for emissions whose attribute
    construction is itself costly (e.g. payload rendering). *)

val event :
  t -> component:string -> kind:Gc_obs.Event.kind -> ?msg:string ->
  ?attrs:(string * string) list -> unit -> unit
(** Typed lifecycle event stamped with this node, the current time and
    the node's Lamport clock; [msg] is the stable message id the event
    concerns (e.g. ["ab:0.3"]). *)

val emit :
  t -> component:string -> event:string ->
  ?attrs:(string * string) list -> unit -> unit
(** String-tagged trace helper; [event] is mapped through
    {!Gc_obs.Event.kind_of_string}.  Prefer {!event} on protocol
    lifecycle paths. *)

val incr : ?by:int -> t -> string -> unit
(** Bump a counter in the node's metrics registry. *)

val observe : t -> string -> float -> unit
(** Record a histogram sample in the node's metrics registry. *)

val set_gauge : t -> string -> float -> unit
(** Set a gauge in the node's metrics registry to its latest reading. *)
