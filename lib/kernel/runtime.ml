type timer = { cancel : unit -> unit }

let cancel t = t.cancel ()

type rng = { rand_float : float -> float; rand_int : int -> int }

type t = {
  backend : string;
  now : unit -> float;
  schedule : delay:float -> (unit -> unit) -> timer;
  send : ?size:int -> src:int -> dst:int -> Gc_net.Payload.t -> unit;
  register : node:int -> (src:int -> Gc_net.Payload.t -> unit) -> unit;
  detach : int -> unit;
  oracle_alive : int -> bool;
  split_rng : unit -> rng;
  trace : Gc_sim.Trace.t;
}

let of_netsim net ~trace =
  let engine = Gc_net.Netsim.engine net in
  {
    backend = "sim";
    now = (fun () -> Gc_sim.Engine.now engine);
    schedule =
      (fun ~delay f ->
        let h = Gc_sim.Engine.schedule engine ~delay f in
        { cancel = (fun () -> Gc_sim.Engine.cancel h) });
    send = (fun ?size ~src ~dst p -> Gc_net.Netsim.send net ?size ~src ~dst p);
    register = (fun ~node f -> Gc_net.Netsim.register net ~node f);
    detach = (fun node -> Gc_net.Netsim.crash net node);
    oracle_alive = (fun node -> Gc_net.Netsim.alive net node);
    split_rng =
      (fun () ->
        let rng = Gc_sim.Engine.split_rng engine in
        {
          rand_float = (fun bound -> Gc_sim.Rng.float rng bound);
          rand_int = (fun bound -> Gc_sim.Rng.int rng bound);
        });
    trace;
  }
