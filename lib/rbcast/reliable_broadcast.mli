(** Reliable broadcast over reliable channels.

    Relay-on-first-delivery broadcast with the classic guarantees:

    - {b validity}: if a correct process broadcasts m, it eventually
      delivers m;
    - {b agreement}: if a correct process delivers m, every correct process
      in m's destination set eventually delivers m (each process relays m to
      the whole destination set before delivering it);
    - {b integrity}: m is delivered at most once, and only if broadcast.

    Destination sets are per-broadcast, so the layer works unchanged as the
    membership above evolves.  Used by consensus (decision dissemination),
    atomic broadcast (payload dissemination) and generic broadcast. *)

type t

val create : Gc_kernel.Process.t -> ?epoch:int -> Gc_rchannel.Reliable_channel.t -> t
(** [epoch] (default 0) is the boot incarnation: broadcast ids are
    [(origin, bid)] and receivers dedup on them for the life of the run, so
    a restarted process must number its broadcasts above every previous
    incarnation's or peers silently drop its new messages as duplicates. *)

val broadcast : t -> ?size:int -> dests:int list -> Gc_net.Payload.t -> unit
(** Reliably broadcast to [dests] (the sender should normally be included;
    it then delivers its own message too). *)

val on_deliver : t -> (origin:int -> Gc_net.Payload.t -> unit) -> unit
(** Subscribe to deliveries; [origin] is the broadcasting process, not the
    relay the message arrived from. *)

val delivered_count : t -> int
