module Process = Gc_kernel.Process
module Rc = Gc_rchannel.Reliable_channel

type Gc_net.Payload.t +=
  | Rb_msg of {
      origin : int;
      bid : int;
      inner : Gc_net.Payload.t;
      dests : int list;
      size : int;
    }

let () =
  Gc_net.Payload.register_printer (function
    | Rb_msg { origin; bid; inner; _ } ->
        Some
          (Printf.sprintf "rb#%d.%d(%s)" origin bid
             (Gc_net.Payload.to_string inner))
    | _ -> None)

let () =
  let module W = Gc_net.Wire in
  Gc_net.Payload.register_codec ~tag:"rb"
    ~encode:(fun enc w p ->
      match p with
      | Rb_msg { origin; bid; inner; dests; size } ->
          W.varint w origin;
          W.varint w bid;
          W.varint w size;
          W.list w W.varint dests;
          enc w inner;
          true
      | _ -> false)
    ~decode:(fun dec r ->
      let origin = W.read_varint r in
      let bid = W.read_varint r in
      let size = W.read_varint r in
      let dests = W.read_list r W.read_varint in
      let inner = dec r in
      Rb_msg { origin; bid; inner; dests; size })

type t = {
  proc : Process.t;
  rc : Rc.t;
  seen : (int * int, unit) Hashtbl.t; (* (origin, bid) already delivered *)
  mutable next_bid : int;
  mutable subscribers : (origin:int -> Gc_net.Payload.t -> unit) list;
  mutable delivered : int;
}

let deliver t ~origin inner =
  t.delivered <- t.delivered + 1;
  Process.incr t.proc "rbcast.delivered";
  List.iter (fun f -> f ~origin inner) (List.rev t.subscribers)

let handle t = function
  | Rb_msg { origin; bid; inner; dests; size } ->
      if not (Hashtbl.mem t.seen (origin, bid)) then begin
        Hashtbl.replace t.seen (origin, bid) ();
        (* Relay before delivering: if we deliver, every correct destination
           has the message in some correct process's reliable channel. *)
        let me = Process.id t.proc in
        List.iter
          (fun dst ->
            if dst <> me && dst <> origin then
              Rc.send t.rc ~size ~dst (Rb_msg { origin; bid; inner; dests; size }))
          dests;
        if List.mem me dests || me = origin then begin
          if Process.traced t.proc then
            Process.event t.proc ~component:"rbcast" ~kind:Gc_obs.Event.Deliver
              ~msg:(Printf.sprintf "rb:%d.%d" origin bid)
              ();
          deliver t ~origin inner
        end
      end
  | _ -> ()

(* Broadcast ids are (origin, bid) and peers dedup on them forever, so a
   process restarting from its log must never reuse a bid from a previous
   incarnation: scope the counter by boot epoch, leaving 2^40 broadcasts
   per boot.  Epoch 0 (the default) keeps the historical numbering. *)
let epoch_bits = 40

let create proc ?(epoch = 0) rc =
  let t =
    {
      proc;
      rc;
      seen = Hashtbl.create 64;
      next_bid = epoch lsl epoch_bits;
      subscribers = [];
      delivered = 0;
    }
  in
  Rc.on_deliver rc (fun ~src:_ payload -> handle t payload);
  t

let broadcast t ?(size = 64) ~dests inner =
  Process.incr t.proc "rbcast.broadcasts";
  let origin = Process.id t.proc in
  let bid = t.next_bid in
  t.next_bid <- bid + 1;
  if Process.traced t.proc then
    Process.event t.proc ~component:"rbcast" ~kind:Gc_obs.Event.Send
      ~msg:(Printf.sprintf "rb:%d.%d" origin bid)
      ~attrs:[ ("dests", string_of_int (List.length dests)) ]
      ();
  let msg = Rb_msg { origin; bid; inner; dests; size } in
  (* Routing through our own reliable channel (loopback included) funnels the
     message into [handle], which relays and delivers exactly once. *)
  Rc.send t.rc ~size ~dst:origin msg

let on_deliver t f = t.subscribers <- f :: t.subscribers
let delivered_count t = t.delivered
