type Gc_net.Payload.t +=
  | Fgb of { fseq : int; body : Gc_net.Payload.t }

let () =
  Gc_net.Payload.register_printer (function
    | Fgb { fseq; body } ->
        Some (Printf.sprintf "fgb#%d(%s)" fseq (Gc_net.Payload.to_string body))
    | _ -> None)

let unwrap = function Fgb { body; _ } -> body | p -> p

let lift_conflict rel a b = rel (unwrap a) (unwrap b)
let lift spec = Conflict.map_payload unwrap spec

type t = {
  gb : Generic_broadcast.t;
  mutable next_fseq : int;
  (* per-origin: next expected sequence and held-back arrivals *)
  expected : (int, int) Hashtbl.t;
  held : (int * int, Gc_net.Payload.t) Hashtbl.t;
  mutable subscribers : (origin:int -> Gc_net.Payload.t -> unit) list;
  mutable delivered : int;
}

let deliver t ~origin body =
  t.delivered <- t.delivered + 1;
  List.iter (fun f -> f ~origin body) (List.rev t.subscribers)

let rec drain t origin =
  let next = Option.value ~default:0 (Hashtbl.find_opt t.expected origin) in
  match Hashtbl.find_opt t.held (origin, next) with
  | Some body ->
      Hashtbl.remove t.held (origin, next);
      Hashtbl.replace t.expected origin (next + 1);
      deliver t ~origin body;
      drain t origin
  | None -> ()

let create gb =
  let t =
    {
      gb;
      next_fseq = 0;
      expected = Hashtbl.create 16;
      held = Hashtbl.create 32;
      subscribers = [];
      delivered = 0;
    }
  in
  Generic_broadcast.on_deliver gb (fun ~origin payload ->
      match payload with
      | Fgb { fseq; body } ->
          Hashtbl.replace t.held (origin, fseq) body;
          drain t origin
      | _ -> ());
  t

let gbcast t ?size body =
  let fseq = t.next_fseq in
  t.next_fseq <- fseq + 1;
  Generic_broadcast.gbcast t.gb ?size (Fgb { fseq; body })

let on_deliver t f = t.subscribers <- f :: t.subscribers
let delivered_count t = t.delivered
let held_count t = Hashtbl.length t.held
