type relation = Gc_net.Payload.t -> Gc_net.Payload.t -> bool

let none _ _ = false
let all _ _ = true

type klass = Commuting | Ordered

let by_class ~classify m m' =
  match (classify m, classify m') with
  | Commuting, Commuting -> false
  | Commuting, Ordered | Ordered, Commuting | Ordered, Ordered -> true

type index = {
  classes : int;
  classify : Gc_net.Payload.t -> int;
  matrix : int -> int -> bool;
}

type t = Relation of relation | Indexed of index

let of_relation r = Relation r

let indexed ~classes ~classify ~matrix =
  if classes < 1 then invalid_arg "Conflict.indexed: classes < 1";
  Indexed { classes; classify; matrix }

let two_class ~classify =
  Indexed
    {
      classes = 2;
      classify = (fun p -> match classify p with Commuting -> 0 | Ordered -> 1);
      matrix = (fun a b -> a <> 0 || b <> 0);
    }

let check = function
  | Relation r -> r
  | Indexed { classify; matrix; _ } ->
      fun m m' -> matrix (classify m) (classify m')

let map_payload f = function
  | Relation r -> Relation (fun a b -> r (f a) (f b))
  | Indexed i -> Indexed { i with classify = (fun p -> i.classify (f p)) }
