type id = int * int

type t =
  | Scan of {
      rel : Conflict.relation;
      tbl : (id, Gc_net.Payload.t) Hashtbl.t;
    }
  | Classes of {
      idx : Conflict.index;
      occ : int array; (* tracked messages per conflict class *)
      cls : (id, int) Hashtbl.t; (* tracked id -> its class *)
    }

let create = function
  | Conflict.Relation rel -> Scan { rel; tbl = Hashtbl.create 64 }
  | Conflict.Indexed idx ->
      Classes
        { idx; occ = Array.make idx.classes 0; cls = Hashtbl.create 64 }

let occupancy = function
  | Scan { tbl; _ } -> Hashtbl.length tbl
  | Classes { cls; _ } -> Hashtbl.length cls

let mem t id =
  match t with
  | Scan { tbl; _ } -> Hashtbl.mem tbl id
  | Classes { cls; _ } -> Hashtbl.mem cls id

let add t id payload =
  match t with
  | Scan { tbl; _ } -> if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id payload
  | Classes { idx; occ; cls } ->
      if not (Hashtbl.mem cls id) then begin
        let c = idx.classify payload in
        Hashtbl.add cls id c;
        occ.(c) <- occ.(c) + 1
      end

let remove t id =
  match t with
  | Scan { tbl; _ } -> Hashtbl.remove tbl id
  | Classes { occ; cls; _ } -> (
      match Hashtbl.find_opt cls id with
      | Some c ->
          Hashtbl.remove cls id;
          occ.(c) <- occ.(c) - 1
      | None -> ())

let clear = function
  | Scan { tbl; _ } -> Hashtbl.reset tbl
  | Classes { occ; cls; _ } ->
      Hashtbl.reset cls;
      Array.fill occ 0 (Array.length occ) 0

let blocked t ~excluding payload =
  match t with
  | Scan { rel; tbl } ->
      (* gcs-lint: allow D3 — commutative OR-accumulation over the whole
         table; the result is independent of visit order, and this sits on
         the per-message fast path where key-sorting every probe would cost
         O(n log n) per examine. *)
      Hashtbl.fold
        (fun id' p' acc -> acc || (id' <> excluding && rel payload p'))
        tbl false
  | Classes { idx; occ; cls } ->
      let c = idx.classify payload in
      let exc = Hashtbl.find_opt cls excluding in
      let rec probe c' =
        if c' >= idx.classes then false
        else
          let o =
            occ.(c') - (match exc with Some e when e = c' -> 1 | _ -> 0)
          in
          if o > 0 && idx.matrix c c' then true else probe (c' + 1)
      in
      probe 0
