(** FIFO generic broadcast (the paper's footnote 9).

    The passive-replication solution of Section 3.2.3 "assumes FIFO generic
    broadcast, i.e. the FIFO point-to-point property in addition to the
    ordering properties of generic broadcast".  This wrapper adds the FIFO
    property to {!Generic_broadcast}: messages from the same origin are
    delivered in sending order, by holding back out-of-order arrivals.

    Why this preserves generic order: conflicting messages never take the
    fast path together — their relative positions come from stage-change
    cuts, whose sequence is {e identical at every process} (they ride atomic
    broadcast).  Holding a message until its per-origin predecessors arrive
    is a deterministic function of that shared sequence plus commuting
    (order-free) messages, so any conflicting pair still gets the same
    relative order everywhere, and the per-origin order becomes the sending
    order. *)

type t

val lift_conflict : Conflict.relation -> Conflict.relation
(** Wrap a conflict relation so it sees through this module's sequence-number
    envelope.  The underlying {!Generic_broadcast.create} must be given the
    lifted relation, otherwise it would compare envelopes instead of
    application payloads. *)

val lift : Conflict.t -> Conflict.t
(** {!lift_conflict} for a full conflict specification (indexed
    specifications have their classifier unwrapped the same way). *)

val create : Generic_broadcast.t -> t
(** Wrap an existing generic-broadcast instance.  Deliveries must then be
    consumed through {!on_deliver} of this wrapper ({e not} of the wrapped
    instance, which would bypass the FIFO buffering). *)

val gbcast : t -> ?size:int -> Gc_net.Payload.t -> unit
(** Broadcast with a per-origin sequence number. *)

val on_deliver : t -> (origin:int -> Gc_net.Payload.t -> unit) -> unit
(** FIFO-per-origin, generic-order deliveries. *)

val delivered_count : t -> int

val held_count : t -> int
(** Messages currently held waiting for a per-origin predecessor. *)
