(** Thrifty generic broadcast ("Generic Broadcast" in Figure 9) — the paper's
    replacement for view synchrony.

    Guarantees (Pedone–Schiper [29, 30]):

    - the usual reliable-broadcast properties (validity, uniform agreement,
      integrity), plus
    - {b generic order}: if [conflict m m'] and two processes deliver both,
      they deliver them in the same order.

    Non-conflicting messages take a {e fast path} with no consensus: the
    message is reliably broadcast, every process acknowledges it to everyone
    (unless it conflicts with something already acknowledged in the current
    stage), and it is g-delivered on receipt of a quorum of
    [A = ceil((2n+1)/3)] acknowledgements.  Two conflicting messages can
    never both be fast-delivered: their ack quorums would intersect in a
    process that acknowledged both, which the ack rule forbids.

    When a conflict does appear, the {e stage} changes (the thrifty use of
    atomic broadcast, [1]):

    + every process freezes its fast path and broadcasts its stage state
      (messages acknowledged, messages pending);
    + any process that collects [C = ceil((2n+1)/3)] states computes a cut:
      messages acknowledged by at least [A + C - n] respondents {e may} have
      been fast-delivered somewhere and form the must-deliver-first list
      (quorum intersection makes this list complete and conflict-free);
      everything else pending forms the ordered tail;
    + the cut is broadcast through the {e atomic broadcast} component; the
      first cut for the stage in the total order wins, everyone applies it
      (deliver the first list, then the tail, skipping duplicates) and moves
      to the next stage.

    So consensus runs only when conflicting messages are actually broadcast —
    with the empty conflict relation this component never touches atomic
    broadcast, and with the total conflict relation it behaves like atomic
    broadcast (Section 3.2.1).

    {b Resilience}: the fast path and the stage change require [n - f >=
    ceil((2n+1)/3)] live members, i.e. [f < n/3] (Pedone–Schiper's published
    requirement), while the underlying atomic broadcast alone tolerates
    [f < n/2].  Size replica groups accordingly (e.g. 4 or 5 replicas to
    survive one crash with the fast path active). *)

type t

type ack_mode =
  | Two_thirds
      (** The published quorums: fast delivery and stage changes both use
          [ceil((2n+1)/3)]-member quorums, tolerating [f < n/3]. *)
  | All_members
      (** Stability-style variant: fast delivery waits for {e every}
          member's acknowledgement, which lets a stage change proceed from a
          single process's state (any fast-delivered message was acked by
          all, so one state is complete) — the cut then only depends on
          atomic broadcast and everything except the fast path tolerates
          [f < n/2].  Additionally, self-conflicting (ordered-class)
          messages skip the fast path entirely and ride the cut.  A dead
          member stalls the fast path until the membership above excludes
          it, which is exactly the division of labour the paper assigns to
          the monitoring component. *)

val create :
  Gc_kernel.Process.t ->
  rc:Gc_rchannel.Reliable_channel.t ->
  rb:Gc_rbcast.Reliable_broadcast.t ->
  ab:Gc_abcast.Atomic_broadcast.t ->
  conflict:Conflict.t ->
  ?ack_mode:ack_mode ->
  ?cut_backoff:float ->
  ?batch_max:int ->
  ?batch_delay:float ->
  ?storage:Gc_kernel.Storage.t ->
  ?epoch:int ->
  members:int list ->
  unit ->
  t
(** [ack_mode] defaults to [Two_thirds] (the paper-cited algorithm); the
    full stack uses [All_members] for [f < n/2] robustness.  [cut_backoff]
    (default 15 ms) staggers stage-change proposals by member rank so that
    normally a single cut is broadcast.

    [conflict] may be a bare pairwise relation or an indexed class
    specification ({!Conflict.t}); indexed specifications make the
    per-message "conflicts with anything pending?" probe O(classes)
    instead of a scan (see {!Conflict_index}).

    [batch_max] (default 1 = unbatched) and [batch_delay] (default 1 ms)
    batch submissions through a size/tick watermark ({!Gc_abcast.Batcher}):
    up to [batch_max] messages ride one reliable broadcast, and their
    fast-path acknowledgements ride one vector, amortising the O(n^2)
    relay and O(n) ack cost per application message.  Per-sender FIFO is
    preserved; with [batch_max = 1] the wire traffic is exactly the
    unbatched protocol's.

    [storage], when given, receives one {!Gc_kernel.Storage.Record} per
    g-delivered message, appended between duplicate suppression and the
    subscriber callbacks (write-ahead with respect to the application);
    the record's [ordered] flag is the message's conflict class.

    [epoch] (default 0) is the boot incarnation: message ids are
    [(origin, gseq)] and receivers dedup on them for the life of the run,
    so a restarted process must number its submissions above every
    previous incarnation's. *)

val gbcast : t -> ?size:int -> Gc_net.Payload.t -> unit
(** Generic-broadcast [payload] to the current members. *)

val on_deliver : t -> (origin:int -> Gc_net.Payload.t -> unit) -> unit

val flush : t -> unit
(** Emit anything parked in the submission and acknowledgement batchers
    immediately — part of orderly shutdown: without it a gbcast during the
    last [batch_delay] before teardown is silently dropped. *)

val set_members : t -> int list -> unit
(** Replace the member set (affects quorum sizes and destinations for new
    traffic).  As with atomic broadcast, call it only at agreed points of the
    delivery order. *)

val members : t -> int list

(** {1 Introspection (tests and benches)} *)

val delivered_count : t -> int

val fast_delivered_count : t -> int
(** Messages delivered by quorum acknowledgement, without consensus. *)

val stage : t -> int
(** Current stage number = number of stage changes applied locally; each
    stage change is exactly one message through atomic broadcast. *)

val delivered_ids : t -> (int * int) list

val bootstrap : t -> stage:int -> delivered:(int * int) list -> unit
(** Joiner initialisation from a state transfer: start at [stage], treating
    the listed message ids as already delivered. *)
