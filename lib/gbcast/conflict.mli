(** Conflict relations for generic broadcast.

    A conflict relation says which pairs of messages must be delivered in the
    same order everywhere.  Generic broadcast pays ordering cost only for
    conflicting pairs (Section 3.2.1 of the paper).

    Two representations coexist:

    - a bare pairwise {!relation} — maximally general, but the broadcast
      layer can only evaluate "does [m] conflict with anything pending?" by
      scanning every pending message;
    - an {!index} — messages are mapped onto a small number of {e conflict
      classes} with a class-level conflict matrix, so the same question is
      answered from per-class occupancy counters in O(classes), independent
      of how many messages are pending (see {!Conflict_index}).

    Any relation expressible as classes + matrix should use the indexed
    form; {!check} recovers the pairwise view when one is needed. *)

type relation = Gc_net.Payload.t -> Gc_net.Payload.t -> bool
(** [conflict m m'] — must be symmetric.  Reflexivity is not required: the
    relation is only ever consulted on distinct messages. *)

val none : relation
(** Nothing conflicts: generic broadcast degenerates to reliable broadcast. *)

val all : relation
(** Everything conflicts: generic broadcast degenerates to atomic
    broadcast. *)

type klass = Commuting | Ordered
(** The paper's two-class instantiation (Section 3.3): [Commuting] messages
    ([rbcast] invocations, e.g. passive-replication updates) conflict only
    with [Ordered] ones; [Ordered] messages ([abcast] invocations, e.g.
    primary-change) conflict with everything. *)

val by_class : classify:(Gc_net.Payload.t -> klass) -> relation
(** The conflict relation induced by the rbcast/abcast class table of
    Section 3.3:

    {v
               rbcast       abcast
    rbcast   no conflict   conflict
    abcast    conflict     conflict
    v} *)

type index = {
  classes : int;  (** number of conflict classes, [>= 1] *)
  classify : Gc_net.Payload.t -> int;
      (** total map into [\[0, classes)]; must be a pure function of the
          payload *)
  matrix : int -> int -> bool;
      (** class-level conflict; must be symmetric on [\[0, classes)^2] *)
}

type t = Relation of relation | Indexed of index
(** A conflict specification as handed to {!Generic_broadcast.create}. *)

val of_relation : relation -> t

val indexed :
  classes:int ->
  classify:(Gc_net.Payload.t -> int) ->
  matrix:(int -> int -> bool) ->
  t
(** Raises [Invalid_argument] if [classes < 1]. *)

val two_class : classify:(Gc_net.Payload.t -> klass) -> t
(** The indexed form of {!by_class}: class 0 = [Commuting], class 1 =
    [Ordered], conflict everywhere except [Commuting x Commuting]. *)

val check : t -> relation
(** The pairwise view of a specification — [check (of_relation r) = r];
    for an indexed specification, the relation induced by classifying both
    payloads and consulting the matrix. *)

val map_payload : (Gc_net.Payload.t -> Gc_net.Payload.t) -> t -> t
(** Pre-compose the specification with a payload projection — e.g. peeling
    an envelope before classifying (see
    {!Fifo_generic_broadcast.lift_conflict}). *)
