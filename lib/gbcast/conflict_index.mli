(** Occupancy index over the stage-relevant message set.

    The generic-broadcast fast path must answer, once per examined message:
    "does [m] conflict with any {e other} message currently relevant to the
    stage?" (relevant = pending or acknowledged in the stage).  Scanning the
    relevant set makes that O(M) per message — O(M^2) per stage, the
    dominant cost under commuting-only load where a stage never ends.

    This index tracks the relevant set incrementally and answers the
    question from its {!Conflict.t} specification:

    - [Indexed] specifications keep a per-conflict-class occupancy counter:
      a probe consults [classes] counters and the class matrix — O(classes),
      independent of how many messages are pending;
    - bare [Relation] specifications keep the payloads and fall back to the
      linear scan the index replaces, preserving exact semantics for
      arbitrary relations.

    The structure is a {e set} keyed by message id: {!add} is idempotent
    and {!remove} tolerates absent ids, so callers can mirror insertions
    into overlapping tables (pending and stage history) without
    double-counting. *)

type id = int * int

type t

val create : Conflict.t -> t

val add : t -> id -> Gc_net.Payload.t -> unit
(** Track a message.  Idempotent: re-adding a tracked id is a no-op (the
    first payload's class sticks — ids are globally unique, so a tracked id
    always denotes the same payload). *)

val remove : t -> id -> unit
(** Stop tracking an id (no-op when untracked). *)

val mem : t -> id -> bool
val clear : t -> unit

val occupancy : t -> int
(** Number of tracked messages. *)

val blocked : t -> excluding:id -> Gc_net.Payload.t -> bool
(** [blocked t ~excluding:id p]: does [p] conflict with any tracked message
    other than [id]?  The exclusion lets callers probe for a message that is
    itself already tracked (the examined message sits in the pending set). *)
