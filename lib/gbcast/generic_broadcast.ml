module Process = Gc_kernel.Process
module Rc = Gc_rchannel.Reliable_channel
module Rb = Gc_rbcast.Reliable_broadcast
module Ab = Gc_abcast.Atomic_broadcast
module Batcher = Gc_abcast.Batcher
module Delivered = Gc_abcast.Delivered_set
module Sorted = Gc_sim.Sorted

type msg = {
  origin : int;
  gseq : int;
  body : Gc_net.Payload.t;
  size : int;
  sent_at : float; (* virtual submit time at the origin, for latency metrics *)
}

let msg_id m = (m.origin, m.gseq)
let compare_msg a b = compare (msg_id a) (msg_id b)

type Gc_net.Payload.t +=
  | Gb_fast of msg
  | Gb_fast_batch of msg list
  | Gb_ack of { id : int * int; stage : int }
  | Gb_acks of ((int * int) * int) list (* (id, stage) per acknowledged msg *)
  | Gb_state of { stage : int; acked : msg list; pending : msg list }
  | Gb_cut of { stage : int; first : msg list; rest : msg list }

let () =
  Gc_net.Payload.register_printer (function
    | Gb_fast m -> Some (Printf.sprintf "gb.fast#%d.%d" m.origin m.gseq)
    | Gb_fast_batch ms ->
        Some
          (Printf.sprintf "gb.fastbatch[%s]"
             (String.concat ";"
                (List.map
                   (fun m -> Printf.sprintf "%d.%d" m.origin m.gseq)
                   ms)))
    | Gb_ack { id = o, s; stage } ->
        Some (Printf.sprintf "gb.ack#%d.%d@%d" o s stage)
    | Gb_acks l ->
        Some
          (Printf.sprintf "gb.acks[%s]"
             (String.concat ";"
                (List.map
                   (fun ((o, s), stage) ->
                     Printf.sprintf "%d.%d@%d" o s stage)
                   l)))
    | Gb_state { stage; _ } -> Some (Printf.sprintf "gb.state@%d" stage)
    | Gb_cut { stage; first; rest } ->
        Some
          (Printf.sprintf "gb.cut@%d(%d+%d)" stage (List.length first)
             (List.length rest))
    | _ -> None)

let () =
  let module W = Gc_net.Wire in
  let write_msg enc w m =
    W.varint w m.origin;
    W.varint w m.gseq;
    W.varint w m.size;
    W.f64 w m.sent_at;
    enc w m.body
  in
  let read_msg dec r =
    let origin = W.read_varint r in
    let gseq = W.read_varint r in
    let size = W.read_varint r in
    let sent_at = W.read_f64 r in
    let body = dec r in
    { origin; gseq; size; sent_at; body }
  in
  let write_ack w ((o, s), stage) =
    W.triple w W.varint W.varint W.varint (o, s, stage)
  in
  let read_ack r =
    let o, s, stage = W.read_triple r W.read_varint W.read_varint W.read_varint in
    ((o, s), stage)
  in
  Gc_net.Payload.register_codec ~tag:"gb"
    ~encode:(fun enc w p ->
      match p with
      | Gb_fast m ->
          W.u8 w 0;
          write_msg enc w m;
          true
      | Gb_ack { id = o, s; stage } ->
          W.u8 w 1;
          W.varint w o;
          W.varint w s;
          W.varint w stage;
          true
      | Gb_state { stage; acked; pending } ->
          W.u8 w 2;
          W.varint w stage;
          W.list w (write_msg enc) acked;
          W.list w (write_msg enc) pending;
          true
      | Gb_cut { stage; first; rest } ->
          W.u8 w 3;
          W.varint w stage;
          W.list w (write_msg enc) first;
          W.list w (write_msg enc) rest;
          true
      | Gb_fast_batch ms ->
          W.u8 w 4;
          W.list w (write_msg enc) ms;
          true
      | Gb_acks l ->
          W.u8 w 5;
          W.list w write_ack l;
          true
      | _ -> false)
    ~decode:(fun dec r ->
      match W.read_u8 r with
      | 0 -> Gb_fast (read_msg dec r)
      | 1 ->
          let o = W.read_varint r in
          let s = W.read_varint r in
          let stage = W.read_varint r in
          Gb_ack { id = (o, s); stage }
      | 2 ->
          let stage = W.read_varint r in
          let acked = W.read_list r (read_msg dec) in
          let pending = W.read_list r (read_msg dec) in
          Gb_state { stage; acked; pending }
      | 3 ->
          let stage = W.read_varint r in
          let first = W.read_list r (read_msg dec) in
          let rest = W.read_list r (read_msg dec) in
          Gb_cut { stage; first; rest }
      | 4 -> Gb_fast_batch (W.read_list r (read_msg dec))
      | 5 -> Gb_acks (W.read_list r read_ack)
      | k -> Gc_net.Payload.malformed (Printf.sprintf "gb constructor %d" k))

type ack_mode = Two_thirds | All_members

type t = {
  proc : Process.t;
  rb : Rb.t;
  rc : Rc.t;
  ab : Ab.t;
  storage : Gc_kernel.Storage.t option;
  conflict : Conflict.relation; (* pairwise view of [conflict_spec] *)
  index : Conflict_index.t; (* occupancy over pending U stage_history *)
  ack_mode : ack_mode;
  mutable member_list : int list;
  mutable next_gseq : int;
  mutable stage : int;
  mutable frozen : bool;
  pending : (int * int, msg) Hashtbl.t; (* rdelivered, not yet g-delivered *)
  (* Messages acked by me in the current stage.  Entries survive local fast
     delivery: the ack rule and the published stage state must keep seeing
     them, otherwise a conflicting message could gather a quorum too, or a
     fast-delivered message could drop out of the stage-change cut. *)
  stage_history : (int * int, msg) Hashtbl.t;
  delivered : Delivered.t;
  ack_counts : ((int * int) * int, (int, unit) Hashtbl.t) Hashtbl.t;
  (* stage -> sender -> (acked, pending) *)
  states : (int, (int, msg list * msg list) Hashtbl.t) Hashtbl.t;
  cut_proposed : (int, unit) Hashtbl.t;
  cut_timer_armed : (int, unit) Hashtbl.t;
  cut_backoff : float;
  mutable submit_batch : msg Batcher.t option;
  mutable ack_batch : ((int * int) * int) Batcher.t option;
  mutable subscribers : (origin:int -> Gc_net.Payload.t -> unit) list;
  mutable n_delivered : int;
  mutable n_fast : int;
  mutable froze_at : float; (* freeze time of the current stage, for check_ms *)
}

(* Fast-path acknowledgement quorum A. *)
let ack_quorum t =
  let n = List.length t.member_list in
  match t.ack_mode with
  | Two_thirds -> ((2 * n) + 1 + 2) / 3 (* ceil((2n+1)/3) *)
  | All_members -> n

(* Stage-change state quorum C.  Correctness needs (i) completeness,
   A + C - n >= 1, and (ii) a conflict-free must-deliver-first list,
   3 * min(A, C) > 2n or A = n.  Two_thirds uses A = C = ceil((2n+1)/3)
   (f < n/3); All_members uses A = n, C = 1: any single state already
   contains every possibly-fast-delivered message, so stage changes only
   depend on atomic broadcast (f < n/2). *)
let chk_quorum t =
  match t.ack_mode with
  | Two_thirds ->
      let n = List.length t.member_list in
      ((2 * n) + 1 + 2) / 3
  | All_members -> 1

let member t = List.mem (Process.id t.proc) t.member_list

let send_all t ?size payload =
  let me = Process.id t.proc in
  List.iter (fun q -> if q <> me then Rc.send t.rc ?size ~dst:q payload)
    t.member_list

let note_occupancy t =
  Process.set_gauge t.proc "gbcast.conflict_class_occupancy"
    (float_of_int (Conflict_index.occupancy t.index))

(* Track a newly rdelivered message: the conflict index mirrors
   pending U stage_history, and new arrivals enter through pending. *)
let track_pending t id m =
  Hashtbl.replace t.pending id m;
  Conflict_index.add t.index id m.body

(* Write-ahead delivery log (see Atomic_broadcast.log_delivery): appended
   after dedup accepts the id, before subscribers run.  [ordered] records
   the message's conflict class so recovery can distinguish totally-ordered
   deliveries from commuting ones. *)
let log_delivery t m =
  match t.storage with
  | None -> ()
  | Some store -> (
      match Gc_net.Payload.encode m.body with
      | Ok payload ->
          ignore
            (Gc_kernel.Storage.append store
               (Gc_kernel.Storage.Record.encode
                  {
                    Gc_kernel.Storage.Record.origin = m.origin;
                    seq = t.n_delivered;
                    ordered = t.conflict m.body m.body;
                    payload;
                  }))
      | Error _ -> Process.incr t.proc "storage.append_skipped")

let deliver t m =
  let id = msg_id m in
  if Delivered.add t.delivered id then begin
    Hashtbl.remove t.pending id;
    (* The examine scan still sees stage-history entries (the ack rule keeps
       them until the stage ends), so the index only forgets ids that left
       both tables. *)
    if not (Hashtbl.mem t.stage_history id) then
      Conflict_index.remove t.index id;
    log_delivery t m;
    t.n_delivered <- t.n_delivered + 1;
    Process.incr t.proc "gbcast.delivered";
    Process.observe t.proc "gbcast.latency_ms" (Process.now t.proc -. m.sent_at);
    if Process.traced t.proc then
      (* The conflict class rides along so the auditor can tell which
         delivery pairs must agree in order: a message conflicting with
         itself conflicts with every message of its class (the stack's
         relation orders Ordered x Ordered and Ordered x Commuting). *)
      Process.event t.proc ~component:"gbcast" ~kind:Gc_obs.Event.Deliver
        ~msg:(Printf.sprintf "gb:%d.%d" m.origin m.gseq)
        ~attrs:
          [
            ("origin", string_of_int m.origin);
            ("gseq", string_of_int m.gseq);
            ( "cls",
              if t.conflict m.body m.body then "conflicting" else "commuting"
            );
          ]
        ();
    List.iter (fun f -> f ~origin:m.origin m.body) (List.rev t.subscribers)
  end

let pending_msgs t =
  List.sort compare_msg (Hashtbl.fold (fun _ m acc -> m :: acc) t.pending [])

let acked_msgs t =
  List.sort compare_msg
    (Hashtbl.fold (fun _ m acc -> m :: acc) t.stage_history [])

let state_table t stage =
  match Hashtbl.find_opt t.states stage with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.states stage tbl;
      tbl

let ack_set t id stage =
  match Hashtbl.find_opt t.ack_counts (id, stage) with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.ack_counts (id, stage) s;
      s

(* Freeze the fast path and publish our stage state.  Every process freezes
   on detecting a conflict locally or on hearing any other process's state
   broadcast for the current stage. *)
let rec freeze t =
  if member t && not t.frozen then begin
    t.frozen <- true;
    t.froze_at <- Process.now t.proc;
    Process.incr t.proc "gbcast.freezes";
    Process.emit t.proc ~component:"gbcast" ~event:"freeze"
      ~attrs:[ ("stage", string_of_int t.stage) ]
      ();
    let acked = acked_msgs t and pending = pending_msgs t in
    record_state t ~src:(Process.id t.proc) ~stage:t.stage ~acked ~pending;
    (* In all-members mode a cut needs no remote states (C = 1): each process
       freezes on its own evidence (the conflicting message reaches everyone
       by reliable broadcast) and any single state is a complete cut, so the
       n^2 state exchange is skipped entirely. *)
    if t.ack_mode = Two_thirds then
      send_all t (Gb_state { stage = t.stage; acked; pending })
  end

and record_state t ~src ~stage ~acked ~pending =
  (* States for stages we have not reached yet (their sender raced ahead of a
     cut still in our delivery queue) are stored and consulted when the cut
     moves us there; see [apply_cut]. *)
  if stage >= t.stage then begin
    let tbl = state_table t stage in
    if not (Hashtbl.mem tbl src) then Hashtbl.replace tbl src (acked, pending);
    if stage = t.stage then begin
      freeze t;
      try_cut t
    end
  end

(* Compute and abcast a cut once a quorum of stage states is in.  With
   C = A = ceil((2n+1)/3), a message fast-delivered anywhere was acked by at
   least [threshold = A + C - n] respondents (quorum intersection), and no
   two conflicting messages can both reach the threshold (3C > 2n), so
   [first] is complete and internally conflict-free. *)
and try_cut t =
  if member t && not (Hashtbl.mem t.cut_proposed t.stage) then begin
    (* Stagger proposals by member rank so that normally exactly one cut is
       broadcast; lower-ranked members take over (after their backoff) if
       the natural proposer is dead. *)
    let rank =
      let rec idx i = function
        | [] -> 0
        | q :: rest -> if q = Process.id t.proc then i else idx (i + 1) rest
      in
      idx 0 t.member_list
    in
    if rank = 0 then force_cut t
    else if not (Hashtbl.mem t.cut_timer_armed t.stage) then begin
      Hashtbl.replace t.cut_timer_armed t.stage ();
      let stage = t.stage in
      ignore
        (Process.timer t.proc ~delay:(float_of_int rank *. t.cut_backoff)
           (fun () ->
             (* Re-armable: if the cut cannot be built yet (states still
                missing in two-thirds mode), the next recorded state retries. *)
             Hashtbl.remove t.cut_timer_armed stage;
             if t.stage = stage && t.frozen then force_cut t))
    end
  end

and force_cut t =
  if member t && not (Hashtbl.mem t.cut_proposed t.stage) then begin
    let tbl = state_table t t.stage in
    let c = chk_quorum t in
    if Hashtbl.length tbl >= c then begin
      let n = List.length t.member_list in
      let threshold = max 1 (ack_quorum t + c - n) in
      let tally : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
      let mentioned : (int * int, msg) Hashtbl.t = Hashtbl.create 16 in
      Sorted.iter
        (fun _src (acked, pending) ->
          List.iter
            (fun m ->
              let id = msg_id m in
              Hashtbl.replace mentioned id m;
              Hashtbl.replace tally id
                (1 + Option.value ~default:0 (Hashtbl.find_opt tally id)))
            acked;
          List.iter (fun m -> Hashtbl.replace mentioned (msg_id m) m) pending)
        tbl;
      let first, rest =
        Hashtbl.fold (fun _ m acc -> m :: acc) mentioned []
        |> List.sort compare_msg
        |> List.partition (fun m ->
               Option.value ~default:0 (Hashtbl.find_opt tally (msg_id m))
               >= threshold)
      in
      Hashtbl.replace t.cut_proposed t.stage ();
      Process.incr t.proc "gbcast.cuts_proposed";
      Process.emit t.proc ~component:"gbcast" ~event:"propose_cut"
        ~attrs:
          [
            ("stage", string_of_int t.stage);
            ("first", string_of_int (List.length first));
            ("rest", string_of_int (List.length rest));
          ]
        ();
      Ab.abcast t.ab (Gb_cut { stage = t.stage; first; rest })
    end
  end

(* Fast-path examination of a pending message: acknowledge it unless it
   conflicts with another message of the stage; a conflict changes stage.
   The "conflicts with anything pending or acked?" probe goes through the
   conflict index — O(classes) for indexed relations — instead of a scan
   over every stage-relevant message. *)
let rec examine t m =
  let id = msg_id m in
  if
    member t && (not t.frozen)
    && (not (Delivered.mem t.delivered id))
    && Hashtbl.mem t.pending id
    && not (Hashtbl.mem t.stage_history id)
  then begin
    (* In all-members mode, a self-conflicting (ordered-class) message never
       takes the fast path: routing it through the stage-change cut keeps
       its delivery live with f < n/2, since the cut only needs atomic
       broadcast. *)
    let self_conflicting =
      t.ack_mode = All_members && t.conflict m.body m.body
    in
    let conflicts_with_stage =
      self_conflicting || Conflict_index.blocked t.index ~excluding:id m.body
    in
    if conflicts_with_stage then freeze t
    else begin
      Hashtbl.replace t.stage_history id m;
      Hashtbl.replace (ack_set t id t.stage) (Process.id t.proc) ();
      (match t.ack_batch with
      | Some b -> Batcher.add b (id, t.stage)
      | None -> send_all t ~size:24 (Gb_ack { id; stage = t.stage }));
      try_fast_deliver t id
    end
  end

and try_fast_deliver t id =
  if (not (Delivered.mem t.delivered id)) && Hashtbl.mem t.pending id
  then begin
    let acks = ack_set t id t.stage in
    if Hashtbl.length acks >= ack_quorum t then begin
      match Hashtbl.find_opt t.pending id with
      | Some m ->
          t.n_fast <- t.n_fast + 1;
          Process.incr t.proc "gbcast.fast_deliveries";
          Process.emit t.proc ~component:"gbcast" ~event:"fast_deliver"
            ~attrs:
              [
                ("origin", string_of_int (fst id));
                ("gseq", string_of_int (snd id));
              ]
            ();
          deliver t m
      | None -> ()
    end
  end

(* Acks buffered by [examine] go out at the end of the handler that
   produced them: one [Gb_acks] vector per incoming fast batch instead of
   n-1 unicasts per message (the batcher's tick watermark is only a safety
   net). *)
let flush_acks t =
  match t.ack_batch with Some b -> Batcher.flush b | None -> ()

let reexamine_pending t =
  List.iter (fun m -> examine t m) (pending_msgs t)

let apply_cut t ~stage ~first ~rest =
  if stage = t.stage then begin
    (* Check-phase latency: time from freezing the fast path to applying the
       winning cut.  Members that never froze (the cut outran the conflict
       evidence) have nothing to report. *)
    if t.frozen then
      Process.observe t.proc "gbcast.check_ms"
        (Process.now t.proc -. t.froze_at);
    let via_cut m =
      if not (Delivered.mem t.delivered (msg_id m)) then
        Process.incr t.proc "gbcast.cut_deliveries";
      deliver t m
    in
    List.iter via_cut first;
    List.iter via_cut rest;
    (* New stage: stale acks and states are dropped; survivors of [pending]
       (messages that arrived during the change) are re-examined. *)
    Hashtbl.remove t.states stage;
    Hashtbl.reset t.stage_history;
    (* The index mirrors pending U stage_history; with the history gone it
       is rebuilt from the pending survivors. *)
    Conflict_index.clear t.index;
    Sorted.iter (fun id m -> Conflict_index.add t.index id m.body) t.pending;
    t.stage <- stage + 1;
    t.frozen <- false;
    Process.emit t.proc ~component:"gbcast" ~event:"new_stage"
      ~attrs:[ ("stage", string_of_int t.stage) ]
      ();
    reexamine_pending t;
    (* Some members may already have frozen the new stage (their states were
       stored above while we were still behind). *)
    if (not t.frozen) && Hashtbl.length (state_table t t.stage) > 0 then begin
      freeze t;
      try_cut t
    end
    else if t.frozen then try_cut t
  end

(* Message ids are (origin, gseq) and receivers dedup on them for the life
   of the run, so a process restarting from its log must never reuse a
   gseq from a previous incarnation: scope the counter by boot epoch,
   leaving 2^40 submissions per boot.  Epoch 0 keeps historical numbering. *)
let epoch_bits = 40

let create proc ~rc ~rb ~ab ~conflict ?(ack_mode = Two_thirds)
    ?(cut_backoff = 15.0) ?(batch_max = 1) ?(batch_delay = 1.0) ?storage
    ?(epoch = 0) ~members () =
  if batch_max < 1 then invalid_arg "Generic_broadcast.create: batch_max < 1";
  let t =
    {
      proc;
      rb;
      rc;
      ab;
      storage;
      conflict = Conflict.check conflict;
      index = Conflict_index.create conflict;
      ack_mode;
      member_list = members;
      next_gseq = epoch lsl epoch_bits;
      stage = 0;
      frozen = false;
      pending = Hashtbl.create 64;
      stage_history = Hashtbl.create 64;
      delivered = Delivered.create ();
      ack_counts = Hashtbl.create 256;
      states = Hashtbl.create 8;
      cut_proposed = Hashtbl.create 8;
      cut_timer_armed = Hashtbl.create 8;
      cut_backoff;
      submit_batch = None;
      ack_batch = None;
      subscribers = [];
      n_delivered = 0;
      n_fast = 0;
      froze_at = 0.0;
    }
  in
  Process.incr ~by:0 proc "gbcast.fast_deliveries";
  Process.incr ~by:0 proc "gbcast.cut_deliveries";
  t.submit_batch <-
    Some
      (Batcher.create proc ~metric:"gbcast.batch_size" ~max_batch:batch_max
         ~max_delay:batch_delay
         ~emit:(fun ms ->
           match ms with
           | [ m ] ->
               Rb.broadcast t.rb ~size:m.size ~dests:t.member_list (Gb_fast m)
           | ms ->
               let size = List.fold_left (fun a m -> a + m.size) 16 ms in
               Rb.broadcast t.rb ~size ~dests:t.member_list (Gb_fast_batch ms))
         ());
  (* Acks only batch when submissions do: with [batch_max = 1] the wire
     traffic stays exactly the per-message [Gb_ack] of the unbatched
     protocol. *)
  if batch_max > 1 then
    t.ack_batch <-
      Some
        (Batcher.create proc ~metric:"gbcast.ack_batch_size"
           ~max_batch:(max batch_max 16) ~max_delay:batch_delay
           ~emit:(fun l ->
             match l with
             | [ (id, stage) ] -> send_all t ~size:24 (Gb_ack { id; stage })
             | l ->
                 send_all t
                   ~size:(16 + (8 * List.length l))
                   (Gb_acks l))
           ());
  Rb.on_deliver rb (fun ~origin:_ payload ->
      match payload with
      | Gb_fast m ->
          let id = msg_id m in
          if not (Delivered.mem t.delivered id || Hashtbl.mem t.pending id)
          then begin
            track_pending t id m;
            examine t m
          end;
          flush_acks t;
          note_occupancy t
      | Gb_fast_batch ms ->
          (* Messages are tracked and examined in submission order, exactly
             as if they had arrived as consecutive singletons — per-sender
             FIFO and intra-batch conflict behaviour are unchanged. *)
          List.iter
            (fun m ->
              let id = msg_id m in
              if
                not (Delivered.mem t.delivered id || Hashtbl.mem t.pending id)
              then begin
                track_pending t id m;
                examine t m
              end)
            ms;
          flush_acks t;
          note_occupancy t
      | _ -> ());
  Rc.on_deliver rc (fun ~src payload ->
      match payload with
      | Gb_ack { id; stage } ->
          Hashtbl.replace (ack_set t id stage) src ();
          if stage = t.stage then try_fast_deliver t id
      | Gb_acks l ->
          List.iter
            (fun (id, stage) ->
              Hashtbl.replace (ack_set t id stage) src ();
              if stage = t.stage then try_fast_deliver t id)
            l
      | Gb_state { stage; acked; pending } ->
          (* A state for a stage we have not reached yet can only result from
             reordering relative to the cut that ends our stage; it is keyed
             by its stage and consulted when we get there. *)
          List.iter
            (fun m ->
              let id = msg_id m in
              if not (Delivered.mem t.delivered id || Hashtbl.mem t.pending id)
              then track_pending t id m)
            (acked @ pending);
          record_state t ~src ~stage ~acked ~pending;
          note_occupancy t
      | _ -> ());
  Ab.on_deliver ab (fun ~origin:_ payload ->
      match payload with
      | Gb_cut { stage; first; rest } ->
          apply_cut t ~stage ~first ~rest;
          (* Re-examining the pending survivors may have produced acks. *)
          flush_acks t;
          note_occupancy t
      | _ -> ());
  t

let gbcast t ?(size = 64) body =
  if member t then begin
    let m =
      {
        origin = Process.id t.proc;
        gseq = t.next_gseq;
        body;
        size;
        sent_at = Process.now t.proc;
      }
    in
    t.next_gseq <- t.next_gseq + 1;
    Process.incr t.proc "gbcast.submitted";
    if Process.traced t.proc then
      Process.event t.proc ~component:"gbcast" ~kind:Gc_obs.Event.Send
        ~msg:(Printf.sprintf "gb:%d.%d" m.origin m.gseq)
        ();
    match t.submit_batch with
    | Some b -> Batcher.add b m
    | None -> Rb.broadcast t.rb ~size ~dests:t.member_list (Gb_fast m)
  end

let flush t =
  (match t.submit_batch with Some b -> Batcher.flush b | None -> ());
  flush_acks t

let on_deliver t f = t.subscribers <- f :: t.subscribers
let set_members t members = t.member_list <- members
let members t = t.member_list
let delivered_count t = t.n_delivered
let fast_delivered_count t = t.n_fast
let stage t = t.stage

let delivered_ids t = Delivered.ids t.delivered

let bootstrap t ~stage ~delivered =
  t.stage <- stage;
  List.iter (fun id -> ignore (Delivered.add t.delivered id)) delivered;
  (* States published by members already frozen in this stage may be waiting. *)
  if Hashtbl.length (state_table t t.stage) > 0 then begin
    freeze t;
    try_cut t
  end
