type kind =
  | Send
  | Recv
  | Propose
  | Decide
  | Deliver
  | ViewInstall
  | Suspect
  | Trust
  | Exclude
  | Crash
  | Custom of string

type t = {
  time : float;
  node : int;
  lamport : int;
  component : string;
  kind : kind;
  msg : string option;
  attrs : (string * string) list;
}

let kind_to_string = function
  | Send -> "send"
  | Recv -> "recv"
  | Propose -> "propose"
  | Decide -> "decide"
  | Deliver -> "deliver"
  | ViewInstall -> "view_install"
  | Suspect -> "suspect"
  | Trust -> "trust"
  | Exclude -> "exclude"
  | Crash -> "crash"
  | Custom s -> s

let kind_of_string = function
  | "send" -> Send
  | "recv" -> Recv
  | "propose" -> Propose
  | "decide" -> Decide
  | "deliver" -> Deliver
  | "view_install" -> ViewInstall
  | "suspect" -> Suspect
  | "trust" -> Trust
  | "exclude" -> Exclude
  | "crash" -> Crash
  | s -> Custom s

let attr e key = List.assoc_opt key e.attrs

let detail e =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) e.attrs)

let pp ppf e =
  Format.fprintf ppf "[%8.2f] n%d L%d %s/%s" e.time e.node e.lamport
    e.component (kind_to_string e.kind);
  (match e.msg with None -> () | Some m -> Format.fprintf ppf " %s" m);
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) e.attrs

(* Field names are one letter: a recorded run easily holds 10^5 lines. *)
let to_json e =
  let base =
    [
      ("t", Json.Num e.time);
      ("n", Json.Num (float_of_int e.node));
      ("l", Json.Num (float_of_int e.lamport));
      ("c", Json.Str e.component);
      ("k", Json.Str (kind_to_string e.kind));
    ]
  in
  let m = match e.msg with None -> [] | Some m -> [ ("m", Json.Str m) ] in
  let a =
    match e.attrs with
    | [] -> []
    | kvs -> [ ("a", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)) ]
  in
  Json.Obj (base @ m @ a)

let of_json j =
  let fail what = failwith ("Event.of_json: bad or missing field " ^ what) in
  let num k =
    match Option.bind (Json.member k j) Json.to_float with
    | Some f -> f
    | None -> fail k
  in
  let str k =
    match Option.bind (Json.member k j) Json.to_str with
    | Some s -> s
    | None -> fail k
  in
  let msg = Option.bind (Json.member "m" j) Json.to_str in
  let attrs =
    match Json.member "a" j with
    | Some (Json.Obj kvs) ->
        List.map
          (fun (k, v) ->
            match Json.to_str v with Some s -> (k, s) | None -> fail "a")
          kvs
    | Some _ -> fail "a"
    | None -> []
  in
  {
    time = num "t";
    node = int_of_float (num "n");
    lamport = int_of_float (num "l");
    component = str "c";
    kind = kind_of_string (str "k");
    msg;
    attrs;
  }

let write_jsonl oc events =
  List.iter
    (fun e ->
      output_string oc (Json.to_string (to_json e));
      output_char oc '\n')
    events

let read_jsonl ic =
  let rec loop acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | "" -> loop acc
    | line -> loop (of_json (Json.of_string line) :: acc)
  in
  loop []

let save_jsonl path events =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      write_jsonl oc events)

let load_jsonl path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_jsonl ic)

(* Chrome trace_event format: instant events ("ph":"i") on one thread per
   node, plus flow arrows ("ph":"s"/"f") tying a message's Send to its
   Delivers.  Timestamps are microseconds; virtual ms * 1000. *)
let to_chrome events =
  let us time = Json.Num (time *. 1000.0) in
  let args e =
    let kvs = List.map (fun (k, v) -> (k, Json.Str v)) e.attrs in
    let kvs =
      match e.msg with None -> kvs | Some m -> ("msg", Json.Str m) :: kvs
    in
    ("lamport", Json.Num (float_of_int e.lamport)) :: kvs
  in
  let instant e =
    Json.Obj
      [
        ( "name",
          Json.Str
            (e.component ^ "/" ^ kind_to_string e.kind
            ^ match e.msg with None -> "" | Some m -> " " ^ m) );
        ("cat", Json.Str e.component);
        ("ph", Json.Str "i");
        ("s", Json.Str "t");
        ("ts", us e.time);
        ("pid", Json.Num 0.0);
        ("tid", Json.Num (float_of_int e.node));
        ("args", Json.Obj (args e));
      ]
  in
  let flow e =
    match (e.msg, e.kind) with
    | Some m, Send ->
        [
          Json.Obj
            [
              ("name", Json.Str m);
              ("cat", Json.Str "flow");
              ("ph", Json.Str "s");
              ("id", Json.Str (e.component ^ ":" ^ m));
              ("ts", us e.time);
              ("pid", Json.Num 0.0);
              ("tid", Json.Num (float_of_int e.node));
            ];
        ]
    | Some m, Deliver ->
        [
          Json.Obj
            [
              ("name", Json.Str m);
              ("cat", Json.Str "flow");
              ("ph", Json.Str "f");
              ("bp", Json.Str "e");
              ("id", Json.Str (e.component ^ ":" ^ m));
              ("ts", us e.time);
              ("pid", Json.Num 0.0);
              ("tid", Json.Num (float_of_int e.node));
            ];
        ]
    | _ -> []
  in
  let names =
    (* Thread name metadata so chrome://tracing labels rows "node N". *)
    let nodes =
      List.sort_uniq compare (List.map (fun e -> e.node) events)
    in
    List.map
      (fun n ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num 0.0);
            ("tid", Json.Num (float_of_int n));
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.Str
                      (if n < 0 then "environment"
                       else "node " ^ string_of_int n) );
                ] );
          ])
      nodes
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr (names @ List.concat_map (fun e -> instant e :: flow e) events)
      );
      ("displayTimeUnit", Json.Str "ms");
    ]
