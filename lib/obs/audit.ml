type check =
  | Fifo
  | Total_order
  | Conflict_order
  | Same_view
  | Agreement
  | Replay_idempotence

let all_checks =
  [ Fifo; Total_order; Conflict_order; Same_view; Agreement; Replay_idempotence ]

let check_to_string = function
  | Fifo -> "fifo"
  | Total_order -> "total-order"
  | Conflict_order -> "conflict-order"
  | Same_view -> "same-view"
  | Agreement -> "agreement"
  | Replay_idempotence -> "replay-idempotence"

let check_of_string = function
  | "fifo" -> Some Fifo
  | "total-order" | "total_order" -> Some Total_order
  | "conflict-order" | "conflict_order" -> Some Conflict_order
  | "same-view" | "same_view" -> Some Same_view
  | "agreement" -> Some Agreement
  | "replay-idempotence" | "replay_idempotence" -> Some Replay_idempotence
  | _ -> None

type violation = {
  check : check;
  message : string;
  pair : Event.t * Event.t;
  chain : Event.t list;
}

type waiver = {
  name : string;
  check : check;
  reason : string;
  applies : Event.t list -> violation -> bool;
}

type report = {
  scanned : int;
  checks : check list;
  violations : violation list;
  waived : (violation * waiver) list;
}

(* A candidate violation before the causal chain is attached: the message,
   the event pair, and the message ids whose lifecycle forms the chain. *)
type candidate = { c_message : string; c_pair : Event.t * Event.t; c_msgs : string list }

let int_attr e k = Option.bind (Event.attr e k) int_of_string_opt

(* ---------- per-node delivery sequences ---------- *)

(* Deliver events of [component] (optionally filtered), grouped by node in
   recorded order.  Returns the nodes in first-appearance order. *)
let delivery_seqs ?(keep = fun _ -> true) ~component events =
  let by_node : (int, Event.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (e : Event.t) ->
      if
        e.Event.component = component
        && e.Event.kind = Event.Deliver
        && e.Event.msg <> None
        && keep e
      then
        match Hashtbl.find_opt by_node e.Event.node with
        | Some l -> l := e :: !l
        | None ->
            Hashtbl.replace by_node e.Event.node (ref [ e ]);
            order := e.Event.node :: !order)
    events;
  List.rev_map
    (fun n -> (n, Array.of_list (List.rev !(Hashtbl.find by_node n))))
    !order

let msg_of (e : Event.t) = Option.get e.Event.msg

(* No node delivers the same message twice. *)
let find_duplicate seqs =
  List.find_map
    (fun (n, arr) ->
      let seen = Hashtbl.create (Array.length arr) in
      let v = ref None in
      Array.iter
        (fun e ->
          if !v = None then
            let m = msg_of e in
            match Hashtbl.find_opt seen m with
            | Some first ->
                v :=
                  Some
                    {
                      c_message =
                        Printf.sprintf "node %d delivered %s twice" n m;
                      c_pair = (first, e);
                      c_msgs = [ m ];
                    }
            | None -> Hashtbl.replace seen m e)
        arr;
      !v)
    seqs

let index_table arr =
  let h = Hashtbl.create (Array.length arr) in
  Array.iteri (fun i e -> Hashtbl.replace h (msg_of e) i) arr;
  h

(* First inconsistently-ordered pair of common messages between two nodes:
   each node's sequence restricted to the other's messages must coincide. *)
let pair_order_mismatch (na, aa, ha) (nb, ab, hb) =
  let common tbl arr =
    Array.to_list arr |> List.filter (fun e -> Hashtbl.mem tbl (msg_of e))
  in
  let la = common hb aa and lb = common ha ab in
  let rec walk la lb =
    match (la, lb) with
    | ea :: ra, eb :: rb ->
        if msg_of ea = msg_of eb then walk ra rb
        else
          Some
            {
              c_message =
                Printf.sprintf
                  "nodes %d and %d deliver %s and %s in opposite orders" na nb
                  (msg_of ea) (msg_of eb);
              c_pair = (ea, eb);
              c_msgs = [ msg_of ea; msg_of eb ];
            }
    | _ -> None
  in
  walk la lb

let rec over_pairs f = function
  | [] -> None
  | x :: rest -> (
      match List.find_map (f x) rest with
      | Some v -> Some v
      | None -> over_pairs f rest)

(* ---------- total order ---------- *)

(* The sequenced broadcast surfaces: every pair of messages is ordered. *)
let total_order_surfaces =
  [
    ("abcast", fun _ -> true);
    ("totem", fun _ -> true);
    ("traditional", fun e -> Event.attr e "ordered" = Some "true");
  ]

let check_total_order events =
  List.find_map
    (fun (component, keep) ->
      let seqs = delivery_seqs ~keep ~component events in
      match find_duplicate seqs with
      | Some v -> Some v
      | None ->
          let indexed =
            List.map (fun (n, arr) -> (n, arr, index_table arr)) seqs
          in
          over_pairs pair_order_mismatch indexed)
    total_order_surfaces

(* ---------- conflict order (generic broadcast, Section 4.2) ---------- *)

let commuting e = Event.attr e "cls" = Some "commuting"

let check_conflict_order events =
  let seqs = delivery_seqs ~component:"gbcast" events in
  match find_duplicate seqs with
  | Some v -> Some v
  | None ->
      let indexed = List.map (fun (n, arr) -> (n, arr, index_table arr)) seqs in
      let check_pair (na, aa, ha) (nb, ab, hb) =
        let profile other arr =
          (* Restricted to the common messages: the conflicting-class
             subsequence, and for each commuting message the number of
             common conflicting messages delivered before it. *)
          let conf = ref [] and counts = Hashtbl.create 32 in
          let n_conf = ref 0 in
          Array.iter
            (fun e ->
              if Hashtbl.mem other (msg_of e) then
                if commuting e then
                  Hashtbl.replace counts (msg_of e) (!n_conf, e)
                else begin
                  conf := e :: !conf;
                  incr n_conf
                end)
            arr;
          (Array.of_list (List.rev !conf), counts)
        in
        let conf_a, counts_a = profile hb aa and conf_b, counts_b = profile ha ab in
        (* Conflicting messages all conflict pairwise: identical order. *)
        let rec walk i =
          if i >= Array.length conf_a || i >= Array.length conf_b then None
          else
            let ea = conf_a.(i) and eb = conf_b.(i) in
            if msg_of ea = msg_of eb then walk (i + 1)
            else
              Some
                {
                  c_message =
                    Printf.sprintf
                      "nodes %d and %d deliver conflicting messages %s and %s \
                       in opposite orders"
                      na nb (msg_of ea) (msg_of eb);
                  c_pair = (ea, eb);
                  c_msgs = [ msg_of ea; msg_of eb ];
                }
        in
        match walk 0 with
        | Some v -> Some v
        | None ->
            (* A commuting message may reorder against other commuting ones,
               but not across a conflicting message. *)
            Hashtbl.fold
              (fun m (ca, ea) acc ->
                if acc <> None then acc
                else
                  match Hashtbl.find_opt counts_b m with
                  | Some (cb, eb) when ca <> cb ->
                      let witness = conf_a.(min ca cb) in
                      Some
                        {
                          c_message =
                            Printf.sprintf
                              "nodes %d and %d order commuting message %s on \
                               opposite sides of conflicting message %s"
                              na nb m (msg_of witness);
                          c_pair = (ea, eb);
                          c_msgs = [ m; msg_of witness ];
                        }
                  | _ -> acc)
              counts_a None
      in
      over_pairs (fun a b -> check_pair a b) indexed

(* ---------- same-view delivery (Section 4.4) ---------- *)

(* Members list out of the view attribute rendering "v3[0;1;2]". *)
let parse_members s =
  match (String.index_opt s '[', String.rindex_opt s ']') with
  | Some i, Some j when j > i + 1 ->
      let inner = String.sub s (i + 1) (j - i - 1) in
      let parts = String.split_on_char ';' inner in
      let ints = List.filter_map int_of_string_opt parts in
      if List.length ints = List.length parts then Some ints else None
  | Some i, Some j when j = i + 1 -> Some []
  | _ -> None

let check_same_view events =
  (* node -> (current vid, current members or None when unknown) *)
  let views : (int, int * int list option) Hashtbl.t = Hashtbl.create 16 in
  (* msg -> deliveries as (vid, event), newest first *)
  let delivered : (string, (int * Event.t) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let v = ref None in
  List.iter
    (fun (e : Event.t) ->
      if !v = None then
        if e.Event.component = "membership" && e.Event.kind = Event.ViewInstall
        then begin
          let vid = Option.value ~default:0 (int_attr e "vid") in
          let members = Option.bind (Event.attr e "view") parse_members in
          Hashtbl.replace views e.Event.node (vid, members)
        end
        else if
          e.Event.component = "gbcast"
          && e.Event.kind = Event.Deliver
          && e.Event.msg <> None
        then begin
          let vid, members =
            Option.value ~default:(0, None)
              (Hashtbl.find_opt views e.Event.node)
          in
          (* Deliveries at a process that is no longer a member of its own
             current view (a straggler applying a cut after its exclusion)
             are outside the property. *)
          let is_member =
            match members with
            | None -> true
            | Some ms -> List.mem e.Event.node ms
          in
          if is_member then begin
            let m = msg_of e in
            match Hashtbl.find_opt delivered m with
            | Some l -> (
                l := (vid, e) :: !l;
                match List.rev !l with
                | (vid0, e0) :: rest -> (
                    match List.find_opt (fun (vi, _) -> vi <> vid0) rest with
                    | Some (vid1, e1) ->
                        v :=
                          Some
                            {
                              c_message =
                                Printf.sprintf
                                  "%s delivered in view %d at node %d but \
                                   view %d at node %d"
                                  m vid0 e0.Event.node vid1 e1.Event.node;
                              c_pair = (e0, e1);
                              c_msgs = [ m ];
                            }
                    | None -> ())
                | [] -> ())
            | None -> Hashtbl.replace delivered m (ref [ (vid, e) ])
          end
        end)
    events;
  !v

(* ---------- consensus agreement ---------- *)

let check_agreement events =
  let decisions : (string, string * Event.t) Hashtbl.t = Hashtbl.create 64 in
  let v = ref None in
  List.iter
    (fun (e : Event.t) ->
      if
        !v = None
        && e.Event.component = "consensus"
        && e.Event.kind = Event.Decide
      then
        match (Event.attr e "inst", Event.attr e "val") with
        | Some inst, Some value -> (
            match Hashtbl.find_opt decisions inst with
            | Some (value0, e0) when value0 <> value ->
                v :=
                  Some
                    {
                      c_message =
                        Printf.sprintf
                          "consensus instance %s decided %S at node %d but %S \
                           at node %d"
                          inst value0 e0.Event.node value e.Event.node;
                      c_pair = (e0, e);
                      c_msgs =
                        (match e.Event.msg with Some m -> [ m ] | None -> []);
                    }
            | Some _ -> ()
            | None -> Hashtbl.replace decisions inst (value, e))
        | _ -> ())
    events;
  !v

(* ---------- replay idempotence across restarts ---------- *)

(* A node kill -9'd and rebooted from its durable log must not hand the
   application a message it already delivered in a previous incarnation:
   log replay dedups what the old incarnation logged, and the delta state
   transfer dedups what arrives while rejoining.  The check fires when the
   same (node, component, message) appears on both sides of a restart of
   that node on an {e application} delivery surface — the components whose
   deliveries are logged and reach the app.  Dissemination layers below
   them (rbcast relays, consensus decisions) keep their dedup state in
   volatile memory on purpose: peers' channels legitimately retransmit
   in-flight traffic to a rebooted node, and the logged layers above
   absorb those duplicates by message id.  Duplicates within one
   incarnation are Total_order's business, so without restart events the
   check passes vacuously. *)
let replay_surfaces = [ "abcast"; "gbcast"; "traditional"; "totem" ]

let check_replay_idempotence events =
  let restarts : (int, float list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (e : Event.t) ->
      if e.Event.component = "fault" && e.Event.kind = Event.Custom "restart"
      then
        match Option.bind (Event.attr e "node") int_of_string_opt with
        | Some n -> (
            match Hashtbl.find_opt restarts n with
            | Some l -> l := e.Event.time :: !l
            | None -> Hashtbl.replace restarts n (ref [ e.Event.time ]))
        | None -> ())
    events;
  if Hashtbl.length restarts = 0 then None
  else begin
    (* (node, component, msg) -> earliest delivery *)
    let first : (int * string * string, Event.t) Hashtbl.t =
      Hashtbl.create 1024
    in
    let v = ref None in
    List.iter
      (fun (e : Event.t) ->
        if
          !v = None
          && e.Event.kind = Event.Deliver
          && e.Event.msg <> None
          && List.mem e.Event.component replay_surfaces
        then
          let key = (e.Event.node, e.Event.component, msg_of e) in
          match Hashtbl.find_opt first key with
          | None -> Hashtbl.replace first key e
          | Some e0 -> (
              match Hashtbl.find_opt restarts e.Event.node with
              | Some times
                when List.exists
                       (fun t -> e0.Event.time <= t && t <= e.Event.time)
                       !times ->
                  v :=
                    Some
                      {
                        c_message =
                          Printf.sprintf
                            "node %d redelivered %s (%s) after restarting \
                             from its log"
                            e.Event.node (msg_of e) e.Event.component;
                        c_pair = (e0, e);
                        c_msgs = [ msg_of e ];
                      }
              | _ -> ()))
      events;
    !v
  end

(* ---------- per-channel FIFO ---------- *)

let check_fifo events =
  (* (receiver, sender, generation) -> last delivered seq and event *)
  let last : (int * int * int, int * Event.t) Hashtbl.t = Hashtbl.create 64 in
  let v = ref None in
  List.iter
    (fun (e : Event.t) ->
      if
        !v = None
        && e.Event.component = "rchannel"
        && e.Event.kind = Event.Deliver
      then
        match (int_attr e "src", int_attr e "gen", int_attr e "seq") with
        | Some src, Some gen, Some seq -> (
            let key = (e.Event.node, src, gen) in
            match Hashtbl.find_opt last key with
            | Some (prev, pe) when seq <= prev ->
                v :=
                  Some
                    {
                      c_message =
                        Printf.sprintf
                          "channel %d->%d (gen %d) delivered seq %d after \
                           seq %d"
                          src e.Event.node gen seq prev;
                      c_pair = (pe, e);
                      c_msgs =
                        List.filter_map
                          (fun (x : Event.t) -> x.Event.msg)
                          [ pe; e ];
                    }
            | _ -> Hashtbl.replace last key (seq, e))
        | _ -> ())
    events;
  !v

(* ---------- driver ---------- *)

let causal_chain events msgs (pair : Event.t * Event.t) =
  let wanted = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace wanted m ()) msgs;
  let e1, e2 = pair in
  let relevant (e : Event.t) =
    e == e1 || e == e2
    || match e.Event.msg with Some m -> Hashtbl.mem wanted m | None -> false
  in
  List.filter relevant events
  |> List.stable_sort (fun (a : Event.t) (b : Event.t) ->
         compare
           (a.Event.lamport, a.Event.time, a.Event.node)
           (b.Event.lamport, b.Event.time, b.Event.node))

let run ?(checks = all_checks) ?(waivers = []) events =
  let run_check c =
    let candidate =
      match c with
      | Fifo -> check_fifo events
      | Total_order -> check_total_order events
      | Conflict_order -> check_conflict_order events
      | Same_view -> check_same_view events
      | Agreement -> check_agreement events
      | Replay_idempotence -> check_replay_idempotence events
    in
    Option.map
      (fun { c_message; c_pair; c_msgs } ->
        {
          check = c;
          message = c_message;
          pair = c_pair;
          chain = causal_chain events c_msgs c_pair;
        })
      candidate
  in
  let found = List.filter_map run_check checks in
  let waived, violations =
    List.partition_map
      (fun (v : violation) ->
        match
          List.find_opt
            (fun (w : waiver) -> w.check = v.check && w.applies events v)
            waivers
        with
        | Some w -> Left (v, w)
        | None -> Right v)
      found
  in
  { scanned = List.length events; checks; violations; waived }

let ok r = r.violations = []

(* ---------- stock waivers ---------- *)

let waiver ~name ~check ~reason applies = { name; check; reason; applies }

let pair_nodes v =
  let e1, e2 = v.pair in
  List.sort_uniq compare [ e1.Event.node; e2.Event.node ]

let excluded_rejoin ~check =
  waiver ~name:"excluded-rejoin" ~check
    ~reason:
      "a kill-and-rejoin stack excluded this node; deliveries straddling \
       the exclusion are outside the per-incarnation guarantee (paper \
       Section 4.3)"
    (fun events v ->
      let nodes = pair_nodes v in
      List.exists
        (fun (e : Event.t) ->
          e.Event.kind = Event.Exclude
          &&
          match Option.bind (Event.attr e "peer") int_of_string_opt with
          | Some p -> List.mem p nodes
          | None -> List.mem e.Event.node nodes)
        events)

let recovered_freeze ~check =
  waiver ~name:"recovered-freeze" ~check
    ~reason:
      "this node went through a network-level crash/recover freeze; \
       kill-and-rejoin stacks resume it with pre-freeze ordering state"
    (fun events v ->
      let nodes = pair_nodes v in
      List.exists
        (fun (e : Event.t) ->
          e.Event.component = "net"
          && e.Event.kind = Event.Custom "recover"
          && List.mem e.Event.node nodes)
        events)

let restarted_rejoin ~check =
  waiver ~name:"restarted-rejoin" ~check
    ~reason:
      "this node was kill -9'd and rebooted mid-run; a kill-and-rejoin \
       stack makes no cross-incarnation delivery guarantee for it (the \
       log-recovering architecture is held to the full property)"
    (fun events v ->
      let nodes = pair_nodes v in
      List.exists
        (fun (e : Event.t) ->
          e.Event.component = "fault"
          && e.Event.kind = Event.Custom "restart"
          &&
          match Option.bind (Event.attr e "node") int_of_string_opt with
          | Some p -> List.mem p nodes
          | None -> false)
        events)

let pp_report ppf r =
  Format.fprintf ppf "audit: %d events, checks: %s@." r.scanned
    (String.concat " " (List.map check_to_string r.checks));
  List.iter
    (fun ((v : violation), (w : waiver)) ->
      Format.fprintf ppf "waived [%s] by %s: %s@.  (%s)@."
        (check_to_string v.check) w.name v.message w.reason)
    r.waived;
  if ok r then Format.fprintf ppf "no violations@."
  else
    List.iter
      (fun v ->
        let e1, e2 = v.pair in
        Format.fprintf ppf "VIOLATION [%s]: %s@." (check_to_string v.check)
          v.message;
        Format.fprintf ppf "  first:  %a@." Event.pp e1;
        Format.fprintf ppf "  second: %a@." Event.pp e2;
        let chain = v.chain in
        let total = List.length chain in
        let shown = if total > 24 then 24 else total in
        Format.fprintf ppf "  causal chain (%d event%s%s):@." total
          (if total = 1 then "" else "s")
          (if total > shown then Printf.sprintf ", first %d shown" shown
           else "");
        List.iteri
          (fun i e -> if i < shown then Format.fprintf ppf "    %a@." Event.pp e)
          chain)
      r.violations
