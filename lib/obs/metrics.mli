(** Per-node registry of named counters, gauges and log-bucketed latency
    histograms.

    The registry is designed to be left on in every run: recording a
    counter is one integer increment, recording a histogram sample is one
    array bump plus four scalar updates.  Names are flat dotted strings
    ([layer.metric], e.g. ["consensus.instances_decided"],
    ["abcast.latency_ms"]); entries are created lazily on first use, so
    layers never need to pre-register anything.

    Histograms use 4 log-spaced buckets per octave starting at 0.001 ms
    (128 buckets total), giving quantile estimates within ~19% relative
    error over the whole simulated-latency range; exact min/max/sum/count
    are kept alongside and quantiles are clamped to the observed extremes.

    A metric name denotes one kind for the lifetime of the registry —
    using it as a different kind raises [Invalid_argument]. *)

type t

val create : unit -> t

(** {1 Recording} *)

val incr : ?by:int -> t -> string -> unit
(** Bump a counter (created at 0 on first use). *)

val set_gauge : t -> string -> float -> unit
(** Set a gauge to its latest reading. *)

val observe : t -> string -> float -> unit
(** Record one histogram sample (unit: whatever the metric's name says,
    milliseconds for the built-in [*_ms] metrics). *)

(** {1 Reading} *)

val counter : t -> string -> int
(** 0 when absent. *)

val gauge : t -> string -> float
(** 0.0 when absent. *)

val hist_count : t -> string -> int

val quantile : t -> string -> float -> float
(** [quantile t name 0.99] — [nan] when the histogram is absent or empty. *)

val hist_max : t -> string -> float
val hist_mean : t -> string -> float

val names : t -> string list
(** All registered metric names, sorted. *)

(** {1 Frozen views}

    An immutable copy of one entry, cheap to capture and safe to hold
    across further recording.  {!Snapshot} builds its whole API on these;
    they are exposed here because only this module sees the registry's
    internals. *)

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;  (** [infinity] when empty *)
  hv_max : float;  (** [neg_infinity] when empty *)
  hv_buckets : (int * int) list;
      (** sparse [(bucket index, count)], ascending, non-empty buckets
          only *)
}

type view = V_counter of int | V_gauge of float | V_hist of hist_view

val view : t -> string -> view option
val views : t -> (string * view) list
(** All entries as frozen views, sorted by name. *)

val of_views : (string * view) list -> t
(** Rebuild a registry from frozen views (inverse of {!views}). *)

val n_buckets : int
(** Number of histogram buckets (shared by every histogram). *)

val bucket_upper : int -> float
(** Upper edge of bucket [i] — the representative value quantile
    estimation reports for samples in that bucket. *)

(** {1 Merging}

    Cross-node aggregation: counters and histogram buckets add, gauges
    keep the maximum (the interesting cross-node reading for e.g. blocked
    time). *)

val merge_into : into:t -> t -> unit
val merged : t list -> t

(** {1 Serialisation} *)

val to_json : ?include_zeros:bool -> t -> Json.t
(** Self-describing object: each entry carries its ["type"], counters and
    gauges their ["value"], histograms count/sum/min/max, derived
    p50/p90/p95/p99, and sparse non-empty buckets.  Zero counters and
    empty histograms are omitted unless [include_zeros] (default false)
    — pass [true] when diffing dumps across runs or replicas, where a
    metric that never fired must stay distinguishable from one that was
    never registered. *)

val of_json : Json.t -> t
(** Inverse of {!to_json} (derived quantiles are recomputed from buckets).
    @raise Invalid_argument when the value is not an object. *)

val pp : Format.formatter -> t -> unit
(** Human-readable table, one metric per line. *)
