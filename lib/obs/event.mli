(** Typed lifecycle events for the causal flight recorder.

    Every protocol layer emits events drawn from this shared vocabulary
    instead of ad-hoc strings; each event carries the emitting node's
    Lamport clock and, when it concerns a particular message, a stable
    message id (e.g. ["ab:0.3"] for atomic-broadcast message 3 of origin
    0).  The auditor ({!Audit}) replays lists of these events to check
    the paper's ordering properties. *)

type kind =
  | Send  (** a message enters the layer at its origin *)
  | Recv  (** a datagram arrives at a node (network layer) *)
  | Propose  (** a value is proposed (consensus, cut proposal) *)
  | Decide  (** a consensus instance decides *)
  | Deliver  (** a message is delivered to the layer above *)
  | ViewInstall  (** a membership view is installed *)
  | Suspect  (** a failure detector starts suspecting a peer *)
  | Trust  (** a failure detector stops suspecting a peer *)
  | Exclude  (** a process is excluded from the group *)
  | Crash  (** a process crashes (environment event) *)
  | Custom of string  (** layer-specific event outside the vocabulary *)

type t = {
  time : float;  (** virtual time of the event *)
  node : int;  (** emitting process, [-1] for the environment *)
  lamport : int;  (** Lamport clock of the emitting node at the event *)
  component : string;  (** e.g. "consensus", "gbcast" *)
  kind : kind;
  msg : string option;  (** stable message id, when the event concerns one *)
  attrs : (string * string) list;  (** structured attributes *)
}

val kind_to_string : kind -> string
(** Canonical lowercase tag: ["send"], ["view_install"], ... ; [Custom s]
    maps to [s] itself. *)

val kind_of_string : string -> kind
(** Total inverse of {!kind_to_string}: unknown tags become [Custom]. *)

val attr : t -> string -> string option
(** [attr e k] is the value of attribute [k], if present. *)

val detail : t -> string
(** Attributes rendered as ["k=v k=v ..."]. *)

val pp : Format.formatter -> t -> unit

(** {1 JSONL serialisation}

    One event per line, compact JSON.  Field names are short on purpose
    — a recorded run easily holds 10^5 events. *)

val to_json : t -> Json.t

val of_json : Json.t -> t
(** @raise Failure on a JSON value not produced by {!to_json}. *)

val write_jsonl : out_channel -> t list -> unit

val read_jsonl : in_channel -> t list
(** Blank lines are skipped.  @raise Failure on a malformed line. *)

val save_jsonl : string -> t list -> unit
val load_jsonl : string -> t list

(** {1 Chrome trace_event export} *)

val to_chrome : t list -> Json.t
(** The events as a Chrome [trace_event] JSON document (instant events,
    one thread per node, plus flow arrows connecting [Send] to [Deliver]
    for events carrying a message id) — loadable in chrome://tracing or
    https://ui.perfetto.dev. *)
