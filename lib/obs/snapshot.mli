(** Immutable captures of a {!Metrics} registry — the unit of the live
    telemetry plane.

    A running daemon answers a [Stats] request with one snapshot; a
    monitoring client ([gcs_top], the CI scrape) subtracts consecutive
    snapshots with {!delta} to get per-window rates and latency
    distributions; the [--telemetry-interval] time-series file is one
    snapshot per JSONL line.

    Two exposition formats are supported: the registry's compact JSON
    (bit-compatible with {!Metrics.to_json}, so one reader parses
    snapshots, [BENCH_metrics.json] cells and [Stats] replies) and
    Prometheus text exposition ({!to_prometheus}). *)

type t
(** A frozen, sorted capture.  Capturing is O(registry) and the result
    never changes as recording continues. *)

val of_metrics : Metrics.t -> t
val to_metrics : t -> Metrics.t
(** Rebuild a live registry holding the snapshot's values (e.g. to merge
    scraped snapshots across replicas with {!Metrics.merge_into}). *)

(** {1 Reading} *)

val names : t -> string list
val find : t -> string -> Metrics.view option

val counter : t -> string -> int
(** 0 when absent. *)

val gauge : t -> string -> float
(** 0.0 when absent. *)

val hist : t -> string -> Metrics.hist_view option
val hist_count : t -> string -> int

val quantile : t -> string -> float -> float
(** [quantile s name 0.99] — [nan] when absent or empty; same estimator
    and clamping as the live registry. *)

val quantile_of_view : Metrics.hist_view -> float -> float

val hist_max : t -> string -> float
val hist_mean : t -> string -> float

(** {1 Delta} *)

val delta : before:t -> after:t -> t
(** The window between two captures of the same registry: counters and
    histogram buckets subtract, gauges keep the [after] reading.  A
    counter or histogram that {e decreased} means the source restarted
    between captures; the [after] value then stands alone (the Prometheus
    counter-reset convention).  A delta histogram's min/max are bounded
    by the edges of the window's occupied buckets (the exact extremes of
    just the window are unknowable from cumulative captures). *)

(** {1 Exposition} *)

val to_json : ?include_zeros:bool -> t -> Json.t
(** Same shape and defaults as {!Metrics.to_json}. *)

val of_json : Json.t -> t
(** Inverse of {!to_json}.
    @raise Invalid_argument when the value is not an object. *)

val to_prometheus :
  ?namespace:string -> ?labels:(string * string) list -> t -> string
(** Prometheus text exposition: [# TYPE] comments, dotted metric names
    mapped to [namespace_layer_metric] (default namespace ["gcs"]),
    histograms as cumulative [_bucket{le="..."}] series plus [_sum] and
    [_count].  [labels] are attached to every sample; label values are
    escaped per the exposition format (backslash, double quote,
    newline). *)

val pp : Format.formatter -> t -> unit
(** Human-readable table, one metric per line (same as {!Metrics.pp}). *)
