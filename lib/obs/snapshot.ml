(* Immutable captures of a Metrics registry, the unit of the live
   telemetry plane: a daemon answers a Stats request with one snapshot,
   gcs_top subtracts consecutive snapshots to get per-window rates and
   latency distributions, and the JSONL time-series file is one snapshot
   per line.

   A snapshot is a sorted association list of frozen Metrics views, so
   capturing one never blocks or perturbs further recording. *)

module M = Metrics

type t = (string * M.view) list

let of_metrics m = M.views m
let to_metrics s = M.of_views s

let names s = List.map fst s
let find s name = List.assoc_opt name s

let counter s name =
  match find s name with Some (M.V_counter n) -> n | _ -> 0

let gauge s name =
  match find s name with Some (M.V_gauge g) -> g | _ -> 0.0

let hist s name =
  match find s name with Some (M.V_hist h) -> Some h | _ -> None

let hist_count s name =
  match hist s name with Some h -> h.M.hv_count | None -> 0

(* Quantile over sparse buckets: same estimator as the live registry
   (rank walk, representative value = bucket upper edge, clamped to the
   recorded extremes when those are finite). *)
let quantile_of_view (h : M.hist_view) q =
  if h.M.hv_count = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (Float.of_int h.M.hv_count *. q +. 0.5) in
      if r < 1 then 1 else if r > h.M.hv_count then h.M.hv_count else r
    in
    let rec walk acc = function
      | [] -> h.M.hv_max
      | (i, c) :: rest ->
          if acc + c >= rank then M.bucket_upper i else walk (acc + c) rest
    in
    let est = walk 0 h.M.hv_buckets in
    if Float.is_finite h.M.hv_max && est > h.M.hv_max then h.M.hv_max
    else if Float.is_finite h.M.hv_min && est < h.M.hv_min then h.M.hv_min
    else est
  end

let quantile s name q =
  match hist s name with Some h -> quantile_of_view h q | None -> Float.nan

let hist_max s name =
  match hist s name with
  | Some h when h.M.hv_count > 0 -> h.M.hv_max
  | _ -> Float.nan

let hist_mean s name =
  match hist s name with
  | Some h when h.M.hv_count > 0 -> h.M.hv_sum /. float_of_int h.M.hv_count
  | _ -> Float.nan

(* ---------- delta ---------- *)

(* A histogram window's exact min/max are unknowable from two cumulative
   captures; bound them by the edges of the window's occupied buckets. *)
let bucket_bounds buckets =
  match buckets with
  | [] -> (infinity, neg_infinity)
  | (first, _) :: _ ->
      let last, _ = List.nth buckets (List.length buckets - 1) in
      ((if first = 0 then 0.0 else M.bucket_upper (first - 1)),
       M.bucket_upper last)

let hist_delta ~(before : M.hist_view) ~(after : M.hist_view) =
  let sub =
    List.filter_map
      (fun (i, c) ->
        let c' =
          match List.assoc_opt i before.M.hv_buckets with
          | Some b -> c - b
          | None -> c
        in
        if c' > 0 then Some (i, c') else if c' < 0 then raise Exit else None)
      after.M.hv_buckets
  in
  let count = after.M.hv_count - before.M.hv_count in
  if count < 0 then raise Exit;
  let mn, mx = bucket_bounds sub in
  {
    M.hv_count = count;
    hv_sum = after.M.hv_sum -. before.M.hv_sum;
    hv_min = mn;
    hv_max = mx;
    hv_buckets = sub;
  }

(* Counters and histogram buckets subtract; a decrease means the source
   restarted between captures, in which case [after] stands alone (the
   Prometheus counter-reset convention).  Gauges keep the latest reading.
   Entries present only in [after] are new since [before] and kept;
   entries that vanished are dropped. *)
let delta ~before ~after =
  List.map
    (fun (name, v) ->
      match (v, List.assoc_opt name before) with
      | M.V_counter a, Some (M.V_counter b) ->
          (name, M.V_counter (if a >= b then a - b else a))
      | M.V_hist a, Some (M.V_hist b) ->
          (name, try M.V_hist (hist_delta ~before:b ~after:a)
                 with Exit -> M.V_hist a)
      | _ -> (name, v))
    after

(* ---------- JSON ---------- *)

(* The JSON shape is exactly the registry's, so snapshots, BENCH_metrics
   cells and Stats replies all parse with one reader. *)
let to_json ?include_zeros s = M.to_json ?include_zeros (to_metrics s)
let of_json j = of_metrics (M.of_json j)

(* ---------- Prometheus exposition ---------- *)

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names map '.' (and
   anything else illegal) to '_'. *)
let prom_name name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

(* Label values escape backslash, double quote and newline. *)
let prom_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  buf

let prom_num x =
  if Float.is_nan x then "NaN"
  else if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let render_labels labels extra =
  match labels @ extra with
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (prom_name k)
                 (Buffer.contents (prom_escape v)))
             kvs)
      ^ "}"

let to_prometheus ?(namespace = "gcs") ?(labels = []) s =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  let full name = prom_name (namespace ^ "_" ^ name) in
  List.iter
    (fun (name, v) ->
      let n = full name in
      match v with
      | M.V_counter c ->
          line "# TYPE %s counter" n;
          line "%s%s %d" n (render_labels labels []) c
      | M.V_gauge g ->
          line "# TYPE %s gauge" n;
          line "%s%s %s" n (render_labels labels []) (prom_num g)
      | M.V_hist h ->
          line "# TYPE %s histogram" n;
          let cum = ref 0 in
          List.iter
            (fun (i, c) ->
              cum := !cum + c;
              line "%s_bucket%s %d" n
                (render_labels labels [ ("le", prom_num (M.bucket_upper i)) ])
                !cum)
            h.M.hv_buckets;
          line "%s_bucket%s %d" n
            (render_labels labels [ ("le", "+Inf") ])
            h.M.hv_count;
          line "%s_sum%s %s" n (render_labels labels []) (prom_num h.M.hv_sum);
          line "%s_count%s %d" n (render_labels labels []) h.M.hv_count)
    s;
  Buffer.contents buf

let pp ppf s = M.pp ppf (to_metrics s)
