(* Per-node registry of named counters, gauges and log-bucketed latency
   histograms.  Everything on the record path is an integer increment or a
   single array bump, so the registry is cheap enough to leave always-on. *)

(* Histogram bucketing: 4 buckets per octave (factor sqrt(sqrt 2) ~ 1.19
   between bucket edges) starting at [base] = 0.001 ms.  Bucket 0 holds
   values <= base; the last bucket is an overflow catch-all.  With 128
   buckets this spans 0.001 ms .. ~2.6e6 ms, far beyond any simulated
   latency, with <= ~19% relative quantile error — tightened further by
   tracking the exact min/max/sum. *)
let n_buckets = 128
let base = 0.001
let buckets_per_octave = 4.0

let bucket_of value =
  if value <= base then 0
  else
    let idx = 1 + int_of_float (Float.log2 (value /. base) *. buckets_per_octave) in
    if idx >= n_buckets then n_buckets - 1 else idx

(* Upper edge of bucket [i]: representative value reported for quantiles. *)
let bucket_upper i =
  if i = 0 then base
  else base *. Float.exp2 (float_of_int i /. buckets_per_octave)

type hist = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

type entry =
  | Counter of int ref
  | Gauge of float ref
  | Hist of hist

type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 32 }

let counter_ref t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Counter r) -> r
  | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a counter")
  | None ->
      let r = ref 0 in
      Hashtbl.add t.entries name (Counter r);
      r

let incr ?(by = 1) t name = counter_ref t name := !(counter_ref t name) + by

let gauge_ref t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Gauge r) -> r
  | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a gauge")
  | None ->
      let r = ref 0.0 in
      Hashtbl.add t.entries name (Gauge r);
      r

let set_gauge t name v = gauge_ref t name := v

let hist t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Hist h) -> h
  | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a histogram")
  | None ->
      let h =
        {
          counts = Array.make n_buckets 0;
          count = 0;
          sum = 0.0;
          min = infinity;
          max = neg_infinity;
        }
      in
      Hashtbl.add t.entries name (Hist h);
      h

let observe t name value =
  let h = hist t name in
  let b = bucket_of value in
  h.counts.(b) <- h.counts.(b) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. value;
  if value < h.min then h.min <- value;
  if value > h.max then h.max <- value

(* ---------- reads ---------- *)

let counter t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Counter r) -> !r
  | _ -> 0

let gauge t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Gauge r) -> !r
  | _ -> 0.0

let hist_count t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Hist h) -> h.count
  | _ -> 0

let quantile_of_hist h q =
  if h.count = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (Float.of_int h.count *. q +. 0.5) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let acc = ref 0 and result = ref h.max in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + h.counts.(i);
         if !acc >= rank then begin
           result := bucket_upper i;
           raise Exit
         end
       done
     with Exit -> ());
    (* The bucket edge can overshoot the true extremes; clamp. *)
    if !result > h.max then h.max else if !result < h.min then h.min else !result
  end

let quantile t name q =
  match Hashtbl.find_opt t.entries name with
  | Some (Hist h) -> quantile_of_hist h q
  | _ -> Float.nan

let hist_max t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Hist h) when h.count > 0 -> h.max
  | _ -> Float.nan

let hist_mean t name =
  match Hashtbl.find_opt t.entries name with
  | Some (Hist h) when h.count > 0 -> h.sum /. float_of_int h.count
  | _ -> Float.nan

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.entries []
  |> List.sort String.compare

(* ---------- frozen views ---------- *)

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;
  hv_max : float;
  hv_buckets : (int * int) list;
}

type view = V_counter of int | V_gauge of float | V_hist of hist_view

let sparse_buckets counts =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if counts.(i) > 0 then acc := (i, counts.(i)) :: !acc
  done;
  !acc

let view_of_entry = function
  | Counter r -> V_counter !r
  | Gauge r -> V_gauge !r
  | Hist h ->
      V_hist
        {
          hv_count = h.count;
          hv_sum = h.sum;
          hv_min = h.min;
          hv_max = h.max;
          hv_buckets = sparse_buckets h.counts;
        }

let view t name =
  Option.map view_of_entry (Hashtbl.find_opt t.entries name)

let views t =
  List.map (fun name -> (name, view_of_entry (Hashtbl.find t.entries name)))
    (names t)

let of_views vs =
  let t = create () in
  List.iter
    (fun (name, v) ->
      match v with
      | V_counter n -> incr ~by:n t name
      | V_gauge g -> set_gauge t name g
      | V_hist hv ->
          let h = hist t name in
          List.iter
            (fun (i, c) ->
              if i >= 0 && i < n_buckets then h.counts.(i) <- h.counts.(i) + c)
            hv.hv_buckets;
          h.count <- hv.hv_count;
          h.sum <- hv.hv_sum;
          h.min <- hv.hv_min;
          h.max <- hv.hv_max)
    vs;
  t

(* ---------- merge ---------- *)

(* Counters and histograms add; gauges keep the max (the interesting
   cross-node reading for e.g. blocked time or queue depth). *)
let merge_into ~into src =
  Hashtbl.iter
    (fun name entry ->
      match entry with
      | Counter r -> incr ~by:!r into name
      | Gauge r ->
          let g = gauge_ref into name in
          if !r > !g then g := !r
      | Hist h ->
          let h' = hist into name in
          Array.iteri
            (fun i c -> h'.counts.(i) <- h'.counts.(i) + c)
            h.counts;
          h'.count <- h'.count + h.count;
          h'.sum <- h'.sum +. h.sum;
          if h.min < h'.min then h'.min <- h.min;
          if h.max > h'.max then h'.max <- h.max)
    src.entries

let merged ms =
  let into = create () in
  List.iter (fun m -> merge_into ~into m) ms;
  into

(* ---------- JSON ---------- *)

let num x : Json.t = if Float.is_nan x then Null else Num x

let hist_to_json h : Json.t =
  (* Sparse bucket encoding: only non-empty buckets, as [idx, count]. *)
  let buckets =
    Array.to_list h.counts
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) ->
           Json.Arr [ Num (float_of_int i); Num (float_of_int c) ])
  in
  Obj
    [
      ("type", Str "hist");
      ("count", Num (float_of_int h.count));
      ("sum", num h.sum);
      ("min", num (if h.count = 0 then Float.nan else h.min));
      ("max", num (if h.count = 0 then Float.nan else h.max));
      ("p50", num (quantile_of_hist h 0.50));
      ("p90", num (quantile_of_hist h 0.90));
      ("p95", num (quantile_of_hist h 0.95));
      ("p99", num (quantile_of_hist h 0.99));
      ("buckets", Arr buckets);
    ]

(* Zero counters and empty histograms are omitted by default: [of_json]
   recreates entries lazily anyway, so an absent entry and a zero entry
   read back the same, and the dump stays proportional to what the run
   actually did.  [include_zeros] keeps them, for diffing registries
   across runs or replicas where a structurally absent metric and a
   metric that never fired must stay distinguishable. *)
let to_json ?(include_zeros = false) t : Json.t =
  Obj
    (List.filter_map
       (fun name ->
         match Hashtbl.find t.entries name with
         | Counter { contents = 0 } when not include_zeros -> None
         | Counter r ->
             Some
               ( name,
                 Json.Obj
                   [
                     ("type", Str "counter"); ("value", Num (float_of_int !r));
                   ] )
         | Gauge r ->
             Some (name, Json.Obj [ ("type", Str "gauge"); ("value", num !r) ])
         | Hist h when h.count = 0 && not include_zeros -> None
         | Hist h -> Some (name, hist_to_json h))
       (names t))

let of_json (j : Json.t) =
  let t = create () in
  let float_field obj k =
    match Json.member k obj with Some (Num x) -> x | _ -> Float.nan
  in
  (match j with
  | Obj kvs ->
      List.iter
        (fun (name, v) ->
          match Json.member "type" v with
          | Some (Str "counter") ->
              incr ~by:(int_of_float (float_field v "value")) t name
          | Some (Str "gauge") -> set_gauge t name (float_field v "value")
          | Some (Str "hist") ->
              let h = hist t name in
              (match Json.member "buckets" v with
              | Some (Arr bs) ->
                  List.iter
                    (function
                      | Json.Arr [ Num i; Num c ] ->
                          let i = int_of_float i and c = int_of_float c in
                          if i >= 0 && i < n_buckets then
                            h.counts.(i) <- h.counts.(i) + c
                      | _ -> ())
                    bs
              | _ -> ());
              h.count <- int_of_float (float_field v "count");
              h.sum <- float_field v "sum";
              let mn = float_field v "min" and mx = float_field v "max" in
              h.min <- (if Float.is_nan mn then infinity else mn);
              h.max <- (if Float.is_nan mx then neg_infinity else mx)
          | _ -> ())
        kvs
  | _ -> invalid_arg "Metrics.of_json: expected an object");
  t

(* ---------- pretty-printing ---------- *)

let pp ppf t =
  let pp_entry name =
    match Hashtbl.find t.entries name with
    | Counter r -> Fmt.pf ppf "  %-42s %10d@." name !r
    | Gauge r -> Fmt.pf ppf "  %-42s %10.2f@." name !r
    | Hist h ->
        if h.count = 0 then Fmt.pf ppf "  %-42s (no samples)@." name
        else
          Fmt.pf ppf
            "  %-42s n=%-6d mean=%-8.3f p50=%-8.3f p90=%-8.3f p99=%-8.3f \
             max=%-8.3f@."
            name h.count
            (h.sum /. float_of_int h.count)
            (quantile_of_hist h 0.50)
            (quantile_of_hist h 0.90)
            (quantile_of_hist h 0.99)
            h.max
  in
  List.iter pp_entry (names t)
