(** Offline protocol auditor: replays a recorded event history and checks
    the paper's ordering invariants.

    The auditor consumes {!Event.t} lists — in-memory trace buffers or
    JSONL dumps loaded with {!Event.load_jsonl} — and verifies:

    - {b fifo}: reliable-channel deliveries are in strictly increasing
      sequence order per (receiver, sender, generation) stream;
    - {b total-order}: uniform total order for the sequenced broadcasts
      (abcast, totem, and the traditional stack's ordered deliveries):
      no node delivers a message twice, and any two nodes deliver their
      common messages in the same relative order;
    - {b conflict-order}: generic broadcast orders only what conflicts
      (Section 4.2): deliveries of conflicting-class messages must agree
      everywhere, commuting messages may diverge against each other but
      not against conflicting ones;
    - {b same-view}: every generic-broadcast message is delivered in the
      same membership view at every member that delivers it
      (Section 4.4);
    - {b agreement}: all consensus decide events for one instance carry
      the same decision value;
    - {b replay-idempotence}: a node kill -9'd and rebooted from its
      durable delivery log never hands the application a message it
      already delivered in a previous incarnation (log replay and delta
      state transfer must dedup).  Only the application delivery surfaces
      (abcast/gbcast and the baselines) are audited: dissemination layers
      below them keep volatile dedup state by design and may legitimately
      re-deliver retransmitted traffic to a rebooted node.  Passes
      vacuously when the history has no restart fault events.

    Checks are tolerant of truncated histories (a ring buffer dropping
    the oldest records keeps every check sound except same-view — see
    {!Gc_sim.Trace.dropped}) and of components that never appear: a
    check with no relevant events passes vacuously. *)

type check =
  | Fifo
  | Total_order
  | Conflict_order
  | Same_view
  | Agreement
  | Replay_idempotence

val all_checks : check list

val check_to_string : check -> string
(** ["fifo"], ["total-order"], ["conflict-order"], ["same-view"],
    ["agreement"], ["replay-idempotence"]. *)

val check_of_string : string -> check option

type violation = {
  check : check;
  message : string;  (** one-sentence description of what went wrong *)
  pair : Event.t * Event.t;  (** the first violating event pair *)
  chain : Event.t list;
      (** causal context: every recorded lifecycle event of the messages
          involved, sorted by Lamport clock *)
}

(** A waiver downgrades a violation of one check to a documented, expected
    limitation.  Fuzzing the kill-and-rejoin baselines needs this: some
    fault schedules drive them into behaviour the paper itself calls out
    as the cost of the traditional architecture, and those runs must not
    drown out real regressions.  A waiver only fires when its [applies]
    predicate confirms the documented pattern in the actual history. *)
type waiver = {
  name : string;  (** short slug, e.g. ["excluded-rejoin"] *)
  check : check;  (** the only check this waiver can downgrade *)
  reason : string;  (** why the behaviour is a documented limitation *)
  applies : Event.t list -> violation -> bool;
      (** confirms the pattern against the full history *)
}

type report = {
  scanned : int;  (** number of events examined *)
  checks : check list;  (** checks that ran *)
  violations : violation list;  (** unwaived violations, at most one per check *)
  waived : (violation * waiver) list;
      (** violations a waiver claimed, with the waiver that matched *)
}

val run : ?checks:check list -> ?waivers:waiver list -> Event.t list -> report
(** Replay [events] (in recorded order) through [checks] (default
    {!all_checks}).  Each check reports at most its first violation; a
    violation claimed by a matching waiver moves to [waived]. *)

val ok : report -> bool
(** No {e unwaived} violations. *)

(** {1 Stock waivers} *)

val waiver :
  name:string ->
  check:check ->
  reason:string ->
  (Event.t list -> violation -> bool) ->
  waiver

val excluded_rejoin : check:check -> waiver
(** Waives a violation of [check] when one of the violating nodes was
    excluded (an [Exclude] event names it): the kill-and-rejoin baselines
    only guarantee ordering within one membership incarnation
    (Section 4.3). *)

val recovered_freeze : check:check -> waiver
(** Waives a violation of [check] when one of the violating nodes went
    through a network crash/recover freeze ({!Gc_net.Netsim.recover}):
    kill-and-rejoin stacks resume a frozen process with its pre-freeze
    ordering state. *)

val restarted_rejoin : check:check -> waiver
(** Waives a violation of [check] when one of the violating nodes was
    kill -9'd and rebooted mid-run (a ["fault"]/["restart"] event names
    it): kill-and-rejoin baselines make no cross-incarnation delivery
    guarantee.  The log-recovering architecture does {e not} take this
    waiver — restarts are exactly what its durable log is for. *)

val pp_report : Format.formatter -> report -> unit
