(** Offline protocol auditor: replays a recorded event history and checks
    the paper's ordering invariants.

    The auditor consumes {!Event.t} lists — in-memory trace buffers or
    JSONL dumps loaded with {!Event.load_jsonl} — and verifies:

    - {b fifo}: reliable-channel deliveries are in strictly increasing
      sequence order per (receiver, sender, generation) stream;
    - {b total-order}: uniform total order for the sequenced broadcasts
      (abcast, totem, and the traditional stack's ordered deliveries):
      no node delivers a message twice, and any two nodes deliver their
      common messages in the same relative order;
    - {b conflict-order}: generic broadcast orders only what conflicts
      (Section 4.2): deliveries of conflicting-class messages must agree
      everywhere, commuting messages may diverge against each other but
      not against conflicting ones;
    - {b same-view}: every generic-broadcast message is delivered in the
      same membership view at every member that delivers it
      (Section 4.4);
    - {b agreement}: all consensus decide events for one instance carry
      the same decision value.

    Checks are tolerant of truncated histories (a ring buffer dropping
    the oldest records keeps every check sound except same-view — see
    {!Gc_sim.Trace.dropped}) and of components that never appear: a
    check with no relevant events passes vacuously. *)

type check = Fifo | Total_order | Conflict_order | Same_view | Agreement

val all_checks : check list

val check_to_string : check -> string
(** ["fifo"], ["total-order"], ["conflict-order"], ["same-view"],
    ["agreement"]. *)

val check_of_string : string -> check option

type violation = {
  check : check;
  message : string;  (** one-sentence description of what went wrong *)
  pair : Event.t * Event.t;  (** the first violating event pair *)
  chain : Event.t list;
      (** causal context: every recorded lifecycle event of the messages
          involved, sorted by Lamport clock *)
}

type report = {
  scanned : int;  (** number of events examined *)
  checks : check list;  (** checks that ran *)
  violations : violation list;  (** at most one per check *)
}

val run : ?checks:check list -> Event.t list -> report
(** Replay [events] (in recorded order) through [checks] (default
    {!all_checks}).  Each check reports at most its first violation. *)

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit
