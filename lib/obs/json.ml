type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_num x =
  if Float.is_nan x then "null" (* JSON has no NaN; absent-sample quantile *)
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> Buffer.add_string b (fmt_num x)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* Pretty printer with two-space indentation, for files meant to be read. *)
let rec write_pretty b indent = function
  | Arr (_ :: _ as l) ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string b "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad';
          write_pretty b (indent + 2) v)
        l;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b ']'
  | Obj (_ :: _ as kvs) ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write_pretty b (indent + 2) v)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b '}'
  | v -> write b v

let to_string_pretty v =
  let b = Buffer.create 1024 in
  write_pretty b 0 v;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char b '"'; st.pos <- st.pos + 1; go ()
        | Some '\\' -> Buffer.add_char b '\\'; st.pos <- st.pos + 1; go ()
        | Some '/' -> Buffer.add_char b '/'; st.pos <- st.pos + 1; go ()
        | Some 'n' -> Buffer.add_char b '\n'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char b '\r'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char b '\t'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char b '\b'; st.pos <- st.pos + 1; go ()
        | Some 'f' -> Buffer.add_char b '\012'; st.pos <- st.pos + 1; go ()
        | Some 'u' ->
            if st.pos + 5 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src (st.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            (* Enough for the control characters we emit ourselves. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
            st.pos <- st.pos + 5;
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        Buffer.add_char b c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let numchar c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && numchar st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some x -> x
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        Arr (elements [])
      end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ---------- accessors ---------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float = function Num x -> Some x | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
