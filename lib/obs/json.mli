(** A minimal JSON value type with printing and parsing.

    Used by {!Metrics} to serialise registries and by the bench harness to
    assemble [BENCH_metrics.json].  Deliberately tiny: no streaming, no
    full unicode escapes beyond what {!to_string} itself produces — the
    goal is a faithful round-trip for machine-generated metric documents,
    not a general-purpose JSON library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, for files meant to be read by humans. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document.  @raise Parse_error on malformed
    input or trailing garbage. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
