(** One fuzzing run: build a full simulated world for a stack, apply a
    fault script, drive a deterministic broadcast workload, record with
    the flight recorder and audit the history.

    Everything about a run is a pure function of [(stack, script, casts)]:
    the engine is seeded with [script.seed] (the generator derives its own
    stream from the same seed with {!Gc_sim.Rng.derive}, so generation
    never perturbs the run), the workload is scheduled at fixed virtual
    times, and the injector schedules every fault up front.  Re-running
    the same triple reproduces the identical Lamport-clocked event
    sequence — the property [gcs_fuzz replay] asserts. *)

type stack_kind =
  | Abgb  (** new architecture, pure abcast workload *)
  | Gbcast  (** new architecture, mixed rbcast/abcast workload *)
  | Traditional  (** Isis-style GM-VS baseline *)
  | Totem  (** single-ring baseline *)

val all_stacks : stack_kind list
val stack_to_string : stack_kind -> string
val stack_of_string : string -> stack_kind option

type Gc_net.Payload.t += Fuzz of int  (** workload payload, [k]-th cast *)

type outcome = {
  stack : stack_kind;
  script : Gc_faultgen.Fault_script.t;
  events : Gc_obs.Event.t list;  (** the recorded history, post-hook *)
  report : Gc_obs.Audit.report;
  delivered : int;  (** application deliveries observed at node 0 *)
  trace_dropped : int;  (** ring-buffer evictions (0 = complete history) *)
}

val waivers_for : stack_kind -> Gc_obs.Audit.waiver list
(** The AB-GB stacks get none — any violation is a bug, including across
    kill -9 restarts (their durable log plus rejoin state transfer is
    supposed to make recovery exact).  The kill-and-rejoin baselines get
    the documented-limitation waivers ({!Gc_obs.Audit.excluded_rejoin},
    {!Gc_obs.Audit.recovered_freeze}, {!Gc_obs.Audit.restarted_rejoin}). *)

val ordered_component : stack_kind -> string
(** Trace component carrying the stack's total-order deliveries. *)

val run :
  ?casts:int -> ?inject_reorder:bool -> stack:stack_kind ->
  Gc_faultgen.Fault_script.t -> outcome
(** Execute one run.  [casts] (default 12) broadcasts are spread over the
    first 65% of the horizon round-robin across senders.

    [inject_reorder] is the self-test hook: after the run it swaps two
    distinct ordered deliveries at one node in the {e recorded} history
    (the simulation itself is untouched), which the auditor must flag —
    and, because the failure does not depend on the faults, shrinking
    must strip the script to (nearly) nothing. *)
