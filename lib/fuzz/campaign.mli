(** Seed sweeps, failure reproduction, shrinking and artifact handling —
    the logic behind the [gcs_fuzz] CLI, exposed as a library so tests
    can run miniature campaigns.

    A {!failure} bundles everything a re-run needs: the stack, the fault
    script, the workload size and whether the reorder hook was armed.
    Saved to disk it becomes a replayable JSON artifact with a sibling
    [.trace.jsonl] holding the failing run's recorded history. *)

type failure = {
  stack : Harness.stack_kind;
  checks : Gc_obs.Audit.check list;
      (** the unwaived checks violated at discovery; reproduction means
          violating at least one of them again *)
  script : Gc_faultgen.Fault_script.t;
  casts : int;
  inject_reorder : bool;
}

val violated_checks : Gc_obs.Audit.report -> Gc_obs.Audit.check list
(** Distinct checks with unwaived violations. *)

val failure_of_outcome :
  ?casts:int -> ?inject_reorder:bool -> Harness.outcome -> failure

val run_failure : failure -> Harness.outcome
(** Re-execute the failure's run exactly (same stack/script/casts/hook). *)

val reproduces : failure -> bool
(** Does re-running still violate one of [failure.checks] (unwaived)? *)

val shrink :
  ?max_param_runs:int -> failure -> Gc_faultgen.Fault_script.t Gc_faultgen.Shrink.stats
(** Minimise the failure's script: ddmin over events, then parameter
    simplification.  Every accepted candidate re-ran the full simulation
    and reproduced the violation. *)

(** {1 Artifacts} *)

val to_json : failure -> Gc_obs.Json.t
val of_json : Gc_obs.Json.t -> failure
(** @raise Failure on a value not produced by {!to_json}. *)

val trace_path : string -> string
(** [trace_path "x/y.json"] is ["x/y.trace.jsonl"]. *)

val save : dir:string -> name:string -> failure -> Harness.outcome -> string
(** Write [dir/name.json] (the failure) and [dir/name.trace.jsonl] (the
    outcome's recorded history); returns the artifact path.  Creates
    [dir] if missing. *)

val load : string -> failure

val replay : string -> failure * Harness.outcome * bool option
(** Load an artifact, re-run it, and — when the sibling trace exists —
    compare histories record-for-record.  [Some true] is the bit-for-bit
    determinism guarantee; [None] means no stored trace to compare. *)

(** {1 Seed sweeps} *)

type found = {
  failure : failure;  (** with the shrunk script *)
  original : Gc_faultgen.Fault_script.t;  (** as generated *)
  shrink_runs : int;  (** simulations spent shrinking *)
  artifact : string option;
}

type summary = {
  runs : int;
  clean : int;  (** runs with no violations at all *)
  waived_runs : int;  (** runs whose only violations were waived *)
  found : found list;
}

val sweep :
  ?profile:Gc_faultgen.Generator.profile ->
  ?nodes:int ->
  ?horizon:float ->
  ?casts:int ->
  ?inject_reorder:bool ->
  ?artifact_dir:string ->
  ?log:(string -> unit) ->
  stacks:Harness.stack_kind list ->
  seeds:int64 list ->
  unit ->
  summary
(** For every stack × seed: generate a script, run, audit; on an unwaived
    violation shrink it and (with [artifact_dir]) save the artifact.
    Defaults: {!Gc_faultgen.Generator.default} profile, 5 nodes, 12 s
    horizon, 12 casts. *)
