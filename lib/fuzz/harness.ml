module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module Stack = Gcs.Gcs_stack
module Tr = Gc_traditional.Traditional_stack
module Tt = Gc_totem.Totem_stack
module Event = Gc_obs.Event
module Audit = Gc_obs.Audit
module Fault_script = Gc_faultgen.Fault_script
module Injector = Gc_faultgen.Injector

type stack_kind = Abgb | Gbcast | Traditional | Totem

let all_stacks = [ Abgb; Gbcast; Traditional; Totem ]

let stack_to_string = function
  | Abgb -> "abgb"
  | Gbcast -> "gbcast"
  | Traditional -> "traditional"
  | Totem -> "totem"

let stack_of_string = function
  | "abgb" | "new" -> Some Abgb
  | "gbcast" -> Some Gbcast
  | "traditional" -> Some Traditional
  | "totem" -> Some Totem
  | _ -> None

type Gc_net.Payload.t += Fuzz of int

let () =
  Gc_net.Payload.register_printer (function
    | Fuzz k -> Some (Printf.sprintf "fuzz#%d" k)
    | _ -> None)

type outcome = {
  stack : stack_kind;
  script : Fault_script.t;
  events : Event.t list;
  report : Audit.report;
  delivered : int;
  trace_dropped : int;
}

(* The audited safety surface and the documented limitations per stack.
   The AB-GB architectures get NO waivers: any violation is a bug.  The
   kill-and-rejoin baselines only promise ordering within one membership
   incarnation (paper Section 4.3), so violations whose nodes were
   excluded, or resumed from a freeze, are downgraded to documented
   behaviour — each waiver still checks the pattern in the history. *)
let waivers_for = function
  | Abgb | Gbcast -> []
  | Traditional | Totem ->
      [
        Audit.excluded_rejoin ~check:Audit.Total_order;
        Audit.recovered_freeze ~check:Audit.Total_order;
        Audit.restarted_rejoin ~check:Audit.Total_order;
        Audit.excluded_rejoin ~check:Audit.Fifo;
        Audit.recovered_freeze ~check:Audit.Fifo;
        Audit.restarted_rejoin ~check:Audit.Fifo;
        Audit.restarted_rejoin ~check:Audit.Replay_idempotence;
      ]

let checks_for (_ : stack_kind) = Audit.all_checks

(* Component whose [Deliver] events carry the stack's total order — the
   surface the reorder test hook perturbs. *)
let ordered_component = function
  | Abgb | Gbcast -> "abcast"
  | Traditional -> "traditional"
  | Totem -> "totem"

(* Swap the first two distinct ordered deliveries at one node: the oracle
   must catch this, and shrinking a failure that does not depend on the
   faults must converge to (almost) no events. *)
let swap_two_deliveries ~component events =
  let is_target node (e : Event.t) =
    e.Event.component = component
    && e.Event.kind = Event.Deliver
    && e.Event.msg <> None
    && match node with Some n -> e.Event.node = n | None -> true
  in
  let node =
    List.find_map
      (fun (e : Event.t) -> if is_target None e then Some e.Event.node else None)
      events
  in
  match node with
  | None -> events
  | Some n ->
      let indices = ref [] in
      List.iteri
        (fun idx e ->
          if is_target (Some n) e && List.length !indices < 2 then
            match !indices with
            | [ (_, first) ] when (first : Event.t).Event.msg <> e.Event.msg ->
                indices := !indices @ [ (idx, e) ]
            | [] -> indices := [ (idx, e) ]
            | _ -> ())
        events;
      (match !indices with
      | [ (i1, e1); (i2, e2) ] ->
          List.mapi
            (fun idx e -> if idx = i1 then e2 else if idx = i2 then e1 else e)
            events
      | _ -> events)

let run ?(casts = 12) ?(inject_reorder = false) ~stack script =
  let { Fault_script.seed; nodes; horizon; _ } = script in
  let engine = Engine.create ~seed () in
  let trace = Trace.create ~enabled:true ~capacity:400_000 () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n:nodes () in
  let initial = List.init nodes (fun i -> i) in
  let delivered = ref 0 in
  let count_at_0 id = if id = 0 then incr delivered in
  let send, fd_of, on_restart, on_restore =
    match stack with
    | Abgb | Gbcast ->
        (* Kill -9 support: each node keeps an in-memory durable log that
           survives the rebuild (the sim analogue of a --data-dir), plus a
           boot counter scoping its channel generations.  Only armed when
           the script actually restarts someone, so fault-free runs stay
           bit-for-bit identical to the committed determinism pins. *)
        let has_restart =
          List.exists
            (function Fault_script.Restart _ -> true | _ -> false)
            script.Fault_script.events
        in
        let storages =
          if has_restart then
            Some (Array.init nodes (fun _ -> Gc_kernel.Storage.in_memory ()))
          else None
        in
        let storage_for id = Option.map (fun a -> a.(id)) storages in
        let boots = Array.make nodes 0 in
        let make ~id ~initial =
          let s =
            Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial
              ?storage:(storage_for id) ~boot_epoch:boots.(id) ()
          in
          Stack.on_deliver s (fun ~origin:_ ~ordered:_ _ ->
              count_at_0 (Stack.id s));
          s
        in
        let stacks = Array.init nodes (fun id -> make ~id ~initial) in
        let on_restart ~node = Stack.crash stacks.(node) in
        let on_restore ~node =
          boots.(node) <- boots.(node) + 1;
          (* Rebuild as a passive joiner — the founding view without
             itself — so the fresh stack does not participate from
             protocol position zero (re-running decided instances,
             re-delivering the prefix) before the sponsor's resync
             snapshot bootstraps it at the group's current position. *)
          let s =
            make ~id:node ~initial:(List.filter (fun p -> p <> node) initial)
          in
          stacks.(node) <- s;
          let via = ref None in
          for p = nodes - 1 downto 0 do
            if p <> node && Netsim.alive net p then via := Some p
          done;
          match !via with
          | Some v ->
              let have =
                match storage_for node with
                | Some st -> snd (Gc_kernel.Storage.extent st)
                | None -> -1
              in
              Stack.join s ~force:true ~have ~via:v
          | None -> ()
        in
        ( (fun i k ->
            if stack = Gbcast && k mod 2 = 1 then Stack.rbcast stacks.(i) (Fuzz k)
            else Stack.abcast stacks.(i) (Fuzz k)),
          (fun i ->
            if i >= 0 && i < nodes then Some (Stack.failure_detector stacks.(i))
            else None),
          Some on_restart,
          Some on_restore )
    | Traditional ->
        let stacks =
          Array.init nodes (fun id -> Tr.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ())
        in
        Array.iter
          (fun s ->
            Tr.on_deliver s (fun ~origin:_ ~ordered:_ _ -> count_at_0 (Tr.id s)))
          stacks;
        ((fun i k -> Tr.abcast stacks.(i) (Fuzz k)), (fun _ -> None), None, None)
    | Totem ->
        let stacks =
          Array.init nodes (fun id -> Tt.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ())
        in
        Array.iter
          (fun s ->
            Tt.on_deliver s (fun ~origin:_ _ -> count_at_0 (Tt.id s)))
          stacks;
        ((fun i k -> Tt.abcast stacks.(i) (Fuzz k)), (fun _ -> None), None, None)
  in
  Injector.install ~fd_of ?on_restart ?on_restore ~trace net script;
  (* Spread the workload over the fault window so broadcasts hit every
     phase of every fault, leaving the tail of the run to settle. *)
  let span = 0.65 *. horizon in
  for k = 0 to casts - 1 do
    let t = 100.0 +. (span -. 100.0) *. float_of_int k /. float_of_int (max 1 (casts - 1)) in
    let sender = k mod nodes in
    ignore (Engine.schedule_at engine ~time:t (fun () -> send sender k))
  done;
  Engine.run ~until:horizon engine;
  let events = Trace.records trace in
  let events =
    if inject_reorder then
      swap_two_deliveries ~component:(ordered_component stack) events
    else events
  in
  let report =
    Audit.run ~checks:(checks_for stack) ~waivers:(waivers_for stack) events
  in
  {
    stack;
    script;
    events;
    report;
    delivered = !delivered;
    trace_dropped = Trace.dropped trace;
  }
