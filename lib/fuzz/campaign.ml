module Audit = Gc_obs.Audit
module Json = Gc_obs.Json
module Event = Gc_obs.Event
module Fault_script = Gc_faultgen.Fault_script
module Generator = Gc_faultgen.Generator
module Shrink = Gc_faultgen.Shrink

type failure = {
  stack : Harness.stack_kind;
  checks : Audit.check list;
  script : Fault_script.t;
  casts : int;
  inject_reorder : bool;
}

let violated_checks (r : Audit.report) =
  List.sort_uniq compare
    (List.map (fun (v : Audit.violation) -> v.Audit.check) r.Audit.violations)

let failure_of_outcome ?(casts = 12) ?(inject_reorder = false)
    (o : Harness.outcome) =
  {
    stack = o.Harness.stack;
    checks = violated_checks o.Harness.report;
    script = o.Harness.script;
    casts;
    inject_reorder;
  }

let run_failure f =
  Harness.run ~casts:f.casts ~inject_reorder:f.inject_reorder ~stack:f.stack
    f.script

let still_fails f script =
  let o = run_failure { f with script } in
  let now = violated_checks o.Harness.report in
  List.exists (fun c -> List.mem c now) f.checks

let reproduces f = still_fails f f.script

let shrink ?max_param_runs f =
  Shrink.script ~test:(still_fails f) ?max_param_runs f.script

(* {1 Artifacts}

   A failure artifact is a JSON wrapper around the (shrunk) script —
   enough to re-run the exact world — plus a sibling [.trace.jsonl] with
   the recorded history of the failing run, so the counterexample is
   inspectable without re-running anything. *)

let to_json f =
  Json.Obj
    [
      ("stack", Json.Str (Harness.stack_to_string f.stack));
      ( "checks",
        Json.Arr
          (List.map (fun c -> Json.Str (Audit.check_to_string c)) f.checks) );
      ("casts", Json.Num (float_of_int f.casts));
      ("inject_reorder", Json.Bool f.inject_reorder);
      ("script", Fault_script.to_json f.script);
    ]

let of_json j =
  let mem k =
    match Json.member k j with
    | Some v -> v
    | None -> failwith (Printf.sprintf "failure artifact: missing %S" k)
  in
  let str k =
    match Json.to_str (mem k) with
    | Some s -> s
    | None -> failwith (Printf.sprintf "failure artifact: %S not a string" k)
  in
  let stack =
    match Harness.stack_of_string (str "stack") with
    | Some s -> s
    | None ->
        failwith
          (Printf.sprintf "failure artifact: unknown stack %S" (str "stack"))
  in
  let checks =
    match Json.to_list (mem "checks") with
    | Some cs ->
        List.filter_map
          (fun c ->
            match Json.to_str c with
            | Some s -> Audit.check_of_string s
            | None -> None)
          cs
    | None -> failwith "failure artifact: \"checks\" not an array"
  in
  {
    stack;
    checks;
    script = Fault_script.of_json (mem "script");
    casts =
      (match Json.to_float (mem "casts") with
      | Some f -> int_of_float f
      | None -> failwith "failure artifact: \"casts\" not a number");
    inject_reorder =
      (match Json.member "inject_reorder" j with
      | Some (Json.Bool b) -> b
      | _ -> false);
  }

let trace_path artifact =
  (try Filename.chop_extension artifact with Invalid_argument _ -> artifact)
  ^ ".trace.jsonl"

let save ~dir ~name f (o : Harness.outcome) =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let artifact = Filename.concat dir (name ^ ".json") in
  let oc = open_out artifact in
  output_string oc (Json.to_string_pretty (to_json f));
  output_char oc '\n';
  close_out oc;
  Event.save_jsonl (trace_path artifact) o.Harness.events;
  artifact

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json (Json.of_string s)

(* Replay determinism: the re-run's history must equal the stored one
   record-for-record (times, Lamport clocks, attributes — everything). *)
let replay path =
  let f = load path in
  let o = run_failure f in
  let tp = trace_path path in
  let matches =
    if Sys.file_exists tp then
      Some (Event.load_jsonl tp = o.Harness.events)
    else None
  in
  (f, o, matches)

(* {1 Seed sweeps} *)

type found = {
  failure : failure;  (** with the shrunk script *)
  original : Fault_script.t;  (** as generated, before shrinking *)
  shrink_runs : int;
  artifact : string option;
}

type summary = {
  runs : int;
  clean : int;
  waived_runs : int;  (** runs with waived violations only *)
  found : found list;
}

let sweep ?(profile = Generator.default) ?(nodes = 5) ?(horizon = 12_000.0)
    ?(casts = 12) ?(inject_reorder = false) ?artifact_dir
    ?(log = fun (_ : string) -> ()) ~stacks ~seeds () =
  let runs = ref 0 and clean = ref 0 and waived = ref 0 in
  let found = ref [] in
  List.iter
    (fun stack ->
      List.iter
        (fun seed ->
          incr runs;
          let script = Generator.generate ~profile ~seed ~nodes ~horizon () in
          let o = Harness.run ~casts ~inject_reorder ~stack script in
          if Audit.ok o.Harness.report then begin
            if o.Harness.report.Audit.waived <> [] then incr waived
            else incr clean;
            log
              (Printf.sprintf "ok    %-11s seed=%Ld%s"
                 (Harness.stack_to_string stack)
                 seed
                 (match o.Harness.report.Audit.waived with
                 | [] -> ""
                 | w -> Printf.sprintf " (%d waived)" (List.length w)))
          end
          else begin
            let f = failure_of_outcome ~casts ~inject_reorder o in
            log
              (Printf.sprintf "FAIL  %-11s seed=%Ld checks=%s — shrinking..."
                 (Harness.stack_to_string stack)
                 seed
                 (String.concat ","
                    (List.map Audit.check_to_string f.checks)));
            let s = shrink f in
            let shrunk = { f with script = s.Shrink.result } in
            let o' = run_failure shrunk in
            log
              (Printf.sprintf
                 "      shrunk %d -> %d events in %d runs"
                 (List.length script.Fault_script.events)
                 (List.length s.Shrink.result.Fault_script.events)
                 s.Shrink.runs);
            let artifact =
              match artifact_dir with
              | None -> None
              | Some dir ->
                  let name =
                    Printf.sprintf "%s-seed%Ld"
                      (Harness.stack_to_string stack)
                      seed
                  in
                  let path = save ~dir ~name shrunk o' in
                  log (Printf.sprintf "      artifact: %s" path);
                  Some path
            in
            found :=
              {
                failure = shrunk;
                original = script;
                shrink_runs = s.Shrink.runs;
                artifact;
              }
              :: !found
          end)
        seeds)
    stacks;
  { runs = !runs; clean = !clean; waived_runs = !waived; found = List.rev !found }
