(** Reliable FIFO point-to-point channels ("Reliable Channel" in Figure 9).

    Guarantees, per ordered pair of processes (p, q):

    - {b no loss}: if p and q are correct and p sends m, q eventually
      delivers m (retransmission until acknowledged);
    - {b no duplication}: each message is delivered at most once;
    - {b FIFO}: messages from p are delivered at q in sending order.

    This is the abstraction the paper implements over TCP [15]; here it runs
    over the lossy, reordering simulated transport.

    The channel also implements the paper's {e output-triggered suspicion}
    hook (Section 3.3.2): a message that stays unacknowledged longer than
    [stuck_after] triggers [on_stuck], which the monitoring component may
    turn into an exclusion; {!forget} then releases the output buffer. *)

type t

val create :
  Gc_kernel.Process.t ->
  ?epoch:int ->
  ?rto:float ->
  ?stuck_after:float ->
  ?max_burst:int ->
  unit ->
  t
(** [epoch] (default 0) is this process's boot incarnation; pass a value
    strictly greater than any previous boot's after a crash-restart.  It
    scopes the channel's generation numbers (streams open at
    [epoch lsl 20]) and rides every acknowledgement, which is how both
    directions of a stream survive a peer restart: receivers reset their
    incoming state on the higher generation, and a sender that sees the
    acked epoch jump reopens the stream — unacked messages are renumbered
    into a fresh generation and resent, instead of being acked into the
    void against the dead incarnation's delivery cursor.

    [rto] is the retransmission period (default 50 ms); [stuck_after] the
    output-buffer age that triggers the stuck callback (default 10_000 ms —
    "long timeout values", as the paper prescribes for output-triggered
    suspicion).

    Retransmission is per packet: a packet is resent only once it has been
    unacknowledged for a full [rto] since its last transmission, with
    per-packet exponential backoff (rto, 2rto, 4rto, capped at 8rto), and at
    most [max_burst] packets (default 64) are resent per destination per
    tick — a large backlog decays instead of storming the network every
    [rto]. *)

val send : t -> ?size:int -> dst:int -> Gc_net.Payload.t -> unit
(** Enqueue [payload] for reliable FIFO delivery at [dst].  Sending to
    yourself delivers locally (via the event queue, not synchronously). *)

val drain_loopback : t -> unit
(** Deliver any self-sends still waiting on their zero-delay event-queue
    hop, synchronously.  Orderly teardown calls this between flushing the
    ordering layers' batchers and crashing the process: a broadcast routes
    through the sender's own channel first, and a crash in the same
    instant would otherwise drop it on the self-hop before any peer saw
    it.  A no-op when nothing is queued. *)

val on_deliver : t -> (src:int -> Gc_net.Payload.t -> unit) -> unit
(** Subscribe to delivered payloads.  All subscribers see every delivery. *)

val set_on_stuck : t -> (dst:int -> age:float -> unit) -> unit
(** Install the output-triggered suspicion callback.  It fires at most once
    per destination per stuck episode (rearmed by {!forget} or by progress). *)

val forget : t -> int -> unit
(** Drop all undelivered output buffered for the given destination and stop
    retransmitting to it — called after the destination has been excluded
    from the membership, when the obligation to deliver lapses. *)

val unacked : t -> dst:int -> int
(** Number of messages buffered for [dst] awaiting acknowledgement. *)

val sent_count : t -> int
(** Payload messages accepted by {!send} so far (excludes retransmissions and
    acks; for accounting). *)
