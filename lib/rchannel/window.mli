(** Sequence-indexed ring buffer: the reliable channel's retransmission
    window.

    The window holds the contiguous range of unacknowledged entries
    [\[base, next)].  Entries are assigned consecutive sequence numbers by
    {!push}; a cumulative acknowledgement releases a prefix with
    {!advance_to}.  All operations are O(1) (amortised over the occasional
    capacity doubling), replacing the O(length) list append the channel
    used to pay per send.

    The buffer is a plain array indexed by [seq mod capacity] (capacity is
    kept a power of two), so long-lived connections wrap around the array
    indefinitely without re-allocation as long as the in-flight window
    fits. *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t
(** A fresh window with [base = next = 0].  [initial_capacity] (default 16)
    is rounded up to a power of two. *)

val push : 'a t -> 'a -> int
(** Append an entry at the tail and return its assigned sequence number
    ([next] before the call).  Doubles the backing array when full. *)

val base : 'a t -> int
(** Lowest live (unacknowledged) sequence number. *)

val next : 'a t -> int
(** The sequence number the next {!push} will assign. *)

val length : 'a t -> int
(** Number of live entries, [next - base]. *)

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a option
(** Entry with the given sequence number; [None] outside [\[base, next)]. *)

val peek_oldest : 'a t -> 'a option
(** The entry at [base], if any. *)

val advance_to : 'a t -> int -> int
(** [advance_to w cum] releases every entry with [seq <= cum] (a cumulative
    acknowledgement) and returns how many were released.  Acks below [base]
    or an empty window are no-ops returning 0. *)

val reset : 'a t -> unit
(** Drop every entry and restart numbering at [base = next = 0] — the
    channel's generation reset ({!Reliable_channel.forget}).  Keeps the
    backing array. *)

val iter_while : 'a t -> (int -> 'a -> bool) -> unit
(** Visit live entries oldest-first, stopping early when the callback
    returns [false]. *)

val to_list : 'a t -> (int * 'a) list
(** Live [(seq, entry)] pairs, oldest first (tests and introspection). *)
