module Process = Gc_kernel.Process
module Engine = Gc_sim.Engine
module Sorted = Gc_sim.Sorted

(* [gen] is the connection generation: [forget] starts a new generation, so
   that the receiver does not wait forever for sequence numbers whose
   messages were dropped with the old output buffer (the moral equivalent of
   a TCP reset). *)
type Gc_net.Payload.t +=
  | Rc_data of { gen : int; seq : int; inner : Gc_net.Payload.t; size : int }
  | Rc_ack of { gen : int; cum : int; repoch : int }
        (* [repoch]: the receiver's boot epoch.  A jump tells the sender its
           peer restarted and lost the incoming stream state, so the acked
           prefix must not be trusted and the unacked suffix needs a fresh
           generation (see [renumber]). *)

let () =
  Gc_net.Payload.register_printer (function
    | Rc_data { gen; seq; inner; _ } ->
        Some
          (Printf.sprintf "rc.data#%d.%d(%s)" gen seq
             (Gc_net.Payload.to_string inner))
    | Rc_ack { gen; cum; _ } -> Some (Printf.sprintf "rc.ack#%d<=%d" gen cum)
    | _ -> None)

let () =
  let module W = Gc_net.Wire in
  Gc_net.Payload.register_codec ~tag:"rc"
    ~encode:(fun enc w p ->
      match p with
      | Rc_data { gen; seq; inner; size } ->
          W.u8 w 0;
          W.varint w gen;
          W.varint w seq;
          W.varint w size;
          enc w inner;
          true
      | Rc_ack { gen; cum; repoch } ->
          W.u8 w 1;
          W.varint w gen;
          W.varint w cum;
          W.varint w repoch;
          true
      | _ -> false)
    ~decode:(fun dec r ->
      match W.read_u8 r with
      | 0 ->
          let gen = W.read_varint r in
          let seq = W.read_varint r in
          let size = W.read_varint r in
          let inner = dec r in
          Rc_data { gen; seq; inner; size }
      | 1 ->
          let gen = W.read_varint r in
          let cum = W.read_varint r in
          let repoch = W.read_varint r in
          Rc_ack { gen; cum; repoch }
      | k -> Gc_net.Payload.malformed (Printf.sprintf "rc constructor %d" k))

type pending = {
  inner : Gc_net.Payload.t;
  size : int;
  since : float; (* first transmission time *)
  mutable last_tx : float; (* most recent (re)transmission *)
  mutable tries : int; (* retransmissions so far: the backoff exponent *)
}

type outgoing = {
  mutable gen : int;
  window : pending Window.t; (* unacked, seq-indexed; seqs assigned by push *)
  mutable stuck_reported : bool;
  mutable peer_epoch : int; (* last repoch acked by this dst; -1 = unknown *)
}

type incoming = {
  mutable gen : int;
  mutable expected : int; (* next in-order seq to deliver *)
  buffer : (int, Gc_net.Payload.t) Hashtbl.t; (* out-of-order arrivals *)
}

type t = {
  proc : Process.t;
  epoch : int; (* this process's boot epoch; scopes generation numbers *)
  rto : float;
  stuck_after : float;
  max_burst : int; (* retransmissions per destination per tick *)
  out : (int, outgoing) Hashtbl.t;
  inc : (int, incoming) Hashtbl.t;
  mutable subscribers : (src:int -> Gc_net.Payload.t -> unit) list;
  mutable on_stuck : (dst:int -> age:float -> unit) option;
  mutable accepted : int;
  loopback : Gc_net.Payload.t Queue.t; (* self-sends awaiting their 0-delay hop *)
}

(* Retransmission intervals back off per packet: rto, 2*rto, 4*rto, then
   capped at 8*rto, so a destination that stays silent costs a bounded,
   decaying stream instead of a full-window storm every tick. *)
let backoff_cap = 3

(* Generations are scoped by the sender's boot epoch: a process that
   crashed and restarted opens its streams at [epoch lsl gen_bits], which
   is strictly above anything its previous incarnation used, so receivers
   take the reset branch instead of silently acking (and so losing) the
   restarted sender's fresh seq-0 stream against their stale [expected].
   [forget] and [renumber] bump within the epoch's block; 2^20 bumps per
   boot is unreachable. *)
let gen_bits = 20

let retx_interval t p = t.rto *. float_of_int (1 lsl min p.tries backoff_cap)

let note_window t (o : outgoing) =
  let len = float_of_int (Window.length o.window) in
  Process.set_gauge t.proc "rchannel.window_occupancy" len;
  if len > Gc_obs.Metrics.gauge (Process.metrics t.proc) "rchannel.window_peak"
  then Process.set_gauge t.proc "rchannel.window_peak" len

let outgoing_for t dst =
  match Hashtbl.find_opt t.out dst with
  | Some o -> o
  | None ->
      let o =
        {
          gen = t.epoch lsl gen_bits;
          window = Window.create ();
          stuck_reported = false;
          peer_epoch = -1;
        }
      in
      Hashtbl.replace t.out dst o;
      o

let incoming_for t src =
  match Hashtbl.find_opt t.inc src with
  | Some i -> i
  | None ->
      let i = { gen = 0; expected = 0; buffer = Hashtbl.create 8 } in
      Hashtbl.replace t.inc src i;
      i

let deliver t ~src inner =
  List.iter (fun f -> f ~src inner) (List.rev t.subscribers)

let handle_data t ~src ~gen ~seq ~inner =
  let i = incoming_for t src in
  if gen > i.gen then begin
    (* The sender reset the stream: earlier sequence numbers are gone. *)
    i.gen <- gen;
    i.expected <- 0;
    Hashtbl.reset i.buffer
  end;
  if gen < i.gen then
    (* Stale-generation retransmission.  Acking it with the *current* gen
       would manufacture acknowledgements for sequence numbers of the new
       stream the old-gen copy says nothing about; drop it silently. *)
    Process.incr t.proc "rchannel.stale_gen_ignored"
  else begin
    if seq >= i.expected && not (Hashtbl.mem i.buffer seq) then
      Hashtbl.replace i.buffer seq inner;
    (* Flush the in-order prefix. *)
    let rec flush () =
      match Hashtbl.find_opt i.buffer i.expected with
      | Some payload ->
          Hashtbl.remove i.buffer i.expected;
          let s = i.expected in
          i.expected <- s + 1;
          if Process.traced t.proc then
            Process.event t.proc ~component:"rchannel" ~kind:Gc_obs.Event.Deliver
              ~msg:(Printf.sprintf "rc:%d.%d.%d" src i.gen s)
              ~attrs:
                [
                  ("src", string_of_int src);
                  ("gen", string_of_int i.gen);
                  ("seq", string_of_int s);
                ]
              ();
          deliver t ~src payload;
          flush ()
      | None -> ()
    in
    flush ();
    (* Cumulative ack: everything below [expected] has been delivered. *)
    Process.send t.proc ~size:16 ~dst:src
      (Rc_ack { gen = i.gen; cum = i.expected - 1; repoch = t.epoch })
  end

(* Paced resend toward one destination: at most [max_burst] due packets
   per call, due-ness governed by each packet's exponential backoff.
   Shared by the periodic retransmit tick and the post-renumber catch-up
   so every resend path honours the same pacing. *)
let resend_due t dst (o : outgoing) ~now =
  let sent = ref 0 in
  Window.iter_while o.window (fun seq p ->
      if !sent >= t.max_burst then false
      else begin
        if now -. p.last_tx >= retx_interval t p then begin
          p.last_tx <- now;
          p.tries <- p.tries + 1;
          incr sent;
          Process.incr t.proc "rchannel.retransmissions";
          Process.send t.proc ~size:p.size ~dst
            (Rc_data { gen = o.gen; seq; inner = p.inner; size = p.size })
        end;
        true
      end);
  if !sent > 0 then
    Process.observe t.proc "rchannel.retransmit_burst" (float_of_int !sent)

(* The destination restarted: its incoming state for this stream — the
   delivered prefix, the reorder buffer — is gone, so the acknowledged
   prefix is only as durable as whatever the layers above persisted, and
   the unacked suffix would be silently swallowed by the ghost of the old
   stream (acked against a stale [expected], never delivered).  Reopen the
   stream: new generation, unacked entries renumbered from seq 0, all
   marked immediately due, but resent under the regular [max_burst]
   pacing — one inline burst now, the rest via the rto tick — so a large
   window does not greet the freshly rebooted peer with a synchronous
   packet storm.  Entries keep their [since] so stuck detection still
   measures the real age of the obligation. *)
let renumber t dst (o : outgoing) =
  let pending = List.map snd (Window.to_list o.window) in
  Window.reset o.window;
  o.gen <- o.gen + 1;
  o.stuck_reported <- false;
  Process.incr t.proc "rchannel.stream_resets";
  Process.emit t.proc ~component:"rchannel" ~event:"stream_reset"
    ~attrs:[ ("dst", string_of_int dst); ("gen", string_of_int o.gen) ]
    ();
  let now = Process.now t.proc in
  List.iter
    (fun p ->
      (* Backdating by 2*rto (not exactly rto) keeps the due test robust
         to float rounding. *)
      p.last_tx <- now -. (2.0 *. t.rto);
      p.tries <- 0;
      ignore (Window.push o.window p))
    pending;
  resend_due t dst o ~now;
  note_window t o

let handle_ack t ~src ~gen ~cum ~repoch =
  match Hashtbl.find_opt t.out src with
  | None -> ()
  | Some o ->
      (* A repoch jump outranks the cumulative ack: the new incarnation's
         [expected] says nothing about what the old one delivered.  The
         epoch is monotonic per boot, so duplicated or reordered old acks
         (carrying the old epoch) can never fake a restart. *)
      if o.peer_epoch >= 0 && repoch > o.peer_epoch then begin
        o.peer_epoch <- repoch;
        renumber t src o
      end
      else begin
        if repoch > o.peer_epoch then o.peer_epoch <- repoch;
        if gen = o.gen then begin
          let released = Window.advance_to o.window cum in
          if released > 0 then begin
            o.stuck_reported <- false;
            note_window t o
          end
        end
      end

let retransmit t =
  let now = Process.now t.proc in
  (* Key-sorted so retransmissions hit the network in the same dst order on
     every replay. *)
  Sorted.iter
    (fun dst (o : outgoing) ->
      (* Resend only packets whose per-packet backoff interval has elapsed
         since their last transmission, at most [max_burst] per tick; the
         scan still walks the ineligible tail but sends nothing for it. *)
      resend_due t dst o ~now;
      match (Window.peek_oldest o.window, t.on_stuck) with
      | Some oldest, Some f when not o.stuck_reported ->
          let age = now -. oldest.since in
          if age > t.stuck_after then begin
            o.stuck_reported <- true;
            Process.incr t.proc "rchannel.stuck_detections";
            Process.emit t.proc ~component:"rchannel" ~event:"stuck"
              ~attrs:
                [ ("dst", string_of_int dst); ("age_ms", Printf.sprintf "%.0f" age) ]
              ();
            f ~dst ~age
          end
      | _ -> ())
    t.out

let create proc ?(epoch = 0) ?(rto = 50.0) ?(stuck_after = 10_000.0)
    ?(max_burst = 64) () =
  let t =
    {
      proc;
      epoch;
      rto;
      stuck_after;
      max_burst;
      out = Hashtbl.create 16;
      inc = Hashtbl.create 16;
      subscribers = [];
      on_stuck = None;
      accepted = 0;
      loopback = Queue.create ();
    }
  in
  (* Pre-register the headline counters so merged reports carry them even
     when nothing fired (absent and zero must read the same). *)
  Process.incr ~by:0 proc "rchannel.sends";
  Process.incr ~by:0 proc "rchannel.retransmissions";
  Process.incr ~by:0 proc "rchannel.stream_resets";
  Process.on_receive proc (fun ~src payload ->
      match payload with
      | Rc_data { gen; seq; inner; _ } -> handle_data t ~src ~gen ~seq ~inner
      | Rc_ack { gen; cum; repoch } -> handle_ack t ~src ~gen ~cum ~repoch
      | _ -> ());
  ignore (Process.every proc ~period:rto (fun () -> retransmit t));
  t

let send t ?(size = 64) ~dst payload =
  if Process.alive t.proc then begin
    t.accepted <- t.accepted + 1;
    Process.incr t.proc "rchannel.sends";
    if dst = Process.id t.proc then begin
      (* Local loopback: deliver through the event queue so that a broadcast
         to a set including self behaves uniformly (no synchronous
         reentrancy).  The payload waits in [loopback] rather than in the
         timer closure so an orderly shutdown can drain it synchronously —
         an alive-guarded timer is silently skipped once the process
         crashes, and a broadcast flushed in the same instant as the crash
         would otherwise die on this self-hop before ever being relayed. *)
      Queue.push payload t.loopback;
      ignore
        (Process.timer t.proc ~delay:0.0 (fun () ->
             match Queue.take_opt t.loopback with
             | Some p -> deliver t ~src:dst p
             | None -> ()))
    end
    else begin
      let o = outgoing_for t dst in
      let now = Process.now t.proc in
      let seq =
        Window.push o.window
          { inner = payload; size; since = now; last_tx = now; tries = 0 }
      in
      note_window t o;
      if Process.traced t.proc then
        Process.event t.proc ~component:"rchannel" ~kind:Gc_obs.Event.Send
          ~msg:(Printf.sprintf "rc:%d.%d.%d" (Process.id t.proc) o.gen seq)
          ~attrs:[ ("dst", string_of_int dst) ]
          ();
      Process.send t.proc ~size ~dst
        (Rc_data { gen = o.gen; seq; inner = payload; size })
    end
  end

(* Deliver any self-sends still waiting on their zero-delay hop, now.
   Orderly teardown calls this after flushing the ordering layers'
   batchers: a broadcast routes through the sender's own channel first
   (see [send]), and crashing before that hop lands would silently drop
   the message before it was ever relayed to a peer.  The timers armed for
   the drained payloads find the queue empty and no-op. *)
let drain_loopback t =
  let me = Process.id t.proc in
  let rec go () =
    match Queue.take_opt t.loopback with
    | Some p ->
        deliver t ~src:me p;
        go ()
    | None -> ()
  in
  go ()

let on_deliver t f = t.subscribers <- f :: t.subscribers
let set_on_stuck t f = t.on_stuck <- Some f

let forget t dst =
  match Hashtbl.find_opt t.out dst with
  | None -> ()
  | Some o ->
      (* Drop the buffered output and reset the stream: the next message to
         [dst] starts a fresh generation, so the receiver does not block on
         the sequence numbers we just discarded. *)
      Window.reset o.window;
      o.stuck_reported <- false;
      o.gen <- o.gen + 1

let unacked t ~dst =
  match Hashtbl.find_opt t.out dst with
  | None -> 0
  | Some o -> Window.length o.window

let sent_count t = t.accepted
