(* Seq-indexed ring buffer backing the retransmission window.  The live
   range [base, next) is contiguous (cumulative acks release prefixes
   only), so the representation is just an array indexed seq-mod-capacity
   plus the two endpoints.  Slots outside the live range keep [None] so
   released entries do not pin payloads against the GC. *)

type 'a t = {
  mutable slots : 'a option array; (* capacity is a power of two *)
  mutable base : int;
  mutable next : int;
}

let rec pow2_at_least c n = if c >= n then c else pow2_at_least (c * 2) n

let create ?(initial_capacity = 16) () =
  let cap = pow2_at_least 1 (max 1 initial_capacity) in
  { slots = Array.make cap None; base = 0; next = 0 }

let base w = w.base
let next w = w.next
let length w = w.next - w.base
let is_empty w = w.next = w.base
let index w seq = seq land (Array.length w.slots - 1)

let grow w =
  let cap = Array.length w.slots in
  let slots = Array.make (cap * 2) None in
  for seq = w.base to w.next - 1 do
    slots.(seq land ((cap * 2) - 1)) <- w.slots.(index w seq)
  done;
  w.slots <- slots

let push w v =
  if length w = Array.length w.slots then grow w;
  let seq = w.next in
  w.slots.(index w seq) <- Some v;
  w.next <- seq + 1;
  seq

let get w seq = if seq >= w.base && seq < w.next then w.slots.(index w seq) else None
let peek_oldest w = get w w.base

let advance_to w cum =
  let upto = min cum (w.next - 1) in
  let released = upto - w.base + 1 in
  if released <= 0 then 0
  else begin
    for seq = w.base to upto do
      w.slots.(index w seq) <- None
    done;
    w.base <- upto + 1;
    released
  end

let reset w =
  for seq = w.base to w.next - 1 do
    w.slots.(index w seq) <- None
  done;
  w.base <- 0;
  w.next <- 0

let iter_while w f =
  let rec go seq =
    if seq < w.next then
      match w.slots.(index w seq) with
      | Some v -> if f seq v then go (seq + 1)
      | None -> ()
  in
  go w.base

let to_list w =
  let rec go seq acc =
    if seq < w.base then acc
    else
      match w.slots.(index w seq) with
      | Some v -> go (seq - 1) ((seq, v) :: acc)
      | None -> acc
  in
  go (w.next - 1) []
