(* The lint pass itself, exercised against known-bad fixtures: every rule
   must fire at exactly its planted lines, the sanctioned/clean shapes must
   stay silent, waivers must silence only what they name (and malformed
   waivers must surface as W1), and the architecture checker must reject a
   deliberately non-conforming dune stanza.  Finally, the real repo must
   lint clean — the zero-findings baseline is a regression test. *)

module Lint = Gc_lint.Lint
module Arch = Gc_lint.Arch
module Waiver = Gc_lint.Waiver
module D = Gc_lint.Diagnostic

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Fixtures are linted under a virtual lib/rchannel/ path so the
   protocol-only rules (D2-D4, E1) apply. *)
let lint_fixture name =
  let source = read_file (Filename.concat "lint_fixtures" name) in
  Lint.lint_file_source ~path:("lib/rchannel/" ^ name) source

let rule_lines (ds : D.t list) =
  List.map (fun d -> (d.D.rule, d.D.line)) ds

let pairs = Alcotest.(list (pair string int))

let check_findings name expected =
  let unwaived, _, _ = lint_fixture name in
  Alcotest.check pairs name expected (rule_lines unwaived)

let test_d1 () =
  check_findings "fixture_d1.ml" [ ("D1", 6); ("D1", 7); ("D1", 8) ]

let test_d2 () = check_findings "fixture_d2.ml" [ ("D2", 6); ("D2", 7) ]
let test_d3 () = check_findings "fixture_d3.ml" [ ("D3", 8); ("D3", 11) ]

let test_d4 () =
  check_findings "fixture_d4.ml" [ ("D4", 5); ("D4", 7); ("D4", 9) ]

let test_e1 () =
  check_findings "fixture_e1.ml" [ ("E1", 9); ("E1", 12); ("E1", 15) ]

let test_clean () = check_findings "fixture_clean.ml" []

(* Outside a protocol directory the protocol-only rules stay quiet, but D1
   still applies everywhere. *)
let test_non_protocol () =
  let d2 = read_file "lint_fixtures/fixture_d2.ml" in
  let unwaived, _, _ = Lint.lint_file_source ~path:"lib/obs/fixture.ml" d2 in
  Alcotest.check pairs "D2 is protocol-only" [] (rule_lines unwaived);
  let d1 = read_file "lint_fixtures/fixture_d1.ml" in
  let unwaived, _, _ = Lint.lint_file_source ~path:"lib/obs/fixture.ml" d1 in
  Alcotest.check pairs "D1 applies everywhere"
    [ ("D1", 6); ("D1", 7); ("D1", 8) ]
    (rule_lines unwaived);
  (* ... except in the one module allowed to own randomness. *)
  let unwaived, _, _ = Lint.lint_file_source ~path:"lib/sim/rng.ml" d1 in
  Alcotest.check pairs "lib/sim/rng.ml is D1-exempt" [] (rule_lines unwaived)

let test_waivers () =
  let unwaived, waived, waivers = lint_fixture "fixture_waiver.ml" in
  Alcotest.check pairs "unwaived"
    [ ("D3", 12); ("W1", 14); ("D3", 15); ("D2", 18) ]
    (rule_lines unwaived);
  Alcotest.check pairs "waived"
    [ ("D3", 9) ]
    (rule_lines (List.map fst waived));
  Alcotest.(check int) "waiver count (valid ones)" 2 (List.length waivers);
  match List.find_opt (fun w -> List.mem "D3" w.Waiver.rules) waivers with
  | Some w ->
      Alcotest.(check string)
        "reason survives" "commutative sum, order cannot matter"
        w.Waiver.reason
  | None -> Alcotest.fail "D3 waiver not parsed"

let test_waiver_parse () =
  let parse text = Waiver.parse ~file:"f.ml" ~start_line:1 ~end_line:1 text in
  (match parse " gcs-lint: allow D3, D4 \xe2\x80\x94 because reasons " with
  | Ok (Some w) ->
      Alcotest.(check (list string)) "rules" [ "D3"; "D4" ] w.Waiver.rules;
      Alcotest.(check string) "reason" "because reasons" w.Waiver.reason
  | _ -> Alcotest.fail "em-dash waiver should parse");
  (match parse "gcs-lint: allow D9 -- no such rule" with
  | Error d -> Alcotest.(check string) "W1" "W1" d.D.rule
  | _ -> Alcotest.fail "unknown rule must be W1");
  (match parse "gcs-lint: allow D3" with
  | Error d -> Alcotest.(check string) "W1" "W1" d.D.rule
  | _ -> Alcotest.fail "missing reason must be W1");
  match parse "an ordinary comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "ordinary comments are not waivers"

(* Waiver grammar edge cases, through the full file-lint path: comments
   spanning several lines, CRLF sources, a waiver ending the file, and an
   unknown rule surfacing as W1 from a scan (not just from [parse]). *)
let test_waiver_multiline () =
  let src =
    "let f h n =\n\
    \  (* gcs-lint: allow D3 —\n\
    \     commutative count over the\n\
    \     whole table *)\n\
    \  Hashtbl.iter (fun _ _ -> incr n) h\n"
  in
  let unwaived, waived, waivers =
    Lint.lint_file_source ~path:"lib/rchannel/x.ml" src
  in
  Alcotest.check pairs "nothing unwaived" [] (rule_lines unwaived);
  Alcotest.check pairs "D3 on the line after the comment is waived"
    [ ("D3", 5) ]
    (rule_lines (List.map fst waived));
  match waivers with
  | [ w ] ->
      Alcotest.(check string) "line breaks collapse in the reason"
        "commutative count over the whole table" w.Waiver.reason
  | ws -> Alcotest.failf "expected 1 waiver, got %d" (List.length ws)

let test_waiver_crlf () =
  let src =
    String.concat "\r\n"
      [
        "let f h n =";
        "  (* gcs-lint: allow D3 — crlf sources must parse too *)";
        "  Hashtbl.iter (fun _ _ -> incr n) h";
        "";
      ]
  in
  let unwaived, waived, _ =
    Lint.lint_file_source ~path:"lib/rchannel/x.ml" src
  in
  Alcotest.check pairs "nothing unwaived" [] (rule_lines unwaived);
  Alcotest.check pairs "D3 waived under CRLF" [ ("D3", 3) ]
    (rule_lines (List.map fst waived))

let test_waiver_last_line () =
  (* same-line waiver, terminal comment, no trailing newline *)
  let src =
    "let g h = Hashtbl.iter ignore h (* gcs-lint: allow D3 — same line *)"
  in
  let unwaived, waived, _ =
    Lint.lint_file_source ~path:"lib/rchannel/x.ml" src
  in
  Alcotest.check pairs "nothing unwaived" [] (rule_lines unwaived);
  Alcotest.check pairs "same-line finding waived" [ ("D3", 1) ]
    (rule_lines (List.map fst waived))

let test_waiver_unknown_rule_scan () =
  let src = "(* gcs-lint: allow Z9 -- no such rule *)\nlet x = 1\n" in
  let unwaived, waived, waivers =
    Lint.lint_file_source ~path:"lib/rchannel/x.ml" src
  in
  Alcotest.check pairs "malformed waiver is a W1 finding" [ ("W1", 1) ]
    (rule_lines unwaived);
  Alcotest.(check int) "it waives nothing" 0 (List.length waived);
  Alcotest.(check int) "and is not a waiver" 0 (List.length waivers)

let test_arch_bad_dune () =
  let source = read_file "lint_fixtures/bad_dune.sexp" in
  let libs = Arch.parse_dune ~dune_file:"lib/consensus/dune" source in
  Alcotest.(check int) "two stanzas parsed" 2 (List.length libs);
  let findings = List.concat_map Arch.check_declared libs in
  let rules = List.map (fun d -> d.D.rule) findings in
  Alcotest.(check (list string)) "all L1" [ "L1"; "L1"; "L1" ] rules;
  let messages = String.concat "\n" (List.map (fun d -> d.D.message) findings) in
  let has needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length messages
      && (String.sub messages i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "legacy edge called out" true
    (has "competing stack gc_totem");
  Alcotest.(check bool) "foreign external rejected" true (has "lwt");
  Alcotest.(check bool) "unknown library rejected" true (has "gc_mystery")

let test_arch_usage () =
  let lib =
    {
      Arch.name = "gc_rbcast";
      name_line = 2;
      libraries =
        [ ("gc_obs", 3); ("gc_sim", 3); ("gc_net", 3); ("gc_kernel", 3);
          ("gc_rchannel", 3); ("fmt", 3) ];
      dune_file = "lib/rbcast/dune";
    }
  in
  let check roots = Arch.check_usage ~lib ~file:"lib/rbcast/x.ml" ~roots in
  Alcotest.(check int) "declared+allowed is silent" 0
    (List.length (check [ "Gc_rchannel"; "Gc_obs"; "Fmt"; "Queue" ]));
  (match check [ "Gc_consensus" ] with
  | [ d ] -> Alcotest.(check string) "L2" "L2" d.D.rule
  | ds -> Alcotest.failf "expected 1 L2, got %d" (List.length ds));
  match check [ "Gc_totem" ] with
  | [ d ] ->
      Alcotest.(check bool) "legacy message" true
        (d.D.message = "AB-GB module references competing stack Gc_totem \
                        (gc_totem)")
  | ds -> Alcotest.failf "expected 1 legacy L2, got %d" (List.length ds)

(* ---------- typed rules (W2/W3, B1/B2, E2) against planted fixtures ----------

   The lint_fixture_typed library under lint_fixtures/typed/ compiles
   known-bad shapes (it is linked but never run); each test loads just the
   .cmt files it needs and asserts the planted findings — and only those —
   fire. *)

module Typed = Gc_lint.Typed_loader

let typed_units names =
  let dir = "lint_fixtures/typed/.lint_fixture_typed.objs/byte" in
  let units =
    Typed.load_files
      (List.map
         (fun n -> Filename.concat dir ("lint_fixture_typed__" ^ n ^ ".cmt"))
         names)
  in
  Alcotest.(check int) "fixture cmts load" (List.length names)
    (List.length units);
  units

let typed_findings ~rule names =
  List.filter
    (fun d -> d.D.rule = rule)
    (Lint.lint_typed_units (typed_units names))

let test_typed_w2 () =
  (* duplicate tag (repo-wide pass, line 29), then the per-family pass:
     duplicate discriminator at Fw_b's arm (17), dead decode case (25) *)
  Alcotest.check pairs "planted W2 findings"
    [ ("W2", 29); ("W2", 17); ("W2", 25) ]
    (rule_lines (typed_findings ~rule:"W2" [ "Fixture_w2" ]));
  Alcotest.check pairs "no W3 leaks from the W2 fixture" []
    (rule_lines (typed_findings ~rule:"W3" [ "Fixture_w2" ]))

let test_typed_w3 () =
  Alcotest.check pairs "planted W3 findings"
    [ ("W3", 5); ("W3", 5) ]
    (rule_lines (typed_findings ~rule:"W3" [ "Fixture_w3" ]));
  Alcotest.check pairs "no W2 leaks from the W3 fixture" []
    (rule_lines (typed_findings ~rule:"W2" [ "Fixture_w3" ]))

let test_typed_b1 () =
  match typed_findings ~rule:"B1" [ "Fixture_b1" ] with
  | [ d ] ->
      Alcotest.(check int) "flagged at the sleeping call" 7 d.D.line;
      let contains needle hay =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length hay
          && (String.sub hay i n = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "chain names the blocker" true
        (contains "Unix.sleep" d.D.message)
  | ds -> Alcotest.failf "expected exactly 1 B1, got %d" (List.length ds)

let test_typed_b2 () =
  match typed_findings ~rule:"B2" [ "Fixture_b2" ] with
  | [ d ] ->
      Alcotest.(check int) "the unprotected raise, not the try-caught one" 8
        d.D.line
  | ds -> Alcotest.failf "expected exactly 1 B2, got %d" (List.length ds)

let test_typed_e2 () =
  Alcotest.check pairs "unknown name and kind mismatch"
    [ ("E2", 8); ("E2", 9) ]
    (rule_lines (typed_findings ~rule:"E2" [ "Fixture_e2" ]))

(* The shipped repo lints clean: the zero-findings baseline is itself a
   regression test.  (The test binary runs in _build/default/test, so the
   repo root — with lib/ under it — is one level up.) *)
let test_repo_clean () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let r = Lint.run ~root:".." () in
    Alcotest.(check bool) "files linted > 40" true (r.Lint.files_seen > 40);
    Alcotest.check pairs "repo is finding-free" []
      (rule_lines r.Lint.findings);
    List.iter
      (fun (_, w) ->
        Alcotest.(check bool) "every waiver has a reason" true
          (String.length w.Waiver.reason > 0))
      r.Lint.waived
  end

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "D1 ambient nondeterminism" `Quick test_d1;
        Alcotest.test_case "D2 physical equality" `Quick test_d2;
        Alcotest.test_case "D3 unordered traversal" `Quick test_d3;
        Alcotest.test_case "D4 bare polymorphic compare" `Quick test_d4;
        Alcotest.test_case "E1 event discipline" `Quick test_e1;
        Alcotest.test_case "clean fixture stays clean" `Quick test_clean;
        Alcotest.test_case "protocol scoping" `Quick test_non_protocol;
        Alcotest.test_case "waivers cover what they name" `Quick test_waivers;
        Alcotest.test_case "waiver grammar" `Quick test_waiver_parse;
        Alcotest.test_case "multiline waiver" `Quick test_waiver_multiline;
        Alcotest.test_case "CRLF waiver" `Quick test_waiver_crlf;
        Alcotest.test_case "last-line waiver" `Quick test_waiver_last_line;
        Alcotest.test_case "unknown rule scans as W1" `Quick
          test_waiver_unknown_rule_scan;
        Alcotest.test_case "L1 bad dune stanza" `Quick test_arch_bad_dune;
        Alcotest.test_case "L2 module usage" `Quick test_arch_usage;
        Alcotest.test_case "W2 planted tag conflicts" `Quick test_typed_w2;
        Alcotest.test_case "W3 planted coverage gaps" `Quick test_typed_w3;
        Alcotest.test_case "B1 planted blocking call" `Quick test_typed_b1;
        Alcotest.test_case "B2 planted escaping raise" `Quick test_typed_b2;
        Alcotest.test_case "E2 planted catalog misses" `Quick test_typed_e2;
        Alcotest.test_case "repo lints clean" `Quick test_repo_clean;
      ] );
  ]
