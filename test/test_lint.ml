(* The lint pass itself, exercised against known-bad fixtures: every rule
   must fire at exactly its planted lines, the sanctioned/clean shapes must
   stay silent, waivers must silence only what they name (and malformed
   waivers must surface as W1), and the architecture checker must reject a
   deliberately non-conforming dune stanza.  Finally, the real repo must
   lint clean — the zero-findings baseline is a regression test. *)

module Lint = Gc_lint.Lint
module Arch = Gc_lint.Arch
module Waiver = Gc_lint.Waiver
module D = Gc_lint.Diagnostic

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Fixtures are linted under a virtual lib/rchannel/ path so the
   protocol-only rules (D2-D4, E1) apply. *)
let lint_fixture name =
  let source = read_file (Filename.concat "lint_fixtures" name) in
  Lint.lint_file_source ~path:("lib/rchannel/" ^ name) source

let rule_lines (ds : D.t list) =
  List.map (fun d -> (d.D.rule, d.D.line)) ds

let pairs = Alcotest.(list (pair string int))

let check_findings name expected =
  let unwaived, _, _ = lint_fixture name in
  Alcotest.check pairs name expected (rule_lines unwaived)

let test_d1 () =
  check_findings "fixture_d1.ml" [ ("D1", 6); ("D1", 7); ("D1", 8) ]

let test_d2 () = check_findings "fixture_d2.ml" [ ("D2", 6); ("D2", 7) ]
let test_d3 () = check_findings "fixture_d3.ml" [ ("D3", 8); ("D3", 11) ]

let test_d4 () =
  check_findings "fixture_d4.ml" [ ("D4", 5); ("D4", 7); ("D4", 9) ]

let test_e1 () =
  check_findings "fixture_e1.ml" [ ("E1", 9); ("E1", 12); ("E1", 15) ]

let test_clean () = check_findings "fixture_clean.ml" []

(* Outside a protocol directory the protocol-only rules stay quiet, but D1
   still applies everywhere. *)
let test_non_protocol () =
  let d2 = read_file "lint_fixtures/fixture_d2.ml" in
  let unwaived, _, _ = Lint.lint_file_source ~path:"lib/obs/fixture.ml" d2 in
  Alcotest.check pairs "D2 is protocol-only" [] (rule_lines unwaived);
  let d1 = read_file "lint_fixtures/fixture_d1.ml" in
  let unwaived, _, _ = Lint.lint_file_source ~path:"lib/obs/fixture.ml" d1 in
  Alcotest.check pairs "D1 applies everywhere"
    [ ("D1", 6); ("D1", 7); ("D1", 8) ]
    (rule_lines unwaived);
  (* ... except in the one module allowed to own randomness. *)
  let unwaived, _, _ = Lint.lint_file_source ~path:"lib/sim/rng.ml" d1 in
  Alcotest.check pairs "lib/sim/rng.ml is D1-exempt" [] (rule_lines unwaived)

let test_waivers () =
  let unwaived, waived, waivers = lint_fixture "fixture_waiver.ml" in
  Alcotest.check pairs "unwaived"
    [ ("D3", 12); ("W1", 14); ("D3", 15); ("D2", 18) ]
    (rule_lines unwaived);
  Alcotest.check pairs "waived"
    [ ("D3", 9) ]
    (rule_lines (List.map fst waived));
  Alcotest.(check int) "waiver count (valid ones)" 2 (List.length waivers);
  match List.find_opt (fun w -> List.mem "D3" w.Waiver.rules) waivers with
  | Some w ->
      Alcotest.(check string)
        "reason survives" "commutative sum, order cannot matter"
        w.Waiver.reason
  | None -> Alcotest.fail "D3 waiver not parsed"

let test_waiver_parse () =
  let parse text = Waiver.parse ~file:"f.ml" ~start_line:1 ~end_line:1 text in
  (match parse " gcs-lint: allow D3, D4 \xe2\x80\x94 because reasons " with
  | Ok (Some w) ->
      Alcotest.(check (list string)) "rules" [ "D3"; "D4" ] w.Waiver.rules;
      Alcotest.(check string) "reason" "because reasons" w.Waiver.reason
  | _ -> Alcotest.fail "em-dash waiver should parse");
  (match parse "gcs-lint: allow D9 -- no such rule" with
  | Error d -> Alcotest.(check string) "W1" "W1" d.D.rule
  | _ -> Alcotest.fail "unknown rule must be W1");
  (match parse "gcs-lint: allow D3" with
  | Error d -> Alcotest.(check string) "W1" "W1" d.D.rule
  | _ -> Alcotest.fail "missing reason must be W1");
  match parse "an ordinary comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "ordinary comments are not waivers"

let test_arch_bad_dune () =
  let source = read_file "lint_fixtures/bad_dune.sexp" in
  let libs = Arch.parse_dune ~dune_file:"lib/consensus/dune" source in
  Alcotest.(check int) "two stanzas parsed" 2 (List.length libs);
  let findings = List.concat_map Arch.check_declared libs in
  let rules = List.map (fun d -> d.D.rule) findings in
  Alcotest.(check (list string)) "all L1" [ "L1"; "L1"; "L1" ] rules;
  let messages = String.concat "\n" (List.map (fun d -> d.D.message) findings) in
  let has needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length messages
      && (String.sub messages i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "legacy edge called out" true
    (has "competing stack gc_totem");
  Alcotest.(check bool) "foreign external rejected" true (has "lwt");
  Alcotest.(check bool) "unknown library rejected" true (has "gc_mystery")

let test_arch_usage () =
  let lib =
    {
      Arch.name = "gc_rbcast";
      name_line = 2;
      libraries =
        [ ("gc_obs", 3); ("gc_sim", 3); ("gc_net", 3); ("gc_kernel", 3);
          ("gc_rchannel", 3); ("fmt", 3) ];
      dune_file = "lib/rbcast/dune";
    }
  in
  let check roots = Arch.check_usage ~lib ~file:"lib/rbcast/x.ml" ~roots in
  Alcotest.(check int) "declared+allowed is silent" 0
    (List.length (check [ "Gc_rchannel"; "Gc_obs"; "Fmt"; "Queue" ]));
  (match check [ "Gc_consensus" ] with
  | [ d ] -> Alcotest.(check string) "L2" "L2" d.D.rule
  | ds -> Alcotest.failf "expected 1 L2, got %d" (List.length ds));
  match check [ "Gc_totem" ] with
  | [ d ] ->
      Alcotest.(check bool) "legacy message" true
        (d.D.message = "AB-GB module references competing stack Gc_totem \
                        (gc_totem)")
  | ds -> Alcotest.failf "expected 1 legacy L2, got %d" (List.length ds)

(* The shipped repo lints clean: the zero-findings baseline is itself a
   regression test.  (The test binary runs in _build/default/test, so the
   repo root — with lib/ under it — is one level up.) *)
let test_repo_clean () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let r = Lint.run ~root:".." in
    Alcotest.(check bool) "files linted > 40" true (r.Lint.files_seen > 40);
    Alcotest.check pairs "repo is finding-free" []
      (rule_lines r.Lint.findings);
    List.iter
      (fun (_, w) ->
        Alcotest.(check bool) "every waiver has a reason" true
          (String.length w.Waiver.reason > 0))
      r.Lint.waived
  end

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "D1 ambient nondeterminism" `Quick test_d1;
        Alcotest.test_case "D2 physical equality" `Quick test_d2;
        Alcotest.test_case "D3 unordered traversal" `Quick test_d3;
        Alcotest.test_case "D4 bare polymorphic compare" `Quick test_d4;
        Alcotest.test_case "E1 event discipline" `Quick test_e1;
        Alcotest.test_case "clean fixture stays clean" `Quick test_clean;
        Alcotest.test_case "protocol scoping" `Quick test_non_protocol;
        Alcotest.test_case "waivers cover what they name" `Quick test_waivers;
        Alcotest.test_case "waiver grammar" `Quick test_waiver_parse;
        Alcotest.test_case "L1 bad dune stanza" `Quick test_arch_bad_dune;
        Alcotest.test_case "L2 module usage" `Quick test_arch_usage;
        Alcotest.test_case "repo lints clean" `Quick test_repo_clean;
      ] );
  ]
