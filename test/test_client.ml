(* Tests for the replication client: reply matching, timeout-driven retry
   rotation, redirects, latency accounting from first send. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module Process = Gc_kernel.Process
module Rc = Gc_rchannel.Reliable_channel
module Client = Gc_replication.Client
module Rpc = Gc_replication.Rpc
open Support

type Gc_net.Payload.t += Echo of int

(* A scriptable fake replica: a process + reliable channel whose behaviour
   per request is injected by the test. *)
let fake_replica net trace id behave =
  let proc = Process.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id in
  let rc = Rc.create proc () in
  Rc.on_deliver rc (fun ~src payload ->
      match payload with
      | Rpc.Req { cid; rid; cmd } -> behave ~rc ~src ~cid ~rid ~cmd
      | _ -> ());
  (proc, rc)

let make n_replicas =
  let engine = Engine.create ~seed:5L () in
  let trace = Trace.create () in
  let net =
    Netsim.create engine ~trace ~delay:(Gc_net.Delay.Constant 2.0)
      ~n:(n_replicas + 1) ()
  in
  (engine, trace, net)

let test_simple_reply_and_latency () =
  let engine, trace, net = make 1 in
  let _ =
    fake_replica net trace 0 (fun ~rc ~src:_ ~cid ~rid ~cmd ->
        match cmd with
        | Echo k -> Rc.send rc ~dst:cid (Rpc.Rep { rid; result = Echo (k * 2) })
        | _ -> ())
  in
  let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:1 ~replicas:[ 0 ] () in
  let got = ref None in
  Client.request client ~cmd:(Echo 21) ~on_reply:(fun r ~latency ->
      got := Some (r, latency));
  Engine.run ~until:5_000.0 engine;
  (match !got with
  | Some (Echo 42, latency) ->
      (* Constant 2 ms links: request + reply ≈ 4 ms. *)
      check_bool "latency ~4ms" true (latency > 3.0 && latency < 8.0)
  | _ -> Alcotest.fail "bad reply");
  check_int "no retries" 0 (Client.retries client);
  check_int "none outstanding" 0 (Client.outstanding client)

let test_retry_rotates_to_next_replica () =
  let engine, trace, net = make 2 in
  (* Replica 0 is mute; replica 1 answers. *)
  let _ = fake_replica net trace 0 (fun ~rc:_ ~src:_ ~cid:_ ~rid:_ ~cmd:_ -> ()) in
  let _ =
    fake_replica net trace 1 (fun ~rc ~src:_ ~cid ~rid ~cmd ->
        match cmd with
        | Echo k -> Rc.send rc ~dst:cid (Rpc.Rep { rid; result = Echo k })
        | _ -> ())
  in
  let client =
    Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:2 ~replicas:[ 0; 1 ] ~timeout:100.0 ()
  in
  let got = ref None in
  Client.request client ~cmd:(Echo 9) ~on_reply:(fun r ~latency ->
      got := Some (r, latency));
  Engine.run ~until:5_000.0 engine;
  (match !got with
  | Some (Echo 9, latency) ->
      check_bool "latency includes the timeout" true (latency > 100.0)
  | _ -> Alcotest.fail "no reply");
  check_bool "retried at least once" true (Client.retries client >= 1)

let test_redirect_retargets () =
  let engine, trace, net = make 2 in
  (* Replica 0 redirects to 1; replica 1 answers. *)
  let _ =
    fake_replica net trace 0 (fun ~rc ~src:_ ~cid ~rid ~cmd:_ ->
        Rc.send rc ~dst:cid (Rpc.Redirect { rid; primary = 1 }))
  in
  let served_by_1 = ref 0 in
  let _ =
    fake_replica net trace 1 (fun ~rc ~src:_ ~cid ~rid ~cmd ->
        incr served_by_1;
        Rc.send rc ~dst:cid (Rpc.Rep { rid; result = cmd }))
  in
  let client =
    Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:2 ~replicas:[ 0; 1 ] ~timeout:1_000.0 ()
  in
  let got = ref 0 in
  Client.request client ~cmd:(Echo 1) ~on_reply:(fun _ ~latency ->
      ignore latency;
      incr got);
  Engine.run ~until:5_000.0 engine;
  check_int "one reply" 1 !got;
  check_int "served by the redirect target" 1 !served_by_1;
  check_int "redirect is not a timeout retry" 0 (Client.retries client)

let test_duplicate_replies_ignored () =
  let engine, trace, net = make 1 in
  let _ =
    fake_replica net trace 0 (fun ~rc ~src:_ ~cid ~rid ~cmd ->
        (* Reply twice. *)
        Rc.send rc ~dst:cid (Rpc.Rep { rid; result = cmd });
        Rc.send rc ~dst:cid (Rpc.Rep { rid; result = cmd }))
  in
  let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:1 ~replicas:[ 0 ] () in
  let got = ref 0 in
  Client.request client ~cmd:(Echo 1) ~on_reply:(fun _ ~latency:_ -> incr got);
  Engine.run ~until:5_000.0 engine;
  check_int "callback fired exactly once" 1 !got

let test_concurrent_requests_matched_by_rid () =
  let engine, trace, net = make 1 in
  let replica_proc = ref None in
  let _ =
    let proc, rc =
      fake_replica net trace 0 (fun ~rc ~src:_ ~cid ~rid ~cmd ->
          match cmd with
          | Echo k ->
              (* Answer out of order: delay even request numbers. *)
              let delay = if k mod 2 = 0 then 80.0 else 1.0 in
              (match !replica_proc with
              | Some proc ->
                  ignore
                    (Process.timer proc ~delay (fun () ->
                         Rc.send rc ~dst:cid (Rpc.Rep { rid; result = Echo k })))
              | None -> ())
          | _ -> ())
    in
    replica_proc := Some proc;
    (proc, rc)
  in
  let client =
    Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:1 ~replicas:[ 0 ] ~timeout:1_000.0 ()
  in
  let replies = ref [] in
  for k = 0 to 5 do
    Client.request client ~cmd:(Echo k) ~on_reply:(fun r ~latency:_ ->
        match r with Echo v -> replies := v :: !replies | _ -> ())
  done;
  Engine.run ~until:5_000.0 engine;
  (* Every request got its own answer despite the reordering. *)
  check_list_int "all matched" [ 0; 1; 2; 3; 4; 5 ]
    (List.sort compare !replies);
  check_int "none outstanding" 0 (Client.outstanding client)

let suite =
  [
    ( "client",
      [
        Alcotest.test_case "reply and latency" `Quick test_simple_reply_and_latency;
        Alcotest.test_case "retry rotates" `Quick test_retry_rotates_to_next_replica;
        Alcotest.test_case "redirect retargets" `Quick test_redirect_retargets;
        Alcotest.test_case "duplicate replies ignored" `Quick
          test_duplicate_replies_ignored;
        Alcotest.test_case "concurrent requests matched by rid" `Quick
          test_concurrent_requests_matched_by_rid;
      ] );
  ]
