(* The delta state-transfer engine (Gc_server.Resync) and the applied-set
   digest it verifies against.

   The high-stakes property under test: delivery-log indices are NOT
   comparable across replicas (commuting deliveries interleave
   differently per node), so a log-suffix delta can silently miss
   operations the joiner never saw — and the membership snapshot's
   delivered-id sets suppress their retransmission forever.  The sponsor
   therefore stamps every delta with its applied-set cardinality + XOR
   digest, and the joiner must reject any delta that does not reproduce
   both, falling back to a full (always exact) image. *)

module Storage = Gc_kernel.Storage
module Stack = Gcs.Gcs_stack
module Kv = Gc_server.Kv
module Proto = Gc_server.Proto
module Resync = Gc_server.Resync

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* One durable-log entry as generic broadcast would write it: a
   Storage.Record whose payload is the stack's application envelope. *)
let entry ~seq ~origin ~opid ~ordered op =
  let klass =
    if ordered then Stack.Conflict.Ordered else Stack.Conflict.Commuting
  in
  let payload =
    match
      Gc_net.Payload.encode
        (Stack.Gcs_app { klass; body = Proto.Sv_op { origin; opid; op } })
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "payload encode"
  in
  Storage.Record.encode { Storage.Record.origin; seq; ordered; payload }

let apply_and_log kv store ~origin ~opid ~ordered op =
  ignore (Kv.apply kv ~origin ~opid ~ordered op);
  let _, seq = Storage.extent store in
  ignore (Storage.append store (entry ~seq ~origin ~opid ~ordered op))

let no_fresh ~entry:_ ~origin:_ ~opid:_ ~result:_ =
  Alcotest.fail "no fresh op expected"

(* ---------- the applied-set digest ---------- *)

let test_applied_digest_order_independent () =
  (* Same set of commuting ops, two different interleavings: counts and
     digest agree.  This is what makes the digest a cross-replica
     comparable cursor when log indices are not. *)
  let ops =
    List.init 8 (fun i ->
        (i mod 3, 100 + i, Proto.Incr { key = "k" ^ string_of_int i; delta = i }))
  in
  let a = Kv.create () and b = Kv.create () in
  List.iter
    (fun (origin, opid, op) -> ignore (Kv.apply a ~origin ~opid ~ordered:false op))
    ops;
  List.iter
    (fun (origin, opid, op) -> ignore (Kv.apply b ~origin ~opid ~ordered:false op))
    (List.rev ops);
  check_int "counts agree" (Kv.applied_count a) (Kv.applied_count b);
  check_string "digests agree across interleavings" (Kv.applied_digest a)
    (Kv.applied_digest b);
  (* Equal cardinality but one differing id: the count alone would pass,
     the digest must not. *)
  let c = Kv.create () in
  List.iteri
    (fun i (origin, opid, op) ->
      let opid = if i = 0 then 999_999 else opid in
      ignore (Kv.apply c ~origin ~opid ~ordered:false op))
    ops;
  check_int "same cardinality" (Kv.applied_count a) (Kv.applied_count c);
  check_bool "digest detects a swapped id" false
    (Kv.applied_digest a = Kv.applied_digest c);
  (* A strict subset differs too. *)
  let d = Kv.create () in
  List.iteri
    (fun i (origin, opid, op) ->
      if i > 0 then ignore (Kv.apply d ~origin ~opid ~ordered:false op))
    ops;
  check_bool "digest detects a missing id" false
    (Kv.applied_digest a = Kv.applied_digest d);
  (* The digest survives the snapshot blob roundtrip. *)
  let e = Kv.create () in
  Kv.restore e (Kv.to_blob a);
  check_string "digest survives restore" (Kv.applied_digest a)
    (Kv.applied_digest e)

(* ---------- delta transfer: the clean path ---------- *)

let test_delta_within_window_verifies () =
  (* Sponsor and joiner share one interleaving; the joiner simply crashed
     having logged a prefix.  The delta must cover the gap, report every
     fresh op (with its rendered result) to on_fresh, and verify. *)
  let metrics = Gc_obs.Metrics.create () in
  let sponsor = Kv.create () and sponsor_log = Storage.in_memory () in
  let joiner = Kv.create () and joiner_log = Storage.in_memory () in
  for i = 0 to 399 do
    let op = Proto.Put { key = "k" ^ string_of_int (i mod 10); value = string_of_int i } in
    apply_and_log sponsor sponsor_log ~origin:0 ~opid:i ~ordered:true op;
    if i < 300 then apply_and_log joiner joiner_log ~origin:0 ~opid:i ~ordered:true op
  done;
  let have = snd (Storage.extent joiner_log) in
  check_int "joiner high-water mark" 300 have;
  let payload = Resync.provide ~kv:sponsor ~metrics ~storage:sponsor_log ~have () in
  check_int "served as a delta" 1 (Gc_obs.Metrics.counter metrics "server.delta_transfers");
  let fresh = ref [] in
  let on_fresh ~entry ~origin:_ ~opid ~result =
    ignore (Storage.append joiner_log entry);
    fresh := (opid, result) :: !fresh
  in
  (match Resync.install ~kv:joiner ~metrics ~on_fresh payload with
  | `Installed -> ()
  | `Verify_failed -> Alcotest.fail "clean delta rejected"
  | `Unrecognised -> Alcotest.fail "unrecognised payload");
  check_int "exactly the gap was fresh" 100 (List.length !fresh);
  (* on_fresh saw the rendered value, usable as a late client reply *)
  (match List.rev !fresh with
  | (opid, result) :: _ ->
      check_int "first fresh opid" 300 opid;
      check_string "first fresh result" "300" result
  | [] -> Alcotest.fail "no fresh ops");
  check_string "state digests converge" (Kv.state_digest sponsor)
    (Kv.state_digest joiner);
  check_string "applied digests converge" (Kv.applied_digest sponsor)
    (Kv.applied_digest joiner);
  check_int "joiner log extended by the gap" 400
    (snd (Storage.extent joiner_log));
  check_int "nothing rejected" 0
    (Gc_obs.Metrics.counter metrics "server.delta_rejected")

(* ---------- delta transfer: the divergence regression ---------- *)

let test_delta_missing_op_rejected_then_full_repairs () =
  (* REVIEW regression: the joiner was deaf to one origin's commuting op X
     — delivered early at the sponsor (log index 0) — while delivering
     hundreds of later ops, then crashed.  Its log high-water mark equals
     the sponsor's minus one, so [have - delta_margin] lands far above
     X's index at the sponsor and the delta excludes X.  Before
     verification existed this installed silently: X is suppressed
     forever by the snapshot's delivered-id sets and the replicas diverge
     with no detection.  Now the applied-set stamp must reject the delta,
     and a full image (the have:-1 re-join) must repair the joiner. *)
  let metrics = Gc_obs.Metrics.create () in
  let sponsor = Kv.create () and sponsor_log = Storage.in_memory () in
  let joiner = Kv.create () and joiner_log = Storage.in_memory () in
  let x = Proto.Incr { key = "ghost"; delta = 7 } in
  apply_and_log sponsor sponsor_log ~origin:1 ~opid:1_000 ~ordered:false x;
  for i = 0 to 599 do
    let op = Proto.Incr { key = "k" ^ string_of_int (i mod 5); delta = 1 } in
    apply_and_log sponsor sponsor_log ~origin:0 ~opid:i ~ordered:false op;
    apply_and_log joiner joiner_log ~origin:0 ~opid:i ~ordered:false op
  done;
  let have = snd (Storage.extent joiner_log) in
  check_int "skew: joiner is one entry behind" 601
    (snd (Storage.extent sponsor_log));
  let payload = Resync.provide ~kv:sponsor ~metrics ~storage:sponsor_log ~have () in
  check_int "served as a delta" 1
    (Gc_obs.Metrics.counter metrics "server.delta_transfers");
  (match payload with
  | Proto.Sv_delta { from; _ } ->
      check_bool "delta starts above X's index" true (from > 0)
  | _ -> Alcotest.fail "expected a delta");
  let on_fresh ~entry ~origin:_ ~opid:_ ~result:_ =
    ignore (Storage.append joiner_log entry)
  in
  (match Resync.install ~kv:joiner ~metrics ~on_fresh payload with
  | `Verify_failed -> ()
  | `Installed -> Alcotest.fail "delta missing an op must not verify"
  | `Unrecognised -> Alcotest.fail "unrecognised payload");
  check_int "rejection counted" 1
    (Gc_obs.Metrics.counter metrics "server.delta_rejected");
  check_bool "joiner still missing X" false (Kv.seen joiner ~origin:1 ~opid:1_000);
  (* The fallback: re-join announcing no log position → full image. *)
  let payload = Resync.provide ~kv:sponsor ~metrics ~storage:sponsor_log ~have:(-1) () in
  check_int "fallback served full" 1
    (Gc_obs.Metrics.counter metrics "server.full_transfers");
  (match Resync.install ~kv:joiner ~metrics ~on_fresh:no_fresh payload with
  | `Installed -> ()
  | `Verify_failed | `Unrecognised -> Alcotest.fail "full image must install");
  check_bool "X recovered" true (Kv.seen joiner ~origin:1 ~opid:1_000);
  check_string "state digests converge" (Kv.state_digest sponsor)
    (Kv.state_digest joiner);
  check_string "applied digests converge" (Kv.applied_digest sponsor)
    (Kv.applied_digest joiner)

(* A joiner whose retained-window check fails (too far behind) is served
   the full image straight away — no delta, no verification roundtrip. *)
let test_stale_joiner_gets_full () =
  let metrics = Gc_obs.Metrics.create () in
  let sponsor = Kv.create () and sponsor_log = Storage.in_memory () in
  for i = 0 to 49 do
    apply_and_log sponsor sponsor_log ~origin:0 ~opid:i ~ordered:true
      (Proto.Put { key = "k"; value = string_of_int i })
  done;
  Storage.truncate_before sponsor_log 40;
  (match
     Resync.provide ~kv:sponsor ~metrics ~storage:sponsor_log ~have:50 ()
   with
  | Proto.Sv_state _ -> ()
  | _ -> Alcotest.fail "expected full: have - margin is below the window");
  check_int "full counted" 1
    (Gc_obs.Metrics.counter metrics "server.full_transfers")

let suite =
  [
    ( "resync",
      [
        Alcotest.test_case "applied digest is order-independent" `Quick
          test_applied_digest_order_independent;
        Alcotest.test_case "delta within window verifies" `Quick
          test_delta_within_window_verifies;
        Alcotest.test_case "delta missing an op rejected, full repairs" `Quick
          test_delta_missing_op_rejected_then_full_repairs;
        Alcotest.test_case "stale joiner gets full image" `Quick
          test_stale_joiner_gets_full;
      ] );
  ]
