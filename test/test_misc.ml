(* Remaining odds and ends: trace buffer, payload printers, abcast batching,
   engine runaway guard, netsim accounting. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module Payload = Gc_net.Payload
module Ab = Gc_abcast.Atomic_broadcast
open Support

type Gc_net.Payload.t += Blip of int

let () =
  Payload.register_printer (function
    | Blip k -> Some (Printf.sprintf "blip(%d)" k)
    | _ -> None)

let test_trace_roundtrip () =
  let tr = Trace.create ~enabled:true () in
  Trace.emit tr ~time:1.0 ~node:0 ~component:"a" ~event:"x"
    ~attrs:[ ("step", "one") ]
    ();
  Trace.emit tr ~time:2.0 ~node:1 ~component:"b" ~event:"y"
    ~attrs:[ ("step", "two") ]
    ();
  Trace.emit tr ~time:3.0 ~node:0 ~component:"a" ~event:"y"
    ~attrs:[ ("step", "three"); ("extra", "z") ]
    ();
  check_int "all records" 3 (List.length (Trace.records tr));
  check_int "by node" 2 (List.length (Trace.find tr ~node:0 ()));
  check_int "by component" 2 (List.length (Trace.find tr ~component:"a" ()));
  check_int "by event and node" 1
    (List.length (Trace.find tr ~node:0 ~event:"y" ()));
  check_int "by attr" 1
    (List.length (Trace.find tr ~attr:("step", "two") ()));
  (match Trace.find tr ~attr:("extra", "z") () with
  | [ r ] ->
      Alcotest.(check string) "derived detail" "step=three extra=z"
        (Trace.detail r);
      Alcotest.(check (option string)) "attr lookup" (Some "three")
        (Trace.attr r "step")
  | rs -> Alcotest.failf "expected 1 record with extra=z, got %d" (List.length rs));
  Trace.clear tr;
  check_int "cleared" 0 (List.length (Trace.records tr))

let test_trace_disabled_and_capacity () =
  let off = Trace.create () in
  Trace.emit off ~time:1.0 ~node:0 ~component:"a" ~event:"x" ();
  check_int "disabled drops" 0 (List.length (Trace.records off));
  let tiny = Trace.create ~enabled:true ~capacity:3 () in
  for i = 1 to 5 do
    Trace.emit tiny ~time:(float_of_int i) ~node:0 ~component:"a" ~event:"x" ()
  done;
  let records = Trace.records tiny in
  check_int "capacity bound" 3 (List.length records);
  Alcotest.(check (float 0.001)) "oldest evicted" 3.0 (List.hd records).Trace.time

let test_payload_printer () =
  Alcotest.(check string) "registered printer" "blip(7)" (Payload.to_string (Blip 7));
  (* An unknown payload falls back to a placeholder, never raises. *)
  let module M = struct
    type Gc_net.Payload.t += Unknown
  end in
  Alcotest.(check string) "fallback" "<payload>" (Payload.to_string M.Unknown)

let test_abcast_batches_bursts () =
  (* A burst sent while one consensus instance is running lands in few
     batches: instances used << messages delivered. *)
  let w = make_world ~n:3 () in
  let ab =
    Array.mapi
      (fun _i node ->
        Ab.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd ~members:(ids 3)
          ())
      w.nodes
  in
  let delivered = ref 0 in
  Ab.on_deliver ab.(1) (fun ~origin:_ _ -> incr delivered);
  for k = 0 to 19 do
    Ab.abcast ab.(k mod 3) (Blip k)
  done;
  run_until w 30_000.0;
  check_int "all delivered" 20 !delivered;
  check_bool
    (Printf.sprintf "batched into few instances (%d)" (Ab.next_instance ab.(1)))
    true
    (Ab.next_instance ab.(1) <= 8)

let test_engine_max_events_guard () =
  let e = Engine.create () in
  let rec forever () = ignore (Engine.schedule e ~delay:0.0 forever) in
  forever ();
  (match Engine.run ~max_events:1_000 e with
  | () -> Alcotest.fail "expected runaway guard to fire"
  | exception Failure _ -> ());
  check_bool "events were executed" true (Engine.events_executed e >= 1_000)

let test_netsim_counters () =
  let engine = Engine.create ~seed:1L () in
  let net = Netsim.create engine ~delay:(Gc_net.Delay.Constant 1.0) ~n:2 () in
  Netsim.register net ~node:1 (fun ~src:_ _ -> ());
  Netsim.send net ~size:100 ~src:0 ~dst:1 (Blip 1);
  Netsim.send net ~size:50 ~src:0 ~dst:1 (Blip 2);
  Engine.run engine;
  check_int "sent" 2 (Netsim.messages_sent net);
  check_int "delivered" 2 (Netsim.messages_delivered net);
  check_int "bytes" 150 (Netsim.bytes_sent net);
  Netsim.reset_counters net;
  check_int "reset" 0 (Netsim.messages_sent net)

let suite =
  [
    ( "misc",
      [
        Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
        Alcotest.test_case "trace disabled and capacity" `Quick
          test_trace_disabled_and_capacity;
        Alcotest.test_case "payload printer" `Quick test_payload_printer;
        Alcotest.test_case "abcast batches bursts" `Quick test_abcast_batches_bursts;
        Alcotest.test_case "engine max_events guard" `Quick
          test_engine_max_events_guard;
        Alcotest.test_case "netsim counters" `Quick test_netsim_counters;
      ] );
  ]
