(* Tests for the replication toolkit: state machines, active replication,
   passive replication over generic broadcast (Figure 8 semantics), and the
   view-synchrony passive baseline. *)

module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Trace = Gc_sim.Trace
module View = Gc_membership.View
module Sm = Gc_replication.State_machine
module Active = Gc_replication.Active
module Passive = Gc_replication.Passive
module Passive_vs = Gc_replication.Passive_vs
module Client = Gc_replication.Client
open Support

(* ---------- state machines ---------- *)

let test_bank_machine () =
  let b = (Sm.Bank.make ()).Sm.apply in
  (match b (Sm.Bank.Deposit { account = 1; amount = 50 }) with
  | Sm.Bank.Bank_ok { balance } -> check_int "deposit" 50 balance
  | _ -> Alcotest.fail "bad reply");
  (match b (Sm.Bank.Withdraw { account = 1; amount = 70 }) with
  | Sm.Bank.Bank_insufficient -> ()
  | _ -> Alcotest.fail "overdraft allowed");
  match b (Sm.Bank.Withdraw { account = 1; amount = 30 }) with
  | Sm.Bank.Bank_ok { balance } -> check_int "withdraw" 20 balance
  | _ -> Alcotest.fail "bad reply"

let test_bank_snapshot_roundtrip () =
  let m = Sm.Bank.make () in
  ignore (m.Sm.apply (Sm.Bank.Deposit { account = 1; amount = 5 }));
  ignore (m.Sm.apply (Sm.Bank.Deposit { account = 2; amount = 7 }));
  let snap = m.Sm.snapshot () in
  let m2 = Sm.Bank.make () in
  m2.Sm.restore snap;
  Alcotest.(check bool) "equal snapshots" true (m2.Sm.snapshot () = snap)

let prop_deposits_commute =
  QCheck.Test.make ~name:"bank deposits commute (order-independent state)"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 10) (pair (int_bound 3) (int_range 1 100)))
    (fun deposits ->
      let run order =
        let m = Sm.Bank.make () in
        List.iter
          (fun (account, amount) ->
            ignore (m.Sm.apply (Sm.Bank.Deposit { account; amount })))
          order;
        m.Sm.snapshot ()
      in
      run deposits = run (List.rev deposits))

let prop_kv_conflict_symmetric =
  QCheck.Test.make ~name:"kv conflict relation is symmetric" ~count:100
    QCheck.(pair (pair bool small_string) (pair bool small_string))
    (fun ((aput, ka), (bput, kb)) ->
      let mk put k =
        if put then Sm.Kv.Put { key = k; data = "x" } else Sm.Kv.Get { key = k }
      in
      let a = mk aput ka and b = mk bput kb in
      Sm.Kv.conflict a b = Sm.Kv.conflict b a)

let test_counter_machine () =
  let m = Sm.Counter.make () in
  ignore (m.Sm.apply (Sm.Counter.Incr 3));
  ignore (m.Sm.apply (Sm.Counter.Incr 4));
  match m.Sm.apply Sm.Counter.Read with
  | Sm.Counter.Counter_value v -> check_int "sum" 7 v
  | _ -> Alcotest.fail "bad reply"

(* ---------- shared world for client/replica scenarios ---------- *)

let world ~n_replicas ~n_clients ~seed =
  let n = n_replicas + n_clients in
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  (engine, trace, net, List.init n_replicas (fun i -> i))

let deposit a k = Sm.Bank.Deposit { account = a; amount = k }
let withdraw a k = Sm.Bank.Withdraw { account = a; amount = k }

(* ---------- active replication ---------- *)

let test_active_basic () =
  let engine, trace, net, replicas = world ~n_replicas:3 ~n_clients:1 ~seed:1L in
  let servers =
    List.map
      (fun id ->
        Active.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas ~make_sm:Sm.Bank.make ())
      replicas
  in
  let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas () in
  let replies = ref [] in
  for k = 1 to 5 do
    Client.request client ~cmd:(deposit 0 k) ~on_reply:(fun r ~latency ->
        replies := (r, latency) :: !replies)
  done;
  Engine.run ~until:30_000.0 engine;
  check_int "five replies" 5 (List.length !replies);
  check_int "no retries needed" 0 (Client.retries client);
  (* All replicas applied all commands and share one state. *)
  let snaps = List.map Active.snapshot servers in
  List.iter
    (fun s -> Alcotest.(check bool) "replicas agree" true (s = List.hd snaps))
    snaps;
  match List.hd snaps with
  | Sm.Bank.Bank_state [ (0, total) ] -> check_int "sum applied" 15 total
  | _ -> Alcotest.fail "unexpected snapshot"

let test_active_contact_crash_exactly_once () =
  for_seeds ~count:6 (fun seed ->
      let engine, trace, net, replicas = world ~n_replicas:3 ~n_clients:1 ~seed in
      let servers =
        List.map
          (fun id ->
            Active.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas ~make_sm:Sm.Bank.make ())
          replicas
      in
      let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas ~timeout:400.0 () in
      let got = ref 0 in
      Client.request client ~cmd:(deposit 0 100) ~on_reply:(fun _ ~latency:_ ->
          incr got);
      (* Crash the contacted replica (index 0) immediately: the command may
         or may not have been broadcast; the retry path must give
         exactly-once semantics either way. *)
      ignore
        (Engine.schedule engine ~delay:2.0 (fun () ->
             Active.crash (List.hd servers)));
      Engine.run ~until:60_000.0 engine;
      check_int "exactly one reply" 1 !got;
      let survivors = List.tl servers in
      let snaps = List.map Active.snapshot survivors in
      List.iter
        (fun s ->
          match s with
          | Sm.Bank.Bank_state [ (0, 100) ] -> ()
          | Sm.Bank.Bank_state [] -> Alcotest.fail "command lost"
          | _ -> Alcotest.fail "double apply or bad state")
        snaps)

(* ---------- passive replication over generic broadcast ---------- *)

let make_passive ?(config = Gcs.Gcs_stack.default_config)
    ?(primary_suspect_timeout = 250.0) ~n_replicas ~n_clients ~seed () =
  let engine, trace, net, replicas =
    world ~n_replicas ~n_clients ~seed
  in
  let servers =
    List.map
      (fun id ->
        Passive.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas ~config
          ~primary_suspect_timeout ~make_sm:Sm.Bank.make ())
      replicas
  in
  (engine, trace, net, replicas, servers)

let test_passive_basic () =
  let engine, trace, net, replicas, servers =
    make_passive ~n_replicas:3 ~n_clients:1 ~seed:2L ()
  in
  let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas () in
  let replies = ref 0 in
  for k = 1 to 6 do
    Client.request client ~cmd:(deposit 0 k) ~on_reply:(fun _ ~latency:_ ->
        incr replies)
  done;
  Engine.run ~until:30_000.0 engine;
  check_int "all replies" 6 !replies;
  let snaps = List.map Passive.snapshot servers in
  List.iter
    (fun s -> Alcotest.(check bool) "replicas agree" true (s = List.hd snaps))
    snaps;
  (* Pure updates: commuting class, no consensus, stage untouched. *)
  List.iter
    (fun s ->
      check_int "no stage change"
        0
        (Gc_gbcast.Generic_broadcast.stage
           (Gcs.Gcs_stack.generic_broadcast (Passive.stack s))))
    servers

let test_passive_primary_crash_failover () =
  for_seeds ~count:6 (fun seed ->
      let engine, trace, net, replicas, servers =
        make_passive ~n_replicas:4 ~n_clients:1 ~seed ()
      in
      let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:4 ~replicas ~timeout:400.0 () in
      let replies = ref [] in
      Client.request client ~cmd:(deposit 0 10) ~on_reply:(fun r ~latency:_ ->
          replies := r :: !replies);
      ignore
        (Engine.schedule engine ~delay:1000.0 (fun () ->
             Passive.crash (List.hd servers)));
      ignore
        (Engine.schedule engine ~delay:2500.0 (fun () ->
             Client.request client ~cmd:(deposit 0 5) ~on_reply:(fun r ~latency:_ ->
                 replies := r :: !replies)));
      Engine.run ~until:120_000.0 engine;
      check_int "both replied" 2 (List.length !replies);
      let survivors = List.tl servers in
      (* Rotation happened; survivors agree on primary and on state. *)
      let p = Passive.primary (List.hd survivors) in
      check_bool "primary is not the crashed node" true (p <> Some 0);
      List.iter
        (fun s ->
          Alcotest.(check bool) "same primary" true (Passive.primary s = p);
          Alcotest.(check bool)
            "same state" true
            (Passive.snapshot s = Passive.snapshot (List.hd survivors)))
        survivors;
      match Passive.snapshot (List.hd survivors) with
      | Sm.Bank.Bank_state [ (0, 15) ] -> ()
      | _ -> Alcotest.fail "bad final state")

let test_passive_wrong_suspicion_no_exclusion () =
  (* A short spike makes a backup suspect the primary: the list rotates
     (cheap) but nobody is excluded from the membership — the heart of the
     paper's responsiveness argument. *)
  let engine, trace, net, _replicas, servers =
    make_passive ~n_replicas:3 ~n_clients:1 ~seed:4L ()
  in
  ignore trace;
  Netsim.delay_spike net ~nodes:[ 0 ] ~until:800.0 ~extra:400.0;
  Engine.run ~until:60_000.0 engine;
  let s1 = List.nth servers 1 in
  check_bool "rotation happened" true (Passive.primary_changes s1 >= 1);
  check_bool "old primary demoted, not excluded" true
    (Passive.primary s1 <> Some 0);
  List.iter
    (fun s ->
      check_int "membership intact" 3
        (View.size (Gcs.Gcs_stack.view (Passive.stack s))))
    servers

let test_passive_fig8_consistency () =
  (* Requests in flight exactly while a primary change fires: every replica
     resolves update-vs-change the same way and replicas converge. *)
  for_seeds ~count:10 (fun seed ->
      let engine, trace, net, replicas, servers =
        make_passive ~n_replicas:3 ~n_clients:1 ~seed ()
      in
      let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas ~timeout:300.0 () in
      let replies = ref 0 in
      ignore
        (Engine.schedule engine ~delay:500.0 (fun () ->
             Client.request client ~cmd:(deposit 0 10)
               ~on_reply:(fun _ ~latency:_ -> incr replies);
             (* Force a concurrent primary change via a spike at the
                primary. *)
             Netsim.delay_spike net ~nodes:[ 0 ] ~until:1000.0 ~extra:400.0));
      Engine.run ~until:120_000.0 engine;
      check_int "client eventually served" 1 !replies;
      let snaps = List.map Passive.snapshot servers in
      List.iter
        (fun s -> Alcotest.(check bool) "converged" true (s = List.hd snaps))
        snaps;
      (* Exactly-once despite retries and discards. *)
      match List.hd snaps with
      | Sm.Bank.Bank_state [ (0, 10) ] -> ()
      | Sm.Bank.Bank_state l ->
          Alcotest.failf "bad state: %d accounts" (List.length l)
      | _ -> Alcotest.fail "bad snapshot")

(* ---------- passive replication over the traditional stack ---------- *)

let test_passive_vs_basic () =
  let engine, trace, net, replicas = world ~n_replicas:3 ~n_clients:1 ~seed:6L in
  let servers =
    List.map
      (fun id ->
        Passive_vs.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas ~make_sm:Sm.Bank.make ())
      replicas
  in
  let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas () in
  let replies = ref 0 in
  for k = 1 to 4 do
    Client.request client ~cmd:(deposit 0 k) ~on_reply:(fun _ ~latency:_ ->
        incr replies)
  done;
  Engine.run ~until:30_000.0 engine;
  check_int "all replies" 4 !replies;
  let snaps = List.map Passive_vs.snapshot servers in
  List.iter
    (fun s -> Alcotest.(check bool) "replicas agree" true (s = List.hd snaps))
    snaps

let test_passive_vs_primary_crash_excludes () =
  for_seeds ~count:5 (fun seed ->
      let engine, trace, net, replicas = world ~n_replicas:3 ~n_clients:1 ~seed in
      let config =
        { Gc_traditional.Traditional_stack.default_config with fd_timeout = 400.0 }
      in
      let servers =
        List.map
          (fun id ->
            Passive_vs.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial:replicas ~config
              ~make_sm:Sm.Bank.make ())
          replicas
      in
      let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas ~timeout:400.0 () in
      let replies = ref 0 in
      Client.request client ~cmd:(deposit 0 3) ~on_reply:(fun _ ~latency:_ ->
          incr replies);
      ignore
        (Engine.schedule engine ~delay:800.0 (fun () ->
             Passive_vs.crash (List.hd servers)));
      ignore
        (Engine.schedule engine ~delay:3000.0 (fun () ->
             Client.request client ~cmd:(deposit 0 4) ~on_reply:(fun _ ~latency:_ ->
                 incr replies)));
      Engine.run ~until:120_000.0 engine;
      check_int "both requests served" 2 !replies;
      let s1 = List.nth servers 1 in
      (* In the traditional design failover = exclusion: the crashed primary
         left the view. *)
      check_bool "primary excluded" true
        (not
           (View.mem
              (Gc_traditional.Traditional_stack.view (Passive_vs.stack s1))
              0));
      match Passive_vs.snapshot s1 with
      | Sm.Bank.Bank_state [ (0, 7) ] -> ()
      | _ -> Alcotest.fail "bad final state")

let test_passive_withdraw_never_overdraws () =
  (* Mixed workload through the passive scheme: commuting deposits plus
     conflicting withdrawals; invariant: balance never negative, replicas
     converge. *)
  for_seeds ~count:5 (fun seed ->
      let engine, trace, net, replicas, servers =
        make_passive ~n_replicas:3 ~n_clients:2 ~seed ()
      in
      let c1 = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas () in
      let c2 = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:4 ~replicas () in
      let nok = ref 0 and insufficient = ref 0 in
      let tally r ~latency:_ =
        match r with
        | Sm.Bank.Bank_ok { balance } ->
            check_bool "non-negative" true (balance >= 0);
            incr nok
        | Sm.Bank.Bank_insufficient -> incr insufficient
        | _ -> Alcotest.fail "bad reply"
      in
      for k = 0 to 9 do
        let cmd =
          if k mod 3 = 2 then withdraw 0 40 else deposit 0 20
        in
        let c = if k mod 2 = 0 then c1 else c2 in
        ignore
          (Engine.schedule engine ~delay:(float_of_int (k * 30)) (fun () ->
               Client.request c ~cmd ~on_reply:tally))
      done;
      Engine.run ~until:120_000.0 engine;
      check_int "all ten answered" 10 (!nok + !insufficient);
      let snaps = List.map Passive.snapshot servers in
      List.iter
        (fun s -> Alcotest.(check bool) "converged" true (s = List.hd snaps))
        snaps)

let test_passive_redirect_to_primary () =
  (* A client that contacts a backup is redirected to the primary and then
     served. *)
  let engine, trace, net, _replicas, servers =
    make_passive ~n_replicas:3 ~n_clients:1 ~seed:41L ()
  in
  (* Force the client's first target to be a backup by listing replicas in a
     rotated order. *)
  let client =
    Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas:[ 1; 2; 0 ] ~timeout:1_000.0 ()
  in
  let served = ref 0 in
  Client.request client ~cmd:(deposit 0 5) ~on_reply:(fun _ ~latency:_ ->
      incr served);
  Engine.run ~until:30_000.0 engine;
  check_int "served after redirect" 1 !served;
  check_int "no timeout retries" 0 (Client.retries client);
  (match Passive.snapshot (List.hd servers) with
  | Sm.Bank.Bank_state [ (0, 5) ] -> ()
  | _ -> Alcotest.fail "deposit lost");
  (* Primary never rotated: redirects are not suspicions. *)
  check_int "no primary change" 0 (Passive.primary_changes (List.hd servers))

let test_balance_query_through_replication () =
  (* Ordered read-only commands flow through the same path. *)
  let engine, trace, net, replicas, _servers =
    make_passive ~n_replicas:3 ~n_clients:1 ~seed:42L ()
  in
  let client = Client.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:3 ~replicas () in
  let log = ref [] in
  Client.request client ~cmd:(deposit 0 30) ~on_reply:(fun r ~latency:_ ->
      log := r :: !log);
  ignore
    (Engine.schedule engine ~delay:500.0 (fun () ->
         Client.request client
           ~cmd:(Sm.Bank.Balance { account = 0 })
           ~on_reply:(fun r ~latency:_ -> log := r :: !log)));
  Engine.run ~until:30_000.0 engine;
  match !log with
  | [ Sm.Bank.Bank_ok { balance = 30 }; Sm.Bank.Bank_ok { balance = 30 } ] -> ()
  | l -> Alcotest.failf "unexpected replies (%d)" (List.length l)

let suite =
  [
    ( "replication",
      [
        Alcotest.test_case "bank machine" `Quick test_bank_machine;
        Alcotest.test_case "bank snapshot roundtrip" `Quick
          test_bank_snapshot_roundtrip;
        QCheck_alcotest.to_alcotest prop_deposits_commute;
        QCheck_alcotest.to_alcotest prop_kv_conflict_symmetric;
        Alcotest.test_case "counter machine" `Quick test_counter_machine;
        Alcotest.test_case "active basic" `Quick test_active_basic;
        Alcotest.test_case "active contact crash exactly-once" `Slow
          test_active_contact_crash_exactly_once;
        Alcotest.test_case "passive basic" `Quick test_passive_basic;
        Alcotest.test_case "passive primary crash failover" `Slow
          test_passive_primary_crash_failover;
        Alcotest.test_case "passive wrong suspicion no exclusion" `Quick
          test_passive_wrong_suspicion_no_exclusion;
        Alcotest.test_case "passive figure-8 consistency" `Slow
          test_passive_fig8_consistency;
        Alcotest.test_case "passive_vs basic" `Quick test_passive_vs_basic;
        Alcotest.test_case "passive_vs primary crash excludes" `Slow
          test_passive_vs_primary_crash_excludes;
        Alcotest.test_case "withdrawals never overdraw" `Slow
          test_passive_withdraw_never_overdraws;
        Alcotest.test_case "passive redirect to primary" `Quick
          test_passive_redirect_to_primary;
        Alcotest.test_case "balance query end-to-end" `Quick
          test_balance_query_through_replication;
      ] );
  ]
