(* Backend conformance: the same scripted scenario runs against both
   Runtime implementations through one functor.

   The scenario: three founding members each submit a schedule of
   conflicting (abcast) and commuting (rbcast) operations; every node
   records what its stack delivers.  Obligations checked on every
   backend: agreement (one identical total order of conflicting ops on
   all nodes) and completeness (each class delivered exactly once,
   everywhere).  The sim backend additionally pins determinism — two
   runs from the same seed must produce byte-identical logs — while the
   unix backend (real TCP over loopback, one in-process select loop) is
   only required to be order-isomorphic: the *same* total order on all
   its nodes, not necessarily the sim's. *)

module Stack = Gcs.Gcs_stack
module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Trace = Gc_sim.Trace
module Evloop = Gc_runtime_unix.Evloop
module Ru = Gc_runtime_unix.Runtime_unix
open Support

type Gc_net.Payload.t += Cop of { origin : int; k : int }

let () =
  Gc_net.Payload.register_codec ~tag:"test.cop"
    ~encode:(fun _enc w p ->
      match p with
      | Cop { origin; k } ->
          Gc_net.Wire.varint w origin;
          Gc_net.Wire.varint w k;
          true
      | _ -> false)
    ~decode:(fun _dec r ->
      let origin = Gc_net.Wire.read_varint r in
      let k = Gc_net.Wire.read_varint r in
      Cop { origin; k })

let nodes = 3
let per_node = 6

(* One delivery log entry: (origin, k, ordered). *)
type log = (int * int * bool) list

module type Backend = sig
  val name : string
  val deterministic : bool

  val run_scenario : unit -> log array * Gc_obs.Metrics.t
  (** Build a [nodes]-member cluster, let node [i] submit operations
      [Cop {origin = i; k}] for [k < per_node] (even [k] conflicting via
      abcast, odd [k] commuting via rbcast), and return each node's
      delivery log once everything has been delivered everywhere, plus
      the merged metrics of all stacks (for the stats round-trip
      obligation). *)
end

let submit stacks i k =
  let p = Cop { origin = i; k } in
  if k mod 2 = 0 then Stack.abcast stacks.(i) p else Stack.rbcast stacks.(i) p

let record logs id ~ordered payload =
  match payload with
  | Cop { origin; k } -> logs.(id) <- (origin, k, ordered) :: logs.(id)
  | _ -> ()

let finished logs =
  Array.for_all (fun l -> List.length l = nodes * per_node) logs

let harvest logs = Array.map List.rev logs

(* ---------- backends ---------- *)

module Sim_backend = struct
  let name = "sim"
  let deterministic = true

  let run_scenario () =
    let engine = Engine.create ~seed:4242L () in
    let trace = Trace.create ~enabled:false () in
    let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n:nodes () in
    let initial = List.init nodes Fun.id in
    let logs = Array.make nodes [] in
    let stacks =
      Array.init nodes (fun id ->
          let s =
            Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ()
          in
          Stack.on_deliver s (fun ~origin:_ ~ordered payload ->
              record logs id ~ordered payload);
          s)
    in
    for i = 0 to nodes - 1 do
      for k = 0 to per_node - 1 do
        ignore
          (Engine.schedule_at engine
             ~time:(100.0 +. (float_of_int ((i * per_node) + k) *. 15.0))
             (fun () -> submit stacks i k))
      done
    done;
    Engine.run ~until:60_000.0 engine;
    ( harvest logs,
      Gc_obs.Metrics.merged (Array.to_list stacks |> List.map Stack.metrics) )
end

module Unix_backend = struct
  let name = "unix"
  let deterministic = false

  let run_scenario () =
    let loop = Evloop.create () in
    let lo = Unix.inet_addr_loopback in
    let initial = List.init nodes Fun.id in
    let logs = Array.make nodes [] in
    let endpoints =
      Array.init nodes (fun me ->
          Ru.create ~loop ~me ~listen:(Unix.ADDR_INET (lo, 0)) ())
    in
    let peers =
      Array.to_list
        (Array.mapi
           (fun id ep -> (id, Unix.ADDR_INET (lo, Ru.port ep)))
           endpoints)
    in
    Array.iter (fun ep -> Ru.set_peers ep peers) endpoints;
    let config =
      Stack.Config.make ~runtime:Stack.Config.Unix ~hb_period:25.0
        ~consensus_timeout:400.0 ()
    in
    let stacks =
      Array.init nodes (fun id ->
          let s =
            Stack.create (Ru.runtime endpoints.(id)) ~id ~initial ~config ()
          in
          Stack.on_deliver s (fun ~origin:_ ~ordered payload ->
              record logs id ~ordered payload);
          s)
    in
    for i = 0 to nodes - 1 do
      for k = 0 to per_node - 1 do
        ignore
          (Evloop.schedule loop
             ~delay:(50.0 +. (float_of_int ((i * per_node) + k) *. 5.0))
             (fun () -> submit stacks i k))
      done
    done;
    let deadline = Evloop.now loop +. 30_000.0 in
    while (not (finished logs)) && Evloop.now loop < deadline do
      Evloop.run_once loop ~max_wait:20.0
    done;
    Array.iter Ru.shutdown endpoints;
    ( harvest logs,
      Gc_obs.Metrics.merged (Array.to_list stacks |> List.map Stack.metrics) )
end

(* ---------- the conformance obligations ---------- *)

let pp_entry (o, k, ordered) =
  Printf.sprintf "%d.%d%s" o k (if ordered then "!" else "")

let pp_log l = String.concat " " (List.map pp_entry l)

module Conformance (B : Backend) = struct
  let scripted =
    List.concat_map
      (fun i -> List.init per_node (fun k -> (i, k)))
      (List.init nodes Fun.id)

  let check_logs logs =
    Alcotest.(check int) "every node present" nodes (Array.length logs);
    Array.iteri
      (fun id l ->
        Alcotest.(check int)
          (Printf.sprintf "node %d delivered everything" id)
          (nodes * per_node) (List.length l);
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "node %d delivered exactly the script" id)
          (List.sort compare scripted)
          (List.sort compare (List.map (fun (o, k, _) -> (o, k)) l)))
      logs;
    (* Agreement: the subsequence of ordered (conflicting) deliveries is
       identical on every node — one total order. *)
    let ordered_of l = List.filter (fun (_, _, ordered) -> ordered) l in
    let reference = ordered_of logs.(0) in
    Alcotest.(check bool) "conflicting ops exist" true (reference <> []);
    Array.iteri
      (fun id l ->
        if ordered_of l <> reference then
          Alcotest.failf "node %d total order diverges:\n  %s\nvs node 0:\n  %s"
            id (pp_log (ordered_of l)) (pp_log reference))
      logs

  let test_agreement () = check_logs (fst (B.run_scenario ()))

  let test_determinism () =
    if B.deterministic then begin
      let a = fst (B.run_scenario ()) in
      let b = fst (B.run_scenario ()) in
      Array.iteri
        (fun id l ->
          if l <> b.(id) then
            Alcotest.failf "node %d logs differ across identical runs" id)
        a
    end

  (* The live-telemetry obligation: whatever this backend's stacks
     recorded must survive the exact wire path a [Cl_stats] reply takes —
     snapshot -> JSON body -> framed [Cl_reply] -> decoder -> snapshot —
     with counters and quantile estimates intact. *)
  let test_stats_roundtrip () =
    let _, metrics = B.run_scenario () in
    let module Snapshot = Gc_obs.Snapshot in
    let module Proto = Gc_server.Proto in
    let module Frame = Gc_net.Frame in
    let snap = Snapshot.of_metrics metrics in
    Alcotest.(check bool)
      "scenario recorded abcast deliveries" true
      (Snapshot.counter snap "abcast.delivered" > 0);
    Alcotest.(check bool)
      "scenario recorded rbcast deliveries" true
      (Snapshot.counter snap "rbcast.delivered" > 0);
    let body = Gc_obs.Json.to_string (Snapshot.to_json snap) in
    let frame =
      match Frame.encode (Proto.Cl_reply { rid = 7; ok = true; body }) with
      | Ok f -> f
      | Error e -> Alcotest.failf "encode failed: %s" (Frame.error_to_string e)
    in
    let dec = Frame.Decoder.create () in
    Frame.Decoder.feed dec
      (Bytes.of_string frame)
      ~off:0 ~len:(String.length frame);
    match Frame.Decoder.next dec with
    | `Payload (Proto.Cl_reply { rid = 7; ok = true; body = body' }) ->
        let snap' = Snapshot.of_json (Gc_obs.Json.of_string body') in
        (* JSON exposition drops zero-valued entries by default, so the
           expectation is the local JSON round-trip, not the raw capture. *)
        Alcotest.(check (list string))
          "names survive the wire"
          (Snapshot.names (Snapshot.of_json (Snapshot.to_json snap)))
          (Snapshot.names snap');
        List.iter
          (fun name ->
            Alcotest.(check int)
              (name ^ " counter survives")
              (Snapshot.counter snap name)
              (Snapshot.counter snap' name))
          [ "abcast.delivered"; "rbcast.delivered"; "consensus.instances_decided" ];
        Alcotest.(check (float 1e-9))
          "latency p99 estimate survives"
          (Snapshot.quantile snap "abcast.latency_ms" 0.99)
          (Snapshot.quantile snap' "abcast.latency_ms" 0.99)
    | _ -> Alcotest.fail "stats reply did not round-trip the frame codec"

  (* The batching obligation (DESIGN.md Section 15): every backend must
     route submissions through the batcher (the stack default is
     [batch_max = 64]) and expose the batching telemetry — the same wire
     vocabulary ([Gb_fast_batch]/[Ab_submit] and their singleton
     degenerations) on sim and TCP alike. *)
  let test_batching_engaged () =
    let _, metrics = B.run_scenario () in
    let module M = Gc_obs.Metrics in
    Alcotest.(check bool)
      "gbcast submissions ride the batcher" true
      (M.hist_count metrics "gbcast.batch_size" > 0);
    Alcotest.(check bool)
      "cut traffic rides the abcast submit batcher" true
      (M.hist_count metrics "abcast.submit_batch_size" > 0);
    Alcotest.(check bool)
      "conflict-class occupancy gauge exposed" true
      (List.mem "gbcast.conflict_class_occupancy" (M.names metrics))

  let cases =
    Alcotest.test_case
      (Printf.sprintf "%s: one total order, complete delivery" B.name)
      `Quick test_agreement
    :: Alcotest.test_case
         (Printf.sprintf "%s: stats snapshot wire round-trip" B.name)
         `Quick test_stats_roundtrip
    :: Alcotest.test_case
         (Printf.sprintf "%s: submission batching engaged" B.name)
         `Quick test_batching_engaged
    ::
    (if B.deterministic then
       [
         Alcotest.test_case
           (Printf.sprintf "%s: bit-identical replay" B.name)
           `Quick test_determinism;
       ]
     else [])
end

module Sim_conf = Conformance (Sim_backend)
module Unix_conf = Conformance (Unix_backend)

let suite = [ ("conformance", Sim_conf.cases @ Unix_conf.cases) ]
