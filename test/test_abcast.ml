(* Tests for atomic broadcast: uniform total order, agreement, integrity,
   progress under crash and under wrong suspicions, dynamic member sets. *)

module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Process = Gc_kernel.Process
module Ab = Gc_abcast.Atomic_broadcast
open Support

type Gc_net.Payload.t += App of int

let as_app = function App k -> k | _ -> Alcotest.fail "unexpected payload"

let build ?(suspect_timeout = 200.0) w =
  let n = Array.length w.nodes in
  let logs = Array.make n [] in
  let abs =
    Array.mapi
      (fun i node ->
        let ab =
          Ab.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd
            ~suspect_timeout ~members:(ids n) ()
        in
        Ab.on_deliver ab (fun ~origin payload ->
            logs.(i) <- (origin, as_app payload) :: logs.(i));
        ab)
      w.nodes
  in
  (abs, logs)

let seq logs i = List.rev logs.(i)

(* Total order: one sequence is a prefix of the other (all-correct case:
   equality). *)
let assert_same_sequences ?(allow_prefix = false) logs is =
  match is with
  | [] -> ()
  | first :: rest ->
      let ref_seq = seq logs first in
      List.iter
        (fun i ->
          let s = seq logs i in
          if allow_prefix then begin
            let shorter, longer =
              if List.length s <= List.length ref_seq then (s, ref_seq)
              else (ref_seq, s)
            in
            let rec is_prefix a b =
              match (a, b) with
              | [], _ -> true
              | x :: xs, y :: ys -> x = y && is_prefix xs ys
              | _ :: _, [] -> false
            in
            check_bool "prefix order" true (is_prefix shorter longer)
          end
          else check_bool "same sequence" true (s = ref_seq))
        rest

let test_single_broadcast () =
  let w = make_world ~n:3 () in
  let abs, logs = build w in
  Ab.abcast abs.(0) (App 1);
  run_until w 10_000.0;
  for i = 0 to 2 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "node %d" i)
      [ (0, 1) ] (seq logs i)
  done

let test_total_order_concurrent_senders () =
  for_seeds ~count:8 (fun seed ->
      let w = make_world ~seed ~n:3 () in
      let abs, logs = build w in
      (* All nodes broadcast concurrently, several messages each. *)
      for k = 0 to 4 do
        Array.iteri
          (fun i ab ->
            ignore
              (Engine.schedule w.engine ~delay:(float_of_int (k * 7)) (fun () ->
                   Ab.abcast ab (App ((i * 100) + k)))))
          abs
      done;
      run_until w 60_000.0;
      check_int "all 15 delivered" 15 (List.length (seq logs 0));
      assert_same_sequences logs [ 0; 1; 2 ])

let test_integrity_no_duplicates () =
  let w = make_world ~seed:3L ~drop:0.2 ~n:3 () in
  let abs, logs = build w in
  for k = 0 to 9 do
    Ab.abcast abs.(k mod 3) (App k)
  done;
  run_until w 120_000.0;
  for i = 0 to 2 do
    let s = seq logs i in
    check_int "ten delivered" 10 (List.length s);
    check_int "no duplicates" 10 (List.length (List.sort_uniq compare s))
  done;
  assert_same_sequences logs [ 0; 1; 2 ]

let test_progress_with_crash () =
  for_seeds ~count:8 (fun seed ->
      let w = make_world ~seed ~n:3 () in
      let abs, logs = build w in
      Ab.abcast abs.(0) (App 1);
      Ab.abcast abs.(1) (App 2);
      ignore
        (Engine.schedule w.engine ~delay:3.0 (fun () ->
             Process.crash w.nodes.(0).proc));
      ignore
        (Engine.schedule w.engine ~delay:1000.0 (fun () ->
             Ab.abcast abs.(1) (App 3);
             Ab.abcast abs.(2) (App 4)));
      run_until w 60_000.0;
      (* Survivors agree; the post-crash broadcasts must get through. *)
      assert_same_sequences logs [ 1; 2 ];
      let s = seq logs 1 in
      check_bool "post-crash message delivered" true
        (List.exists (fun (_, v) -> v = 3) s && List.exists (fun (_, v) -> v = 4) s))

let test_wrong_suspicion_only_delays () =
  (* A delay spike triggers wrong suspicions; nothing is excluded and all
     messages still get totally ordered. *)
  let w = make_world ~seed:17L ~n:3 () in
  let abs, logs = build ~suspect_timeout:80.0 w in
  Netsim.delay_spike w.net ~nodes:[ 0 ] ~until:400.0 ~extra:200.0;
  for k = 0 to 5 do
    Ab.abcast abs.(k mod 3) (App k)
  done;
  run_until w 60_000.0;
  check_int "all delivered" 6 (List.length (seq logs 0));
  assert_same_sequences logs [ 0; 1; 2 ]

let test_uniform_prefix_on_crash_mid_delivery () =
  (* Whatever a process delivered before crashing must be a prefix of what
     the survivors deliver (uniform total order). *)
  for_seeds ~count:10 (fun seed ->
      let w = make_world ~seed ~n:3 ~drop:0.05 () in
      let abs, logs = build w in
      for k = 0 to 7 do
        Ab.abcast abs.(k mod 3) (App k)
      done;
      ignore
        (Engine.schedule w.engine ~delay:30.0 (fun () ->
             Process.crash w.nodes.(2).proc));
      run_until w 120_000.0;
      assert_same_sequences logs [ 0; 1 ];
      assert_same_sequences ~allow_prefix:true logs [ 0; 2 ])

let test_member_change_applies () =
  let w = make_world ~n:4 () in
  let abs, logs = build w in
  (* Shrink to three members at a fixed point of the total order by having
     every node react to the marker message. *)
  Array.iteri
    (fun _i ab ->
      Ab.on_deliver ab (fun ~origin:_ payload ->
          match payload with
          | App 99 -> Ab.set_members ab [ 0; 1; 2 ]
          | _ -> ()))
    abs;
  Ab.abcast abs.(0) (App 1);
  run_until w 5_000.0;
  Ab.abcast abs.(0) (App 99);
  run_until w 10_000.0;
  check_list_int "members updated" [ 0; 1; 2 ] (Ab.members abs.(0));
  (* Messages after the change still flow among the remaining members. *)
  Ab.abcast abs.(1) (App 2);
  run_until w 20_000.0;
  assert_same_sequences logs [ 0; 1; 2 ];
  check_int "three messages at node 0" 3 (List.length (seq logs 0))

let test_latency_failure_free () =
  (* Sanity envelope: with ~1.5 ms links an abcast should deliver within a
     few round trips, far below the failure-detection timeout. *)
  let w = make_world ~n:3 () in
  let abs, _logs = build w in
  let delivered_at = ref nan in
  Ab.on_deliver abs.(2) (fun ~origin:_ _ -> delivered_at := Engine.now w.engine);
  ignore
    (Engine.schedule w.engine ~delay:100.0 (fun () -> Ab.abcast abs.(0) (App 1)));
  run_until w 10_000.0;
  check_bool
    (Printf.sprintf "latency %.1fms < 30ms" (!delivered_at -. 100.0))
    true
    (!delivered_at -. 100.0 < 30.0)

let test_bootstrap_purges_pending () =
  (* Regression (state transfer): ids transferred as already-delivered must
     also be purged from the joiner's pending set, or every subsequent
     proposal re-proposes them forever. *)
  let w = make_world ~n:3 () in
  let abs, logs = build w in
  let links = [ (0, 2); (1, 2); (2, 0); (2, 1) ] in
  let set_drop d =
    List.iter (fun (src, dst) -> Netsim.set_link w.net ~src ~dst ~drop:d ()) links
  in
  Ab.abcast abs.(0) (App 1);
  (* Cut node 2 off after it has rdelivered the payload (~1.5 ms) but
     before the instance-0 decision reaches it (several round trips). *)
  ignore (Engine.schedule w.engine ~delay:3.0 (fun () -> set_drop 1.0));
  run_until w 10_000.0;
  check_int "survivors delivered" 1 (List.length (seq logs 0));
  check_int "node 2 missed the decision" 0 (List.length (seq logs 2));
  check_int "straggler parked in node 2's pending" 1 (Ab.pending_count abs.(2));
  (* State transfer from node 0, then heal the partition. *)
  Ab.bootstrap abs.(2)
    ~next_instance:(Ab.next_instance abs.(0))
    ~members:(Ab.members abs.(0))
    ~delivered:(Ab.delivered_ids abs.(0));
  check_int "transferred ids purged from pending" 0 (Ab.pending_count abs.(2));
  set_drop 0.0;
  Ab.abcast abs.(1) (App 2);
  run_until w 40_000.0;
  (* The transferred id must not resurface: not in pending, not delivered
     twice anywhere, and the joiner delivers only the post-transfer
     message. *)
  check_int "pending still clean" 0 (Ab.pending_count abs.(2));
  assert_same_sequences logs [ 0; 1 ];
  Alcotest.(check (list (pair int int)))
    "node 0 delivered each exactly once"
    [ (0, 1); (1, 2) ]
    (seq logs 0);
  Alcotest.(check (list (pair int int)))
    "joiner delivered only the post-transfer message"
    [ (1, 2) ]
    (seq logs 2)

let prop_total_order_random =
  QCheck.Test.make ~name:"abcast total order across random schedules" ~count:10
    QCheck.(pair small_nat (float_bound_inclusive 0.15))
    (fun (seed, drop) ->
      let n = 3 in
      let w = make_world ~seed:(Int64.of_int ((seed * 31) + 7)) ~drop ~n () in
      let abs, logs = build w in
      for k = 0 to 8 do
        let i = k mod n in
        ignore
          (Engine.schedule w.engine ~delay:(float_of_int (k * 3)) (fun () ->
               Ab.abcast abs.(i) (App k)))
      done;
      Engine.run ~until:120_000.0 w.engine;
      List.length (seq logs 0) = 9
      && seq logs 0 = seq logs 1
      && seq logs 1 = seq logs 2)

let suite =
  [
    ( "abcast",
      [
        Alcotest.test_case "single broadcast" `Quick test_single_broadcast;
        Alcotest.test_case "total order concurrent senders" `Slow
          test_total_order_concurrent_senders;
        Alcotest.test_case "integrity no duplicates" `Quick
          test_integrity_no_duplicates;
        Alcotest.test_case "progress with crash" `Slow test_progress_with_crash;
        Alcotest.test_case "wrong suspicion only delays" `Quick
          test_wrong_suspicion_only_delays;
        Alcotest.test_case "uniform prefix on crash" `Slow
          test_uniform_prefix_on_crash_mid_delivery;
        Alcotest.test_case "member change applies" `Quick test_member_change_applies;
        Alcotest.test_case "failure-free latency envelope" `Quick
          test_latency_failure_free;
        Alcotest.test_case "bootstrap purges pending (state transfer)" `Quick
          test_bootstrap_purges_pending;
        QCheck_alcotest.to_alcotest prop_total_order_random;
      ] );
  ]
