(* D2 fixture: physical equality in protocol code.  Expected findings:
   line 6 (==), line 7 (!=). *)

type msg = { id : int; body : string }

let same (a : msg) (b : msg) = a == b
let distinct (a : msg) (b : msg) = a != b
let ok (a : msg) (b : msg) = a.id = b.id
