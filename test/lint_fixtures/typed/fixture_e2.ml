(* Planted E2 violations: a metric name outside Catalog.metrics (a typo
   mints a dead time series) and a catalogued counter recorded through a
   histogram API (kind mismatch).  The catalogued call stays silent. *)

module Metrics = Gc_obs.Metrics

let _record m =
  Metrics.incr m "fixture.not_in_catalog";
  Metrics.observe m "abcast.delivered" 1.0;
  Metrics.incr m "abcast.delivered"
