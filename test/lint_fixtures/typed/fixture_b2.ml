(* Planted B2 violation: a message handler that raises with nothing
   catching it — the exception unwinds through the event loop mid-state
   mutation.  The [try]-protected raise below it must stay silent. *)

module Process = Gc_kernel.Process

let _install proc =
  Process.on_receive proc (fun ~src:_ _payload -> failwith "boom")

let _protected proc =
  Process.on_receive proc (fun ~src:_ _payload ->
      try failwith "caught locally" with Failure _ -> ())
