(* Planted W3 violations: [Fz_missing] is declared next to a codec but
   has no encoder arm, and no printer anywhere prints it.  [Fz_seen] is
   fully covered and must stay silent. *)

type Gc_net.Payload.t += Fz_seen of int | Fz_missing of int

let _register () =
  let module W = Gc_net.Wire in
  Gc_net.Payload.register_codec ~tag:"fz"
    ~encode:(fun _enc w p ->
      match p with
      | Fz_seen n ->
          W.varint w n;
          true
      | _ -> false)
    ~decode:(fun _dec r -> Fz_seen (W.read_varint r));
  Gc_net.Payload.register_printer (function
    | Fz_seen n -> Some (Printf.sprintf "fz[%d]" n)
    | _ -> None)
