(* Planted B1 violation: a read callback reaches [Unix.sleep] through two
   ordinary calls.  The unit never calls [Unix.set_nonblock], and sleep
   is a hard blocker anyway — the loop would stall for a full second. *)

module Evloop = Gc_runtime_unix.Evloop

let slow_step () = Unix.sleep 1
let helper () = slow_step ()

let _install loop fd =
  Evloop.set_read loop fd (Some (fun () -> helper ()))
