(* Planted W2 violations: a duplicate u8 discriminator inside one
   encoder, a decode case with no matching encoder arm, and a string tag
   registered twice.  Printers cover both constructors so W3 stays out of
   this fixture. *)

type Gc_net.Payload.t += Fw_a of int | Fw_b of int

let _register () =
  let module W = Gc_net.Wire in
  Gc_net.Payload.register_codec ~tag:"fw"
    ~encode:(fun _enc w p ->
      match p with
      | Fw_a n ->
          W.u8 w 0;
          W.varint w n;
          true
      | Fw_b n ->
          W.u8 w 0 (* duplicate discriminator: collides with Fw_a *);
          W.varint w n;
          true
      | _ -> false)
    ~decode:(fun _dec r ->
      match W.read_u8 r with
      | 0 -> Fw_a (W.read_varint r)
      | 2 -> Fw_b (W.read_varint r) (* no encoder ever writes 2 *)
      | _ -> Gc_net.Payload.malformed "fixture")

let _register_same_tag_again () =
  Gc_net.Payload.register_codec ~tag:"fw"
    ~encode:(fun _enc _w _p -> false)
    ~decode:(fun _dec _r -> Gc_net.Payload.malformed "fixture")

let _printers () =
  Gc_net.Payload.register_printer (function
    | Fw_a n -> Some (Printf.sprintf "fw_a[%d]" n)
    | Fw_b n -> Some (Printf.sprintf "fw_b[%d]" n)
    | _ -> None)
