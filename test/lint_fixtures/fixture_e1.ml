(* E1 fixture: event discipline.  Expected findings: line 9 (unregistered
   component), line 12 (msg id with a foreign prefix), line 15 (msg not
   statically checkable).  Line 18 is clean. *)

let event ~component:_ ~kind:_ ?msg:_ ?attrs:_ () = ()
module Process = struct let event = event end

let bad_component t =
  ignore t; Process.event ~component:"flux" ~kind:"send" ()

let bad_prefix seq =
  Process.event ~component:"rchannel" ~kind:"send" ~msg:(Printf.sprintf "xx:%d" seq) ()

let opaque_msg s =
  Process.event ~component:"rchannel" ~kind:"send" ~msg:s ()

let ok seq =
  Process.event ~component:"rchannel" ~kind:"send" ~msg:(Printf.sprintf "rc:%d" seq) ()
