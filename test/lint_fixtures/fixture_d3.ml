(* D3 fixture: unordered Hashtbl traversal.  Expected findings:
   line 8 (Hashtbl.iter), line 11 (Hashtbl.fold).  Lines 14, 17 and 22 are
   sanctioned (fold piped straight into a sort) and line 24 goes through
   Gc_sim.Sorted, so none of those may fire. *)

let h : (int, string) Hashtbl.t = Hashtbl.create 8

let bad_iter f = Hashtbl.iter f h

let bad_fold () =
  Hashtbl.fold (fun k _ acc -> k :: acc) h []

let ok_direct () =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])

let ok_pipe () =
  Hashtbl.fold (fun k _ acc -> k :: acc) h []
  |> List.sort Int.compare

let ok_at () =
  List.sort Int.compare
  @@ Hashtbl.fold (fun k _ acc -> k :: acc) h []

let ok_sorted () = Gc_sim.Sorted.keys h
