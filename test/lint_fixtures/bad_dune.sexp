; Deliberately non-conforming dune stanza for the L1 test: the AB-GB
; consensus layer reaching down into the competing totem stack, pulling an
; undeclared external, and a library the spec has never heard of.
; (Named .sexp so dune itself never reads it.)
(library
 (name gc_consensus)
 (libraries gc_sim gc_net gc_kernel gc_totem lwt fmt))

(library
 (name gc_mystery)
 (libraries gc_sim))
