(* Waiver fixture.  The D3 at line 9 is waived with a reason; the waiver
   above line 12 names the wrong rule so that D3 stays live; the waiver at
   line 14 has no reason, so line 15's D3 and a W1 both surface; the D2 at
   line 18 is not covered by anything. *)

let h : (int, int) Hashtbl.t = Hashtbl.create 8

(* gcs-lint: allow D3 -- commutative sum, order cannot matter *)
let total () = Hashtbl.fold (fun _ v acc -> v + acc) h 0

(* gcs-lint: allow D4 -- reason names the wrong rule on purpose *)
let keys () = Hashtbl.fold (fun k _ acc -> k :: acc) h []

(* gcs-lint: allow D3 *)
let count () = Hashtbl.fold (fun _ _ acc -> acc + 1) h 0

type m = { id : int }
let same (a : m) (b : m) = a == b
