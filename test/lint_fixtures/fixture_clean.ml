(* Negative fixture: protocol-style code with zero findings. *)

type msg = { id : int; gseq : int }

let by_gseq a b = Int.compare a.gseq b.gseq

let deliverable (h : (int, msg) Hashtbl.t) =
  List.sort by_gseq (Gc_sim.Sorted.values h)

let member (m : msg) (ids : int list) = List.mem m.id ids
