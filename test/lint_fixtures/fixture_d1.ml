(* D1 fixture: ambient nondeterminism.  Expected findings:
   line 6 (Random.int), line 7 (Sys.time), line 8 (Unix.gettimeofday). *)

let _unused_placeholder = ()

let roll () = Random.int 6
let now () = Sys.time ()
let wall () = Unix.gettimeofday ()
