(* D4 fixture: bare polymorphic compare at call sites.  Expected findings:
   line 5 (List.sort compare), line 7 (List.sort_uniq Stdlib.compare),
   line 9 (compare as a function argument).  Line 11 is typed and clean. *)

let a (l : int list) = List.sort compare l

let b (l : int list) = List.sort_uniq Stdlib.compare l

let c (l : int list list) = List.map (List.sort compare) l

let ok (l : int list) = List.sort Int.compare l
