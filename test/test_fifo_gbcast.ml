(* Tests for the FIFO generic-broadcast wrapper (paper footnote 9): FIFO
   per origin on top of generic order. *)

module Engine = Gc_sim.Engine
module Process = Gc_kernel.Process
module Ab = Gc_abcast.Atomic_broadcast
module Gb = Gc_gbcast.Generic_broadcast
module Fgb = Gc_gbcast.Fifo_generic_broadcast
module Conflict = Gc_gbcast.Conflict
open Support

type Gc_net.Payload.t += U of int | O of int

let value = function U k | O k -> k | _ -> Alcotest.fail "unexpected payload"
let is_ordered = function O _ -> true | _ -> false

let classify = function
  | U _ -> Conflict.Commuting
  | _ -> Conflict.Ordered

let build ?(delay = Gc_net.Delay.Uniform { lo = 1.0; hi = 30.0 }) ~seed ~n () =
  let w = make_world ~seed ~delay ~n () in
  let logs = Array.make n [] in
  let fgbs =
    Array.mapi
      (fun i node ->
        let ab =
          Ab.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd ~members:(ids n)
            ()
        in
        let gb =
          Gb.create node.proc ~rc:node.rc ~rb:node.rb ~ab
            ~conflict:(Fgb.lift (Conflict.of_relation (Conflict.by_class ~classify)))
            ~members:(ids n) ()
        in
        let fgb = Fgb.create gb in
        Fgb.on_deliver fgb (fun ~origin payload ->
            logs.(i) <- (origin, payload) :: logs.(i));
        fgb)
      w.nodes
  in
  (w, fgbs, logs)

let seq logs i = List.rev logs.(i)

let test_fifo_per_origin () =
  (* High delay variance reorders commuting messages in the raw stream; the
     wrapper restores per-origin sending order. *)
  for_seeds ~count:8 (fun seed ->
      let w, fgbs, logs = build ~seed ~n:3 () in
      for k = 0 to 9 do
        Fgb.gbcast fgbs.(0) (U k)
      done;
      run_until w 60_000.0;
      for i = 0 to 2 do
        let from0 =
          seq logs i |> List.filter (fun (o, _) -> o = 0) |> List.map snd
          |> List.map value
        in
        check_list_int
          (Printf.sprintf "origin-0 FIFO at node %d" i)
          (List.init 10 (fun k -> k))
          from0
      done)

let test_fifo_and_generic_order_together () =
  for_seeds ~count:8 (fun seed ->
      let w, fgbs, logs = build ~seed ~n:3 () in
      for k = 0 to 11 do
        let p = if k mod 4 = 0 then O k else U k in
        ignore
          (Engine.schedule w.engine ~delay:(float_of_int (k * 2)) (fun () ->
               Fgb.gbcast fgbs.(k mod 3) p))
      done;
      run_until w 60_000.0;
      (* 1. everyone delivered everything *)
      for i = 0 to 2 do
        check_int "all delivered" 12 (List.length (seq logs i))
      done;
      (* 2. per-origin FIFO at every node *)
      for i = 0 to 2 do
        for o = 0 to 2 do
          let from_o =
            seq logs i |> List.filter (fun (x, _) -> x = o)
            |> List.map (fun (_, p) -> value p)
          in
          check_bool "per-origin monotone" true
            (from_o = List.sort compare from_o)
        done
      done;
      (* 3. conflicting pairs ordered consistently *)
      let pos i =
        let tbl = Hashtbl.create 16 in
        List.iteri (fun idx (_, p) -> Hashtbl.replace tbl (value p) (idx, p))
          (seq logs i);
        tbl
      in
      let p0 = pos 0 in
      List.iter
        (fun i ->
          let pi = pos i in
          Hashtbl.iter
            (fun v (idx, p) ->
              Hashtbl.iter
                (fun v' (idx', p') ->
                  if v < v' && (is_ordered p || is_ordered p') then
                    match (Hashtbl.find_opt pi v, Hashtbl.find_opt pi v') with
                    | Some (j, _), Some (j', _) ->
                        check_bool
                          (Printf.sprintf "pair %d/%d" v v')
                          true
                          (compare idx idx' = compare j j')
                    | _ -> Alcotest.fail "missing")
                p0)
            p0)
        [ 1; 2 ])

let test_nothing_left_held () =
  let w, fgbs, logs = build ~seed:3L ~n:3 () in
  for k = 0 to 7 do
    Fgb.gbcast fgbs.(k mod 3) (U k)
  done;
  run_until w 60_000.0;
  for i = 0 to 2 do
    check_int "delivered all" 8 (List.length (seq logs i));
    check_int "nothing held" 0 (Fgb.held_count fgbs.(i))
  done

let suite =
  [
    ( "fifo-gbcast",
      [
        Alcotest.test_case "fifo per origin" `Slow test_fifo_per_origin;
        Alcotest.test_case "fifo + generic order together" `Slow
          test_fifo_and_generic_order_together;
        Alcotest.test_case "nothing left held" `Quick test_nothing_left_held;
      ] );
  ]
