(* Tests for the membership layer over atomic broadcast: agreed view
   sequences, joins with state transfer, removes (including self), batch
   changes, and the View data type. *)

module Engine = Gc_sim.Engine
module Process = Gc_kernel.Process
module Ab = Gc_abcast.Atomic_broadcast
module View = Gc_membership.View
module Gm = Gc_membership.Group_membership
open Support

type Gc_net.Payload.t += Snapshot of int

(* Membership wired directly over atomic broadcast (the overview architecture
   of Figure 6); the full stack routes it through generic broadcast
   instead. *)
let build ?(founders = fun _ -> true) ?(state_of = fun _ -> Snapshot 0) w =
  let n = Array.length w.nodes in
  let all = ids n in
  let views = Array.make n [] in
  let installed = Array.make n None in
  let gms =
    Array.mapi
      (fun i node ->
        let members = List.filter founders all in
        let ab =
          Ab.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd ~members ()
        in
        let transport =
          {
            Gm.broadcast = (fun payload -> Ab.abcast ab payload);
            subscribe = (fun f -> Ab.on_deliver ab f);
          }
        in
        let gm =
          Gm.create node.proc ~rc:node.rc ~transport
            ~state_provider:(fun ~have:_ -> state_of i)
            ~state_installer:(fun s -> installed.(i) <- Some s)
            ~initial:(View.initial members) ()
        in
        Gm.on_view gm (fun v -> views.(i) <- v :: views.(i));
        Gm.on_view gm (fun v -> Ab.set_members ab v.View.members);
        gm)
      w.nodes
  in
  (gms, views, installed)

let view_seq views i = List.rev_map (fun v -> v.View.members) views.(i)

let test_view_basics () =
  let v = View.initial [ 3; 1; 2 ] in
  Alcotest.(check (option int)) "primary" (Some 3) (View.primary v);
  check_int "size" 3 (View.size v);
  let v' = View.apply v ~adds:[ 4; 1 ] ~removes:[ 2; 9 ] in
  check_list_int "apply" [ 3; 1; 4 ] v'.View.members;
  check_int "vid bumped" 1 v'.View.vid;
  let r = View.rotate v in
  check_list_int "rotate" [ 1; 2; 3 ] r.View.members;
  check_int "rotate keeps vid" 0 r.View.vid;
  Alcotest.(check (option int)) "empty primary" None (View.primary (View.initial []))

let test_remove_installs_same_views () =
  let w = make_world ~n:4 () in
  let gms, views, _ = build w in
  Gm.remove gms.(0) 3;
  run_until w 10_000.0;
  for i = 0 to 2 do
    Alcotest.(check (list (list int)))
      (Printf.sprintf "views at %d" i)
      [ [ 0; 1; 2 ] ] (view_seq views i)
  done;
  check_bool "removed process learns it left" true (Gm.left gms.(3))

let test_concurrent_removes_agree () =
  for_seeds ~count:8 (fun seed ->
      let w = make_world ~seed ~n:5 () in
      let gms, views, _ = build w in
      (* Two members propose different removals concurrently; everyone must
         install the same view sequence. *)
      Gm.remove gms.(0) 4;
      Gm.remove gms.(1) 3;
      run_until w 20_000.0;
      let s0 = view_seq views 0 in
      check_int "two view changes" 2 (List.length s0);
      for i = 1 to 2 do
        Alcotest.(check (list (list int))) "same view sequence" s0 (view_seq views i)
      done)

let test_duplicate_remove_ignored () =
  let w = make_world ~n:3 () in
  let gms, views, _ = build w in
  Gm.remove gms.(0) 2;
  Gm.remove gms.(1) 2;
  run_until w 10_000.0;
  (* Both proposals race; only one view change results. *)
  Alcotest.(check (list (list int))) "one change" [ [ 0; 1 ] ] (view_seq views 0)

let test_join_with_state_transfer () =
  let w = make_world ~n:4 () in
  (* Node 3 is not a founder; it joins via node 0. *)
  let gms, views, installed =
    build ~founders:(fun i -> i < 3) ~state_of:(fun i -> Snapshot (100 + i)) w
  in
  check_bool "not joined yet" false (Gm.joined gms.(3));
  Gm.join gms.(3) ~via:0;
  run_until w 20_000.0;
  check_bool "joined" true (Gm.joined gms.(3));
  (match installed.(3) with
  | Some (Snapshot s) -> check_bool "snapshot from sponsor" true (s = 100)
  | _ -> Alcotest.fail "no snapshot installed");
  (* All members and the joiner agree on the final view. *)
  let final i = (Gm.view gms.(i)).View.members in
  for i = 0 to 3 do
    check_list_int (Printf.sprintf "final view at %d" i) [ 0; 1; 2; 3 ] (final i)
  done;
  check_bool "joiner saw its first view" true (view_seq views 3 <> [])

let test_member_add_api () =
  let w = make_world ~n:3 () in
  let gms, _views, _ = build ~founders:(fun i -> i < 2) w in
  Gm.add gms.(1) 2;
  run_until w 20_000.0;
  check_list_int "added" [ 0; 1; 2 ] (Gm.view gms.(0)).View.members;
  check_bool "new member joined" true (Gm.joined gms.(2))

let test_join_remove_list_batch () =
  let w = make_world ~n:4 () in
  let gms, views, _ = build ~founders:(fun i -> i < 3) w in
  Gm.join_remove_list gms.(0) ~adds:[ 3 ] ~removes:[ 2 ];
  run_until w 20_000.0;
  (* A single view change applies both operations. *)
  Alcotest.(check (list (list int))) "one batched change" [ [ 0; 1; 3 ] ]
    (view_seq views 0);
  check_bool "removed" true (Gm.left gms.(2));
  check_bool "added" true (Gm.joined gms.(3))

let test_remove_self_leaves () =
  let w = make_world ~n:3 () in
  let gms, _views, _ = build w in
  Gm.remove gms.(2) 2;
  run_until w 10_000.0;
  check_bool "left" true (Gm.left gms.(2));
  check_list_int "others go on" [ 0; 1 ] (Gm.view gms.(0)).View.members

let test_same_view_delivery () =
  (* Same view delivery (Section 4.4): every process delivers each message in
     the same view.  We tag each delivery with the current vid and compare. *)
  for_seeds ~count:6 (fun seed ->
      let w = make_world ~seed ~n:4 () in
      let n = 4 in
      let tags = Array.make n [] in
      let abs =
        Array.map
          (fun node ->
            Ab.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd
              ~members:(ids n) ())
          w.nodes
      in
      let gms =
        Array.mapi
          (fun i node ->
            let transport =
              {
                Gm.broadcast = (fun payload -> Ab.abcast abs.(i) payload);
                subscribe = (fun f -> Ab.on_deliver abs.(i) f);
              }
            in
            let gm =
              Gm.create node.proc ~rc:node.rc ~transport
                ~initial:(View.initial (ids n)) ()
            in
            Gm.on_view gm (fun v -> Ab.set_members abs.(i) v.View.members);
            gm)
          w.nodes
      in
      Array.iteri
        (fun i ab ->
          Ab.on_deliver ab (fun ~origin:_ payload ->
              match payload with
              | Snapshot k ->
                  tags.(i) <- (k, (Gm.view gms.(i)).View.vid) :: tags.(i)
              | _ -> ()))
        abs;
      (* Interleave application messages with a view change. *)
      for k = 0 to 5 do
        ignore
          (Engine.schedule w.engine ~delay:(float_of_int (k * 4)) (fun () ->
               Ab.abcast abs.(k mod 3) (Snapshot k)))
      done;
      ignore
        (Engine.schedule w.engine ~delay:10.0 (fun () -> Gm.remove gms.(0) 3));
      run_until w 30_000.0;
      let at i = List.sort compare tags.(i) in
      for i = 1 to 2 do
        Alcotest.(check (list (pair int int)))
          "same (message, view) pairs" (at 0) (at i)
      done)

let prop_view_apply =
  QCheck.Test.make ~name:"View.apply: vid bumps, removes gone, adds appended"
    ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 6) (int_bound 9))
        (list_of_size Gen.(0 -- 4) (int_bound 9))
        (list_of_size Gen.(0 -- 4) (int_bound 9)))
    (fun (members, adds, removes) ->
      let members = List.sort_uniq compare members in
      let v = View.initial members in
      let v' = View.apply v ~adds ~removes in
      v'.View.vid = v.View.vid + 1
      && List.for_all (fun q -> not (View.mem v' q)) removes
      && List.for_all
           (fun p -> List.mem p removes || View.mem v' p)
           (members @ adds)
      (* no duplicates *)
      && List.length v'.View.members
         = List.length (List.sort_uniq compare v'.View.members))

let prop_view_rotate =
  QCheck.Test.make ~name:"View.rotate preserves membership and size" ~count:200
    QCheck.(list_of_size Gen.(0 -- 8) small_nat)
    (fun members ->
      let members = List.sort_uniq compare members in
      let v = View.initial members in
      let r = View.rotate v in
      View.size r = View.size v
      && List.sort compare r.View.members = List.sort compare v.View.members
      && (View.size v < 2 || View.primary r <> View.primary v))

let suite =
  [
    ( "membership",
      [
        Alcotest.test_case "view basics" `Quick test_view_basics;
        Alcotest.test_case "remove installs same views" `Quick
          test_remove_installs_same_views;
        Alcotest.test_case "concurrent removes agree" `Slow
          test_concurrent_removes_agree;
        Alcotest.test_case "duplicate remove ignored" `Quick
          test_duplicate_remove_ignored;
        Alcotest.test_case "join with state transfer" `Quick
          test_join_with_state_transfer;
        Alcotest.test_case "member add api" `Quick test_member_add_api;
        Alcotest.test_case "join_remove_list batch" `Quick
          test_join_remove_list_batch;
        Alcotest.test_case "remove self leaves" `Quick test_remove_self_leaves;
        Alcotest.test_case "same view delivery" `Slow test_same_view_delivery;
        QCheck_alcotest.to_alcotest prop_view_apply;
        QCheck_alcotest.to_alcotest prop_view_rotate;
      ] );
  ]
