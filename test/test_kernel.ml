(* Tests for the process context: dispatch, guarded timers, crash hooks. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Delay = Gc_net.Delay
module Netsim = Gc_net.Netsim
module Process = Gc_kernel.Process

type Gc_net.Payload.t += Token of int

let make n =
  let engine = Engine.create ~seed:3L () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~delay:(Delay.Constant 1.0) ~n () in
  let procs = Array.init n (fun id -> Process.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id) in
  (engine, net, procs)

let test_fanout_dispatch () =
  let engine, _net, procs = make 2 in
  let hits = ref 0 in
  Process.on_receive procs.(1) (fun ~src:_ _ -> incr hits);
  Process.on_receive procs.(1) (fun ~src:_ _ -> incr hits);
  Process.send procs.(0) ~dst:1 (Token 1);
  Engine.run engine;
  Support.check_int "both subscribers saw it" 2 !hits

let test_dispatch_order_is_stack_order () =
  let engine, _net, procs = make 2 in
  let order = ref [] in
  Process.on_receive procs.(1) (fun ~src:_ _ -> order := 1 :: !order);
  Process.on_receive procs.(1) (fun ~src:_ _ -> order := 2 :: !order);
  Process.send procs.(0) ~dst:1 (Token 1);
  Engine.run engine;
  Support.check_list_int "subscription order preserved" [ 1; 2 ] (List.rev !order)

let test_timer_guarded_by_crash () =
  let engine, _net, procs = make 1 in
  let fired = ref false in
  ignore (Process.timer procs.(0) ~delay:10.0 (fun () -> fired := true));
  ignore (Engine.schedule engine ~delay:5.0 (fun () -> Process.crash procs.(0)));
  Engine.run engine;
  Support.check_bool "timer suppressed after crash" false !fired

let test_periodic_fires_and_cancels () =
  let engine, _net, procs = make 1 in
  let count = ref 0 in
  let handle = Process.every procs.(0) ~period:10.0 (fun () -> incr count) in
  ignore
    (Engine.schedule engine ~delay:55.0 (fun () ->
         Process.cancel_periodic handle));
  Engine.run ~until:200.0 engine;
  Support.check_int "fired until cancelled" 5 !count

let test_periodic_stops_on_crash () =
  let engine, _net, procs = make 1 in
  let count = ref 0 in
  ignore (Process.every procs.(0) ~period:10.0 (fun () -> incr count));
  ignore (Engine.schedule engine ~delay:35.0 (fun () -> Process.crash procs.(0)));
  Engine.run ~until:200.0 engine;
  Support.check_int "stopped at crash" 3 !count

let test_crash_hooks_run_once () =
  let engine, _net, procs = make 1 in
  let hooks = ref [] in
  Process.on_crash procs.(0) (fun () -> hooks := "a" :: !hooks);
  Process.on_crash procs.(0) (fun () -> hooks := "b" :: !hooks);
  Process.crash procs.(0);
  Process.crash procs.(0);
  Engine.run engine;
  Alcotest.(check (list string)) "hooks in order, once" [ "a"; "b" ] (List.rev !hooks)

let test_send_after_crash_noop () =
  let engine, net, procs = make 2 in
  let got = ref 0 in
  Process.on_receive procs.(1) (fun ~src:_ _ -> incr got);
  Process.crash procs.(0);
  Process.send procs.(0) ~dst:1 (Token 1);
  Engine.run engine;
  Support.check_int "nothing sent" 0 !got;
  Support.check_bool "netsim agrees" false (Netsim.alive net 0)

let suite =
  [
    ( "kernel",
      [
        Alcotest.test_case "fanout dispatch" `Quick test_fanout_dispatch;
        Alcotest.test_case "dispatch order" `Quick test_dispatch_order_is_stack_order;
        Alcotest.test_case "timer guarded by crash" `Quick test_timer_guarded_by_crash;
        Alcotest.test_case "periodic fires and cancels" `Quick
          test_periodic_fires_and_cancels;
        Alcotest.test_case "periodic stops on crash" `Quick
          test_periodic_stops_on_crash;
        Alcotest.test_case "crash hooks run once" `Quick test_crash_hooks_run_once;
        Alcotest.test_case "send after crash noop" `Quick test_send_after_crash_noop;
      ] );
  ]
