(* Tests specific to the generic-broadcast quorum modes (DESIGN.md D5):
   All_members keeps everything but the fast path live with f < n/2;
   ordered-class (self-conflicting) messages ride the consensus-backed cut
   and never wait for the fast path. *)

module Engine = Gc_sim.Engine
module Process = Gc_kernel.Process
module Ab = Gc_abcast.Atomic_broadcast
module Gb = Gc_gbcast.Generic_broadcast
module Conflict = Gc_gbcast.Conflict
open Support

type Gc_net.Payload.t += Commute of int | Strict of int

let value = function
  | Commute k | Strict k -> k
  | _ -> Alcotest.fail "unexpected payload"

let classify = function
  | Commute _ -> Conflict.Commuting
  | _ -> Conflict.Ordered

let build ?(ack_mode = Gb.All_members) w =
  let n = Array.length w.nodes in
  let logs = Array.make n [] in
  let gbs =
    Array.mapi
      (fun i node ->
        let ab =
          Ab.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd ~members:(ids n)
            ()
        in
        let gb =
          Gb.create node.proc ~rc:node.rc ~rb:node.rb ~ab
            ~conflict:(Conflict.of_relation (Conflict.by_class ~classify))
            ~ack_mode ~members:(ids n) ()
        in
        Gb.on_deliver gb (fun ~origin:_ payload -> logs.(i) <- payload :: logs.(i));
        gb)
      w.nodes
  in
  (gbs, logs)

let seq logs i = List.rev_map value logs.(i) |> List.rev

let test_all_members_ordered_with_dead_member () =
  (* n = 3, one member dead: Two_thirds would block; All_members routes
     ordered messages through the cut (consensus, f < n/2) and stays live. *)
  for_seeds ~count:6 (fun seed ->
      let w = make_world ~seed ~n:3 () in
      let gbs, logs = build w in
      Process.crash w.nodes.(2).proc;
      Gb.gbcast gbs.(0) (Strict 1);
      Gb.gbcast gbs.(1) (Strict 2);
      run_until w 30_000.0;
      for i = 0 to 1 do
        check_int "both delivered" 2 (List.length (seq logs i))
      done;
      check_bool "same total order" true (seq logs 0 = seq logs 1))

let test_all_members_commuting_blocks_until_exclusion () =
  (* A commuting message with a dead member cannot gather all acks; an
     exclusion (simulated by set_members) releases it. *)
  let w = make_world ~n:3 () in
  let gbs, logs = build w in
  Process.crash w.nodes.(2).proc;
  Gb.gbcast gbs.(0) (Commute 7);
  run_until w 5_000.0;
  check_int "stalled while dead member counted" 0 (List.length (seq logs 1));
  (* Membership above excludes the dead member: an ordered message (as a
     view change would be) sweeps the pending commuting message through the
     cut, and the shrunken quorum applies afterwards. *)
  Gb.set_members gbs.(0) [ 0; 1 ];
  Gb.set_members gbs.(1) [ 0; 1 ];
  Gb.gbcast gbs.(0) (Strict 99);
  run_until w 30_000.0;
  check_bool "released" true (List.mem 7 (seq logs 1));
  check_bool "agreement" true
    (List.sort compare (seq logs 0) = List.sort compare (seq logs 1))

let test_all_members_ordered_never_fast () =
  let w = make_world ~n:3 () in
  let gbs, logs = build w in
  for k = 0 to 4 do
    Gb.gbcast gbs.(k mod 3) (Strict k)
  done;
  run_until w 30_000.0;
  check_int "all delivered" 5 (List.length (seq logs 0));
  check_int "zero fast deliveries" 0 (Gb.fast_delivered_count gbs.(0));
  check_bool "stages advanced" true (Gb.stage gbs.(0) >= 1)

let test_all_members_commuting_is_fast () =
  let w = make_world ~n:3 () in
  let gbs, logs = build w in
  for k = 0 to 4 do
    Gb.gbcast gbs.(k mod 3) (Commute k)
  done;
  run_until w 30_000.0;
  check_int "all delivered" 5 (List.length (seq logs 0));
  check_int "all fast" 5 (Gb.fast_delivered_count gbs.(0));
  check_int "no stage change" 0 (Gb.stage gbs.(0))

let test_generic_order_all_members_mixed () =
  for_seeds ~count:8 (fun seed ->
      let w = make_world ~seed ~n:3 () in
      let gbs, logs = build w in
      for k = 0 to 9 do
        let payload = if k mod 3 = 0 then Strict k else Commute k in
        ignore
          (Engine.schedule w.engine ~delay:(float_of_int (k * 3)) (fun () ->
               Gb.gbcast gbs.(k mod 3) payload))
      done;
      run_until w 60_000.0;
      check_int "all delivered" 10 (List.length (seq logs 0));
      (* Conflicting pairs in consistent relative order everywhere. *)
      let pos i =
        let tbl = Hashtbl.create 16 in
        List.iteri (fun idx v -> Hashtbl.replace tbl v idx) (seq logs i);
        tbl
      in
      let p0 = pos 0 in
      List.iter
        (fun i ->
          let pi = pos i in
          for a = 0 to 9 do
            for b = a + 1 to 9 do
              if a mod 3 = 0 || b mod 3 = 0 then
                match
                  ( Hashtbl.find_opt p0 a, Hashtbl.find_opt p0 b,
                    Hashtbl.find_opt pi a, Hashtbl.find_opt pi b )
                with
                | Some x, Some y, Some x', Some y' ->
                    check_bool
                      (Printf.sprintf "pair %d/%d" a b)
                      true
                      (compare x y = compare x' y')
                | _ -> Alcotest.fail "missing delivery"
            done
          done)
        [ 1; 2 ])

let test_two_thirds_quorum_sizes () =
  (* White-box arithmetic check through behaviour: at n = 4 with one dead
     member, Two_thirds still fast-delivers commuting messages (3 acks =
     quorum). *)
  let w = make_world ~n:4 () in
  let gbs, logs = build ~ack_mode:Gb.Two_thirds w in
  Process.crash w.nodes.(3).proc;
  Gb.gbcast gbs.(0) (Commute 1);
  run_until w 30_000.0;
  for i = 0 to 2 do
    check_int "delivered with 3/4 alive" 1 (List.length (seq logs i))
  done;
  check_bool "fast" true (Gb.fast_delivered_count gbs.(0) >= 1)

(* ---------- conflict-relation properties (random mixes) ----------

   The paper's claim for generic broadcast (Section 4.2): replicas agree
   on everything that conflicts, and consensus is spent only when the
   workload actually conflicts.  We drive random commuting/ordered mixes
   and check both sides. *)

(* Replica state that is sensitive to exactly the conflict relation:
   ordered deliveries fold into an order-dependent hash, commuting ones
   are kept as a multiset tagged with the ordered-prefix hash at their
   delivery (commuting messages may interleave among themselves, but not
   move across an ordered message). *)
let replica_state deliveries =
  let strict_hash = ref 0 and commuting = ref [] in
  List.iter
    (fun p ->
      match p with
      | Strict k -> strict_hash := (!strict_hash * 31) + k + 1
      | Commute k -> commuting := (k, !strict_hash) :: !commuting
      | _ -> ())
    deliveries;
  (!strict_hash, List.sort compare !commuting)

let run_mix seed mix =
  let n = 3 in
  let w = make_world ~seed ~n () in
  let gbs, logs = build w in
  List.iteri
    (fun k strict ->
      let payload = if strict then Strict k else Commute k in
      ignore
        (Engine.schedule w.engine ~delay:(float_of_int (k * 5)) (fun () ->
             Gb.gbcast gbs.(k mod n) payload)))
    mix;
  run_until w 60_000.0;
  (gbs, Array.init n (fun i -> List.rev logs.(i)))

let prop_conflict_relation_state =
  QCheck.Test.make
    ~name:"random mixes: identical replica state on every node" ~count:12
    QCheck.(pair small_nat (list_of_size Gen.(2 -- 10) bool))
    (fun (s, mix) ->
      QCheck.assume (mix <> []);
      let seed = Int64.of_int (7000 + s) in
      let _, deliveries = run_mix seed mix in
      let total = List.length mix in
      Array.for_all (fun l -> List.length l = total) deliveries
      && Array.for_all
           (fun l -> replica_state l = replica_state deliveries.(0))
           deliveries)

let prop_consensus_only_for_conflicts =
  QCheck.Test.make
    ~name:"random mixes: consensus spent only on conflicting traffic"
    ~count:12
    QCheck.(pair small_nat (list_of_size Gen.(2 -- 10) bool))
    (fun (s, mix) ->
      QCheck.assume (mix <> []);
      let seed = Int64.of_int (8000 + s) in
      let gbs, deliveries = run_mix seed mix in
      let stricts = List.length (List.filter Fun.id mix) in
      let total = List.length mix in
      List.length deliveries.(0) = total
      &&
      if stricts = 0 then
        (* Pure commuting workload: everything fast, zero cuts. *)
        Gb.stage gbs.(0) = 0 && Gb.fast_delivered_count gbs.(0) = total
      else
        (* Cuts happen, but never more than the conflicting messages
           could require (each cut carries >= 1 ordered message). *)
        Gb.stage gbs.(0) >= 1 && Gb.stage gbs.(0) <= stricts)

let suite =
  [
    ( "gbcast-modes",
      [
        Alcotest.test_case "all-members: ordered live with dead member" `Slow
          test_all_members_ordered_with_dead_member;
        Alcotest.test_case "all-members: commuting waits for exclusion" `Quick
          test_all_members_commuting_blocks_until_exclusion;
        Alcotest.test_case "all-members: ordered never fast" `Quick
          test_all_members_ordered_never_fast;
        Alcotest.test_case "all-members: commuting fast" `Quick
          test_all_members_commuting_is_fast;
        Alcotest.test_case "all-members: generic order mixed" `Slow
          test_generic_order_all_members_mixed;
        Alcotest.test_case "two-thirds: quorum at n=4 minus one" `Quick
          test_two_thirds_quorum_sizes;
        QCheck_alcotest.to_alcotest prop_conflict_relation_state;
        QCheck_alcotest.to_alcotest prop_consensus_only_for_conflicts;
      ] );
  ]
