(* Cross-stack integration properties: randomized end-to-end scenarios on
   the full new-architecture stack with mixed workloads, crashes and churn,
   checking the global invariants the architecture promises; plus whole-run
   determinism, and the KV store's finer per-key conflict relation on raw
   generic broadcast. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module View = Gc_membership.View
module Stack = Gcs.Gcs_stack
module Ab = Gc_abcast.Atomic_broadcast
module Gb = Gc_gbcast.Generic_broadcast
module Sm = Gc_replication.State_machine
open Support

type Gc_net.Payload.t += Op of { k : int; ordered : bool }

type run_result = {
  histories : (int * bool) list array; (* delivery order per node *)
  views : int list array; (* final view members per node *)
  alive : bool array;
}

(* One randomized scenario: n nodes, mixed ordered/commuting ops, an
   optional crash, an optional voluntary leave. *)
let scenario ~seed ~n ~ops ~crash ~leave =
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let initial = List.init n (fun i -> i) in
  let config = Stack.Config.make ~exclusion_timeout:800.0 () in
  let histories = Array.make n [] in
  let stacks =
    Array.init n (fun id ->
        let s = Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config () in
        Stack.on_deliver s (fun ~origin:_ ~ordered payload ->
            match payload with
            | Op { k; _ } -> histories.(id) <- (k, ordered) :: histories.(id)
            | _ -> ());
        s)
  in
  let rng = Engine.split_rng engine in
  for k = 0 to ops - 1 do
    let sender = Rng.int rng n in
    let ordered = Rng.bool rng in
    ignore
      (Engine.schedule engine ~delay:(float_of_int (50 + (k * 17))) (fun () ->
           if Stack.alive stacks.(sender) && not (Stack.left stacks.(sender))
           then
             if ordered then Stack.abcast stacks.(sender) (Op { k; ordered })
             else Stack.rbcast stacks.(sender) (Op { k; ordered })))
  done;
  (match crash with
  | Some i ->
      ignore
        (Engine.schedule engine ~delay:400.0 (fun () -> Stack.crash stacks.(i)))
  | None -> ());
  (match leave with
  | Some i ->
      ignore
        (Engine.schedule engine ~delay:700.0 (fun () -> Stack.remove stacks.(i) i))
  | None -> ());
  Engine.run ~until:60_000.0 engine;
  {
    histories = Array.map List.rev histories;
    views = Array.map (fun s -> (Stack.view s).View.members) stacks;
    alive = Array.map Stack.alive stacks;
  }

(* Invariant 1: conflicting pairs (at least one ordered) are delivered in
   the same relative order at every pair of processes that delivered both. *)
let check_generic_order r =
  let n = Array.length r.histories in
  let pos i =
    let tbl = Hashtbl.create 64 in
    List.iteri (fun idx (k, o) -> Hashtbl.replace tbl k (idx, o)) r.histories.(i);
    tbl
  in
  let tables = Array.init n pos in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Hashtbl.iter
        (fun k (ik, ok) ->
          Hashtbl.iter
            (fun k' (ik', ok') ->
              if k < k' && (ok || ok') then
                match
                  (Hashtbl.find_opt tables.(j) k, Hashtbl.find_opt tables.(j) k')
                with
                | Some (jk, _), Some (jk', _) ->
                    if compare ik ik' <> compare jk jk' then
                      Alcotest.failf
                        "conflicting order of ops %d/%d differs at %d vs %d" k
                        k' i j
                | _ -> ())
            tables.(i))
        tables.(i)
    done
  done

(* Invariant 2: all surviving members deliver the same message set. *)
let check_survivor_agreement r =
  let n = Array.length r.histories in
  let survivors =
    List.filter
      (fun i -> r.alive.(i) && List.mem i r.views.(i))
      (List.init n (fun i -> i))
  in
  match survivors with
  | [] -> ()
  | first :: rest ->
      let set i = List.sort compare (List.map fst r.histories.(i)) in
      List.iter
        (fun i ->
          if set i <> set first then
            Alcotest.failf "survivors %d and %d delivered different sets" first i)
        rest

(* Invariant 3: surviving members agree on the final view. *)
let check_view_agreement r =
  let n = Array.length r.histories in
  let survivors =
    List.filter
      (fun i -> r.alive.(i) && List.mem i r.views.(i))
      (List.init n (fun i -> i))
  in
  match survivors with
  | [] -> ()
  | first :: rest ->
      List.iter
        (fun i ->
          if r.views.(i) <> r.views.(first) then
            Alcotest.failf "views differ between survivors %d and %d" first i)
        rest

let prop_mixed_workload_invariants =
  QCheck.Test.make ~name:"full stack invariants under crash+leave scenarios"
    ~count:12
    QCheck.(triple small_nat (int_range 3 5) (int_bound 2))
    (fun (seed, n, fault) ->
      let crash = if fault = 1 then Some (n - 1) else None in
      let leave = if fault = 2 then Some (n - 1) else None in
      let r =
        scenario ~seed:(Int64.of_int ((seed * 613) + 29)) ~n ~ops:14 ~crash
          ~leave
      in
      check_generic_order r;
      check_survivor_agreement r;
      check_view_agreement r;
      true)

let test_whole_run_determinism () =
  let run () =
    let r = scenario ~seed:99L ~n:4 ~ops:12 ~crash:(Some 3) ~leave:None in
    (r.histories, r.views)
  in
  let a = run () and b = run () in
  check_bool "bit-identical runs" true (a = b)

let test_rejoin_after_exclusion_full_stack () =
  (* A crashed-looking (but alive) process: we partition it away, let the
     group exclude it, heal, and force a rejoin; it must converge to the
     members' history via state transfer. *)
  let engine = Engine.create ~seed:7L () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n:4 () in
  let initial = [ 0; 1; 2; 3 ] in
  let config = Stack.Config.make ~exclusion_timeout:600.0 () in
  let histories = Array.make 4 [] in
  let stacks =
    Array.init 4 (fun id ->
        let s = Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config () in
        Stack.on_deliver s (fun ~origin:_ ~ordered:_ payload ->
            match payload with
            | Op { k; _ } -> histories.(id) <- k :: histories.(id)
            | _ -> ());
        s)
  in
  Stack.abcast stacks.(0) (Op { k = 1; ordered = true });
  ignore
    (Engine.schedule engine ~delay:300.0 (fun () ->
         Netsim.partition net [ [ 0; 1; 2 ]; [ 3 ] ]));
  ignore
    (Engine.schedule engine ~delay:2_000.0 (fun () ->
         Stack.abcast stacks.(1) (Op { k = 2; ordered = true })));
  ignore (Engine.schedule engine ~delay:4_000.0 (fun () -> Netsim.heal net));
  ignore
    (Engine.schedule engine ~delay:4_500.0 (fun () ->
         Stack.join ~force:true stacks.(3) ~via:0));
  ignore
    (Engine.schedule engine ~delay:8_000.0 (fun () ->
         Stack.abcast stacks.(2) (Op { k = 3; ordered = true })));
  Engine.run ~until:30_000.0 engine;
  check_list_int "rejoined view" [ 0; 1; 2; 3 ]
    (List.sort compare (Stack.view stacks.(0)).View.members);
  (* Node 3 saw op 1 (before the partition) and op 3 (after rejoining); op 2
     happened while it was out and reached it only through the application
     snapshot, which this bare stack does not install — so histories at the
     members are [1;2;3] and at the rejoiner a subset containing 1 and 3. *)
  check_list_int "members" [ 1; 2; 3 ] (List.rev histories.(0));
  check_bool "rejoiner got post-rejoin traffic" true
    (List.mem 3 histories.(3) && List.mem 1 histories.(3))

(* ---------- KV store with per-key conflicts on raw generic broadcast ---- *)

let test_kv_per_key_conflicts () =
  for_seeds ~count:6 (fun seed ->
      let w = make_world ~seed ~n:3 () in
      let n = 3 in
      let stores = Array.init n (fun _ -> Sm.Kv.make ()) in
      let gbs =
        Array.mapi
          (fun i node ->
            let ab =
              Ab.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd
                ~members:(ids n) ()
            in
            let gb =
              Gb.create node.proc ~rc:node.rc ~rb:node.rb ~ab
                ~conflict:(Gc_gbcast.Conflict.of_relation Sm.Kv.conflict)
                ~members:(ids n) ()
            in
            Gb.on_deliver gb (fun ~origin:_ payload ->
                match payload with
                | Sm.Kv.Put _ ->
                    ignore (stores.(i).Sm.apply payload)
                | _ -> ());
            gb)
          w.nodes
      in
      (* Writes to distinct keys commute (fast path); same-key writes
         conflict and get ordered. *)
      let keys = [| "a"; "b"; "c" |] in
      for k = 0 to 11 do
        let key = keys.(k mod 3) in
        ignore
          (Engine.schedule w.engine ~delay:(float_of_int (k * 2)) (fun () ->
               Gb.gbcast gbs.(k mod n)
                 (Sm.Kv.Put { key; data = Printf.sprintf "v%d" k })))
      done;
      run_until w 60_000.0;
      (* Same-key writes ordered identically => identical final stores. *)
      let snap i = stores.(i).Sm.snapshot () in
      check_bool "stores converged" true (snap 0 = snap 1 && snap 1 = snap 2))

let suite =
  [
    ( "integration",
      [
        QCheck_alcotest.to_alcotest prop_mixed_workload_invariants;
        Alcotest.test_case "whole-run determinism" `Quick
          test_whole_run_determinism;
        Alcotest.test_case "rejoin after exclusion (partition)" `Quick
          test_rejoin_after_exclusion_full_stack;
        Alcotest.test_case "kv per-key conflicts converge" `Slow
          test_kv_per_key_conflicts;
      ] );
  ]
