(* The conflict index (DESIGN.md Section 15) must be an exact drop-in for
   the linear pending scan it replaces: for any conflict relation expressed
   both ways — as a bare pairwise relation (Scan fallback) and as an
   indexed class specification (occupancy counters) — the two structures
   must agree on every [blocked] probe after any add/remove history. *)

module Conflict = Gc_gbcast.Conflict
module Ci = Gc_gbcast.Conflict_index

type Gc_net.Payload.t += C of { id : int; klass : int }

let klass_of = function C { klass; _ } -> klass | _ -> 0

(* Symmetric matrix over [classes] classes from triangle bits. *)
let matrix_of ~classes bits =
  let m = Array.make_matrix classes classes false in
  let rest = ref bits in
  let bit () =
    match !rest with
    | [] -> false
    | b :: tl ->
        rest := tl;
        b
  in
  for a = 0 to classes - 1 do
    for b = a to classes - 1 do
      let v = bit () in
      m.(a).(b) <- v;
      m.(b).(a) <- v
    done
  done;
  fun a b -> m.(a).(b)

let payload ~classes i = C { id = i; klass = i mod classes }
let pid i = (0, i)

(* Apply the same add/remove stream to both representations, probing for
   agreement after every step.  The probe sweep covers every class and both
   tracked and untracked exclusions — including the probe's own id, the
   caller's actual usage (the examined message sits in the pending set). *)
let agree ~classes ~matrix steps =
  let rel a b = matrix (klass_of a) (klass_of b) in
  let scan = Ci.create (Conflict.of_relation rel) in
  let classed =
    Ci.create (Conflict.indexed ~classes ~classify:klass_of ~matrix)
  in
  let pool = 8 in
  let step ok (add, i) =
    let i = i mod pool in
    if add then begin
      Ci.add scan (pid i) (payload ~classes i);
      Ci.add classed (pid i) (payload ~classes i)
    end
    else begin
      Ci.remove scan (pid i);
      Ci.remove classed (pid i)
    end;
    let probes_ok = ref true in
    for p = 0 to pool - 1 do
      for excl = 0 to pool do
        let probe = payload ~classes p in
        if
          Ci.blocked scan ~excluding:(pid excl) probe
          <> Ci.blocked classed ~excluding:(pid excl) probe
        then probes_ok := false
      done
    done;
    ok && !probes_ok
    && Ci.occupancy scan = Ci.occupancy classed
    && Ci.mem scan (pid i) = Ci.mem classed (pid i)
  in
  List.fold_left step true steps

let prop_scan_classes_agree =
  QCheck.Test.make
    ~name:"conflict index: Scan and Classes agree on every probe" ~count:60
    QCheck.(
      triple
        (int_range 1 3)
        (list_of_size Gen.(return 6) bool)
        (list_of_size Gen.(1 -- 30) (pair bool small_nat)))
    (fun (classes, bits, steps) ->
      agree ~classes ~matrix:(matrix_of ~classes bits) steps)

(* ---------- edge cases (unit) ---------- *)

let self_conflicting =
  Conflict.indexed ~classes:1 ~classify:klass_of ~matrix:(fun _ _ -> true)

let commuting =
  Conflict.indexed ~classes:1 ~classify:klass_of ~matrix:(fun _ _ -> false)

let test_empty_never_blocks () =
  List.iter
    (fun spec ->
      let t = Ci.create spec in
      Alcotest.(check bool)
        "empty index" false
        (Ci.blocked t ~excluding:(pid 0) (payload ~classes:1 0));
      Alcotest.(check int) "empty occupancy" 0 (Ci.occupancy t))
    [ self_conflicting; commuting; Conflict.of_relation (fun _ _ -> true) ]

let test_self_exclusion () =
  (* A self-conflicting message alone in the pending set must not block
     itself — the exclusion is what lets the examine probe run while the
     examined message is already tracked. *)
  let t = Ci.create self_conflicting in
  Ci.add t (pid 1) (payload ~classes:1 1);
  Alcotest.(check bool)
    "alone, excluded" false
    (Ci.blocked t ~excluding:(pid 1) (payload ~classes:1 1));
  Ci.add t (pid 2) (payload ~classes:1 2);
  Alcotest.(check bool)
    "second same-class occupant blocks" true
    (Ci.blocked t ~excluding:(pid 1) (payload ~classes:1 1))

let test_total_conflict_degenerates_to_abcast () =
  (* Total conflict = atomic broadcast: any occupant blocks any other
     message, so nothing ever fast-delivers concurrently. *)
  let t = Ci.create self_conflicting in
  Ci.add t (pid 1) (payload ~classes:1 1);
  Alcotest.(check bool)
    "different message blocked" true
    (Ci.blocked t ~excluding:(pid 9) (payload ~classes:1 9))

let test_commuting_never_blocks () =
  let t = Ci.create commuting in
  for i = 0 to 9 do
    Ci.add t (pid i) (payload ~classes:1 i)
  done;
  Alcotest.(check bool)
    "commuting class never blocks" false
    (Ci.blocked t ~excluding:(pid 99) (payload ~classes:1 99))

let test_idempotent_add_single_remove () =
  List.iter
    (fun spec ->
      let t = Ci.create spec in
      Ci.add t (pid 1) (payload ~classes:1 1);
      Ci.add t (pid 1) (payload ~classes:1 1);
      Alcotest.(check int) "double add counts once" 1 (Ci.occupancy t);
      Ci.remove t (pid 1);
      Alcotest.(check int) "single remove empties" 0 (Ci.occupancy t);
      Alcotest.(check bool) "mem after remove" false (Ci.mem t (pid 1));
      Ci.remove t (pid 1);
      Alcotest.(check int) "remove tolerates absent" 0 (Ci.occupancy t);
      Alcotest.(check bool)
        "empty again" false
        (Ci.blocked t ~excluding:(pid 9) (payload ~classes:1 9)))
    [ self_conflicting; Conflict.of_relation (fun _ _ -> true) ]

let test_clear () =
  let t = Ci.create self_conflicting in
  for i = 0 to 4 do
    Ci.add t (pid i) (payload ~classes:1 i)
  done;
  Ci.clear t;
  Alcotest.(check int) "cleared" 0 (Ci.occupancy t);
  Alcotest.(check bool)
    "cleared index never blocks" false
    (Ci.blocked t ~excluding:(pid 9) (payload ~classes:1 9));
  (* Usable after clear (apply_cut rebuilds into the same structure). *)
  Ci.add t (pid 7) (payload ~classes:1 7);
  Alcotest.(check int) "re-add after clear" 1 (Ci.occupancy t)

let test_two_class_spec () =
  (* The stack's own two-class shape: Commuting x Commuting is the only
     non-conflicting pair. *)
  let spec =
    Conflict.two_class ~classify:(fun p ->
        if klass_of p = 0 then Conflict.Commuting else Conflict.Ordered)
  in
  let t = Ci.create spec in
  Ci.add t (pid 1) (C { id = 1; klass = 0 });
  Alcotest.(check bool)
    "commuting occupant does not block commuting" false
    (Ci.blocked t ~excluding:(pid 9) (C { id = 9; klass = 0 }));
  Alcotest.(check bool)
    "commuting occupant blocks ordered" true
    (Ci.blocked t ~excluding:(pid 9) (C { id = 9; klass = 1 }));
  Ci.add t (pid 2) (C { id = 2; klass = 1 });
  Alcotest.(check bool)
    "ordered occupant blocks commuting" true
    (Ci.blocked t ~excluding:(pid 9) (C { id = 9; klass = 0 }))

let test_indexed_rejects_zero_classes () =
  match Conflict.indexed ~classes:0 ~classify:klass_of ~matrix:(fun _ _ -> true) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "classes = 0 must be rejected"

let suite =
  [
    ( "conflict-index",
      [
        QCheck_alcotest.to_alcotest prop_scan_classes_agree;
        Alcotest.test_case "empty index never blocks" `Quick
          test_empty_never_blocks;
        Alcotest.test_case "self exclusion" `Quick test_self_exclusion;
        Alcotest.test_case "total conflict = abcast degeneration" `Quick
          test_total_conflict_degenerates_to_abcast;
        Alcotest.test_case "commuting never blocks" `Quick
          test_commuting_never_blocks;
        Alcotest.test_case "idempotent add, tolerant remove" `Quick
          test_idempotent_add_single_remove;
        Alcotest.test_case "clear and reuse" `Quick test_clear;
        Alcotest.test_case "two-class stack spec" `Quick test_two_class_spec;
        Alcotest.test_case "rejects zero classes" `Quick
          test_indexed_rejects_zero_classes;
      ] );
  ]
