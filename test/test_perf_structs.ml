(* Unit tests for the transport/ordering hot-path data structures: the
   reliable channel's seq-indexed ring-buffer window and atomic broadcast's
   watermark-compacted delivered set. *)

module Window = Gc_rchannel.Window
module Delivered = Gc_abcast.Delivered_set
open Support

(* ---------- ring-buffer window ---------- *)

let test_window_push_get () =
  let w = Window.create ~initial_capacity:4 () in
  check_int "empty length" 0 (Window.length w);
  check_bool "empty" true (Window.is_empty w);
  for k = 0 to 9 do
    check_int "assigned seq" k (Window.push w (k * 100))
  done;
  check_int "length" 10 (Window.length w);
  check_int "base" 0 (Window.base w);
  check_int "next" 10 (Window.next w);
  Alcotest.(check (option int)) "get 7" (Some 700) (Window.get w 7);
  Alcotest.(check (option int)) "get below base" None (Window.get w (-1));
  Alcotest.(check (option int)) "get above next" None (Window.get w 10);
  Alcotest.(check (option int)) "oldest" (Some 0) (Window.peek_oldest w)

let test_window_ack_advance () =
  let w = Window.create ~initial_capacity:4 () in
  for k = 0 to 9 do
    ignore (Window.push w k)
  done;
  check_int "release prefix" 4 (Window.advance_to w 3);
  check_int "base moved" 4 (Window.base w);
  check_int "length" 6 (Window.length w);
  check_int "stale ack is a no-op" 0 (Window.advance_to w 2);
  check_int "ack beyond next clamps" 6 (Window.advance_to w 99);
  check_bool "empty after full ack" true (Window.is_empty w);
  check_int "next numbering continues" 10 (Window.next w);
  check_int "push after drain" 10 (Window.push w 0)

let test_window_wraparound () =
  (* Drive the live range around a small backing array many times: the
     modular indexing must keep (seq -> entry) exact across wraps, and
     growing while [base] sits mid-array must not lose entries. *)
  let w = Window.create ~initial_capacity:4 () in
  let next_in = ref 0 in
  for _round = 1 to 100 do
    for _ = 1 to 3 do
      ignore (Window.push w !next_in);
      incr next_in
    done;
    (* Cumulative ack for all but the newest entry. *)
    ignore (Window.advance_to w (!next_in - 2));
    check_int "one straggler survives the round" 1 (Window.length w)
  done;
  check_int "base far beyond the capacity" 299 (Window.base w);
  for _ = 1 to 7 do
    ignore (Window.push w !next_in);
    incr next_in
  done;
  check_int "grew past capacity" 8 (Window.length w);
  let entries = Window.to_list w in
  check_int "to_list sees all" 8 (List.length entries);
  List.iter
    (fun (seq, v) ->
      check_int "seq is the pushed value" seq v;
      Alcotest.(check (option int)) "get roundtrip" (Some v) (Window.get w seq))
    entries

let test_window_reset () =
  let w = Window.create ~initial_capacity:4 () in
  for k = 0 to 6 do
    ignore (Window.push w k)
  done;
  ignore (Window.advance_to w 2);
  Window.reset w;
  check_bool "empty" true (Window.is_empty w);
  check_int "base back to 0" 0 (Window.base w);
  check_int "numbering restarts" 0 (Window.push w 42);
  Alcotest.(check (option int)) "old seqs gone" None (Window.get w 5);
  Alcotest.(check (option int)) "new entry visible" (Some 42) (Window.get w 0)

(* ---------- watermark-compacted delivered set ---------- *)

(* Mirror of the old flat-table representation, for equivalence checks. *)
let naive_mem l id = List.mem id l

let test_delivered_contiguous_advance () =
  let d = Delivered.create () in
  for mseq = 0 to 99 do
    check_bool "fresh add" true (Delivered.add d (7, mseq))
  done;
  check_int "watermark swallowed everything" 100 (Delivered.watermark d ~origin:7);
  check_int "no overflow" 0 (Delivered.overflow_size d);
  check_int "cardinal" 100 (Delivered.cardinal d);
  check_bool "mem below watermark" true (Delivered.mem d (7, 42));
  check_bool "mem above watermark" false (Delivered.mem d (7, 100));
  check_bool "other origin untouched" false (Delivered.mem d (8, 0));
  check_bool "re-add rejected" false (Delivered.add d (7, 42))

let test_delivered_sparse_overflow () =
  let d = Delivered.create () in
  (* Deliver out of order: evens first. *)
  for k = 0 to 4 do
    check_bool "sparse add" true (Delivered.add d (1, 2 * k))
  done;
  check_int "watermark counts only the prefix" 1 (Delivered.watermark d ~origin:1);
  check_int "overflow holds the gaps" 4 (Delivered.overflow_size d);
  check_bool "overflowed id is a member" true (Delivered.mem d (1, 6));
  check_bool "gap is not" false (Delivered.mem d (1, 5));
  (* Fill the gaps: the watermark must absorb the whole run. *)
  for k = 0 to 3 do
    check_bool "gap fill" true (Delivered.add d (1, (2 * k) + 1))
  done;
  check_int "watermark absorbed overflow" 9 (Delivered.watermark d ~origin:1);
  check_int "overflow drained" 0 (Delivered.overflow_size d);
  check_int "cardinal" 9 (Delivered.cardinal d)

let test_delivered_ids_equivalence () =
  (* Equivalence with the old flat representation over a mixed-order,
     multi-origin, duplicate-laden insertion sequence. *)
  let d = Delivered.create () in
  let naive = ref [] in
  let inserts =
    [
      (0, 0); (0, 1); (2, 3); (2, 0); (0, 1); (1, 0); (2, 1); (2, 2); (0, 2);
      (2, 3); (1, 2); (1, 1); (2, 4); (0, 0); (1, 3);
    ]
  in
  List.iter
    (fun id ->
      let fresh_naive = not (naive_mem !naive id) in
      if fresh_naive then naive := id :: !naive;
      check_bool "add agrees with naive" fresh_naive (Delivered.add d id))
    inserts;
  let expected = List.sort_uniq Stdlib.compare !naive in
  Alcotest.(check (list (pair int int))) "ids equals flat set" expected
    (Delivered.ids d);
  check_int "cardinal agrees" (List.length expected) (Delivered.cardinal d);
  List.iter
    (fun id ->
      check_bool "mem agrees with naive" (naive_mem !naive id)
        (Delivered.mem d id))
    [ (0, 0); (0, 3); (1, 3); (1, 4); (2, 4); (2, 5); (3, 0) ]

let prop_delivered_matches_naive =
  QCheck.Test.make ~name:"delivered set behaves as a plain set of ids"
    ~count:200
    QCheck.(small_list (pair (int_bound 3) (int_bound 12)))
    (fun inserts ->
      let d = Delivered.create () in
      let naive = ref [] in
      List.iter
        (fun id ->
          let fresh = not (naive_mem !naive id) in
          if fresh then naive := id :: !naive;
          if Delivered.add d id <> fresh then QCheck.Test.fail_report "add";
          if Delivered.cardinal d <> List.length !naive then
            QCheck.Test.fail_report "cardinal")
        inserts;
      Delivered.ids d = List.sort_uniq Stdlib.compare !naive)

let suite =
  [
    ( "perf-structs",
      [
        Alcotest.test_case "window push/get" `Quick test_window_push_get;
        Alcotest.test_case "window ack advance" `Quick test_window_ack_advance;
        Alcotest.test_case "window wraparound" `Quick test_window_wraparound;
        Alcotest.test_case "window reset (forget/gen)" `Quick test_window_reset;
        Alcotest.test_case "delivered contiguous advance" `Quick
          test_delivered_contiguous_advance;
        Alcotest.test_case "delivered sparse overflow" `Quick
          test_delivered_sparse_overflow;
        Alcotest.test_case "delivered ids equivalence" `Quick
          test_delivered_ids_equivalence;
        QCheck_alcotest.to_alcotest prop_delivered_matches_naive;
      ] );
  ]
