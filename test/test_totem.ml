(* Tests for the Totem-style token-ring baseline: total order via the token,
   recovery on member crash (including the token holder), exclusions and
   rejoin, and the dependence of ordering on membership that the paper's
   Section 2.3.2 points out. *)

module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Trace = Gc_sim.Trace
module View = Gc_membership.View
module Tt = Gc_totem.Totem_stack
open Support

type Gc_net.Payload.t += Op of int | TState of int list

let make ?(config = Tt.default_config) ?(n_founders = None) ~n ~seed () =
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let founders = match n_founders with None -> n | Some f -> f in
  let initial = List.init founders (fun i -> i) in
  let log = Array.make n [] in
  let stacks =
    Array.init n (fun id ->
        let provider () = TState (List.rev log.(id)) in
        let installer = function
          | TState l -> log.(id) <- List.rev l
          | _ -> ()
        in
        let s =
          Tt.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config ~app_state_provider:provider
            ~app_state_installer:installer ()
        in
        Tt.on_deliver s (fun ~origin:_ payload ->
            match payload with Op k -> log.(id) <- k :: log.(id) | _ -> ());
        s)
  in
  (engine, net, stacks, log)

let hist log i = List.rev log.(i)

let test_token_total_order () =
  let engine, _net, stacks, log = make ~n:3 ~seed:1L () in
  for k = 0 to 8 do
    Tt.abcast stacks.(k mod 3) (Op k)
  done;
  Engine.run ~until:30_000.0 engine;
  check_int "all delivered" 9 (List.length (hist log 0));
  for i = 1 to 2 do
    check_list_int "same total order" (hist log 0) (hist log i)
  done;
  check_bool "token circulated" true (Tt.token_passes stacks.(0) > 0)

let test_sender_order_preserved_per_holder () =
  (* Messages from one process are sequenced in queue order during its token
     visits. *)
  let engine, _net, stacks, log = make ~n:3 ~seed:2L () in
  for k = 0 to 9 do
    Tt.abcast stacks.(1) (Op k)
  done;
  Engine.run ~until:30_000.0 engine;
  check_list_int "queue order preserved" (List.init 10 (fun k -> k)) (hist log 0)

let test_crash_non_holder_recovery () =
  for_seeds ~count:5 (fun seed ->
      let config = { Tt.default_config with fd_timeout = 300.0 } in
      let engine, _net, stacks, log = make ~config ~n:4 ~seed () in
      Tt.abcast stacks.(0) (Op 1);
      ignore
        (Engine.schedule engine ~delay:200.0 (fun () -> Tt.crash stacks.(3)));
      ignore
        (Engine.schedule engine ~delay:1_500.0 (fun () ->
             Tt.abcast stacks.(1) (Op 2)));
      Engine.run ~until:60_000.0 engine;
      check_list_int "view excludes crashed" [ 0; 1; 2 ]
        (Tt.view stacks.(0)).View.members;
      for i = 1 to 2 do
        check_list_int "agree" (hist log 0) (hist log i)
      done;
      check_list_int "both messages survive" [ 1; 2 ]
        (List.sort compare (hist log 0)))

let test_crash_token_holder_regenerates () =
  (* The token dies with its holder; recovery regenerates it and ordering
     resumes. *)
  for_seeds ~count:5 (fun seed ->
      let config = { Tt.default_config with fd_timeout = 300.0 } in
      let engine, _net, stacks, log = make ~config ~n:3 ~seed () in
      (* Node 0 starts with the token; crash it early. *)
      ignore (Engine.schedule engine ~delay:50.0 (fun () -> Tt.crash stacks.(0)));
      ignore
        (Engine.schedule engine ~delay:1_000.0 (fun () ->
             Tt.abcast stacks.(1) (Op 1);
             Tt.abcast stacks.(2) (Op 2)));
      Engine.run ~until:60_000.0 engine;
      check_list_int "survivors agree" (hist log 1) (hist log 2);
      check_list_int "post-recovery messages ordered" [ 1; 2 ]
        (List.sort compare (hist log 1)))

let test_ordering_stalls_without_membership () =
  (* Section 2.3.2: the token abcast depends on the membership below.  With
     an effectively infinite detection timeout, a crashed successor stops
     the ring for good. *)
  let config = { Tt.default_config with fd_timeout = 1_000_000.0 } in
  let engine, _net, stacks, log = make ~config ~n:3 ~seed:5L () in
  ignore (Engine.schedule engine ~delay:100.0 (fun () -> Tt.crash stacks.(1)));
  ignore
    (Engine.schedule engine ~delay:500.0 (fun () -> Tt.abcast stacks.(2) (Op 1)));
  Engine.run ~until:20_000.0 engine;
  check_int "nothing delivered: ring broken, no membership help" 0
    (List.length (hist log 2))

let test_wrongly_excluded_rejoins () =
  let config =
    { Tt.default_config with fd_timeout = 300.0; state_transfer_delay = 30.0 }
  in
  let engine, net, stacks, log = make ~config ~n:3 ~seed:6L () in
  Tt.abcast stacks.(0) (Op 1);
  ignore
    (Engine.schedule engine ~delay:600.0 (fun () ->
         Netsim.delay_spike net ~nodes:[ 2 ] ~until:1_400.0 ~extra:600.0));
  ignore
    (Engine.schedule engine ~delay:5_000.0 (fun () -> Tt.abcast stacks.(0) (Op 2)));
  Engine.run ~until:60_000.0 engine;
  check_bool "was excluded" true (Tt.exclusions_suffered stacks.(2) >= 1);
  check_bool "rejoined" true (Tt.is_member stacks.(2));
  check_list_int "caught up via state transfer" (hist log 0) (hist log 2)

let test_join_mid_stream () =
  let config = { Tt.default_config with state_transfer_delay = 20.0 } in
  let engine, _net, stacks, log =
    make ~config ~n:4 ~n_founders:(Some 3) ~seed:7L ()
  in
  Tt.abcast stacks.(0) (Op 1);
  ignore (Engine.schedule engine ~delay:500.0 (fun () -> Tt.join stacks.(3) ~via:1));
  ignore
    (Engine.schedule engine ~delay:3_000.0 (fun () -> Tt.abcast stacks.(2) (Op 2)));
  Engine.run ~until:60_000.0 engine;
  check_bool "joined" true (Tt.is_member stacks.(3));
  check_list_int "joiner history" [ 1; 2 ] (hist log 3)

let prop_total_order_random =
  QCheck.Test.make ~name:"totem total order across random schedules" ~count:8
    QCheck.small_nat
    (fun seed ->
      let n = 3 in
      let engine, _net, stacks, log =
        make ~n ~seed:(Int64.of_int ((seed * 37) + 5)) ()
      in
      for k = 0 to 8 do
        ignore
          (Engine.schedule engine ~delay:(float_of_int (k * 7)) (fun () ->
               Tt.abcast stacks.(k mod n) (Op k)))
      done;
      Engine.run ~until:60_000.0 engine;
      List.length (hist log 0) = 9
      && hist log 0 = hist log 1
      && hist log 1 = hist log 2)

let suite =
  [
    ( "totem",
      [
        Alcotest.test_case "token total order" `Quick test_token_total_order;
        Alcotest.test_case "sender order per holder" `Quick
          test_sender_order_preserved_per_holder;
        Alcotest.test_case "crash non-holder recovery" `Slow
          test_crash_non_holder_recovery;
        Alcotest.test_case "crash token holder regenerates" `Slow
          test_crash_token_holder_regenerates;
        Alcotest.test_case "ordering stalls without membership" `Quick
          test_ordering_stalls_without_membership;
        Alcotest.test_case "wrongly excluded rejoins" `Quick
          test_wrongly_excluded_rejoins;
        Alcotest.test_case "join mid-stream" `Quick test_join_mid_stream;
        QCheck_alcotest.to_alcotest prop_total_order_random;
      ] );
  ]
