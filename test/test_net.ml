(* Tests for the simulated unreliable transport. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Delay = Gc_net.Delay
module Netsim = Gc_net.Netsim
module Payload = Gc_net.Payload

type Payload.t += Ping of int

let make ?(seed = 1L) ?(delay = Delay.Constant 1.0) ?(drop = 0.0) n =
  let engine = Engine.create ~seed () in
  let net = Netsim.create engine ~delay ~drop ~n () in
  (engine, net)

let collect net node log =
  Netsim.register net ~node (fun ~src payload ->
      match payload with Ping k -> log := (src, k) :: !log | _ -> ())

let test_basic_delivery () =
  let engine, net = make 2 in
  let log = ref [] in
  collect net 1 log;
  Netsim.send net ~src:0 ~dst:1 (Ping 7);
  Engine.run engine;
  Alcotest.(check (list (pair int int))) "delivered" [ (0, 7) ] !log;
  Alcotest.(check (float 0.001)) "constant delay" 1.0 (Engine.now engine)

let test_drop_all () =
  let engine, net = make ~drop:1.0 2 in
  let log = ref [] in
  collect net 1 log;
  for k = 1 to 20 do
    Netsim.send net ~src:0 ~dst:1 (Ping k)
  done;
  Engine.run engine;
  Support.check_int "nothing delivered" 0 (List.length !log);
  Support.check_int "all counted dropped" 20 (Netsim.messages_dropped net)

let test_drop_probabilistic () =
  let engine, net = make ~seed:5L ~drop:0.5 2 in
  let log = ref [] in
  collect net 1 log;
  let total = 2000 in
  for k = 1 to total do
    Netsim.send net ~src:0 ~dst:1 (Ping k)
  done;
  Engine.run engine;
  let got = List.length !log in
  Support.check_bool
    (Printf.sprintf "roughly half delivered (%d/%d)" got total)
    true
    (got > 900 && got < 1100)

let test_crash_stops_delivery () =
  let engine, net = make 2 in
  let log = ref [] in
  collect net 1 log;
  Netsim.crash net 1;
  Netsim.send net ~src:0 ~dst:1 (Ping 1);
  Engine.run engine;
  Support.check_int "no delivery to crashed" 0 (List.length !log);
  Support.check_bool "alive flag" false (Netsim.alive net 1)

let test_crashed_cannot_send () =
  let engine, net = make 2 in
  let log = ref [] in
  collect net 1 log;
  Netsim.crash net 0;
  Netsim.send net ~src:0 ~dst:1 (Ping 1);
  Engine.run engine;
  Support.check_int "no send from crashed" 0 (List.length !log)

let test_in_flight_to_crashed_dropped () =
  let engine, net = make ~delay:(Delay.Constant 10.0) 2 in
  let log = ref [] in
  collect net 1 log;
  Netsim.send net ~src:0 ~dst:1 (Ping 1);
  (* Crash the destination while the message is in flight. *)
  ignore (Engine.schedule engine ~delay:5.0 (fun () -> Netsim.crash net 1));
  Engine.run engine;
  Support.check_int "in-flight message lost" 0 (List.length !log)

let test_partition_blocks_cross_traffic () =
  let engine, net = make 4 in
  let log2 = ref [] and log1 = ref [] in
  collect net 2 log2;
  collect net 1 log1;
  Netsim.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Netsim.send net ~src:0 ~dst:2 (Ping 1);
  Netsim.send net ~src:0 ~dst:1 (Ping 2);
  Engine.run engine;
  Support.check_int "cross-partition blocked" 0 (List.length !log2);
  Support.check_int "same side ok" 1 (List.length !log1);
  Netsim.heal net;
  Netsim.send net ~src:0 ~dst:2 (Ping 3);
  Engine.run engine;
  Support.check_int "after heal" 1 (List.length !log2)

let test_partition_implicit_group () =
  let engine, net = make 3 in
  let log = ref [] in
  collect net 2 log;
  (* Node 2 is not mentioned: it forms its own implicit group. *)
  Netsim.partition net [ [ 0; 1 ] ];
  Netsim.send net ~src:0 ~dst:2 (Ping 1);
  Engine.run engine;
  Support.check_int "isolated" 0 (List.length !log)

let test_delay_spike () =
  let engine, net = make 2 in
  let arrivals = ref [] in
  Netsim.register net ~node:1 (fun ~src:_ _ ->
      arrivals := Engine.now engine :: !arrivals);
  Netsim.delay_spike net ~nodes:[ 0 ] ~until:50.0 ~extra:100.0;
  Netsim.send net ~src:0 ~dst:1 (Ping 1);
  (* Second message sent after the spike window. *)
  ignore
    (Engine.schedule engine ~delay:60.0 (fun () ->
         Netsim.send net ~src:0 ~dst:1 (Ping 2)));
  Engine.run engine;
  (* The spiked first message (sent at 0, +100 ms spike, +1 ms link) lands at
     101; the post-spike message (sent at 60) overtakes it and lands at 61. *)
  match List.rev !arrivals with
  | [ first; second ] ->
      Alcotest.(check (float 0.001)) "normal overtakes" 61.0 first;
      Alcotest.(check (float 0.001)) "spiked arrives late" 101.0 second
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let test_set_link_override () =
  let engine, net = make 2 in
  Netsim.set_link net ~src:0 ~dst:1 ~delay:(Delay.Constant 42.0) ();
  let at = ref nan in
  Netsim.register net ~node:1 (fun ~src:_ _ -> at := Engine.now engine);
  Netsim.send net ~src:0 ~dst:1 (Ping 1);
  Engine.run engine;
  Alcotest.(check (float 0.001)) "overridden delay" 42.0 !at

let test_determinism () =
  let run seed =
    let engine, net = make ~seed ~delay:Delay.lan ~drop:0.2 3 in
    let log = ref [] in
    collect net 2 log;
    for k = 1 to 50 do
      Netsim.send net ~src:0 ~dst:2 (Ping k);
      Netsim.send net ~src:1 ~dst:2 (Ping (1000 + k))
    done;
    Engine.run engine;
    (!log, Engine.now engine)
  in
  let a = run 9L and b = run 9L in
  Support.check_bool "identical runs" true (a = b);
  let c = run 10L in
  Support.check_bool "different seed differs" true (a <> c)

let test_recover_rejoins_delivery () =
  let engine = Engine.create ~seed:1L () in
  let trace = Trace.create ~enabled:true () in
  let net = Netsim.create engine ~trace ~delay:(Delay.Constant 1.0) ~n:2 () in
  let log = ref [] in
  collect net 1 log;
  Netsim.crash net 1;
  Netsim.send net ~src:0 ~dst:1 (Ping 1);
  Engine.run engine;
  Support.check_int "lost while frozen" 0 (List.length !log);
  Support.check_int "counted as gone drop" 1 (Netsim.messages_dropped_gone net);
  Netsim.recover net 1;
  Support.check_bool "alive again" true (Netsim.alive net 1);
  Netsim.send net ~src:0 ~dst:1 (Ping 2);
  Engine.run engine;
  Alcotest.(check (list (pair int int))) "post-recover delivery" [ (0, 2) ] !log;
  (* Both lifecycle transitions are on the flight recorder. *)
  Support.check_int "crash recorded" 1
    (List.length (Trace.find trace ~node:1 ~component:"net" ~event:"crash" ()));
  Support.check_int "recover recorded" 1
    (List.length (Trace.find trace ~node:1 ~component:"net" ~event:"recover" ()))

let test_recover_live_node_noop () =
  let engine, net = make 2 in
  Netsim.recover net 1;
  Support.check_bool "still alive" true (Netsim.alive net 1);
  ignore engine

let test_drop_counter_split () =
  let engine, net = make ~drop:1.0 3 in
  let log = ref [] in
  collect net 1 log;
  (* Lossy link: the network chose to drop — policy. *)
  Netsim.send net ~src:0 ~dst:1 (Ping 1);
  Engine.run engine;
  Support.check_int "policy drop" 1 (Netsim.messages_dropped_policy net);
  Support.check_int "no gone drop yet" 0 (Netsim.messages_dropped_gone net);
  (* Partition boundary: also the network's choice — policy. *)
  Netsim.set_link net ~src:0 ~dst:2 ~drop:0.0 ();
  Netsim.partition net [ [ 0; 1 ]; [ 2 ] ];
  Netsim.send net ~src:0 ~dst:2 (Ping 2);
  Engine.run engine;
  Support.check_int "partition drop is policy" 2
    (Netsim.messages_dropped_policy net);
  Netsim.heal net;
  (* Dead endpoint: not a network decision — gone. *)
  Netsim.crash net 2;
  Netsim.send net ~src:0 ~dst:2 (Ping 3);
  Netsim.send net ~src:2 ~dst:1 (Ping 4);
  Engine.run engine;
  Support.check_int "dead endpoints are gone drops" 2
    (Netsim.messages_dropped_gone net);
  Support.check_int "total is the sum" 4 (Netsim.messages_dropped net)

let test_duplication_and_metrics_mirror () =
  let engine = Engine.create ~seed:3L () in
  let metrics = Gc_obs.Metrics.create () in
  let net =
    Netsim.create engine ~metrics ~delay:(Delay.Constant 1.0) ~dup:1.0 ~n:2 ()
  in
  let log = ref [] in
  collect net 1 log;
  Netsim.send net ~src:0 ~dst:1 (Ping 1);
  Engine.run engine;
  Support.check_int "original + duplicate delivered" 2 (List.length !log);
  Support.check_int "duplication counted" 1 (Netsim.messages_duplicated net);
  Support.check_int "mirrored to metrics" 1
    (Gc_obs.Metrics.counter metrics "net.duplicated");
  (* The split drop counters are mirrored too. *)
  Netsim.crash net 1;
  Netsim.send net ~src:0 ~dst:1 (Ping 2);
  Engine.run engine;
  Support.check_int "gone mirrored" 1
    (Gc_obs.Metrics.counter metrics "net.dropped_gone");
  Support.check_int "policy mirrored" 0
    (Gc_obs.Metrics.counter metrics "net.dropped_policy")

let test_dup_zero_does_not_perturb_rng () =
  (* dup = 0.0 must not consume random draws: a lossy run with and without
     the duplication feature configured off is bit-identical. *)
  let run ~dup =
    let engine = Engine.create ~seed:11L () in
    let net = Netsim.create engine ~delay:Delay.lan ~drop:0.3 ~dup ~n:2 () in
    let log = ref [] in
    collect net 1 log;
    for k = 1 to 100 do
      Netsim.send net ~src:0 ~dst:1 (Ping k)
    done;
    Engine.run engine;
    (!log, Engine.now engine)
  in
  Support.check_bool "identical" true (run ~dup:0.0 = run ~dup:0.0)

let test_delay_mean_sanity () =
  (* The sampled mean of each distribution should match its analytic mean. *)
  let rng = Gc_sim.Rng.create 2L in
  let check_dist d =
    let total = ref 0.0 in
    let trials = 50_000 in
    for _ = 1 to trials do
      total := !total +. Delay.sample d rng
    done;
    let sampled = !total /. float_of_int trials in
    let analytic = Delay.mean d in
    Support.check_bool
      (Printf.sprintf "mean %.3f vs %.3f" sampled analytic)
      true
      (Float.abs (sampled -. analytic) /. analytic < 0.05)
  in
  check_dist Delay.lan;
  check_dist Delay.wan;
  check_dist (Delay.Uniform { lo = 1.0; hi = 9.0 });
  check_dist (Delay.Lognormal { min = 1.0; mu = 0.0; sigma = 0.5 })

let suite =
  [
    ( "net",
      [
        Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
        Alcotest.test_case "drop all" `Quick test_drop_all;
        Alcotest.test_case "drop probabilistic" `Quick test_drop_probabilistic;
        Alcotest.test_case "crash stops delivery" `Quick test_crash_stops_delivery;
        Alcotest.test_case "crashed cannot send" `Quick test_crashed_cannot_send;
        Alcotest.test_case "in-flight to crashed dropped" `Quick
          test_in_flight_to_crashed_dropped;
        Alcotest.test_case "partition blocks cross traffic" `Quick
          test_partition_blocks_cross_traffic;
        Alcotest.test_case "partition implicit group" `Quick
          test_partition_implicit_group;
        Alcotest.test_case "delay spike" `Quick test_delay_spike;
        Alcotest.test_case "set_link override" `Quick test_set_link_override;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "recover rejoins delivery" `Quick
          test_recover_rejoins_delivery;
        Alcotest.test_case "recover live node is a no-op" `Quick
          test_recover_live_node_noop;
        Alcotest.test_case "drop counter split" `Quick test_drop_counter_split;
        Alcotest.test_case "duplication + metrics mirror" `Quick
          test_duplication_and_metrics_mirror;
        Alcotest.test_case "dup=0 leaves rng untouched" `Quick
          test_dup_zero_does_not_perturb_rng;
        Alcotest.test_case "delay distribution means" `Quick test_delay_mean_sanity;
      ] );
  ]
