(* Tests for the reliable FIFO channel: no loss under drops, FIFO order, no
   duplication, loopback, stuck-output notification and forget. *)

module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Process = Gc_kernel.Process
module Rc = Gc_rchannel.Reliable_channel
open Support

type Gc_net.Payload.t += Num of int

let nums log ~src:_ payload =
  match payload with Num k -> log := k :: !log | _ -> ()

let test_delivery_under_loss () =
  let w = make_world ~seed:7L ~drop:0.4 ~n:2 () in
  let log = ref [] in
  Rc.on_deliver w.nodes.(1).rc (nums log);
  for k = 1 to 100 do
    Rc.send w.nodes.(0).rc ~dst:1 (Num k)
  done;
  run_until w 60_000.0;
  check_list_int "all delivered, FIFO, no dup"
    (List.init 100 (fun i -> i + 1))
    (List.rev !log)

let test_fifo_despite_reordering () =
  (* Huge delay variance reorders raw datagrams; the channel must still
     deliver in sending order. *)
  let w =
    make_world ~seed:8L ~delay:(Gc_net.Delay.Uniform { lo = 1.0; hi = 200.0 })
      ~n:2 ()
  in
  let log = ref [] in
  Rc.on_deliver w.nodes.(1).rc (nums log);
  for k = 1 to 50 do
    Rc.send w.nodes.(0).rc ~dst:1 (Num k)
  done;
  run_until w 30_000.0;
  check_list_int "FIFO" (List.init 50 (fun i -> i + 1)) (List.rev !log)

let test_loopback () =
  let w = make_world ~n:1 () in
  let log = ref [] in
  Rc.on_deliver w.nodes.(0).rc (nums log);
  Rc.send w.nodes.(0).rc ~dst:0 (Num 42);
  run_until w 100.0;
  check_list_int "self delivery" [ 42 ] (List.rev !log)

let test_bidirectional_independent () =
  let w = make_world ~n:2 () in
  let log0 = ref [] and log1 = ref [] in
  Rc.on_deliver w.nodes.(0).rc (nums log0);
  Rc.on_deliver w.nodes.(1).rc (nums log1);
  Rc.send w.nodes.(0).rc ~dst:1 (Num 1);
  Rc.send w.nodes.(1).rc ~dst:0 (Num 2);
  run_until w 1000.0;
  check_list_int "to 1" [ 1 ] (List.rev !log1);
  check_list_int "to 0" [ 2 ] (List.rev !log0)

let test_stuck_notification_on_crashed_dest () =
  let w = make_world ~stuck_after:500.0 ~n:2 () in
  let stuck = ref [] in
  Rc.set_on_stuck w.nodes.(0).rc (fun ~dst ~age:_ -> stuck := dst :: !stuck);
  Process.crash w.nodes.(1).proc;
  Rc.send w.nodes.(0).rc ~dst:1 (Num 1);
  run_until w 5000.0;
  check_list_int "stuck fired once for dst 1" [ 1 ] !stuck;
  check_int "message still buffered" 1 (Rc.unacked w.nodes.(0).rc ~dst:1)

let test_no_stuck_when_acked () =
  let w = make_world ~stuck_after:500.0 ~n:2 () in
  let stuck = ref [] in
  Rc.set_on_stuck w.nodes.(0).rc (fun ~dst ~age:_ -> stuck := dst :: !stuck);
  for k = 1 to 10 do
    Rc.send w.nodes.(0).rc ~dst:1 (Num k)
  done;
  run_until w 5000.0;
  check_list_int "no stuck" [] !stuck;
  check_int "all acked" 0 (Rc.unacked w.nodes.(0).rc ~dst:1)

let test_forget_releases_buffer () =
  let w = make_world ~stuck_after:500.0 ~n:2 () in
  Process.crash w.nodes.(1).proc;
  Rc.send w.nodes.(0).rc ~dst:1 (Num 1);
  Rc.send w.nodes.(0).rc ~dst:1 (Num 2);
  run_until w 1000.0;
  check_int "buffered" 2 (Rc.unacked w.nodes.(0).rc ~dst:1);
  Rc.forget w.nodes.(0).rc 1;
  check_int "released" 0 (Rc.unacked w.nodes.(0).rc ~dst:1)

let test_forget_resets_stream_generation () =
  (* After [forget], new messages start a fresh generation: the receiver
     must not wait for the discarded sequence numbers (the post-exclusion
     rejoin path). *)
  let w = make_world ~n:2 () in
  let log = ref [] in
  Rc.on_deliver w.nodes.(1).rc (nums log);
  (* Cut the link so messages 1-3 sit unacked, then discard them. *)
  Netsim.set_link w.net ~src:0 ~dst:1 ~drop:1.0 ();
  for k = 1 to 3 do
    Rc.send w.nodes.(0).rc ~dst:1 (Num k)
  done;
  run_until w 500.0;
  Rc.forget w.nodes.(0).rc 1;
  Netsim.set_link w.net ~src:0 ~dst:1 ~drop:0.0 ();
  Rc.send w.nodes.(0).rc ~dst:1 (Num 4);
  run_until w 2_000.0;
  check_list_int "new generation delivers" [ 4 ] (List.rev !log)

let test_stale_generation_ignored () =
  (* Retransmissions from before a [forget] must not be delivered once the
     new generation has started. *)
  let w = make_world ~seed:21L ~delay:(Gc_net.Delay.Uniform { lo = 1.0; hi = 80.0 }) ~n:2 () in
  let log = ref [] in
  Rc.on_deliver w.nodes.(1).rc (nums log);
  Rc.send w.nodes.(0).rc ~dst:1 (Num 1);
  (* Forget immediately: the in-flight copy of #1 races the reset. *)
  Rc.forget w.nodes.(0).rc 1;
  Rc.send w.nodes.(0).rc ~dst:1 (Num 2);
  run_until w 2_000.0;
  (* Whatever arrives, message 2 must be delivered and nothing from the old
     generation may follow it. *)
  check_bool "new generation delivered" true (List.mem 2 !log);
  (match List.rev !log with
  | 2 :: rest -> check_list_int "nothing after reset start" [] rest
  | [ 1; 2 ] -> () (* old copy slipped in before the reset copy: fine *)
  | l -> Alcotest.failf "unexpected deliveries (%d)" (List.length l))

let counter w i name =
  Gc_obs.Metrics.counter (Process.metrics w.nodes.(i).proc) name

let test_no_retransmissions_on_lossless_link () =
  (* Regression: retransmission must consult packet age.  Packets are sent
     just before each RTO tick, so a policy that resends everything still in
     the window would resend fresh, already-in-flight packets. *)
  let w = make_world ~n:2 () in
  let log = ref [] in
  Rc.on_deliver w.nodes.(1).rc (nums log);
  for k = 1 to 20 do
    ignore
      (Engine.schedule w.engine
         ~delay:((float_of_int k *. 50.0) -. 2.0)
         (fun () -> Rc.send w.nodes.(0).rc ~dst:1 (Num k)))
  done;
  run_until w 5_000.0;
  check_list_int "all delivered" (List.init 20 (fun i -> i + 1)) (List.rev !log);
  check_int "no retransmissions on a lossless link" 0
    (counter w 0 "rchannel.retransmissions")

let test_stale_generation_not_acked () =
  (* Regression: a late copy from a pre-forget generation must be dropped
     without acknowledgement — acking it with the *current* gen would
     manufacture acks the new-generation sender never earned.  With the huge
     delay variance, roughly half the schedules land the gen-0 copy of #1
     after the gen-1 copy of #2 has bumped the receiver's generation; scan a
     fixed seed range until one does. *)
  let exercised = ref false in
  let seed = ref 1 in
  while (not !exercised) && !seed <= 40 do
    let w =
      make_world ~seed:(Int64.of_int !seed)
        ~delay:(Gc_net.Delay.Uniform { lo = 1.0; hi = 200.0 })
        ~n:2 ()
    in
    let log = ref [] in
    Rc.on_deliver w.nodes.(1).rc (nums log);
    Rc.send w.nodes.(0).rc ~dst:1 (Num 1);
    Rc.forget w.nodes.(0).rc 1;
    Rc.send w.nodes.(0).rc ~dst:1 (Num 2);
    run_until w 5_000.0;
    if counter w 1 "rchannel.stale_gen_ignored" >= 1 then begin
      exercised := true;
      check_list_int "only the new generation delivered" [ 2 ] (List.rev !log)
    end;
    incr seed
  done;
  check_bool "some schedule landed the stale copy late" true !exercised

let test_renumber_paced_after_peer_restart () =
  (* Regression: when an ack's repoch jump reveals a peer restart, the
     unacked window is renumbered into a fresh generation but must drain
     under the regular max_burst pacing — not as one synchronous storm at
     the instant the restarted (and most fragile) peer comes back. *)
  let max_burst = 4 in
  let window = 30 in
  let engine = Engine.create ~seed:99L () in
  let trace = Gc_sim.Trace.create ~enabled:true () in
  let net =
    Netsim.create engine ~trace ~delay:(Gc_net.Delay.Constant 1.0) ~n:2 ()
  in
  let runtime = Gc_kernel.Runtime.of_netsim net ~trace in
  let proc0 = Process.create runtime ~id:0 in
  let rc0 = Rc.create proc0 ~rto:50.0 ~max_burst () in
  let proc1 = Process.create runtime ~id:1 in
  let _rc1 = Rc.create proc1 () in
  (* One acked exchange so the sender learns the peer's epoch (0). *)
  Rc.send rc0 ~dst:1 (Num 0);
  Engine.run ~until:500.0 engine;
  check_int "warmup acked" 0 (Rc.unacked rc0 ~dst:1);
  (* Kill -9 the receiver and queue a window far larger than one burst. *)
  Process.crash proc1;
  Netsim.crash net 1;
  for k = 1 to window do
    Rc.send rc0 ~dst:1 (Num k)
  done;
  Engine.run ~until:2_000.0 engine;
  check_int "window buffered across the outage" window
    (Rc.unacked rc0 ~dst:1);
  (* Reboot: same node id, bumped epoch — its acks carry repoch = 1. *)
  Netsim.recover net 1;
  let proc1b = Process.create runtime ~id:1 in
  let rc1b = Rc.create proc1b ~epoch:1 () in
  let log = ref [] in
  Rc.on_deliver rc1b (nums log);
  let restart_at = Engine.now engine in
  Engine.run ~until:10_000.0 engine;
  check_list_int "renumbered window delivered in order"
    (List.init window (fun i -> i + 1))
    (List.rev !log);
  check_int "window drained" 0 (Rc.unacked rc0 ~dst:1);
  (* With a constant link delay, frames sent in one instant arrive in one
     instant, so per-instant arrivals at the reborn node bound the
     sender's burst size.  Factor 2 allows the post-renumber inline burst
     to coincide with a retransmit tick. *)
  let arrivals = Hashtbl.create 64 in
  List.iter
    (fun (e : Gc_obs.Event.t) ->
      if
        e.Gc_obs.Event.node = 1
        && e.Gc_obs.Event.component = "net"
        && e.Gc_obs.Event.kind = Gc_obs.Event.Recv
        && e.Gc_obs.Event.time > restart_at
      then
        Hashtbl.replace arrivals e.Gc_obs.Event.time
          (1
          + Option.value ~default:0
              (Hashtbl.find_opt arrivals e.Gc_obs.Event.time)))
    (Gc_sim.Trace.records trace);
  check_bool "post-restart traffic observed" true (Hashtbl.length arrivals > 0);
  Hashtbl.iter
    (fun time n ->
      if n > 2 * max_burst then
        Alcotest.failf "burst of %d frames at t=%.3f exceeds max_burst pacing"
          n time)
    arrivals

let prop_reliable_fifo_random_loss =
  QCheck.Test.make ~name:"reliable FIFO for random seeds and loss rates"
    ~count:15
    QCheck.(pair small_nat (float_bound_inclusive 0.5))
    (fun (seed, drop) ->
      let w = make_world ~seed:(Int64.of_int (seed + 1)) ~drop ~n:2 () in
      let log = ref [] in
      Rc.on_deliver w.nodes.(1).rc (nums log);
      let count = 30 in
      for k = 1 to count do
        Rc.send w.nodes.(0).rc ~dst:1 (Num k)
      done;
      run_until w 120_000.0;
      List.rev !log = List.init count (fun i -> i + 1))

let suite =
  [
    ( "rchannel",
      [
        Alcotest.test_case "delivery under loss" `Quick test_delivery_under_loss;
        Alcotest.test_case "fifo despite reordering" `Quick
          test_fifo_despite_reordering;
        Alcotest.test_case "loopback" `Quick test_loopback;
        Alcotest.test_case "bidirectional independent" `Quick
          test_bidirectional_independent;
        Alcotest.test_case "stuck notification on crashed dest" `Quick
          test_stuck_notification_on_crashed_dest;
        Alcotest.test_case "no stuck when acked" `Quick test_no_stuck_when_acked;
        Alcotest.test_case "forget releases buffer" `Quick
          test_forget_releases_buffer;
        Alcotest.test_case "forget resets stream generation" `Quick
          test_forget_resets_stream_generation;
        Alcotest.test_case "stale generation ignored" `Quick
          test_stale_generation_ignored;
        Alcotest.test_case "no retransmissions on lossless link" `Quick
          test_no_retransmissions_on_lossless_link;
        Alcotest.test_case "stale generation not acked" `Quick
          test_stale_generation_not_acked;
        Alcotest.test_case "renumber paced after peer restart" `Quick
          test_renumber_paced_after_peer_restart;
        QCheck_alcotest.to_alcotest prop_reliable_fifo_random_loss;
      ] );
  ]
