(* Equivalence harness for submission batching (DESIGN.md Section 15).

   Batching changes *when* messages hit the wire and how many ride one
   reliable broadcast — it must not change what generic broadcast
   guarantees.  The property below runs the same random workload through a
   batched and an unbatched stack and checks that both satisfy the
   paper's contract (everything delivered exactly once, conflicting pairs
   in the same relative order at every node) and that the delivered
   multisets agree per node across the two runs.

   The orders themselves are *not* compared across runs: cut composition
   is timing-dependent, so a batched run may legitimately order a
   conflicting pair differently from an unbatched run — each run just has
   to be internally consistent.  That is exactly the generic-broadcast
   specification; anything stronger would be testing the scheduler. *)

module Engine = Gc_sim.Engine
module Process = Gc_kernel.Process
module Ab = Gc_abcast.Atomic_broadcast
module Batcher = Gc_abcast.Batcher
module Gb = Gc_gbcast.Generic_broadcast
module Conflict = Gc_gbcast.Conflict
open Support

type Gc_net.Payload.t += Op of { klass : int; k : int }

let op_k = function Op { k; _ } -> k | _ -> Alcotest.fail "unexpected payload"
let op_klass = function Op { klass; _ } -> klass | _ -> 0

(* A symmetric class matrix from a triangle of generator bits (missing bits
   read as false, so short lists are fine). *)
let matrix_of ~classes bits =
  let m = Array.make_matrix classes classes false in
  let rest = ref bits in
  let bit () =
    match !rest with
    | [] -> false
    | b :: tl ->
        rest := tl;
        b
  in
  for a = 0 to classes - 1 do
    for b = a to classes - 1 do
      let v = bit () in
      m.(a).(b) <- v;
      m.(b).(a) <- v
    done
  done;
  fun a b -> m.(a).(b)

(* One simulated run: n = 3 nodes, op [k] of class [klass] submitted at the
   sender [k mod n] at time [k * 4] ms.  Returns per-node delivery lists in
   delivery order. *)
let run_mix ~seed ~conflict ~batch_max ~batch_delay ops =
  let n = 3 in
  let w = make_world ~seed ~n () in
  let logs = Array.make n [] in
  let gbs =
    Array.mapi
      (fun i node ->
        let ab =
          Ab.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd ~batch_max
            ~batch_delay ~members:(ids n) ()
        in
        let gb =
          Gb.create node.proc ~rc:node.rc ~rb:node.rb ~ab ~conflict
            ~ack_mode:Gb.All_members ~batch_max ~batch_delay ~members:(ids n)
            ()
        in
        Gb.on_deliver gb (fun ~origin:_ p -> logs.(i) <- p :: logs.(i));
        gb)
      w.nodes
  in
  List.iteri
    (fun k klass ->
      ignore
        (Engine.schedule w.engine ~delay:(float_of_int (k * 4)) (fun () ->
             Gb.gbcast gbs.(k mod n) (Op { klass; k }))))
    ops;
  run_until w 60_000.0;
  Array.init n (fun i -> List.rev logs.(i))

(* Generic-order oracle for one run: every node delivered every op exactly
   once, and any conflicting pair sits in the same relative order at every
   node. *)
let generic_order_ok ~matrix ops deliveries =
  let total = List.length ops in
  let pos i =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun idx p -> Hashtbl.replace tbl (op_k p) idx) deliveries.(i);
    tbl
  in
  Array.for_all (fun l -> List.length l = total) deliveries
  && Array.for_all
       (fun l ->
         List.sort_uniq compare (List.map op_k l) = List.init total Fun.id)
       deliveries
  &&
  let klass = Array.of_list ops in
  let p0 = pos 0 in
  let ok = ref true in
  for i = 1 to Array.length deliveries - 1 do
    let pi = pos i in
    for a = 0 to total - 1 do
      for b = a + 1 to total - 1 do
        if matrix klass.(a) klass.(b) then
          let find tbl k = Hashtbl.find tbl k in
          if
            compare (find p0 a) (find p0 b)
            <> compare (find pi a) (find pi b)
          then ok := false
      done
    done
  done;
  !ok

let multiset l = List.sort compare (List.map op_k l)

let prop_batched_equiv_unbatched =
  QCheck.Test.make
    ~name:"batched gbcast == unbatched: generic order + same multisets"
    ~count:15
    QCheck.(
      quad small_nat
        (int_range 1 3)
        (list_of_size Gen.(return 6) bool)
        (pair
           (list_of_size Gen.(2 -- 12) (int_range 0 2))
           (pair (int_range 2 8) (oneofl [ 0.5; 1.0; 2.0; 5.0 ]))))
    (fun (s, classes, bits, (raw_ops, (batch_max, batch_delay))) ->
      QCheck.assume (raw_ops <> []);
      let ops = List.map (fun c -> c mod classes) raw_ops in
      let matrix = matrix_of ~classes bits in
      let conflict =
        Conflict.indexed ~classes ~classify:op_klass ~matrix
      in
      let seed = Int64.of_int (9000 + s) in
      let batched =
        run_mix ~seed ~conflict ~batch_max ~batch_delay ops
      in
      let unbatched =
        run_mix ~seed ~conflict ~batch_max:1 ~batch_delay:1.0 ops
      in
      generic_order_ok ~matrix ops batched
      && generic_order_ok ~matrix ops unbatched
      && Array.for_all2
           (fun b u -> multiset b = multiset u)
           batched unbatched)

(* The same equivalence through the full conflict spectrum: everything
   commutes (no cuts in either run) and everything conflicts (abcast
   degeneration) are the two ends the random matrices may miss. *)
let test_batched_all_commuting () =
  for_seeds ~count:4 (fun seed ->
      let conflict =
        Conflict.indexed ~classes:1 ~classify:op_klass
          ~matrix:(fun _ _ -> false)
      in
      let ops = List.init 9 (fun _ -> 0) in
      let deliveries =
        run_mix ~seed ~conflict ~batch_max:4 ~batch_delay:1.0 ops
      in
      Array.iter
        (fun l -> check_int "all delivered" 9 (List.length l))
        deliveries)

let test_batched_total_conflict () =
  for_seeds ~count:4 (fun seed ->
      let conflict =
        Conflict.indexed ~classes:1 ~classify:op_klass
          ~matrix:(fun _ _ -> true)
      in
      let ops = List.init 7 (fun _ -> 0) in
      let deliveries =
        run_mix ~seed ~conflict ~batch_max:4 ~batch_delay:1.0 ops
      in
      Array.iter
        (fun l -> check_int "all delivered" 7 (List.length l))
        deliveries;
      let seq i = List.map op_k deliveries.(i) in
      check_bool "total order" true (seq 0 = seq 1 && seq 1 = seq 2))

(* ---------- Batcher unit tests (white-box) ---------- *)

let with_proc f =
  let w = make_world ~n:1 () in
  f w w.nodes.(0).proc

let test_batcher_size_watermark () =
  with_proc (fun _w proc ->
      let emitted = ref [] in
      let b =
        Batcher.create proc ~max_batch:3 ~max_delay:50.0
          ~emit:(fun xs -> emitted := xs :: !emitted)
          ()
      in
      Batcher.add b 1;
      Batcher.add b 2;
      check_int "buffered below watermark" 0 (List.length !emitted);
      check_int "length" 2 (Batcher.length b);
      Batcher.add b 3;
      check_list_int "watermark flush, submission order" [ 1; 2; 3 ]
        (List.hd !emitted);
      check_int "buffer drained" 0 (Batcher.length b))

let test_batcher_tick_watermark () =
  with_proc (fun w proc ->
      let emitted = ref [] in
      let b =
        Batcher.create proc ~max_batch:10 ~max_delay:5.0
          ~emit:(fun xs -> emitted := xs :: !emitted)
          ()
      in
      Batcher.add b 7;
      Batcher.add b 8;
      check_int "held until tick" 0 (List.length !emitted);
      run_until w 20.0;
      check_int "one tick flush" 1 (List.length !emitted);
      check_list_int "partial batch" [ 7; 8 ] (List.hd !emitted))

let test_batcher_unit_degenerates () =
  with_proc (fun w proc ->
      let emitted = ref [] in
      let b =
        Batcher.create proc ~max_batch:1 ~max_delay:5.0
          ~emit:(fun xs -> emitted := xs :: !emitted)
          ()
      in
      Batcher.add b 1;
      Batcher.add b 2;
      (* max_batch = 1 emits immediately and never buffers or arms timers. *)
      check_bool "immediate singletons" true (!emitted = [ [ 2 ]; [ 1 ] ]);
      check_int "nothing buffered" 0 (Batcher.length b);
      run_until w 50.0;
      check_int "no timer re-emission" 2 (List.length !emitted))

let test_batcher_explicit_flush_and_stale_timer () =
  with_proc (fun w proc ->
      let emitted = ref [] in
      let b =
        Batcher.create proc ~max_batch:10 ~max_delay:5.0
          ~emit:(fun xs -> emitted := xs :: !emitted)
          ()
      in
      Batcher.add b 1;
      Batcher.add b 2;
      Batcher.flush b;
      check_list_int "explicit flush" [ 1; 2 ] (List.hd !emitted);
      (* The armed 5 ms timer is now stale (generation bumped): it must not
         cut the next batch short when it fires. *)
      Batcher.add b 3;
      run_until w 4.0;
      check_int "stale timer is a no-op" 1 (List.length !emitted);
      run_until w 20.0;
      check_int "fresh timer flushes" 2 (List.length !emitted);
      check_list_int "next batch intact" [ 3 ] (List.hd !emitted))

let test_batcher_rejects_zero () =
  with_proc (fun _w proc ->
      match
        Batcher.create proc ~max_batch:0 ~max_delay:1.0 ~emit:ignore ()
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "max_batch = 0 must be rejected")

let suite =
  [
    ( "gbcast-batch",
      [
        QCheck_alcotest.to_alcotest prop_batched_equiv_unbatched;
        Alcotest.test_case "batched: pure commuting load" `Slow
          test_batched_all_commuting;
        Alcotest.test_case "batched: total conflict = total order" `Slow
          test_batched_total_conflict;
        Alcotest.test_case "batcher: size watermark" `Quick
          test_batcher_size_watermark;
        Alcotest.test_case "batcher: tick watermark" `Quick
          test_batcher_tick_watermark;
        Alcotest.test_case "batcher: max_batch=1 degenerates" `Quick
          test_batcher_unit_degenerates;
        Alcotest.test_case "batcher: explicit flush, stale timer" `Quick
          test_batcher_explicit_flush_and_stale_timer;
        Alcotest.test_case "batcher: rejects max_batch=0" `Quick
          test_batcher_rejects_zero;
      ] );
  ]
