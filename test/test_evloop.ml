(* The select loop's wakeup order: watched descriptors are polled and
   dispatched in ascending fd order, whatever order they were registered
   in.  Hashtbl iteration order depends on insertion history, so before
   the sort a run's callback interleaving was an accident of connection
   arrival order — this pins the deterministic order down. *)

module Evloop = Gc_runtime_unix.Evloop

let with_pipes n f =
  let pipes = List.init n (fun _ -> Unix.pipe ()) in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (r, w) ->
          (try Unix.close r with Unix.Unix_error _ -> ());
          try Unix.close w with Unix.Unix_error _ -> ())
        pipes)
    (fun () -> f pipes)

let test_watched_sorted () =
  with_pipes 5 (fun pipes ->
      let loop = Evloop.create () in
      (* register in reverse order: the loop must not care *)
      List.iter
        (fun (r, _) -> Evloop.set_read loop r (Some ignore))
        (List.rev pipes);
      let fds = Evloop.watched_fds loop in
      Alcotest.(check int) "all watched" 5 (List.length fds);
      Alcotest.(check bool) "ascending fd order" true
        (fds = List.sort compare fds);
      List.iter (fun (r, _) -> Evloop.forget loop r) pipes;
      Alcotest.(check int) "forget empties" 0
        (List.length (Evloop.watched_fds loop)))

let test_dispatch_order () =
  with_pipes 6 (fun pipes ->
      let loop = Evloop.create () in
      let fired = ref [] in
      (* scrambled registration: middle, last, first, ... *)
      let scrambled =
        match pipes with
        | [ a; b; c; d; e; f ] -> [ d; f; a; e; b; c ]
        | _ -> assert false
      in
      List.iter
        (fun (r, _) ->
          Evloop.set_read loop r (Some (fun () -> fired := r :: !fired)))
        scrambled;
      (* make every descriptor ready before the tick *)
      List.iter
        (fun (_, w) -> ignore (Unix.write w (Bytes.of_string "x") 0 1))
        pipes;
      Evloop.run_once loop ~max_wait:0.0;
      let order = List.rev !fired in
      Alcotest.(check int) "every callback fired" 6 (List.length order);
      Alcotest.(check bool) "fired in ascending fd order" true
        (order = List.sort compare order))

let suite =
  [
    ( "evloop",
      [
        Alcotest.test_case "watched_fds is sorted" `Quick test_watched_sorted;
        Alcotest.test_case "ready callbacks dispatch in fd order" `Quick
          test_dispatch_order;
      ] );
  ]
