(* The select loop's wakeup order: watched descriptors are polled and
   dispatched in ascending fd order, whatever order they were registered
   in.  Hashtbl iteration order depends on insertion history, so before
   the sort a run's callback interleaving was an accident of connection
   arrival order — this pins the deterministic order down. *)

module Evloop = Gc_runtime_unix.Evloop

let with_pipes n f =
  let pipes = List.init n (fun _ -> Unix.pipe ()) in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (r, w) ->
          (try Unix.close r with Unix.Unix_error _ -> ());
          try Unix.close w with Unix.Unix_error _ -> ())
        pipes)
    (fun () -> f pipes)

let test_watched_sorted () =
  with_pipes 5 (fun pipes ->
      let loop = Evloop.create () in
      (* register in reverse order: the loop must not care *)
      List.iter
        (fun (r, _) -> Evloop.set_read loop r (Some ignore))
        (List.rev pipes);
      let fds = Evloop.watched_fds loop in
      Alcotest.(check int) "all watched" 5 (List.length fds);
      Alcotest.(check bool) "ascending fd order" true
        (fds = List.sort compare fds);
      List.iter (fun (r, _) -> Evloop.forget loop r) pipes;
      Alcotest.(check int) "forget empties" 0
        (List.length (Evloop.watched_fds loop)))

let test_dispatch_order () =
  with_pipes 6 (fun pipes ->
      let loop = Evloop.create () in
      let fired = ref [] in
      (* scrambled registration: middle, last, first, ... *)
      let scrambled =
        match pipes with
        | [ a; b; c; d; e; f ] -> [ d; f; a; e; b; c ]
        | _ -> assert false
      in
      List.iter
        (fun (r, _) ->
          Evloop.set_read loop r (Some (fun () -> fired := r :: !fired)))
        scrambled;
      (* make every descriptor ready before the tick *)
      List.iter
        (fun (_, w) -> ignore (Unix.write w (Bytes.of_string "x") 0 1))
        pipes;
      Evloop.run_once loop ~max_wait:0.0;
      let order = List.rev !fired in
      Alcotest.(check int) "every callback fired" 6 (List.length order);
      Alcotest.(check bool) "fired in ascending fd order" true
        (order = List.sort compare order))

module Fconn = Gc_runtime_unix.Fconn
module Proto = Gc_server.Proto

(* The flush-path teardown regression: kill the peer between two partial
   writes.  The first write fills the (shrunk) socket buffer and parks the
   rest behind a write callback; the peer then dies; the retry hits
   EPIPE/ECONNRESET.  The connection must tear down exactly once — one
   [on_close], watcher gone (no stale write callback left to fire against
   a recycled fd), out buffer released — and a later explicit [close] must
   be a no-op. *)
let test_peer_death_between_partial_writes () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096
   with Unix.Unix_error _ -> ());
  let loop = Evloop.create () in
  let closes = ref 0 in
  let conn =
    Fconn.attach ~loop a
      ~on_payload:(fun _ _ -> ())
      ~on_close:(fun _ -> incr closes)
  in
  (* Bigger than any plausible socket buffer, smaller than out_cap: the
     send leaves a flushed prefix and a parked suffix. *)
  let big = String.make 200_000 'x' in
  Fconn.send conn (Proto.Cl_put { rid = 1; key = "k"; value = big });
  Alcotest.(check bool) "partial write does not close" false (Fconn.closed conn);
  Unix.close b;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Fconn.closed conn)) && Unix.gettimeofday () < deadline do
    Evloop.run_once loop ~max_wait:20.0
  done;
  Alcotest.(check bool) "dead peer detected" true (Fconn.closed conn);
  Alcotest.(check int) "on_close fired exactly once" 1 !closes;
  Alcotest.(check int) "watcher torn down" 0
    (List.length (Evloop.watched_fds loop));
  (* sending and closing after death are no-ops, not double teardowns *)
  Fconn.send conn (Proto.Cl_put { rid = 2; key = "k"; value = "v" });
  Fconn.close conn;
  Alcotest.(check int) "close is idempotent" 1 !closes

let suite =
  [
    ( "evloop",
      [
        Alcotest.test_case "watched_fds is sorted" `Quick test_watched_sorted;
        Alcotest.test_case "ready callbacks dispatch in fd order" `Quick
          test_dispatch_order;
        Alcotest.test_case "peer death between partial writes" `Quick
          test_peer_death_between_partial_writes;
      ] );
  ]
