(* Tests for the traditional GM-VS baseline stack: sequencer total order,
   view synchrony, suspicion = exclusion coupling, blocking flush,
   kill-and-rejoin. *)

module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Trace = Gc_sim.Trace
module View = Gc_membership.View
module Tr = Gc_traditional.Traditional_stack
open Support

type Gc_net.Payload.t += Op of int | AppState of int list

let make ?(config = Tr.default_config) ?(n_founders = None) ~n ~seed () =
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let founders = match n_founders with None -> n | Some f -> f in
  let initial = List.init founders (fun i -> i) in
  let ordered_log = Array.make n [] in
  let all_log = Array.make n [] in
  let stacks =
    Array.init n (fun id ->
        let provider () = AppState (List.rev ordered_log.(id)) in
        let installer = function
          | AppState l -> ordered_log.(id) <- List.rev l
          | _ -> ()
        in
        let s =
          Tr.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config ~app_state_provider:provider
            ~app_state_installer:installer ()
        in
        Tr.on_deliver s (fun ~origin:_ ~ordered payload ->
            match payload with
            | Op k ->
                all_log.(id) <- k :: all_log.(id);
                if ordered then ordered_log.(id) <- k :: ordered_log.(id)
            | _ -> ());
        s)
  in
  (engine, net, stacks, ordered_log, all_log)

let hist log i = List.rev log.(i)

let test_sequencer_total_order () =
  let engine, _net, stacks, ordered, _ = make ~n:3 ~seed:1L () in
  for k = 0 to 8 do
    Tr.abcast stacks.(k mod 3) (Op k)
  done;
  Engine.run ~until:30_000.0 engine;
  check_int "all delivered" 9 (List.length (hist ordered 0));
  for i = 1 to 2 do
    check_list_int "same order" (hist ordered 0) (hist ordered i)
  done

let test_vscast_delivery () =
  let engine, _net, stacks, _, all = make ~n:3 ~seed:2L () in
  for k = 0 to 5 do
    Tr.vscast stacks.(k mod 3) (Op k)
  done;
  Engine.run ~until:30_000.0 engine;
  for i = 0 to 2 do
    check_list_int "same set"
      (List.sort compare (hist all 0))
      (List.sort compare (hist all i));
    check_int "six messages" 6 (List.length (hist all i))
  done

let test_vscast_fifo_per_sender () =
  let engine, _net, stacks, _, all = make ~n:2 ~seed:3L () in
  for k = 0 to 9 do
    Tr.vscast stacks.(0) (Op k)
  done;
  Engine.run ~until:30_000.0 engine;
  check_list_int "FIFO at receiver" (List.init 10 (fun i -> i)) (hist all 1)

let test_sequencer_crash_recovery () =
  for_seeds ~count:6 (fun seed ->
      let engine, _net, stacks, ordered, _ = make ~n:3 ~seed () in
      Tr.abcast stacks.(1) (Op 1);
      ignore
        (Engine.schedule engine ~delay:100.0 (fun () -> Tr.crash stacks.(0)));
      (* Requests issued while the sequencer is dead but not yet excluded:
         they must survive the view change and be re-sequenced. *)
      ignore
        (Engine.schedule engine ~delay:300.0 (fun () ->
             Tr.abcast stacks.(1) (Op 2);
             Tr.abcast stacks.(2) (Op 3)));
      Engine.run ~until:60_000.0 engine;
      check_list_int "crashed sequencer excluded" [ 1; 2 ]
        (Tr.view stacks.(1)).View.members;
      let h1 = hist ordered 1 and h2 = hist ordered 2 in
      check_list_int "agree" h1 h2;
      check_list_int "all three ordered ops" [ 1; 2; 3 ] (List.sort compare h1))

let test_suspicion_is_exclusion () =
  (* The traditional coupling: a transient spike exceeding the single FD
     timeout removes a perfectly alive process. *)
  let config = { Tr.default_config with fd_timeout = 300.0 } in
  let engine, net, stacks, _, _ = make ~config ~n:3 ~seed:5L () in
  Netsim.delay_spike net ~nodes:[ 2 ] ~until:1200.0 ~extra:600.0;
  Engine.run ~until:900.0 engine;
  (* Before the rejoin completes: the live process is out. *)
  check_bool "excluded despite being alive" true
    (not (View.mem (Tr.view stacks.(0)) 2));
  check_bool "victim knows" true (not (Tr.is_member stacks.(2)));
  Engine.run ~until:30_000.0 engine;
  check_bool "exclusion was counted" true (Tr.exclusions_suffered stacks.(2) >= 1)

let test_wrongly_excluded_rejoins () =
  let config =
    { Tr.default_config with fd_timeout = 300.0; state_transfer_delay = 50.0 }
  in
  let engine, net, stacks, ordered, _ = make ~config ~n:3 ~seed:6L () in
  Tr.abcast stacks.(0) (Op 1);
  Netsim.delay_spike net ~nodes:[ 2 ] ~until:1200.0 ~extra:600.0;
  ignore
    (Engine.schedule engine ~delay:4000.0 (fun () -> Tr.abcast stacks.(0) (Op 2)));
  Engine.run ~until:60_000.0 engine;
  check_bool "rejoined" true (Tr.is_member stacks.(2));
  check_int "exclusion counted" 1 (Tr.exclusions_suffered stacks.(2));
  check_bool "downtime measured" true (Tr.excluded_time_total stacks.(2) > 0.0);
  check_list_int "full view restored" [ 0; 1; 2 ]
    (List.sort compare (Tr.view stacks.(0)).View.members);
  (* State transfer restored the ordered history at the rejoiner. *)
  check_list_int "history intact after rejoin" (hist ordered 0) (hist ordered 2)

let test_flush_blocks_senders () =
  let config = { Tr.default_config with fd_timeout = 300.0 } in
  let engine, _net, stacks, ordered, _ = make ~config ~n:4 ~seed:7L () in
  ignore (Engine.schedule engine ~delay:100.0 (fun () -> Tr.crash stacks.(3)));
  (* Broadcast during the detection + flush window. *)
  for k = 0 to 9 do
    ignore
      (Engine.schedule engine
         ~delay:(150.0 +. float_of_int (k * 60))
         (fun () -> Tr.abcast stacks.(k mod 3) (Op k)))
  done;
  Engine.run ~until:60_000.0 engine;
  check_int "all ten delivered" 10 (List.length (hist ordered 0));
  for i = 1 to 2 do
    check_list_int "order agreed" (hist ordered 0) (hist ordered i)
  done;
  let blocked_somewhere =
    List.exists (fun i -> Tr.blocked_time_total stacks.(i) > 0.0) [ 0; 1; 2 ]
  in
  check_bool "senders were blocked during the change" true blocked_somewhere

let test_join_mid_stream () =
  let config = { Tr.default_config with state_transfer_delay = 20.0 } in
  let engine, _net, stacks, ordered, _ =
    make ~config ~n:4 ~n_founders:(Some 3) ~seed:8L ()
  in
  Tr.abcast stacks.(0) (Op 1);
  ignore
    (Engine.schedule engine ~delay:500.0 (fun () -> Tr.join stacks.(3) ~via:1));
  ignore
    (Engine.schedule engine ~delay:3000.0 (fun () -> Tr.abcast stacks.(2) (Op 2)));
  Engine.run ~until:60_000.0 engine;
  check_bool "joined" true (Tr.is_member stacks.(3));
  check_list_int "view includes joiner" [ 0; 1; 2; 3 ]
    (List.sort compare (Tr.view stacks.(0)).View.members);
  check_list_int "joiner history complete" [ 1; 2 ] (hist ordered 3)

let test_leave () =
  let engine, _net, stacks, _, _ = make ~n:3 ~seed:9L () in
  ignore (Engine.schedule engine ~delay:100.0 (fun () -> Tr.leave stacks.(2)));
  Engine.run ~until:20_000.0 engine;
  check_list_int "view shrunk" [ 0; 1 ] (Tr.view stacks.(0)).View.members;
  check_bool "leaver inactive" true (not (Tr.is_member stacks.(2)));
  check_int "voluntary leave is not an exclusion" 0
    (Tr.exclusions_suffered stacks.(2))

let test_view_synchrony_cut () =
  (* Messages vscast just before a member crashes must be delivered by all
     survivors (the flush re-injects unstable messages). *)
  for_seeds ~count:6 (fun seed ->
      let config = { Tr.default_config with fd_timeout = 300.0 } in
      let engine, _net, stacks, _, all = make ~config ~n:4 ~seed () in
      ignore
        (Engine.schedule engine ~delay:100.0 (fun () ->
             Tr.vscast stacks.(0) (Op 1);
             Tr.vscast stacks.(1) (Op 2);
             (* node 3 crashes an instant after the broadcasts take off *)
             ignore
               (Engine.schedule engine ~delay:1.0 (fun () ->
                    Tr.crash stacks.(3)))));
      Engine.run ~until:60_000.0 engine;
      for i = 0 to 2 do
        check_list_int
          (Printf.sprintf "survivor %d has the cut" i)
          [ 1; 2 ]
          (List.sort compare (hist all i))
      done)

let test_minority_partition_stalls () =
  (* Primary-partition rule: the minority side must not install a view or
     keep ordering; the majority side continues. *)
  let config = { Tr.default_config with fd_timeout = 300.0 } in
  let engine, net, stacks, ordered, _ = make ~config ~n:5 ~seed:11L () in
  Tr.abcast stacks.(0) (Op 1);
  ignore
    (Engine.schedule engine ~delay:300.0 (fun () ->
         Netsim.partition net [ [ 0; 1; 2 ]; [ 3; 4 ] ]));
  ignore
    (Engine.schedule engine ~delay:2_000.0 (fun () -> Tr.abcast stacks.(1) (Op 2)));
  Engine.run ~until:10_000.0 engine;
  check_list_int "majority carries on" [ 1; 2 ] (hist ordered 0);
  check_list_int "majority view" [ 0; 1; 2 ] (Tr.view stacks.(0)).View.members;
  (* Minority: no new view installed (still the full founding view), no
     post-partition deliveries. *)
  check_int "minority view unchanged" 5 (View.size (Tr.view stacks.(3)));
  check_list_int "minority frozen" [ 1 ] (hist ordered 3)

let test_abcast_before_any_view_change_cheap () =
  (* Failure-free runs never trigger the flush machinery. *)
  let engine, _net, stacks, ordered, _ = make ~n:3 ~seed:12L () in
  for k = 0 to 4 do
    Tr.abcast stacks.(k mod 3) (Op k)
  done;
  Engine.run ~until:10_000.0 engine;
  check_int "no view changes" 0 (Tr.view_changes stacks.(0));
  check_int "no blocking" 0 (int_of_float (Tr.blocked_time_total stacks.(0)));
  check_int "all delivered" 5 (List.length (hist ordered 0))

(* ---------- Phoenix-style (consensus-based) view agreement ---------- *)

let phoenix_config =
  { Tr.default_config with view_agreement = Tr.Consensus_based }

let test_phoenix_total_order () =
  let engine, _net, stacks, ordered, _ =
    make ~config:phoenix_config ~n:3 ~seed:31L ()
  in
  for k = 0 to 8 do
    Tr.abcast stacks.(k mod 3) (Op k)
  done;
  Engine.run ~until:30_000.0 engine;
  check_int "all delivered" 9 (List.length (hist ordered 0));
  for i = 1 to 2 do
    check_list_int "same order" (hist ordered 0) (hist ordered i)
  done

let test_phoenix_sequencer_crash () =
  for_seeds ~count:5 (fun seed ->
      let config = { phoenix_config with fd_timeout = 300.0 } in
      let engine, _net, stacks, ordered, _ = make ~config ~n:4 ~seed () in
      Tr.abcast stacks.(1) (Op 1);
      ignore
        (Engine.schedule engine ~delay:100.0 (fun () -> Tr.crash stacks.(0)));
      ignore
        (Engine.schedule engine ~delay:300.0 (fun () ->
             Tr.abcast stacks.(1) (Op 2);
             Tr.abcast stacks.(2) (Op 3)));
      Engine.run ~until:60_000.0 engine;
      check_list_int "crashed sequencer excluded" [ 1; 2; 3 ]
        (List.sort compare (Tr.view stacks.(1)).View.members);
      let h1 = hist ordered 1 in
      check_list_int "agree" h1 (hist ordered 2);
      check_list_int "agree" h1 (hist ordered 3);
      check_list_int "all ordered ops" [ 1; 2; 3 ] (List.sort compare h1))

let test_phoenix_view_synchrony_cut () =
  for_seeds ~count:5 (fun seed ->
      let config = { phoenix_config with fd_timeout = 300.0 } in
      let engine, _net, stacks, _, all = make ~config ~n:4 ~seed () in
      ignore
        (Engine.schedule engine ~delay:100.0 (fun () ->
             Tr.vscast stacks.(0) (Op 1);
             Tr.vscast stacks.(1) (Op 2);
             ignore
               (Engine.schedule engine ~delay:1.0 (fun () ->
                    Tr.crash stacks.(3)))));
      Engine.run ~until:60_000.0 engine;
      for i = 0 to 2 do
        check_list_int
          (Printf.sprintf "survivor %d has the cut" i)
          [ 1; 2 ]
          (List.sort compare (hist all i))
      done)

let test_phoenix_wrongly_excluded_rejoins () =
  let config =
    { phoenix_config with fd_timeout = 300.0; state_transfer_delay = 50.0 }
  in
  let engine, net, stacks, ordered, _ = make ~config ~n:4 ~seed:33L () in
  Tr.abcast stacks.(0) (Op 1);
  Netsim.delay_spike net ~nodes:[ 2 ] ~until:1200.0 ~extra:600.0;
  ignore
    (Engine.schedule engine ~delay:5_000.0 (fun () -> Tr.abcast stacks.(0) (Op 2)));
  Engine.run ~until:60_000.0 engine;
  check_bool "was excluded" true (Tr.exclusions_suffered stacks.(2) >= 1);
  check_bool "rejoined" true (Tr.is_member stacks.(2));
  check_list_int "history intact" (hist ordered 0) (hist ordered 2)

let suite =
  [
    ( "traditional",
      [
        Alcotest.test_case "sequencer total order" `Quick test_sequencer_total_order;
        Alcotest.test_case "vscast delivery" `Quick test_vscast_delivery;
        Alcotest.test_case "vscast fifo per sender" `Quick
          test_vscast_fifo_per_sender;
        Alcotest.test_case "sequencer crash recovery" `Slow
          test_sequencer_crash_recovery;
        Alcotest.test_case "suspicion is exclusion" `Quick test_suspicion_is_exclusion;
        Alcotest.test_case "wrongly excluded rejoins" `Quick
          test_wrongly_excluded_rejoins;
        Alcotest.test_case "flush blocks senders" `Quick test_flush_blocks_senders;
        Alcotest.test_case "join mid-stream" `Quick test_join_mid_stream;
        Alcotest.test_case "leave" `Quick test_leave;
        Alcotest.test_case "view synchrony cut" `Slow test_view_synchrony_cut;
        Alcotest.test_case "minority partition stalls" `Quick
          test_minority_partition_stalls;
        Alcotest.test_case "failure-free never flushes" `Quick
          test_abcast_before_any_view_change_cheap;
        Alcotest.test_case "phoenix: total order" `Quick test_phoenix_total_order;
        Alcotest.test_case "phoenix: sequencer crash" `Slow
          test_phoenix_sequencer_crash;
        Alcotest.test_case "phoenix: view synchrony cut" `Slow
          test_phoenix_view_synchrony_cut;
        Alcotest.test_case "phoenix: wrongly excluded rejoins" `Quick
          test_phoenix_wrongly_excluded_rejoins;
      ] );
  ]
