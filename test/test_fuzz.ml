(* Tests for the fuzzing harness and campaign layer: the oracle catches
   injected reorders and shrinks them away, failures replay bit-for-bit,
   and the two traditional-stack bugs the PR 2 auditor caught are pinned
   as explicit fault scripts. *)

module Audit = Gc_obs.Audit
module Fault_script = Gc_faultgen.Fault_script
module Generator = Gc_faultgen.Generator
module Shrink = Gc_faultgen.Shrink
module Harness = Gc_fuzz.Harness
module Campaign = Gc_fuzz.Campaign
open Support

let faultless ?(seed = 1L) ?(nodes = 5) ?(horizon = 12_000.0) events =
  { Fault_script.seed; nodes; horizon; events }

(* ---------- PR 2 regression scripts ----------

   The flight-recorder auditor caught two real bugs in the traditional
   stack (see CHANGES.md, PR 2): stale low-gseq messages resurrected by
   the post-flush drain, and a stale-epoch coordinator installing a rival
   view.  Both surfaced under a crashed sequencer / wrongly suspected
   coordinator.  These scripts replay those trigger shapes through the
   fault-injection API; an unwaived ordering violation here means one of
   the fixes regressed. *)

let test_regression_sequencer_crash_flush () =
  (* Kill the sequencer (view head, node 0) mid-stream: the flush must
     not resurrect already-delivered low-gseq messages under the new
     sequencer.  Broken drain_ordered_after_flush => total-order
     violation between survivors, which no waiver covers. *)
  for_seeds ~count:5 (fun seed ->
      let script =
        faultless ~seed
          [ Fault_script.Crash { node = 0; at = 2_500.0; recover_at = None } ]
      in
      let o = Harness.run ~stack:Harness.Traditional script in
      check_bool
        (Printf.sprintf "seed %Ld: no unwaived violation" seed)
        true
        (Audit.ok o.Harness.report);
      check_bool "survivors kept delivering" true (o.Harness.delivered > 0))

let test_regression_stale_epoch_rival_view () =
  (* Spike the coordinator's outgoing traffic past the fused detection
     timeout: the others exclude it and change views; when the spike ends
     the stale coordinator's leftover install must lose to the newer
     epoch.  Broken epoch guard => rival views and cross-node order
     divergence. *)
  for_seeds ~count:5 (fun seed ->
      let script =
        faultless ~seed ~horizon:15_000.0
          [
            Fault_script.Delay_spike
              { at = 1_500.0; until = 4_000.0; nodes = [ 0 ]; extra = 2_000.0 };
          ]
      in
      let o = Harness.run ~stack:Harness.Traditional script in
      check_bool
        (Printf.sprintf "seed %Ld: no unwaived violation" seed)
        true
        (Audit.ok o.Harness.report))

(* ---------- oracle + shrinking ---------- *)

let test_injected_reorder_is_caught () =
  let script = Generator.generate ~seed:1L ~nodes:5 ~horizon:12_000.0 () in
  let o = Harness.run ~inject_reorder:true ~stack:Harness.Abgb script in
  check_bool "oracle flags the reorder" false (Audit.ok o.Harness.report);
  check_bool "as a total-order violation" true
    (List.mem Audit.Total_order (Campaign.violated_checks o.Harness.report))

let test_injected_reorder_shrinks_to_nothing () =
  (* The corruption does not depend on the fault schedule, so shrinking
     must strip the script to at most 3 events (in practice: zero). *)
  let script = Generator.generate ~seed:1L ~nodes:5 ~horizon:12_000.0 () in
  let o = Harness.run ~inject_reorder:true ~stack:Harness.Abgb script in
  let f = Campaign.failure_of_outcome ~inject_reorder:true o in
  check_bool "original script non-trivial" true
    (List.length script.Fault_script.events >= 1);
  let s = Campaign.shrink f in
  check_bool
    (Printf.sprintf "shrunk to <= 3 events (got %d)"
       (List.length s.Shrink.result.Fault_script.events))
    true
    (List.length s.Shrink.result.Fault_script.events <= 3);
  (* The shrunk script still reproduces. *)
  check_bool "still reproduces" true
    (Campaign.reproduces { f with Campaign.script = s.Shrink.result })

(* ---------- replay determinism ---------- *)

let test_replay_bit_for_bit () =
  (* The harness is a pure function of (stack, script, casts): two runs
     yield the identical Lamport-clocked event sequence. *)
  List.iter
    (fun stack ->
      let script = Generator.generate ~seed:3L ~nodes:5 ~horizon:8_000.0 () in
      let a = Harness.run ~stack script and b = Harness.run ~stack script in
      check_bool
        (Harness.stack_to_string stack ^ " identical traces")
        true
        (a.Harness.events = b.Harness.events);
      check_int
        (Harness.stack_to_string stack ^ " same deliveries")
        a.Harness.delivered b.Harness.delivered)
    Harness.all_stacks

let test_artifact_roundtrip_and_replay () =
  let script = Generator.generate ~seed:2L ~nodes:4 ~horizon:6_000.0 () in
  let o = Harness.run ~inject_reorder:true ~stack:Harness.Abgb script in
  let f = Campaign.failure_of_outcome ~inject_reorder:true o in
  check_bool "json round-trip" true (Campaign.of_json (Campaign.to_json f) = f);
  let dir = Filename.temp_file "fuzz_artifacts" "" in
  Sys.remove dir;
  let path = Campaign.save ~dir ~name:"case" f o in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove (Campaign.trace_path path);
      Sys.rmdir dir)
    (fun () ->
      let f', o', matches = Campaign.replay path in
      check_bool "loaded failure equals saved" true (f' = f);
      check_bool "violation reproduces" false (Audit.ok o'.Harness.report);
      check_bool "trace matches stored recording" true (matches = Some true))

let test_restart_recovers_from_log () =
  (* Kill -9 a node mid-run and boot it back from its durable log: the
     rebuilt stack must rejoin via the sponsor's snapshot without
     redelivering anything it delivered before the crash and without
     disturbing the survivors' total order.  The AB-GB stacks carry no
     waivers, so any violation — including replay-idempotence — fails. *)
  List.iter
    (fun stack ->
      for_seeds ~count:3 (fun seed ->
          let script =
            faultless ~seed
              [
                Fault_script.Restart
                  { node = 2; at = 2_500.0; back_at = 2_600.0 };
              ]
          in
          let o = Harness.run ~stack script in
          check_bool
            (Printf.sprintf "%s seed %Ld: no unwaived violation"
               (Harness.stack_to_string stack)
               seed)
            true
            (Audit.ok o.Harness.report);
          check_bool "group kept delivering" true (o.Harness.delivered > 0)))
    [ Harness.Abgb; Harness.Gbcast ]

(* ---------- campaign sweep ---------- *)

let test_sweep_clean_stacks () =
  let summary =
    Campaign.sweep ~nodes:4 ~horizon:8_000.0
      ~stacks:[ Harness.Abgb; Harness.Gbcast ]
      ~seeds:[ 11L; 12L ] ()
  in
  check_int "all runs executed" 4 summary.Campaign.runs;
  check_int "no failures" 0 (List.length summary.Campaign.found)

let test_sweep_finds_and_shrinks_injected_failure () =
  let summary =
    Campaign.sweep ~nodes:4 ~horizon:6_000.0 ~inject_reorder:true
      ~stacks:[ Harness.Abgb ] ~seeds:[ 21L ] ()
  in
  match summary.Campaign.found with
  | [ found ] ->
      check_bool "shrunk below original" true
        (List.length found.Campaign.failure.Campaign.script.Fault_script.events
        <= List.length found.Campaign.original.Fault_script.events);
      check_bool "shrunk result reproduces" true
        (Campaign.reproduces found.Campaign.failure)
  | l -> Alcotest.failf "expected 1 failure, got %d" (List.length l)

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "regression: sequencer crash + flush" `Slow
          test_regression_sequencer_crash_flush;
        Alcotest.test_case "regression: stale-epoch rival view" `Slow
          test_regression_stale_epoch_rival_view;
        Alcotest.test_case "injected reorder caught" `Quick
          test_injected_reorder_is_caught;
        Alcotest.test_case "injected reorder shrinks away" `Slow
          test_injected_reorder_shrinks_to_nothing;
        Alcotest.test_case "replay is bit-for-bit" `Slow test_replay_bit_for_bit;
        Alcotest.test_case "artifact round-trip + replay" `Quick
          test_artifact_roundtrip_and_replay;
        Alcotest.test_case "restart recovers from log" `Slow
          test_restart_recovers_from_log;
        Alcotest.test_case "sweep: clean stacks" `Slow test_sweep_clean_stacks;
        Alcotest.test_case "sweep: finds and shrinks" `Slow
          test_sweep_finds_and_shrinks_injected_failure;
      ] );
  ]
