(* The durability seam: Storage record framing, both backends, torn-tail
   recovery at every byte offset, KV snapshot blobs, and the teardown
   regressions (a submission inside the batch window must survive an
   orderly shutdown). *)

module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Trace = Gc_sim.Trace
module Storage = Gc_kernel.Storage
module Fstore = Gc_runtime_unix.Fstore
module Stack = Gcs.Gcs_stack
module Kv = Gc_server.Kv
module Proto = Gc_server.Proto
open Support

let check_int = Support.check_int

(* ---------- temp dirs ---------- *)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "gcs-storage-test-%d-%d" (Unix.getpid ()) !counter)
    in
    dir

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---------- record framing ---------- *)

let test_record_roundtrip () =
  let r =
    { Storage.Record.origin = 3; seq = 41; ordered = true; payload = "\x00\xffpx" }
  in
  let r' = Storage.Record.decode (Storage.Record.encode r) in
  Alcotest.(check bool) "roundtrip" true (r = r');
  Alcotest.check_raises "truncated raises Short" Gc_net.Wire.Short (fun () ->
      ignore (Storage.Record.decode ""))

(* ---------- in-memory backend ---------- *)

let collect store from =
  let acc = ref [] in
  Storage.iter_from store from (fun ~index entry -> acc := (index, entry) :: !acc);
  List.rev !acc

let test_in_memory_semantics () =
  let s = Storage.in_memory () in
  check_int "first index" 0 (Storage.append s "a");
  check_int "second index" 1 (Storage.append s "b");
  check_int "third index" 2 (Storage.append s "c");
  Alcotest.(check (pair int int)) "extent" (0, 3) (Storage.extent s);
  Alcotest.(check (list (pair int string)))
    "iter_from 0"
    [ (0, "a"); (1, "b"); (2, "c") ]
    (collect s 0);
  Alcotest.(check (list (pair int string))) "iter_from 2" [ (2, "c") ] (collect s 2);
  Storage.truncate_before s 2;
  Alcotest.(check (pair int int)) "extent after truncate" (2, 3) (Storage.extent s);
  Alcotest.(check (list (pair int string)))
    "truncated prefix gone" [ (2, "c") ] (collect s 0);
  Alcotest.(check bool) "no snapshot yet" true (Storage.load_snapshot s = None);
  Storage.save_snapshot s ~index:3 "blob";
  Alcotest.(check bool)
    "snapshot readable" true
    (Storage.load_snapshot s = Some (3, "blob"))

(* ---------- file backend ---------- *)

let test_fstore_reopen_replays () =
  with_dir (fun dir ->
      let entries = [ "alpha"; ""; String.make 300 'x'; "\x00\x01\xff" ] in
      let s = Fstore.open_dir ~dir () in
      List.iter (fun e -> ignore (Storage.append s e)) entries;
      Storage.save_snapshot s ~index:2 "snapblob";
      Storage.close s;
      let s = Fstore.open_dir ~dir () in
      Alcotest.(check (pair int int)) "extent survives" (0, 4) (Storage.extent s);
      Alcotest.(check (list (pair int string)))
        "entries survive"
        (List.mapi (fun i e -> (i, e)) entries)
        (collect s 0);
      Alcotest.(check bool)
        "snapshot survives" true
        (Storage.load_snapshot s = Some (2, "snapblob"));
      Storage.close s)

let test_fstore_unsynced_appends_visible () =
  with_dir (fun dir ->
      let s = Fstore.open_dir ~dir () in
      ignore (Storage.append s "one");
      ignore (Storage.append s "two");
      (* no sync: the mirror must still serve them *)
      Alcotest.(check (list (pair int string)))
        "mirror sees unsynced" [ (0, "one"); (1, "two") ] (collect s 0);
      Storage.close s)

let test_fstore_truncate_persists () =
  with_dir (fun dir ->
      let s = Fstore.open_dir ~dir () in
      for i = 0 to 9 do
        ignore (Storage.append s (string_of_int i))
      done;
      Storage.truncate_before s 7;
      Storage.close s;
      let s = Fstore.open_dir ~dir () in
      Alcotest.(check (pair int int)) "window survives" (7, 10) (Storage.extent s);
      Alcotest.(check (list (pair int string)))
        "suffix intact" [ (7, "7"); (8, "8"); (9, "9") ] (collect s 0);
      (* appends continue the same index space *)
      check_int "next index" 10 (Storage.append s "10");
      Storage.close s)

let test_fstore_snapshot_pins_empty_log () =
  with_dir (fun dir ->
      let s = Fstore.open_dir ~dir () in
      for i = 0 to 4 do
        ignore (Storage.append s (string_of_int i))
      done;
      Storage.save_snapshot s ~index:5 "covered";
      Storage.truncate_before s 5;
      Storage.close s;
      let s = Fstore.open_dir ~dir () in
      Alcotest.(check (pair int int))
        "snapshot pins index space" (5, 5) (Storage.extent s);
      check_int "append resumes past snapshot" 5 (Storage.append s "five");
      Storage.close s)

(* Torn-tail tolerance, exhaustively: for random logs, cut the file at
   EVERY byte offset strictly inside the final record.  Open must succeed,
   replay exactly the intact prefix, and count one torn tail. *)
let test_torn_tail_every_offset () =
  for seed = 0 to 4 do
    let rng = Random.State.make [| 0xbeef; seed |] in
    let n = 1 + Random.State.int rng 6 in
    let entries =
      List.init n (fun _ ->
          String.init
            (Random.State.int rng 120)
            (fun _ -> Char.chr (Random.State.int rng 256)))
    in
    with_dir (fun dir ->
        let s = Fstore.open_dir ~dir () in
        List.iter (fun e -> ignore (Storage.append s e)) entries;
        Storage.close s;
        let log = Filename.concat dir "log" in
        let raw = In_channel.with_open_bin log In_channel.input_all in
        let total = String.length raw in
        (* find where the last record starts: frame the prefix again *)
        let prefix = List.filteri (fun i _ -> i < n - 1) entries in
        let last_start =
          let w = Buffer.create 256 in
          List.iteri
            (fun i e ->
              let body = Buffer.create 64 in
              Gc_net.Wire.varint body i;
              Gc_net.Wire.str body e;
              Buffer.add_buffer w body;
              let crc = Gc_net.Wire.crc32 (Buffer.contents body) in
              for b = 0 to 3 do
                Buffer.add_char w (Char.chr ((crc lsr (8 * b)) land 0xff))
              done)
            prefix;
          Buffer.length w
        in
        for cut = last_start + 1 to total - 1 do
          let dir2 = temp_dir () in
          Fun.protect
            ~finally:(fun () -> rm_rf dir2)
            (fun () ->
              Unix.mkdir dir2 0o755;
              Out_channel.with_open_bin (Filename.concat dir2 "log") (fun oc ->
                  Out_channel.output_string oc (String.sub raw 0 cut));
              let metrics = Gc_obs.Metrics.create () in
              let s = Fstore.open_dir ~metrics ~dir:dir2 () in
              Alcotest.(check (list (pair int string)))
                (Printf.sprintf "seed %d cut %d: prefix intact" seed cut)
                (List.mapi (fun i e -> (i, e)) prefix)
                (collect s 0);
              check_int
                (Printf.sprintf "seed %d cut %d: torn tail counted" seed cut)
                1
                (Gc_obs.Metrics.counter metrics "storage.torn_tail_dropped");
              (* the log is usable: append after recovery *)
              check_int "append resumes" (n - 1) (Storage.append s "tail");
              Storage.close s)
        done)
  done

(* ---------- KV snapshot blob ---------- *)

let test_kv_blob_roundtrip () =
  let kv = Kv.create () in
  ignore (Kv.apply kv ~origin:0 ~opid:1 ~ordered:true (Proto.Put { key = "a"; value = "1" }));
  ignore (Kv.apply kv ~origin:1 ~opid:7 ~ordered:false (Proto.Incr { key = "n"; delta = 5 }));
  ignore (Kv.apply kv ~origin:0 ~opid:2 ~ordered:true (Proto.Put { key = "b"; value = "2" }));
  let kv' = Kv.create () in
  Kv.restore kv' (Kv.to_blob kv);
  Alcotest.(check string) "order digest" (Kv.order_digest kv) (Kv.order_digest kv');
  Alcotest.(check string) "state digest" (Kv.state_digest kv) (Kv.state_digest kv');
  check_int "ordered count" (Kv.ordered_count kv) (Kv.ordered_count kv');
  check_int "commuting count" (Kv.commuting_count kv) (Kv.commuting_count kv');
  Alcotest.(check bool) "applied-set survives" true (Kv.seen kv' ~origin:1 ~opid:7);
  Alcotest.(check bool) "unseen stays unseen" false (Kv.seen kv' ~origin:1 ~opid:8);
  Alcotest.(check bool)
    "blob is deterministic" true
    (Kv.to_blob kv = Kv.to_blob kv')

(* ---------- stack wiring: log-before-deliver and shutdown flush ---------- *)

type Gc_net.Payload.t += Op of int

let () =
  Gc_net.Payload.register_codec ~tag:"tso"
    ~encode:(fun _enc w p ->
      match p with
      | Op k ->
          Gc_net.Wire.varint w k;
          true
      | _ -> false)
    ~decode:(fun _dec r -> Op (Gc_net.Wire.read_varint r))

let make_stacks ?(config = Stack.default_config) ~with_storage ~n ~seed () =
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let initial = List.init n (fun i -> i) in
  let applied = Array.make n [] in
  let stores =
    Array.init n (fun _ -> if with_storage then Some (Storage.in_memory ()) else None)
  in
  let stacks =
    Array.init n (fun id ->
        let s =
          Stack.create
            (Gc_kernel.Runtime.of_netsim net ~trace)
            ~id ~initial ~config ?storage:stores.(id) ()
        in
        Stack.on_deliver s (fun ~origin:_ ~ordered:_ payload ->
            match payload with
            | Op k -> applied.(id) <- k :: applied.(id)
            | _ -> ());
        s)
  in
  (engine, stacks, applied, stores)

(* Every delivered application message must be in the log, in delivery
   order, with the right ordering class — the write-ahead invariant crash
   recovery rests on. *)
let test_stack_logs_deliveries () =
  let engine, stacks, applied, stores =
    make_stacks ~with_storage:true ~n:3 ~seed:11L ()
  in
  for k = 0 to 5 do
    if k mod 2 = 0 then Stack.abcast stacks.(k mod 3) (Op k)
    else Stack.rbcast stacks.(k mod 3) (Op k)
  done;
  Engine.run ~until:30_000.0 engine;
  check_int "all delivered at 0" 6 (List.length applied.(0));
  let store = Option.get stores.(0) in
  let logged = ref [] in
  Storage.iter_from store 0 (fun ~index:_ entry ->
      let record = Storage.Record.decode entry in
      match Gc_net.Payload.decode record.Storage.Record.payload with
      | Ok (Stack.Gcs_app { body = Op k; _ }) ->
          logged := (k, record.Storage.Record.ordered) :: !logged
      | _ -> ());
  let logged = List.rev !logged in
  Alcotest.(check (list int))
    "log order matches delivery order"
    (List.rev applied.(0))
    (List.map fst logged);
  List.iter
    (fun (k, ordered) ->
      Alcotest.(check bool)
        (Printf.sprintf "op %d ordering class" k)
        (k mod 2 = 0) ordered)
    logged

(* Satellite regression: a message submitted immediately before an orderly
   shutdown sits in the submission batcher; [Stack.shutdown] must flush it
   so the survivors deliver it.  ([Stack.crash] models fail-stop, where
   losing it is correct.) *)
let test_shutdown_flushes_batched_submission () =
  for_seeds ~count:3 (fun seed ->
      let config =
        Stack.Config.make ~exclusion_timeout:500.0 ~batch_delay:50.0 ()
      in
      let engine, stacks, applied, _ =
        make_stacks ~config ~with_storage:false ~n:3 ~seed ()
      in
      ignore
        (Engine.schedule engine ~delay:1_000.0 (fun () ->
             (* inside the 50ms batch window: still parked in the batcher *)
             Stack.abcast stacks.(2) (Op 99);
             Stack.shutdown stacks.(2)));
      Engine.run ~until:60_000.0 engine;
      for i = 0 to 1 do
        Alcotest.(check bool)
          (Printf.sprintf "seed %Ld: survivor %d delivered the parked op" seed i)
          true
          (List.mem 99 applied.(i))
      done)

(* A member that is still in everyone's view and asks to join again (a
   fast restart) must get state directly — a resync — rather than hang
   waiting for a view change that will never come. *)
let test_rejoin_while_still_member_resyncs () =
  let engine, stacks, applied, _ =
    make_stacks ~with_storage:false ~n:3 ~seed:17L ()
  in
  for k = 0 to 3 do
    Stack.abcast stacks.(0) (Op k)
  done;
  ignore
    (Engine.schedule engine ~delay:5_000.0 (fun () ->
         Stack.join stacks.(2) ~force:true ~via:0));
  Engine.run ~until:30_000.0 engine;
  Alcotest.(check bool) "still joined" true (Stack.joined stacks.(2));
  check_int "all delivered" 4 (List.length applied.(2));
  check_int "sponsor answered with a resync" 1
    (Gc_obs.Metrics.counter (Stack.metrics stacks.(0)) "membership.resyncs")

let suite =
  [
    ( "storage",
      [
        Alcotest.test_case "record roundtrip" `Quick test_record_roundtrip;
        Alcotest.test_case "in-memory semantics" `Quick test_in_memory_semantics;
        Alcotest.test_case "fstore reopen replays" `Quick test_fstore_reopen_replays;
        Alcotest.test_case "fstore unsynced appends visible" `Quick
          test_fstore_unsynced_appends_visible;
        Alcotest.test_case "fstore truncate persists" `Quick
          test_fstore_truncate_persists;
        Alcotest.test_case "fstore snapshot pins empty log" `Quick
          test_fstore_snapshot_pins_empty_log;
        Alcotest.test_case "torn tail at every offset" `Quick
          test_torn_tail_every_offset;
        Alcotest.test_case "kv blob roundtrip" `Quick test_kv_blob_roundtrip;
        Alcotest.test_case "stack logs deliveries" `Quick test_stack_logs_deliveries;
        Alcotest.test_case "shutdown flushes batched submission" `Quick
          test_shutdown_flushes_batched_submission;
        Alcotest.test_case "rejoin while still member resyncs" `Quick
          test_rejoin_while_still_member_resyncs;
      ] );
  ]
