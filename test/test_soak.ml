(* Soak test: long randomized scenarios on the full new-architecture stack
   combining every fault type the simulator can inject — a crash, a voluntary
   leave + forced rejoin, delay spikes and link flaps — under sustained mixed
   (ordered + commuting) load, with the full invariant battery at the end.

   This is the "does the whole thing hold together" test; each seed runs
   ~40 virtual seconds. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module Rng = Gc_sim.Rng
module View = Gc_membership.View
module Stack = Gcs.Gcs_stack
open Support

type Gc_net.Payload.t += Op of { k : int; ordered : bool }

let horizon = 40_000.0
let n = 5
let ops = 120

let scenario ~seed =
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let initial = List.init n (fun i -> i) in
  let config =
    Stack.Config.make ~consensus_timeout:120.0 ~exclusion_timeout:1_500.0
      ~state_transfer_delay:25.0 ()
  in
  let histories = Array.make n [] in
  let stacks =
    Array.init n (fun id ->
        let s = Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config () in
        Stack.on_deliver s (fun ~origin:_ ~ordered payload ->
            match payload with
            | Op { k; _ } -> histories.(id) <- (k, ordered) :: histories.(id)
            | _ -> ());
        s)
  in
  let rng = Engine.split_rng engine in
  (* Sustained mixed load from the three stable members (0, 1, 2). *)
  for k = 0 to ops - 1 do
    let sender = Rng.int rng 3 in
    let ordered = Rng.bool rng in
    ignore
      (Engine.schedule engine
         ~delay:(500.0 +. (float_of_int k *. ((horizon -. 8_000.0) /. float_of_int ops)))
         (fun () ->
           if ordered then Stack.abcast stacks.(sender) (Op { k; ordered })
           else Stack.rbcast stacks.(sender) (Op { k; ordered })))
  done;
  (* Fault script: node 4 crashes; node 3 leaves and later force-rejoins;
     background spikes and link flaps throughout. *)
  ignore
    (Engine.schedule engine ~delay:6_000.0 (fun () -> Stack.crash stacks.(4)));
  ignore
    (Engine.schedule engine ~delay:12_000.0 (fun () ->
         Stack.remove stacks.(3) 3));
  ignore
    (Engine.schedule engine ~delay:20_000.0 (fun () ->
         Stack.join ~force:true stacks.(3) ~via:0));
  let rec spikes at =
    if at < horizon -. 6_000.0 then begin
      ignore
        (Engine.schedule engine ~delay:at (fun () ->
             let victim = Rng.int rng 3 in
             Netsim.delay_spike net ~nodes:[ victim ]
               ~until:(Engine.now engine +. 250.0)
               ~extra:200.0));
      spikes (at +. 2_500.0)
    end
  in
  spikes 1_250.0;
  Engine.run ~until:horizon engine;
  (stacks, Array.map List.rev histories)

let survivors = [ 0; 1; 2 ]

let check_invariants (stacks, histories) =
  (* 1. The three stable members delivered every op exactly once. *)
  List.iter
    (fun i ->
      let ks = List.map fst histories.(i) in
      check_int
        (Printf.sprintf "node %d delivered all ops" i)
        ops
        (List.length (List.sort_uniq compare ks));
      check_int "no duplicates" (List.length ks)
        (List.length (List.sort_uniq compare ks)))
    survivors;
  (* 2. Conflicting pairs ordered identically at all stable members. *)
  let pos i =
    let tbl = Hashtbl.create 256 in
    List.iteri (fun idx (k, o) -> Hashtbl.replace tbl k (idx, o)) histories.(i);
    tbl
  in
  let p0 = pos 0 in
  List.iter
    (fun i ->
      let pi = pos i in
      Hashtbl.iter
        (fun k (idx, ordered) ->
          Hashtbl.iter
            (fun k' (idx', ordered') ->
              if k < k' && (ordered || ordered') then
                match (Hashtbl.find_opt pi k, Hashtbl.find_opt pi k') with
                | Some (j, _), Some (j', _) ->
                    if compare idx idx' <> compare j j' then
                      Alcotest.failf "order of %d/%d differs at node %d" k k' i
                | _ -> Alcotest.failf "node %d missing op" i)
            p0)
        p0)
    [ 1; 2 ];
  (* 3. Views converged: crashed node out, rejoiner back in. *)
  List.iter
    (fun i ->
      let v = (Stack.view stacks.(i)).View.members in
      check_list_int
        (Printf.sprintf "final view at %d" i)
        [ 0; 1; 2; 3 ]
        (List.sort compare v))
    survivors;
  check_bool "rejoiner operational" true
    (Stack.joined stacks.(3) && not (Stack.left stacks.(3)));
  (* 4. Nobody wrongfully excluded: only the crashed node left the group
        involuntarily. *)
  List.iter
    (fun i ->
      check_bool
        (Printf.sprintf "stable member %d never left" i)
        false (Stack.left stacks.(i)))
    survivors

let test_soak () =
  for_seeds ~count:4 (fun seed -> check_invariants (scenario ~seed))

let suite =
  [ ("soak", [ Alcotest.test_case "multi-fault soak" `Slow test_soak ]) ]
