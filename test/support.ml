(* Shared helpers for the test suites: build a simulated world with the
   substrate stack (process, failure detector, reliable channel, reliable
   broadcast) on every node. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Rng = Gc_sim.Rng
module Delay = Gc_net.Delay
module Netsim = Gc_net.Netsim
module Process = Gc_kernel.Process
module Fd = Gc_fd.Failure_detector
module Rc = Gc_rchannel.Reliable_channel
module Rb = Gc_rbcast.Reliable_broadcast
module Consensus = Gc_consensus.Consensus

type node = {
  proc : Process.t;
  fd : Fd.t;
  rc : Rc.t;
  rb : Rb.t;
}

type world = {
  engine : Engine.t;
  net : Netsim.t;
  trace : Trace.t;
  nodes : node array;
}

let ids n = List.init n (fun i -> i)

let make_world ?(seed = 42L) ?(delay = Delay.lan) ?(drop = 0.0)
    ?(hb_period = 20.0) ?(rto = 50.0) ?(stuck_after = 10_000.0) ~n () =
  let engine = Engine.create ~seed () in
  let trace = Trace.create ~enabled:true () in
  let net = Netsim.create engine ~trace ~delay ~drop ~n () in
  let peer_ids = ids n in
  let nodes =
    Array.init n (fun i ->
        let proc = Process.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id:i in
        let fd = Fd.create proc ~hb_period ~peers:peer_ids () in
        let rc = Rc.create proc ~rto ~stuck_after () in
        let rb = Rb.create proc rc in
        { proc; fd; rc; rb })
  in
  { engine; net; trace; nodes }

let run_until w time = Engine.run ~until:time w.engine

let check_list_int = Alcotest.(check (list int))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run a deterministic scenario for every seed in [0, count) — cheap
   schedule-space exploration used by the protocol tests. *)
let for_seeds ?(count = 10) f =
  for s = 0 to count - 1 do
    f (Int64.of_int (1000 + s))
  done
