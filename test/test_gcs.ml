(* Integration tests for the full new-architecture stack (Figure 9): both
   broadcast classes, crash-driven exclusion, joins with state transfer, and
   the suspicion-vs-exclusion decoupling of Section 4.3. *)

module Engine = Gc_sim.Engine
module Netsim = Gc_net.Netsim
module Trace = Gc_sim.Trace
module View = Gc_membership.View
module Stack = Gcs.Gcs_stack
open Support

type Gc_net.Payload.t += Op of int | State of int list

let make_stacks ?(config = Stack.default_config) ?(n_founders = None) ~n ~seed
    () =
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let founders =
    match n_founders with None -> n | Some f -> f
  in
  let initial = List.init founders (fun i -> i) in
  let applied = Array.make n [] in
  let stacks =
    Array.init n (fun id ->
        let app_state_provider ~have:_ = State (List.rev applied.(id)) in
        let app_state_installer = function
          | State ops -> applied.(id) <- List.rev ops
          | _ -> ()
        in
        let s =
          Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial ~config ~app_state_provider
            ~app_state_installer ()
        in
        Stack.on_deliver s (fun ~origin:_ ~ordered:_ payload ->
            match payload with
            | Op k -> applied.(id) <- k :: applied.(id)
            | _ -> ());
        s)
  in
  (engine, net, stacks, applied)

let history applied i = List.rev applied.(i)

let test_basic_ordered_broadcast () =
  let engine, _net, stacks, applied = make_stacks ~n:3 ~seed:1L () in
  for k = 0 to 5 do
    Stack.abcast stacks.(k mod 3) (Op k)
  done;
  Engine.run ~until:30_000.0 engine;
  check_int "all delivered" 6 (List.length (history applied 0));
  for i = 1 to 2 do
    check_list_int "identical order" (history applied 0) (history applied i)
  done

let test_rbcast_fast_and_agreed () =
  let engine, _net, stacks, applied = make_stacks ~n:3 ~seed:2L () in
  for k = 0 to 9 do
    Stack.rbcast stacks.(k mod 3) (Op k)
  done;
  Engine.run ~until:30_000.0 engine;
  for i = 0 to 2 do
    check_list_int "same set"
      (List.sort compare (history applied 0))
      (List.sort compare (history applied i))
  done;
  (* Commuting messages never touch consensus: stage stays 0. *)
  check_int "no stage change" 0
    (Gc_gbcast.Generic_broadcast.stage (Stack.generic_broadcast stacks.(0)))

let test_crash_leads_to_exclusion_and_progress () =
  for_seeds ~count:5 (fun seed ->
      let config = Stack.Config.make ~exclusion_timeout:500.0 () in
      let engine, _net, stacks, applied = make_stacks ~config ~n:4 ~seed () in
      Stack.abcast stacks.(0) (Op 1);
      ignore
        (Engine.schedule engine ~delay:300.0 (fun () -> Stack.crash stacks.(3)));
      ignore
        (Engine.schedule engine ~delay:3000.0 (fun () ->
             Stack.abcast stacks.(1) (Op 2)));
      Engine.run ~until:60_000.0 engine;
      (* Crashed member excluded everywhere among survivors. *)
      for i = 0 to 2 do
        check_list_int
          (Printf.sprintf "view at %d" i)
          [ 0; 1; 2 ]
          (Stack.view stacks.(i)).View.members
      done;
      for i = 0 to 2 do
        check_list_int "history" [ 1; 2 ] (history applied i)
      done)

let test_wrong_suspicion_does_not_exclude () =
  (* The paper's Section 4.3: consensus-level suspicions (small timeout) do
     not remove anyone; only the conservative monitoring component does.  A
     spike longer than the consensus timeout but shorter than the exclusion
     timeout must leave the membership intact while messages keep flowing. *)
  let config =
    Stack.Config.make ~consensus_timeout:80.0 ~exclusion_timeout:4000.0 ()
  in
  let engine, net, stacks, applied = make_stacks ~config ~n:3 ~seed:5L () in
  Netsim.delay_spike net ~nodes:[ 0 ] ~until:600.0 ~extra:300.0;
  for k = 0 to 5 do
    ignore
      (Engine.schedule engine ~delay:(float_of_int (k * 100)) (fun () ->
           Stack.abcast stacks.(k mod 3) (Op k)))
  done;
  Engine.run ~until:60_000.0 engine;
  check_int "membership intact" 3 (View.size (Stack.view stacks.(0)));
  check_int "all delivered" 6 (List.length (history applied 0));
  for i = 1 to 2 do
    check_list_int "total order held" (history applied 0) (history applied i)
  done

let test_join_mid_stream () =
  let engine, _net, stacks, applied =
    make_stacks ~n:4 ~n_founders:(Some 3) ~seed:7L ()
  in
  Stack.abcast stacks.(0) (Op 1);
  Stack.abcast stacks.(1) (Op 2);
  ignore
    (Engine.schedule engine ~delay:500.0 (fun () -> Stack.join stacks.(3) ~via:0));
  ignore
    (Engine.schedule engine ~delay:3000.0 (fun () ->
         Stack.abcast stacks.(2) (Op 3)));
  Engine.run ~until:60_000.0 engine;
  check_bool "joiner joined" true (Stack.joined stacks.(3));
  for i = 0 to 3 do
    check_list_int
      (Printf.sprintf "view at %d" i)
      [ 0; 1; 2; 3 ]
      (Stack.view stacks.(i)).View.members
  done;
  (* The joiner's state (transferred ops + live ops) matches the members'. *)
  for i = 0 to 3 do
    check_list_int (Printf.sprintf "history at %d" i) [ 1; 2; 3 ]
      (history applied i)
  done

let test_leave_gracefully () =
  let engine, _net, stacks, _ = make_stacks ~n:3 ~seed:9L () in
  Stack.remove stacks.(2) 2;
  Engine.run ~until:20_000.0 engine;
  check_bool "left" true (Stack.left stacks.(2));
  check_list_int "view shrunk" [ 0; 1 ] (Stack.view stacks.(0)).View.members

let test_mixed_classes_order_against_each_other () =
  for_seeds ~count:6 (fun seed ->
      let engine, _net, stacks, _ = make_stacks ~n:3 ~seed () in
      let tagged = Array.make 3 [] in
      Array.iteri
        (fun i s ->
          Stack.on_deliver s (fun ~origin:_ ~ordered payload ->
              match payload with
              | Op k -> tagged.(i) <- (k, ordered) :: tagged.(i)
              | _ -> ()))
        stacks;
      (* Interleave commuting and ordered messages. *)
      for k = 0 to 7 do
        ignore
          (Engine.schedule engine ~delay:(float_of_int (k * 2)) (fun () ->
               if k mod 2 = 0 then Stack.rbcast stacks.(k mod 3) (Op k)
               else Stack.abcast stacks.(k mod 3) (Op k)))
      done;
      Engine.run ~until:60_000.0 engine;
      (* For each pair where at least one is ordered, relative order agrees
         at every pair of processes. *)
      let pos i =
        let tbl = Hashtbl.create 8 in
        List.iteri (fun idx (k, o) -> Hashtbl.replace tbl k (idx, o))
          (List.rev tagged.(i));
        tbl
      in
      let p0 = pos 0 in
      check_int "all delivered" 8 (Hashtbl.length p0);
      List.iter
        (fun i ->
          let pi = pos i in
          Hashtbl.iter
            (fun k (idx, ordered) ->
              Hashtbl.iter
                (fun k' (idx', ordered') ->
                  if k < k' && (ordered || ordered') then
                    match (Hashtbl.find_opt pi k, Hashtbl.find_opt pi k') with
                    | Some (j, _), Some (j', _) ->
                        check_bool
                          (Printf.sprintf "pair %d/%d" k k')
                          true
                          (compare idx idx' = compare j j')
                    | _ -> Alcotest.fail "missing delivery")
                p0)
            p0)
        [ 1; 2 ])

let test_adaptive_consensus_config () =
  (* The stack runs with the self-tuning consensus monitor: same behaviour,
     no timeout knob. *)
  let config = Stack.Config.make ~consensus_adaptive:true () in
  let engine, _net, stacks, applied = make_stacks ~config ~n:3 ~seed:21L () in
  for k = 0 to 5 do
    Stack.abcast stacks.(k mod 3) (Op k)
  done;
  ignore
    (Engine.schedule engine ~delay:2_000.0 (fun () -> Stack.crash stacks.(0)));
  ignore
    (Engine.schedule engine ~delay:3_000.0 (fun () ->
         Stack.abcast stacks.(1) (Op 6)));
  Engine.run ~until:60_000.0 engine;
  check_int "all seven delivered" 7 (List.length (history applied 1));
  check_list_int "order agreed" (history applied 1) (history applied 2)

let test_two_thirds_stack_config () =
  (* The stack on the published quorums: with n = 4 the fast path survives a
     crash without waiting for the exclusion. *)
  let config =
    Stack.Config.make ~gb_ack_mode:Gc_gbcast.Generic_broadcast.Two_thirds
      ~exclusion_timeout:60_000.0 (* exclusion effectively disabled *) ()
  in
  let engine, _net, stacks, applied = make_stacks ~config ~n:4 ~seed:22L () in
  ignore (Engine.schedule engine ~delay:500.0 (fun () -> Stack.crash stacks.(3)));
  ignore
    (Engine.schedule engine ~delay:1_500.0 (fun () ->
         Stack.rbcast stacks.(0) (Op 1);
         Stack.rbcast stacks.(1) (Op 2)));
  Engine.run ~until:30_000.0 engine;
  (* Commuting traffic delivered by the 3-of-4 quorum despite the crashed,
     still-member node. *)
  for i = 0 to 2 do
    check_int
      (Printf.sprintf "fast delivery at %d with dead member" i)
      2
      (List.length (history applied i))
  done;
  check_int "no exclusion happened" 4 (View.size (Stack.view stacks.(0)))

let test_second_sponsor_after_sponsor_crash () =
  (* The first join request dies with its sponsor; retrying through another
     member succeeds (the retry policy belongs to the application). *)
  let engine, _net, stacks, _ = make_stacks ~n:4 ~n_founders:(Some 3) ~seed:23L () in
  Stack.crash stacks.(0);
  Stack.join stacks.(3) ~via:0;
  ignore
    (Engine.schedule engine ~delay:2_000.0 (fun () ->
         if not (Stack.joined stacks.(3)) then Stack.join stacks.(3) ~via:1));
  Engine.run ~until:60_000.0 engine;
  check_bool "joined via the second sponsor" true (Stack.joined stacks.(3));
  check_bool "member of the view" true
    (View.mem (Stack.view stacks.(1)) 3)

let suite =
  [
    ( "gcs-stack",
      [
        Alcotest.test_case "ordered broadcast" `Quick test_basic_ordered_broadcast;
        Alcotest.test_case "rbcast fast and agreed" `Quick
          test_rbcast_fast_and_agreed;
        Alcotest.test_case "crash -> exclusion -> progress" `Slow
          test_crash_leads_to_exclusion_and_progress;
        Alcotest.test_case "wrong suspicion does not exclude" `Quick
          test_wrong_suspicion_does_not_exclude;
        Alcotest.test_case "join mid-stream" `Quick test_join_mid_stream;
        Alcotest.test_case "leave gracefully" `Quick test_leave_gracefully;
        Alcotest.test_case "mixed classes ordered" `Slow
          test_mixed_classes_order_against_each_other;
        Alcotest.test_case "adaptive consensus config" `Quick
          test_adaptive_consensus_config;
        Alcotest.test_case "two-thirds stack config" `Quick
          test_two_thirds_stack_config;
        Alcotest.test_case "second sponsor after sponsor crash" `Quick
          test_second_sponsor_after_sponsor_crash;
      ] );
  ]
