(* Bit-for-bit determinism pins for the simulator backend.

   A fixed grid of fault-script seeds is run over all four stacks and the
   complete recorded history of each run is digested.  The digests are
   committed in [data/fuzz_pins.txt]; any refactor of the kernel seam, the
   network or the protocol layers that perturbs even one random draw or
   event-schedule interleaving changes a digest and fails here.

   Regenerate (only when a behaviour change is intended and reviewed) with:

     GCS_UPDATE_PINS=1 dune runtest *)

module Harness = Gc_fuzz.Harness
module Generator = Gc_faultgen.Generator
module Event = Gc_obs.Event
module Audit = Gc_obs.Audit
module Json = Gc_obs.Json

let nodes = 4
let horizon = 6_000.0
let casts = 12
let seeds = List.init 50 (fun i -> Int64.of_int (7_000 + i))
let pins_file = "data/fuzz_pins.txt"

let digest_events events =
  let buf = Buffer.create 65_536 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (Event.to_json e));
      Buffer.add_char buf '\n')
    events;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run_cell stack seed =
  let script = Generator.generate ~seed ~nodes ~horizon () in
  let o = Harness.run ~casts ~stack script in
  if not (Audit.ok o.Harness.report) then
    Alcotest.failf "unwaived audit violation: stack=%s seed=%Ld"
      (Harness.stack_to_string stack) seed;
  digest_events o.Harness.events

let compute () =
  List.concat_map
    (fun stack ->
      List.map
        (fun seed ->
          Printf.sprintf "%s %Ld %s"
            (Harness.stack_to_string stack)
            seed (run_cell stack seed))
        seeds)
    Harness.all_stacks

let test_pins () =
  let lines = compute () in
  if Sys.getenv_opt "GCS_UPDATE_PINS" <> None then begin
    let oc = open_out pins_file in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    Printf.printf "wrote %d pins to %s\n" (List.length lines) pins_file
  end
  else begin
    let ic = open_in pins_file in
    let rec read acc =
      match input_line ic with
      | line -> read (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let expected = read [] in
    close_in ic;
    Alcotest.(check int)
      "pin count" (List.length expected) (List.length lines);
    List.iter2
      (fun want got ->
        if want <> got then
          Alcotest.failf "sim trace changed: expected %S, got %S" want got)
      expected lines
  end

let suite =
  [
    ( "fuzz-pins",
      [
        Alcotest.test_case "50-seed x 4-stack sim traces bit-for-bit" `Slow
          test_pins;
      ] );
  ]
