(* Tests for generic broadcast: fast path, generic order on conflicting
   pairs, the reduction properties (empty relation = reliable broadcast,
   total relation = atomic broadcast), thriftiness (no consensus without
   conflicts), and crash tolerance within f < n/3. *)

module Engine = Gc_sim.Engine
module Process = Gc_kernel.Process
module Ab = Gc_abcast.Atomic_broadcast
module Gb = Gc_gbcast.Generic_broadcast
module Conflict = Gc_gbcast.Conflict
open Support

type Gc_net.Payload.t += Update of int | Order of int

let value = function
  | Update k | Order k -> k
  | _ -> Alcotest.fail "unexpected payload"

let classify = function
  | Update _ -> Conflict.Commuting
  | Order _ -> Conflict.Ordered
  | _ -> Conflict.Ordered

let build ?(conflict = Conflict.by_class ~classify) w =
  let n = Array.length w.nodes in
  let logs = Array.make n [] in
  let abs =
    Array.map
      (fun node ->
        Ab.create node.proc ~rc:node.rc ~rb:node.rb ~fd:node.fd ~members:(ids n)
          ())
      w.nodes
  in
  let gbs =
    Array.mapi
      (fun i node ->
        let gb =
          Gb.create node.proc ~rc:node.rc ~rb:node.rb ~ab:abs.(i)
            ~conflict:(Conflict.of_relation conflict) ~members:(ids n) ()
        in
        Gb.on_deliver gb (fun ~origin:_ payload ->
            logs.(i) <- payload :: logs.(i));
        gb)
      w.nodes
  in
  (gbs, logs)

let seq logs i = List.rev logs.(i)
let values logs i = List.map value (seq logs i)

(* Generic order: every pair of conflicting messages delivered by two
   processes appears in the same relative order at both. *)
let assert_generic_order ~conflict logs is =
  let index_of s =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun idx m -> Hashtbl.replace tbl (value m) (idx, m)) s;
    tbl
  in
  let tables = List.map (fun i -> index_of (seq logs i)) is in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.iter
    (fun (ta, tb) ->
      Hashtbl.iter
        (fun v (ia, ma) ->
          Hashtbl.iter
            (fun v' (ia', ma') ->
              if v < v' && conflict ma ma' then
                match (Hashtbl.find_opt tb v, Hashtbl.find_opt tb v') with
                | Some (ib, _), Some (ib', _) ->
                    check_bool
                      (Printf.sprintf "conflicting %d/%d same order" v v')
                      true
                      (compare ia ia' = compare ib ib')
                | _ -> ())
            ta)
        ta)
    (pairs tables)

let test_fast_path_no_conflict () =
  let w = make_world ~n:3 () in
  let gbs, logs = build w in
  (* Only commuting updates: everything must fast-deliver, stage stays 0. *)
  for k = 0 to 9 do
    Gb.gbcast gbs.(k mod 3) (Update k)
  done;
  run_until w 30_000.0;
  for i = 0 to 2 do
    check_int "all delivered" 10 (List.length (seq logs i));
    check_int "no stage change" 0 (Gb.stage gbs.(i))
  done;
  check_int "all fast at node 0" 10 (Gb.fast_delivered_count gbs.(0))

let test_same_delivered_set_any_relation () =
  for_seeds ~count:6 (fun seed ->
      let w = make_world ~seed ~n:3 () in
      let gbs, logs = build w in
      for k = 0 to 7 do
        let payload = if k mod 3 = 0 then Order k else Update k in
        ignore
          (Engine.schedule w.engine ~delay:(float_of_int (k * 2)) (fun () ->
               Gb.gbcast gbs.(k mod 3) payload))
      done;
      run_until w 60_000.0;
      let sets i = List.sort compare (values logs i) in
      check_bool "agreement on delivered set" true
        (sets 0 = sets 1 && sets 1 = sets 2);
      check_int "all delivered" 8 (List.length (sets 0)))

let test_generic_order_class_relation () =
  for_seeds ~count:10 (fun seed ->
      let w = make_world ~seed ~n:3 () in
      let conflict = Conflict.by_class ~classify in
      let gbs, logs = build ~conflict w in
      for k = 0 to 11 do
        let payload = if k mod 4 = 0 then Order k else Update k in
        ignore
          (Engine.schedule w.engine ~delay:(float_of_int k) (fun () ->
               Gb.gbcast gbs.(k mod 3) payload))
      done;
      run_until w 60_000.0;
      check_int "all delivered" 12 (List.length (seq logs 0));
      assert_generic_order ~conflict logs [ 0; 1; 2 ])

let test_total_relation_is_total_order () =
  for_seeds ~count:8 (fun seed ->
      let w = make_world ~seed ~n:3 () in
      let gbs, logs = build ~conflict:Conflict.all w in
      for k = 0 to 8 do
        ignore
          (Engine.schedule w.engine ~delay:(float_of_int (k * 2)) (fun () ->
               Gb.gbcast gbs.(k mod 3) (Update k)))
      done;
      run_until w 60_000.0;
      check_int "all delivered" 9 (List.length (values logs 0));
      check_bool "identical sequences (total order)" true
        (values logs 0 = values logs 1 && values logs 1 = values logs 2))

let test_empty_relation_no_consensus () =
  let w = make_world ~seed:5L ~n:3 () in
  let gbs, logs = build ~conflict:Conflict.none w in
  for k = 0 to 9 do
    Gb.gbcast gbs.(k mod 3) (Order k) (* class irrelevant: relation empty *)
  done;
  run_until w 30_000.0;
  for i = 0 to 2 do
    check_int "all delivered" 10 (List.length (seq logs i));
    check_int "stage untouched" 0 (Gb.stage gbs.(i))
  done

let test_conflict_triggers_exactly_stage_change () =
  let w = make_world ~n:3 () in
  let gbs, logs = build w in
  Gb.gbcast gbs.(0) (Update 1);
  Gb.gbcast gbs.(1) (Order 2);
  run_until w 30_000.0;
  for i = 0 to 2 do
    check_int "both delivered" 2 (List.length (seq logs i));
    check_bool "stage advanced" true (Gb.stage gbs.(i) >= 1)
  done;
  assert_generic_order ~conflict:(Conflict.by_class ~classify) logs [ 0; 1; 2 ]

let test_resumes_fast_path_after_conflict () =
  let w = make_world ~n:3 () in
  let gbs, logs = build w in
  Gb.gbcast gbs.(0) (Update 1);
  Gb.gbcast gbs.(1) (Order 2);
  run_until w 30_000.0;
  let fast_before = Gb.fast_delivered_count gbs.(0) in
  let stage_before = Gb.stage gbs.(0) in
  for k = 10 to 14 do
    Gb.gbcast gbs.(k mod 3) (Update k)
  done;
  run_until w 60_000.0;
  check_int "post-conflict updates delivered" 7 (List.length (seq logs 0));
  check_int "no further stage change" stage_before (Gb.stage gbs.(0));
  check_bool "post-conflict updates were fast" true
    (Gb.fast_delivered_count gbs.(0) >= fast_before + 5)

let test_crash_tolerated_n4 () =
  (* f < n/3 for the fast path: with n = 4 one crash must not block generic
     broadcast, including stage changes. *)
  for_seeds ~count:6 (fun seed ->
      let w = make_world ~seed ~n:4 () in
      let gbs, logs = build w in
      Gb.gbcast gbs.(0) (Update 1);
      ignore
        (Engine.schedule w.engine ~delay:50.0 (fun () ->
             Process.crash w.nodes.(3).proc));
      ignore
        (Engine.schedule w.engine ~delay:1000.0 (fun () ->
             Gb.gbcast gbs.(1) (Update 2);
             Gb.gbcast gbs.(2) (Order 3)));
      run_until w 120_000.0;
      for i = 0 to 2 do
        check_int
          (Printf.sprintf "survivor %d delivered all" i)
          3
          (List.length (seq logs i))
      done;
      assert_generic_order ~conflict:(Conflict.by_class ~classify) logs [ 0; 1; 2 ])

let test_fig8_scenario_two_outcomes () =
  (* Figure 8 of the paper: an update and a primary-change are broadcast
     concurrently.  Either all processes deliver update first, or all deliver
     primary-change first — never a mix. *)
  let update_first = ref 0 and change_first = ref 0 in
  for_seeds ~count:20 (fun seed ->
      let w = make_world ~seed ~n:3 () in
      let gbs, logs = build w in
      ignore
        (Engine.schedule w.engine ~delay:100.0 (fun () ->
             Gb.gbcast gbs.(0) (Update 1)));
      ignore
        (Engine.schedule w.engine ~delay:100.5 (fun () ->
             Gb.gbcast gbs.(1) (Order 2)));
      run_until w 60_000.0;
      let orderings =
        List.map
          (fun i ->
            match values logs i with
            | [ 1; 2 ] -> `Update_first
            | [ 2; 1 ] -> `Change_first
            | l -> Alcotest.failf "bad delivery %d msgs" (List.length l))
          [ 0; 1; 2 ]
      in
      (match orderings with
      | [ a; b; c ] when a = b && b = c ->
          if a = `Update_first then incr update_first else incr change_first
      | _ -> Alcotest.fail "processes disagree on conflicting order"))

let prop_generic_order_random =
  QCheck.Test.make ~name:"generic order across random mixed workloads" ~count:8
    QCheck.(pair small_nat (int_range 1 3))
    (fun (seed, order_every) ->
      let conflict = Conflict.by_class ~classify in
      let n = 3 in
      let w = make_world ~seed:(Int64.of_int ((seed * 131) + 3)) ~n () in
      let gbs, logs = build ~conflict w in
      for k = 0 to 9 do
        let payload = if k mod (order_every + 1) = 0 then Order k else Update k in
        ignore
          (Engine.schedule w.engine ~delay:(float_of_int (k * 2)) (fun () ->
               Gb.gbcast gbs.(k mod n) payload))
      done;
      Engine.run ~until:120_000.0 w.engine;
      let sets i = List.sort compare (values logs i) in
      let ok_sets = sets 0 = sets 1 && sets 1 = sets 2 && List.length (sets 0) = 10 in
      (* Reuse the alcotest-style checker; failures raise. *)
      if ok_sets then assert_generic_order ~conflict logs [ 0; 1; 2 ];
      ok_sets)

let suite =
  [
    ( "gbcast",
      [
        Alcotest.test_case "fast path no conflict" `Quick test_fast_path_no_conflict;
        Alcotest.test_case "same delivered set" `Quick
          test_same_delivered_set_any_relation;
        Alcotest.test_case "generic order (class relation)" `Slow
          test_generic_order_class_relation;
        Alcotest.test_case "total relation gives total order" `Slow
          test_total_relation_is_total_order;
        Alcotest.test_case "empty relation no consensus" `Quick
          test_empty_relation_no_consensus;
        Alcotest.test_case "conflict triggers stage change" `Quick
          test_conflict_triggers_exactly_stage_change;
        Alcotest.test_case "fast path resumes after conflict" `Quick
          test_resumes_fast_path_after_conflict;
        Alcotest.test_case "crash tolerated at n=4" `Slow test_crash_tolerated_n4;
        Alcotest.test_case "figure 8: two consistent outcomes" `Slow
          test_fig8_scenario_two_outcomes;
        QCheck_alcotest.to_alcotest prop_generic_order_random;
      ] );
  ]
