(* Tests for the fault-schedule subsystem: script serialisation, seeded
   generation, injection and the shrinking machinery. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Delay = Gc_net.Delay
module Netsim = Gc_net.Netsim
module Payload = Gc_net.Payload
module Fault_script = Gc_faultgen.Fault_script
module Generator = Gc_faultgen.Generator
module Injector = Gc_faultgen.Injector
module Shrink = Gc_faultgen.Shrink
open Support

(* A script exercising every event constructor. *)
let full_script =
  {
    Fault_script.seed = 123456789L;
    nodes = 5;
    horizon = 10_000.0;
    events =
      [
        Fault_script.Crash { node = 1; at = 500.0; recover_at = Some 1_200.0 };
        Fault_script.Crash { node = 4; at = 2_000.0; recover_at = None };
        Fault_script.Partition
          { at = 1_000.0; heal_at = 1_800.0; groups = [ [ 0; 1 ]; [ 2; 3; 4 ] ] };
        Fault_script.Drop_burst
          { at = 3_000.0; until = 3_500.0; src = 0; dst = 2; rate = 0.8 };
        Fault_script.Delay_spike
          { at = 4_000.0; until = 4_600.0; nodes = [ 2; 3 ]; extra = 250.0 };
        Fault_script.Duplicate
          { at = 5_000.0; until = 5_400.0; src = 1; dst = 3; prob = 0.5 };
        Fault_script.Fd_flap
          { at = 6_000.0; until = 6_300.0; node = 0; peer = 2 };
        Fault_script.Restart { node = 3; at = 7_000.0; back_at = 7_400.0 };
      ];
  }

let test_json_roundtrip () =
  let j = Fault_script.to_json full_script in
  let back = Fault_script.of_json j in
  check_bool "structural round-trip" true (back = full_script);
  (* And through the printed form, as saved files go. *)
  let s = Gc_obs.Json.to_string_pretty j in
  let back2 = Fault_script.of_json (Gc_obs.Json.of_string s) in
  check_bool "textual round-trip" true (back2 = full_script)

let test_file_roundtrip () =
  let path = Filename.temp_file "fault_script" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fault_script.save path full_script;
      check_bool "file round-trip" true (Fault_script.load path = full_script))

let test_validate () =
  check_bool "full script valid" true
    (Result.is_ok (Fault_script.validate full_script));
  let bad node =
    {
      full_script with
      Fault_script.events =
        [ Fault_script.Crash { node; at = 1.0; recover_at = None } ];
    }
  in
  check_bool "out-of-range node rejected" true
    (Result.is_error (Fault_script.validate (bad 5)));
  check_bool "negative node rejected" true
    (Result.is_error (Fault_script.validate (bad (-1))))

let test_generator_deterministic () =
  let g seed = Generator.generate ~seed ~nodes:5 ~horizon:12_000.0 () in
  check_bool "same seed, same script" true (g 7L = g 7L);
  check_bool "different seed, different script" true (g 7L <> g 8L)

let test_generator_invariants () =
  for_seeds ~count:50 (fun seed ->
      let s = Generator.generate ~seed ~nodes:5 ~horizon:12_000.0 () in
      (match Fault_script.validate s with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "seed %Ld: invalid script: %s" seed msg);
      check_bool "at least one event" true (s.Fault_script.events <> []);
      check_bool "within profile cap" true
        (List.length s.Fault_script.events <= Generator.default.Generator.max_events);
      (* Freezes never reach half the group: at any crash start, fewer
         than n/2 crash windows are open. *)
      let crashes =
        List.filter_map
          (function
            | Fault_script.Crash { node; at; recover_at } ->
                Some (node, at, Option.value recover_at ~default:infinity)
            | _ -> None)
          s.Fault_script.events
      in
      List.iter
        (fun (_, at, _) ->
          let open_now =
            List.length
              (List.filter (fun (_, a, r) -> a <= at && at < r) crashes)
          in
          check_bool "minority frozen" true
            (open_now <= (s.Fault_script.nodes - 1) / 2))
        crashes)

let test_generator_stream_independent () =
  (* The generator derives its own stream: drawing from an engine RNG
     before generating must not change the script. *)
  let s1 = Generator.generate ~seed:5L ~nodes:4 ~horizon:8_000.0 () in
  let rng = Gc_sim.Rng.create 5L in
  ignore (Gc_sim.Rng.float rng 1.0);
  let s2 = Generator.generate ~seed:5L ~nodes:4 ~horizon:8_000.0 () in
  check_bool "independent of other streams" true (s1 = s2)

(* ---------- injector ---------- *)

type Payload.t += Probe of int

let test_injector_crash_window () =
  let engine = Engine.create ~seed:1L () in
  let net = Netsim.create engine ~delay:(Delay.Constant 1.0) ~n:3 () in
  let log = ref [] in
  Netsim.register net ~node:1 (fun ~src:_ p ->
      match p with Probe k -> log := k :: !log | _ -> ());
  let script =
    {
      Fault_script.seed = 1L;
      nodes = 3;
      horizon = 1_000.0;
      events =
        [ Fault_script.Crash { node = 1; at = 100.0; recover_at = Some 300.0 } ];
    }
  in
  Injector.install net script;
  let probe time k =
    ignore
      (Engine.schedule_at engine ~time (fun () ->
           Netsim.send net ~src:0 ~dst:1 (Probe k)))
  in
  probe 50.0 1;
  (* before the freeze: delivered *)
  probe 200.0 2;
  (* during: lost *)
  probe 400.0 3;
  (* after recovery: delivered *)
  Engine.run ~until:1_000.0 engine;
  check_list_int "freeze window honoured" [ 1; 3 ] (List.rev !log)

let test_injector_drop_burst_restores_base_rate () =
  let engine = Engine.create ~seed:1L () in
  let net = Netsim.create engine ~delay:(Delay.Constant 1.0) ~n:2 () in
  let script =
    {
      Fault_script.seed = 1L;
      nodes = 2;
      horizon = 1_000.0;
      events =
        [
          Fault_script.Drop_burst
            { at = 100.0; until = 200.0; src = 0; dst = 1; rate = 1.0 };
        ];
    }
  in
  Injector.install net script;
  Engine.run ~until:150.0 engine;
  Alcotest.(check (float 1e-9)) "burst rate" 1.0 (Netsim.link_drop net ~src:0 ~dst:1);
  Engine.run ~until:250.0 engine;
  Alcotest.(check (float 1e-9)) "base rate restored" 0.0
    (Netsim.link_drop net ~src:0 ~dst:1)

(* ---------- shrinking ---------- *)

let test_ddmin_single_culprit () =
  let s = Shrink.ddmin ~test:(fun l -> List.mem 7 l) [ 1; 2; 7; 4; 5; 6 ] in
  check_list_int "isolates the culprit" [ 7 ] s.Shrink.result

let test_ddmin_pair_preserves_order () =
  let s =
    Shrink.ddmin
      ~test:(fun l -> List.mem 3 l && List.mem 9 l)
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  check_list_int "both culprits, in order" [ 3; 9 ] s.Shrink.result

let test_ddmin_fault_independent_failure () =
  (* A test that always fails shrinks to the empty list. *)
  let s = Shrink.ddmin ~test:(fun _ -> true) [ 1; 2; 3; 4 ] in
  check_list_int "empty" [] s.Shrink.result

let test_ddmin_non_failing_input_unchanged () =
  let s = Shrink.ddmin ~test:(fun _ -> false) [ 1; 2; 3 ] in
  check_list_int "unchanged" [ 1; 2; 3 ] s.Shrink.result

let test_params_halves_to_fixpoint () =
  let simplify x = if x > 1 then [ x / 2 ] else [] in
  let s =
    Shrink.params ~test:(fun l -> List.for_all (fun x -> x >= 4) l) ~simplify
      [ 32; 17 ]
  in
  check_list_int "halved while still failing" [ 4; 4 ] s.Shrink.result

let test_shrink_script_end_to_end () =
  (* Failure depends only on the presence of some crash: everything else
     is stripped and the crash parameters simplified. *)
  let has_crash (s : Fault_script.t) =
    List.exists
      (function Fault_script.Crash _ -> true | _ -> false)
      s.Fault_script.events
  in
  let s = Shrink.script ~test:has_crash full_script in
  let events = s.Shrink.result.Fault_script.events in
  check_int "single event left" 1 (List.length events);
  check_bool "it is a crash" true
    (match events with [ Fault_script.Crash _ ] -> true | _ -> false);
  check_bool "seed preserved" true
    (s.Shrink.result.Fault_script.seed = full_script.Fault_script.seed)

let suite =
  [
    ( "faultgen",
      [
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
        Alcotest.test_case "validate" `Quick test_validate;
        Alcotest.test_case "generator deterministic" `Quick
          test_generator_deterministic;
        Alcotest.test_case "generator invariants" `Quick
          test_generator_invariants;
        Alcotest.test_case "generator stream-independent" `Quick
          test_generator_stream_independent;
        Alcotest.test_case "injector crash window" `Quick
          test_injector_crash_window;
        Alcotest.test_case "injector restores burst rate" `Quick
          test_injector_drop_burst_restores_base_rate;
        Alcotest.test_case "ddmin single culprit" `Quick
          test_ddmin_single_culprit;
        Alcotest.test_case "ddmin ordered pair" `Quick
          test_ddmin_pair_preserves_order;
        Alcotest.test_case "ddmin fault-independent" `Quick
          test_ddmin_fault_independent_failure;
        Alcotest.test_case "ddmin non-failing unchanged" `Quick
          test_ddmin_non_failing_input_unchanged;
        Alcotest.test_case "params fixpoint" `Quick test_params_halves_to_fixpoint;
        Alcotest.test_case "shrink script end-to-end" `Quick
          test_shrink_script_end_to_end;
      ] );
  ]
