(* The live telemetry plane over a real in-process TCP cluster: the
   admin Cl_stats / Cl_health endpoints served mid-traffic (JSON and
   Prometheus expositions, digest agreement across replicas) and the
   --telemetry-interval JSONL time-series writer.

   Everything runs on one select loop with port-0 binds, driving the
   servers through framed client connections attached to the same loop
   (the synchronous client would deadlock a single-threaded test). *)

module Evloop = Gc_runtime_unix.Evloop
module Fconn = Gc_runtime_unix.Fconn
module Server = Gc_server.Server
module Proto = Gc_server.Proto
module Telemetry = Gc_server.Telemetry
module Stack = Gcs.Gcs_stack
module Metrics = Gc_obs.Metrics
module Json = Gc_obs.Json
module Snapshot = Gc_obs.Snapshot

let nodes = 3

let boot_cluster ~loop ~n =
  let lo = Unix.inet_addr_loopback in
  let servers =
    Array.init n (fun id ->
        Server.create ~loop ~id ~initial:(List.init n Fun.id)
          ~config:
            (Stack.Config.make ~runtime:Stack.Config.Unix ~hb_period:25.0
               ~consensus_timeout:400.0 ())
          ~peer_listen:(Unix.ADDR_INET (lo, 0))
          ~client_listen:(Unix.ADDR_INET (lo, 0))
          ())
  in
  let peers =
    Array.to_list
      (Array.mapi
         (fun id s -> (id, Unix.ADDR_INET (lo, Server.peer_port s)))
         servers)
  in
  Array.iter (fun s -> Server.set_peers s peers) servers;
  servers

let connect_client ~loop ~port ~on_payload =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_nonblock sock;
  let connecting =
    match Unix.connect sock addr with
    | () -> false
    | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> true
  in
  Fconn.attach ~loop ~connecting sock ~on_payload ~on_close:(fun _ -> ())

(* Drive the loop until the pending-reply table drains (or fail). *)
let pump_until loop ~what cond =
  let deadline = Evloop.now loop +. 20_000.0 in
  while (not (cond ())) && Evloop.now loop < deadline do
    Evloop.run_once loop ~max_wait:20.0
  done;
  if not (cond ()) then Alcotest.failf "timed out waiting for %s" what

(* One framed connection per server plus a tiny request/reply helper. *)
type harness = {
  loop : Evloop.t;
  servers : Server.t array;
  conns : Fconn.t array;
  replies : (int, bool * string) Hashtbl.t;
  mutable next_rid : int;
}

let make_harness () =
  let loop = Evloop.create () in
  let servers = boot_cluster ~loop ~n:nodes in
  let replies = Hashtbl.create 16 in
  let conns =
    Array.map
      (fun s ->
        connect_client ~loop ~port:(Server.client_port s)
          ~on_payload:(fun _ p ->
            match p with
            | Proto.Cl_reply { rid; ok; body } ->
                Hashtbl.replace replies rid (ok, body)
            | _ -> ()))
      servers
  in
  { loop; servers; conns; replies; next_rid = 0 }

let request h ~target make =
  let rid = h.next_rid in
  h.next_rid <- rid + 1;
  Fconn.send h.conns.(target) (make rid);
  pump_until h.loop ~what:(Printf.sprintf "reply %d" rid) (fun () ->
      Hashtbl.mem h.replies rid);
  let ok, body = Hashtbl.find h.replies rid in
  Hashtbl.remove h.replies rid;
  Alcotest.(check bool) (Printf.sprintf "request %d accepted" rid) true ok;
  body

let shutdown h =
  Array.iter Fconn.close h.conns;
  Array.iter Server.shutdown h.servers

let member_exn what k j =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "%s lacks %S" what k

let load h ~ops =
  for i = 0 to ops - 1 do
    let target = i mod nodes in
    ignore
      (request h ~target (fun rid ->
           if i mod 4 = 0 then
             Proto.Cl_put
               { rid; key = Printf.sprintf "k%d" (i mod 5);
                 value = string_of_int i }
           else Proto.Cl_incr { rid; key = "hits"; delta = 1 }))
  done

(* ---------- the stats endpoint ---------- *)

let test_stats_endpoint () =
  let h = make_harness () in
  load h ~ops:24;
  let stats =
    Array.init nodes (fun target ->
        Json.of_string
          (request h ~target (fun rid ->
               Proto.Cl_stats { rid; format = Proto.Stats_json })))
  in
  Array.iteri
    (fun i j ->
      let what = Printf.sprintf "node %d stats" i in
      Alcotest.(check (option (float 1e-9)))
        (what ^ " node id") (Some (float_of_int i))
        (Json.to_float (member_exn what "node" j));
      let kv = member_exn what "kv" j in
      (* 24 ops, every fourth a put: 6 ordered + 18 commuting applies. *)
      Alcotest.(check (option (float 1e-9)))
        (what ^ " ordered applies") (Some 6.0)
        (Json.to_float (member_exn what "ordered" kv));
      Alcotest.(check (option (float 1e-9)))
        (what ^ " commuting applies") (Some 18.0)
        (Json.to_float (member_exn what "commuting" kv));
      let snap = Snapshot.of_json (member_exn what "metrics" j) in
      Alcotest.(check bool)
        (what ^ " delivered abcast traffic") true
        (Snapshot.counter snap "abcast.delivered" > 0);
      Alcotest.(check bool)
        (what ^ " counted applies") true
        (Snapshot.counter snap "server.applied" >= 24);
      (* Every node originated 8 of the 24 ops: its submit->deliver
         histogram holds exactly those, with a finite estimate. *)
      Alcotest.(check int)
        (what ^ " latency histogram size") 8
        (Snapshot.hist_count snap "server.latency_ms");
      Alcotest.(check bool)
        (what ^ " latency p99 finite") true
        (Float.is_finite (Snapshot.quantile snap "server.latency_ms" 0.99)))
    stats;
  (* Replicas agree: same order digest everywhere. *)
  let digest i =
    match
      Json.to_str
        (member_exn "kv" "order_digest"
           (member_exn "stats" "kv" stats.(i)))
    with
    | Some d -> d
    | None -> Alcotest.fail "order_digest not a string"
  in
  let d0 = digest 0 in
  for i = 1 to nodes - 1 do
    Alcotest.(check string)
      (Printf.sprintf "node %d order digest agrees" i)
      d0 (digest i)
  done;
  shutdown h

let test_prometheus_and_health () =
  let h = make_harness () in
  load h ~ops:12;
  let prom =
    request h ~target:0 (fun rid ->
        Proto.Cl_stats { rid; format = Proto.Stats_prometheus })
  in
  let has needle =
    Alcotest.(check bool)
      (Printf.sprintf "prometheus body has %S" needle)
      true
      (let nh = String.length prom and nn = String.length needle in
       let rec go i =
         i + nn <= nh && (String.sub prom i nn = needle || go (i + 1))
       in
       go 0)
  in
  has "# TYPE gcs_server_latency_ms histogram";
  has "gcs_server_latency_ms_count{node=\"0\"}";
  has "le=\"+Inf\"";
  has "gcs_abcast_delivered{node=\"0\"}";
  has "gcs_kv_info{node=\"0\",order_digest=\"";
  let health =
    Json.of_string (request h ~target:2 (fun rid -> Proto.Cl_health { rid }))
  in
  Alcotest.(check (option (float 1e-9)))
    "health node" (Some 2.0)
    (Json.to_float (member_exn "health" "node" health));
  Alcotest.(check bool)
    "health alive" true
    (member_exn "health" "alive" health = Json.Bool true);
  Alcotest.(check (option (float 1e-9)))
    "health members" (Some (float_of_int nodes))
    (Json.to_float (member_exn "health" "members" health));
  shutdown h

(* ---------- the JSONL time-series writer ---------- *)

let test_telemetry_writer () =
  let h = make_harness () in
  let path = Filename.temp_file "gcs_telemetry" ".jsonl" in
  let tl =
    Telemetry.start ~loop:h.loop ~server:h.servers.(0) ~interval_ms:10.0
      ~path
  in
  load h ~ops:8;
  (* Let several intervals elapse while the loop runs. *)
  Evloop.run_for h.loop 80.0;
  Telemetry.stop tl;
  Telemetry.stop tl;
  (* idempotent *)
  let lines = ref [] in
  let ic = open_in path in
  (try
     while true do
       let l = input_line ic in
       if String.trim l <> "" then lines := l :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check bool)
    (Printf.sprintf "several snapshots landed (%d)" (List.length lines))
    true
    (List.length lines >= 3);
  List.iter
    (fun line ->
      let j = Json.of_string line in
      Alcotest.(check (option (float 1e-9)))
        "line node id" (Some 0.0)
        (Json.to_float (member_exn "line" "node" j));
      Alcotest.(check bool)
        "line has a wall-clock ts" true
        (match Json.to_float (member_exn "line" "ts" j) with
        | Some ts -> ts > 1.0e9
        | None -> false);
      let stats = member_exn "line" "stats" j in
      ignore (Snapshot.of_json (member_exn "stats" "metrics" stats)))
    lines;
  (* The last snapshot saw the traffic. *)
  let last = Json.of_string (List.nth lines (List.length lines - 1)) in
  let snap =
    Snapshot.of_json
      (member_exn "stats" "metrics" (member_exn "line" "stats" last))
  in
  Alcotest.(check bool)
    "final snapshot counted applies" true
    (Snapshot.counter snap "server.applied" >= 8);
  (* A restarted writer appends rather than truncating. *)
  let tl2 =
    Telemetry.start ~loop:h.loop ~server:h.servers.(0) ~interval_ms:10.0
      ~path
  in
  Evloop.run_for h.loop 30.0;
  Telemetry.stop tl2;
  let n_after =
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> close_in ic);
    !n
  in
  Alcotest.(check bool)
    (Printf.sprintf "restart appends (%d > %d)" n_after (List.length lines))
    true
    (n_after > List.length lines);
  Sys.remove path;
  shutdown h

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "stats endpoint over live TCP cluster" `Quick
          test_stats_endpoint;
        Alcotest.test_case "prometheus exposition and health" `Quick
          test_prometheus_and_health;
        Alcotest.test_case "jsonl time-series writer" `Quick
          test_telemetry_writer;
      ] );
  ]
