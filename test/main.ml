let () =
  Alcotest.run "groupcomm"
    (Test_sim.suite @ Test_net.suite @ Test_kernel.suite @ Test_fd.suite
   @ Test_rchannel.suite @ Test_rbcast.suite @ Test_consensus.suite @ Test_abcast.suite @ Test_gbcast.suite @ Test_membership.suite @ Test_monitoring.suite @ Test_gcs.suite @ Test_traditional.suite @ Test_replication.suite @ Test_gbcast_modes.suite @ Test_client.suite @ Test_integration.suite @ Test_fifo_gbcast.suite @ Test_totem.suite @ Test_soak.suite @ Test_misc.suite @ Test_obs.suite @ Test_audit.suite
   @ Test_faultgen.suite @ Test_fuzz.suite @ Test_fuzz_pins.suite @ Test_lint.suite
   @ Test_perf_structs.suite @ Test_wire.suite @ Test_conformance.suite
   @ Test_telemetry.suite @ Test_gbcast_batch.suite @ Test_conflict_index.suite
   @ Test_evloop.suite @ Test_storage.suite @ Test_resync.suite)
