(* Gc_obs: the metrics registry (counters, gauges, log-bucketed
   histograms), its JSON round-trip, cross-node merging, the trace
   buffer's bounded capacity, the deprecated emit shim — and the
   architectural end-to-end property the registry exists to expose:
   rbcast-only traffic consumes strictly fewer consensus instances than
   the same traffic totally ordered. *)

module Engine = Gc_sim.Engine
module Trace = Gc_sim.Trace
module Netsim = Gc_net.Netsim
module Stack = Gcs.Gcs_stack
module Metrics = Gc_obs.Metrics
module Json = Gc_obs.Json
open Support

type Gc_net.Payload.t += Obs_op of int

let check_float = Alcotest.(check (float 1e-9))

(* ---------- counters and gauges ---------- *)

let test_counters () =
  let m = Metrics.create () in
  check_int "absent counter reads 0" 0 (Metrics.counter m "c");
  Metrics.incr m "c";
  Metrics.incr m "c" ~by:4;
  check_int "incremented" 5 (Metrics.counter m "c");
  Metrics.set_gauge m "g" 7.5;
  Metrics.set_gauge m "g" 3.25;
  check_float "gauge keeps latest" 3.25 (Metrics.gauge m "g");
  Alcotest.(check (list string)) "names sorted" [ "c"; "g" ] (Metrics.names m)

let test_kind_mismatch () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Alcotest.check_raises "counter used as histogram"
    (Invalid_argument "Metrics: x is not a histogram") (fun () ->
      Metrics.observe m "x" 1.0)

(* ---------- histogram quantiles ---------- *)

let test_quantiles () =
  let m = Metrics.create () in
  Alcotest.(check bool)
    "empty histogram quantile is nan" true
    (Float.is_nan (Metrics.quantile m "h" 0.5));
  for v = 1 to 1000 do
    Metrics.observe m "h" (float_of_int v)
  done;
  check_int "count" 1000 (Metrics.hist_count m "h");
  check_float "max exact" 1000.0 (Metrics.hist_max m "h");
  check_float "mean exact" 500.5 (Metrics.hist_mean m "h");
  (* Log-bucketed estimates: within one bucket (~19% relative error). *)
  let within q lo hi =
    let v = Metrics.quantile m "h" q in
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f=%.1f in [%.0f,%.0f]" (q *. 100.0) v lo hi)
      true
      (v >= lo && v <= hi)
  in
  within 0.50 400.0 620.0;
  within 0.95 780.0 1000.0;
  within 0.99 820.0 1000.0;
  let p50 = Metrics.quantile m "h" 0.5
  and p95 = Metrics.quantile m "h" 0.95
  and p99 = Metrics.quantile m "h" 0.99 in
  Alcotest.(check bool) "quantiles monotone" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool)
    "clamped to observed max" true
    (Metrics.quantile m "h" 1.0 <= Metrics.hist_max m "h")

(* ---------- merging ---------- *)

let test_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "c" ~by:3;
  Metrics.incr b "c" ~by:4;
  Metrics.set_gauge a "g" 10.0;
  Metrics.set_gauge b "g" 2.0;
  Metrics.observe a "h" 5.0;
  Metrics.observe b "h" 50.0;
  Metrics.incr b "only_b";
  let m = Metrics.merged [ a; b ] in
  check_int "counters add" 7 (Metrics.counter m "c");
  check_float "gauges keep max" 10.0 (Metrics.gauge m "g");
  check_int "histogram counts add" 2 (Metrics.hist_count m "h");
  check_float "merged max" 50.0 (Metrics.hist_max m "h");
  check_int "entry present in one side survives" 1 (Metrics.counter m "only_b");
  check_int "sources untouched" 3 (Metrics.counter a "c")

(* ---------- JSON round-trip ---------- *)

let test_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.incr m "consensus.instances_decided" ~by:17;
  Metrics.set_gauge m "membership.sender_blocked_ms_total" 0.0;
  for v = 1 to 64 do
    Metrics.observe m "abcast.latency_ms" (float_of_int v *. 0.7)
  done;
  let j = Metrics.to_json m in
  let m' = Metrics.of_json j in
  Alcotest.(check string)
    "to_json (of_json j) = j" (Json.to_string j)
    (Json.to_string (Metrics.to_json m'));
  check_int "counter survives" 17
    (Metrics.counter m' "consensus.instances_decided");
  check_int "histogram count survives" 64
    (Metrics.hist_count m' "abcast.latency_ms");
  check_float "histogram max survives"
    (Metrics.hist_max m "abcast.latency_ms")
    (Metrics.hist_max m' "abcast.latency_ms");
  (* And through the string parser too. *)
  let m'' = Metrics.of_json (Json.of_string (Json.to_string_pretty j)) in
  Alcotest.(check string)
    "text round-trip" (Json.to_string j)
    (Json.to_string (Metrics.to_json m''))

(* ---------- snapshots: capture, delta, exposition ---------- *)

module Snapshot = Gc_obs.Snapshot

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S present" what needle)
    true (contains hay needle)

let test_snapshot_immutable () =
  let m = Metrics.create () in
  Metrics.incr m "c" ~by:2;
  Metrics.observe m "h" 1.0;
  let s = Snapshot.of_metrics m in
  Metrics.incr m "c" ~by:40;
  Metrics.observe m "h" 9.0;
  check_int "capture frozen: counter" 2 (Snapshot.counter s "c");
  check_int "capture frozen: hist count" 1 (Snapshot.hist_count s "h");
  (* And it round-trips through JSON bit-compatibly with Metrics.to_json. *)
  let j = Snapshot.to_json s in
  Alcotest.(check string)
    "snapshot json round-trip"
    (Json.to_string j)
    (Json.to_string (Snapshot.to_json (Snapshot.of_json j)))

let test_snapshot_delta () =
  let m = Metrics.create () in
  Metrics.incr m "c" ~by:10;
  Metrics.set_gauge m "g" 1.0;
  for v = 1 to 50 do
    Metrics.observe m "h" (float_of_int v)
  done;
  let before = Snapshot.of_metrics m in
  Metrics.incr m "c" ~by:7;
  Metrics.set_gauge m "g" 2.5;
  for v = 51 to 80 do
    Metrics.observe m "h" (float_of_int v)
  done;
  Metrics.incr m "late";
  let after = Snapshot.of_metrics m in
  let d = Snapshot.delta ~before ~after in
  check_int "counters subtract" 7 (Snapshot.counter d "c");
  check_float "gauges keep the after reading" 2.5 (Snapshot.gauge d "g");
  check_int "histogram window count" 30 (Snapshot.hist_count d "h");
  check_int "entries born inside the window survive" 1
    (Snapshot.counter d "late");
  (* The window held 51..80 only: its median must sit far above the
     cumulative median (~40), even with one-bucket resolution. *)
  let p50 = Snapshot.quantile d "h" 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "window p50 %.1f reflects only the window" p50)
    true
    (p50 >= 50.0 && p50 <= 80.0)

let test_snapshot_counter_reset () =
  let a = Metrics.create () in
  Metrics.incr a "c" ~by:100;
  for _ = 1 to 20 do
    Metrics.observe a "h" 5.0
  done;
  let before = Snapshot.of_metrics a in
  (* The source restarts: a fresh registry with smaller readings. *)
  let b = Metrics.create () in
  Metrics.incr b "c" ~by:3;
  Metrics.observe b "h" 5.0;
  let after = Snapshot.of_metrics b in
  let d = Snapshot.delta ~before ~after in
  check_int "decreased counter: after stands alone" 3 (Snapshot.counter d "c");
  check_int "decreased histogram: after stands alone" 1
    (Snapshot.hist_count d "h")

let test_snapshot_quantiles_known () =
  let m = Metrics.create () in
  (* A point mass: every quantile is the exact observed value. *)
  for _ = 1 to 100 do
    Metrics.observe m "point" 42.0
  done;
  let s = Snapshot.of_metrics m in
  check_float "point mass p50" 42.0 (Snapshot.quantile s "point" 0.5);
  check_float "point mass p99" 42.0 (Snapshot.quantile s "point" 0.99);
  (* A 9:1 bimodal mix: p50 near the low mode, p99 at the high one. *)
  let m2 = Metrics.create () in
  for _ = 1 to 90 do
    Metrics.observe m2 "bi" 1.0
  done;
  for _ = 1 to 10 do
    Metrics.observe m2 "bi" 1000.0
  done;
  let s2 = Snapshot.of_metrics m2 in
  let p50 = Snapshot.quantile s2 "bi" 0.5 in
  let p99 = Snapshot.quantile s2 "bi" 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "bimodal p50 %.2f stays at the low mode" p50)
    true
    (p50 >= 0.9 && p50 <= 1.25);
  check_float "bimodal p99 clamps to max" 1000.0 p99;
  Alcotest.(check bool)
    "absent histogram quantile is nan" true
    (Float.is_nan (Snapshot.quantile s2 "nope" 0.5))

let test_include_zeros () =
  let m = Metrics.create () in
  Metrics.incr m "live";
  Metrics.incr m "dead" ~by:0;
  ignore (Metrics.quantile m "empty_hist" 0.5);
  let default = Json.to_string (Metrics.to_json m) in
  let kept = Json.to_string (Metrics.to_json ~include_zeros:true m) in
  check_contains "default keeps live entries" default "\"live\"";
  Alcotest.(check bool)
    "default drops zero counters" false
    (contains default "\"dead\"");
  check_contains "include_zeros keeps zero counters" kept "\"dead\"";
  (* Snapshot exposition honours the same flag. *)
  let s = Snapshot.of_metrics m in
  Alcotest.(check bool)
    "snapshot default drops zeros too" false
    (contains (Json.to_string (Snapshot.to_json s)) "\"dead\"");
  check_contains "snapshot include_zeros"
    (Json.to_string (Snapshot.to_json ~include_zeros:true s))
    "\"dead\""

let test_prometheus_exposition () =
  let m = Metrics.create () in
  Metrics.incr m "abcast.delivered" ~by:12;
  Metrics.set_gauge m "evloop.open_fds" 9.0;
  Metrics.observe m "server.latency_ms" 0.5;
  Metrics.observe m "server.latency_ms" 2.0;
  Metrics.observe m "server.latency_ms" 100.0;
  let s = Snapshot.of_metrics m in
  let text =
    Snapshot.to_prometheus ~labels:[ ("node", "a\\b\"c\nd") ] s
  in
  (* Dotted names sanitise to the exposition charset, under the gcs_
     namespace. *)
  check_contains "counter TYPE" text "# TYPE gcs_abcast_delivered counter";
  check_contains "counter sample" text "gcs_abcast_delivered{node=";
  check_contains "gauge TYPE" text "# TYPE gcs_evloop_open_fds gauge";
  check_contains "histogram TYPE" text
    "# TYPE gcs_server_latency_ms histogram";
  (* Label values escape backslash, quote and newline. *)
  check_contains "label escaping" text {|node="a\\b\"c\nd"|};
  (* Cumulative buckets end at +Inf = count, with sum and count samples. *)
  check_contains "+Inf bucket" text {|le="+Inf"|};
  check_contains "sum sample" text "gcs_server_latency_ms_sum";
  check_contains "count sample" text "gcs_server_latency_ms_count";
  let inf_line =
    List.find
      (fun l -> contains l {|le="+Inf"|})
      (String.split_on_char '\n' text)
  in
  check_contains "+Inf bucket equals count" inf_line "} 3";
  (* le values are monotone: every bucket count <= the +Inf count. *)
  List.iter
    (fun l ->
      if contains l "_bucket{" && not (contains l "+Inf") then
        match String.rindex_opt l ' ' with
        | Some i ->
            let c =
              float_of_string
                (String.sub l (i + 1) (String.length l - i - 1))
            in
            Alcotest.(check bool) "bucket below count" true (c <= 3.0)
        | None -> Alcotest.fail "unparseable bucket line")
    (String.split_on_char '\n' text)

(* ---------- trace capacity and structured emission ---------- *)

let test_trace_capacity () =
  let t = Trace.create ~enabled:true ~capacity:10 () in
  for i = 0 to 24 do
    Trace.emit t ~time:(float_of_int i) ~node:0 ~component:"c" ~event:"e"
      ~attrs:[ ("i", string_of_int i) ]
      ()
  done;
  let rs = Trace.records t in
  check_int "capacity bounds the buffer" 10 (List.length rs);
  Alcotest.(check (option string))
    "oldest surviving record is #15" (Some "15")
    (Trace.attr (List.hd rs) "i");
  Alcotest.(check (option string))
    "newest record is #24" (Some "24")
    (Trace.attr (List.nth rs 9) "i")

let test_structured_emit () =
  let t = Trace.create ~enabled:true () in
  Trace.emit t ~time:1.0 ~node:2 ~component:"layer" ~event:"deliver"
    ~attrs:[ ("detail", "free-form detail") ]
    ();
  Trace.emit t ~time:2.0 ~node:2 ~component:"layer" ~event:"frobnicate" ();
  match Trace.records t with
  | [ r1; r2 ] ->
      Alcotest.(check (option string))
        "attrs carry the detail" (Some "free-form detail")
        (Trace.attr r1 "detail");
      Alcotest.(check string)
        "detail rendering" "detail=free-form detail" (Trace.detail r1);
      Alcotest.(check bool)
        "known tags parse to typed kinds" true
        (r1.Trace.kind = Gc_obs.Event.Deliver);
      Alcotest.(check bool)
        "unknown tags become Custom" true
        (r2.Trace.kind = Gc_obs.Event.Custom "frobnicate");
      Alcotest.(check (list (pair string string)))
        "no attrs by default" [] r2.Trace.attrs
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

(* ---------- end-to-end: rbcast avoids consensus ---------- *)

let run_workload ~ordered =
  let engine = Engine.create ~seed:77L () in
  let trace = Trace.create () in
  let n = 3 in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let initial = List.init n (fun i -> i) in
  let delivered = ref 0 in
  let stacks =
    Array.init n (fun id ->
        let s = Stack.create (Gc_kernel.Runtime.of_netsim net ~trace) ~id ~initial () in
        Stack.on_deliver s (fun ~origin:_ ~ordered:_ _ ->
            if id = 0 then incr delivered);
        s)
  in
  for k = 0 to 19 do
    ignore
      (Engine.schedule engine
         ~delay:(100.0 +. (float_of_int k *. 25.0))
         (fun () ->
           let s = stacks.(k mod n) in
           let p = Obs_op (1000 + k) in
           if ordered then Stack.abcast s p else Stack.rbcast s p))
  done;
  Engine.run ~until:5_000.0 engine;
  let m = Metrics.merged (Array.to_list stacks |> List.map Stack.metrics) in
  (!delivered, m)

let test_rbcast_needs_fewer_instances () =
  let d_rb, m_rb = run_workload ~ordered:false in
  let d_ab, m_ab = run_workload ~ordered:true in
  check_int "rbcast delivered all" 20 d_rb;
  check_int "abcast delivered all" 20 d_ab;
  let i_rb = Metrics.counter m_rb "consensus.instances_decided"
  and i_ab = Metrics.counter m_ab "consensus.instances_decided" in
  Alcotest.(check bool)
    (Printf.sprintf
       "rbcast-only uses strictly fewer consensus instances (%d < %d)" i_rb
       i_ab)
    true (i_rb < i_ab);
  Alcotest.(check bool)
    "abcast workload used consensus at all" true (i_ab > 0);
  Alcotest.(check bool)
    "rbcast workload counted its deliveries" true
    (Metrics.counter m_rb "rbcast.delivered" >= 20 * 3)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counters and gauges" `Quick test_counters;
        Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch;
        Alcotest.test_case "histogram quantiles" `Quick test_quantiles;
        Alcotest.test_case "merge semantics" `Quick test_merge;
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "snapshot is immutable" `Quick
          test_snapshot_immutable;
        Alcotest.test_case "snapshot delta" `Quick test_snapshot_delta;
        Alcotest.test_case "snapshot counter reset" `Quick
          test_snapshot_counter_reset;
        Alcotest.test_case "snapshot quantiles on known distributions" `Quick
          test_snapshot_quantiles_known;
        Alcotest.test_case "to_json include_zeros" `Quick test_include_zeros;
        Alcotest.test_case "prometheus exposition" `Quick
          test_prometheus_exposition;
        Alcotest.test_case "trace capacity eviction" `Quick test_trace_capacity;
        Alcotest.test_case "structured emit" `Quick test_structured_emit;
        Alcotest.test_case "rbcast uses fewer consensus instances" `Quick
          test_rbcast_needs_fewer_instances;
      ] );
  ]
