(* The binary wire layer: primitive round-trips, the extensible-payload
   codec registry with its typed errors, and length-prefixed framing with
   the incremental stream decoder (reject counting, resynchronisation,
   terminal length corruption). *)

module Wire = Gc_net.Wire
module Payload = Gc_net.Payload
module Frame = Gc_net.Frame
module Metrics = Gc_obs.Metrics
module Proto = Gc_server.Proto
module Ru = Gc_runtime_unix.Runtime_unix
open Support

type Gc_net.Payload.t += Unregistered of int

let check_str = Alcotest.(check string)

(* ---------- wire primitives ---------- *)

let test_wire_roundtrip () =
  let w = Buffer.create 64 in
  Wire.u8 w 200;
  List.iter (Wire.varint w)
    [ 0; 1; -1; 63; -64; 1 lsl 40; -(1 lsl 40); max_int; min_int ];
  Wire.f64 w 3.25;
  Wire.f64 w Float.neg_infinity;
  Wire.str w "";
  Wire.str w "hello \x00 wire";
  Wire.list w Wire.varint [ 5; 6; 7 ];
  Wire.option w Wire.str None;
  Wire.option w Wire.str (Some "x");
  Wire.pair w Wire.varint Wire.str (9, "y");
  let r = Wire.reader (Buffer.contents w) in
  check_int "u8" 200 (Wire.read_u8 r);
  List.iter
    (fun v -> check_int "varint" v (Wire.read_varint r))
    [ 0; 1; -1; 63; -64; 1 lsl 40; -(1 lsl 40); max_int; min_int ];
  Alcotest.(check (float 0.0)) "f64" 3.25 (Wire.read_f64 r);
  Alcotest.(check bool) "f64 -inf" true
    (Wire.read_f64 r = Float.neg_infinity);
  check_str "empty str" "" (Wire.read_str r);
  check_str "str" "hello \x00 wire" (Wire.read_str r);
  check_list_int "list" [ 5; 6; 7 ] (Wire.read_list r Wire.read_varint);
  Alcotest.(check (option string)) "none" None (Wire.read_option r Wire.read_str);
  Alcotest.(check (option string)) "some" (Some "x")
    (Wire.read_option r Wire.read_str);
  let a, b = Wire.read_pair r Wire.read_varint Wire.read_str in
  check_int "pair fst" 9 a;
  check_str "pair snd" "y" b;
  check_int "fully consumed" 0 (Wire.remaining r)

let test_wire_short () =
  let r = Wire.reader "\x05" in
  Alcotest.check_raises "short read" Wire.Short (fun () ->
      ignore (Wire.read_str r))

(* ---------- payload codec ---------- *)

let roundtrip p =
  match Payload.encode p with
  | Error e -> Alcotest.failf "encode: %s" (Payload.codec_error_to_string e)
  | Ok bytes -> (
      match Payload.decode bytes with
      | Error e ->
          Alcotest.failf "decode: %s" (Payload.codec_error_to_string e)
      | Ok p' -> p')

let test_codec_roundtrip () =
  (match roundtrip (Proto.Cl_put { rid = 7; key = "k"; value = "v" }) with
  | Proto.Cl_put { rid = 7; key = "k"; value = "v" } -> ()
  | p -> Alcotest.failf "wrong payload back: %s" (Payload.to_string p));
  (* Nested extension constructors recurse through the registry. *)
  match
    roundtrip
      (Ru.Datagram
         { src = 3; inner = Proto.Sv_op { origin = 1; opid = 42;
             op = Proto.Incr { key = "hits"; delta = -5 } } })
  with
  | Ru.Datagram
      { src = 3; inner = Proto.Sv_op { origin = 1; opid = 42;
          op = Proto.Incr { key = "hits"; delta = -5 } } } -> ()
  | p -> Alcotest.failf "wrong nested payload: %s" (Payload.to_string p)

let test_codec_errors () =
  (match Payload.encode (Unregistered 3) with
  | Error (Payload.Unencodable _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "unregistered payload must not encode");
  Alcotest.(check bool) "encodable" false (Payload.encodable (Unregistered 3));
  let unknown_tag_bytes =
    let b = Buffer.create 16 in
    Wire.str b "nosuchtag";
    Buffer.contents b
  in
  (match Payload.decode unknown_tag_bytes with
  | Error (Payload.Unknown_tag _) -> ()
  | _ -> Alcotest.fail "unknown tag must be typed");
  let ok =
    match Payload.encode (Proto.Cl_dump { rid = 1 }) with
    | Ok b -> b
    | Error _ -> Alcotest.fail "encode"
  in
  (match Payload.decode (String.sub ok 0 (String.length ok - 1)) with
  | Error (Payload.Truncated | Payload.Malformed _) -> ()
  | _ -> Alcotest.fail "truncated body must be typed");
  match Payload.decode (ok ^ "x") with
  | Error (Payload.Trailing 1) -> ()
  | _ -> Alcotest.fail "trailing bytes must be typed"

(* ---------- framing ---------- *)

let frame_of p =
  match Frame.encode p with
  | Ok f -> f
  | Error e -> Alcotest.failf "frame encode: %s" (Frame.error_to_string e)

let test_frame_roundtrip () =
  let f = frame_of (Proto.Cl_get { rid = 9; key = "k" }) in
  match Frame.decode_exact f with
  | Ok (Proto.Cl_get { rid = 9; key = "k" }) -> ()
  | Ok p -> Alcotest.failf "wrong payload: %s" (Payload.to_string p)
  | Error e -> Alcotest.failf "decode_exact: %s" (Frame.error_to_string e)

let test_frame_oversized () =
  let big = String.make 64 'x' in
  (match Frame.encode ~limit:8 (Proto.Cl_put { rid = 0; key = big; value = big }) with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized encode must be typed");
  let f = frame_of (Proto.Cl_put { rid = 0; key = big; value = big }) in
  match Frame.decode_exact ~limit:8 f with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized decode must be typed"

let test_decoder_stream_and_resync () =
  let m = Metrics.create () in
  let d = Frame.Decoder.create ~metrics:m () in
  let f1 = frame_of (Proto.Cl_dump { rid = 1 }) in
  let f2 = frame_of (Proto.Cl_dump { rid = 2 }) in
  (* A frame with a valid length but an undecodable body. *)
  let junk_body =
    let b = Buffer.create 16 in
    Wire.str b "nosuchtag";
    Buffer.contents b
  in
  let junk =
    let b = Buffer.create 16 in
    Buffer.add_uint8 b 0;
    Buffer.add_uint8 b 0;
    Buffer.add_uint8 b 0;
    Buffer.add_uint8 b (String.length junk_body);
    Buffer.add_string b junk_body;
    Buffer.contents b
  in
  let stream = f1 ^ junk ^ f2 in
  (* Feed byte by byte: every prefix must simply await. *)
  String.iter (fun c -> Frame.Decoder.feed_string d (String.make 1 c)) stream;
  (match Frame.Decoder.next d with
  | `Payload (Proto.Cl_dump { rid = 1 }) -> ()
  | _ -> Alcotest.fail "first frame");
  (match Frame.Decoder.next d with
  | `Corrupt (Frame.Codec (Payload.Unknown_tag _)) -> ()
  | _ -> Alcotest.fail "junk frame must surface as typed corrupt");
  Alcotest.(check bool) "body corruption is not fatal" false
    (Frame.Decoder.dead d);
  (match Frame.Decoder.next d with
  | `Payload (Proto.Cl_dump { rid = 2 }) -> ()
  | _ -> Alcotest.fail "stream must resynchronise after a bad body");
  (match Frame.Decoder.next d with `Await -> () | _ -> Alcotest.fail "drained");
  check_int "one reject" 1 (Frame.Decoder.rejected d);
  check_int "net.frame_reject counted" 1 (Metrics.counter m "net.frame_reject")

let test_decoder_dead_on_bad_length () =
  let m = Metrics.create () in
  let d = Frame.Decoder.create ~limit:1024 ~metrics:m () in
  Frame.Decoder.feed_string d "\xff\xff\xff\xff";
  (match Frame.Decoder.next d with
  | `Corrupt (Frame.Bad_length _ | Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "length corruption must surface");
  Alcotest.(check bool) "decoder dead" true (Frame.Decoder.dead d);
  (match Frame.Decoder.next d with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "dead decoder stays corrupt");
  check_int "reject counted" 1 (Metrics.counter m "net.frame_reject")

let suite =
  [
    ( "wire",
      [
        Alcotest.test_case "primitive round-trip" `Quick test_wire_roundtrip;
        Alcotest.test_case "short read raises Short" `Quick test_wire_short;
        Alcotest.test_case "codec round-trip (incl. nesting)" `Quick
          test_codec_roundtrip;
        Alcotest.test_case "codec typed errors" `Quick test_codec_errors;
        Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
        Alcotest.test_case "frame oversized both ways" `Quick
          test_frame_oversized;
        Alcotest.test_case "decoder streams, rejects, resyncs" `Quick
          test_decoder_stream_and_resync;
        Alcotest.test_case "decoder dies on length corruption" `Quick
          test_decoder_dead_on_bad_length;
      ] );
  ]
