(* The binary wire layer: primitive round-trips, the extensible-payload
   codec registry with its typed errors, and length-prefixed framing with
   the incremental stream decoder (reject counting, resynchronisation,
   terminal length corruption). *)

module Wire = Gc_net.Wire
module Payload = Gc_net.Payload
module Frame = Gc_net.Frame
module Metrics = Gc_obs.Metrics
module Proto = Gc_server.Proto
module Ru = Gc_runtime_unix.Runtime_unix
open Support

type Gc_net.Payload.t += Unregistered of int

let check_str = Alcotest.(check string)

(* ---------- wire primitives ---------- *)

let test_wire_roundtrip () =
  let w = Buffer.create 64 in
  Wire.u8 w 200;
  List.iter (Wire.varint w)
    [ 0; 1; -1; 63; -64; 1 lsl 40; -(1 lsl 40); max_int; min_int ];
  Wire.f64 w 3.25;
  Wire.f64 w Float.neg_infinity;
  Wire.str w "";
  Wire.str w "hello \x00 wire";
  Wire.list w Wire.varint [ 5; 6; 7 ];
  Wire.option w Wire.str None;
  Wire.option w Wire.str (Some "x");
  Wire.pair w Wire.varint Wire.str (9, "y");
  let r = Wire.reader (Buffer.contents w) in
  check_int "u8" 200 (Wire.read_u8 r);
  List.iter
    (fun v -> check_int "varint" v (Wire.read_varint r))
    [ 0; 1; -1; 63; -64; 1 lsl 40; -(1 lsl 40); max_int; min_int ];
  Alcotest.(check (float 0.0)) "f64" 3.25 (Wire.read_f64 r);
  Alcotest.(check bool) "f64 -inf" true
    (Wire.read_f64 r = Float.neg_infinity);
  check_str "empty str" "" (Wire.read_str r);
  check_str "str" "hello \x00 wire" (Wire.read_str r);
  check_list_int "list" [ 5; 6; 7 ] (Wire.read_list r Wire.read_varint);
  Alcotest.(check (option string)) "none" None (Wire.read_option r Wire.read_str);
  Alcotest.(check (option string)) "some" (Some "x")
    (Wire.read_option r Wire.read_str);
  let a, b = Wire.read_pair r Wire.read_varint Wire.read_str in
  check_int "pair fst" 9 a;
  check_str "pair snd" "y" b;
  check_int "fully consumed" 0 (Wire.remaining r)

let test_wire_short () =
  let r = Wire.reader "\x05" in
  Alcotest.check_raises "short read" Wire.Short (fun () ->
      ignore (Wire.read_str r))

(* ---------- payload codec ---------- *)

let roundtrip p =
  match Payload.encode p with
  | Error e -> Alcotest.failf "encode: %s" (Payload.codec_error_to_string e)
  | Ok bytes -> (
      match Payload.decode bytes with
      | Error e ->
          Alcotest.failf "decode: %s" (Payload.codec_error_to_string e)
      | Ok p' -> p')

let test_codec_roundtrip () =
  (match roundtrip (Proto.Cl_put { rid = 7; key = "k"; value = "v" }) with
  | Proto.Cl_put { rid = 7; key = "k"; value = "v" } -> ()
  | p -> Alcotest.failf "wrong payload back: %s" (Payload.to_string p));
  (* Nested extension constructors recurse through the registry. *)
  match
    roundtrip
      (Ru.Datagram
         { src = 3; inner = Proto.Sv_op { origin = 1; opid = 42;
             op = Proto.Incr { key = "hits"; delta = -5 } } })
  with
  | Ru.Datagram
      { src = 3; inner = Proto.Sv_op { origin = 1; opid = 42;
          op = Proto.Incr { key = "hits"; delta = -5 } } } -> ()
  | p -> Alcotest.failf "wrong nested payload: %s" (Payload.to_string p)

let test_codec_errors () =
  (match Payload.encode (Unregistered 3) with
  | Error (Payload.Unencodable _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "unregistered payload must not encode");
  Alcotest.(check bool) "encodable" false (Payload.encodable (Unregistered 3));
  let unknown_tag_bytes =
    let b = Buffer.create 16 in
    Wire.str b "nosuchtag";
    Buffer.contents b
  in
  (match Payload.decode unknown_tag_bytes with
  | Error (Payload.Unknown_tag _) -> ()
  | _ -> Alcotest.fail "unknown tag must be typed");
  let ok =
    match Payload.encode (Proto.Cl_dump { rid = 1 }) with
    | Ok b -> b
    | Error _ -> Alcotest.fail "encode"
  in
  (match Payload.decode (String.sub ok 0 (String.length ok - 1)) with
  | Error (Payload.Truncated | Payload.Malformed _) -> ()
  | _ -> Alcotest.fail "truncated body must be typed");
  match Payload.decode (ok ^ "x") with
  | Error (Payload.Trailing 1) -> ()
  | _ -> Alcotest.fail "trailing bytes must be typed"

(* ---------- hot-path codecs (gbcast / abcast / consensus) ----------

   The gbcast, abcast and consensus payload constructors are module-private,
   so their binary codecs are exercised behaviourally: a batched three-node
   Ab+Gb world runs a conflicting/commuting mix over a runtime whose [send]
   is wrapped to capture every payload that crosses the wire.  Every
   captured payload must be binary-encodable (the hot path never falls back
   to the structural escape hatch), survive a round-trip with its printed
   form and its bytes intact, reject every strict prefix with a typed
   error, and never escape an exception on corrupted bytes. *)

module Ab = Gc_abcast.Atomic_broadcast
module Gb = Gc_gbcast.Generic_broadcast
module Conflict = Gc_gbcast.Conflict
module Runtime = Gc_kernel.Runtime

type Gc_net.Payload.t += Wop of { klass : int; k : int }

let () =
  Payload.register_codec ~tag:"test.wop"
    ~encode:(fun _enc w p ->
      match p with
      | Wop { klass; k } ->
          Wire.u8 w klass;
          Wire.varint w k;
          true
      | _ -> false)
    ~decode:(fun _dec r ->
      let klass = Wire.read_u8 r in
      let k = Wire.read_varint r in
      Wop { klass; k })

let capture_mode_payloads ack_mode =
  let n = 3 in
  let engine = Engine.create ~seed:4242L () in
  let trace = Trace.create ~enabled:false () in
  let net = Netsim.create engine ~trace ~delay:Gc_net.Delay.lan ~n () in
  let captured = ref [] in
  let conflict =
    Conflict.two_class ~classify:(function
      | Wop { klass = 0; _ } -> Conflict.Commuting
      | _ -> Conflict.Ordered)
  in
  let make_node i =
    let base = Runtime.of_netsim net ~trace in
    let runtime =
      {
        base with
        Runtime.send =
          (fun ?size ~src ~dst p ->
            captured := p :: !captured;
            base.Runtime.send ?size ~src ~dst p);
      }
    in
    let proc = Process.create runtime ~id:i in
    let fd = Fd.create proc ~hb_period:20.0 ~peers:(ids n) () in
    let rc = Rc.create proc ~rto:50.0 ~stuck_after:10_000.0 () in
    let rb = Rb.create proc rc in
    let ab =
      Ab.create proc ~rc ~rb ~fd ~batch_max:3 ~batch_delay:2.0 ~members:(ids n)
        ()
    in
    let gb =
      Gb.create proc ~rc ~rb ~ab ~conflict ~ack_mode ~batch_max:3
        ~batch_delay:2.0 ~members:(ids n) ()
    in
    (ab, gb)
  in
  let nodes = Array.init n make_node in
  let at time f = ignore (Engine.schedule_at engine ~time f) in
  (* Three back-to-back commuting ops fill a submission batch
     (gb.fastbatch) whose acknowledgements ride one vector (gb.acks). *)
  at 100.0 (fun () ->
      for k = 0 to 2 do
        Gb.gbcast (snd nodes.(0)) (Wop { klass = 0; k })
      done);
  (* An ordered op forces a stage change: gb.state, gb.cut and the
     consensus instance behind it (cs.*, with ab.batch nested). *)
  at 200.0 (fun () -> Gb.gbcast (snd nodes.(1)) (Wop { klass = 1; k = 10 }));
  (* A lone commuting op flushes by tick: singleton gb.fast / gb.ack. *)
  at 300.0 (fun () -> Gb.gbcast (snd nodes.(2)) (Wop { klass = 0; k = 20 }));
  (* Back-to-back direct abcasts fill an ab.submit batch. *)
  at 400.0 (fun () ->
      for k = 30 to 32 do
        Ab.abcast (fst nodes.(0)) (Wop { klass = 1; k })
      done);
  Engine.run ~until:5_000.0 engine;
  List.rev !captured

(* Both quorum modes: All_members cuts straight from the local state, so
   [Gb_state] only crosses the wire in Two_thirds mode. *)
let capture_hot_path_payloads () =
  let captured =
    capture_mode_payloads Gb.All_members
    @ capture_mode_payloads Gb.Two_thirds
  in
  (* Dedupe by printed form: the codec checks are per-shape, not per-copy. *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun p ->
      let s = Payload.to_string p in
      if Hashtbl.mem seen s then false
      else begin
        Hashtbl.replace seen s ();
        true
      end)
    captured

let test_hot_path_codec_coverage () =
  let payloads = capture_hot_path_payloads () in
  let printed = List.map Payload.to_string payloads in
  (* Wire payloads arrive wrapped in rc/rb envelopes ("rc.data#..(rb#..(gb.
     fast#..))"), so coverage is a substring check on the printed form. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let covers needle =
    check_bool
      (Printf.sprintf "workload produced a %s payload" needle)
      true
      (List.exists (fun s -> contains s needle) printed)
  in
  (* The batching-era wire vocabulary must actually appear on the wire —
     batch containers, their singleton degenerations, the stage-change
     path and the consensus instances behind it. *)
  List.iter covers
    [
      "gb.fast#"; "gb.fastbatch["; "gb.acks["; "gb.state@"; "gb.cut@";
      "cs.est["; "cs.prop["; "cs.ack["; "cs.decide["; "ab.submit[";
    ]

let test_hot_path_codec_roundtrip () =
  let payloads = capture_hot_path_payloads () in
  check_bool "captured a meaningful payload set" true
    (List.length payloads >= 10);
  List.iter
    (fun p ->
      let s = Payload.to_string p in
      Alcotest.(check bool)
        (Printf.sprintf "%s encodable" s)
        true (Payload.encodable p);
      let bytes =
        match Payload.encode p with
        | Ok b -> b
        | Error e ->
            Alcotest.failf "%s encode: %s" s (Payload.codec_error_to_string e)
      in
      let p' =
        match Payload.decode bytes with
        | Ok p' -> p'
        | Error e ->
            Alcotest.failf "%s decode: %s" s (Payload.codec_error_to_string e)
      in
      check_str (s ^ " printed form survives") s (Payload.to_string p');
      match Payload.encode p' with
      | Ok bytes' -> check_str (s ^ " re-encodes to identical bytes") bytes bytes'
      | Error e ->
          Alcotest.failf "%s re-encode: %s" s (Payload.codec_error_to_string e))
    payloads

let test_hot_path_codec_truncation_and_garbage () =
  let payloads = capture_hot_path_payloads () in
  List.iter
    (fun p ->
      let s = Payload.to_string p in
      let bytes =
        match Payload.encode p with Ok b -> b | Error _ -> assert false
      in
      let len = String.length bytes in
      (* Every strict prefix must fail with a *typed* error. *)
      for cut = 0 to len - 1 do
        match Payload.decode (String.sub bytes 0 cut) with
        | Error _ -> ()
        | Ok p' ->
            Alcotest.failf "%s truncated to %d bytes decoded as %s" s cut
              (Payload.to_string p')
      done;
      (* Single-byte corruption anywhere must yield Ok or a typed error —
         decode is total; exceptions must not escape the codec layer. *)
      for i = 0 to len - 1 do
        let mutated = Bytes.of_string bytes in
        Bytes.set mutated i '\xff';
        match Payload.decode (Bytes.to_string mutated) with
        | Ok p' -> ignore (Payload.to_string p')
        | Error _ -> ()
        | exception e ->
            Alcotest.failf "%s corrupt at byte %d escaped exception %s" s i
              (Printexc.to_string e)
      done)
    payloads

(* ---------- framing ---------- *)

let frame_of p =
  match Frame.encode p with
  | Ok f -> f
  | Error e -> Alcotest.failf "frame encode: %s" (Frame.error_to_string e)

let test_frame_roundtrip () =
  let f = frame_of (Proto.Cl_get { rid = 9; key = "k" }) in
  match Frame.decode_exact f with
  | Ok (Proto.Cl_get { rid = 9; key = "k" }) -> ()
  | Ok p -> Alcotest.failf "wrong payload: %s" (Payload.to_string p)
  | Error e -> Alcotest.failf "decode_exact: %s" (Frame.error_to_string e)

let test_frame_oversized () =
  let big = String.make 64 'x' in
  (match Frame.encode ~limit:8 (Proto.Cl_put { rid = 0; key = big; value = big }) with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized encode must be typed");
  let f = frame_of (Proto.Cl_put { rid = 0; key = big; value = big }) in
  match Frame.decode_exact ~limit:8 f with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized decode must be typed"

let test_decoder_stream_and_resync () =
  let m = Metrics.create () in
  let d = Frame.Decoder.create ~metrics:m () in
  let f1 = frame_of (Proto.Cl_dump { rid = 1 }) in
  let f2 = frame_of (Proto.Cl_dump { rid = 2 }) in
  (* A frame with a valid length but an undecodable body. *)
  let junk_body =
    let b = Buffer.create 16 in
    Wire.str b "nosuchtag";
    Buffer.contents b
  in
  let junk =
    let b = Buffer.create 16 in
    Buffer.add_uint8 b 0;
    Buffer.add_uint8 b 0;
    Buffer.add_uint8 b 0;
    Buffer.add_uint8 b (String.length junk_body);
    Buffer.add_string b junk_body;
    Buffer.contents b
  in
  let stream = f1 ^ junk ^ f2 in
  (* Feed byte by byte: every prefix must simply await. *)
  String.iter (fun c -> Frame.Decoder.feed_string d (String.make 1 c)) stream;
  (match Frame.Decoder.next d with
  | `Payload (Proto.Cl_dump { rid = 1 }) -> ()
  | _ -> Alcotest.fail "first frame");
  (match Frame.Decoder.next d with
  | `Corrupt (Frame.Codec (Payload.Unknown_tag _)) -> ()
  | _ -> Alcotest.fail "junk frame must surface as typed corrupt");
  Alcotest.(check bool) "body corruption is not fatal" false
    (Frame.Decoder.dead d);
  (match Frame.Decoder.next d with
  | `Payload (Proto.Cl_dump { rid = 2 }) -> ()
  | _ -> Alcotest.fail "stream must resynchronise after a bad body");
  (match Frame.Decoder.next d with `Await -> () | _ -> Alcotest.fail "drained");
  check_int "one reject" 1 (Frame.Decoder.rejected d);
  check_int "net.frame_reject counted" 1 (Metrics.counter m "net.frame_reject")

let test_decoder_dead_on_bad_length () =
  let m = Metrics.create () in
  let d = Frame.Decoder.create ~limit:1024 ~metrics:m () in
  Frame.Decoder.feed_string d "\xff\xff\xff\xff";
  (match Frame.Decoder.next d with
  | `Corrupt (Frame.Bad_length _ | Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "length corruption must surface");
  Alcotest.(check bool) "decoder dead" true (Frame.Decoder.dead d);
  (match Frame.Decoder.next d with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "dead decoder stays corrupt");
  check_int "reject counted" 1 (Metrics.counter m "net.frame_reject")

let suite =
  [
    ( "wire",
      [
        Alcotest.test_case "primitive round-trip" `Quick test_wire_roundtrip;
        Alcotest.test_case "short read raises Short" `Quick test_wire_short;
        Alcotest.test_case "codec round-trip (incl. nesting)" `Quick
          test_codec_roundtrip;
        Alcotest.test_case "codec typed errors" `Quick test_codec_errors;
        Alcotest.test_case "hot-path codec coverage" `Quick
          test_hot_path_codec_coverage;
        Alcotest.test_case "hot-path codec round-trip" `Quick
          test_hot_path_codec_roundtrip;
        Alcotest.test_case "hot-path codec truncation/garbage" `Quick
          test_hot_path_codec_truncation_and_garbage;
        Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
        Alcotest.test_case "frame oversized both ways" `Quick
          test_frame_oversized;
        Alcotest.test_case "decoder streams, rejects, resyncs" `Quick
          test_decoder_stream_and_resync;
        Alcotest.test_case "decoder dies on length corruption" `Quick
          test_decoder_dead_on_bad_length;
      ] );
  ]
